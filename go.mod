module trinity

go 1.22
