// Command distanceoracle demonstrates the paper's §5.5 "new paradigm for
// offline analytics": estimating shortest distances with landmark
// vertices, where landmarks chosen by betweenness computed LOCALLY on
// each machine's partition come close to expensive global betweenness —
// because a randomly partitioned graph is a random sample of itself.
//
//	go run ./examples/distanceoracle [-people 3000] [-landmarks 20]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"trinity/internal/algo"
	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
)

func main() {
	ctx := context.Background()
	people := flag.Int("people", 3000, "graph size")
	landmarks := flag.Int("landmarks", 20, "landmark count")
	flag.Parse()

	cloud := memcloud.New(memcloud.Config{Machines: 8})
	defer cloud.Close()
	b := graph.NewBuilder(false)
	// A community-structured graph: the highest-degree people sit inside
	// dense satellite communities, but shortest paths route through
	// modest-degree bridge people — the regime where landmark choice
	// matters.
	communities := *people / 40
	if communities < 8 {
		communities = 8
	}
	gen.BuildClustered(gen.ClusteredConfig{
		Communities:        communities,
		PeoplePerCommunity: 40,
		IntraDegree:        6,
		Ring:               true,
		Bridges:            2,
		DenseSatellites:    communities / 8,
		Seed:               3,
	}, b)
	g, err := b.Load(ctx, cloud)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered social graph: %d people on 8 machines, %d landmarks\n\n",
		g.NodeCount(), *landmarks)

	for _, strat := range []algo.LandmarkStrategy{
		algo.ByDegree, algo.ByLocalBetweenness, algo.ByGlobalBetweenness,
	} {
		start := time.Now()
		o, err := algo.BuildOracle(ctx, g, *landmarks, strat, 1)
		if err != nil {
			log.Fatal(err)
		}
		build := time.Since(start)
		acc, err := o.Accuracy(ctx, 40, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s accuracy %5.1f%%   (oracle built in %s)\n",
			strat.String(), acc, build.Round(time.Millisecond))
	}

	// A single estimate is a few map lookups — the online half of the
	// online/offline split the paper opens with. (Skip the rare isolated
	// vertices the random generator can produce.)
	o, _ := algo.BuildOracle(ctx, g, *landmarks, algo.ByLocalBetweenness, 1)
	for v := uint64(g.NodeCount() - 1); v > 1; v-- {
		start := time.Now()
		est := o.Estimate(1, v)
		if est < 1e9 {
			fmt.Printf("\nestimated distance between user 1 and user %d: %.0f hops (in %s)\n",
				v, est, time.Since(start).Round(time.Microsecond))
			break
		}
	}
}
