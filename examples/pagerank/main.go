// Command pagerank runs Trinity's restrictive-model vertex-centric
// PageRank (paper §5.3-5.4) over an R-MAT web graph, showing the effect
// of hub-vertex message buffering on wire traffic.
//
//	go run ./examples/pagerank [-scale 14] [-machines 8] [-iters 10]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"trinity/internal/algo"
	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
)

func main() {
	ctx := context.Background()
	scale := flag.Uint("scale", 14, "log2 of node count")
	machines := flag.Int("machines", 8, "simulated cluster size")
	iters := flag.Int("iters", 10, "power iterations")
	flag.Parse()

	cloud := memcloud.New(memcloud.Config{Machines: *machines})
	defer cloud.Close()

	fmt.Printf("generating R-MAT graph: 2^%d nodes, avg degree 13...\n", *scale)
	b := graph.NewBuilder(true)
	gen.BuildRMAT(gen.RMATConfig{Scale: *scale, AvgDegree: 13, Seed: 1}, 0, b)
	g, err := b.Load(ctx, cloud)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d nodes, %d edges on %d machines\n\n",
		g.NodeCount(), g.EdgeCount(), *machines)

	for _, hub := range []int{0, 8} {
		mode := "hub buffering OFF"
		if hub > 0 {
			mode = fmt.Sprintf("hub buffering ON (threshold %d)", hub)
		}
		start := time.Now()
		res, err := algo.PageRankInstrumented(ctx, g, *iters, hub)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-28s %8s/iter, %9d wire messages\n",
			mode, (elapsed / time.Duration(*iters)).Round(time.Microsecond), res.WireMessages)
		if hub > 0 {
			type rv struct {
				id   uint64
				rank float64
			}
			var top []rv
			for id, r := range res.Ranks {
				top = append(top, rv{id, r})
			}
			sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
			fmt.Println("\ntop ranked vertices:")
			for i := 0; i < 5 && i < len(top); i++ {
				fmt.Printf("  node %-8d rank %.2f\n", top[i].id, top[i].rank)
			}
		}
	}
}
