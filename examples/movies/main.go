// Command movies demonstrates TSL-driven graph modeling, the paper's
// Figure 4/5 example end to end: the schema in schema.tsl was compiled by
// cmd/tslc into schema_gen.go, giving typed Movie/Actor cells with blob
// marshaling, zero-copy accessors (UseMovie), and an Echo protocol stub.
//
//	go run ./examples/movies
package main

import (
	"context"
	"fmt"
	"log"

	"trinity/internal/hash"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

func main() {
	ctx := context.Background()
	cloud := memcloud.New(memcloud.Config{Machines: 3})
	defer cloud.Close()
	s := cloud.Slave(0)

	// --- store a small movie/actor graph through the generated API ---
	keanu := hash.String("actor:Keanu Reeves")
	carrie := hash.String("actor:Carrie-Anne Moss")
	matrix := hash.String("movie:The Matrix")
	jwick := hash.String("movie:John Wick")

	movies := []struct {
		id uint64
		m  Movie
	}{
		{matrix, Movie{Name: "The Matrix", Year: 1999, Rating: 8.7,
			Actors: []int64{int64(keanu), int64(carrie)}}},
		{jwick, Movie{Name: "John Wick", Year: 2014, Rating: 7.4,
			Actors: []int64{int64(keanu)}}},
	}
	for _, mv := range movies {
		if err := mv.m.Save(ctx, s, mv.id); err != nil {
			log.Fatal(err)
		}
	}
	actors := []struct {
		id uint64
		a  Actor
	}{
		{keanu, Actor{Name: "Keanu Reeves", Movies: []int64{int64(matrix), int64(jwick)}}},
		{carrie, Actor{Name: "Carrie-Anne Moss", Movies: []int64{int64(matrix)}}},
	}
	for _, ac := range actors {
		if err := ac.a.Save(ctx, s, ac.id); err != nil {
			log.Fatal(err)
		}
	}

	// --- typed load: cells decode into generated structs ---
	m, err := LoadMovie(ctx, s, matrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%d), rating %.1f, %d actors\n", m.Name, m.Year, m.Rating, len(m.Actors))
	for _, aid := range m.Actors {
		a, err := LoadActor(ctx, s, uint64(aid))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cast: %s (%d movies)\n", a.Name, len(a.Movies))
	}

	// --- zero-copy accessor: mutate a fixed field in place, no
	//     serialization round trip (paper §4.3's UseMyCellAccessor) ---
	owner := cloud.Slave(int(s.Owner(matrix)))
	if err := UseMovie(owner, matrix, func(a MovieAccessor) error {
		fmt.Printf("in-place: year %d -> 2000 (re-release)\n", a.Year())
		a.SetYear(2000)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	m, _ = LoadMovie(ctx, s, matrix)
	fmt.Printf("after accessor write: %s year = %d\n", m.Name, m.Year)

	// --- the Figure 5 Echo protocol: calling a remote machine reads like
	//     calling a local method ---
	RegisterEcho(cloud.Slave(1).Node(), func(_ context.Context, from msg.MachineID, req *MyMessage) (*MyMessage, error) {
		return &MyMessage{Text: "echo from machine 1: " + req.Text}, nil
	})
	resp, err := CallEcho(ctx, s.Node(), cloud.Slave(1).ID(), &MyMessage{Text: "hello TSL"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(resp.Text)
}
