// Command quickstart is the five-minute tour of the Trinity engine: boot
// a simulated memory cloud, store cells, build a small graph, explore it
// online, and run an offline vertex-centric computation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"trinity/internal/algo"
	"trinity/internal/compute/traversal"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
)

func main() {
	ctx := context.Background()
	// A memory cloud of 4 simulated machines. Every machine hosts several
	// memory trunks; cells are addressed by hashed 64-bit keys.
	cloud := memcloud.New(memcloud.Config{Machines: 4})
	defer cloud.Close()

	// 1. The memory cloud is a distributed key-value store.
	s := cloud.Slave(0)
	if err := s.Put(ctx, 42, []byte("any blob, globally addressable")); err != nil {
		log.Fatal(err)
	}
	v, _ := cloud.Slave(3).Get(ctx, 42) // visible from every machine
	fmt.Printf("cell 42 = %q (owner: machine %d)\n", v, s.Owner(42))
	// Graph engines enumerate every cell on a machine, so applications
	// keep graph cells and plain KV cells in separate clouds or disjoint
	// key ranges; this demo simply removes the scratch cell.
	s.Remove(ctx, 42)

	// 2. Graphs are cells: build a small follower graph.
	b := graph.NewBuilder(true)
	people := []string{"ada", "bob", "cat", "dan", "eve", "fay"}
	for i, name := range people {
		b.AddNode(uint64(i), 0, name)
	}
	edges := [][2]uint64{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 2}, {2, 4}, {5, 0}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Load(ctx, cloud)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges over %d machines\n",
		g.NodeCount(), g.EdgeCount(), g.Machines())

	// 3. Online query: explore ada's 2-hop neighborhood.
	t := traversal.New(g)
	res, err := t.Explore(ctx, 0, 0, 2, traversal.Predicate{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ada reaches %d people within 2 hops (levels %v)\n", res.Visited-1, res.Levels)

	// 4. Offline analytics: PageRank over the same graph.
	pr, err := algo.PageRank(ctx, g, 20, 0)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		name string
		rank float64
	}
	var rs []ranked
	for id, r := range pr.Ranks {
		rs = append(rs, ranked{people[id], r})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].rank > rs[j].rank })
	fmt.Println("PageRank:")
	for _, r := range rs {
		fmt.Printf("  %-4s %.3f\n", r.name, r.rank)
	}
}
