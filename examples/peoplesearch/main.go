// Command peoplesearch reproduces the paper's motivating online query
// (§5.1): on a Facebook-like social graph, find anyone named David among
// a user's friends, friends-of-friends, and friends-of-friends-of-friends
// — with no index, by exploring the memory cloud in real time.
//
//	go run ./examples/peoplesearch [-people 20000] [-degree 50]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"trinity/internal/compute/traversal"
	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/hash"
	"trinity/internal/memcloud"
)

func main() {
	ctx := context.Background()
	people := flag.Int("people", 20000, "social graph size")
	degree := flag.Int("degree", 50, "average friend count")
	name := flag.String("name", "David", "first name to search for")
	flag.Parse()

	cloud := memcloud.New(memcloud.Config{Machines: 8})
	defer cloud.Close()

	fmt.Printf("building a %d-person social graph (avg degree %d) on 8 machines...\n",
		*people, *degree)
	b := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: *people, AvgDegree: *degree, Seed: 42}, b)
	g, err := b.Load(ctx, cloud)
	if err != nil {
		log.Fatal(err)
	}
	t := traversal.New(g)

	me := uint64(7) // an arbitrary member
	myName, _ := g.On(0).Name(ctx, me)
	fmt.Printf("logged in as %q\n\n", myName)

	label := int64(hash.String(*name))
	for hops := 1; hops <= 3; hops++ {
		start := time.Now()
		matches, err := t.PeopleSearch(ctx, 0, me, label, hops)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		ball, _ := t.Explore(ctx, 0, me, hops, traversal.Predicate{})
		fmt.Printf("%d-hop search: %3d %ss among %6d people, in %s\n",
			hops, len(matches), *name, ball.Visited, elapsed.Round(time.Microsecond))
		if hops == 3 {
			for i, id := range matches {
				if i == 5 {
					fmt.Printf("  ... and %d more\n", len(matches)-5)
					break
				}
				full, _ := g.On(0).Name(ctx, id)
				fmt.Printf("  found: %s\n", full)
			}
		}
	}
}
