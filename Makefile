# Mirrors .github/workflows/ci.yml exactly, so `make check` locally is the
# same bar the CI workflow enforces.

GO ?= go
CHAOS_SEEDS ?= 1,2,3

.PHONY: all build vet fmt-check test race chaos bench-smoke check bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Fault-injecting transport tests on the CI seed set; override the env
# var to replay one failing seed (CHAOS_SEEDS=7 make chaos).
chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run Chaos ./internal/...

# One iteration of every benchmark: proves benchmark code still compiles
# and runs; measures nothing.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

check: build vet fmt-check test race chaos bench-smoke

# Real benchmark runs: the obs hot paths plus the graph stack — view CSR
# scans/builds, BSP supersteps and multi-hop traversal. The graph-stack
# results are archived as BENCH_graph.json via cmd/benchjson so runs can
# be diffed across commits.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=2s ./internal/obs/
	$(GO) test -run=NONE -bench=. -benchtime=2s \
		./internal/graph/ ./internal/graph/view/ \
		./internal/compute/bsp/ ./internal/compute/traversal/ \
		| $(GO) run ./cmd/benchjson -o BENCH_graph.json
