# Mirrors .github/workflows/ci.yml exactly, so `make check` locally is the
# same bar the CI workflow enforces.

GO ?= go
CHAOS_SEEDS ?= 1,2,3
CHAOS_TIMEOUT ?= 10m

# The graph-stack benchmark set: archived, baselined and gated in CI.
BENCH_PKGS = ./internal/graph/ ./internal/graph/view/ \
	./internal/compute/bsp/ ./internal/compute/traversal/ \
	./internal/memcloud/fetch/ ./internal/memcloud/store/
BENCH_TIME ?= 2s
BENCH_JSON ?= BENCH_graph.json
BENCH_TOL ?= 0.20

.PHONY: all build vet fmt-check lint-ctx test race chaos chaos-failover \
	bench-smoke check bench bench-json bench-baseline bench-compare

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# Cancellation and allocation conventions: no time.After in internal/
# selects (timer leak), exported blocking APIs in msg/memcloud/compute
# take ctx first, and no unannotated make([]byte, ...) on the zero-copy
# hot paths (trunk, msg, memcloud/fetch).
lint-ctx:
	$(GO) run ./cmd/lintctx

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Fault-injecting transport tests on the CI seed set; override the env
# var to replay one failing seed (CHAOS_SEEDS=7 make chaos). The nightly
# workflow widens both knobs: CHAOS_SEEDS=1..10, CHAOS_TIMEOUT=20m.
chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run Chaos \
		-timeout $(CHAOS_TIMEOUT) ./internal/...

# The failover control-plane subset alone: double kills inside one
# detector window and a leader isolated mid-commit (between the TFS
# table write and the broadcast). `make chaos` subsumes this (-run Chaos
# matches ChaosFailover); this target exists for fast iteration on
# reconfiguration bugs.
chaos-failover:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run ChaosFailover \
		-timeout $(CHAOS_TIMEOUT) ./internal/memcloud/ ./internal/cluster/

# One iteration of every benchmark: proves benchmark code still compiles
# and runs; measures nothing.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

check: build vet fmt-check lint-ctx test race chaos bench-smoke

# Real benchmark runs: the obs hot paths plus the graph stack — view CSR
# scans/builds, BSP supersteps and multi-hop traversal. The graph-stack
# results are archived as BENCH_graph.json via cmd/benchjson so runs can
# be diffed across commits.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=$(BENCH_TIME) ./internal/obs/
	$(MAKE) bench-json

# Graph-stack benchmarks alone, straight to JSON. -benchmem records
# B/op and allocs/op so the compare gate can catch alloc regressions on
# the zero-copy read path, not just slowdowns. -p 1 keeps the package
# test binaries sequential: several of these spin up multi-machine
# simulated clouds, and concurrent binaries contend for cores badly
# enough to swing ns/op by 2x either way.
bench-json:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=$(BENCH_TIME) -p 1 $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# Refresh the committed regression-gate baseline (run on quiet hardware,
# then commit BENCH_baseline.json).
bench-baseline:
	$(MAKE) bench-json BENCH_JSON=BENCH_baseline.json

# Local version of the CI gate: fresh run vs committed baseline.
bench-compare:
	$(MAKE) bench-json BENCH_JSON=/tmp/bench_new.json
	$(GO) run ./cmd/benchjson -compare -tol $(BENCH_TOL) \
		BENCH_baseline.json /tmp/bench_new.json
