// Command tslc is the Trinity Specification Language compiler: it turns a
// .tsl script into a Go source file with typed structs, blob marshaling,
// cell accessors, and protocol stubs.
//
// Usage:
//
//	tslc -pkg moviegraph -o gen.go schema.tsl
//	tslc -check schema.tsl     # parse and type-check only
package main

import (
	"flag"
	"fmt"
	"os"

	"trinity/internal/tsl"
)

func main() {
	pkg := flag.String("pkg", "main", "package name for the generated code")
	out := flag.String("o", "", "output file (default stdout)")
	check := flag.Bool("check", false, "type-check only; generate nothing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tslc [-pkg name] [-o file.go] [-check] script.tsl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	script, err := tsl.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if *check {
		fmt.Fprintf(os.Stderr, "%s: %d structs (%d cell), %d protocols\n",
			flag.Arg(0), len(script.Structs), len(script.CellStructs()), len(script.Protocols))
		return
	}
	code, err := tsl.Generate(*pkg, string(src), script)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(code)
		return
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tslc:", err)
	os.Exit(1)
}
