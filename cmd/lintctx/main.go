// Command lintctx enforces the repo's cancellation and allocation
// conventions with three AST checks over the internal/ tree (tests
// excluded):
//
//  1. No time.After inside a select statement anywhere under internal/.
//     time.After leaks its timer until it fires — in a select that has
//     another ready arm the timer outlives the wait by the full duration,
//     and a hot loop accumulates one live timer per iteration (the msg.Call
//     wait path had exactly this leak; BenchmarkCallTimerChurn guards the
//     fix). Use time.NewTimer with a deferred/explicit Stop instead.
//
//  2. Exported blocking functions in internal/msg, internal/memcloud and
//     internal/compute must take a context.Context as their first
//     parameter. "Blocking" is detected structurally: the body contains a
//     channel receive, a channel send, a select, or a *.Wait(...) call.
//     Lifecycle entry points that intentionally block without a context
//     (Close, Flush, ...) are allowlisted below; extend the list only for
//     teardown-shaped APIs, never for request-shaped ones.
//
//  3. No make([]byte, ...) on the designated hot paths (internal/trunk,
//     internal/msg, internal/memcloud and its fetch/store subpackages)
//     unless the line carries an `//alloc:ok <reason>` comment. These
//     packages sit on the zero-copy read path and the batched write
//     path: per-frame and per-cell buffers come from the buf lease
//     pool, and an unannotated allocation is usually a regression that
//     silently re-introduces the GC churn the lease refactor removed.
//     Cold-path or deliberately caller-owned allocations get the
//     annotation with a reason.
//
// Exit status is non-zero if any violation is found, so `make lint-ctx`
// can gate CI. The tool has no dependencies outside the standard library.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// ctxPackages are the trees whose exported blocking APIs must be
// context-first. Paths are slash-separated prefixes relative to the repo
// root.
var ctxPackages = []string{
	"internal/msg",
	"internal/memcloud",
	"internal/compute",
}

// allocHotPackages are the trees where an unannotated make([]byte, ...)
// is flagged: the zero-copy read path, where buffers are supposed to come
// from the buf lease pool (or be appended into a caller-provided slice).
var allocHotPackages = []string{
	"internal/trunk",
	"internal/msg",
	"internal/memcloud",
	"internal/memcloud/fetch",
	"internal/memcloud/store",
}

// allowNoCtx names exported functions that block by design without a
// context: lifecycle teardown and drain points where callers have no
// deadline to offer (Close tears down, Flush pushes buffered frames,
// Stop/Shutdown quiesce, Done exposes a channel, Run on long-lived
// servers owns its own lifetime). Request-shaped APIs never belong here.
var allowNoCtx = map[string]bool{
	"Close":    true,
	"Flush":    true,
	"Stop":     true,
	"Shutdown": true,
	"Drain":    true,
	"Done":     true,
	"Start":    true,
	"Serve":    true,
}

type violation struct {
	pos token.Position
	msg string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []violation
	fset := token.NewFileSet()
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel := filepath.ToSlash(path)
		if r, e := filepath.Rel(root, path); e == nil {
			rel = filepath.ToSlash(r)
		}
		violations = append(violations, checkTimeAfterInSelect(fset, file)...)
		if inCtxPackage(rel) {
			violations = append(violations, checkExportedBlocking(fset, file)...)
		}
		if inAllocPackage(rel) {
			violations = append(violations, checkHotPathAllocs(fset, file)...)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintctx:", err)
		os.Exit(2)
	}
	for _, v := range violations {
		fmt.Printf("%s: %s\n", v.pos, v.msg)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "lintctx: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

func inCtxPackage(rel string) bool {
	for _, p := range ctxPackages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

func inAllocPackage(rel string) bool {
	dir := rel
	if i := strings.LastIndex(rel, "/"); i >= 0 {
		dir = rel[:i]
	}
	for _, p := range allocHotPackages {
		// Exact package match, not prefix: internal/memcloud is not a hot
		// package even though internal/memcloud/fetch is.
		if dir == p {
			return true
		}
	}
	return false
}

// checkHotPathAllocs flags make([]byte, ...) calls unless the line
// carries an `//alloc:ok <reason>` annotation.
func checkHotPathAllocs(fset *token.FileSet, file *ast.File) []violation {
	annotated := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "alloc:ok") {
				annotated[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	var out []violation
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" || len(call.Args) < 2 {
			return true
		}
		arr, ok := call.Args[0].(*ast.ArrayType)
		if !ok || arr.Len != nil {
			return true
		}
		elem, ok := arr.Elt.(*ast.Ident)
		if !ok || elem.Name != "byte" {
			return true
		}
		pos := fset.Position(call.Pos())
		if annotated[pos.Line] {
			return true
		}
		out = append(out, violation{
			pos: pos,
			msg: "make([]byte, ...) on a zero-copy hot path; use a buf.Lease (or annotate the line with //alloc:ok <reason>)",
		})
		return true
	})
	return out
}

// checkTimeAfterInSelect flags every time.After call that appears inside
// a select statement.
func checkTimeAfterInSelect(fset *token.FileSet, file *ast.File) []violation {
	var out []violation
	var selectDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			selectDepth++
			ast.Inspect(n.Body, walk)
			selectDepth--
			return false
		case *ast.CallExpr:
			if selectDepth > 0 && isPkgCall(n, "time", "After") {
				out = append(out, violation{
					pos: fset.Position(n.Pos()),
					msg: "time.After inside select leaks its timer until it fires; use time.NewTimer + Stop",
				})
			}
		}
		return true
	}
	ast.Inspect(file, walk)
	return out
}

// checkExportedBlocking flags exported functions whose body blocks on
// channels but whose first parameter is not a context.Context.
func checkExportedBlocking(fset *token.FileSet, file *ast.File) []violation {
	var out []violation
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() || allowNoCtx[fn.Name.Name] {
			continue
		}
		if fn.Recv != nil && !exportedRecv(fn.Recv) {
			continue // method on an unexported type: not API surface
		}
		if firstParamIsContext(fn.Type) || !bodyBlocks(fn.Body) {
			continue
		}
		out = append(out, violation{
			pos: fset.Position(fn.Pos()),
			msg: fmt.Sprintf("exported blocking func %s lacks a context.Context first parameter", fn.Name.Name),
		})
	}
	return out
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func firstParamIsContext(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	sel, ok := ft.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

// bodyBlocks reports whether the function body itself contains a channel
// receive, channel send, select statement, or a *.Wait(...) call —
// the structural signatures of an unbounded wait. Function literals
// inside the body are skipped: a goroutine the function launches blocks
// on its own time, not the caller's.
func bodyBlocks(body *ast.BlockStmt) bool {
	blocks := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocks = true
			}
		case *ast.SendStmt:
			blocks = true
		case *ast.SelectStmt:
			blocks = true
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				blocks = true
			}
		}
		return !blocks
	}
	ast.Inspect(body, walk)
	return blocks
}

func isPkgCall(call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg && sel.Sel.Name == name
}
