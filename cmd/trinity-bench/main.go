// Command trinity-bench regenerates the tables and figures of the
// paper's evaluation section (§7) on the simulated cluster.
//
// Usage:
//
//	trinity-bench                 # run everything at the default scale
//	trinity-bench -scale 4        # larger graphs (closer to paper shapes)
//	trinity-bench -run fig12b     # one experiment
//	trinity-bench -list           # list experiment names
//	trinity-bench -metrics        # append the observability registry dump
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"trinity/internal/bench"
	"trinity/internal/obs"
)

var experiments = map[string]func(context.Context, bench.Scale) (*bench.Table, error){
	"fig8a":    bench.Fig8a,
	"fig8b":    bench.Fig8b,
	"fig12a":   bench.Fig12a,
	"fig12b":   bench.Fig12b,
	"fig12c":   bench.Fig12c,
	"fig12d":   bench.Fig12d,
	"fig13":    bench.Fig13,
	"fig14a":   bench.Fig14a,
	"fig14b":   bench.Fig14b,
	"3hop":     bench.ThreeHop,
	"msgopt":   bench.MsgOptAblation,
	"bulkload": bench.BulkLoad,
}

func main() {
	scale := flag.Int("scale", 1, "scale factor (1 = quick, 4+ = closer to paper shapes)")
	run := flag.String("run", "", "comma-separated experiment names (default: all)")
	list := flag.Bool("list", false, "list experiment names and exit")
	metrics := flag.Bool("metrics", false,
		"after the experiments, dump the observability registry (name value lines)")
	timeout := flag.Duration("timeout", 0, "overall deadline for the run (0 = none)")
	flag.Parse()

	// Ctrl-C cancels the sweep: the context threads down to every Call, so
	// a long experiment aborts within one call timeout instead of running out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	sort.Strings(names)
	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	selected := names
	if *run != "" {
		selected = strings.Split(*run, ",")
	}
	s := bench.Scale{Factor: *scale}
	failed := false
	for _, name := range selected {
		fn, ok := experiments[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "trinity-bench: unknown experiment %q (use -list)\n", name)
			failed = true
			continue
		}
		start := time.Now()
		table, err := fn(ctx, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trinity-bench: %s: %v\n", name, err)
			failed = true
			continue
		}
		table.Print(os.Stdout)
		fmt.Printf("  (experiment wall time: %s)\n", time.Since(start).Round(time.Millisecond))
	}
	if *metrics {
		fmt.Println("--- metrics ---")
		obs.Default().WriteText(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}
