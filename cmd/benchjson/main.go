// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark runs can be archived and
// diffed across commits:
//
//	go test -run=NONE -bench=. ./internal/... | benchjson -o BENCH_graph.json
//
// Each benchmark result line becomes one record carrying the owning
// package (from the interleaved "pkg:" / "ok" lines), the iteration
// count, and every reported metric (ns/op, B/op, allocs/op, custom
// ReportMetric units) keyed by unit name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "FAIL"):
			pkg = ""
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line, pkg); ok {
				results = append(results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d results -> %s\n", len(results), *out)
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkFoo-8  1234  5678 ns/op  90 B/op  2 allocs/op
//
// i.e. the name, the iteration count, then (value, unit) pairs.
func parseLine(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Name:       trimProcsSuffix(fields[0]),
		Package:    pkg,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// trimProcsSuffix drops the numeric -N GOMAXPROCS suffix from a
// benchmark name, if present.
func trimProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
