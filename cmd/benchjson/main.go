// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark runs can be archived and
// diffed across commits:
//
//	go test -run=NONE -bench=. ./internal/... | benchjson -o BENCH_graph.json
//
// Each benchmark result line becomes one record carrying the owning
// package (from the interleaved "pkg:" / "ok" lines), the iteration
// count, and every reported metric (ns/op, B/op, allocs/op, custom
// ReportMetric units) keyed by unit name.
//
// With -compare, benchjson instead diffs two archived JSON documents and
// fails when any benchmark's ns/op — or, when both records carry it,
// allocs/op — regressed beyond the tolerance:
//
//	benchjson -compare -tol 0.20 BENCH_baseline.json BENCH_new.json
//
// Benchmarks present in only one file are reported but never fail the
// comparison (new benchmarks appear, old ones get renamed); likewise a
// baseline without allocs/op (recorded before -benchmem) never fails the
// alloc gate. Only a measured regression does. Alloc comparisons get a
// small absolute grace (+2 allocs/op) on top of the fractional tolerance
// so near-zero baselines don't flap.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// allocGrace is the absolute allocs/op slack added on top of the
// fractional tolerance, so a 0→1 blip on an allocation-free benchmark
// doesn't fail the gate.
const allocGrace = 2

type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two benchmark JSON files: benchjson -compare old.json new.json")
	tol := flag.Float64("tol", 0.20, "allowed fractional ns/op and allocs/op regression in -compare mode (0.20 = 20%)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), *tol, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%\n", regressed, *tol*100)
			os.Exit(1)
		}
		return
	}

	var results []result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "FAIL"):
			pkg = ""
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line, pkg); ok {
				results = append(results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d results -> %s\n", len(results), *out)
}

// runCompare diffs two archived benchmark documents on ns/op and (when
// both sides recorded it) allocs/op, and writes a report. It returns how
// many benchmarks regressed on either axis beyond tol.
func runCompare(oldPath, newPath string, tol float64, w io.Writer) (int, error) {
	oldRes, err := loadResults(oldPath)
	if err != nil {
		return 0, err
	}
	newRes, err := loadResults(newPath)
	if err != nil {
		return 0, err
	}
	key := func(r result) string { return r.Package + "." + r.Name }
	oldBy := make(map[string]result, len(oldRes))
	for _, r := range oldRes {
		oldBy[key(r)] = r
	}
	regressed := 0
	seen := make(map[string]bool, len(newRes))
	for _, nr := range newRes {
		k := key(nr)
		seen[k] = true
		or, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(w, "NEW   %-60s %12.0f ns/op\n", k, nr.Metrics["ns/op"])
			continue
		}
		oldNs, newNs := or.Metrics["ns/op"], nr.Metrics["ns/op"]
		if oldNs <= 0 || newNs <= 0 {
			continue // no timing metric to compare
		}
		delta := (newNs - oldNs) / oldNs
		verdict := "ok   "
		if delta > tol {
			verdict = "SLOW "
			regressed++
		} else if delta < -tol {
			verdict = "fast "
		}
		fmt.Fprintf(w, "%s %-60s %12.0f -> %12.0f ns/op  %+6.1f%%\n",
			verdict, k, oldNs, newNs, delta*100)

		// Alloc gate: only when the baseline has the metric at all — an
		// old archive recorded without -benchmem must not fail every run.
		oldAllocs, hasOld := or.Metrics["allocs/op"]
		newAllocs, hasNew := nr.Metrics["allocs/op"]
		if !hasOld || !hasNew {
			continue
		}
		if newAllocs > oldAllocs*(1+tol)+allocGrace {
			regressed++
			fmt.Fprintf(w, "ALLOC %-60s %12.0f -> %12.0f allocs/op\n",
				k, oldAllocs, newAllocs)
		}
	}
	for _, or := range oldRes {
		if !seen[key(or)] {
			fmt.Fprintf(w, "GONE  %-60s %12.0f ns/op\n", key(or), or.Metrics["ns/op"])
		}
	}
	return regressed, nil
}

func loadResults(path string) ([]result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkFoo-8  1234  5678 ns/op  90 B/op  2 allocs/op
//
// i.e. the name, the iteration count, then (value, unit) pairs.
func parseLine(line, pkg string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Name:       trimProcsSuffix(fields[0]),
		Package:    pkg,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// trimProcsSuffix drops the numeric -N GOMAXPROCS suffix from a
// benchmark name, if present.
func trimProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
