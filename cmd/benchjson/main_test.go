package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkThreeHopExploration-8   100   15125843 ns/op   1234 B/op   56 allocs/op", "trinity/internal/compute/traversal")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkThreeHopExploration" || r.Iterations != 100 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 15125843 || r.Metrics["B/op"] != 1234 || r.Metrics["allocs/op"] != 56 {
		t.Fatalf("metrics %+v", r.Metrics)
	}
	if _, ok := parseLine("Benchmark garbage", ""); ok {
		t.Fatal("garbage parsed")
	}
}

func writeJSON(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	oldP := writeJSON(t, dir, "old.json", `[
	  {"name":"BenchmarkA","package":"p","iterations":10,"metrics":{"ns/op":1000}},
	  {"name":"BenchmarkB","package":"p","iterations":10,"metrics":{"ns/op":1000}},
	  {"name":"BenchmarkGone","package":"p","iterations":10,"metrics":{"ns/op":5}}
	]`)
	newP := writeJSON(t, dir, "new.json", `[
	  {"name":"BenchmarkA","package":"p","iterations":10,"metrics":{"ns/op":1150}},
	  {"name":"BenchmarkB","package":"p","iterations":10,"metrics":{"ns/op":1500}},
	  {"name":"BenchmarkNew","package":"p","iterations":10,"metrics":{"ns/op":7}}
	]`)
	var out strings.Builder
	regressed, err := runCompare(oldP, newP, 0.20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (only B is past 20%%)\n%s", regressed, out.String())
	}
	rep := out.String()
	for _, want := range []string{"SLOW  p.BenchmarkB", "ok    p.BenchmarkA", "NEW   p.BenchmarkNew", "GONE  p.BenchmarkGone"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCompareWithinToleranceIsClean(t *testing.T) {
	dir := t.TempDir()
	oldP := writeJSON(t, dir, "old.json", `[
	  {"name":"BenchmarkA","package":"p","iterations":10,"metrics":{"ns/op":1000}}
	]`)
	newP := writeJSON(t, dir, "new.json", `[
	  {"name":"BenchmarkA","package":"p","iterations":10,"metrics":{"ns/op":700}}
	]`)
	var out strings.Builder
	regressed, err := runCompare(oldP, newP, 0.20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 0 {
		t.Fatalf("speedup flagged as regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "fast ") {
		t.Fatalf("large speedup not marked fast:\n%s", out.String())
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := writeJSON(t, dir, "bad.json", `{not json`)
	good := writeJSON(t, dir, "good.json", `[]`)
	if _, err := runCompare(bad, good, 0.2, &strings.Builder{}); err == nil {
		t.Fatal("corrupt old file accepted")
	}
	if _, err := runCompare(good, filepath.Join(dir, "missing.json"), 0.2, &strings.Builder{}); err == nil {
		t.Fatal("missing new file accepted")
	}
}
