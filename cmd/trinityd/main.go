// Command trinityd hosts a Trinity memory cloud and serves it to external
// clients over a line-oriented TCP protocol — the "Trinity client"
// interaction tier of the paper's Figure 1, where applications link a
// client library and talk to the slave/proxy tier over the network.
//
// Start a daemon:
//
//	trinityd -machines 8 -listen 127.0.0.1:7700
//
// Then from any TCP client (e.g. nc):
//
//	SET 42 hello          -> OK
//	GET 42                -> VALUE hello
//	APPEND 42 ,world      -> OK
//	DEL 42                -> OK
//	KHOP <node> <hops>    -> VISITED <n>   (over cells that are graph nodes)
//	PAGERANK [iters]      -> OK supersteps=<n> ranked=<n>  (BSP over the graph)
//	STATS                 -> cluster counters
//	METRICS               -> full observability registry as JSON
//	QUIT
//
// Keys are decimal cell IDs; values are raw bytes to end of line.
//
// The same registry snapshot is served over HTTP (expvar-style) at
// http://<metrics-listen>/debug/metrics, so dashboards and curl can poll
// the daemon without speaking the line protocol.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"

	"trinity/internal/algo"
	"trinity/internal/compute/traversal"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/obs"
)

func main() {
	machines := flag.Int("machines", 4, "simulated machines in the cloud")
	listen := flag.String("listen", "127.0.0.1:7700", "client listen address")
	metricsListen := flag.String("metrics-listen", "127.0.0.1:7701",
		"HTTP metrics listen address serving /debug/metrics (empty disables)")
	flag.Parse()

	metrics := obs.Default()
	cloud := memcloud.New(memcloud.Config{Machines: *machines, Metrics: metrics})
	defer cloud.Close()
	g := graph.New(cloud, true)
	trav := traversal.New(g)

	if *metricsListen != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			metrics.WriteJSON(w)
		})
		ml, err := net.Listen("tcp", *metricsListen)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trinityd: metrics on http://%s/debug/metrics", ml.Addr())
		go http.Serve(ml, mux)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trinityd: %d-machine memory cloud serving on %s", *machines, l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go serve(conn, cloud, g, trav)
	}
}

func serve(conn net.Conn, cloud *memcloud.Cloud, g *graph.Graph, trav *traversal.Engine) {
	defer conn.Close()
	s := cloud.Slave(0)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\r\n", args...)
		w.Flush()
	}
	for sc.Scan() {
		line := sc.Text()
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "SET", "APPEND":
			keyStr, val, ok := strings.Cut(rest, " ")
			key, err := strconv.ParseUint(keyStr, 10, 64)
			if !ok || err != nil {
				reply("ERR usage: %s <key> <value>", strings.ToUpper(cmd))
				continue
			}
			if strings.EqualFold(cmd, "SET") {
				err = s.Put(key, []byte(val))
			} else {
				err = s.Append(key, []byte(val))
			}
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "GET":
			key, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				reply("ERR usage: GET <key>")
				continue
			}
			val, err := s.Get(key)
			if errors.Is(err, memcloud.ErrNotFound) {
				reply("NOT_FOUND")
				continue
			}
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("VALUE %s", val)
		case "DEL":
			key, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				reply("ERR usage: DEL <key>")
				continue
			}
			if err := s.Remove(key); err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "ADDNODE":
			key, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				reply("ERR usage: ADDNODE <id>")
				continue
			}
			if err := g.On(0).PutNode(&graph.Node{ID: key}); err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "ADDEDGE":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				reply("ERR usage: ADDEDGE <src> <dst>")
				continue
			}
			src, err1 := strconv.ParseUint(parts[0], 10, 64)
			dst, err2 := strconv.ParseUint(parts[1], 10, 64)
			if err1 != nil || err2 != nil {
				reply("ERR usage: ADDEDGE <src> <dst>")
				continue
			}
			if err := g.On(0).AddEdge(src, dst); err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "PAGERANK":
			iters := 5
			if rest = strings.TrimSpace(rest); rest != "" {
				n, err := strconv.Atoi(rest)
				if err != nil || n < 1 {
					reply("ERR usage: PAGERANK [iters]")
					continue
				}
				iters = n
			}
			res, err := algo.PageRank(g, iters, 0)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK supersteps=%d ranked=%d", res.Supersteps, len(res.Ranks))
		case "KHOP":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				reply("ERR usage: KHOP <node> <hops>")
				continue
			}
			node, err1 := strconv.ParseUint(parts[0], 10, 64)
			hops, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				reply("ERR usage: KHOP <node> <hops>")
				continue
			}
			n, err := trav.KHopNeighborhoodSize(0, node, hops)
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("VISITED %d", n)
		case "STATS":
			st := cloud.Stats()
			reply("STATS local=%d remote=%d retries=%d recoveries=%d mem=%dB",
				st.LocalOps, st.RemoteOps, st.Retries, st.Recoveries, cloud.MemoryUsage())
		case "METRICS":
			cloud.Metrics().WriteJSON(w)
			w.Flush()
		case "BACKUP":
			if err := cloud.Backup(); err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "QUIT":
			reply("BYE")
			return
		case "":
		default:
			reply("ERR unknown command %q", cmd)
		}
	}
}
