// Command trinityd hosts a Trinity memory cloud and serves it to external
// clients over a line-oriented TCP protocol — the "Trinity client"
// interaction tier of the paper's Figure 1, where applications link a
// client library and talk to the slave/proxy tier over the network.
//
// Start a daemon:
//
//	trinityd -machines 8 -listen 127.0.0.1:7700
//
// Then from any TCP client (e.g. nc):
//
//	SET 42 hello          -> OK
//	GET 42                -> VALUE hello
//	APPEND 42 ,world      -> OK
//	DEL 42                -> OK
//	KHOP <node> <hops>    -> VISITED <n>   (over cells that are graph nodes)
//	PAGERANK [iters]      -> OK supersteps=<n> ranked=<n>  (BSP over the graph)
//	STATS                 -> cluster counters
//	METRICS               -> full observability registry as JSON
//	QUIT
//
// Keys are decimal cell IDs; values are raw bytes to end of line.
//
// The same registry snapshot is served over HTTP (expvar-style) at
// http://<metrics-listen>/debug/metrics, so dashboards and curl can poll
// the daemon without speaking the line protocol.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"trinity/internal/algo"
	"trinity/internal/compute/traversal"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/obs"
)

func main() {
	machines := flag.Int("machines", 4, "simulated machines in the cloud")
	listen := flag.String("listen", "127.0.0.1:7700", "client listen address")
	metricsListen := flag.String("metrics-listen", "127.0.0.1:7701",
		"HTTP metrics listen address serving /debug/metrics (empty disables)")
	cmdTimeout := flag.Duration("cmd-timeout", 30*time.Second,
		"per-command deadline (propagated over the wire; 0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second,
		"grace period for in-flight work on SIGINT/SIGTERM")
	flag.Parse()

	// ctx is the daemon's root: SIGINT/SIGTERM cancels it, which drains
	// the servers instead of dying mid-frame.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	metrics := obs.Default()
	cloud := memcloud.New(memcloud.Config{Machines: *machines, Metrics: metrics})
	g := graph.New(cloud, true)
	trav := traversal.New(g)

	var metricsSrv *http.Server
	if *metricsListen != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			metrics.WriteJSON(w)
		})
		ml, err := net.Listen("tcp", *metricsListen)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trinityd: metrics on http://%s/debug/metrics", ml.Addr())
		metricsSrv = &http.Server{Handler: mux}
		go metricsSrv.Serve(ml)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("trinityd: %d-machine memory cloud serving on %s", *machines, l.Addr())

	var conns sync.WaitGroup
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed during shutdown
			}
			conns.Add(1)
			go func() {
				defer conns.Done()
				serve(ctx, conn, cloud, g, trav, *cmdTimeout)
			}()
		}
	}()

	<-ctx.Done()
	log.Printf("trinityd: signal received, draining (timeout %v)", *drainTimeout)
	// The root ctx is spent; shutdown gets its own budget.
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	l.Close()
	if metricsSrv != nil {
		if err := metricsSrv.Shutdown(shCtx); err != nil {
			log.Printf("trinityd: metrics shutdown: %v", err)
		}
	}
	// Wait out in-flight commands (they observe the cancelled root ctx and
	// return quickly), bounded by the drain budget.
	drained := make(chan struct{})
	go func() { conns.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-shCtx.Done():
		log.Printf("trinityd: drain timeout, closing with connections active")
	}
	// Flush every machine's outbox so acknowledged writes are on the wire,
	// then tear the cloud down cleanly.
	for i := 0; i < cloud.Slaves(); i++ {
		cloud.Slave(i).Node().Flush()
	}
	cloud.Close()
	log.Printf("trinityd: shutdown complete")
}

func serve(ctx context.Context, conn net.Conn, cloud *memcloud.Cloud, g *graph.Graph, trav *traversal.Engine, cmdTimeout time.Duration) {
	defer conn.Close()
	s := cloud.Slave(0)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\r\n", args...)
		w.Flush()
	}
	// cmdCtx derives one command's context: the daemon root (so shutdown
	// aborts in-flight commands) bounded by the per-command deadline, which
	// Call propagates over the wire.
	cmdCtx := func() (context.Context, context.CancelFunc) {
		if cmdTimeout > 0 {
			return context.WithTimeout(ctx, cmdTimeout)
		}
		return context.WithCancel(ctx)
	}
	for sc.Scan() {
		if ctx.Err() != nil {
			reply("ERR shutting down")
			return
		}
		line := sc.Text()
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "SET", "APPEND":
			keyStr, val, ok := strings.Cut(rest, " ")
			key, err := strconv.ParseUint(keyStr, 10, 64)
			if !ok || err != nil {
				reply("ERR usage: %s <key> <value>", strings.ToUpper(cmd))
				continue
			}
			cctx, cancel := cmdCtx()
			if strings.EqualFold(cmd, "SET") {
				err = s.Put(cctx, key, []byte(val))
			} else {
				err = s.Append(cctx, key, []byte(val))
			}
			cancel()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "GET":
			key, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				reply("ERR usage: GET <key>")
				continue
			}
			cctx, cancel := cmdCtx()
			val, err := s.Get(cctx, key)
			cancel()
			if errors.Is(err, memcloud.ErrNotFound) {
				reply("NOT_FOUND")
				continue
			}
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("VALUE %s", val)
		case "DEL":
			key, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				reply("ERR usage: DEL <key>")
				continue
			}
			cctx, cancel := cmdCtx()
			err = s.Remove(cctx, key)
			cancel()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "ADDNODE":
			key, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				reply("ERR usage: ADDNODE <id>")
				continue
			}
			cctx, cancel := cmdCtx()
			err = g.On(0).PutNode(cctx, &graph.Node{ID: key})
			cancel()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "ADDEDGE":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				reply("ERR usage: ADDEDGE <src> <dst>")
				continue
			}
			src, err1 := strconv.ParseUint(parts[0], 10, 64)
			dst, err2 := strconv.ParseUint(parts[1], 10, 64)
			if err1 != nil || err2 != nil {
				reply("ERR usage: ADDEDGE <src> <dst>")
				continue
			}
			cctx, cancel := cmdCtx()
			err := g.On(0).AddEdge(cctx, src, dst)
			cancel()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "PAGERANK":
			iters := 5
			if rest = strings.TrimSpace(rest); rest != "" {
				n, err := strconv.Atoi(rest)
				if err != nil || n < 1 {
					reply("ERR usage: PAGERANK [iters]")
					continue
				}
				iters = n
			}
			cctx, cancel := cmdCtx()
			res, err := algo.PageRank(cctx, g, iters, 0)
			cancel()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK supersteps=%d ranked=%d", res.Supersteps, len(res.Ranks))
		case "KHOP":
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				reply("ERR usage: KHOP <node> <hops>")
				continue
			}
			node, err1 := strconv.ParseUint(parts[0], 10, 64)
			hops, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				reply("ERR usage: KHOP <node> <hops>")
				continue
			}
			cctx, cancel := cmdCtx()
			n, err := trav.KHopNeighborhoodSize(cctx, 0, node, hops)
			cancel()
			if err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("VISITED %d", n)
		case "STATS":
			st := cloud.Stats()
			reply("STATS local=%d remote=%d retries=%d recoveries=%d mem=%dB",
				st.LocalOps, st.RemoteOps, st.Retries, st.Recoveries, cloud.MemoryUsage())
		case "METRICS":
			cloud.Metrics().WriteJSON(w)
			w.Flush()
		case "BACKUP":
			if err := cloud.Backup(); err != nil {
				reply("ERR %v", err)
				continue
			}
			reply("OK")
		case "QUIT":
			reply("BYE")
			return
		case "":
		default:
			reply("ERR unknown command %q", cmd)
		}
	}
}
