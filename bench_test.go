// Package trinity's root benchmark file wires every table and figure of
// the paper's evaluation into `go test -bench`. Each benchmark runs the
// corresponding internal/bench experiment end to end (graph generation,
// loading, query/computation) and prints the figure's rows once, so
// `go test -bench=. -benchmem` regenerates the full evaluation at quick
// scale. For larger, paper-shaped runs use `go run ./cmd/trinity-bench
// -scale 4`.
package trinity_test

import (
	"context"
	"os"
	"sync"
	"testing"

	"trinity/internal/bench"
)

var printOnce sync.Map

// runFigure executes the experiment b.N times (it is a macro-benchmark:
// one iteration is one full figure regeneration) and prints the resulting
// table on the first run.
func runFigure(b *testing.B, name string, fn func(context.Context, bench.Scale) (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := fn(context.Background(), bench.Scale{Factor: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(name, true); !done {
			table.Print(os.Stdout)
		}
	}
}

// BenchmarkFig8aSubgraphMatching regenerates Figure 8(a): subgraph
// matching time vs node count for DFS and RANDOM queries.
func BenchmarkFig8aSubgraphMatching(b *testing.B) {
	runFigure(b, "fig8a", bench.Fig8a)
}

// BenchmarkFig8bDistanceOracle regenerates Figure 8(b): distance-oracle
// accuracy vs landmark count for the three selection strategies.
func BenchmarkFig8bDistanceOracle(b *testing.B) {
	runFigure(b, "fig8b", bench.Fig8b)
}

// BenchmarkFig12aPeopleSearch regenerates Figure 12(a): people-search
// latency vs node degree, 2-hop and 3-hop.
func BenchmarkFig12aPeopleSearch(b *testing.B) {
	runFigure(b, "fig12a", bench.Fig12a)
}

// BenchmarkFig12bPageRank regenerates Figure 12(b): PageRank iteration
// time vs node count across cluster sizes.
func BenchmarkFig12bPageRank(b *testing.B) {
	runFigure(b, "fig12b", bench.Fig12b)
}

// BenchmarkFig12cBFS regenerates Figure 12(c): BFS execution time vs node
// count across cluster sizes.
func BenchmarkFig12cBFS(b *testing.B) {
	runFigure(b, "fig12c", bench.Fig12c)
}

// BenchmarkFig12dGiraphPageRank regenerates Figure 12(d): PageRank on the
// Giraph-style object-heap baseline.
func BenchmarkFig12dGiraphPageRank(b *testing.B) {
	runFigure(b, "fig12d", bench.Fig12d)
}

// BenchmarkFig13BFSPBGLvsTrinity regenerates Figure 13: BFS time and
// memory for the PBGL-style ghost-cell baseline vs Trinity.
func BenchmarkFig13BFSPBGLvsTrinity(b *testing.B) {
	runFigure(b, "fig13", bench.Fig13)
}

// BenchmarkFig14aSubgraphSpeedup regenerates Figure 14(a): subgraph-match
// parallel speedup on the Wordnet-like and patent-like graphs.
func BenchmarkFig14aSubgraphSpeedup(b *testing.B) {
	runFigure(b, "fig14a", bench.Fig14a)
}

// BenchmarkFig14bSPARQL regenerates Figure 14(b): the four LUBM-style
// SPARQL queries across cluster sizes.
func BenchmarkFig14bSPARQL(b *testing.B) {
	runFigure(b, "fig14b", bench.Fig14b)
}

// BenchmarkThreeHopExploration regenerates the §5.1 headline measurement:
// full 3-hop neighborhood exploration on a power-law social graph.
func BenchmarkThreeHopExploration(b *testing.B) {
	runFigure(b, "3hop", bench.ThreeHop)
}

// BenchmarkMsgOptAblation regenerates the §5.4 ablation: wire messages
// and time with hub-vertex buffering off and on.
func BenchmarkMsgOptAblation(b *testing.B) {
	runFigure(b, "msgopt", bench.MsgOptAblation)
}
