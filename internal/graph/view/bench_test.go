package view

import (
	"context"
	"testing"
	"time"

	"trinity/internal/graph"
	"trinity/internal/hash"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

// benchGraph loads a small synthetic power-law-ish graph onto one machine
// so the two iteration strategies touch identical data.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	cloud := memcloud.New(memcloud.Config{
		Machines: 1,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 2 * time.Second},
	})
	b.Cleanup(cloud.Close)
	bl := graph.NewBuilder(true)
	rng := hash.NewRNG(42)
	const n = 4096
	for i := uint64(0); i < n; i++ {
		deg := 1 + rng.Intn(16)
		for d := 0; d < deg; d++ {
			bl.AddEdge(i, rng.Next()%n)
		}
	}
	g, err := bl.Load(context.Background(), cloud)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkScanCSR iterates every local vertex's out-edges through the
// partition view: one Acquire (cache hit after the first iteration), then
// pure arena walks.
func BenchmarkScanCSR(b *testing.B) {
	g := benchGraph(b)
	m := g.On(0)
	if _, err := Acquire(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		v, err := Acquire(m)
		if err != nil {
			b.Fatal(err)
		}
		for idx := 0; idx < v.NumVertices(); idx++ {
			for _, nb := range v.Out(idx) {
				sum += nb
			}
		}
	}
	_ = sum
}

// BenchmarkScanTrunkDecode is the pre-view per-access path the compute
// engines used to run every superstep: enumerate local ids, then hit cell
// storage (trunk probe + spin lock + header walk) per vertex.
func BenchmarkScanTrunkDecode(b *testing.B) {
	g := benchGraph(b)
	m := g.On(0)
	ids := m.LocalNodeIDs()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			if err := m.ForEachOutlink(id, func(nb uint64) bool {
				sum += nb
				return true
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	_ = sum
}

// BenchmarkDegreeCSR vs BenchmarkDegreeTrunk: the random-access degree
// lookup pattern initVertices and the subgraph matcher use.
func BenchmarkDegreeCSR(b *testing.B) {
	g := benchGraph(b)
	m := g.On(0)
	v, err := Acquire(m)
	if err != nil {
		b.Fatal(err)
	}
	ids := v.IDs()
	b.ResetTimer()
	var sum int
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		if idx, ok := v.IndexOf(id); ok {
			sum += v.OutDegree(idx)
		}
	}
	_ = sum
}

func BenchmarkDegreeTrunk(b *testing.B) {
	g := benchGraph(b)
	m := g.On(0)
	ids := m.LocalNodeIDs()
	b.ResetTimer()
	var sum int
	for i := 0; i < b.N; i++ {
		deg, err := m.OutDegree(context.Background(), ids[i%len(ids)])
		if err != nil {
			b.Fatal(err)
		}
		sum += deg
	}
	_ = sum
}

// BenchmarkBuild measures the one-time snapshot construction cost that
// the per-superstep savings amortize.
func BenchmarkBuild(b *testing.B) {
	g := benchGraph(b)
	m := g.On(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InvalidatePartition()
		if _, err := Acquire(m); err != nil {
			b.Fatal(err)
		}
	}
}
