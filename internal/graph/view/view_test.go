package view

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"time"

	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

func newCloud(t testing.TB, machines int) *memcloud.Cloud {
	c := memcloud.New(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 2 * time.Second},
	})
	t.Cleanup(c.Close)
	return c
}

// localID returns an id owned by machine m, scanning from start.
func localID(m *graph.Machine, start uint64) uint64 {
	for i := start; ; i++ {
		if m.Slave().Owner(i) == m.Slave().ID() {
			return i
		}
	}
}

// remoteID returns an id NOT owned by machine m, scanning from start.
func remoteID(m *graph.Machine, start uint64) uint64 {
	for i := start; ; i++ {
		if m.Slave().Owner(i) != m.Slave().ID() {
			return i
		}
	}
}

func sortedU64(s []uint64) []uint64 {
	out := append([]uint64(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestViewMatchesGraph cross-checks every accessor of every machine's
// view against the graph layer's per-cell reads.
func TestViewMatchesGraph(t *testing.T) {
	cloud := newCloud(t, 4)
	b := graph.NewBuilder(true)
	const n = 200
	for i := uint64(0); i < n; i++ {
		b.AddNode(i, int64(i%5), "")
	}
	for i := uint64(0); i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		b.AddEdge(i, (i+7)%n)
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for mi := 0; mi < g.Machines(); mi++ {
		m := g.On(mi)
		v, err := Acquire(m)
		if err != nil {
			t.Fatal(err)
		}
		total += v.NumVertices()
		ids := v.IDs()
		if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
			t.Fatalf("machine %d: ids not ascending", mi)
		}
		for idx, id := range ids {
			if got, ok := v.IndexOf(id); !ok || got != idx {
				t.Fatalf("machine %d: IndexOf(%d) = %d,%v want %d", mi, id, got, ok, idx)
			}
			if v.IDOf(idx) != id {
				t.Fatalf("machine %d: IDOf(%d) != %d", mi, idx, id)
			}
			if m.Slave().Owner(id) != m.Slave().ID() {
				t.Fatalf("machine %d: view contains non-local vertex %d", mi, id)
			}
			if v.Label(idx) != int64(id%5) {
				t.Fatalf("label(%d) = %d", id, v.Label(idx))
			}
			wantOut, _ := m.Outlinks(context.Background(), id)
			if !reflect.DeepEqual(sortedU64(v.Out(idx)), sortedU64(wantOut)) {
				t.Fatalf("out(%d) = %v want %v", id, v.Out(idx), wantOut)
			}
			if v.OutDegree(idx) != len(wantOut) {
				t.Fatalf("outdeg(%d) = %d", id, v.OutDegree(idx))
			}
			wantIn, _ := m.Inlinks(context.Background(), id)
			if !reflect.DeepEqual(sortedU64(v.In(idx)), sortedU64(wantIn)) {
				t.Fatalf("in(%d) = %v want %v", id, v.In(idx), wantIn)
			}
			if v.InDegree(idx) != len(wantIn) {
				t.Fatalf("indeg(%d) = %d", id, v.InDegree(idx))
			}
			if v.OutWeights(idx) != nil {
				t.Fatalf("unweighted graph has weights at %d", id)
			}
		}
	}
	if total != n {
		t.Fatalf("views cover %d vertices, want %d", total, n)
	}
}

func TestViewWeights(t *testing.T) {
	// One machine so every vertex shares a snapshot and the weighted
	// vertex forces the weight arena to exist.
	cloud := newCloud(t, 1)
	b := graph.NewBuilder(true)
	b.AddWeightedEdge(1, 2, 5)
	b.AddWeightedEdge(1, 3, 9)
	b.AddEdge(2, 3) // unweighted vertex in a weighted graph: padded with 1s
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	for mi := 0; mi < g.Machines(); mi++ {
		v, err := Acquire(g.On(mi))
		if err != nil {
			t.Fatal(err)
		}
		if idx, ok := v.IndexOf(1); ok {
			if w := v.OutWeights(idx); !reflect.DeepEqual(w, []int64{5, 9}) {
				t.Fatalf("weights(1) = %v", w)
			}
		}
		if idx, ok := v.IndexOf(2); ok {
			if w := v.OutWeights(idx); len(w) != 1 || w[0] != 1 {
				t.Fatalf("padded weights(2) = %v", w)
			}
		}
	}
}

// TestViewRemoteSources checks the §5.4 bipartite split: every remote
// in-source with its local targets, no local vertex listed as remote.
func TestViewRemoteSources(t *testing.T) {
	cloud := newCloud(t, 3)
	b := graph.NewBuilder(true)
	const n = 60
	for i := uint64(0); i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		b.AddEdge(i, (i+11)%n)
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	for mi := 0; mi < g.Machines(); mi++ {
		m := g.On(mi)
		v, err := Acquire(m)
		if err != nil {
			t.Fatal(err)
		}
		// Recompute the expected split from the in arenas.
		want := map[uint64]map[int32]bool{}
		for idx := 0; idx < v.NumVertices(); idx++ {
			for _, src := range v.In(idx) {
				if _, local := v.IndexOf(src); !local {
					if want[src] == nil {
						want[src] = map[int32]bool{}
					}
					want[src][int32(idx)] = true
				}
			}
		}
		rs := v.RemoteInSources()
		if len(rs) != len(want) {
			t.Fatalf("machine %d: %d remote sources, want %d", mi, len(rs), len(want))
		}
		var prev uint64
		for i, r := range rs {
			if i > 0 && r.ID <= prev {
				t.Fatalf("machine %d: remote sources not sorted", mi)
			}
			prev = r.ID
			if _, local := v.IndexOf(r.ID); local {
				t.Fatalf("machine %d: local vertex %d listed remote", mi, r.ID)
			}
			if m.Slave().Owner(r.ID) == m.Slave().ID() {
				t.Fatalf("machine %d: owned vertex %d listed remote", mi, r.ID)
			}
			if len(r.Targets) != len(want[r.ID]) {
				t.Fatalf("machine %d: source %d targets %v want %v", mi, r.ID, r.Targets, want[r.ID])
			}
			for _, tgt := range r.Targets {
				if !want[r.ID][tgt] {
					t.Fatalf("machine %d: source %d bogus target %d", mi, r.ID, tgt)
				}
			}
		}
	}
}

func TestViewCacheHit(t *testing.T) {
	cloud := newCloud(t, 2)
	b := graph.NewBuilder(true)
	b.AddEdge(1, 2)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	m := g.On(0)
	v1, err := Acquire(m)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Acquire(m)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("unchanged partition rebuilt instead of cache hit")
	}
}

// TestViewInvalidation is the satellite regression test: mutate the graph
// mid-job with AddEdge on a local and on a remote endpoint, assert the
// epoch bumps, a re-Acquired view reflects the new edge, and the held
// snapshot stays stable.
func TestViewInvalidation(t *testing.T) {
	cloud := newCloud(t, 3)
	gg := graph.New(cloud, true)
	m0 := gg.On(0)
	src := localID(m0, 0)
	dstLocal := localID(m0, src+1)
	dstRemote := remoteID(m0, 1000)
	for _, id := range []uint64{src, dstLocal, dstRemote} {
		if err := m0.AddNode(context.Background(), &graph.Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}

	held, err := Acquire(m0)
	if err != nil {
		t.Fatal(err)
	}
	heldEdges := held.NumEdges()
	epoch0 := m0.Epoch()

	// Local mutation: both endpoints on machine 0.
	if err := m0.AddEdge(context.Background(), src, dstLocal); err != nil {
		t.Fatal(err)
	}
	if m0.Epoch() == epoch0 {
		t.Fatal("local AddEdge did not bump owner epoch")
	}
	v2, err := Acquire(m0)
	if err != nil {
		t.Fatal(err)
	}
	if v2 == held {
		t.Fatal("stale view returned after local mutation")
	}
	idx, ok := v2.IndexOf(src)
	if !ok {
		t.Fatalf("src %d missing from rebuilt view", src)
	}
	if got := v2.Out(idx); len(got) != 1 || got[0] != dstLocal {
		t.Fatalf("rebuilt out(src) = %v", got)
	}

	// Remote mutation: dst owned by another machine; the directed inlink
	// write must bump the DST owner's epoch, and issuing the AddEdge from
	// a non-owner machine must still bump the SRC owner's epoch.
	owner := int(m0.Slave().Owner(dstRemote))
	mOwner := gg.On(owner)
	vRemoteBefore, err := Acquire(mOwner)
	if err != nil {
		t.Fatal(err)
	}
	epochSrc := m0.Epoch()
	other := gg.On((owner + 1) % gg.Machines())
	if err := other.AddEdge(context.Background(), src, dstRemote); err != nil {
		t.Fatal(err)
	}
	if m0.Epoch() == epochSrc {
		t.Fatal("AddEdge via non-owner machine did not bump src owner epoch")
	}
	if mOwner.Epoch() == vRemoteBefore.Epoch() {
		t.Fatal("inlink write did not bump dst owner epoch")
	}
	vRemoteAfter, err := Acquire(mOwner)
	if err != nil {
		t.Fatal(err)
	}
	ridx, ok := vRemoteAfter.IndexOf(dstRemote)
	if !ok {
		t.Fatalf("dstRemote %d missing from its owner view", dstRemote)
	}
	if got := vRemoteAfter.In(ridx); len(got) != 1 || got[0] != src {
		t.Fatalf("rebuilt in(dstRemote) = %v", got)
	}
	// src is not local on the dst owner, so it must appear as a remote
	// in-source feeding dstRemote.
	foundRemoteSrc := false
	for _, rs := range vRemoteAfter.RemoteInSources() {
		if rs.ID == src {
			foundRemoteSrc = true
			if len(rs.Targets) != 1 || int(rs.Targets[0]) != ridx {
				t.Fatalf("remote source %d targets = %v want [%d]", src, rs.Targets, ridx)
			}
		}
	}
	if !foundRemoteSrc {
		t.Fatalf("src %d not in dst owner's remote sources", src)
	}

	// The held snapshot never changed.
	if held.NumEdges() != heldEdges {
		t.Fatal("held snapshot mutated")
	}
	if idxH, ok := held.IndexOf(src); ok && len(held.Out(idxH)) != 0 {
		t.Fatal("held snapshot grew an edge")
	}
}

// TestViewEmptyPartition: a machine with no local vertices yields an
// empty view, not an error.
func TestViewEmptyPartition(t *testing.T) {
	cloud := newCloud(t, 4)
	g := graph.New(cloud, true)
	m := g.On(0)
	id := localID(m, 0)
	if err := m.AddNode(context.Background(), &graph.Node{ID: id}); err != nil {
		t.Fatal(err)
	}
	for mi := 0; mi < g.Machines(); mi++ {
		v, err := Acquire(g.On(mi))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := v.IndexOf(id); ok != (g.On(mi).Slave().Owner(id) == g.On(mi).Slave().ID()) {
			t.Fatalf("machine %d: wrong locality for %d", mi, id)
		}
		if v.NumVertices() == 0 && v.NumEdges() != 0 {
			t.Fatalf("machine %d: empty view with edges", mi)
		}
	}
}

// TestViewMalformedBlob: a corrupt cell written behind the graph layer's
// back surfaces as an Acquire error, not a panic or a silent skip.
func TestViewMalformedBlob(t *testing.T) {
	cloud := newCloud(t, 1)
	g := graph.New(cloud, true)
	m := g.On(0)
	if err := m.AddNode(context.Background(), &graph.Node{ID: 1, Outlinks: nil}); err != nil {
		t.Fatal(err)
	}
	// Truncated blob: label only, no name/list headers.
	if err := m.Slave().Put(context.Background(), 7, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	m.InvalidatePartition()
	if _, err := Acquire(m); err == nil {
		t.Fatal("Acquire accepted a truncated cell blob")
	}
}
