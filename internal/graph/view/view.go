// Package view is the per-machine partition snapshot layer under
// Trinity's compute engines — the realization of the paper's §5.4 "local
// view": each machine materializes its partition of the graph once, in a
// compact immutable form, so jobs never re-touch cell storage (a trunk
// hash probe, a spin lock and a blob header decode) per vertex access.
//
// A View is a CSR snapshot of one machine's local vertices: dense
// local-index ↔ vertex-ID maps, out/in adjacency packed into shared
// neighbor arenas with offset arrays, per-vertex labels, optional edge
// weights, and the remote/local bipartite split (which remote vertices
// feed which local targets) that the §5.4 hub-buffering pass consumes
// directly.
//
// Views are invalidated by epoch: every mutation of a machine's partition
// through the graph layer bumps graph.Machine.Epoch, and Acquire rebuilds
// lazily — concurrently trunk by trunk — when the cached snapshot's epoch
// no longer matches. A held View is never mutated; computations keep a
// stable snapshot while new Acquires observe new edges.
package view

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/obs"
)

// RemoteSource is one side of the bipartite split: a vertex that is not
// local to this machine but has out-edges into it. Targets are the dense
// local indices of the vertices it feeds.
type RemoteSource struct {
	ID      uint64
	Targets []int32
}

// View is an immutable CSR snapshot of one machine's partition. All
// returned slices alias internal arenas and must not be modified.
type View struct {
	epoch  uint64
	ids    []uint64         // dense local index -> vertex ID (ascending)
	index  map[uint64]int32 // vertex ID -> dense local index
	labels []int64

	outOff []uint32 // len NumVertices()+1
	out    []uint64 // out-neighbor arena
	wts    []int64  // parallel to out; nil when no vertex carries weights

	inOff []uint32
	in    []uint64 // in-neighbor arena

	remote []RemoteSource // sorted by ID

	// hits is the scope counter bumped when Acquire returns this cached
	// snapshot; carrying it here keeps the hot hit path free of registry
	// lookups.
	hits *obs.Counter
}

// Epoch returns the machine mutation epoch this snapshot was built at.
func (v *View) Epoch() uint64 { return v.epoch }

// NumVertices returns the number of local vertices.
func (v *View) NumVertices() int { return len(v.ids) }

// NumEdges returns the number of local out-edges.
func (v *View) NumEdges() int { return len(v.out) }

// IDs returns the dense-index -> vertex-ID map (do not modify).
func (v *View) IDs() []uint64 { return v.ids }

// IDOf returns the vertex ID at dense local index idx.
func (v *View) IDOf(idx int) uint64 { return v.ids[idx] }

// IndexOf returns the dense local index of a vertex ID, and whether the
// vertex is local to this partition.
func (v *View) IndexOf(id uint64) (int, bool) {
	idx, ok := v.index[id]
	return int(idx), ok
}

// Label returns the label of the vertex at dense index idx.
func (v *View) Label(idx int) int64 { return v.labels[idx] }

// OutDegree returns the out-degree of the vertex at dense index idx.
func (v *View) OutDegree(idx int) int {
	return int(v.outOff[idx+1] - v.outOff[idx])
}

// InDegree returns the in-degree of the vertex at dense index idx. For
// graphs loaded undirected it is zero: neighbors live in Out on both
// endpoints.
func (v *View) InDegree(idx int) int {
	return int(v.inOff[idx+1] - v.inOff[idx])
}

// Out returns the out-neighbors of the vertex at dense index idx as a
// slice of the shared arena (do not modify; safe to retain).
func (v *View) Out(idx int) []uint64 {
	return v.out[v.outOff[idx]:v.outOff[idx+1]]
}

// In returns the in-neighbors of the vertex at dense index idx.
func (v *View) In(idx int) []uint64 {
	return v.in[v.inOff[idx]:v.inOff[idx+1]]
}

// OutWeights returns the edge weights parallel to Out(idx), or nil when
// the snapshot carries no weights at all (every edge then has weight 1).
func (v *View) OutWeights(idx int) []int64 {
	if v.wts == nil {
		return nil
	}
	return v.wts[v.outOff[idx]:v.outOff[idx+1]]
}

// RemoteInSources returns the remote side of the bipartite split — every
// non-local vertex with at least one out-edge into this partition, with
// its local targets — sorted by vertex ID. The §5.4 hub-detection pass
// reads this directly instead of re-walking every local in-link list.
func (v *View) RemoteInSources() []RemoteSource { return v.remote }

// Acquire returns the machine's current partition snapshot, rebuilding it
// (concurrently, trunk by trunk) when the cached one predates the
// machine's mutation epoch. The returned View is immutable; callers may
// hold it across an arbitrary amount of work while newer Acquires observe
// newer epochs. Concurrent Acquires may race to build the same epoch;
// both produce equivalent snapshots and last-store wins.
func Acquire(m *graph.Machine) (*View, error) {
	epoch := m.Epoch()
	if v, ok := m.CachedView().(*View); ok && v != nil && v.epoch == epoch {
		v.hits.Inc()
		return v, nil
	}
	v, err := build(m, epoch)
	if err != nil {
		return nil, err
	}
	m.StoreView(v)
	return v, nil
}

// rec is one decoded vertex inside a trunk part, with spans into the
// part's arenas.
type rec struct {
	id             uint64
	label          int64
	outOff, outLen uint32
	inOff, inLen   uint32
	wOff, wLen     uint32
}

// part accumulates one trunk's decoded vertices.
type part struct {
	recs []rec
	out  []uint64
	in   []uint64
	wts  []int64
	err  error
}

// mergeRec locates a vertex record across trunk parts during the merge.
type mergeRec struct {
	part int32
	rec  rec
}

// build constructs a fresh snapshot of the machine's partition at the
// given epoch. The epoch is sampled by the caller BEFORE any trunk is
// read: a mutation racing the build lands in a later epoch and forces the
// next Acquire to rebuild, so a torn read can never be cached forever.
func build(m *graph.Machine, epoch uint64) (*View, error) {
	s := m.Slave()
	scope := s.Metrics().Scope("view")
	builds := scope.Counter("builds")
	buildNs := scope.Histogram("build_ns")
	start := time.Now()

	tids := s.LocalTrunkIDs()
	parts := make([]part, len(tids))
	workers := runtime.NumCPU()
	if workers > len(tids) {
		workers = len(tids)
	}
	if workers < 1 {
		workers = 1
	}
	trunkIdx := make(chan int, len(tids))
	for i := range tids {
		trunkIdx <- i
	}
	close(trunkIdx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range trunkIdx {
				scanTrunk(s, tids[i], &parts[i])
			}
		}()
	}
	wg.Wait()
	for i := range parts {
		if parts[i].err != nil {
			return nil, parts[i].err
		}
	}

	// Merge: dense indices are assigned in ascending vertex-ID order so
	// snapshots of an unchanged partition are deterministic.
	n, totalOut, totalIn := 0, 0, 0
	hasW := false
	for i := range parts {
		n += len(parts[i].recs)
		totalOut += len(parts[i].out)
		totalIn += len(parts[i].in)
		hasW = hasW || len(parts[i].wts) > 0
	}
	if totalOut > math.MaxUint32 || totalIn > math.MaxUint32 {
		return nil, fmt.Errorf("view: partition exceeds %d edges", uint64(math.MaxUint32))
	}
	all := make([]mergeRec, 0, n)
	for pi := range parts {
		for _, r := range parts[pi].recs {
			all = append(all, mergeRec{part: int32(pi), rec: r})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rec.id < all[j].rec.id })

	v := &View{
		epoch:  epoch,
		ids:    make([]uint64, n),
		index:  make(map[uint64]int32, n),
		labels: make([]int64, n),
		outOff: make([]uint32, n+1),
		out:    make([]uint64, 0, totalOut),
		inOff:  make([]uint32, n+1),
		in:     make([]uint64, 0, totalIn),
		hits:   scope.Counter("cache_hits"),
	}
	if hasW {
		v.wts = make([]int64, 0, totalOut)
	}
	for i, gr := range all {
		p := &parts[gr.part]
		r := gr.rec
		v.ids[i] = r.id
		v.index[r.id] = int32(i)
		v.labels[i] = r.label
		v.out = append(v.out, p.out[r.outOff:r.outOff+r.outLen]...)
		v.in = append(v.in, p.in[r.inOff:r.inOff+r.inLen]...)
		if hasW {
			// Keep the weight arena parallel to the out arena: pad missing
			// weights with 1 (the ForEachOutEdge contract) and drop any
			// excess beyond the out-degree.
			wn := r.wLen
			if wn > r.outLen {
				wn = r.outLen
			}
			v.wts = append(v.wts, p.wts[r.wOff:r.wOff+wn]...)
			for k := wn; k < r.outLen; k++ {
				v.wts = append(v.wts, 1)
			}
		}
		v.outOff[i+1] = uint32(len(v.out))
		v.inOff[i+1] = uint32(len(v.in))
	}
	v.remote = remoteSplit(v)

	builds.Inc()
	buildNs.Observe(int64(time.Since(start)))
	return v, nil
}

// scanTrunk decodes every cell of one trunk into the part's arenas.
func scanTrunk(s *memcloud.Slave, tid uint32, p *part) {
	s.ForEachInTrunk(tid, func(key uint64, payload []byte) bool {
		outStart, inStart, wStart := len(p.out), len(p.in), len(p.wts)
		label, wts, in, out, err := graph.AppendNodeLists(payload, p.wts, p.in, p.out)
		if err != nil {
			p.err = fmt.Errorf("view: vertex %d: %w", key, err)
			return false
		}
		p.wts, p.in, p.out = wts, in, out
		p.recs = append(p.recs, rec{
			id:     key,
			label:  label,
			outOff: uint32(outStart),
			outLen: uint32(len(p.out) - outStart),
			inOff:  uint32(inStart),
			inLen:  uint32(len(p.in) - inStart),
			wOff:   uint32(wStart),
			wLen:   uint32(len(p.wts) - wStart),
		})
		return true
	})
}

// remoteSplit computes the bipartite split from the finished in arena:
// every in-neighbor that is not itself a local vertex is a remote source.
func remoteSplit(v *View) []RemoteSource {
	rmap := make(map[uint64][]int32)
	for idx := 0; idx < v.NumVertices(); idx++ {
		for _, srcID := range v.In(idx) {
			if _, ok := v.index[srcID]; !ok {
				rmap[srcID] = append(rmap[srcID], int32(idx))
			}
		}
	}
	if len(rmap) == 0 {
		return nil
	}
	out := make([]RemoteSource, 0, len(rmap))
	for id, targets := range rmap {
		out = append(out, RemoteSource{ID: id, Targets: targets})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
