package graph

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"trinity/internal/hash"
	"trinity/internal/memcloud"
	"trinity/internal/memcloud/fetch"
	"trinity/internal/msg"
)

// ErrNoNode reports that a node cell does not exist.
var ErrNoNode = errors.New("graph: no such node")

// Graph protocol IDs (engine-internal, below tsl.ProtoUserBase).
const (
	protoAddEdge msg.ProtocolID = 0x0201 + iota
	protoAddInlink
	protoGetNode
	protoDegrees
)

// Graph is a distributed graph over a memory cloud. One Machine engine
// runs per slave; any machine can serve any operation, with remote hops
// handled by one-sided protocols.
type Graph struct {
	Directed bool
	machines []*Machine
}

// Machine is the graph engine bound to one memory-cloud slave.
type Machine struct {
	g *Graph
	s *memcloud.Slave
	// stripes serialize read-modify-write mutations of local node cells;
	// plain reads stay lock-free (trunk spin locks suffice).
	stripes [128]sync.Mutex
	// epoch counts mutations of this machine's local partition. The
	// partition-view layer (internal/graph/view) compares it against a
	// cached snapshot's epoch to decide whether the snapshot is stale.
	epoch atomic.Uint64
	// viewCache is the partition-view layer's cache slot, typed any to
	// avoid an import cycle (graph/view imports graph).
	viewCache atomic.Value
	// fetcher is the machine's batched cell-read pipeline, built lazily:
	// engines that never read remote cells never pay for it.
	fetchOnce sync.Once
	fetcher   *fetch.Fetcher
}

// New attaches a graph engine to every slave of the cloud.
func New(cloud *memcloud.Cloud, directed bool) *Graph {
	g := &Graph{Directed: directed}
	for i := 0; i < cloud.Slaves(); i++ {
		m := &Machine{g: g, s: cloud.Slave(i)}
		node := m.s.Node()
		node.HandleSync(protoAddEdge, m.onAddEdge)
		node.HandleSync(protoAddInlink, m.onAddInlink)
		node.HandleSync(protoGetNode, m.onGetNode)
		node.HandleSync(protoDegrees, m.onDegrees)
		g.machines = append(g.machines, m)
	}
	return g
}

// Machines returns the number of machines in the graph's cluster.
func (g *Graph) Machines() int { return len(g.machines) }

// On returns the graph engine of machine i. Computation engines (BSP,
// traversal) work against a specific machine's local view.
func (g *Graph) On(i int) *Machine { return g.machines[i] }

// Slave returns the memory-cloud slave behind machine i.
func (m *Machine) Slave() *memcloud.Slave { return m.s }

// Fetcher returns the machine's batched cell-read pipeline, creating it
// on first use. All remote cell reads issued through this graph engine —
// GetNode, Outlinks, Label, GetNodes — flow through it, so concurrent
// readers on one machine share frames and coalesce duplicate keys.
func (m *Machine) Fetcher() *fetch.Fetcher {
	m.fetchOnce.Do(func() {
		m.fetcher = fetch.New(m.s, fetch.Options{Metrics: m.s.Metrics()})
	})
	return m.fetcher
}

// cellGet reads one cell through the fetch pipeline. The immediate Flush
// keeps the synchronous callers' latency at one round trip (no age-timer
// wait) while still letting concurrent readers ride the same frame.
func (m *Machine) cellGet(ctx context.Context, id uint64) ([]byte, error) {
	f := m.Fetcher()
	fu := f.GetAsync(id)
	select {
	case <-fu.Done():
		// Local (or coalesced, already-resolved) read: no wire traffic to
		// flush.
	default:
		f.Flush()
	}
	return fu.Wait(ctx)
}

func (m *Machine) stripe(id uint64) *sync.Mutex {
	return &m.stripes[hash.Mix64(id)&127]
}

// Epoch returns the machine's partition mutation epoch. Every mutation of
// a local node cell that flows through the graph layer (AddNode, PutNode,
// either endpoint of AddEdge landing here, a Builder flush) bumps it.
func (m *Machine) Epoch() uint64 { return m.epoch.Load() }

// InvalidatePartition bumps the mutation epoch, marking any cached
// partition view of this machine stale. Code that mutates node cells
// through the memory cloud directly (bypassing the graph engine's
// mutators) must call it on the owner machine.
func (m *Machine) InvalidatePartition() { m.epoch.Add(1) }

// CachedView returns the partition snapshot last stored by StoreView, or
// nil. The slot is owned by internal/graph/view; it lives here only
// because Go import cycles prevent the view package from hanging state
// off Machine itself.
func (m *Machine) CachedView() any { return m.viewCache.Load() }

// StoreView caches a partition snapshot on the machine.
func (m *Machine) StoreView(v any) { m.viewCache.Store(v) }

// ownerMachine returns the graph engine bound to the slave with the given
// machine id, or nil if no such machine is in this graph's cluster.
func (m *Machine) ownerMachine(id msg.MachineID) *Machine {
	for _, om := range m.g.machines {
		if om.s.ID() == id {
			return om
		}
	}
	return nil
}

// invalidateOwner bumps the partition epoch of the machine owning key.
func (m *Machine) invalidateOwner(key uint64) {
	if om := m.ownerMachine(m.s.Owner(key)); om != nil {
		om.InvalidatePartition()
	}
}

// AddNode creates a node cell. It can be called from any machine.
func (m *Machine) AddNode(ctx context.Context, n *Node) error {
	err := m.s.Add(ctx, n.ID, EncodeNode(n))
	if err == nil {
		m.invalidateOwner(n.ID)
	}
	return err
}

// PutNode creates or replaces a node cell.
func (m *Machine) PutNode(ctx context.Context, n *Node) error {
	err := m.s.Put(ctx, n.ID, EncodeNode(n))
	if err == nil {
		m.invalidateOwner(n.ID)
	}
	return err
}

// GetNode fetches and decodes a node from wherever it lives. Remote
// reads go through the fetch pipeline, so concurrent GetNode calls on
// one machine batch into shared frames.
func (m *Machine) GetNode(ctx context.Context, id uint64) (*Node, error) {
	blob, err := m.cellGet(ctx, id)
	if err != nil {
		if errors.Is(err, memcloud.ErrNotFound) {
			return nil, fmt.Errorf("%w: %d", ErrNoNode, id)
		}
		return nil, err
	}
	return DecodeNode(id, blob)
}

// GetNodes fetches and decodes many nodes in one scatter-gather sweep:
// keys are grouped per owner machine and each group rides multi-get
// frames instead of one round trip per node. fn is invoked once per id in
// argument order; a missing node reports ErrNoNode.
func (m *Machine) GetNodes(ctx context.Context, ids []uint64, fn func(i int, n *Node, err error)) {
	m.Fetcher().GetBatch(ctx, ids, func(i int, id uint64, blob []byte, err error) {
		if err != nil {
			if errors.Is(err, memcloud.ErrNotFound) {
				err = fmt.Errorf("%w: %d", ErrNoNode, id)
			}
			fn(i, nil, err)
			return
		}
		n, derr := DecodeNode(id, blob)
		fn(i, n, derr)
	})
}

// HasNode reports whether the node exists.
func (m *Machine) HasNode(ctx context.Context, id uint64) bool {
	ok, err := m.s.Contains(ctx, id)
	return err == nil && ok
}

// AddEdge adds the edge src -> dst (or an undirected edge when the graph
// is undirected). Both endpoint cells must exist. The mutation executes on
// the owner machine of each endpoint, serialized by its write stripes.
func (m *Machine) AddEdge(ctx context.Context, src, dst uint64) error {
	if err := m.mutateEndpoint(ctx, src, dst, false); err != nil {
		return err
	}
	if m.g.Directed {
		return m.mutateEndpoint(ctx, dst, src, true)
	}
	return m.mutateEndpoint(ctx, dst, src, false)
}

// mutateEndpoint appends `other` to node's outlinks (inlink=false) or
// inlinks (inlink=true), routing to the node's owner.
func (m *Machine) mutateEndpoint(ctx context.Context, node, other uint64, inlink bool) error {
	owner := m.s.Owner(node)
	if owner == m.s.ID() {
		return m.addLinkLocal(ctx, node, other, inlink)
	}
	proto := protoAddEdge
	if inlink {
		proto = protoAddInlink
	}
	req := make([]byte, 16)
	binary.LittleEndian.PutUint64(req, node)
	binary.LittleEndian.PutUint64(req[8:], other)
	_, err := m.s.Node().Call(ctx, owner, proto, req)
	if err != nil && errors.Is(mapRemote(err), ErrNoNode) {
		return fmt.Errorf("%w: %d", ErrNoNode, node)
	}
	return err
}

// mapRemote recognizes ErrNoNode after it crossed the wire as text.
func mapRemote(err error) error {
	if err != nil && (errors.Is(err, ErrNoNode) || strings.Contains(err.Error(), "no such node")) {
		return ErrNoNode
	}
	return err
}

// addLinkLocal performs the read-modify-write on a local node cell.
func (m *Machine) addLinkLocal(ctx context.Context, node, other uint64, inlink bool) error {
	mu := m.stripe(node)
	mu.Lock()
	defer mu.Unlock()
	blob, err := m.s.Get(ctx, node)
	if err != nil {
		if errors.Is(err, memcloud.ErrNotFound) {
			return fmt.Errorf("%w: %d", ErrNoNode, node)
		}
		return err
	}
	n, err := DecodeNode(node, blob)
	if err != nil {
		return err
	}
	if inlink {
		n.Inlinks = append(n.Inlinks, other)
	} else {
		n.Outlinks = append(n.Outlinks, other)
	}
	if err := m.s.Put(ctx, node, EncodeNode(n)); err != nil {
		return err
	}
	m.InvalidatePartition()
	return nil
}

func (m *Machine) onAddEdge(ctx context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	if len(req) != 16 {
		return nil, errors.New("graph: bad AddEdge request")
	}
	node := binary.LittleEndian.Uint64(req)
	other := binary.LittleEndian.Uint64(req[8:])
	return nil, m.addLinkLocal(ctx, node, other, false)
}

func (m *Machine) onAddInlink(ctx context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	if len(req) != 16 {
		return nil, errors.New("graph: bad AddInlink request")
	}
	node := binary.LittleEndian.Uint64(req)
	other := binary.LittleEndian.Uint64(req[8:])
	return nil, m.addLinkLocal(ctx, node, other, true)
}

func (m *Machine) onGetNode(ctx context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	if len(req) != 8 {
		return nil, errors.New("graph: bad GetNode request")
	}
	blob, err := m.s.Get(ctx, binary.LittleEndian.Uint64(req))
	return blob, err
}

// Outlinks returns the node's out-neighbors (copy).
func (m *Machine) Outlinks(ctx context.Context, id uint64) ([]uint64, error) {
	return m.links(ctx, id, listOutlinks)
}

// Inlinks returns the node's in-neighbors (copy). For undirected graphs
// the inlink list is empty: neighbors live in Outlinks on both endpoints.
func (m *Machine) Inlinks(ctx context.Context, id uint64) ([]uint64, error) {
	return m.links(ctx, id, listInlinks)
}

func (m *Machine) links(ctx context.Context, id uint64, list int) ([]uint64, error) {
	var out []uint64
	collect := func(b []byte) error {
		off, count, err := blobListAt(b, list)
		if err != nil {
			return err
		}
		out = make([]uint64, count)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(b[off+8*i:])
		}
		return nil
	}
	if m.s.Owner(id) == m.s.ID() {
		err := m.s.View(id, collect)
		if errors.Is(err, memcloud.ErrNotFound) {
			return nil, fmt.Errorf("%w: %d", ErrNoNode, id)
		}
		return out, err
	}
	blob, err := m.cellGet(ctx, id)
	if err != nil {
		if errors.Is(err, memcloud.ErrNotFound) {
			return nil, fmt.Errorf("%w: %d", ErrNoNode, id)
		}
		return nil, err
	}
	return out, collect(blob)
}

// ForEachOutlink streams a LOCAL node's out-neighbors zero-copy — the
// GetOutlinks/Foreach pattern of the paper's API sketch and the hot path
// of every traversal. Remote nodes return ErrWrongOwner.
func (m *Machine) ForEachOutlink(id uint64, fn func(v uint64) bool) error {
	return m.s.View(id, func(b []byte) error {
		return forEachListEntry(b, listOutlinks, fn)
	})
}

// ForEachOutEdge streams a LOCAL node's out-edges with weights. When the
// node carries no Weights list every edge reports weight 1.
func (m *Machine) ForEachOutEdge(id uint64, fn func(dst uint64, w int64) bool) error {
	return m.s.View(id, func(b []byte) error {
		wOff, wCount, err := blobListAt(b, listWeights)
		if err != nil {
			return err
		}
		oOff, oCount, err := blobListAt(b, listOutlinks)
		if err != nil {
			return err
		}
		for i := 0; i < oCount; i++ {
			w := int64(1)
			if i < wCount {
				w = int64(binary.LittleEndian.Uint64(b[wOff+8*i:]))
			}
			if !fn(binary.LittleEndian.Uint64(b[oOff+8*i:]), w) {
				return nil
			}
		}
		return nil
	})
}

// ForEachInlink streams a LOCAL node's in-neighbors zero-copy.
func (m *Machine) ForEachInlink(id uint64, fn func(v uint64) bool) error {
	return m.s.View(id, func(b []byte) error {
		return forEachListEntry(b, listInlinks, fn)
	})
}

// onDegrees serves the 16-byte degree summary of a local node; remote
// degree queries use this instead of shipping a whole (possibly hub-sized)
// cell across the wire.
func (m *Machine) onDegrees(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	if len(req) != 8 {
		return nil, errors.New("graph: bad Degrees request")
	}
	id := binary.LittleEndian.Uint64(req)
	var resp [8]byte
	err := m.s.View(id, func(b []byte) error {
		_, out, err := blobListAt(b, listOutlinks)
		if err != nil {
			return err
		}
		_, in, err := blobListAt(b, listInlinks)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(resp[0:], uint32(out))
		binary.LittleEndian.PutUint32(resp[4:], uint32(in))
		return nil
	})
	return resp[:], err
}

// degrees returns (outDegree, inDegree) for a node anywhere in the cloud.
func (m *Machine) degrees(ctx context.Context, id uint64) (int, int, error) {
	owner := m.s.Owner(id)
	if owner == m.s.ID() {
		out, in := -1, -1
		err := m.s.View(id, func(b []byte) error {
			_, o, err := blobListAt(b, listOutlinks)
			if err != nil {
				return err
			}
			_, i, err := blobListAt(b, listInlinks)
			if err != nil {
				return err
			}
			out, in = o, i
			return nil
		})
		return out, in, err
	}
	var req [8]byte
	binary.LittleEndian.PutUint64(req[:], id)
	resp, err := m.s.Node().Call(ctx, owner, protoDegrees, req[:])
	if err != nil || len(resp) != 8 {
		if err == nil {
			err = errors.New("graph: short Degrees response")
		}
		return 0, 0, err
	}
	return int(binary.LittleEndian.Uint32(resp[0:])), int(binary.LittleEndian.Uint32(resp[4:])), nil
}

// OutDegree returns the node's out-degree without copying links.
func (m *Machine) OutDegree(ctx context.Context, id uint64) (int, error) {
	out, _, err := m.degrees(ctx, id)
	return out, err
}

// InDegree returns the node's in-degree without copying links.
func (m *Machine) InDegree(ctx context.Context, id uint64) (int, error) {
	_, in, err := m.degrees(ctx, id)
	return in, err
}

// Label returns the node's label.
func (m *Machine) Label(ctx context.Context, id uint64) (int64, error) {
	var label int64
	read := func(b []byte) error {
		if len(b) < 8 {
			return errors.New("graph: short node blob")
		}
		label = blobLabel(b)
		return nil
	}
	if m.s.Owner(id) == m.s.ID() {
		return label, m.s.View(id, read)
	}
	blob, err := m.cellGet(ctx, id)
	if err != nil {
		return 0, err
	}
	return label, read(blob)
}

// Name returns the node's name.
func (m *Machine) Name(ctx context.Context, id uint64) (string, error) {
	n, err := m.GetNode(ctx, id)
	if err != nil {
		return "", err
	}
	return n.Name, nil
}

// LocalNodeIDs returns the IDs of all nodes stored on this machine.
func (m *Machine) LocalNodeIDs() []uint64 {
	return m.s.LocalKeys()
}

// ForEachLocalNode iterates the machine's local nodes zero-copy. The blob
// passed to fn must not be retained.
func (m *Machine) ForEachLocalNode(fn func(id uint64, blob []byte) bool) {
	m.s.ForEachLocal(fn)
}

// NodeCount returns the total node count across all machines.
func (g *Graph) NodeCount() int {
	total := 0
	for _, m := range g.machines {
		total += len(m.LocalNodeIDs())
	}
	return total
}

// EdgeCount returns the total directed edge count (out-edges summed).
func (g *Graph) EdgeCount() int {
	total := 0
	for _, m := range g.machines {
		m.ForEachLocalNode(func(_ uint64, blob []byte) bool {
			if _, count, err := blobListAt(blob, listOutlinks); err == nil {
				total += count
			}
			return true
		})
	}
	return total
}
