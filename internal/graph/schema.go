// Package graph implements Trinity's graph model (paper §4.1) on top of
// the memory cloud: graph nodes are cells, edges are cell-ID lists inside
// node cells (SimpleEdge), and all access goes through the cell accessor
// machinery so the topology lives in blobs, not runtime objects.
//
// The node schema is declared in TSL and compiled at init, making the TSL
// pipeline load-bearing for the engine itself. Hot paths additionally use
// hand-written encoders that produce byte-identical blobs (verified by
// tests against the schema-driven encoder).
package graph

import (
	"encoding/binary"
	"fmt"

	"trinity/internal/cell"
	"trinity/internal/tsl"
)

// NodeTSL is the TSL declaration of a graph node cell. Outlinks is
// deliberately the final field: a tail List<long> supports O(1) edge
// appends (count bump + blob append) without shifting the cell.
const NodeTSL = `
// A general-purpose graph node. Label carries an application-defined
// 64-bit tag (e.g. a vertex type or an interned name) used by label-aware
// algorithms such as subgraph matching; Name is optional human-readable
// payload; Weights, when non-empty, is parallel to Outlinks.
[CellType: NodeCell]
cell struct GraphNode
{
	long Label;
	string Name;
	List<long> Weights;
	[EdgeType: SimpleEdge, ReferencedCell: GraphNode]
	List<long> Inlinks;
	[EdgeType: SimpleEdge, ReferencedCell: GraphNode]
	List<long> Outlinks;
}
`

// Schema is the compiled node schema.
var Schema = tsl.MustCompile(NodeTSL)

// NodeSchema is the GraphNode struct type.
var NodeSchema = Schema.Struct("GraphNode")

// Node is the decoded form of a node cell.
type Node struct {
	ID       uint64
	Label    int64
	Name     string
	Weights  []int64
	Inlinks  []uint64
	Outlinks []uint64
}

// EncodeNode serializes a node into the GraphNode blob layout. It is the
// fast-path equivalent of cell.Encode over NodeSchema (tested to match).
func EncodeNode(n *Node) []byte {
	size := 8 + 4 + len(n.Name) + 4 + 8*len(n.Weights) + 4 + 8*len(n.Inlinks) + 4 + 8*len(n.Outlinks)
	b := make([]byte, 0, size)
	b = binary.LittleEndian.AppendUint64(b, uint64(n.Label))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(n.Name)))
	b = append(b, n.Name...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(n.Weights)))
	for _, w := range n.Weights {
		b = binary.LittleEndian.AppendUint64(b, uint64(w))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(n.Inlinks)))
	for _, v := range n.Inlinks {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(n.Outlinks)))
	for _, v := range n.Outlinks {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	return b
}

// DecodeNode parses a GraphNode blob.
func DecodeNode(id uint64, blob []byte) (*Node, error) {
	v := &view{b: blob}
	n := &Node{ID: id}
	var err error
	if n.Label, err = v.long(); err != nil {
		return nil, err
	}
	if n.Name, err = v.str(); err != nil {
		return nil, err
	}
	if n.Weights, err = v.longs(); err != nil {
		return nil, err
	}
	var in, out []int64
	if in, err = v.longs(); err != nil {
		return nil, err
	}
	if out, err = v.longs(); err != nil {
		return nil, err
	}
	n.Inlinks = toUint64(in)
	n.Outlinks = toUint64(out)
	if v.off != len(blob) {
		return nil, fmt.Errorf("graph: node %d: %d trailing bytes", id, len(blob)-v.off)
	}
	return n, nil
}

func toUint64(in []int64) []uint64 {
	if in == nil {
		return nil
	}
	out := make([]uint64, len(in))
	for i, v := range in {
		out[i] = uint64(v)
	}
	return out
}

// view is a tiny sequential blob reader.
type view struct {
	b   []byte
	off int
}

func (v *view) long() (int64, error) {
	if v.off+8 > len(v.b) {
		return 0, cell.ErrShortBlob
	}
	x := int64(binary.LittleEndian.Uint64(v.b[v.off:]))
	v.off += 8
	return x, nil
}

func (v *view) str() (string, error) {
	if v.off+4 > len(v.b) {
		return "", cell.ErrShortBlob
	}
	n := int(binary.LittleEndian.Uint32(v.b[v.off:]))
	v.off += 4
	if v.off+n > len(v.b) {
		return "", cell.ErrShortBlob
	}
	s := string(v.b[v.off : v.off+n])
	v.off += n
	return s, nil
}

func (v *view) longs() ([]int64, error) {
	if v.off+4 > len(v.b) {
		return nil, cell.ErrShortBlob
	}
	n := int(binary.LittleEndian.Uint32(v.b[v.off:]))
	v.off += 4
	if v.off+8*n > len(v.b) {
		return nil, cell.ErrShortBlob
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(v.b[v.off:]))
		v.off += 8
	}
	return out, nil
}

// blob field offsets that are cheap to compute without a full decode; the
// hot traversal paths use these to reach the link lists with zero copies.

// blobLabel reads the label without decoding the rest.
func blobLabel(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}

// blobListAt returns (offset, count) of the idx-th List<long> among
// {Weights=0, Inlinks=1, Outlinks=2}.
func blobListAt(b []byte, idx int) (int, int, error) {
	off := 8 // Label
	if off+4 > len(b) {
		return 0, 0, cell.ErrShortBlob
	}
	off += 4 + int(binary.LittleEndian.Uint32(b[off:])) // Name
	for i := 0; ; i++ {
		if off+4 > len(b) {
			return 0, 0, cell.ErrShortBlob
		}
		count := int(binary.LittleEndian.Uint32(b[off:]))
		if i == idx {
			if off+4+8*count > len(b) {
				return 0, 0, cell.ErrShortBlob
			}
			return off + 4, count, nil
		}
		off += 4 + 8*count
	}
}

// forEachListEntry iterates the idx-th list in a node blob zero-copy.
func forEachListEntry(b []byte, idx int, fn func(v uint64) bool) error {
	off, count, err := blobListAt(b, idx)
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		if !fn(binary.LittleEndian.Uint64(b[off+8*i:])) {
			return nil
		}
	}
	return nil
}

const (
	listWeights = iota
	listInlinks
	listOutlinks
)

// AppendNodeLists appends a node blob's weights, in-links and out-links
// to the given slices and returns the extended slices plus the label. It
// is the bulk zero-intermediate-allocation decode the partition-view
// builder (internal/graph/view) uses to fill its CSR arenas: one bounds
// check per list, then straight copies. A malformed blob (truncated
// header, list count overrunning the blob) returns an error with the
// input slices unchanged in content up to their original lengths.
func AppendNodeLists(blob []byte, wts []int64, in, out []uint64) (int64, []int64, []uint64, []uint64, error) {
	if len(blob) < 8 {
		return 0, wts, in, out, fmt.Errorf("graph: short node blob (%d bytes)", len(blob))
	}
	label := blobLabel(blob)
	wOff, wCount, err := blobListAt(blob, listWeights)
	if err != nil {
		return 0, wts, in, out, err
	}
	iOff, iCount, err := blobListAt(blob, listInlinks)
	if err != nil {
		return 0, wts, in, out, err
	}
	oOff, oCount, err := blobListAt(blob, listOutlinks)
	if err != nil {
		return 0, wts, in, out, err
	}
	for i := 0; i < wCount; i++ {
		wts = append(wts, int64(binary.LittleEndian.Uint64(blob[wOff+8*i:])))
	}
	for i := 0; i < iCount; i++ {
		in = append(in, binary.LittleEndian.Uint64(blob[iOff+8*i:]))
	}
	for i := 0; i < oCount; i++ {
		out = append(out, binary.LittleEndian.Uint64(blob[oOff+8*i:]))
	}
	return label, wts, in, out, nil
}
