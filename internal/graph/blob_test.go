package graph

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// Regression tests for the zero-copy blob scanners: a malformed node blob
// (truncated header, list count overrunning the blob) must surface as an
// error from blobListAt/forEachListEntry/AppendNodeLists — never a panic,
// never a silent wrong answer. The partition-view builder trusts these to
// reject corrupt cells during a trunk scan.

func validBlob() []byte {
	return EncodeNode(&Node{
		ID: 1, Label: 42, Name: "alice",
		Weights:  []int64{7, 8},
		Inlinks:  []uint64{10, 11, 12},
		Outlinks: []uint64{20, 21},
	})
}

func TestBlobListAtTruncated(t *testing.T) {
	blob := validBlob()
	// Every prefix of the blob must either decode the requested list fully
	// or error; none may panic or read out of bounds.
	for cut := 0; cut < len(blob); cut++ {
		for idx := listWeights; idx <= listOutlinks; idx++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("cut=%d idx=%d panicked: %v", cut, idx, r)
					}
				}()
				off, count, err := blobListAt(blob[:cut], idx)
				if err == nil && off+8*count > cut {
					t.Fatalf("cut=%d idx=%d accepted list overrunning blob (off=%d count=%d)", cut, idx, off, count)
				}
			}()
		}
	}
	// The full blob decodes all three lists.
	for idx, want := range []int{2, 3, 2} {
		_, count, err := blobListAt(blob, idx)
		if err != nil || count != want {
			t.Fatalf("idx=%d: count=%d err=%v, want %d", idx, count, err, want)
		}
	}
}

func TestBlobListAtCountOverrun(t *testing.T) {
	blob := validBlob()
	// Corrupt the Outlinks count header to claim far more entries than the
	// blob holds.
	off, _, err := blobListAt(blob, listOutlinks)
	if err != nil {
		t.Fatal(err)
	}
	countOff := off - 4
	bad := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(bad[countOff:], 1<<20)
	if _, _, err := blobListAt(bad, listOutlinks); err == nil {
		t.Fatal("overrunning count accepted")
	}
	// A corrupt EARLIER list header must also fail lookups of later lists
	// (the scanner walks through it) rather than reading out of bounds.
	bad2 := append([]byte(nil), blob...)
	wOff, _, err := blobListAt(blob, listWeights)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(bad2[wOff-4:], 1<<20)
	for idx := listWeights; idx <= listOutlinks; idx++ {
		if _, _, err := blobListAt(bad2, idx); err == nil {
			t.Fatalf("idx=%d accepted behind overrunning weights header", idx)
		}
	}
}

func TestForEachListEntryMalformed(t *testing.T) {
	blob := validBlob()
	// Valid: streams all entries.
	var got []uint64
	if err := forEachListEntry(blob, listInlinks, func(v uint64) bool {
		got = append(got, v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{10, 11, 12}) {
		t.Fatalf("inlinks = %v", got)
	}
	// Truncated: error, and the callback never fires on garbage.
	calls := 0
	err := forEachListEntry(blob[:len(blob)-9], listOutlinks, func(uint64) bool {
		calls++
		return true
	})
	if err == nil {
		t.Fatal("truncated outlinks accepted")
	}
	if calls != 0 {
		t.Fatalf("callback fired %d times on a truncated list", calls)
	}
}

func TestAppendNodeListsMalformed(t *testing.T) {
	blob := validBlob()
	// Valid blob round-trips all three lists as appends.
	label, wts, in, out, err := AppendNodeLists(blob, []int64{-1}, []uint64{100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if label != 42 {
		t.Fatalf("label = %d", label)
	}
	if !reflect.DeepEqual(wts, []int64{-1, 7, 8}) {
		t.Fatalf("wts = %v", wts)
	}
	if !reflect.DeepEqual(in, []uint64{100, 10, 11, 12}) {
		t.Fatalf("in = %v", in)
	}
	if !reflect.DeepEqual(out, []uint64{20, 21}) {
		t.Fatalf("out = %v", out)
	}
	// Every truncation errors without panicking, and the caller's slices
	// keep their original content up to their original lengths.
	for cut := 0; cut < len(blob); cut++ {
		w0, i0, o0 := []int64{5}, []uint64{6}, []uint64{7}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut=%d panicked: %v", cut, r)
				}
			}()
			if _, w, i, o, err := AppendNodeLists(blob[:cut], w0, i0, o0); err == nil {
				t.Fatalf("cut=%d accepted", cut)
			} else if w[0] != 5 || i[0] != 6 || o[0] != 7 {
				t.Fatalf("cut=%d corrupted caller slices", cut)
			}
		}()
	}
	// Count overrun.
	bad := append([]byte(nil), blob...)
	off, _, err := blobListAt(blob, listInlinks)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(bad[off-4:], 1<<24)
	if _, _, _, _, err := AppendNodeLists(bad, nil, nil, nil); err == nil {
		t.Fatal("overrunning inlinks count accepted")
	}
}
