package graph

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"trinity/internal/cell"
	"trinity/internal/hash"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

func newCloud(t testing.TB, machines int) *memcloud.Cloud {
	c := memcloud.New(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 2 * time.Second},
	})
	t.Cleanup(c.Close)
	return c
}

func TestEncodeDecodeNode(t *testing.T) {
	n := &Node{
		ID: 7, Label: -42, Name: "alice",
		Weights:  []int64{1, 2},
		Inlinks:  []uint64{10, 11},
		Outlinks: []uint64{20, 21, 22},
	}
	got, err := DecodeNode(7, EncodeNode(n))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, n) {
		t.Fatalf("round trip: %+v != %+v", got, n)
	}
}

func TestEncodeNodeMatchesSchema(t *testing.T) {
	// The hand-written encoder must agree byte-for-byte with the
	// TSL-schema-driven encoder; the engine depends on this equivalence.
	n := &Node{ID: 1, Label: 5, Name: "x", Weights: []int64{9},
		Inlinks: []uint64{2}, Outlinks: []uint64{3, 4}}
	fast := EncodeNode(n)
	slow, err := cell.Encode(NodeSchema, map[string]cell.Value{
		"Label":    int64(5),
		"Name":     "x",
		"Weights":  []int64{9},
		"Inlinks":  []int64{2},
		"Outlinks": []int64{3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("encoders disagree:\nfast %v\nslow %v", fast, slow)
	}
	// And the schema accessor reads the fast encoding.
	a := cell.NewAccessor(NodeSchema, fast)
	if a.MustField("Label").Long() != 5 || a.MustField("Name").Str() != "x" {
		t.Fatal("accessor cannot read fast encoding")
	}
	if got := a.MustField("Outlinks").List().Longs(); !reflect.DeepEqual(got, []int64{3, 4}) {
		t.Fatalf("Outlinks via accessor = %v", got)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hash.NewRNG(seed)
		n := &Node{ID: rng.Next(), Label: int64(rng.Next())}
		for i := 0; i < rng.Intn(20); i++ {
			n.Outlinks = append(n.Outlinks, rng.Next())
		}
		for i := 0; i < rng.Intn(20); i++ {
			n.Inlinks = append(n.Inlinks, rng.Next())
		}
		name := make([]byte, rng.Intn(30))
		for i := range name {
			name[i] = byte(rng.Intn(256))
		}
		n.Name = string(name)
		got, err := DecodeNode(n.ID, EncodeNode(n))
		return err == nil && reflect.DeepEqual(got, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortBlob(t *testing.T) {
	n := &Node{ID: 1, Name: "abcdef", Outlinks: []uint64{1, 2, 3}}
	blob := EncodeNode(n)
	for _, cut := range []int{0, 5, 11, len(blob) - 1} {
		if _, err := DecodeNode(1, blob[:cut]); err == nil {
			t.Fatalf("cut %d accepted", cut)
		}
	}
}

func TestAddNodeAndEdgesDirected(t *testing.T) {
	cloud := newCloud(t, 2)
	g := New(cloud, true)
	m := g.On(0)
	for i := uint64(1); i <= 4; i++ {
		if err := m.AddNode(context.Background(), &Node{ID: i, Label: int64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]uint64{{1, 2}, {1, 3}, {2, 3}, {3, 4}}
	for _, e := range edges {
		if err := m.AddEdge(context.Background(), e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	out, err := m.Outlinks(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sortU64(out)
	if !reflect.DeepEqual(out, []uint64{2, 3}) {
		t.Fatalf("out(1) = %v", out)
	}
	in, err := m.Inlinks(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sortU64(in)
	if !reflect.DeepEqual(in, []uint64{1, 2}) {
		t.Fatalf("in(3) = %v", in)
	}
	if deg, _ := m.OutDegree(context.Background(), 3); deg != 1 {
		t.Fatalf("outdeg(3) = %d", deg)
	}
	if l, _ := m.Label(context.Background(), 2); l != 20 {
		t.Fatalf("label(2) = %d", l)
	}
	if g.EdgeCount() != 4 {
		t.Fatalf("edges = %d", g.EdgeCount())
	}
}

func TestAddEdgeUndirected(t *testing.T) {
	cloud := newCloud(t, 2)
	g := New(cloud, false)
	m := g.On(0)
	m.AddNode(context.Background(), &Node{ID: 1})
	m.AddNode(context.Background(), &Node{ID: 2})
	if err := m.AddEdge(context.Background(), 1, 2); err != nil {
		t.Fatal(err)
	}
	o1, _ := m.Outlinks(context.Background(), 1)
	o2, _ := m.Outlinks(context.Background(), 2)
	if !reflect.DeepEqual(o1, []uint64{2}) || !reflect.DeepEqual(o2, []uint64{1}) {
		t.Fatalf("undirected edge: out(1)=%v out(2)=%v", o1, o2)
	}
}

func TestAddEdgeMissingNode(t *testing.T) {
	cloud := newCloud(t, 2)
	g := New(cloud, true)
	m := g.On(0)
	m.AddNode(context.Background(), &Node{ID: 1})
	// Find an id owned remotely to test the wire path too.
	var remote uint64
	for i := uint64(100); i < 200; i++ {
		if m.Slave().Owner(i) != m.Slave().ID() {
			remote = i
			break
		}
	}
	if err := m.AddEdge(context.Background(), 1, 999); !errors.Is(err, ErrNoNode) {
		t.Fatalf("edge to missing local = %v", err)
	}
	if err := m.AddEdge(context.Background(), remote, 1); !errors.Is(mapRemote(err), ErrNoNode) {
		t.Fatalf("edge from missing remote = %v", err)
	}
}

func TestGetNodeMissing(t *testing.T) {
	cloud := newCloud(t, 1)
	g := New(cloud, true)
	if _, err := g.On(0).GetNode(context.Background(), 404); !errors.Is(err, ErrNoNode) {
		t.Fatalf("GetNode missing = %v", err)
	}
	if g.On(0).HasNode(context.Background(), 404) {
		t.Fatal("HasNode(404)")
	}
}

func TestOperationsFromEveryMachine(t *testing.T) {
	cloud := newCloud(t, 4)
	g := New(cloud, true)
	// Build a small ring using a different machine for each operation.
	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := g.On(int(i)%4).AddNode(context.Background(), &Node{ID: i, Label: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if err := g.On(int(i+1)%4).AddEdge(context.Background(), i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	// Verify from every machine.
	for mi := 0; mi < 4; mi++ {
		m := g.On(mi)
		for i := uint64(0); i < n; i++ {
			out, err := m.Outlinks(context.Background(), i)
			if err != nil || len(out) != 1 || out[0] != (i+1)%n {
				t.Fatalf("machine %d: out(%d) = %v, %v", mi, i, out, err)
			}
			in, err := m.Inlinks(context.Background(), i)
			if err != nil || len(in) != 1 || in[0] != (i+n-1)%n {
				t.Fatalf("machine %d: in(%d) = %v, %v", mi, i, in, err)
			}
		}
	}
	if g.NodeCount() != n {
		t.Fatalf("NodeCount = %d", g.NodeCount())
	}
}

func TestForEachOutlinkZeroCopyLocal(t *testing.T) {
	cloud := newCloud(t, 2)
	g := New(cloud, true)
	m := g.On(0)
	// Pick a locally-owned node id.
	var local uint64
	for i := uint64(0); ; i++ {
		if m.Slave().Owner(i) == m.Slave().ID() {
			local = i
			break
		}
	}
	m.AddNode(context.Background(), &Node{ID: local, Outlinks: []uint64{5, 6, 7}})
	var got []uint64
	err := m.ForEachOutlink(local, func(v uint64) bool {
		got = append(got, v)
		return v != 6 // early stop
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{5, 6}) {
		t.Fatalf("ForEachOutlink = %v", got)
	}
}

func TestConcurrentAddEdgesNoLostUpdates(t *testing.T) {
	cloud := newCloud(t, 2)
	g := New(cloud, true)
	m := g.On(0)
	const hub = 1
	m.AddNode(context.Background(), &Node{ID: hub})
	const workers = 8
	const per = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := g.On(w % 2)
			for i := 0; i < per; i++ {
				dst := uint64(1000 + w*per + i)
				if err := eng.AddNode(context.Background(), &Node{ID: dst}); err != nil {
					t.Error(err)
					return
				}
				if err := eng.AddEdge(context.Background(), hub, dst); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	out, err := m.Outlinks(context.Background(), hub)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != workers*per {
		t.Fatalf("hub out-degree = %d, want %d (lost updates)", len(out), workers*per)
	}
	seen := map[uint64]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate edge to %d", v)
		}
		seen[v] = true
	}
}

func TestBuilderFlush(t *testing.T) {
	cloud := newCloud(t, 3)
	b := NewBuilder(true)
	const n = 500
	for i := uint64(0); i < n; i++ {
		b.AddNode(i, int64(i%7), "")
	}
	for i := uint64(0); i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		b.AddEdge(i, (i+13)%n)
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	if b.NodeCount() != 0 {
		t.Fatal("builder not cleared after flush")
	}
	if g.NodeCount() != n {
		t.Fatalf("NodeCount = %d, want %d", g.NodeCount(), n)
	}
	if g.EdgeCount() != 2*n {
		t.Fatalf("EdgeCount = %d, want %d", g.EdgeCount(), 2*n)
	}
	m := g.On(0)
	out, err := m.Outlinks(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	sortU64(out)
	if !reflect.DeepEqual(out, []uint64{11, 23}) {
		t.Fatalf("out(10) = %v", out)
	}
	in, _ := m.Inlinks(context.Background(), 10)
	sortU64(in)
	if !reflect.DeepEqual(in, []uint64{9, 497}) {
		t.Fatalf("in(10) = %v", in)
	}
	if l, _ := m.Label(context.Background(), 10); l != 3 {
		t.Fatalf("label(10) = %d", l)
	}
}

func TestBuilderWeightedEdges(t *testing.T) {
	cloud := newCloud(t, 2)
	b := NewBuilder(true)
	b.AddWeightedEdge(1, 2, 5)
	b.AddWeightedEdge(1, 3, 9)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.On(0).GetNode(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n.Outlinks, []uint64{2, 3}) || !reflect.DeepEqual(n.Weights, []int64{5, 9}) {
		t.Fatalf("weighted node = %+v", n)
	}
}

func TestBuilderUndirected(t *testing.T) {
	cloud := newCloud(t, 2)
	b := NewBuilder(false)
	b.AddEdge(1, 2)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := g.On(0).Outlinks(context.Background(), 1)
	o2, _ := g.On(0).Outlinks(context.Background(), 2)
	if len(o1) != 1 || len(o2) != 1 || o1[0] != 2 || o2[0] != 1 {
		t.Fatalf("undirected builder: %v %v", o1, o2)
	}
}

func sortU64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func BenchmarkEncodeNode(b *testing.B) {
	n := &Node{ID: 1, Label: 2, Name: "node", Outlinks: make([]uint64, 13)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeNode(n)
	}
}

func BenchmarkForEachOutlinkLocal(b *testing.B) {
	cloud := newCloud(b, 1)
	g := New(cloud, true)
	m := g.On(0)
	m.AddNode(context.Background(), &Node{ID: 1, Outlinks: make([]uint64, 13)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForEachOutlink(1, func(uint64) bool { return true })
	}
}
