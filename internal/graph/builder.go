package graph

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"trinity/internal/memcloud"
)

// Builder accumulates a graph in memory and writes it to the cloud in one
// parallel pass through the batched multi-put path: nodes are partitioned
// by owner machine and applied in multi-put batches on each owner, so a
// load costs one amortized trunk-lock acquisition and one WAL group
// record per trunk per few hundred cells instead of one sync call and one
// WAL append per cell. Bulk loading this way is how the simulated cluster
// ingests the multi-million-edge benchmark graphs; the per-edge AddEdge
// path exists for dynamic updates. rdf.Builder loads through this same
// path. (Loaders that feed the cloud from a single access point — a
// client or proxy that owns no trunks — use store.Writer instead, which
// ships the same batches over the wire asynchronously.)
//
// A Builder is not safe for concurrent use; build the edge list first,
// then Flush.
type Builder struct {
	directed bool
	nodes    map[uint64]*Node
}

// NewBuilder creates a builder. directed controls whether AddEdge also
// records an inlink (directed) or an outlink on both endpoints
// (undirected).
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed, nodes: make(map[uint64]*Node)}
}

// AddNode registers a node. Re-adding an existing ID updates its label
// and name but keeps accumulated edges.
func (b *Builder) AddNode(id uint64, label int64, name string) {
	if n, ok := b.nodes[id]; ok {
		n.Label = label
		n.Name = name
		return
	}
	b.nodes[id] = &Node{ID: id, Label: label, Name: name}
}

func (b *Builder) node(id uint64) *Node {
	n, ok := b.nodes[id]
	if !ok {
		n = &Node{ID: id}
		b.nodes[id] = n
	}
	return n
}

// AddEdge records the edge src -> dst, creating endpoints as needed.
func (b *Builder) AddEdge(src, dst uint64) {
	s := b.node(src)
	d := b.node(dst)
	s.Outlinks = append(s.Outlinks, dst)
	if b.directed {
		d.Inlinks = append(d.Inlinks, src)
	} else {
		d.Outlinks = append(d.Outlinks, src)
	}
}

// AddWeightedEdge records src -> dst with a weight parallel to Outlinks.
func (b *Builder) AddWeightedEdge(src, dst uint64, w int64) {
	s := b.node(src)
	d := b.node(dst)
	s.Outlinks = append(s.Outlinks, dst)
	s.Weights = append(s.Weights, w)
	if b.directed {
		d.Inlinks = append(d.Inlinks, src)
	} else {
		d.Outlinks = append(d.Outlinks, src)
		d.Weights = append(d.Weights, w)
	}
}

// NodeCount returns the number of accumulated nodes.
func (b *Builder) NodeCount() int { return len(b.nodes) }

// Flush writes all accumulated nodes into the graph's memory cloud in
// parallel (one worker per CPU, each applying its owner's nodes in local
// multi-put batches on that owner's slave) and clears the builder.
func (b *Builder) Flush(ctx context.Context, g *Graph) error {
	// Partition nodes by owner so every batch is a local trunk operation.
	perOwner := make([][]*Node, g.Machines())
	anchor := g.On(0).Slave()
	for _, n := range b.nodes {
		owner := int(anchor.Owner(n.ID))
		if owner < 0 || owner >= len(perOwner) {
			return fmt.Errorf("graph: node %d maps to unknown machine %d", n.ID, owner)
		}
		perOwner[owner] = append(perOwner[owner], n)
	}
	workers := runtime.NumCPU()
	if workers > g.Machines() {
		workers = g.Machines()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, g.Machines())
	sem := make(chan struct{}, workers)
	for owner, nodes := range perOwner {
		if len(nodes) == 0 {
			continue
		}
		wg.Add(1)
		go func(owner int, nodes []*Node) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := flushOwner(ctx, g.On(owner).Slave(), nodes); err != nil {
				errCh <- fmt.Errorf("graph: flush nodes for machine %d: %w", owner, err)
			}
		}(owner, nodes)
	}
	wg.Wait()
	b.nodes = make(map[uint64]*Node)
	// The bulk writes above go through the slaves directly, so bump every
	// touched machine's partition epoch: cached partition views must not
	// survive a load.
	for owner, nodes := range perOwner {
		if len(nodes) > 0 {
			g.On(owner).InvalidatePartition()
		}
	}
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// flushBatch is how many node cells one multi-put batch carries during a
// bulk load: the pipeline's maximum batch size, reached immediately since
// the whole partition is known up front (no adaptive ramp needed).
const flushBatch = 512

// flushOwner streams one owner's nodes through the batched multi-put
// path: every flushBatch cells cost one amortized trunk-lock acquisition
// per trunk and one WAL group record, instead of one sync call and one
// WAL append per cell. The keys here are unique (one per node), so the
// store.Writer's per-key ordering machinery is unnecessary overhead;
// LocalMultiPut is called directly. A key whose trunk moved away mid-load
// (failover) answers WrongOwner and falls back to the re-routing Put.
func flushOwner(ctx context.Context, s *memcloud.Slave, nodes []*Node) error {
	items := make([]memcloud.MultiPutItem, 0, min(len(nodes), flushBatch))
	for start := 0; start < len(nodes); start += flushBatch {
		chunk := nodes[start:min(start+flushBatch, len(nodes))]
		items = items[:0]
		for _, n := range chunk {
			items = append(items, memcloud.MultiPutItem{
				Op: memcloud.MultiPutOpPut, Key: n.ID, Val: EncodeNode(n),
			})
		}
		statuses, ok := s.LocalMultiPut(items)
		if !ok {
			return fmt.Errorf("graph: endpoint %d cannot apply batches locally", s.ID())
		}
		for i, st := range statuses {
			if st == memcloud.MultiPutOK {
				continue
			}
			// The trunk moved (or the item was refused): one re-routed
			// synchronous Put answers both.
			if err := s.Put(ctx, items[i].Key, items[i].Val); err != nil {
				return fmt.Errorf("graph: flush node %d: %w", items[i].Key, err)
			}
		}
	}
	return nil
}

// FlushPerCell is the pre-pipeline write path — one synchronous Put per
// node cell through the owner slave — kept as the measured baseline for
// the bulk-load ablation (bench.BulkLoad, BenchmarkBulkLoad): it is what
// Flush cost before batching, so the before/after table in EXPERIMENTS.md
// stays reproducible.
func (b *Builder) FlushPerCell(ctx context.Context, g *Graph) error {
	perOwner := make([][]*Node, g.Machines())
	anchor := g.On(0).Slave()
	for _, n := range b.nodes {
		owner := int(anchor.Owner(n.ID))
		if owner < 0 || owner >= len(perOwner) {
			return fmt.Errorf("graph: node %d maps to unknown machine %d", n.ID, owner)
		}
		perOwner[owner] = append(perOwner[owner], n)
	}
	workers := runtime.NumCPU()
	if workers > g.Machines() {
		workers = g.Machines()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, g.Machines())
	sem := make(chan struct{}, workers)
	for owner, nodes := range perOwner {
		if len(nodes) == 0 {
			continue
		}
		wg.Add(1)
		go func(owner int, nodes []*Node) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := g.On(owner).Slave()
			for _, n := range nodes {
				if err := s.Put(ctx, n.ID, EncodeNode(n)); err != nil {
					errCh <- fmt.Errorf("graph: flush node %d: %w", n.ID, err)
					return
				}
			}
		}(owner, nodes)
	}
	wg.Wait()
	b.nodes = make(map[uint64]*Node)
	for owner, nodes := range perOwner {
		if len(nodes) > 0 {
			g.On(owner).InvalidatePartition()
		}
	}
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Load is a convenience wrapper: build a graph engine over the cloud,
// flush the builder into it, and return the engine.
func (b *Builder) Load(ctx context.Context, cloud *memcloud.Cloud) (*Graph, error) {
	g := New(cloud, b.directed)
	if err := b.Flush(ctx, g); err != nil {
		return nil, err
	}
	return g, nil
}
