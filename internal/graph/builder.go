package graph

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"trinity/internal/memcloud"
)

// Builder accumulates a graph in memory and writes it to the cloud in one
// parallel pass, one Put per node cell. Bulk loading this way is how the
// simulated cluster ingests the multi-million-edge benchmark graphs; the
// per-edge AddEdge path exists for dynamic updates.
//
// A Builder is not safe for concurrent use; build the edge list first,
// then Flush.
type Builder struct {
	directed bool
	nodes    map[uint64]*Node
}

// NewBuilder creates a builder. directed controls whether AddEdge also
// records an inlink (directed) or an outlink on both endpoints
// (undirected).
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed, nodes: make(map[uint64]*Node)}
}

// AddNode registers a node. Re-adding an existing ID updates its label
// and name but keeps accumulated edges.
func (b *Builder) AddNode(id uint64, label int64, name string) {
	if n, ok := b.nodes[id]; ok {
		n.Label = label
		n.Name = name
		return
	}
	b.nodes[id] = &Node{ID: id, Label: label, Name: name}
}

func (b *Builder) node(id uint64) *Node {
	n, ok := b.nodes[id]
	if !ok {
		n = &Node{ID: id}
		b.nodes[id] = n
	}
	return n
}

// AddEdge records the edge src -> dst, creating endpoints as needed.
func (b *Builder) AddEdge(src, dst uint64) {
	s := b.node(src)
	d := b.node(dst)
	s.Outlinks = append(s.Outlinks, dst)
	if b.directed {
		d.Inlinks = append(d.Inlinks, src)
	} else {
		d.Outlinks = append(d.Outlinks, src)
	}
}

// AddWeightedEdge records src -> dst with a weight parallel to Outlinks.
func (b *Builder) AddWeightedEdge(src, dst uint64, w int64) {
	s := b.node(src)
	d := b.node(dst)
	s.Outlinks = append(s.Outlinks, dst)
	s.Weights = append(s.Weights, w)
	if b.directed {
		d.Inlinks = append(d.Inlinks, src)
	} else {
		d.Outlinks = append(d.Outlinks, src)
		d.Weights = append(d.Weights, w)
	}
}

// NodeCount returns the number of accumulated nodes.
func (b *Builder) NodeCount() int { return len(b.nodes) }

// Flush writes all accumulated nodes into the graph's memory cloud in
// parallel (one worker per CPU, each writing through the owner slave's
// local fast path) and clears the builder.
func (b *Builder) Flush(ctx context.Context, g *Graph) error {
	// Partition nodes by owner so every Put is a local trunk operation.
	perOwner := make([][]*Node, g.Machines())
	anchor := g.On(0).Slave()
	for _, n := range b.nodes {
		owner := int(anchor.Owner(n.ID))
		if owner < 0 || owner >= len(perOwner) {
			return fmt.Errorf("graph: node %d maps to unknown machine %d", n.ID, owner)
		}
		perOwner[owner] = append(perOwner[owner], n)
	}
	workers := runtime.NumCPU()
	if workers > g.Machines() {
		workers = g.Machines()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, g.Machines())
	sem := make(chan struct{}, workers)
	for owner, nodes := range perOwner {
		if len(nodes) == 0 {
			continue
		}
		wg.Add(1)
		go func(owner int, nodes []*Node) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := g.On(owner).Slave()
			for _, n := range nodes {
				if err := s.Put(ctx, n.ID, EncodeNode(n)); err != nil {
					errCh <- fmt.Errorf("graph: flush node %d: %w", n.ID, err)
					return
				}
			}
		}(owner, nodes)
	}
	wg.Wait()
	b.nodes = make(map[uint64]*Node)
	// The bulk writes above go through the slaves directly, so bump every
	// touched machine's partition epoch: cached partition views must not
	// survive a load.
	for owner, nodes := range perOwner {
		if len(nodes) > 0 {
			g.On(owner).InvalidatePartition()
		}
	}
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Load is a convenience wrapper: build a graph engine over the cloud,
// flush the builder into it, and return the engine.
func (b *Builder) Load(ctx context.Context, cloud *memcloud.Cloud) (*Graph, error) {
	g := New(cloud, b.directed)
	if err := b.Flush(ctx, g); err != nil {
		return nil, err
	}
	return g, nil
}
