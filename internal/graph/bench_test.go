package graph_test

import (
	"context"
	"testing"
	"time"

	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

func benchCloud(machines int) *memcloud.Cloud {
	return memcloud.New(memcloud.Config{
		Machines:      machines,
		TrunkCapacity: 64 << 20,
		Msg: msg.Options{
			FlushInterval: 100 * time.Microsecond,
			CallTimeout:   10 * time.Second,
		},
		Metrics: obs.NewRegistry(),
	})
}

// buildSocial fills a builder with a deterministic social graph.
func buildSocial(people int) *graph.Builder {
	b := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: people, AvgDegree: 13, Seed: 42}, b)
	return b
}

// BenchmarkBulkLoad measures the bulk-load path end to end: partition a
// social graph by owner and apply it in local multi-put batches (one
// amortized trunk-lock acquisition per trunk per few hundred cells). The
// gap to BenchmarkBulkLoadPerCell is the batched write pipeline's win on
// the load phase; allocs/op gates the batching machinery's overhead.
func BenchmarkBulkLoad(b *testing.B) {
	const people = 8000
	cloud := benchCloud(4)
	defer cloud.Close()
	g := graph.New(cloud, false)
	// Warm-up flush: iteration 1 would otherwise append into empty trunks
	// while later iterations rewrite live cells in place, skewing the mean
	// with N. After the warm-up every iteration is the same steady-state
	// rewrite. (Flush drains the builder, so each iteration rebuilds it
	// off the clock.)
	if err := buildSocial(people).Flush(context.Background(), g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bld := buildSocial(people)
		b.StartTimer()
		if err := bld.Flush(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBulkLoadPerCell is the pre-pipeline baseline: the same load as
// one synchronous Put per node cell.
func BenchmarkBulkLoadPerCell(b *testing.B) {
	const people = 8000
	cloud := benchCloud(4)
	defer cloud.Close()
	g := graph.New(cloud, false)
	if err := buildSocial(people).FlushPerCell(context.Background(), g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bld := buildSocial(people)
		b.StartTimer()
		if err := bld.FlushPerCell(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}
