// Package tfs implements the Trinity File System: a shared, fault-tolerant
// distributed file system in the spirit of HDFS (paper §3, §6.2). Memory
// trunks are backed up to TFS for persistence; the cluster leader keeps the
// primary addressing table replica on TFS; BSP checkpoints and
// asynchronous-mode snapshots are written to TFS; and leader election uses
// an atomic flag file on TFS to prevent split-brain.
//
// The implementation simulates a cluster of datanodes inside one process:
// files are split into fixed-size blocks, each block is replicated on R
// datanodes, and a namenode tracks block placement. Killing a datanode
// triggers re-replication from surviving replicas; data is lost only when
// every replica of some block is gone, which is exactly the failure model
// the recovery paths above are written against.
package tfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"trinity/internal/hash"
)

// Errors returned by TFS operations.
var (
	// ErrNotExist reports that the named file does not exist.
	ErrNotExist = errors.New("tfs: file does not exist")
	// ErrUnavailable reports that a block of the file has lost all of its
	// replicas and the file cannot be reconstructed.
	ErrUnavailable = errors.New("tfs: file unavailable (all replicas lost)")
	// ErrCASMismatch reports that an atomic compare-and-swap failed.
	ErrCASMismatch = errors.New("tfs: compare-and-swap mismatch")
	// ErrNoDatanodes reports that no live datanodes remain.
	ErrNoDatanodes = errors.New("tfs: no live datanodes")
)

const (
	// DefaultBlockSize is the default file block size.
	DefaultBlockSize = 64 << 10
	// DefaultReplication is the default replica count per block,
	// matching HDFS's classic default of 3.
	DefaultReplication = 3
)

// Options configures a file system.
type Options struct {
	// Datanodes is the number of simulated storage nodes. Zero means 3.
	Datanodes int
	// BlockSize is the block granularity. Zero means DefaultBlockSize.
	BlockSize int
	// Replication is the replica count per block, capped at the number of
	// datanodes. Zero means DefaultReplication.
	Replication int
}

type blockID uint64

// datanode is one simulated storage node.
type datanode struct {
	id     int
	alive  bool
	blocks map[blockID][]byte
}

// fileMeta is the namenode's record of one file.
type fileMeta struct {
	size    int
	blocks  []blockID
	version uint64 // bumped on every write; stale readers can detect races
}

// FS is a simulated Trinity File System. All methods are safe for
// concurrent use.
type FS struct {
	mu          sync.Mutex
	blockSize   int
	replication int
	nodes       []*datanode
	files       map[string]*fileMeta
	placement   map[blockID][]int // block -> datanode ids
	nextBlock   blockID
	rng         *hash.RNG

	stats Stats
}

// Stats counts file-system activity.
type Stats struct {
	Writes        int64
	Reads         int64
	BytesWritten  int64
	BytesRead     int64
	ReReplicated  int64 // blocks re-replicated after a node failure
	BlocksLost    int64 // blocks that lost every replica
	NodesFailed   int64
	NodesRecov    int64
	BlocksOnNodes int64 // current replica count across all nodes
}

// New creates an empty file system.
func New(opts Options) *FS {
	if opts.Datanodes <= 0 {
		opts.Datanodes = 3
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultBlockSize
	}
	if opts.Replication <= 0 {
		opts.Replication = DefaultReplication
	}
	if opts.Replication > opts.Datanodes {
		opts.Replication = opts.Datanodes
	}
	fs := &FS{
		blockSize:   opts.BlockSize,
		replication: opts.Replication,
		files:       make(map[string]*fileMeta),
		placement:   make(map[blockID][]int),
		rng:         hash.NewRNG(0x7f5),
	}
	for i := 0; i < opts.Datanodes; i++ {
		fs.nodes = append(fs.nodes, &datanode{id: i, alive: true, blocks: make(map[blockID][]byte)})
	}
	return fs
}

// liveNodes returns the ids of all alive datanodes. Called with fs.mu held.
func (fs *FS) liveNodes() []int {
	var ids []int
	for _, n := range fs.nodes {
		if n.alive {
			ids = append(ids, n.id)
		}
	}
	return ids
}

// pickNodes chooses r distinct live datanodes, preferring the least
// loaded. Called with fs.mu held.
func (fs *FS) pickNodes(r int) ([]int, error) {
	live := fs.liveNodes()
	if len(live) == 0 {
		return nil, ErrNoDatanodes
	}
	if r > len(live) {
		r = len(live)
	}
	sort.Slice(live, func(i, j int) bool {
		li, lj := len(fs.nodes[live[i]].blocks), len(fs.nodes[live[j]].blocks)
		if li != lj {
			return li < lj
		}
		return live[i] < live[j]
	})
	return live[:r], nil
}

// WriteFile atomically creates or replaces the named file.
func (fs *FS) WriteFile(name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeLocked(name, data)
}

func (fs *FS) writeLocked(name string, data []byte) error {
	if len(fs.liveNodes()) == 0 {
		return ErrNoDatanodes
	}
	// Lay out new blocks first so a failure leaves the old file intact.
	var blocks []blockID
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += fs.blockSize {
		end := off + fs.blockSize
		if end > len(data) {
			end = len(data)
		}
		id := fs.nextBlock
		fs.nextBlock++
		nodes, err := fs.pickNodes(fs.replication)
		if err != nil {
			return err
		}
		chunk := append([]byte(nil), data[off:end]...)
		for _, nid := range nodes {
			fs.nodes[nid].blocks[id] = chunk
		}
		fs.placement[id] = nodes
		blocks = append(blocks, id)
		if len(data) == 0 {
			break
		}
	}
	if old, ok := fs.files[name]; ok {
		fs.releaseBlocks(old.blocks)
		old.blocks = blocks
		old.size = len(data)
		old.version++
	} else {
		fs.files[name] = &fileMeta{size: len(data), blocks: blocks, version: 1}
	}
	fs.stats.Writes++
	fs.stats.BytesWritten += int64(len(data))
	return nil
}

// releaseBlocks removes blocks from all datanodes. Called with fs.mu held.
func (fs *FS) releaseBlocks(blocks []blockID) {
	for _, id := range blocks {
		for _, nid := range fs.placement[id] {
			delete(fs.nodes[nid].blocks, id)
		}
		delete(fs.placement, id)
	}
}

// ReadFile returns the file's contents.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	out := make([]byte, 0, meta.size)
	for _, id := range meta.blocks {
		chunk, err := fs.readBlockLocked(id)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, chunk...)
	}
	fs.stats.Reads++
	fs.stats.BytesRead += int64(len(out))
	return out, nil
}

func (fs *FS) readBlockLocked(id blockID) ([]byte, error) {
	for _, nid := range fs.placement[id] {
		n := fs.nodes[nid]
		if n.alive {
			if chunk, ok := n.blocks[id]; ok {
				return chunk, nil
			}
		}
	}
	return nil, ErrUnavailable
}

// AppendFile appends data to the named file, creating it if absent.
// The append is atomic with respect to concurrent readers and appenders.
// It backs the buffered-logging recovery path (§6.2 / RAMCloud-style).
func (fs *FS) AppendFile(name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var prev []byte
	if meta, ok := fs.files[name]; ok {
		prev = make([]byte, 0, meta.size+len(data))
		for _, id := range meta.blocks {
			chunk, err := fs.readBlockLocked(id)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			prev = append(prev, chunk...)
		}
	}
	return fs.writeLocked(name, append(prev, data...))
}

// Delete removes the named file.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	fs.releaseBlocks(meta.blocks)
	delete(fs.files, name)
	return nil
}

// Exists reports whether the named file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// List returns the names of all files with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// CASError is the failure surface of CompareAndSwap: it satisfies
// errors.Is(err, ErrCASMismatch) and carries the file's actual contents at
// decision time, so a caller that lost the race can re-diff against the
// winning value without a second read (which could itself race a later
// writer). Current is nil when the file did not exist.
type CASError struct {
	// Current is the file's contents at the moment the swap was refused;
	// nil means the file did not exist.
	Current []byte
}

func (e *CASError) Error() string {
	if e.Current == nil {
		return "tfs: compare-and-swap mismatch (file does not exist)"
	}
	return "tfs: compare-and-swap mismatch"
}

// Is makes errors.Is(err, ErrCASMismatch) hold for every CASError.
func (e *CASError) Is(target error) bool { return target == ErrCASMismatch }

// CompareAndSwap atomically replaces the file's contents with new if the
// current contents equal old. A nil old means "the file must not exist".
// This is the primitive behind leader election: "the new leader marks a
// flag on the shared distributed fault-tolerant file system to avoid
// multiple leaders" (§6.2). A mismatch is reported as a *CASError carrying
// the current contents; read failures (lost replicas) surface as-is.
func (fs *FS) CompareAndSwap(name string, old, new []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, exists := fs.files[name]
	if !exists {
		if old == nil {
			return fs.writeLocked(name, new)
		}
		return &CASError{}
	}
	cur := make([]byte, 0, meta.size)
	for _, id := range meta.blocks {
		chunk, err := fs.readBlockLocked(id)
		if err != nil {
			return err
		}
		cur = append(cur, chunk...)
	}
	if old == nil || string(cur) != string(old) {
		return &CASError{Current: cur}
	}
	return fs.writeLocked(name, new)
}

// FailNode simulates the crash of a datanode. Blocks that still have a
// live replica are re-replicated onto other nodes to restore the
// replication factor; blocks whose last replica died are lost.
func (fs *FS) FailNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("tfs: no datanode %d", id)
	}
	n := fs.nodes[id]
	if !n.alive {
		return nil
	}
	n.alive = false
	fs.stats.NodesFailed++
	for bid := range n.blocks {
		fs.reReplicateLocked(bid, id)
	}
	n.blocks = make(map[blockID][]byte)
	return nil
}

// reReplicateLocked restores the replication factor of a block after node
// `failed` died. Called with fs.mu held.
func (fs *FS) reReplicateLocked(bid blockID, failed int) {
	placement := fs.placement[bid]
	var survivors []int
	for _, nid := range placement {
		if nid != failed && fs.nodes[nid].alive {
			survivors = append(survivors, nid)
		}
	}
	if len(survivors) == 0 {
		fs.stats.BlocksLost++
		fs.placement[bid] = nil
		return
	}
	src := fs.nodes[survivors[0]].blocks[bid]
	// Choose replacement nodes not already holding the block.
	holding := make(map[int]bool, len(survivors))
	for _, nid := range survivors {
		holding[nid] = true
	}
	for _, nid := range fs.liveNodes() {
		if len(survivors) >= fs.replication {
			break
		}
		if holding[nid] {
			continue
		}
		fs.nodes[nid].blocks[bid] = src
		survivors = append(survivors, nid)
		fs.stats.ReReplicated++
	}
	fs.placement[bid] = survivors
}

// RecoverNode brings a failed datanode back online, empty. The rebalancer
// will use it for future placements.
func (fs *FS) RecoverNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("tfs: no datanode %d", id)
	}
	if !fs.nodes[id].alive {
		fs.nodes[id].alive = true
		fs.stats.NodesRecov++
	}
	return nil
}

// Stats returns a snapshot of activity counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.stats
	for _, n := range fs.nodes {
		s.BlocksOnNodes += int64(len(n.blocks))
	}
	return s
}

// Size returns the size of the named file.
func (fs *FS) Size(name string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return meta.size, nil
}
