package tfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"trinity/internal/hash"
)

func data(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%251)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(Options{Datanodes: 4, BlockSize: 128, Replication: 2})
	for _, size := range []int{0, 1, 127, 128, 129, 1000, 5000} {
		name := fmt.Sprintf("f%d", size)
		want := data(size, byte(size))
		if err := fs.WriteFile(name, want); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		if sz, _ := fs.Size(name); sz != size {
			t.Fatalf("Size = %d, want %d", sz, size)
		}
	}
}

func TestOverwrite(t *testing.T) {
	fs := New(Options{Datanodes: 3, BlockSize: 64})
	fs.WriteFile("a", data(200, 1))
	if err := fs.WriteFile("a", data(50, 2)); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("a")
	if !bytes.Equal(got, data(50, 2)) {
		t.Fatal("overwrite not visible")
	}
	// Old blocks must be released (no leak): 50 bytes over 64-byte blocks
	// with replication 3 = 3 replicas total.
	if s := fs.Stats(); s.BlocksOnNodes != 3 {
		t.Fatalf("BlocksOnNodes = %d, want 3 (old blocks leaked?)", s.BlocksOnNodes)
	}
}

func TestReadMissing(t *testing.T) {
	fs := New(Options{})
	if _, err := fs.ReadFile("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadFile missing = %v, want ErrNotExist", err)
	}
}

func TestDelete(t *testing.T) {
	fs := New(Options{})
	fs.WriteFile("a", data(10, 1))
	if err := fs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a") {
		t.Fatal("file exists after Delete")
	}
	if err := fs.Delete("a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double Delete = %v, want ErrNotExist", err)
	}
	if s := fs.Stats(); s.BlocksOnNodes != 0 {
		t.Fatalf("blocks leaked after delete: %d", s.BlocksOnNodes)
	}
}

func TestAppendFile(t *testing.T) {
	fs := New(Options{BlockSize: 32})
	if err := fs.AppendFile("log", data(20, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("log", data(40, 2)); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("log")
	want := append(data(20, 1), data(40, 2)...)
	if !bytes.Equal(got, want) {
		t.Fatal("append mismatch")
	}
}

func TestList(t *testing.T) {
	fs := New(Options{})
	for _, n := range []string{"trunk/0", "trunk/1", "ckpt/5", "trunk/10"} {
		fs.WriteFile(n, []byte("x"))
	}
	got := fs.List("trunk/")
	want := []string{"trunk/0", "trunk/1", "trunk/10"}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
	if len(fs.List("")) != 4 {
		t.Fatal("empty prefix should list everything")
	}
}

func TestCompareAndSwap(t *testing.T) {
	fs := New(Options{})
	// Create-if-absent.
	if err := fs.CompareAndSwap("leader", nil, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	// Second create-if-absent must fail: only one leader.
	if err := fs.CompareAndSwap("leader", nil, []byte("m2")); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("second CAS = %v, want ErrCASMismatch", err)
	}
	// Swap with wrong old value fails.
	if err := fs.CompareAndSwap("leader", []byte("m9"), []byte("m2")); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("wrong-old CAS = %v, want ErrCASMismatch", err)
	}
	// Correct old value succeeds.
	if err := fs.CompareAndSwap("leader", []byte("m1"), []byte("m2")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("leader")
	if string(got) != "m2" {
		t.Fatalf("leader = %q, want m2", got)
	}
	// CAS on a missing file with non-nil old fails.
	if err := fs.CompareAndSwap("ghost", []byte("x"), []byte("y")); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("missing-file CAS = %v, want ErrCASMismatch", err)
	}
}

// TestCASErrorCarriesCurrent: a failed CAS reports the contents that won,
// so a caller that lost the race can re-diff against the winning value
// without a second read (which could itself race a later writer).
func TestCASErrorCarriesCurrent(t *testing.T) {
	fs := New(Options{})
	if err := fs.WriteFile("table", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Mismatch on existing content: Current is the winning value.
	err := fs.CompareAndSwap("table", []byte("v1"), []byte("v1b"))
	var cas *CASError
	if !errors.As(err, &cas) {
		t.Fatalf("CAS = %v (%T), want *CASError", err, err)
	}
	if string(cas.Current) != "v2" {
		t.Fatalf("Current = %q, want v2", cas.Current)
	}
	// Create-if-absent losing to an existing file also surfaces it.
	err = fs.CompareAndSwap("table", nil, []byte("v1"))
	if !errors.As(err, &cas) || string(cas.Current) != "v2" {
		t.Fatalf("create-race CAS = %v, Current = %q, want v2", err, cas.Current)
	}
	// Missing file: Current is nil, distinguishing "vacant" from "held".
	err = fs.CompareAndSwap("ghost", []byte("x"), []byte("y"))
	if !errors.As(err, &cas) {
		t.Fatalf("missing-file CAS = %v (%T), want *CASError", err, err)
	}
	if cas.Current != nil {
		t.Fatalf("missing-file Current = %q, want nil", cas.Current)
	}
	// An existing-but-empty file is "held", not "vacant".
	if err := fs.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	err = fs.CompareAndSwap("empty", []byte("x"), []byte("y"))
	if !errors.As(err, &cas) {
		t.Fatalf("empty-file CAS = %v (%T), want *CASError", err, err)
	}
	if cas.Current == nil || len(cas.Current) != 0 {
		t.Fatalf("empty-file Current = %v, want non-nil empty", cas.Current)
	}
}

func TestCASElectionRace(t *testing.T) {
	// Many goroutines race to become leader; exactly one must win.
	fs := New(Options{})
	var wins int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if fs.CompareAndSwap("leader", nil, []byte(fmt.Sprintf("m%d", i))) == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d leaders elected, want 1", wins)
	}
}

func TestNodeFailureSurvivable(t *testing.T) {
	fs := New(Options{Datanodes: 4, BlockSize: 64, Replication: 2})
	want := data(1000, 7)
	fs.WriteFile("trunk/3", want)
	if err := fs.FailNode(0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("trunk/3")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted after node failure")
	}
	// Replication factor must be restored.
	if s := fs.Stats(); s.ReReplicated == 0 {
		t.Fatal("no re-replication happened")
	}
	// Survive a second failure thanks to re-replication.
	fs.FailNode(1)
	got, err = fs.ReadFile("trunk/3")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted after second failure")
	}
}

func TestAllReplicasLost(t *testing.T) {
	fs := New(Options{Datanodes: 2, BlockSize: 64, Replication: 2})
	fs.WriteFile("f", data(100, 1))
	fs.FailNode(0)
	fs.FailNode(1)
	if _, err := fs.ReadFile("f"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("read after total loss = %v, want ErrUnavailable", err)
	}
	if err := fs.WriteFile("g", data(10, 1)); !errors.Is(err, ErrNoDatanodes) {
		t.Fatalf("write with no nodes = %v, want ErrNoDatanodes", err)
	}
}

func TestRecoverNode(t *testing.T) {
	fs := New(Options{Datanodes: 2, BlockSize: 64, Replication: 2})
	fs.WriteFile("f", data(100, 1))
	fs.FailNode(0)
	if err := fs.RecoverNode(0); err != nil {
		t.Fatal(err)
	}
	// Writes succeed again and place replicas on the recovered node.
	if err := fs.WriteFile("g", data(100, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("g")
	if err != nil || !bytes.Equal(got, data(100, 2)) {
		t.Fatalf("read after recovery: %v", err)
	}
	if err := fs.FailNode(99); err == nil {
		t.Fatal("FailNode out of range should error")
	}
	if err := fs.RecoverNode(-1); err == nil {
		t.Fatal("RecoverNode out of range should error")
	}
}

func TestReplicationPlacement(t *testing.T) {
	fs := New(Options{Datanodes: 5, BlockSize: 100, Replication: 3})
	fs.WriteFile("f", data(100, 1)) // exactly one block
	if s := fs.Stats(); s.BlocksOnNodes != 3 {
		t.Fatalf("replicas = %d, want 3", s.BlocksOnNodes)
	}
}

func TestReplicationCappedByNodes(t *testing.T) {
	fs := New(Options{Datanodes: 2, BlockSize: 100, Replication: 5})
	fs.WriteFile("f", data(50, 1))
	if s := fs.Stats(); s.BlocksOnNodes != 2 {
		t.Fatalf("replicas = %d, want 2 (capped)", s.BlocksOnNodes)
	}
}

func TestConcurrentFiles(t *testing.T) {
	fs := New(Options{Datanodes: 4, BlockSize: 256})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("file-%d", w)
			for i := 0; i < 50; i++ {
				want := data(300+i, byte(w))
				if err := fs.WriteFile(name, want); err != nil {
					t.Error(err)
					return
				}
				got, err := fs.ReadFile(name)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("worker %d iteration %d: bad read", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPropertyRandomFailuresNeverCorrupt(t *testing.T) {
	// Property: with replication 3 over 6 nodes, any single-failure-then-
	// re-replication sequence keeps every file readable and intact.
	f := func(seed uint64) bool {
		fs := New(Options{Datanodes: 6, BlockSize: 97, Replication: 3})
		rng := hash.NewRNG(seed)
		files := map[string][]byte{}
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("f%d", i)
			d := data(rng.Intn(500)+1, byte(i))
			fs.WriteFile(name, d)
			files[name] = d
		}
		for round := 0; round < 6; round++ {
			id := rng.Intn(6)
			fs.FailNode(id)
			fs.RecoverNode(id) // fail one node at a time, then heal
			for name, want := range files {
				got, err := fs.ReadFile(name)
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTFSWrite(b *testing.B) {
	fs := New(Options{Datanodes: 4})
	d := data(64<<10, 1)
	b.SetBytes(int64(len(d)))
	for i := 0; i < b.N; i++ {
		fs.WriteFile("bench", d)
	}
}

func BenchmarkTFSRead(b *testing.B) {
	fs := New(Options{Datanodes: 4})
	d := data(64<<10, 1)
	fs.WriteFile("bench", d)
	b.SetBytes(int64(len(d)))
	for i := 0; i < b.N; i++ {
		if _, err := fs.ReadFile("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
