package rdf

import (
	"context"
	"fmt"

	"trinity/internal/hash"
)

// LUBM vocabulary subset (the Lehigh University Benchmark ontology).
const (
	TypeUniversity = "ub:University"
	TypeDepartment = "ub:Department"
	TypeProfessor  = "ub:FullProfessor"
	TypeStudent    = "ub:GraduateStudent"
	TypeCourse     = "ub:Course"

	PredSubOrganizationOf = "ub:subOrganizationOf"
	PredWorksFor          = "ub:worksFor"
	PredMemberOf          = "ub:memberOf"
	PredAdvisor           = "ub:advisor"
	PredTakesCourse       = "ub:takesCourse"
	PredTeacherOf         = "ub:teacherOf"
	PredDegreeFrom        = "ub:undergraduateDegreeFrom"
)

// LUBMConfig scales the generated university dataset.
type LUBMConfig struct {
	// Universities is the university count (LUBM's scale factor).
	Universities int
	// DeptsPerUniv, ProfsPerDept, StudentsPerProf, CoursesPerDept default
	// to LUBM-like ratios when zero.
	DeptsPerUniv    int
	ProfsPerDept    int
	StudentsPerProf int
	CoursesPerDept  int
	// Seed drives the pseudo-random associations.
	Seed uint64
}

func (c *LUBMConfig) fill() {
	if c.Universities <= 0 {
		c.Universities = 1
	}
	if c.DeptsPerUniv <= 0 {
		c.DeptsPerUniv = 5
	}
	if c.ProfsPerDept <= 0 {
		c.ProfsPerDept = 7
	}
	if c.StudentsPerProf <= 0 {
		c.StudentsPerProf = 4
	}
	if c.CoursesPerDept <= 0 {
		c.CoursesPerDept = 10
	}
}

// GenerateLUBM populates the store with a university-domain dataset in
// the style of the Lehigh University Benchmark: universities contain
// departments; departments employ professors and offer courses;
// professors teach courses and advise students; students are department
// members, take courses, and hold degrees from other universities.
// It returns the number of triples loaded.
func GenerateLUBM(ctx context.Context, s *Store, cfg LUBMConfig) (int, error) {
	cfg.fill()
	rng := hash.NewRNG(cfg.Seed)
	b := s.NewBuilder()
	triples := 0
	triple := func(su, p, o string) {
		b.AddTriple(su, p, o)
		triples++
	}
	univ := func(u int) string { return fmt.Sprintf("http://univ%d", u) }
	for u := 0; u < cfg.Universities; u++ {
		b.AddEntity(univ(u), TypeUniversity)
	}
	for u := 0; u < cfg.Universities; u++ {
		for d := 0; d < cfg.DeptsPerUniv; d++ {
			dept := fmt.Sprintf("%s/dept%d", univ(u), d)
			b.AddEntity(dept, TypeDepartment)
			triple(dept, PredSubOrganizationOf, univ(u))
			var courses []string
			for c := 0; c < cfg.CoursesPerDept; c++ {
				course := fmt.Sprintf("%s/course%d", dept, c)
				b.AddEntity(course, TypeCourse)
				courses = append(courses, course)
			}
			for p := 0; p < cfg.ProfsPerDept; p++ {
				prof := fmt.Sprintf("%s/prof%d", dept, p)
				b.AddEntity(prof, TypeProfessor)
				triple(prof, PredWorksFor, dept)
				// Each professor teaches 1-2 courses.
				nTeach := 1 + rng.Intn(2)
				for t := 0; t < nTeach; t++ {
					triple(prof, PredTeacherOf, courses[rng.Intn(len(courses))])
				}
				for st := 0; st < cfg.StudentsPerProf; st++ {
					student := fmt.Sprintf("%s/student%d", prof, st)
					b.AddEntity(student, TypeStudent)
					triple(student, PredAdvisor, prof)
					triple(student, PredMemberOf, dept)
					// 1-3 courses from the same department.
					nTake := 1 + rng.Intn(3)
					for t := 0; t < nTake; t++ {
						triple(student, PredTakesCourse, courses[rng.Intn(len(courses))])
					}
					// Undergraduate degree from a random university.
					triple(student, PredDegreeFrom, univ(rng.Intn(cfg.Universities)))
				}
			}
		}
	}
	return triples, b.Flush(ctx)
}

// The four benchmark queries of Figure 14(b), phrased over the generated
// schema. Their shapes track LUBM's published queries: a selective lookup
// (Q1), a one-hop star (Q3), a two-predicate join (Q5), and a triangle-
// shaped three-way join (Q7).

// QueryStudentsTakingCourse is Q1: students taking a given course.
func QueryStudentsTakingCourse(course string) *Query {
	return &Query{
		Patterns: []TriplePattern{{S: V("x"), Pred: PredTakesCourse, O: I(course)}},
		Types:    map[string]string{"x": TypeStudent},
		Select:   []string{"x"},
	}
}

// QueryProfessorsOfUniversity is Q3: professors working for any
// department of a given university.
func QueryProfessorsOfUniversity(university string) *Query {
	return &Query{
		Patterns: []TriplePattern{
			{S: V("d"), Pred: PredSubOrganizationOf, O: I(university)},
			{S: V("p"), Pred: PredWorksFor, O: V("d")},
		},
		Types:  map[string]string{"d": TypeDepartment, "p": TypeProfessor},
		Select: []string{"p", "d"},
	}
}

// QueryMembersWithDegreeFrom is Q5: department members holding a degree
// from a given university.
func QueryMembersWithDegreeFrom(dept, university string) *Query {
	return &Query{
		Patterns: []TriplePattern{
			{S: V("x"), Pred: PredMemberOf, O: I(dept)},
			{S: V("x"), Pred: PredDegreeFrom, O: I(university)},
		},
		Types:  map[string]string{"x": TypeStudent},
		Select: []string{"x"},
	}
}

// QueryStudentsOfTeacher is Q7: students taking any course taught by a
// given professor, with their advisor relationship closing a triangle
// when the advisor is that professor.
func QueryStudentsOfTeacher(prof string) *Query {
	return &Query{
		Patterns: []TriplePattern{
			{S: I(prof), Pred: PredTeacherOf, O: V("c")},
			{S: V("x"), Pred: PredTakesCourse, O: V("c")},
		},
		Types:  map[string]string{"c": TypeCourse, "x": TypeStudent},
		Select: []string{"x", "c"},
	}
}
