package rdf

import (
	"context"
	"strings"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

func newCloud(t testing.TB, machines int) *memcloud.Cloud {
	c := memcloud.New(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 10 * time.Second},
	})
	t.Cleanup(c.Close)
	return c
}

func smallStore(t testing.TB, machines int) *Store {
	t.Helper()
	s := NewStore(newCloud(t, machines))
	b := s.NewBuilder()
	b.AddEntity("u1", TypeUniversity)
	b.AddEntity("d1", TypeDepartment)
	b.AddEntity("d2", TypeDepartment)
	b.AddEntity("p1", TypeProfessor)
	b.AddEntity("p2", TypeProfessor)
	b.AddEntity("s1", TypeStudent)
	b.AddEntity("s2", TypeStudent)
	b.AddEntity("c1", TypeCourse)
	b.AddEntity("c2", TypeCourse)
	b.AddTriple("d1", PredSubOrganizationOf, "u1")
	b.AddTriple("d2", PredSubOrganizationOf, "u1")
	b.AddTriple("p1", PredWorksFor, "d1")
	b.AddTriple("p2", PredWorksFor, "d2")
	b.AddTriple("p1", PredTeacherOf, "c1")
	b.AddTriple("p2", PredTeacherOf, "c2")
	b.AddTriple("s1", PredTakesCourse, "c1")
	b.AddTriple("s2", PredTakesCourse, "c1")
	b.AddTriple("s2", PredTakesCourse, "c2")
	b.AddTriple("s1", PredMemberOf, "d1")
	b.AddTriple("s2", PredMemberOf, "d1")
	b.AddTriple("s1", PredDegreeFrom, "u1")
	if err := b.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

func names(t *testing.T, s *Store, bindings []Binding, v string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, b := range bindings {
		name, err := s.Name(context.Background(), b[v])
		if err != nil {
			t.Fatal(err)
		}
		out[name] = true
	}
	return out
}

func TestConstantObjectLookup(t *testing.T) {
	s := smallStore(t, 2)
	res, err := s.Execute(context.Background(), QueryStudentsTakingCourse("c1"))
	if err != nil {
		t.Fatal(err)
	}
	got := names(t, s, res, "x")
	if len(got) != 2 || !got["s1"] || !got["s2"] {
		t.Fatalf("students of c1 = %v", got)
	}
}

func TestTwoPatternJoin(t *testing.T) {
	s := smallStore(t, 2)
	res, err := s.Execute(context.Background(), QueryProfessorsOfUniversity("u1"))
	if err != nil {
		t.Fatal(err)
	}
	got := names(t, s, res, "p")
	if len(got) != 2 || !got["p1"] || !got["p2"] {
		t.Fatalf("professors = %v", got)
	}
}

func TestIntersectionJoin(t *testing.T) {
	s := smallStore(t, 2)
	res, err := s.Execute(context.Background(), QueryMembersWithDegreeFrom("d1", "u1"))
	if err != nil {
		t.Fatal(err)
	}
	got := names(t, s, res, "x")
	// Only s1 is a member of d1 AND holds a degree from u1.
	if len(got) != 1 || !got["s1"] {
		t.Fatalf("members = %v", got)
	}
}

func TestChainJoin(t *testing.T) {
	s := smallStore(t, 2)
	res, err := s.Execute(context.Background(), QueryStudentsOfTeacher("p1"))
	if err != nil {
		t.Fatal(err)
	}
	got := names(t, s, res, "x")
	if len(got) != 2 || !got["s1"] || !got["s2"] {
		t.Fatalf("students of p1 = %v", got)
	}
	res, err = s.Execute(context.Background(), QueryStudentsOfTeacher("p2"))
	if err != nil {
		t.Fatal(err)
	}
	got = names(t, s, res, "x")
	if len(got) != 1 || !got["s2"] {
		t.Fatalf("students of p2 = %v", got)
	}
}

func TestNoMatches(t *testing.T) {
	s := smallStore(t, 2)
	res, err := s.Execute(context.Background(), QueryStudentsTakingCourse("no-such-course"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("matches = %v", res)
	}
	// Unknown predicate.
	res, err = s.Execute(context.Background(), &Query{
		Patterns: []TriplePattern{{S: V("x"), Pred: "ub:never", O: I("c1")}},
	})
	if err != nil || len(res) != 0 {
		t.Fatalf("unknown predicate: %v %v", res, err)
	}
}

func TestTypeConstraintFilters(t *testing.T) {
	s := smallStore(t, 2)
	// Without the Student type constraint, takesCourse c1 still only
	// matches students, but a constraint on a wrong type must empty it.
	q := QueryStudentsTakingCourse("c1")
	q.Types["x"] = TypeProfessor
	res, err := s.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("professors taking courses: %v", res)
	}
}

func TestUnboundPatternNeedsType(t *testing.T) {
	s := smallStore(t, 2)
	_, err := s.Execute(context.Background(), &Query{
		Patterns: []TriplePattern{{S: V("x"), Pred: PredTakesCourse, O: V("y")}},
	})
	if err == nil {
		t.Fatal("unbound pattern without type constraint accepted")
	}
	// With a type constraint it scans.
	res, err := s.Execute(context.Background(), &Query{
		Patterns: []TriplePattern{{S: V("x"), Pred: PredTakesCourse, O: V("y")}},
		Types:    map[string]string{"x": TypeStudent},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 { // s1-c1, s2-c1, s2-c2
		t.Fatalf("full scan join = %d rows", len(res))
	}
}

func TestGenerateLUBMScale(t *testing.T) {
	s := NewStore(newCloud(t, 4))
	triples, err := GenerateLUBM(context.Background(), s, LUBMConfig{Universities: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if triples < 500 {
		t.Fatalf("only %d triples generated", triples)
	}
	// Entity counts: 2 universities, 10 departments.
	if got := len(s.scanByLabel(s.types[TypeUniversity])); got != 2 {
		t.Fatalf("universities = %d", got)
	}
	if got := len(s.scanByLabel(s.types[TypeDepartment])); got != 10 {
		t.Fatalf("departments = %d", got)
	}
}

func TestLUBMQueriesReturnResults(t *testing.T) {
	s := NewStore(newCloud(t, 4))
	if _, err := GenerateLUBM(context.Background(), s, LUBMConfig{Universities: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	queries := []*Query{
		QueryStudentsTakingCourse("http://univ0/dept0/course0"),
		QueryProfessorsOfUniversity("http://univ0"),
		QueryMembersWithDegreeFrom("http://univ0/dept0", "http://univ1"),
		QueryStudentsOfTeacher("http://univ0/dept0/prof0"),
	}
	for i, q := range queries {
		res, err := s.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("Q%d: %v", i, err)
		}
		t.Logf("Q%d: %d rows", i, len(res))
		// Q3 (professors of univ0) must return exactly 5 depts * 7 profs.
		if i == 1 && len(res) != 35 {
			t.Fatalf("Q3 rows = %d, want 35", len(res))
		}
		// Every binding must satisfy its type constraints.
		for _, b := range res {
			for v, typeIRI := range q.Types {
				id, ok := b[v]
				if !ok {
					continue
				}
				if !s.typeOK(context.Background(), id, v, map[string]string{v: typeIRI}) {
					name, _ := s.Name(context.Background(), id)
					t.Fatalf("Q%d: binding %s=%s violates type %s", i, v, name, typeIRI)
				}
			}
		}
	}
}

func TestResultsConsistentAcrossMachineCounts(t *testing.T) {
	// The same dataset sharded over 1, 2, and 4 machines must give
	// identical answers.
	counts := map[int]int{}
	for _, machines := range []int{1, 2, 4} {
		s := NewStore(newCloud(t, machines))
		if _, err := GenerateLUBM(context.Background(), s, LUBMConfig{Universities: 1, Seed: 3}); err != nil {
			t.Fatal(err)
		}
		res, err := s.Execute(context.Background(), QueryProfessorsOfUniversity("http://univ0"))
		if err != nil {
			t.Fatal(err)
		}
		counts[machines] = len(res)
	}
	if counts[1] != counts[2] || counts[2] != counts[4] {
		t.Fatalf("row counts differ by machine count: %v", counts)
	}
}

func TestEntityNamesRoundTrip(t *testing.T) {
	s := smallStore(t, 2)
	name, err := s.Name(context.Background(), EntityID("p1"))
	if err != nil || !strings.Contains(name, "p1") {
		t.Fatalf("Name = %q, %v", name, err)
	}
}
