// Package rdf implements a distributed RDF store and a SPARQL basic-
// graph-pattern engine over Trinity's memory cloud, reproducing the setup
// behind Figure 14(b) (the Trinity-based RDF engine of Zeng et al.,
// VLDB'13, evaluated on LUBM data).
//
// Triples (s, p, o) are stored natively as graph adjacency: the subject
// cell's Outlinks hold the objects and the parallel Weights list holds
// predicate IDs; every triple is also stored reversed (predicate tagged
// with a direction bit) so bound-object patterns explore backwards.
// Entity type is interned into the node label for index-free type scans.
// Queries are answered by distributed graph exploration, not joins over
// triple tables — the paper's core argument applied to RDF.
package rdf

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"trinity/internal/graph"
	"trinity/internal/hash"
	"trinity/internal/memcloud"
)

// Predicate is an interned predicate identifier.
type Predicate int64

// reverseBit tags reversed triple edges.
const reverseBit = int64(1) << 40

// Store is a distributed triple store over a memory cloud.
type Store struct {
	g *graph.Graph

	preds   map[string]Predicate
	predIDs []string
	types   map[string]int64
	typeIDs []string
}

// NewStore creates an empty store over the cloud.
func NewStore(cloud *memcloud.Cloud) *Store {
	return &Store{
		g:     graph.New(cloud, true),
		preds: map[string]Predicate{},
		types: map[string]int64{},
	}
}

// Graph exposes the underlying graph engine.
func (s *Store) Graph() *graph.Graph { return s.g }

// InternPredicate returns the stable id of a predicate IRI.
func (s *Store) InternPredicate(iri string) Predicate {
	if id, ok := s.preds[iri]; ok {
		return id
	}
	id := Predicate(len(s.predIDs) + 1)
	s.preds[iri] = id
	s.predIDs = append(s.predIDs, iri)
	return id
}

// InternType returns the stable label of an entity type IRI.
func (s *Store) InternType(iri string) int64 {
	if id, ok := s.types[iri]; ok {
		return id
	}
	id := int64(len(s.typeIDs) + 1)
	s.types[iri] = id
	s.typeIDs = append(s.typeIDs, iri)
	return id
}

// EntityID derives the cell id of an entity IRI.
func EntityID(iri string) uint64 { return hash.String(iri) }

// Builder accumulates triples and bulk-loads them.
type Builder struct {
	s *Store
	b *graph.Builder
}

// NewBuilder starts a bulk load into the store.
func (s *Store) NewBuilder() *Builder {
	return &Builder{s: s, b: graph.NewBuilder(true)}
}

// AddEntity declares an entity with its rdf:type.
func (b *Builder) AddEntity(iri, typeIRI string) uint64 {
	id := EntityID(iri)
	b.b.AddNode(id, b.s.InternType(typeIRI), iri)
	return id
}

// AddTriple records (subject, predicate, object); both entities must have
// been declared with AddEntity.
func (b *Builder) AddTriple(subjIRI, predIRI, objIRI string) {
	p := int64(b.s.InternPredicate(predIRI))
	s := EntityID(subjIRI)
	o := EntityID(objIRI)
	b.b.AddWeightedEdge(s, o, p)
	b.b.AddWeightedEdge(o, s, p|reverseBit)
}

// Flush loads the accumulated triples into the memory cloud.
func (b *Builder) Flush(ctx context.Context) error {
	return b.b.Flush(ctx, b.s.g)
}

// --- SPARQL basic graph patterns ---

// Term is a pattern term: either a variable ("?x") or an entity IRI.
type Term struct {
	Var string // non-empty for variables
	IRI string // non-empty for constants
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// I makes a constant (IRI) term.
func I(iri string) Term { return Term{IRI: iri} }

// TriplePattern is one BGP pattern: subject / predicate IRI / object.
// Predicates must be constant (as in all LUBM benchmark queries).
type TriplePattern struct {
	S    Term
	Pred string
	O    Term
}

// Query is a basic graph pattern plus an optional type constraint per
// variable (the `?x rdf:type T` patterns of LUBM, handled natively via
// node labels).
type Query struct {
	Patterns []TriplePattern
	// Types constrains variables to an entity type IRI.
	Types map[string]string
	// Select lists the output variables, in order.
	Select []string
}

// Binding maps variable names to entity cell ids.
type Binding map[string]uint64

// Execute answers the query by distributed exploration: bindings are
// seeded from the most selective pattern and extended pattern by pattern
// along graph adjacency.
func (s *Store) Execute(ctx context.Context, q *Query) ([]Binding, error) {
	if len(q.Patterns) == 0 {
		return nil, errors.New("rdf: empty query")
	}
	patterns := append([]TriplePattern(nil), q.Patterns...)
	// Order patterns so each one shares a variable with the already-bound
	// set when possible, starting from the one with a constant term.
	sort.SliceStable(patterns, func(i, j int) bool {
		return patternSelectivity(patterns[i]) < patternSelectivity(patterns[j])
	})
	ordered := planPatterns(patterns)

	bindings := []Binding{{}}
	for _, p := range ordered {
		var err error
		bindings, err = s.extend(ctx, bindings, p, q.Types)
		if err != nil {
			return nil, err
		}
		if len(bindings) == 0 {
			return nil, nil
		}
	}
	return bindings, nil
}

// patternSelectivity orders seed patterns: constant subject or object
// first.
func patternSelectivity(p TriplePattern) int {
	score := 2
	if p.S.IRI != "" {
		score--
	}
	if p.O.IRI != "" {
		score--
	}
	return score
}

// planPatterns greedily orders patterns to keep the join connected.
func planPatterns(ps []TriplePattern) []TriplePattern {
	if len(ps) <= 1 {
		return ps
	}
	bound := map[string]bool{}
	markBound := func(p TriplePattern) {
		if p.S.Var != "" {
			bound[p.S.Var] = true
		}
		if p.O.Var != "" {
			bound[p.O.Var] = true
		}
	}
	out := []TriplePattern{ps[0]}
	markBound(ps[0])
	rest := append([]TriplePattern(nil), ps[1:]...)
	for len(rest) > 0 {
		picked := -1
		for i, p := range rest {
			if (p.S.Var != "" && bound[p.S.Var]) || (p.O.Var != "" && bound[p.O.Var]) ||
				p.S.IRI != "" || p.O.IRI != "" {
				picked = i
				break
			}
		}
		if picked < 0 {
			picked = 0 // disconnected pattern: cartesian step
		}
		out = append(out, rest[picked])
		markBound(rest[picked])
		rest = append(rest[:picked], rest[picked+1:]...)
	}
	return out
}

// extend joins one pattern into the binding set.
func (s *Store) extend(ctx context.Context, bindings []Binding, p TriplePattern, types map[string]string) ([]Binding, error) {
	pred, ok := s.preds[p.Pred]
	if !ok {
		return nil, nil // unknown predicate: no matches
	}
	var out []Binding
	for _, b := range bindings {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sBound, sID := resolveTerm(p.S, b)
		oBound, oID := resolveTerm(p.O, b)
		switch {
		case sBound:
			// Forward exploration from the subject.
			err := s.forEachEdge(ctx, sID, int64(pred), func(obj uint64) error {
				if oBound {
					if obj == oID {
						out = append(out, b)
					}
					return nil
				}
				if !s.typeOK(ctx, obj, p.O.Var, types) {
					return nil
				}
				nb := cloneBinding(b)
				nb[p.O.Var] = obj
				out = append(out, nb)
				return nil
			})
			if err != nil {
				return nil, err
			}
		case oBound:
			// Backward exploration from the object.
			err := s.forEachEdge(ctx, oID, int64(pred)|reverseBit, func(subj uint64) error {
				if !s.typeOK(ctx, subj, p.S.Var, types) {
					return nil
				}
				nb := cloneBinding(b)
				nb[p.S.Var] = subj
				out = append(out, nb)
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			// Neither side bound: scan by the subject variable's type.
			typeIRI, ok := types[p.S.Var]
			if !ok {
				return nil, fmt.Errorf("rdf: pattern (?%s %s ?%s) needs a type constraint on ?%s",
					p.S.Var, p.Pred, p.O.Var, p.S.Var)
			}
			label := s.types[typeIRI]
			subjects := s.scanByLabel(label)
			for _, subj := range subjects {
				err := s.forEachEdge(ctx, subj, int64(pred), func(obj uint64) error {
					if !s.typeOK(ctx, obj, p.O.Var, types) {
						return nil
					}
					nb := cloneBinding(b)
					nb[p.S.Var] = subj
					nb[p.O.Var] = obj
					out = append(out, nb)
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func resolveTerm(t Term, b Binding) (bool, uint64) {
	if t.IRI != "" {
		return true, EntityID(t.IRI)
	}
	if id, ok := b[t.Var]; ok {
		return true, id
	}
	return false, 0
}

func cloneBinding(b Binding) Binding {
	nb := make(Binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// typeOK checks a candidate against the variable's type constraint.
func (s *Store) typeOK(ctx context.Context, id uint64, varName string, types map[string]string) bool {
	if varName == "" {
		return true
	}
	typeIRI, ok := types[varName]
	if !ok {
		return true
	}
	want := s.types[typeIRI]
	got, err := s.g.On(0).Label(ctx, id)
	return err == nil && got == want
}

// forEachEdge streams edges of one node with the given predicate tag,
// fetching the node wherever it lives.
func (s *Store) forEachEdge(ctx context.Context, id uint64, tag int64, fn func(other uint64) error) error {
	m := s.g.On(0)
	if m.Slave().Owner(id) == m.Slave().ID() {
		var ferr error
		err := m.ForEachOutEdge(id, func(dst uint64, w int64) bool {
			if w == tag {
				if e := fn(dst); e != nil {
					ferr = e
					return false
				}
			}
			return true
		})
		if err != nil && !errors.Is(err, memcloud.ErrNotFound) {
			return err
		}
		return ferr
	}
	n, err := m.GetNode(ctx, id)
	if err != nil {
		if errors.Is(err, graph.ErrNoNode) {
			return nil
		}
		return err
	}
	for i, dst := range n.Outlinks {
		if i < len(n.Weights) && n.Weights[i] == tag {
			if e := fn(dst); e != nil {
				return e
			}
		}
	}
	return nil
}

// scanByLabel collects all entities with the type label (parallel scan,
// no index).
func (s *Store) scanByLabel(label int64) []uint64 {
	var out []uint64
	for i := 0; i < s.g.Machines(); i++ {
		s.g.On(i).ForEachLocalNode(func(id uint64, blob []byte) bool {
			n, err := graph.DecodeNode(id, blob)
			if err == nil && n.Label == label {
				out = append(out, id)
			}
			return true
		})
	}
	return out
}

// Name returns the IRI of an entity id.
func (s *Store) Name(ctx context.Context, id uint64) (string, error) {
	return s.g.On(0).Name(ctx, id)
}
