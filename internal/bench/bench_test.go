package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("xyz", 1500*time.Millisecond)
	tab.AddRow(42, 250*time.Microsecond)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "long-column", "2.50", "1.50s", "250µs", "xyz"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTimed(t *testing.T) {
	d := Timed(func() { time.Sleep(10 * time.Millisecond) })
	if d < 10*time.Millisecond || d > time.Second {
		t.Fatalf("Timed = %v", d)
	}
}

func TestScaleFactor(t *testing.T) {
	if (Scale{}).factor() != 1 || (Scale{Factor: -3}).factor() != 1 {
		t.Fatal("zero/negative scale must clamp to 1")
	}
	if (Scale{Factor: 4}).factor() != 4 {
		t.Fatal("factor not passed through")
	}
	// rmatScales shifts with the factor.
	s1 := rmatScales(Scale{Factor: 1}, 10)
	s4 := rmatScales(Scale{Factor: 4}, 10)
	if s1[0] != 10 || s4[0] != 12 {
		t.Fatalf("scales: %v %v", s1, s4)
	}
}

// TestExperimentsSmoke runs the two cheapest figure harnesses end to end
// and sanity-checks the table structure; the full sweep lives in the root
// bench_test.go and cmd/trinity-bench.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness smoke test")
	}
	tab, err := ThreeHop(context.Background(), Scale{Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 3 {
		t.Fatalf("3hop table shape: %+v", tab.Rows)
	}
	tab, err = Fig14b(context.Background(), Scale{Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // machines 1,2,4,8
		t.Fatalf("fig14b rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 5 { // machines + Q1,Q3,Q5,Q7
			t.Fatalf("fig14b row shape: %v", row)
		}
	}
}

func TestRMATAdjacencyComplete(t *testing.T) {
	adj := rmatAdjacency(8, 4, 1)
	if len(adj) != 256 {
		t.Fatalf("adjacency has %d vertices, want 256 (isolated ones included)", len(adj))
	}
	edges := 0
	for _, out := range adj {
		edges += len(out)
	}
	if edges != 256*4 {
		t.Fatalf("edges = %d", edges)
	}
}
