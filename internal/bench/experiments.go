package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"trinity/internal/algo"
	"trinity/internal/baseline/giraph"
	"trinity/internal/baseline/pbgl"
	"trinity/internal/compute/traversal"
	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/hash"
	"trinity/internal/memcloud"
	"trinity/internal/memcloud/store"
	"trinity/internal/msg"
	"trinity/internal/obs"
	"trinity/internal/rdf"
)

// newCloud boots a simulated cluster sized for benchmarking. Trunks are
// kept small (the figures measure committed bytes, not reserved
// capacity), so standing up and tearing down many clouds in one process
// stays cheap.
func newCloud(machines int) *memcloud.Cloud {
	return memcloud.New(memcloud.Config{
		Machines:      machines,
		TrunkCapacity: 4 << 20,
		TrunkPageSize: 8 << 10,
		Msg: msg.Options{
			FlushInterval: time.Millisecond,
			CallTimeout:   5 * time.Minute,
		},
		// All benchmark clouds share the process registry, so the
		// trinity-bench -metrics dump aggregates cumulatively over every
		// experiment. The tables themselves read per-engine snapshots
		// (e.g. bsp WireMessages), which are unaffected by the sharing.
		Metrics: obs.Default(),
	})
}

// loadSocial builds an undirected named social graph on a fresh cloud.
func loadSocial(ctx context.Context, machines, people, degree int, seed uint64) (*memcloud.Cloud, *graph.Graph, error) {
	cloud := newCloud(machines)
	b := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: people, AvgDegree: degree, Seed: seed}, b)
	g, err := b.Load(ctx, cloud)
	return cloud, g, err
}

// loadRMAT builds a directed R-MAT graph on a fresh cloud.
func loadRMAT(ctx context.Context, machines int, scale uint, degree, labels int, seed uint64) (*memcloud.Cloud, *graph.Graph, error) {
	cloud := newCloud(machines)
	b := graph.NewBuilder(true)
	gen.BuildRMAT(gen.RMATConfig{Scale: scale, AvgDegree: degree, Seed: seed}, labels, b)
	g, err := b.Load(ctx, cloud)
	return cloud, g, err
}

// Fig12a reproduces Figure 12(a): people-search response time on a
// social graph as node degree sweeps, for 2-hop and 3-hop queries, on 8
// machines. Paper: 2-hop always < 10 ms; 3-hop at degree 130 ≈ 96 ms.
func Fig12a(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 12(a): People Search — response time vs node degree (8 machines)",
		Columns: []string{"degree", "2-hop", "3-hop"},
	}
	people := 4000 * s.factor()
	davidLabel := int64(hash.String("David"))
	for _, degree := range []int{10, 50, 90, 130, 170, 200} {
		cloud, g, err := loadSocial(ctx, 8, people, degree, uint64(degree))
		if err != nil {
			return nil, err
		}
		e := traversal.New(g)
		const queries = 5
		var d2, d3 time.Duration
		for q := 0; q < queries; q++ {
			start := uint64(q * 17 % people)
			d2 += Timed(func() { e.PeopleSearch(ctx, 0, start, davidLabel, 2) })
			d3 += Timed(func() { e.PeopleSearch(ctx, 0, start, davidLabel, 3) })
		}
		t.AddRow(degree, d2/queries, d3/queries)
		cloud.Close()
	}
	return t, nil
}

// Fig12b reproduces Figure 12(b): one PageRank iteration on R-MAT graphs
// as the node count sweeps, for several cluster sizes. Paper: 1B nodes,
// one iteration ≈ 1 minute on 8 machines; more machines help.
func Fig12b(ctx context.Context, s Scale) (*Table, error) {
	machinesSeries := []int{8, 10, 12, 14}
	t := &Table{
		Title:   "Figure 12(b): PageRank — seconds per iteration vs node count",
		Columns: append([]string{"nodes"}, colsFor(machinesSeries)...),
	}
	for _, scale := range rmatScales(s, 12) {
		row := []any{1 << scale}
		for _, machines := range machinesSeries {
			cloud, g, err := loadRMAT(ctx, machines, scale, 13, 0, uint64(scale))
			if err != nil {
				return nil, err
			}
			const iters = 3
			var res *algo.PageRankResult
			d := Timed(func() { res, err = algo.PageRank(ctx, g, iters, 8) })
			cloud.Close()
			if err != nil {
				return nil, err
			}
			_ = res
			row = append(row, d/iters)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig12c reproduces Figure 12(c): full BFS on the same R-MAT graphs.
// Paper: 1B nodes on 8 machines ≈ 1028 s, 14 machines ≈ 644 s.
func Fig12c(ctx context.Context, s Scale) (*Table, error) {
	machinesSeries := []int{8, 10, 12, 14}
	t := &Table{
		Title:   "Figure 12(c): Breadth-first Search — execution time vs node count",
		Columns: append([]string{"nodes"}, colsFor(machinesSeries)...),
	}
	for _, scale := range rmatScales(s, 12) {
		row := []any{1 << scale}
		for _, machines := range machinesSeries {
			cloud, g, err := loadRMAT(ctx, machines, scale, 13, 0, uint64(scale))
			if err != nil {
				return nil, err
			}
			var d time.Duration
			d = Timed(func() { _, err = algo.BFS(ctx, g, 0, 8) })
			cloud.Close()
			if err != nil {
				return nil, err
			}
			row = append(row, d)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig12d reproduces Figure 12(d): PageRank on the Giraph-style baseline.
// Paper: Giraph is slower than Trinity by two orders of magnitude and
// runs out of memory first.
func Fig12d(ctx context.Context, s Scale) (*Table, error) {
	machinesSeries := []int{4, 8, 16}
	t := &Table{
		Title:   "Figure 12(d): PageRank on Giraph-style baseline — time per iteration",
		Columns: append([]string{"nodes"}, colsFor(machinesSeries)...),
	}
	for _, scale := range rmatScales(s, 11) {
		adj := rmatAdjacency(scale, 13, uint64(scale))
		row := []any{1 << scale}
		for _, machines := range machinesSeries {
			e := giraph.New(machines, adj)
			const iters = 3
			d := Timed(func() { e.Run(&giraph.PageRank{Iterations: iters}, iters+2) })
			e.Close()
			row = append(row, d/iters)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: BFS execution time and memory usage for the
// PBGL-style ghost-cell baseline vs Trinity, sweeping node count and
// average degree on 16 machines. Paper: Trinity ~10x faster with ~10x
// less memory; PBGL's ghosts blow up on high degrees.
func Fig13(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title: "Figure 13: BFS in PBGL-style baseline vs Trinity (16 machines)",
		Columns: []string{"nodes", "avg deg", "PBGL time", "Trinity time",
			"PBGL mem (MB)", "Trinity mem (MB)", "ghosts/vertex"},
	}
	for _, scale := range rmatScales(s, 10) {
		for _, degree := range []int{4, 8, 16, 32} {
			adj := rmatAdjacency(scale, degree, uint64(scale*31+uint(degree)))

			pe := pbgl.New(16, adj)
			pbglMem := pe.MemoryFootprint()
			var pbglTime time.Duration
			pbglTime = Timed(func() { pe.BFS(0) })
			ghostsPerVertex := float64(pe.GhostCount()) / float64(pe.VertexCount())
			pe.Close()

			cloud, g, err := loadRMAT(ctx, 16, scale, degree, 0, uint64(scale*31+uint(degree)))
			if err != nil {
				return nil, err
			}
			trinityMem := cloud.MemoryUsage()
			var trinityTime time.Duration
			trinityTime = Timed(func() { _, err = algo.BFS(ctx, g, 0, 8) })
			cloud.Close()
			if err != nil {
				return nil, err
			}
			t.AddRow(1<<scale, degree, pbglTime, trinityTime,
				float64(pbglMem)/(1<<20), float64(trinityMem)/(1<<20),
				ghostsPerVertex)
		}
	}
	return t, nil
}

// Fig8a reproduces Figure 8(a): subgraph matching time vs graph size for
// DFS- and RANDOM-generated 10-node queries, avg degree 16, 8 machines.
// Paper: ~1 second per query at 128M nodes with no structural index.
func Fig8a(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 8(a): Subgraph matching — query time vs node count (8 machines)",
		Columns: []string{"nodes", "DFS queries", "RANDOM queries"},
	}
	const labels = 20
	querySize := 10
	for _, scale := range rmatScales(s, 11) {
		cloud, g, err := loadRMAT(ctx, 8, scale, 16, labels, uint64(scale))
		if err != nil {
			return nil, err
		}
		mt := algo.NewMatcher(g)
		row := []any{1 << scale}
		for _, mode := range []algo.QueryGenMode{algo.GenDFS, algo.GenRandom} {
			const queries = 3
			var total time.Duration
			ran := 0
			for q := 0; q < queries; q++ {
				p, err := algo.GenerateQuery(g, querySize, mode, uint64(q+1))
				if err != nil {
					continue // rare dead-end walks at tiny scales
				}
				total += Timed(func() { mt.MatchBudget(ctx, 0, p, 1, 500_000) })
				ran++
			}
			if ran == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, total/time.Duration(ran))
			}
		}
		t.AddRow(row...)
		cloud.Close()
	}
	return t, nil
}

// Fig8b reproduces Figure 8(b): distance-oracle estimation accuracy vs
// landmark count for the three selection strategies. Paper: global
// betweenness best, local betweenness within a whisker of it, largest
// degree worst.
func Fig8b(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 8(b): Distance oracle — estimation accuracy (%) vs #landmarks",
		Columns: []string{"landmarks", "LargestDegree", "LocalBetweenness", "GlobalBetweenness"},
	}
	// A community-structured graph: betweenness finds the bridges between
	// communities, degree only finds in-community hubs (the regime the
	// paper's real social graphs exhibit).
	cloud := newCloud(8)
	defer cloud.Close()
	bld := graph.NewBuilder(false)
	gen.BuildClustered(gen.ClusteredConfig{
		Communities:        40 * s.factor(),
		PeoplePerCommunity: 40,
		IntraDegree:        6,
		Ring:               true,
		Bridges:            2 * s.factor(),
		DenseSatellites:    6 * s.factor(),
		Seed:               77,
	}, bld)
	g, err := bld.Load(ctx, cloud)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{20, 40, 60, 80, 100} {
		row := []any{k}
		for _, strat := range []algo.LandmarkStrategy{algo.ByDegree, algo.ByLocalBetweenness, algo.ByGlobalBetweenness} {
			o, err := algo.BuildOracle(ctx, g, k, strat, 5)
			if err != nil {
				return nil, err
			}
			acc, err := o.Accuracy(ctx, 64, 9)
			if err != nil {
				return nil, err
			}
			row = append(row, acc)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14a reproduces Figure 14(a): subgraph-matching parallel speedup on
// the Wordnet-like and patent-like graphs as machines increase.
func Fig14a(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 14(a): Subgraph match query time vs machine count",
		Columns: []string{"machines", "Wordnet-like", "Patent-like"},
	}
	nodes := 16000 * s.factor()
	type load struct {
		name  string
		build func(*graph.Builder)
	}
	loads := []load{
		{"wordnet", func(b *graph.Builder) { gen.BuildWordnetLike(nodes, 3, b) }},
		{"patent", func(b *graph.Builder) { gen.BuildPatentLike(nodes, 4, b) }},
	}
	for _, machines := range []int{1, 2, 4, 8} {
		row := []any{machines}
		for _, l := range loads {
			cloud := newCloud(machines)
			b := graph.NewBuilder(true)
			l.build(b)
			g, err := b.Load(ctx, cloud)
			if err != nil {
				return nil, err
			}
			mt := algo.NewMatcher(g)
			const queries = 3
			var total time.Duration
			ran := 0
			for q := 0; q < queries; q++ {
				p, err := algo.GenerateQuery(g, 7, algo.GenDFS, uint64(q+11))
				if err != nil {
					continue
				}
				// Enumerate many embeddings so per-query work dwarfs
				// round-trip overhead, as with the paper's full queries.
				total += Timed(func() { mt.MatchBudget(ctx, 0, p, 2000, 2_000_000) })
				ran++
			}
			if ran == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, total/time.Duration(ran))
			}
			cloud.Close()
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig14b reproduces Figure 14(b): the four LUBM-style SPARQL queries as
// machine count sweeps.
func Fig14b(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:   "Figure 14(b): SPARQL query time vs machine count (LUBM-style data)",
		Columns: []string{"machines", "Q1", "Q3", "Q5", "Q7"},
	}
	universities := 3 * s.factor()
	for _, machines := range []int{1, 2, 4, 8} {
		cloud := newCloud(machines)
		store := rdf.NewStore(cloud)
		if _, err := rdf.GenerateLUBM(ctx, store, rdf.LUBMConfig{Universities: universities, Seed: 6}); err != nil {
			return nil, err
		}
		queries := []*rdf.Query{
			rdf.QueryStudentsTakingCourse("http://univ0/dept0/course1"),
			rdf.QueryProfessorsOfUniversity("http://univ0"),
			rdf.QueryMembersWithDegreeFrom("http://univ0/dept0", "http://univ1"),
			rdf.QueryStudentsOfTeacher("http://univ0/dept0/prof0"),
		}
		row := []any{machines}
		for _, q := range queries {
			var err error
			d := Timed(func() { _, err = store.Execute(ctx, q) })
			if err != nil {
				return nil, err
			}
			row = append(row, d)
		}
		t.AddRow(row...)
		cloud.Close()
	}
	return t, nil
}

// ThreeHop reproduces the §5.1 headline claim: exploring the entire 3-hop
// neighborhood of a node in a power-law social graph on 8 machines takes
// ~100 ms at Facebook scale (here, scaled down).
func ThreeHop(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:   "§5.1: full 3-hop neighborhood exploration (8 machines, power-law, deg 13)",
		Columns: []string{"people", "avg time", "avg nodes visited"},
	}
	people := 10000 * s.factor()
	cloud, g, err := loadSocial(ctx, 8, people, 13, 21)
	if err != nil {
		return nil, err
	}
	defer cloud.Close()
	e := traversal.New(g)
	const queries = 10
	var total time.Duration
	visited := 0
	for q := 0; q < queries; q++ {
		start := uint64(q * 997 % people)
		var n int
		total += Timed(func() { n, err = e.KHopNeighborhoodSize(ctx, 0, start, 3) })
		if err != nil {
			return nil, err
		}
		visited += n
	}
	t.AddRow(people, total/queries, visited/queries)
	return t, nil
}

// MsgOptAblation quantifies the §5.4 hub-vertex buffering: wire messages
// and time for one PageRank run with the optimization off and on.
func MsgOptAblation(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:   "§5.4 ablation: hub-vertex buffering (PageRank, R-MAT, 8 machines)",
		Columns: []string{"hub threshold", "wire messages", "time"},
	}
	scale := uint(11 + intLog2(s.factor()))
	for _, hub := range []int{0, 16, 8, 4} {
		cloud, g, err := loadRMAT(ctx, 8, scale, 13, 0, 3)
		if err != nil {
			return nil, err
		}
		var wire int64
		d := Timed(func() {
			res, err2 := algo.PageRankInstrumented(ctx, g, 3, hub)
			if err2 != nil {
				err = err2
				return
			}
			wire = res.WireMessages
		})
		cloud.Close()
		if err != nil {
			return nil, err
		}
		label := fmt.Sprint(hub)
		if hub == 0 {
			label = "off"
		}
		t.AddRow(label, wire, d)
	}
	return t, nil
}

// BulkLoad quantifies the batched write pipeline in its three regimes:
// an owner-partitioned in-place load (graph.Builder.Flush), the same load
// with buffered logging (where WAL group commit collapses one TFS append
// per cell into one per batch), and an ingest through a single access
// point (every cell streamed from slave 0, where multi-put batching
// collapses one sync round trip per cell into one per batch). Each is
// measured against the per-cell synchronous-Put baseline, with sync
// storage calls counted from a private registry: the per-cell path pays
// one call per cell, the pipeline one multi-put batch.
func BulkLoad(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		Title:   "Batched write pipeline: bulk load per-cell vs multi-put (8 machines)",
		Columns: []string{"scenario", "cells", "per-cell", "pipelined", "speedup", "sync calls", "batches", "reduction"},
	}
	people := 30000 * s.factor()
	build := func() *graph.Builder {
		b := graph.NewBuilder(false)
		gen.BuildSocial(gen.SocialConfig{People: people, AvgDegree: 13, Seed: uint64(people)}, b)
		return b
	}

	// Owner-partitioned flush, with and without buffered logging.
	for _, logged := range []bool{false, true} {
		regBase := obs.NewRegistry()
		cloudBase := newCloudOn(8, logged, regBase)
		gBase := graph.New(cloudBase, false)
		bBase := build()
		cells := bBase.NodeCount()
		var err error
		perCell := Timed(func() { err = bBase.FlushPerCell(ctx, gBase) })
		cloudBase.Close()
		if err != nil {
			return nil, err
		}

		regPipe := obs.NewRegistry()
		cloudPipe := newCloudOn(8, logged, regPipe)
		gPipe := graph.New(cloudPipe, false)
		bPipe := build()
		pipelined := Timed(func() { err = bPipe.Flush(ctx, gPipe) })
		cloudPipe.Close()
		if err != nil {
			return nil, err
		}

		name := "owner-partitioned flush"
		if logged {
			name += " + WAL"
		}
		if err := addLoadRow(t, name, cells, perCell, pipelined, regBase, regPipe); err != nil {
			return nil, err
		}
	}

	// Single access point: every cell written from slave 0 (7/8 remote).
	cells := make([][]byte, people)
	for i := range cells {
		v := make([]byte, 120)
		for j := range v {
			v[j] = byte(i) + byte(j)
		}
		cells[i] = v
	}
	regBase := obs.NewRegistry()
	cloudBase := newCloudOn(8, false, regBase)
	s0 := cloudBase.Slave(0)
	var err error
	perCell := Timed(func() {
		for k, v := range cells {
			if err = s0.Put(ctx, uint64(k), v); err != nil {
				return
			}
		}
	})
	cloudBase.Close()
	if err != nil {
		return nil, err
	}

	regPipe := obs.NewRegistry()
	cloudPipe := newCloudOn(8, false, regPipe)
	w := store.New(cloudPipe.Slave(0), store.Options{Metrics: regPipe})
	pipelined := Timed(func() {
		for k, v := range cells {
			w.PutAsync(uint64(k), v)
		}
		err = w.Drain(ctx)
	})
	w.Close()
	cloudPipe.Close()
	if err != nil {
		return nil, err
	}
	if err := addLoadRow(t, "single access point", people, perCell, pipelined, regBase, regPipe); err != nil {
		return nil, err
	}
	return t, nil
}

// addLoadRow derives the sync-call ablation for one bulk-load scenario:
// the baseline's per-cell storage calls vs the pipeline's batch count.
func addLoadRow(t *Table, name string, cells int, perCell, pipelined time.Duration, regBase, regPipe *obs.Registry) error {
	syncCalls := sumCounters(regBase, ".local_ops") + sumCounters(regBase, ".remote_ops")
	batches := sumCounters(regPipe, ".multiput_batches")
	if batches == 0 {
		return fmt.Errorf("bench: %s recorded no multi-put batches", name)
	}
	t.AddRow(name, cells, perCell, pipelined,
		fmt.Sprintf("%.1fx", float64(perCell)/float64(pipelined)),
		syncCalls, batches,
		fmt.Sprintf("%.0fx", float64(syncCalls)/float64(batches)))
	return nil
}

// newCloudOn is newCloud with a caller-chosen registry (for experiments
// that count their own traffic instead of sharing the process registry)
// and optional buffered logging.
func newCloudOn(machines int, logged bool, reg *obs.Registry) *memcloud.Cloud {
	return memcloud.New(memcloud.Config{
		Machines:        machines,
		TrunkCapacity:   4 << 20,
		TrunkPageSize:   8 << 10,
		BufferedLogging: logged,
		Msg: msg.Options{
			FlushInterval: time.Millisecond,
			CallTimeout:   5 * time.Minute,
		},
		Metrics: reg,
	})
}

// sumCounters totals every counter in reg whose name ends in suffix.
func sumCounters(reg *obs.Registry, suffix string) int64 {
	var total int64
	for _, v := range reg.Snapshot() {
		if v.Kind == "counter" && strings.HasSuffix(v.Name, suffix) {
			total += v.Int
		}
	}
	return total
}

// --- helpers ---

// rmatScales returns the node-count exponents for a sweep: four sizes
// doubling from base, shifted up by the scale factor.
func rmatScales(s Scale, base uint) []uint {
	shift := uint(intLog2(s.factor()))
	return []uint{base + shift, base + 1 + shift, base + 2 + shift, base + 3 + shift}
}

func intLog2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

func colsFor(machines []int) []string {
	out := make([]string, len(machines))
	for i, m := range machines {
		out[i] = fmt.Sprintf("%d machines", m)
	}
	return out
}

// rmatAdjacency materializes an R-MAT graph as a plain adjacency map for
// the baseline engines (which do not run on the memory cloud).
func rmatAdjacency(scale uint, degree int, seed uint64) map[uint64][]uint64 {
	adj := make(map[uint64][]uint64, 1<<scale)
	gen.RMAT(gen.RMATConfig{Scale: scale, AvgDegree: degree, Seed: seed}, func(u, v uint64) {
		adj[u] = append(adj[u], v)
	})
	for i := uint64(0); i < 1<<scale; i++ {
		if _, ok := adj[i]; !ok {
			adj[i] = nil
		}
	}
	return adj
}
