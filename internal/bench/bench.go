// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§7). Each Fig* function
// runs one experiment at a configurable scale and returns a Table whose
// rows mirror the figure's series; cmd/trinity-bench prints them and the
// root bench_test.go wires them into `go test -bench`.
//
// Absolute numbers will differ from the paper's (the cluster is simulated
// in one process); the quantities that must reproduce are the SHAPES:
// which system wins, how curves scale with nodes/degree/machines, and
// where the orderings fall. EXPERIMENTS.md records both sides.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Table is one experiment's result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case time.Duration:
			row[i] = fmtDuration(x)
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// HeapInUse reports live heap bytes after a forced collection. Figure 13
// uses the deterministic accounting in baseline/pbgl instead (GC noise
// made this measure unstable for small graphs), but the helper remains
// for ad-hoc profiling of experiment memory.
func HeapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// Timed runs fn and returns its wall-clock duration.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Scale controls experiment sizes: 1 is the quick CI scale (seconds per
// figure); larger values multiply node counts toward the paper's shapes.
type Scale struct {
	// Factor multiplies base node counts. 1 = quick.
	Factor int
}

func (s Scale) factor() int {
	if s.Factor < 1 {
		return 1
	}
	return s.Factor
}
