// Package traversal implements Trinity's online traversal-based query
// processing (paper §5.1): low-latency graph exploration over the memory
// cloud, the paradigm behind the "find any David within 3 hops" people
// search.
//
// A query fans out level by level: the coordinator machine groups the
// frontier by owner machine and issues one parallel expansion request per
// machine; each machine explores its local vertices through its partition
// view (internal/graph/view) — predicate tests are array reads and edge
// expansion walks the CSR arena — and returns matches plus the next
// frontier fragment. No index is used — the performance comes from fast
// random access and parallelism, exactly the paper's argument.
package traversal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"trinity/internal/graph"
	"trinity/internal/graph/view"
	"trinity/internal/memcloud"
	"trinity/internal/memcloud/fetch"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// protoExpand is the one-sided frontier-expansion protocol.
const protoExpand msg.ProtocolID = 0x0401

// Predicate filters visited nodes. The zero value matches nothing and is
// used for pure reachability exploration.
type Predicate struct {
	// Mode selects the match rule.
	Mode PredicateMode
	// Label matches nodes whose Label equals this value (MatchLabel).
	// People search interns the first name into the label, so "find
	// Davids" is a label comparison, not a string scan.
	Label int64
	// Prefix matches nodes whose Name starts with this (MatchNamePrefix).
	Prefix string
}

// PredicateMode enumerates predicate kinds.
type PredicateMode uint8

// Predicate modes.
const (
	MatchNone PredicateMode = iota
	MatchLabel
	MatchNamePrefix
)

// Result is the outcome of an exploration query.
type Result struct {
	// Matches are the nodes satisfying the predicate, in discovery order
	// (level by level). The start node is tested too.
	Matches []uint64
	// Visited is the total number of distinct nodes reached (including
	// the start).
	Visited int
	// Levels records the frontier size at each hop.
	Levels []int
}

// Engine serves traversal queries over a graph. Construct one per
// process; it registers its protocol on every machine.
type Engine struct {
	g *graph.Graph

	// Registry-backed metrics (scope "traversal" on the cloud's registry).
	queries    *obs.Counter
	expansions *obs.Counter
	visited    *obs.Counter
	exploreNs  *obs.Histogram
}

// New builds a traversal engine and installs handlers on all machines.
func New(g *graph.Graph) *Engine {
	scope := g.On(0).Slave().Metrics().Scope("traversal")
	e := &Engine{
		g:          g,
		queries:    scope.Counter("queries"),
		expansions: scope.Counter("expansions"),
		visited:    scope.Counter("visited"),
		exploreNs:  scope.Histogram("explore_ns"),
	}
	for i := 0; i < g.Machines(); i++ {
		m := g.On(i)
		mm := m
		m.Slave().Node().HandleSync(protoExpand, func(ctx context.Context, from msg.MachineID, req []byte) ([]byte, error) {
			return e.expandLocal(ctx, mm, req)
		})
	}
	return e
}

// Explore runs a breadth-first exploration from start up to `hops` hops
// away, collecting nodes that satisfy pred. The query is served by
// machine `via` (any machine can coordinate, like a Trinity client
// talking to any slave).
func (e *Engine) Explore(ctx context.Context, via int, start uint64, hops int, pred Predicate) (*Result, error) {
	e.queries.Inc()
	qStart := time.Now()
	defer func() { e.exploreNs.Observe(int64(time.Since(qStart))) }()
	coord := e.g.On(via)
	if !coord.HasNode(ctx, start) {
		// A cancelled lookup is not a missing node.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("traversal: start node %d does not exist", start)
	}
	res := &Result{Visited: 1}
	visited := map[uint64]bool{start: true}

	frontier := []uint64{start}
	for hop := 0; hop <= hops && len(frontier) > 0; hop++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The final frontier is tested against the predicate but not
		// expanded further.
		expandMore := hop < hops
		if !expandMore && pred.Mode == MatchNone {
			// Nothing to test and nothing to expand: scattering the last
			// (and largest) frontier to every machine would be a full
			// round of round trips for an empty reply.
			break
		}
		// Group the frontier by owner machine.
		perOwner := make(map[msg.MachineID][]uint64)
		for _, id := range frontier {
			owner := coord.Slave().Owner(id)
			perOwner[owner] = append(perOwner[owner], id)
		}
		// One parallel request per machine: each machine tests the
		// predicate on its own vertices (zero-copy) and, unless this is
		// the last hop, returns their out-neighbors.
		type reply struct {
			matches   []uint64
			neighbors []uint64
			err       error
		}
		replies := make(chan reply, len(perOwner))
		for owner, ids := range perOwner {
			go func(owner msg.MachineID, ids []uint64) {
				m, n, err := e.expand(ctx, coord, owner, ids, pred, expandMore)
				replies <- reply{m, n, err}
			}(owner, ids)
		}
		var next []uint64
		for range perOwner {
			r := <-replies
			if r.err != nil {
				return nil, r.err
			}
			for _, id := range r.neighbors {
				if !visited[id] {
					visited[id] = true
					next = append(next, id)
				}
			}
			res.Matches = append(res.Matches, r.matches...)
		}
		if expandMore {
			res.Levels = append(res.Levels, len(next))
			res.Visited += len(next)
		}
		frontier = next
	}
	res.Matches = dedup(res.Matches)
	e.visited.Add(int64(res.Visited))
	return res, nil
}

// ExploreCells runs the same breadth-first exploration as Explore, but
// client-side over raw node cells through the coordinator's fetch
// pipeline instead of server-side through partition views. It is the
// paper's §4 latency-hiding pattern made concrete: the next hop's cell
// fetches are issued asynchronously while the current hop is still being
// processed, so remote reads batch into multi-get frames and overlap with
// the predicate work. Futures are consumed in strict FIFO issue order,
// which preserves level-synchronous BFS semantics — a node discovered at
// level L is always processed before anything discovered at L+1.
//
// Use Explore when partition views are warm (server-side CSR expansion
// ships only ids); use ExploreCells when the traversal must read the
// cells themselves anyway, where it replaces one blocking round trip per
// remote cell with a pipelined batch stream.
func (e *Engine) ExploreCells(ctx context.Context, via int, start uint64, hops int, pred Predicate) (*Result, error) {
	e.queries.Inc()
	qStart := time.Now()
	defer func() { e.exploreNs.Observe(int64(time.Since(qStart))) }()
	coord := e.g.On(via)
	f := coord.Fetcher()

	type item struct {
		id  uint64
		hop int
		fut *fetch.Future
	}
	visited := map[uint64]bool{start: true}
	queue := []item{{id: start, hop: 0, fut: f.GetAsync(start)}}
	res := &Result{Visited: 1}
	levelCounts := make([]int, hops)

	for head := 0; head < len(queue); head++ {
		it := queue[head]
		if err := ctx.Err(); err != nil {
			// Abandon the remaining futures: the pipeline resolves them
			// within one CallTimeout and nothing wedges (Wait unhooks only
			// this caller, the pending-map entries drain with their batch).
			return nil, err
		}
		select {
		case <-it.fut.Done():
		default:
			// About to block on the pipeline: push everything queued onto
			// the wire rather than waiting out the age watermark.
			f.Flush()
		}
		blob, err := it.fut.Wait(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			if it.id == start {
				return nil, fmt.Errorf("traversal: start node %d does not exist", start)
			}
			if errors.Is(err, memcloud.ErrNotFound) {
				continue // dangling edge target, same tolerance as Explore
			}
			return nil, err
		}
		n, err := graph.DecodeNode(it.id, blob)
		if err != nil {
			return nil, err
		}
		switch pred.Mode {
		case MatchLabel:
			if n.Label == pred.Label {
				res.Matches = append(res.Matches, it.id)
			}
		case MatchNamePrefix:
			if strings.HasPrefix(n.Name, pred.Prefix) {
				res.Matches = append(res.Matches, it.id)
			}
		}
		if it.hop >= hops {
			continue
		}
		e.expansions.Inc()
		for _, dst := range n.Outlinks {
			if visited[dst] {
				continue
			}
			visited[dst] = true
			levelCounts[it.hop]++
			res.Visited++
			// Issue the fetch at discovery: it rides a batch while this
			// level's remaining cells are processed.
			queue = append(queue, item{id: dst, hop: it.hop + 1, fut: f.GetAsync(dst)})
		}
	}
	// Mirror Explore's Levels bookkeeping: one entry per hop whose
	// frontier was non-empty and expanded (the last such entry may be 0).
	for h := 0; h < hops; h++ {
		if h > 0 && levelCounts[h-1] == 0 {
			break
		}
		res.Levels = append(res.Levels, levelCounts[h])
	}
	e.visited.Add(int64(res.Visited))
	return res, nil
}

// KHopNeighborhoodSize returns the number of distinct nodes within `hops`
// hops of start — the §5.1 benchmark operation.
func (e *Engine) KHopNeighborhoodSize(ctx context.Context, via int, start uint64, hops int) (int, error) {
	res, err := e.Explore(ctx, via, start, hops, Predicate{})
	if err != nil {
		return 0, err
	}
	return res.Visited, nil
}

// PeopleSearch finds nodes labeled with the interned first name within
// `hops` hops of start — the paper's Facebook/Bing "David problem".
func (e *Engine) PeopleSearch(ctx context.Context, via int, start uint64, firstNameLabel int64, hops int) ([]uint64, error) {
	res, err := e.Explore(ctx, via, start, hops, Predicate{Mode: MatchLabel, Label: firstNameLabel})
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// expand sends one frontier fragment to its owner (or runs locally).
func (e *Engine) expand(ctx context.Context, coord *graph.Machine, owner msg.MachineID, ids []uint64, pred Predicate, expandMore bool) (matches, neighbors []uint64, err error) {
	e.expansions.Inc()
	req := encodeExpand(ids, pred, expandMore)
	var resp []byte
	if owner == coord.Slave().ID() {
		resp, err = e.expandLocal(ctx, coord, req)
	} else {
		resp, err = coord.Slave().Node().Call(ctx, owner, protoExpand, req)
	}
	if err != nil {
		return nil, nil, err
	}
	return decodeExpandResp(resp)
}

// expandLocal serves a frontier fragment on the owner machine through its
// partition view: the predicate test is a dense array read (labels) or a
// zero-copy name read, and edge expansion walks the CSR arena. Frontier
// ids absent from the view — dangling edge targets that were never
// created — are tolerated and skipped, matching the old per-cell path's
// ErrNoNode tolerance; a corrupt cell instead fails view acquisition.
func (e *Engine) expandLocal(ctx context.Context, m *graph.Machine, req []byte) ([]byte, error) {
	ids, pred, expandMore, err := decodeExpand(req)
	if err != nil {
		return nil, err
	}
	pv, err := view.Acquire(m)
	if err != nil {
		return nil, err
	}
	var matches []uint64
	if pred.Mode != MatchNone {
		for _, id := range ids {
			switch pred.Mode {
			case MatchLabel:
				// People search interns the name into the label, so the
				// whole predicate is one array read.
				if idx, ok := pv.IndexOf(id); ok && pv.Label(idx) == pred.Label {
					matches = append(matches, id)
				}
			case MatchNamePrefix:
				if name, err := m.Name(ctx, id); err == nil && strings.HasPrefix(name, pred.Prefix) {
					matches = append(matches, id)
				}
			}
		}
	}
	var neighbors []uint64
	if expandMore {
		seen := make(map[uint64]bool, len(ids)*8)
		for _, id := range ids {
			idx, ok := pv.IndexOf(id)
			if !ok {
				continue // dangling edge target
			}
			for _, dst := range pv.Out(idx) {
				if !seen[dst] {
					seen[dst] = true
					neighbors = append(neighbors, dst)
				}
			}
		}
	}
	return encodeExpandResp(matches, neighbors), nil
}

func dedup(ids []uint64) []uint64 {
	if len(ids) < 2 {
		return ids
	}
	seen := make(map[uint64]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// --- wire encoding ---

func encodeExpand(ids []uint64, pred Predicate, expandMore bool) []byte {
	out := make([]byte, 0, 14+len(pred.Prefix)+4+8*len(ids))
	if expandMore {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, byte(pred.Mode))
	out = binary.LittleEndian.AppendUint64(out, uint64(pred.Label))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(pred.Prefix)))
	out = append(out, pred.Prefix...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ids)))
	for _, id := range ids {
		out = binary.LittleEndian.AppendUint64(out, id)
	}
	return out
}

func decodeExpand(b []byte) ([]uint64, Predicate, bool, error) {
	var pred Predicate
	if len(b) < 14 {
		return nil, pred, false, errors.New("traversal: short expand request")
	}
	expandMore := b[0] == 1
	pred.Mode = PredicateMode(b[1])
	pred.Label = int64(binary.LittleEndian.Uint64(b[2:]))
	plen := int(binary.LittleEndian.Uint32(b[10:]))
	if 14+plen > len(b) {
		return nil, pred, false, errors.New("traversal: bad prefix length")
	}
	pred.Prefix = string(b[14 : 14+plen])
	off := 14 + plen
	if off+4 > len(b) {
		return nil, pred, false, errors.New("traversal: short expand request")
	}
	count := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+8*count > len(b) {
		return nil, pred, false, errors.New("traversal: truncated id list")
	}
	ids := make([]uint64, count)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(b[off+8*i:])
	}
	return ids, pred, expandMore, nil
}

func encodeExpandResp(matches, neighbors []uint64) []byte {
	out := make([]byte, 0, 8+8*(len(matches)+len(neighbors)))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(matches)))
	for _, id := range matches {
		out = binary.LittleEndian.AppendUint64(out, id)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(neighbors)))
	for _, id := range neighbors {
		out = binary.LittleEndian.AppendUint64(out, id)
	}
	return out
}

func decodeExpandResp(b []byte) (matches, neighbors []uint64, err error) {
	if len(b) < 8 {
		return nil, nil, errors.New("traversal: short expand response")
	}
	mc := int(binary.LittleEndian.Uint32(b))
	off := 4
	if off+8*mc+4 > len(b) {
		return nil, nil, errors.New("traversal: truncated matches")
	}
	matches = make([]uint64, mc)
	for i := range matches {
		matches[i] = binary.LittleEndian.Uint64(b[off+8*i:])
	}
	off += 8 * mc
	nc := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+8*nc > len(b) {
		return nil, nil, errors.New("traversal: truncated neighbors")
	}
	neighbors = make([]uint64, nc)
	for i := range neighbors {
		neighbors[i] = binary.LittleEndian.Uint64(b[off+8*i:])
	}
	return matches, neighbors, nil
}
