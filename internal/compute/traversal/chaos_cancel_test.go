package traversal

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

// TestChaosCancelMidExploreCells cancels a 3-hop pipelined traversal
// while every frame is being held back for multiple milliseconds, so the
// cancel is guaranteed to land mid-flight. The abandoned futures must
// not wedge the fetch pipeline: once the faults are lifted, a fresh
// traversal on the same engine completes normally.
func TestChaosCancelMidExploreCells(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, ch := memcloud.NewChaosCloud(memcloud.Config{
				Machines: 4,
				Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 10 * time.Second},
			}, seed)
			t.Cleanup(c.Close)
			b := graph.NewBuilder(false)
			gen.BuildSocial(gen.SocialConfig{People: 2000, AvgDegree: 10, Seed: 3}, b)
			g, err := b.Load(context.Background(), c)
			if err != nil {
				t.Fatal(err)
			}
			// Every frame held back up to 10ms: a 3-hop traversal needs
			// several round trips, so it cannot beat the 5ms fuse below.
			ch.SetDefault(msg.Policy{Delay: 1.0, MaxDelay: 10 * time.Millisecond})

			e := New(g)
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err = e.ExploreCells(ctx, 0, 0, 3, Predicate{})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("ExploreCells = %v, want context.Canceled", err)
			}
			if d := time.Since(start); d > 10*time.Second {
				t.Fatalf("cancel took %v, want under one CallTimeout", d)
			}

			// The in-flight batches abandoned above resolve within one
			// CallTimeout; the pipeline must stay usable. Lift the faults
			// and prove it with a clean run on the same engine.
			ch.SetDefault(msg.Policy{})
			res, err := e.ExploreCells(context.Background(), 0, 0, 3, Predicate{})
			if err != nil {
				t.Fatalf("fresh traversal after cancel: %v", err)
			}
			if res.Visited == 0 {
				t.Fatal("fresh traversal visited nothing")
			}

			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > base+2 {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d now, %d before",
						runtime.NumGoroutine(), base)
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}
