package traversal

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/hash"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

func newCloud(t testing.TB, machines int) *memcloud.Cloud {
	c := memcloud.New(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 10 * time.Second},
	})
	t.Cleanup(c.Close)
	return c
}

// chain 0->1->2->...->n-1 with labels = id%3.
func chainGraph(t testing.TB, cloud *memcloud.Cloud, n int) *graph.Graph {
	b := graph.NewBuilder(true)
	for i := 0; i < n; i++ {
		b.AddNode(uint64(i), int64(i%3), "")
	}
	for i := 0; i < n-1; i++ {
		b.AddEdge(uint64(i), uint64(i+1))
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKHopOnChain(t *testing.T) {
	cloud := newCloud(t, 3)
	g := chainGraph(t, cloud, 20)
	e := New(g)
	for hops := 0; hops <= 5; hops++ {
		got, err := e.KHopNeighborhoodSize(context.Background(), 0, 0, hops)
		if err != nil {
			t.Fatal(err)
		}
		if got != hops+1 {
			t.Fatalf("KHop(%d) on chain = %d, want %d", hops, got, hops+1)
		}
	}
	// From the tail nothing is reachable.
	got, err := e.KHopNeighborhoodSize(context.Background(), 1, 19, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("KHop from sink = %d", got)
	}
}

func TestExploreMissingStart(t *testing.T) {
	cloud := newCloud(t, 2)
	g := chainGraph(t, cloud, 5)
	e := New(g)
	if _, err := e.Explore(context.Background(), 0, 999, 2, Predicate{}); err == nil {
		t.Fatal("missing start accepted")
	}
}

func TestExploreMatchesAgainstReferenceBFS(t *testing.T) {
	// Distributed exploration must agree with a sequential BFS on a
	// random graph, for every hop count.
	cloud := newCloud(t, 4)
	b := graph.NewBuilder(true)
	gen.BuildUniform(gen.UniformConfig{Nodes: 400, AvgDegree: 5, Seed: 9}, 4, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference.
	adj := make([][]uint64, 400)
	for i := range adj {
		adj[i], _ = g.On(0).Outlinks(context.Background(), uint64(i))
	}
	refKHop := func(start uint64, hops int) map[uint64]int {
		dist := map[uint64]int{start: 0}
		frontier := []uint64{start}
		for d := 1; d <= hops && len(frontier) > 0; d++ {
			var next []uint64
			for _, u := range frontier {
				for _, v := range adj[u] {
					if _, ok := dist[v]; !ok {
						dist[v] = d
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		return dist
	}
	e := New(g)
	for _, start := range []uint64{0, 17, 399} {
		for hops := 0; hops <= 4; hops++ {
			ref := refKHop(start, hops)
			got, err := e.KHopNeighborhoodSize(context.Background(), int(start)%4, start, hops)
			if err != nil {
				t.Fatal(err)
			}
			if got != len(ref) {
				t.Fatalf("KHop(%d, %d) = %d, reference %d", start, hops, got, len(ref))
			}
		}
	}
}

func TestPredicateLabel(t *testing.T) {
	cloud := newCloud(t, 3)
	g := chainGraph(t, cloud, 10) // labels are id%3
	e := New(g)
	res, err := e.Explore(context.Background(), 0, 0, 6, Predicate{Mode: MatchLabel, Label: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 1 and 4 have label 1 within 6 hops {0..6}: ids 1, 4 and... 7?
	// labels: id%3==1 -> 1,4,7(hop 7? no: node 7 is 7 hops away? hop = id).
	// Reachable in <=6 hops: ids 0..6; labels 1: ids 1 and 4.
	want := map[uint64]bool{1: true, 4: true}
	if len(res.Matches) != len(want) {
		t.Fatalf("matches = %v", res.Matches)
	}
	for _, id := range res.Matches {
		if !want[id] {
			t.Fatalf("unexpected match %d", id)
		}
	}
}

func TestPredicateIncludesStartAndLastHop(t *testing.T) {
	cloud := newCloud(t, 2)
	g := chainGraph(t, cloud, 5)
	e := New(g)
	// Start node 0 has label 0; all label-0 nodes within 3 hops: 0, 3.
	res, err := e.Explore(context.Background(), 0, 0, 3, Predicate{Mode: MatchLabel, Label: 0})
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, id := range res.Matches {
		found[id] = true
	}
	if !found[0] {
		t.Fatal("start node not tested against predicate")
	}
	if !found[3] {
		t.Fatal("final-hop node not tested against predicate")
	}
	if len(found) != 2 {
		t.Fatalf("matches = %v", res.Matches)
	}
}

func TestPredicateNamePrefix(t *testing.T) {
	cloud := newCloud(t, 2)
	b := graph.NewBuilder(false)
	b.AddNode(1, 0, "David Smith")
	b.AddNode(2, 0, "Daniel Jones")
	b.AddNode(3, 0, "David Lee")
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g)
	res, err := e.Explore(context.Background(), 0, 1, 2, Predicate{Mode: MatchNamePrefix, Prefix: "David"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v, want nodes 1 and 3", res.Matches)
	}
}

func TestPeopleSearchFindsDavids(t *testing.T) {
	cloud := newCloud(t, 4)
	b := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: 3000, AvgDegree: 20, Seed: 2}, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g)
	davidLabel := int64(hash.String("David"))
	// Pick a start with decent degree so the 3-hop ball is non-trivial.
	start := uint64(0)
	matches, err := e.PeopleSearch(context.Background(), 0, start, davidLabel, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Verify every match really is a David and within 3 hops.
	res, _ := e.Explore(context.Background(), 0, start, 3, Predicate{})
	if res.Visited < 100 {
		t.Skipf("3-hop ball too small (%d) for a meaningful check", res.Visited)
	}
	for _, id := range matches {
		name, err := g.On(0).Name(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(name, "David") {
			t.Fatalf("match %d is %q, not a David", id, name)
		}
	}
	if len(matches) == 0 {
		t.Fatalf("no Davids within 3 hops of a %d-node ball", res.Visited)
	}
}

func TestLevelsReported(t *testing.T) {
	cloud := newCloud(t, 2)
	// Star: 0 -> 1..10, 1 -> 11.
	b := graph.NewBuilder(true)
	for i := uint64(0); i <= 11; i++ {
		b.AddNode(i, 0, "")
	}
	for i := uint64(1); i <= 10; i++ {
		b.AddEdge(0, i)
	}
	b.AddEdge(1, 11)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g)
	res, err := e.Explore(context.Background(), 0, 0, 2, Predicate{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 || res.Levels[0] != 10 || res.Levels[1] != 1 {
		t.Fatalf("levels = %v, want [10 1]", res.Levels)
	}
	if res.Visited != 12 {
		t.Fatalf("visited = %d", res.Visited)
	}
}

func TestExploreFromEveryMachine(t *testing.T) {
	cloud := newCloud(t, 4)
	g := chainGraph(t, cloud, 30)
	e := New(g)
	for via := 0; via < 4; via++ {
		got, err := e.KHopNeighborhoodSize(context.Background(), via, 0, 10)
		if err != nil {
			t.Fatalf("via %d: %v", via, err)
		}
		if got != 11 {
			t.Fatalf("via %d: visited = %d", via, got)
		}
	}
}

func TestCyclesDoNotLoop(t *testing.T) {
	cloud := newCloud(t, 2)
	// Triangle with a cycle.
	b := graph.NewBuilder(true)
	for i := uint64(0); i < 3; i++ {
		b.AddNode(i, 0, "")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g)
	got, err := e.KHopNeighborhoodSize(context.Background(), 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("visited = %d on a triangle", got)
	}
}

// naiveKHopCells is the pre-pipeline client-side traversal: one blocking
// per-key Get round trip per remote cell. It exists as the baseline the
// fetch pipeline is measured against.
func naiveKHopCells(g *graph.Graph, via int, start uint64, hops int) (int, error) {
	m := g.On(via)
	type item struct {
		id  uint64
		hop int
	}
	visited := map[uint64]bool{start: true}
	queue := []item{{start, 0}}
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		blob, err := m.Slave().Get(context.Background(), it.id)
		if err != nil {
			if errors.Is(err, memcloud.ErrNotFound) {
				continue
			}
			return 0, err
		}
		n, err := graph.DecodeNode(it.id, blob)
		if err != nil {
			return 0, err
		}
		if it.hop >= hops {
			continue
		}
		for _, dst := range n.Outlinks {
			if !visited[dst] {
				visited[dst] = true
				queue = append(queue, item{dst, it.hop + 1})
			}
		}
	}
	return len(visited), nil
}

func TestExploreCellsMatchesExplore(t *testing.T) {
	cloud := newCloud(t, 4)
	b := graph.NewBuilder(true)
	gen.BuildUniform(gen.UniformConfig{Nodes: 400, AvgDegree: 5, Seed: 9}, 4, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g)
	preds := []Predicate{
		{},
		{Mode: MatchLabel, Label: 1},
	}
	for _, start := range []uint64{0, 17, 399} {
		for hops := 0; hops <= 4; hops++ {
			for _, pred := range preds {
				want, err := e.Explore(context.Background(), int(start)%4, start, hops, pred)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.ExploreCells(context.Background(), int(start)%4, start, hops, pred)
				if err != nil {
					t.Fatal(err)
				}
				if got.Visited != want.Visited {
					t.Fatalf("start=%d hops=%d: cells visited %d, explore %d",
						start, hops, got.Visited, want.Visited)
				}
				gm := append([]uint64(nil), got.Matches...)
				wm := append([]uint64(nil), want.Matches...)
				sort.Slice(gm, func(i, j int) bool { return gm[i] < gm[j] })
				sort.Slice(wm, func(i, j int) bool { return wm[i] < wm[j] })
				if !reflect.DeepEqual(gm, wm) {
					t.Fatalf("start=%d hops=%d: cells matches %v, explore %v",
						start, hops, gm, wm)
				}
				if !reflect.DeepEqual(got.Levels, want.Levels) {
					t.Fatalf("start=%d hops=%d: cells levels %v, explore %v",
						start, hops, got.Levels, want.Levels)
				}
			}
		}
	}
}

func TestExploreCellsMissingStart(t *testing.T) {
	cloud := newCloud(t, 2)
	g := chainGraph(t, cloud, 5)
	e := New(g)
	if _, err := e.ExploreCells(context.Background(), 0, 999, 2, Predicate{}); err == nil {
		t.Fatal("missing start accepted")
	}
}

// TestExploreCellsFewerRoundTrips is the acceptance check for the fetch
// pipeline: the same multi-hop traversal must cost measurably fewer
// transport round trips through the pipeline than through blocking
// per-key Gets. Round trips are counted from the coordinator node's
// sync_calls counter, and the pipeline's own round_trips_saved counter
// must corroborate.
func TestExploreCellsFewerRoundTrips(t *testing.T) {
	cloud := newCloud(t, 4)
	b := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: 2000, AvgDegree: 10, Seed: 3}, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g)
	reg := cloud.Metrics()
	syncCalls := reg.Scope("msg.m0").Counter("sync_calls")

	const start, hops = 0, 3
	wantVisited, err := naiveKHopCells(g, 0, start, hops)
	if err != nil {
		t.Fatal(err)
	}
	before := syncCalls.Load()
	if _, err := naiveKHopCells(g, 0, start, hops); err != nil {
		t.Fatal(err)
	}
	perKey := syncCalls.Load() - before

	saved := reg.Scope("fetch.m0").Counter("round_trips_saved")
	savedBefore := saved.Load()
	before = syncCalls.Load()
	res, err := e.ExploreCells(context.Background(), 0, start, hops, Predicate{})
	if err != nil {
		t.Fatal(err)
	}
	pipelined := syncCalls.Load() - before

	if res.Visited != wantVisited {
		t.Fatalf("pipelined traversal visited %d, per-key %d", res.Visited, wantVisited)
	}
	if res.Visited < 200 {
		t.Fatalf("3-hop ball too small (%d) to measure batching", res.Visited)
	}
	t.Logf("round trips: per-key=%d pipelined=%d (visited %d)", perKey, pipelined, res.Visited)
	if pipelined*2 >= perKey {
		t.Fatalf("pipeline used %d round trips vs %d per-key: batching saved too little", pipelined, perKey)
	}
	if got := saved.Load() - savedBefore; got == 0 {
		t.Fatal("round_trips_saved did not advance during a pipelined traversal")
	}
}

func BenchmarkThreeHopExploration(b *testing.B) {
	// The §5.1 headline: explore the full 3-hop neighborhood of a node in
	// a power-law social graph spread over 8 simulated machines.
	cloud := newCloud(b, 8)
	bl := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: 20000, AvgDegree: 13, Seed: 1}, bl)
	g, err := bl.Load(context.Background(), cloud)
	if err != nil {
		b.Fatal(err)
	}
	e := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.KHopNeighborhoodSize(context.Background(), 0, uint64(i%20000), 3); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCellsGraph builds the client-side-traversal benchmark fixture: the
// same social graph as BenchmarkThreeHopExploration but smaller, since
// cell-mode traversals ship whole cells rather than ids.
func benchCellsGraph(b *testing.B) *graph.Graph {
	cloud := newCloud(b, 8)
	bl := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: 5000, AvgDegree: 13, Seed: 1}, bl)
	g, err := bl.Load(context.Background(), cloud)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkThreeHopCellsPerKeyGet is the pre-pipeline baseline: one
// blocking round trip per remote cell.
func BenchmarkThreeHopCellsPerKeyGet(b *testing.B) {
	g := benchCellsGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := naiveKHopCells(g, 0, uint64(i%5000), 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThreeHopCellsPipelined is the same traversal through the
// async batched fetch pipeline.
func BenchmarkThreeHopCellsPipelined(b *testing.B) {
	g := benchCellsGraph(b)
	e := New(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExploreCells(context.Background(), 0, uint64(i%5000), 3, Predicate{}); err != nil {
			b.Fatal(err)
		}
	}
}
