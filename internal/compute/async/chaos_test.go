package async

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

// newChaosCloud boots a cloud behind a seeded chaos hub armed with
// contract-preserving faults only: delivery jitter (which exercises the
// message layer's per-sender ordering machinery) and poisoned receive
// buffers (which catch any handler retaining a transport-owned frame).
// A correct stack computes identical results to the clean one.
func newChaosCloud(t testing.TB, machines int, seed int64) *memcloud.Cloud {
	c, ch := memcloud.NewChaosCloud(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 5 * time.Second},
	}, seed)
	ch.SetDefault(msg.Policy{Jitter: 200 * time.Microsecond})
	ch.PoisonFrames(true)
	t.Cleanup(c.Close)
	return c
}

// TestChaosAsyncBFSMatchesReference runs the vertex-batched BFS with every
// frame jittered and every delivered buffer scribbled after its callback.
// Task payloads and Safra termination tokens both ride the async path, so
// a retained frame corrupts a vertex batch and an ordering slip can end
// the traversal early; either moves the visited count off the sequential
// reference.
func TestChaosAsyncBFSMatchesReference(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cloud := newChaosCloud(t, 4, seed)
			bl := graph.NewBuilder(true)
			gen.BuildUniform(gen.UniformConfig{Nodes: 500, AvgDegree: 4, Seed: 3}, 0, bl)
			g, err := bl.Load(context.Background(), cloud)
			if err != nil {
				t.Fatal(err)
			}
			// Sequential reference reachability from node 0.
			adj := make([][]uint64, 500)
			for i := range adj {
				adj[i], _ = g.On(0).Outlinks(context.Background(), uint64(i))
			}
			ref := map[uint64]bool{0: true}
			stack := []uint64{0}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, v := range adj[u] {
					if !ref[v] {
						ref[v] = true
						stack = append(stack, v)
					}
				}
			}
			bfs, err := NewBFS(g)
			if err != nil {
				t.Fatal(err)
			}
			e := New(cloud, bfs.Handler())
			defer e.Stop()
			var seedTask [8]byte
			binary.LittleEndian.PutUint64(seedTask[:], 0)
			owner := g.On(0).Slave().Owner(0)
			e.Post(owner, seedTask[:])
			e.Wait(context.Background())
			if got := bfs.Visited(); got != len(ref) {
				t.Fatalf("async BFS under chaos visited %d, reference %d", got, len(ref))
			}
		})
	}
}
