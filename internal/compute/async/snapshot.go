package async

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshot implements the §6.2 interruption mechanism for asynchronous
// fault tolerance: pause every machine after the task in hand, let
// Safra's algorithm confirm the system has ceased (paused machines count
// as passive and in-flight tasks drain into queues), then write each
// machine's user state and undelivered task queue to TFS, and resume.
func (e *Engine) Snapshot(ctx context.Context, name string, state func(machine int) []byte) error {
	// Interruption signal: "all vertices will pause after finishing the
	// job in hand".
	for _, m := range e.machines {
		m.mu.Lock()
		m.paused = true
		m.cond.Broadcast()
		m.mu.Unlock()
	}
	// Safra confirms the system ceased: executors idle, network drained.
	// On cancellation resume the machines so the engine is not left paused.
	if err := e.Wait(ctx); err != nil {
		for _, m := range e.machines {
			m.mu.Lock()
			m.paused = false
			m.cond.Broadcast()
			m.mu.Unlock()
		}
		return err
	}
	// Write the snapshot: pending tasks plus user state per machine.
	for i, m := range e.machines {
		m.mu.Lock()
		buf := binary.LittleEndian.AppendUint32(nil, uint32(len(m.queue)))
		for _, task := range m.queue {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(task)))
			buf = append(buf, task...)
		}
		m.mu.Unlock()
		var userState []byte
		if state != nil {
			userState = state(i)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(userState)))
		buf = append(buf, userState...)
		if err := e.fs.WriteFile(fmt.Sprintf("%s/machine-%d", name, i), buf); err != nil {
			return err
		}
	}
	// Resume.
	for _, m := range e.machines {
		m.mu.Lock()
		m.paused = false
		m.cond.Broadcast()
		m.mu.Unlock()
	}
	return nil
}

// errCorrupt reports a malformed snapshot file.
var errCorrupt = errors.New("async: corrupt snapshot")

// RestoreQueues reloads the pending task queues from a snapshot into the
// machines and returns each machine's saved user state for the caller to
// apply.
func (e *Engine) RestoreQueues(name string) ([][]byte, error) {
	states := make([][]byte, len(e.machines))
	for i, m := range e.machines {
		data, err := e.fs.ReadFile(fmt.Sprintf("%s/machine-%d", name, i))
		if err != nil {
			return nil, err
		}
		if len(data) < 4 {
			return nil, errCorrupt
		}
		count := int(binary.LittleEndian.Uint32(data))
		off := 4
		var queue [][]byte
		for j := 0; j < count; j++ {
			if off+4 > len(data) {
				return nil, errCorrupt
			}
			n := int(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			if off+n > len(data) {
				return nil, errCorrupt
			}
			queue = append(queue, append([]byte(nil), data[off:off+n]...))
			off += n
		}
		if off+4 > len(data) {
			return nil, errCorrupt
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+n > len(data) {
			return nil, errCorrupt
		}
		states[i] = append([]byte(nil), data[off:off+n]...)
		m.mu.Lock()
		m.queue = append(m.queue, queue...)
		m.cond.Broadcast()
		m.mu.Unlock()
	}
	return states, nil
}
