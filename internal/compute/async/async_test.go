package async

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

func newCloud(t testing.TB, machines int) *memcloud.Cloud {
	c := memcloud.New(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 5 * time.Second},
	})
	t.Cleanup(c.Close)
	return c
}

func TestWaitOnIdleSystem(t *testing.T) {
	cloud := newCloud(t, 3)
	e := New(cloud, func(*Ctx, []byte) {})
	defer e.Stop()
	done := make(chan struct{})
	go func() {
		e.Wait(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Safra did not detect termination of an idle system")
	}
}

func TestSingleMachineTermination(t *testing.T) {
	cloud := newCloud(t, 1)
	var count atomic.Int64
	e := New(cloud, func(ctx *Ctx, task []byte) {
		if n := count.Add(1); n < 10 {
			ctx.Post(ctx.Machine(), task)
		}
	})
	defer e.Stop()
	e.Post(0, []byte{1})
	e.Wait(context.Background())
	if count.Load() != 10 {
		t.Fatalf("tasks run = %d", count.Load())
	}
}

func TestTaskChainAcrossMachines(t *testing.T) {
	// A task hops machine to machine, decrementing a counter; Safra must
	// not declare termination until the chain dies out.
	cloud := newCloud(t, 4)
	var hops atomic.Int64
	e := New(cloud, func(ctx *Ctx, task []byte) {
		n := binary.LittleEndian.Uint32(task)
		hops.Add(1)
		if n > 0 {
			var next [4]byte
			binary.LittleEndian.PutUint32(next[:], n-1)
			ctx.Post(msg.MachineID((int(ctx.Machine())+1)%4), next[:])
		}
	})
	defer e.Stop()
	var seed [4]byte
	binary.LittleEndian.PutUint32(seed[:], 99)
	e.Post(1, seed[:])
	e.Wait(context.Background())
	if got := hops.Load(); got != 100 {
		t.Fatalf("hops = %d, want 100 (terminated early or late)", got)
	}
}

func TestFanOutTasks(t *testing.T) {
	// Each task spawns two children until depth 0; total = 2^(d+1)-1.
	cloud := newCloud(t, 3)
	var count atomic.Int64
	e := New(cloud, func(ctx *Ctx, task []byte) {
		count.Add(1)
		d := task[0]
		if d > 0 {
			ctx.Post(msg.MachineID(int(ctx.Machine()+1)%3), []byte{d - 1})
			ctx.Post(msg.MachineID(int(ctx.Machine()+2)%3), []byte{d - 1})
		}
	})
	defer e.Stop()
	e.Post(0, []byte{9})
	e.Wait(context.Background())
	if got := count.Load(); got != (1<<10)-1 {
		t.Fatalf("tasks = %d, want %d", got, (1<<10)-1)
	}
}

func TestEngineReusableAfterWait(t *testing.T) {
	cloud := newCloud(t, 2)
	var count atomic.Int64
	e := New(cloud, func(ctx *Ctx, task []byte) { count.Add(1) })
	defer e.Stop()
	for round := 1; round <= 3; round++ {
		e.Post(msg.MachineID(round%2), []byte{1})
		e.Wait(context.Background())
		if got := count.Load(); got != int64(round) {
			t.Fatalf("round %d: count = %d", round, got)
		}
	}
}

func TestAsyncBFSMatchesReference(t *testing.T) {
	cloud := newCloud(t, 4)
	bl := graph.NewBuilder(true)
	gen.BuildUniform(gen.UniformConfig{Nodes: 500, AvgDegree: 4, Seed: 3}, 0, bl)
	g, err := bl.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference reachability from node 0.
	adj := make([][]uint64, 500)
	for i := range adj {
		adj[i], _ = g.On(0).Outlinks(context.Background(), uint64(i))
	}
	ref := map[uint64]bool{0: true}
	stack := []uint64{0}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !ref[v] {
				ref[v] = true
				stack = append(stack, v)
			}
		}
	}
	bfs, err := NewBFS(g)
	if err != nil {
		t.Fatal(err)
	}
	e := New(cloud, bfs.Handler())
	defer e.Stop()
	var seed [8]byte
	owner := g.On(0).Slave().Owner(0)
	e.Post(owner, seed[:])
	e.Wait(context.Background())
	if got := bfs.Visited(); got != len(ref) {
		t.Fatalf("async BFS visited %d, reference %d", got, len(ref))
	}
}

func TestAsyncBFSReachesPostSnapshotVertices(t *testing.T) {
	// Vertices created after the views are pinned are invisible to the
	// dense CSR path; the handler must resolve them through the cell-fetch
	// pipeline. Build a 50-node chain, give the tail a dangling edge to a
	// future vertex, pin the views, then materialize the future vertices.
	cloud := newCloud(t, 4)
	bl := graph.NewBuilder(true)
	for i := uint64(0); i < 50; i++ {
		bl.AddNode(i, 0, "")
		if i > 0 {
			bl.AddEdge(i-1, i)
		}
	}
	g, err := bl.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	m0 := g.On(0)
	// Tail points at a vertex that does not exist yet (1000) and one that
	// never will (2000) — the forever-dangling id exercises the fetch-miss
	// path, which must not inflate Visited.
	tail, err := m0.GetNode(context.Background(), 49)
	if err != nil {
		t.Fatal(err)
	}
	tail.Outlinks = append(tail.Outlinks, 1000, 2000)
	if err := m0.PutNode(context.Background(), tail); err != nil {
		t.Fatal(err)
	}

	bfs, err := NewBFS(g) // pins views: 1000/2000 are dangling here
	if err != nil {
		t.Fatal(err)
	}
	// Materialize the off-snapshot chain: 1000 -> 1001 -> 0 (back into the
	// pinned world, which is already visited by then).
	if err := m0.AddNode(context.Background(), &graph.Node{ID: 1000, Outlinks: []uint64{1001}}); err != nil {
		t.Fatal(err)
	}
	if err := m0.AddNode(context.Background(), &graph.Node{ID: 1001, Outlinks: []uint64{0}}); err != nil {
		t.Fatal(err)
	}

	e := New(cloud, bfs.Handler())
	defer e.Stop()
	var seed [8]byte
	e.Post(m0.Slave().Owner(0), seed[:])
	e.Wait(context.Background())
	if got, want := bfs.Visited(), 52; got != want {
		t.Fatalf("visited %d vertices, want %d (50 in-view + 2 fetched)", got, want)
	}
	// The off-snapshot vertices must have come through the fetch pipeline.
	// Tasks land on the id's owner machine, so these fetches resolve as
	// local hits; count wire keys too in case ownership ever moves.
	var fetched int64
	for i := 0; i < 4; i++ {
		scope := cloud.Metrics().Scope(fmt.Sprintf("fetch.m%d", i))
		fetched += scope.Counter("keys").Load() + scope.Counter("local_hits").Load()
	}
	if fetched == 0 {
		t.Fatal("no keys went through the fetch pipeline")
	}

	// Reset clears the side map too: a re-run lands on the same count.
	bfs.Reset()
	e.Post(m0.Slave().Owner(0), seed[:])
	e.Wait(context.Background())
	if got := bfs.Visited(); got != 52 {
		t.Fatalf("after Reset, visited %d, want 52", got)
	}
}

func TestSnapshotAndRestore(t *testing.T) {
	cloud := newCloud(t, 3)
	var processed atomic.Int64
	block := make(chan struct{})
	unblocked := false
	e := New(cloud, func(ctx *Ctx, task []byte) {
		if !unblocked {
			<-block
		}
		processed.Add(1)
	})
	defer e.Stop()
	// Queue tasks that will sit behind one blocked task per machine.
	for i := 0; i < 9; i++ {
		e.Post(msg.MachineID(i%3), []byte{byte(i)})
	}
	// Unblock, snapshot immediately after quiescence.
	unblocked = true
	close(block)
	states := map[int][]byte{}
	if err := e.Snapshot(context.Background(), "snap/test", func(i int) []byte {
		return []byte{byte(i * 11)}
	}); err != nil {
		t.Fatal(err)
	}
	e.Wait(context.Background())
	if processed.Load() != 9 {
		t.Fatalf("processed = %d", processed.Load())
	}
	// The snapshot is readable and user state round-trips.
	got, err := e.RestoreQueues("snap/test")
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range got {
		states[i] = st
		if len(st) != 1 || st[0] != byte(i*11) {
			t.Fatalf("machine %d state = %v", i, st)
		}
	}
	// Restored queues (possibly empty) re-execute without hanging.
	e.Wait(context.Background())
}

func TestSnapshotCapturesPendingTasks(t *testing.T) {
	cloud := newCloud(t, 2)
	release := make(chan struct{})
	var order []byte
	var mu sync.Mutex
	e := New(cloud, func(ctx *Ctx, task []byte) {
		<-release
		mu.Lock()
		order = append(order, task[0])
		mu.Unlock()
	})
	defer e.Stop()
	// One task per machine is picked up and blocks; the rest stay queued.
	for i := 0; i < 6; i++ {
		e.Post(msg.MachineID(i%2), []byte{byte(i)})
	}
	time.Sleep(50 * time.Millisecond) // let executors pick up + block
	// Snapshot must wait for the in-hand tasks: release them from another
	// goroutine while Snapshot is pausing.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := e.Snapshot(context.Background(), "snap/pending", nil); err != nil {
		t.Fatal(err)
	}
	e.Wait(context.Background())
	mu.Lock()
	ran := len(order)
	mu.Unlock()
	if ran != 6 {
		t.Fatalf("ran = %d, want 6", ran)
	}
}

func BenchmarkSafraRound(b *testing.B) {
	cloud := newCloud(b, 8)
	e := New(cloud, func(*Ctx, []byte) {})
	defer e.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Wait(context.Background()) // each Wait completes at least one full token round
	}
}
