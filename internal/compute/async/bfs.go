package async

import (
	"encoding/binary"
	"sync"

	"trinity/internal/graph"
	"trinity/internal/graph/view"
	"trinity/internal/msg"
)

// BFS is an asynchronous breadth-first exploration over a distributed
// graph — the "asynchronous requests recursively to remote machines"
// pattern of §5.1, packaged as an Engine handler. Tasks are batches of
// vertex ids; each machine marks unseen local vertices in a dense visited
// array indexed by its partition view and forwards the out-neighbors,
// grouped by owner, as follow-up tasks.
//
// Construct with NewBFS, pass Handler() to New, seed the start vertex
// with Engine.Post, and read Visited after Engine.Wait.
type BFS struct {
	g       *graph.Graph
	views   []*view.View
	mu      []sync.Mutex
	visited [][]bool // dense per machine, indexed by view local index
}

// NewBFS acquires every machine's partition view and prepares dense
// visited state. The views are pinned for the life of the BFS: vertices
// added after this point are not explored.
func NewBFS(g *graph.Graph) (*BFS, error) {
	b := &BFS{g: g, mu: make([]sync.Mutex, g.Machines())}
	for i := 0; i < g.Machines(); i++ {
		v, err := view.Acquire(g.On(i))
		if err != nil {
			return nil, err
		}
		b.views = append(b.views, v)
		b.visited = append(b.visited, make([]bool, v.NumVertices()))
	}
	return b, nil
}

// Handler returns the task handler to pass to New.
func (b *BFS) Handler() Handler { return b.handle }

func (b *BFS) handle(ctx *Ctx, task []byte) {
	mi := int(ctx.Machine())
	v := b.views[mi]
	m := b.g.On(mi)
	// A task is a batch of vertex ids to visit on this machine.
	perOwner := make(map[msg.MachineID][]byte)
	for off := 0; off+8 <= len(task); off += 8 {
		id := binary.LittleEndian.Uint64(task[off:])
		idx, ok := v.IndexOf(id)
		if !ok {
			continue // dangling edge target or post-snapshot vertex
		}
		b.mu[mi].Lock()
		seen := b.visited[mi][idx]
		b.visited[mi][idx] = true
		b.mu[mi].Unlock()
		if seen {
			continue
		}
		for _, dst := range v.Out(idx) {
			owner := m.Slave().Owner(dst)
			var enc [8]byte
			binary.LittleEndian.PutUint64(enc[:], dst)
			perOwner[owner] = append(perOwner[owner], enc[:]...)
		}
	}
	for owner, batch := range perOwner {
		ctx.Post(owner, batch)
	}
}

// Visited returns the number of distinct vertices reached so far.
func (b *BFS) Visited() int {
	total := 0
	for i := range b.visited {
		b.mu[i].Lock()
		for _, s := range b.visited[i] {
			if s {
				total++
			}
		}
		b.mu[i].Unlock()
	}
	return total
}

// Reset clears the visited state so the BFS can run again over the same
// pinned views.
func (b *BFS) Reset() {
	for i := range b.visited {
		b.mu[i].Lock()
		for j := range b.visited[i] {
			b.visited[i][j] = false
		}
		b.mu[i].Unlock()
	}
}
