package async

import (
	"encoding/binary"
	"sync"

	"trinity/internal/graph"
	"trinity/internal/graph/view"
	"trinity/internal/msg"
)

// BFS is an asynchronous breadth-first exploration over a distributed
// graph — the "asynchronous requests recursively to remote machines"
// pattern of §5.1, packaged as an Engine handler. Tasks are batches of
// vertex ids; each machine marks unseen local vertices in a dense visited
// array indexed by its partition view and forwards the out-neighbors,
// grouped by owner, as follow-up tasks.
//
// Vertices absent from the pinned view (added after the snapshot was
// taken, or reachable only through edges newer than it) are resolved
// through the cell-fetch pipeline: the handler batch-fetches their cells
// and expands them like any other vertex, tracking them in a per-machine
// side map instead of the dense array.
//
// Construct with NewBFS, pass Handler() to New, seed the start vertex
// with Engine.Post, and read Visited after Engine.Wait.
type BFS struct {
	g       *graph.Graph
	views   []*view.View
	mu      []sync.Mutex
	visited [][]bool          // dense per machine, indexed by view local index
	extra   []map[uint64]bool // off-snapshot vertices, resolved via the fetcher
}

// NewBFS acquires every machine's partition view and prepares dense
// visited state. The views are pinned for the life of the BFS; vertices
// added after this point are still explored, via the fetch pipeline.
func NewBFS(g *graph.Graph) (*BFS, error) {
	b := &BFS{g: g, mu: make([]sync.Mutex, g.Machines())}
	for i := 0; i < g.Machines(); i++ {
		v, err := view.Acquire(g.On(i))
		if err != nil {
			return nil, err
		}
		b.views = append(b.views, v)
		b.visited = append(b.visited, make([]bool, v.NumVertices()))
		b.extra = append(b.extra, make(map[uint64]bool))
	}
	return b, nil
}

// Handler returns the task handler to pass to New.
func (b *BFS) Handler() Handler { return b.handle }

func (b *BFS) handle(ctx *Ctx, task []byte) {
	mi := int(ctx.Machine())
	v := b.views[mi]
	m := b.g.On(mi)
	// A task is a batch of vertex ids to visit on this machine.
	perOwner := make(map[msg.MachineID][]byte)
	push := func(dst uint64) {
		owner := m.Slave().Owner(dst)
		var enc [8]byte
		binary.LittleEndian.PutUint64(enc[:], dst)
		perOwner[owner] = append(perOwner[owner], enc[:]...)
	}
	var missing []uint64
	for off := 0; off+8 <= len(task); off += 8 {
		id := binary.LittleEndian.Uint64(task[off:])
		idx, ok := v.IndexOf(id)
		if !ok {
			// Off-snapshot vertex (or dangling edge target): resolve it
			// through the fetch pipeline below. Mark before fetching so
			// duplicate posts dedup; a miss unmarks to keep Visited exact.
			b.mu[mi].Lock()
			seen := b.extra[mi][id]
			b.extra[mi][id] = true
			b.mu[mi].Unlock()
			if !seen {
				missing = append(missing, id)
			}
			continue
		}
		b.mu[mi].Lock()
		seen := b.visited[mi][idx]
		b.visited[mi][idx] = true
		b.mu[mi].Unlock()
		if seen {
			continue
		}
		for _, dst := range v.Out(idx) {
			push(dst)
		}
	}
	if len(missing) > 0 {
		// Fetch synchronously inside the handler: the machine stays active
		// while the batch is in flight, so Safra counts the follow-up posts
		// before this machine can be observed passive.
		m.GetNodes(ctx.Context(), missing, func(i int, n *graph.Node, err error) {
			if err != nil {
				b.mu[mi].Lock()
				delete(b.extra[mi], missing[i])
				b.mu[mi].Unlock()
				return
			}
			for _, dst := range n.Outlinks {
				push(dst)
			}
		})
	}
	for owner, batch := range perOwner {
		ctx.Post(owner, batch)
	}
}

// Visited returns the number of distinct vertices reached so far.
func (b *BFS) Visited() int {
	total := 0
	for i := range b.visited {
		b.mu[i].Lock()
		for _, s := range b.visited[i] {
			if s {
				total++
			}
		}
		total += len(b.extra[i])
		b.mu[i].Unlock()
	}
	return total
}

// Reset clears the visited state so the BFS can run again over the same
// pinned views.
func (b *BFS) Reset() {
	for i := range b.visited {
		b.mu[i].Lock()
		for j := range b.visited[i] {
			b.visited[i][j] = false
		}
		b.extra[i] = make(map[uint64]bool)
		b.mu[i].Unlock()
	}
}
