// Package async implements Trinity's asynchronous computation mode: tasks
// hop between machines with no supersteps and no barriers, and global
// quiescence is detected with Safra's termination detection algorithm —
// the paper uses exactly this ("Trinity calls Safra's termination
// detection algorithm to check whether the system ceases", §6.2).
//
// The package also implements the §6.2 snapshot mechanism for
// asynchronous fault tolerance: an interruption signal pauses every
// machine after the task in hand, Safra's algorithm confirms the system
// has ceased (no tasks executing, none in flight), and the engine writes
// a consistent snapshot (user state plus undelivered tasks) to the
// Trinity File System before resuming.
//
// Safra bookkeeping, in brief: each machine keeps a counter of
// cross-machine tasks sent minus received and a color (black after
// receiving a task). A token circulates the machine ring, accumulating
// counters; it is forwarded only by passive machines, and forwarding
// whitens the forwarder. When the initiator gets back a white token whose
// accumulated count plus its own counter is zero while itself white and
// passive, the system has terminated. All token handling runs on the
// per-machine executor goroutine, so no lock is ever held across a
// network send.
package async

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/msg"
	"trinity/internal/obs"
	"trinity/internal/tfs"
)

// Engine protocol IDs.
const (
	protoTask  msg.ProtocolID = 0x0501
	protoToken msg.ProtocolID = 0x0502
)

// Handler processes one task on a machine. It may post follow-up tasks to
// any machine through the context. Handlers on one machine run
// sequentially (one executor per machine), so per-machine handler state
// needs no locking.
type Handler func(ctx *Ctx, task []byte)

// Ctx lets a handler post follow-up tasks.
type Ctx struct {
	m *machine
}

// Machine returns the id of the machine executing the handler.
func (c *Ctx) Machine() msg.MachineID { return c.m.id }

// Context returns the context of the current Wait, or context.Background
// before the first Wait. Handlers doing blocking work (cell fetches,
// sync calls) should pass it downstream: when the run is cancelled the
// handler's I/O fails fast, the handler posts no follow-ups, and the
// system quiesces — Safra's counters only track posts actually made, so
// termination detection stays sound.
func (c *Ctx) Context() context.Context {
	if v := c.m.e.runCtx.Load(); v != nil {
		return v.(context.Context)
	}
	return context.Background()
}

// Post enqueues a task on the destination machine.
func (c *Ctx) Post(to msg.MachineID, task []byte) {
	c.m.post(to, task)
}

// Engine coordinates an asynchronous computation over the machines of a
// memory cloud. Wait (and Snapshot) must not be called concurrently with
// each other.
type Engine struct {
	machines []*machine
	fs       *tfs.FS

	termMu   sync.Mutex
	termCond *sync.Cond
	done     bool

	// runCtx is the context of the Wait in progress, read by Ctx.Context.
	runCtx atomic.Value // context.Context

	// Registry-backed metrics (scope "async" on the cloud's registry).
	tasksExecuted *obs.Counter
	tasksWire     *obs.Counter
	tokenRounds   *obs.Counter
	taskNs        *obs.Histogram
	waitNs        *obs.Histogram
}

// machine is the per-slave async runtime.
type machine struct {
	e       *Engine
	index   int
	id      msg.MachineID
	node    *msg.Node
	handler Handler

	mu      sync.Mutex
	cond    *sync.Cond
	queue   [][]byte
	active  bool
	paused  bool
	stopped bool

	// Safra state.
	counter int64 // cross-machine tasks sent - received
	black   bool
	holding bool // received a token not yet handled
	launch  bool // initiator only: emit a fresh token when passive
	tokenQ  int64
	tokenB  bool
}

// New builds an async engine over the cloud's machines.
func New(cloud *memcloud.Cloud, handler Handler) *Engine {
	scope := cloud.Metrics().Scope("async")
	e := &Engine{
		fs:            cloud.Slave(0).FS(),
		tasksExecuted: scope.Counter("tasks_executed"),
		tasksWire:     scope.Counter("tasks_wire"),
		tokenRounds:   scope.Counter("token_rounds"),
		taskNs:        scope.Histogram("task_ns"),
		waitNs:        scope.Histogram("wait_ns"),
	}
	e.termCond = sync.NewCond(&e.termMu)
	for i := 0; i < cloud.Slaves(); i++ {
		m := &machine{
			e:       e,
			index:   i,
			id:      cloud.Slave(i).ID(),
			node:    cloud.Slave(i).Node(),
			handler: handler,
		}
		m.cond = sync.NewCond(&m.mu)
		m.node.HandleAsync(protoTask, m.onTask)
		m.node.HandleAsync(protoToken, m.onToken)
		e.machines = append(e.machines, m)
	}
	for _, m := range e.machines {
		go m.run()
	}
	return e
}

// Post seeds a task onto a machine from outside any handler. The send is
// accounted through machine 0 so Safra sees it.
func (e *Engine) Post(to msg.MachineID, task []byte) {
	e.machines[0].post(to, task)
}

// Wait blocks until Safra's algorithm detects global termination (every
// machine passive and no tasks in flight) and returns nil, or until ctx
// fires and returns ctx.Err(). A cancelled Wait abandons only the wait:
// executors keep draining (handlers observe the cancelled context via
// Ctx.Context and go passive quickly), the token keeps circulating, and
// a later Wait with a fresh context is still sound. The engine is
// reusable after Wait returns nil.
func (e *Engine) Wait(ctx context.Context) error {
	start := time.Now()
	e.runCtx.Store(ctx)
	e.termMu.Lock()
	e.done = false
	e.termMu.Unlock()
	e.machines[0].startProbe()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			e.termMu.Lock()
			e.termCond.Broadcast()
			e.termMu.Unlock()
		case <-watchDone:
		}
	}()
	e.termMu.Lock()
	for !e.done && ctx.Err() == nil {
		e.termCond.Wait()
	}
	done := e.done
	e.termMu.Unlock()
	e.waitNs.Observe(int64(time.Since(start)))
	if !done {
		return ctx.Err()
	}
	return nil
}

// Stop shuts the executors down. The engine cannot be reused.
func (e *Engine) Stop() {
	for _, m := range e.machines {
		m.mu.Lock()
		m.stopped = true
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// post routes a task, counting cross-machine sends for Safra.
func (m *machine) post(to msg.MachineID, task []byte) {
	if to == m.id {
		m.mu.Lock()
		m.queue = append(m.queue, append([]byte(nil), task...))
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	m.mu.Lock()
	m.counter++
	m.mu.Unlock()
	m.e.tasksWire.Inc()
	m.node.Send(to, protoTask, task)
	m.node.Flush()
}

// onTask receives a cross-machine task (transport goroutine).
func (m *machine) onTask(_ msg.MachineID, task []byte) {
	m.mu.Lock()
	m.counter--
	m.black = true // receiving blackens the machine
	m.queue = append(m.queue, append([]byte(nil), task...))
	m.cond.Broadcast()
	m.mu.Unlock()
}

// onToken receives the circulating token (transport goroutine). The
// executor does the actual forwarding.
func (m *machine) onToken(_ msg.MachineID, b []byte) {
	if len(b) != 9 {
		return
	}
	m.mu.Lock()
	m.holding = true
	m.tokenQ = int64(binary.LittleEndian.Uint64(b[:8]))
	m.tokenB = b[8] == 1
	m.cond.Broadcast()
	m.mu.Unlock()
}

// startProbe asks the initiator (machine 0) to launch a fresh white
// token as soon as it is passive.
func (m *machine) startProbe() {
	m.mu.Lock()
	m.launch = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// passiveLocked reports Safra passivity: not executing, and either no
// pending work or paused (a paused machine cannot send).
func (m *machine) passiveLocked() bool {
	return !m.active && (len(m.queue) == 0 || m.paused)
}

// run is the machine's executor loop. It alternates between executing
// tasks and, while passive, handling token duties.
func (m *machine) run() {
	for {
		m.mu.Lock()
		for !m.stopped {
			if (m.holding || m.launch) && m.passiveLocked() {
				break // token duty
			}
			if len(m.queue) > 0 && !m.paused {
				break // run a task
			}
			m.cond.Wait()
		}
		if m.stopped {
			m.mu.Unlock()
			return
		}
		if (m.holding || m.launch) && m.passiveLocked() {
			send, payload, next := m.tokenDutyLocked()
			m.mu.Unlock()
			if send {
				m.node.Send(next, protoToken, payload)
				m.node.Flush()
			}
			continue
		}
		task := m.queue[0]
		m.queue = m.queue[1:]
		m.active = true
		m.mu.Unlock()

		taskStart := time.Now()
		m.handler(&Ctx{m: m}, task)
		m.e.tasksExecuted.Inc()
		m.e.taskNs.Observe(int64(time.Since(taskStart)))

		m.mu.Lock()
		m.active = false
		m.cond.Broadcast() // wake snapshot waiters and token logic
		m.mu.Unlock()
	}
}

// tokenDutyLocked performs this machine's pending token work:
//
//   - initiator, round ended: declare termination if the token and the
//     initiator are white and the global count is zero, else relaunch;
//   - initiator, launch requested: emit a fresh white token;
//   - other machines: forward the token with accumulated counter/color,
//     whitening themselves.
//
// Called with m.mu held by the executor; the actual send happens after
// the caller releases the lock.
func (m *machine) tokenDutyLocked() (send bool, payload []byte, next msg.MachineID) {
	n := len(m.e.machines)
	nextID := m.e.machines[(m.index+1)%n].id
	token := func(q int64, black bool) (bool, []byte, msg.MachineID) {
		var buf [9]byte
		binary.LittleEndian.PutUint64(buf[:8], uint64(q))
		if black {
			buf[8] = 1
		}
		return true, buf[:], nextID
	}
	if m.index != 0 {
		// Forward with accumulated state; forwarding whitens.
		q := m.tokenQ + m.counter
		black := m.tokenB || m.black
		m.holding = false
		m.black = false
		return token(q, black)
	}
	if m.holding {
		// A round has completed at the initiator.
		m.holding = false
		terminated := !m.tokenB && !m.black && m.tokenQ+m.counter == 0
		if terminated {
			m.launch = false
			m.e.termMu.Lock()
			m.e.done = true
			m.e.termCond.Broadcast()
			m.e.termMu.Unlock()
			return false, nil, 0
		}
		m.launch = true // inconclusive: go again
	}
	// Launch a fresh white token; launching whitens the initiator.
	m.e.tokenRounds.Inc()
	m.launch = false
	m.black = false
	if n == 1 {
		// Single machine: the ring is this machine alone; termination is
		// simply local passivity with a balanced counter (counter is
		// always 0 with no peers).
		m.e.termMu.Lock()
		m.e.done = true
		m.e.termCond.Broadcast()
		m.e.termMu.Unlock()
		return false, nil, 0
	}
	return token(0, false)
}
