package bsp

import (
	"context"
	"math"
	"testing"
	"time"

	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

func newCloud(t testing.TB, machines int) *memcloud.Cloud {
	c := memcloud.New(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 5 * time.Second},
	})
	t.Cleanup(c.Close)
	return c
}

// ringGraph returns a directed ring of n nodes over the cloud.
func ringGraph(t testing.TB, cloud *memcloud.Cloud, n int) *graph.Graph {
	b := graph.NewBuilder(true)
	for i := 0; i < n; i++ {
		b.AddNode(uint64(i), 0, "")
	}
	for i := 0; i < n; i++ {
		b.AddEdge(uint64(i), uint64((i+1)%n))
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pagerank is the canonical restrictive-model program.
type pagerank struct {
	iters int
}

func (p *pagerank) Init(id uint64, outDeg int) (float64, bool) { return 1.0, true }

func (p *pagerank) Compute(ctx *Context, id uint64, val float64, msgs []float64) (float64, bool) {
	if ctx.Superstep() > 0 {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		val = 0.15 + 0.85*sum
	}
	if ctx.Superstep() < p.iters {
		deg := ctx.OutDegree()
		if deg > 0 {
			ctx.SendToAllOut(val / float64(deg))
		}
		return val, false
	}
	return val, true
}

// propagateMax floods the maximum vertex ID through the graph (a classic
// connectivity program: converges when every vertex holds the global max
// within its component).
type propagateMax struct{}

func (propagateMax) Init(id uint64, _ int) (float64, bool) { return float64(id), true }

func (propagateMax) Compute(ctx *Context, id uint64, val float64, msgs []float64) (float64, bool) {
	changed := ctx.Superstep() == 0
	for _, m := range msgs {
		if m > val {
			val = m
			changed = true
		}
	}
	if changed {
		ctx.SendToAllOut(val)
	}
	return val, true // halt; reactivated by messages
}

func TestPageRankOnRing(t *testing.T) {
	cloud := newCloud(t, 2)
	g := ringGraph(t, cloud, 40)
	e := New(g, Options{Combine: func(a, b float64) float64 { return a + b }})
	steps, err := e.Run(context.Background(), &pagerank{iters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if steps < 30 {
		t.Fatalf("steps = %d", steps)
	}
	// On a ring every vertex has identical rank 1.0 at the fixpoint.
	for id, v := range e.Values() {
		if math.Abs(v-1.0) > 1e-6 {
			t.Fatalf("rank(%d) = %f, want 1.0", id, v)
		}
	}
}

func TestPageRankMatchesSequentialReference(t *testing.T) {
	// The distributed engine must agree with a straightforward sequential
	// PageRank over the same adjacency, vertex by vertex.
	cloud := newCloud(t, 3)
	b := graph.NewBuilder(true)
	gen.BuildUniform(gen.UniformConfig{Nodes: 200, AvgDegree: 6, Seed: 1}, 0, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: same update rule, dense arrays.
	const n = 200
	const iters = 20
	adj := make([][]uint64, n)
	for i := 0; i < n; i++ {
		out, err := g.On(0).Outlinks(context.Background(), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		adj[i] = out
	}
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = 1.0
	}
	for it := 0; it < iters; it++ {
		in := make([]float64, n)
		for u, out := range adj {
			if len(out) == 0 {
				continue
			}
			share := ref[u] / float64(len(out))
			for _, v := range out {
				in[v] += share
			}
		}
		for i := range ref {
			ref[i] = 0.15 + 0.85*in[i]
		}
	}
	e := New(g, Options{Combine: func(a, b float64) float64 { return a + b }})
	if _, err := e.Run(context.Background(), &pagerank{iters: iters}); err != nil {
		t.Fatal(err)
	}
	for id, v := range e.Values() {
		if math.Abs(v-ref[id]) > 1e-9 {
			t.Fatalf("rank(%d) = %.12f, reference %.12f", id, v, ref[id])
		}
	}
}

func TestMaxPropagationConverges(t *testing.T) {
	cloud := newCloud(t, 4)
	g := ringGraph(t, cloud, 64)
	e := New(g, Options{})
	steps, err := e.Run(context.Background(), propagateMax{})
	if err != nil {
		t.Fatal(err)
	}
	// The ring needs ~n steps to flood; engine must then self-terminate.
	if steps < 10 || steps > 80 {
		t.Fatalf("steps = %d", steps)
	}
	for id, v := range e.Values() {
		if v != 63 {
			t.Fatalf("vertex %d converged to %f, want 63", id, v)
		}
	}
}

func TestVoteToHaltTerminates(t *testing.T) {
	cloud := newCloud(t, 2)
	g := ringGraph(t, cloud, 10)
	e := New(g, Options{})
	// A program that halts immediately must terminate in one superstep.
	steps, err := e.Run(context.Background(), haltNow{})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatalf("steps = %d, want 1", steps)
	}
}

type haltNow struct{}

func (haltNow) Init(uint64, int) (float64, bool) { return 0, true }
func (haltNow) Compute(*Context, uint64, float64, []float64) (float64, bool) {
	return 0, true
}

func TestMaxSuperstepsBound(t *testing.T) {
	cloud := newCloud(t, 2)
	g := ringGraph(t, cloud, 10)
	e := New(g, Options{MaxSupersteps: 3})
	steps, err := e.Run(context.Background(), neverHalt{})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
}

type neverHalt struct{}

func (neverHalt) Init(uint64, int) (float64, bool) { return 0, true }
func (neverHalt) Compute(ctx *Context, id uint64, v float64, _ []float64) (float64, bool) {
	ctx.SendToAllOut(1)
	return v, false
}

func TestAggregator(t *testing.T) {
	cloud := newCloud(t, 2)
	g := ringGraph(t, cloud, 20)
	e := New(g, Options{MaxSupersteps: 2})
	if _, err := e.Run(context.Background(), &aggProg{t: t}); err != nil {
		t.Fatal(err)
	}
}

type aggProg struct{ t *testing.T }

func (a *aggProg) Init(uint64, int) (float64, bool) { return 0, true }
func (a *aggProg) Compute(ctx *Context, id uint64, v float64, _ []float64) (float64, bool) {
	if ctx.Superstep() == 0 {
		ctx.Aggregate("count", 1)
		return v, false
	}
	// Superstep 1 sees the global reduction from superstep 0.
	if got := ctx.Aggregated("count"); got != 20 {
		a.t.Errorf("aggregated count = %f, want 20", got)
	}
	if ctx.NumVertices() != 20 {
		a.t.Errorf("NumVertices = %d", ctx.NumVertices())
	}
	return v, true
}

func TestHubOptimizationEquivalence(t *testing.T) {
	// PageRank results must be identical with and without hub buffering,
	// but wire messages must drop on a hub-heavy graph.
	build := func() *graph.Graph {
		cloud := newCloud(t, 4)
		b := graph.NewBuilder(true)
		gen.BuildRMAT(gen.RMATConfig{Scale: 9, AvgDegree: 8, Seed: 11}, 0, b)
		g, err := b.Load(context.Background(), cloud)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	run := func(g *graph.Graph, hub int) (map[uint64]float64, int64) {
		e := New(g, Options{
			Combine:      func(a, b float64) float64 { return a + b },
			HubThreshold: hub,
		})
		if _, err := e.Run(context.Background(), &pagerank{iters: 5}); err != nil {
			t.Fatal(err)
		}
		return e.Values(), e.WireMessages()
	}
	base, baseWire := run(build(), 0)
	opt, optWire := run(build(), 4)
	if len(base) != len(opt) {
		t.Fatalf("value sets differ: %d vs %d", len(base), len(opt))
	}
	for id, v := range base {
		if math.Abs(v-opt[id]) > 1e-9 {
			t.Fatalf("rank(%d): %f (plain) != %f (hub)", id, v, opt[id])
		}
	}
	if optWire >= baseWire {
		t.Fatalf("hub optimization did not reduce wire messages: %d -> %d", baseWire, optWire)
	}
	t.Logf("wire messages: %d plain, %d hub-optimized (%.1f%% saved)",
		baseWire, optWire, 100*float64(baseWire-optWire)/float64(baseWire))
}

func TestCheckpointRestore(t *testing.T) {
	cloud := newCloud(t, 2)
	g := ringGraph(t, cloud, 30)
	e := New(g, Options{MaxSupersteps: 10, CheckpointEvery: 5, CheckpointName: "pr"})
	if _, err := e.Run(context.Background(), &pagerank{iters: 9}); err != nil {
		t.Fatal(err)
	}
	want := e.Values()
	// Corrupt in-memory state, then restore from the checkpoint taken at
	// step 9 (the run's last, since (9+1)%5==0).
	e2 := New(g, Options{})
	e2.initVertices(&pagerank{iters: 0})
	if err := e2.Restore("bsp/pr/step-9"); err != nil {
		t.Fatal(err)
	}
	got := e2.Values()
	for id, v := range want {
		if math.Abs(got[id]-v) > 1e-12 {
			t.Fatalf("restored value(%d) = %f, want %f", id, got[id], v)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	cloud := newCloud(t, 2)
	g := graph.New(cloud, true)
	e := New(g, Options{MaxSupersteps: 5})
	steps, err := e.Run(context.Background(), haltNow{})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatalf("steps on empty graph = %d", steps)
	}
}

func BenchmarkPageRankIteration(b *testing.B) {
	cloud := newCloud(b, 4)
	bl := graph.NewBuilder(true)
	gen.BuildRMAT(gen.RMATConfig{Scale: 12, AvgDegree: 8, Seed: 1}, 0, bl)
	g, err := bl.Load(context.Background(), cloud)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(g, Options{
			Combine:      func(a, b float64) float64 { return a + b },
			HubThreshold: 8,
		})
		if _, err := e.Run(context.Background(), &pagerank{iters: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
