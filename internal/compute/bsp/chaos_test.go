package bsp

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

// newChaosCloud boots a cloud behind a seeded chaos hub armed with
// contract-preserving faults only: delivery jitter (which exercises the
// message layer's per-sender ordering machinery) and poisoned receive
// buffers (which catch any handler retaining a transport-owned frame).
// A correct stack computes identical results to the clean one.
func newChaosCloud(t testing.TB, machines int, seed int64) *memcloud.Cloud {
	c, ch := memcloud.NewChaosCloud(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 5 * time.Second},
	}, seed)
	ch.SetDefault(msg.Policy{Jitter: 200 * time.Microsecond})
	ch.PoisonFrames(true)
	t.Cleanup(c.Close)
	return c
}

// TestChaosPageRankOnRing runs the canonical BSP program with every frame
// jittered and every delivered buffer scribbled after its callback. The
// superstep barriers and combiner traffic ride the async message path, so
// any ordering violation or retained frame skews the ranks away from the
// exact ring fixpoint.
func TestChaosPageRankOnRing(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cloud := newChaosCloud(t, 2, seed)
			g := ringGraph(t, cloud, 40)
			e := New(g, Options{Combine: func(a, b float64) float64 { return a + b }})
			steps, err := e.Run(context.Background(), &pagerank{iters: 30})
			if err != nil {
				t.Fatal(err)
			}
			if steps < 30 {
				t.Fatalf("steps = %d", steps)
			}
			for id, v := range e.Values() {
				if math.Abs(v-1.0) > 1e-6 {
					t.Fatalf("rank(%d) = %f, want 1.0", id, v)
				}
			}
		})
	}
}
