package bsp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

// waitGoroutinesSettle retries until the goroutine count drops back to
// the pre-operation baseline (plus a little slack for runtime helpers
// and chaos-delayed frames still in flight). A leaked worker, watcher,
// or barrier goroutine keeps the count elevated and fails the test.
func waitGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCancelMidSuperstep cancels a long PageRank run while frames
// are being dropped and reordered. Run must surface context.Canceled
// well within one CallTimeout (the barrier waiters cannot be parked
// until a lost marker times out), count the cancellation, and release
// every goroutine it started.
func TestChaosCancelMidSuperstep(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, ch := memcloud.NewChaosCloud(memcloud.Config{
				Machines: 2,
				Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 5 * time.Second},
			}, seed)
			t.Cleanup(c.Close)
			g := ringGraph(t, c, 60)
			// Faults go live only after the clean graph load. Drop + jitter
			// only: the superstep barrier rides per-sender FIFO order, which
			// Delay deliberately breaks (and a dropped barrier marker is the
			// exact wedge cancellation exists to rescue — async frames have
			// no retransmit, so without the cancel this run never returns).
			ch.SetDefault(msg.Policy{
				Drop:   0.02,
				Jitter: 200 * time.Microsecond,
			})

			e := New(g, Options{Combine: func(a, b float64) float64 { return a + b }})
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(15 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			// Effectively unbounded: only the cancel ends this run.
			_, err := e.Run(ctx, &pagerank{iters: 1 << 20})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run = %v, want context.Canceled", err)
			}
			// 15ms fuse + cancel-to-return must stay under one CallTimeout.
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("cancel took %v, want under one CallTimeout", d)
			}
			if got := c.Metrics().Scope("bsp").Counter("runs_cancelled").Load(); got == 0 {
				t.Fatal("runs_cancelled not incremented")
			}
			waitGoroutinesSettle(t, base)
		})
	}
}
