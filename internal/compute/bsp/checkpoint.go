package bsp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Checkpoint writes every vertex's (id, value, active) triple to the
// Trinity File System under the given name, one file per machine. The
// checkpoint is the §6.2 fault-recovery mechanism for synchronous
// computation: after a failure, Restore rewinds all machines to the last
// completed checkpoint and the run resumes from there.
func (e *Engine) Checkpoint(name string) error {
	fs := e.g.On(0).Slave().FS()
	for i, w := range e.workers {
		ids := w.pv.IDs()
		buf := make([]byte, 0, len(ids)*17)
		for idx, id := range ids {
			var rec [17]byte
			binary.LittleEndian.PutUint64(rec[0:], id)
			binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(w.values[idx]))
			if w.active[idx] {
				rec[16] = 1
			}
			buf = append(buf, rec[:]...)
		}
		if err := fs.WriteFile(fmt.Sprintf("%s/machine-%d", name, i), buf); err != nil {
			return fmt.Errorf("bsp: checkpoint: %w", err)
		}
	}
	return nil
}

// Restore loads vertex values and activity from a checkpoint written by
// Checkpoint. Vertices are matched against the current partition views,
// so a restore works even after trunks moved between machines.
func (e *Engine) Restore(name string) error {
	fs := e.g.On(0).Slave().FS()
	for i := range e.workers {
		data, err := fs.ReadFile(fmt.Sprintf("%s/machine-%d", name, i))
		if err != nil {
			return fmt.Errorf("bsp: restore: %w", err)
		}
		for off := 0; off+17 <= len(data); off += 17 {
			id := binary.LittleEndian.Uint64(data[off:])
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
			for _, w := range e.workers {
				if idx, ok := w.pv.IndexOf(id); ok {
					w.values[idx] = v
					w.active[idx] = data[off+16] == 1
					break
				}
			}
		}
	}
	return nil
}
