// Package bsp implements Trinity's vertex-centric offline computation
// engine (paper §5.3): synchronous supersteps in the Pregel style, with
// the restrictive-model optimizations of §5.4.
//
// In the restrictive model a vertex exchanges messages only with a fixed
// set of vertices (its neighbors), which makes the communication pattern
// predictable. The engine exploits this with two §5.4 mechanisms:
//
//   - Message combining: messages to the same destination vertex are
//     merged on arrival when the program provides a Combine function.
//
//   - Hub-vertex buffering with action scripts: before the first
//     superstep, each machine scans its local vertices' in-links, finds
//     remote source vertices that feed many local targets (hubs), and
//     sends the hub's owner an action script subscribing to that hub.
//     During execution, a hub's broadcast value crosses the wire once per
//     subscribed machine instead of once per edge; the receiving machine
//     fans it out locally. For a scale-free graph, "even if we buffer
//     messages from just 1% hub vertices, we have addressed 72.8% of
//     message needs".
//
// Supersteps end with a marker-based barrier: per-sender FIFO ordering of
// the transport guarantees that a StepDone marker arrives after all of the
// sender's vertex messages.
package bsp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"trinity/internal/graph"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// inboxShards is the sharding factor of the per-machine message inbox.
const inboxShards = 64

// inboxT is a sharded destination->messages map.
type inboxT [inboxShards]map[uint64][]float64

func newInbox() *inboxT {
	var ib inboxT
	for i := range ib {
		ib[i] = make(map[uint64][]float64)
	}
	return &ib
}

func (ib *inboxT) get(dst uint64) []float64 { return ib[dst%inboxShards][dst] }

// Engine protocol IDs (below tsl.ProtoUserBase, above the graph range).
const (
	protoVertexMsg msg.ProtocolID = 0x0301 + iota
	protoHubMsg
	protoStepDone
	protoActionScript
)

// Message is the vertex-to-vertex message type: a 64-bit value, matching
// the paper's workloads (ranks, levels, distances, component labels).
type Message = float64

// Program is a vertex program in the restrictive vertex-centric model.
// Vertex values are float64 (sufficient for the paper's workloads:
// PageRank ranks, BFS levels, SSSP distances, WCC component IDs); richer
// state belongs in cells via the TSL accessors.
type Program interface {
	// Init returns the initial value of a vertex and whether it starts
	// active.
	Init(id uint64, outDegree int) (val float64, active bool)
	// Compute processes the vertex for one superstep. It may send
	// messages through ctx and returns the new value and whether the
	// vertex votes to halt. Compute is invoked for a vertex when it is
	// active or has pending messages.
	Compute(ctx *Context, id uint64, val float64, msgs []float64) (newVal float64, halt bool)
}

// Combiner optionally merges two messages addressed to the same vertex
// (e.g. sum for PageRank, min for SSSP). Nil disables combining.
type Combiner func(a, b float64) float64

// Options configures a run.
type Options struct {
	// MaxSupersteps bounds the run. Zero means 1<<30.
	MaxSupersteps int
	// Combine merges messages to the same destination vertex.
	Combine Combiner
	// HubThreshold enables hub-vertex buffering: a remote source feeding
	// at least this many local targets is subscribed via an action
	// script. Zero disables the optimization.
	HubThreshold int
	// CheckpointEvery writes vertex values to TFS every k supersteps
	// ("for BSP based synchronous computation, we make check points every
	// a few supersteps", §6.2). Zero disables checkpointing.
	CheckpointEvery int
	// CheckpointName names the checkpoint files on TFS.
	CheckpointName string
	// OnSuperstep, if non-nil, observes (superstep, active, sent) after
	// every barrier.
	OnSuperstep func(step int, active, sent int64)
}

// Context carries per-superstep operations for the vertices of one
// compute goroutine. It is not safe to share across goroutines.
type Context struct {
	w    *worker
	self uint64
	step int
	agg  map[string]float64
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.step }

// Send delivers m to vertex dst at the next superstep.
func (c *Context) Send(dst uint64, m float64) {
	c.w.send(c.self, dst, m)
}

// SendToAllOut broadcasts m along all out-edges — the restrictive-model
// pattern ("Outlinks.Foreach"). This path is hub-optimized: if remote
// machines have subscribed to this vertex, they receive one copy each.
func (c *Context) SendToAllOut(m float64) {
	c.w.sendToAllOut(c.self, m)
}

// ForEachOut streams the current vertex's out-neighbors (zero-copy local
// read), for programs that need per-edge targeted sends.
func (c *Context) ForEachOut(fn func(dst uint64) bool) {
	c.w.m.ForEachOutlink(c.self, fn)
}

// ForEachOutEdge streams the current vertex's out-edges with weights
// (weight 1 when the graph is unweighted), for SSSP-style programs.
func (c *Context) ForEachOutEdge(fn func(dst uint64, w int64) bool) {
	c.w.m.ForEachOutEdge(c.self, fn)
}

// OutDegree returns the current vertex's out-degree.
func (c *Context) OutDegree() int {
	deg, _ := c.w.m.OutDegree(c.self)
	return deg
}

// Aggregate adds v into the named global aggregator; the reduced sum is
// visible to all vertices at the next superstep via ctx.Aggregated.
func (c *Context) Aggregate(name string, v float64) {
	c.agg[name] += v
}

// Aggregated returns the global sum of the named aggregator from the
// previous superstep.
func (c *Context) Aggregated(name string) float64 {
	return c.w.e.aggGlobal[name]
}

// NumVertices returns the global vertex count.
func (c *Context) NumVertices() int { return c.w.e.totalVertices }

// Engine runs vertex programs over a distributed graph. One worker is
// attached to every machine; Run drives them through synchronized
// supersteps with machine 0 acting as coordinator.
type Engine struct {
	g       *graph.Graph
	opts    Options
	workers []*worker

	totalVertices int
	aggGlobal     map[string]float64

	metrics engineMetrics
}

// engineMetrics are the engine's registry-backed counters, created
// eagerly at construction (scope "bsp" on the cloud's registry) so a
// snapshot lists them even before the first Run. Counters are cumulative
// across runs sharing one cloud; the per-step numbers the paper tables
// need still flow through Options.OnSuperstep.
type engineMetrics struct {
	scope        *obs.Scope
	supersteps   *obs.Counter
	msgsSent     *obs.Counter // logical vertex messages
	msgsWire     *obs.Counter // messages that crossed the wire
	msgsCombined *obs.Counter // messages merged by the combiner
	activeVerts  *obs.Gauge
	superstepNs  *obs.Histogram
}

// worker is the per-machine execution state.
type worker struct {
	e  *Engine
	m  *graph.Machine
	id msg.MachineID

	vertexIDs []uint64
	values    map[uint64]float64
	active    map[uint64]bool

	// Inboxes are sharded 64 ways by destination hash so concurrent
	// deliveries do not contend on one lock (and never race on one map).
	inbox  *inboxT // messages for the CURRENT superstep
	nextMu [inboxShards]sync.Mutex
	next   *inboxT

	// Hub optimization state.
	hubSources     map[uint64][]uint64        // remote hub -> local targets
	hubSubscribers map[uint64][]msg.MachineID // local hub -> subscribed machines
	hubSubSet      map[uint64]map[msg.MachineID]bool

	aggLocal map[string]float64

	sentWire  atomic.Int64 // messages that crossed the wire (cumulative)
	sentTotal atomic.Int64 // logical messages this step
	combined  atomic.Int64 // combiner merges (cumulative)
	lastWire  atomic.Int64 // sentWire at the end of the previous step
	lastComb  atomic.Int64 // combined at the end of the previous step

	doneMu   sync.Mutex
	doneFrom map[msg.MachineID]bool
	doneCond *sync.Cond
	step     int
}

// New builds an engine over the graph. The graph must be fully loaded:
// vertex sets are snapshotted now.
func New(g *graph.Graph, opts Options) *Engine {
	if opts.MaxSupersteps <= 0 {
		opts.MaxSupersteps = 1 << 30
	}
	e := &Engine{g: g, opts: opts, aggGlobal: map[string]float64{}}
	scope := g.On(0).Slave().Metrics().Scope("bsp")
	e.metrics = engineMetrics{
		scope:        scope,
		supersteps:   scope.Counter("supersteps"),
		msgsSent:     scope.Counter("messages_sent"),
		msgsWire:     scope.Counter("messages_wire"),
		msgsCombined: scope.Counter("messages_combined"),
		activeVerts:  scope.Gauge("active_vertices"),
		superstepNs:  scope.Histogram("superstep_ns"),
	}
	for i := 0; i < g.Machines(); i++ {
		m := g.On(i)
		w := &worker{
			e:         e,
			m:         m,
			id:        m.Slave().ID(),
			vertexIDs: m.LocalNodeIDs(),
			values:    make(map[uint64]float64),
			active:    make(map[uint64]bool),
			inbox:     newInbox(),
			next:      newInbox(),
			aggLocal:  map[string]float64{},
			doneFrom:  make(map[msg.MachineID]bool),
		}
		w.doneCond = sync.NewCond(&w.doneMu)
		e.totalVertices += len(w.vertexIDs)
		node := m.Slave().Node()
		node.HandleAsync(protoVertexMsg, w.onVertexMsg)
		node.HandleAsync(protoHubMsg, w.onHubMsg)
		node.HandleAsync(protoStepDone, w.onStepDone)
		node.HandleSync(protoActionScript, w.onActionScript)
		e.workers = append(e.workers, w)
	}
	return e
}

// Run executes the program to convergence (all vertices halted and no
// messages in flight) or MaxSupersteps, returning the number of
// supersteps executed.
func (e *Engine) Run(p Program) (int, error) {
	e.initVertices(p)
	if e.opts.HubThreshold > 0 {
		e.setupHubSubscriptions()
	}
	step := 0
	for ; step < e.opts.MaxSupersteps; step++ {
		active, sent, err := e.superstep(p, step)
		if err != nil {
			return step, err
		}
		if e.opts.OnSuperstep != nil {
			e.opts.OnSuperstep(step, active, sent)
		}
		if e.opts.CheckpointEvery > 0 && (step+1)%e.opts.CheckpointEvery == 0 {
			if err := e.Checkpoint(fmt.Sprintf("%s/step-%d", e.checkpointName(), step)); err != nil {
				return step, err
			}
		}
		if active == 0 && sent == 0 {
			return step + 1, nil
		}
	}
	return step, nil
}

func (e *Engine) checkpointName() string {
	if e.opts.CheckpointName != "" {
		return "bsp/" + e.opts.CheckpointName
	}
	return "bsp/checkpoint"
}

// initVertices runs Program.Init on every vertex in parallel.
func (e *Engine) initVertices(p Program) {
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for _, id := range w.vertexIDs {
				deg, _ := w.m.OutDegree(id)
				val, active := p.Init(id, deg)
				w.values[id] = val
				w.active[id] = active
			}
		}(w)
	}
	wg.Wait()
}

// Values returns a merged snapshot of all vertex values. Intended for
// result collection after Run.
func (e *Engine) Values() map[uint64]float64 {
	out := make(map[uint64]float64, e.totalVertices)
	for _, w := range e.workers {
		for id, v := range w.values {
			out[id] = v
		}
	}
	return out
}

// Value returns one vertex's value.
func (e *Engine) Value(id uint64) (float64, bool) {
	for _, w := range e.workers {
		if v, ok := w.values[id]; ok {
			return v, true
		}
	}
	return 0, false
}

// WireMessages returns the cumulative number of messages that actually
// crossed the wire (hub-buffered fan-outs count once). The hub ablation
// benchmark compares this against logical messages.
func (e *Engine) WireMessages() int64 {
	var total int64
	for _, w := range e.workers {
		total += w.sentWire.Load()
	}
	return total
}

// superstep drives one synchronized superstep across all machines.
func (e *Engine) superstep(p Program, step int) (int64, int64, error) {
	span := e.metrics.scope.StartSpan("superstep")
	defer span.End()
	// Phase 1: rotate inboxes (prepared by the previous step).
	for _, w := range e.workers {
		w.inbox, w.next = w.next, newInbox()
		w.step = step
		w.sentTotal.Store(0)
	}
	// Phase 2: compute all machines in parallel.
	compute := span.Child("compute")
	var wg sync.WaitGroup
	errCh := make(chan error, len(e.workers))
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if err := w.computePhase(p, step); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	compute.End()
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	// Phase 3: barrier — wait for all markers on every machine.
	barrier := span.Child("barrier")
	for _, w := range e.workers {
		w.waitForMarkers(len(e.workers) - 1)
	}
	barrier.End()
	// Phase 4: reduce aggregators and counters on the coordinator.
	agg := map[string]float64{}
	var active, sent int64
	for _, w := range e.workers {
		for k, v := range w.aggLocal {
			agg[k] += v
		}
		w.aggLocal = map[string]float64{}
		for id, a := range w.active {
			if a || len(w.next.get(id)) > 0 {
				active++
			}
		}
		sent += w.sentTotal.Load()
		wire := w.sentWire.Load()
		e.metrics.msgsWire.Add(wire - w.lastWire.Swap(wire))
		comb := w.combined.Load()
		e.metrics.msgsCombined.Add(comb - w.lastComb.Swap(comb))
	}
	e.metrics.supersteps.Inc()
	e.metrics.msgsSent.Add(sent)
	e.metrics.activeVerts.Set(active)
	e.aggGlobal = agg
	return active, sent, nil
}

// computePhase runs Compute over this machine's vertices, then flushes
// and broadcasts the end-of-step marker.
func (w *worker) computePhase(p Program, step int) error {
	node := w.m.Slave().Node()
	// Shard vertices across a small pool: vertex computation is
	// embarrassingly parallel within a machine.
	workers := runtime.NumCPU() / len(w.e.workers)
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var aggMu sync.Mutex
	shard := (len(w.vertexIDs) + workers - 1) / workers
	for s := 0; s < len(w.vertexIDs); s += shard {
		endIdx := s + shard
		if endIdx > len(w.vertexIDs) {
			endIdx = len(w.vertexIDs)
		}
		wg.Add(1)
		go func(ids []uint64) {
			defer wg.Done()
			ctx := &Context{w: w, step: step, agg: map[string]float64{}}
			for _, id := range ids {
				msgs := w.inbox.get(id)
				if !w.active[id] && len(msgs) == 0 {
					continue
				}
				ctx.self = id
				newVal, halt := p.Compute(ctx, id, w.values[id], msgs)
				w.values[id] = newVal
				w.active[id] = !halt
			}
			aggMu.Lock()
			for k, v := range ctx.agg {
				w.aggLocal[k] += v
			}
			aggMu.Unlock()
		}(w.vertexIDs[s:endIdx])
	}
	wg.Wait()
	if err := node.Flush(); err != nil && !errors.Is(err, msg.ErrUnreachable) {
		return err
	}
	// Broadcast the end-of-step marker; FIFO ordering places it after all
	// vertex messages from this machine.
	for _, other := range w.e.workers {
		if other.id != w.id {
			node.Send(other.id, protoStepDone, []byte{byte(step)})
		}
	}
	return node.Flush()
}

// waitForMarkers blocks until `want` peers have signalled end-of-step.
func (w *worker) waitForMarkers(want int) {
	w.doneMu.Lock()
	for len(w.doneFrom) < want {
		w.doneCond.Wait()
	}
	w.doneFrom = make(map[msg.MachineID]bool)
	w.doneMu.Unlock()
}

func (w *worker) onStepDone(from msg.MachineID, _ []byte) {
	w.doneMu.Lock()
	w.doneFrom[from] = true
	w.doneCond.Broadcast()
	w.doneMu.Unlock()
}

// send routes one message; local destinations bypass the wire.
func (w *worker) send(src, dst uint64, m float64) {
	w.sentTotal.Add(1)
	owner := w.m.Slave().Owner(dst)
	if owner == w.id {
		w.deliverLocal(dst, m)
		return
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], dst)
	binary.LittleEndian.PutUint64(buf[8:], mathFloat64bits(m))
	w.sentWire.Add(1)
	w.m.Slave().Node().Send(owner, protoVertexMsg, buf[:])
}

// sendToAllOut broadcasts along out-edges with hub-aware deduplication.
func (w *worker) sendToAllOut(src uint64, m float64) {
	subs := w.hubSubscribers[src]
	subscribed := w.hubSubSet[src]
	// One wire message per subscribed machine.
	if len(subs) > 0 {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[0:], src)
		binary.LittleEndian.PutUint64(buf[8:], mathFloat64bits(m))
		for _, dstMachine := range subs {
			w.sentWire.Add(1)
			w.m.Slave().Node().Send(dstMachine, protoHubMsg, buf[:])
		}
	}
	w.m.ForEachOutlink(src, func(dst uint64) bool {
		owner := w.m.Slave().Owner(dst)
		if subscribed != nil && subscribed[owner] {
			w.sentTotal.Add(1) // logical message, carried by the hub copy
			return true
		}
		w.send(src, dst, m)
		return true
	})
}

// deliverLocal appends m to the next-step inbox, combining when enabled.
func (w *worker) deliverLocal(dst uint64, m float64) {
	shard := dst % inboxShards
	mu := &w.nextMu[shard]
	mu.Lock()
	if w.e.opts.Combine != nil {
		if prev, ok := w.next[shard][dst]; ok && len(prev) == 1 {
			prev[0] = w.e.opts.Combine(prev[0], m)
			mu.Unlock()
			w.combined.Add(1)
			return
		}
	}
	w.next[shard][dst] = append(w.next[shard][dst], m)
	mu.Unlock()
}

func (w *worker) onVertexMsg(_ msg.MachineID, b []byte) {
	if len(b) != 16 {
		return
	}
	dst := binary.LittleEndian.Uint64(b[0:])
	m := mathFloat64frombits(binary.LittleEndian.Uint64(b[8:]))
	w.deliverLocal(dst, m)
}

// onHubMsg fans a hub vertex's broadcast out to all local targets.
func (w *worker) onHubMsg(_ msg.MachineID, b []byte) {
	if len(b) != 16 {
		return
	}
	src := binary.LittleEndian.Uint64(b[0:])
	m := mathFloat64frombits(binary.LittleEndian.Uint64(b[8:]))
	for _, dst := range w.hubSources[src] {
		w.deliverLocal(dst, m)
	}
}

// setupHubSubscriptions implements the §5.4 action-script exchange.
func (e *Engine) setupHubSubscriptions() {
	for _, w := range e.workers {
		w.hubSources = make(map[uint64][]uint64)
		w.hubSubscribers = make(map[uint64][]msg.MachineID)
		w.hubSubSet = make(map[uint64]map[msg.MachineID]bool)
	}
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			// Count local targets per remote source using in-links.
			counts := make(map[uint64][]uint64)
			for _, id := range w.vertexIDs {
				w.m.ForEachInlink(id, func(src uint64) bool {
					if w.m.Slave().Owner(src) != w.id {
						counts[src] = append(counts[src], id)
					}
					return true
				})
			}
			// Subscribe to hubs via action scripts grouped by owner.
			perOwner := make(map[msg.MachineID][]uint64)
			for src, targets := range counts {
				if len(targets) >= e.opts.HubThreshold {
					w.hubSources[src] = targets
					perOwner[w.m.Slave().Owner(src)] = append(perOwner[w.m.Slave().Owner(src)], src)
				}
			}
			for owner, hubs := range perOwner {
				script := make([]byte, 8*len(hubs))
				for i, h := range hubs {
					binary.LittleEndian.PutUint64(script[8*i:], h)
				}
				w.m.Slave().Node().Call(owner, protoActionScript, script)
			}
		}(w)
	}
	wg.Wait()
}

// onActionScript records a peer's hub subscriptions ("each machine merges
// the action scripts it receives from other machines", §5.4).
func (w *worker) onActionScript(from msg.MachineID, script []byte) ([]byte, error) {
	w.doneMu.Lock() // reuse as a small setup lock
	defer w.doneMu.Unlock()
	for off := 0; off+8 <= len(script); off += 8 {
		hub := binary.LittleEndian.Uint64(script[off:])
		if w.hubSubSet[hub] == nil {
			w.hubSubSet[hub] = make(map[msg.MachineID]bool)
		}
		if !w.hubSubSet[hub][from] {
			w.hubSubSet[hub][from] = true
			w.hubSubscribers[hub] = append(w.hubSubscribers[hub], from)
		}
	}
	return nil, nil
}

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
