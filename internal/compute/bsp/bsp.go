// Package bsp implements Trinity's vertex-centric offline computation
// engine (paper §5.3): synchronous supersteps in the Pregel style, with
// the restrictive-model optimizations of §5.4.
//
// In the restrictive model a vertex exchanges messages only with a fixed
// set of vertices (its neighbors), which makes the communication pattern
// predictable. The engine exploits this with two §5.4 mechanisms:
//
//   - Message combining: messages to the same destination vertex are
//     merged on arrival when the program provides a Combine function.
//
//   - Hub-vertex buffering with action scripts: before the first
//     superstep, each machine reads the remote side of its partition
//     view's bipartite split, finds remote source vertices that feed many
//     local targets (hubs), and sends the hub's owner an action script
//     subscribing to that hub. During execution, a hub's broadcast value
//     crosses the wire once per subscribed machine instead of once per
//     edge; the receiving machine fans it out locally. For a scale-free
//     graph, "even if we buffer messages from just 1% hub vertices, we
//     have addressed 72.8% of message needs".
//
// All per-vertex state is dense: the engine acquires each machine's
// partition view (internal/graph/view) at construction and indexes
// values, activity and inboxes by the view's dense local index. Vertex
// iteration and edge expansion walk the view's CSR arenas; cell storage
// is not touched again after the snapshot is built.
//
// Supersteps end with a marker-based barrier: per-sender FIFO ordering of
// the transport guarantees that a StepDone marker arrives after all of the
// sender's vertex messages.
package bsp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"trinity/internal/graph"
	"trinity/internal/graph/view"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// inboxShards is the stripe count of the per-machine inbox locks.
const inboxShards = 64

// Engine protocol IDs (below tsl.ProtoUserBase, above the graph range).
const (
	protoVertexMsg msg.ProtocolID = 0x0301 + iota
	protoHubMsg
	protoStepDone
	protoActionScript
)

// Message is the vertex-to-vertex message type: a 64-bit value, matching
// the paper's workloads (ranks, levels, distances, component labels).
type Message = float64

// Program is a vertex program in the restrictive vertex-centric model.
// Vertex values are float64 (sufficient for the paper's workloads:
// PageRank ranks, BFS levels, SSSP distances, WCC component IDs); richer
// state belongs in cells via the TSL accessors.
type Program interface {
	// Init returns the initial value of a vertex and whether it starts
	// active.
	Init(id uint64, outDegree int) (val float64, active bool)
	// Compute processes the vertex for one superstep. It may send
	// messages through ctx and returns the new value and whether the
	// vertex votes to halt. Compute is invoked for a vertex when it is
	// active or has pending messages.
	Compute(ctx *Context, id uint64, val float64, msgs []float64) (newVal float64, halt bool)
}

// Combiner optionally merges two messages addressed to the same vertex
// (e.g. sum for PageRank, min for SSSP). Nil disables combining.
type Combiner func(a, b float64) float64

// Options configures a run.
type Options struct {
	// MaxSupersteps bounds the run. Zero means 1<<30.
	MaxSupersteps int
	// Combine merges messages to the same destination vertex.
	Combine Combiner
	// HubThreshold enables hub-vertex buffering: a remote source feeding
	// at least this many local targets is subscribed via an action
	// script. Zero disables the optimization.
	HubThreshold int
	// CheckpointEvery writes vertex values to TFS every k supersteps
	// ("for BSP based synchronous computation, we make check points every
	// a few supersteps", §6.2). Zero disables checkpointing.
	CheckpointEvery int
	// CheckpointName names the checkpoint files on TFS.
	CheckpointName string
	// OnSuperstep, if non-nil, observes (superstep, active, sent) after
	// every barrier.
	OnSuperstep func(step int, active, sent int64)
}

// Context carries per-superstep operations for the vertices of one
// compute goroutine. It is not safe to share across goroutines.
type Context struct {
	w       *worker
	self    uint64
	selfIdx int // dense local index of self in the partition view
	step    int
	agg     map[string]float64
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.step }

// Send delivers m to vertex dst at the next superstep.
func (c *Context) Send(dst uint64, m float64) {
	c.w.send(dst, m)
}

// SendToAllOut broadcasts m along all out-edges — the restrictive-model
// pattern ("Outlinks.Foreach"). This path is hub-optimized: if remote
// machines have subscribed to this vertex, they receive one copy each.
func (c *Context) SendToAllOut(m float64) {
	c.w.sendToAllOut(c.selfIdx, c.self, m)
}

// ForEachOut streams the current vertex's out-neighbors from the
// partition view's CSR arena.
func (c *Context) ForEachOut(fn func(dst uint64) bool) {
	for _, dst := range c.w.pv.Out(c.selfIdx) {
		if !fn(dst) {
			return
		}
	}
}

// ForEachOutEdge streams the current vertex's out-edges with weights
// (weight 1 when the graph is unweighted), for SSSP-style programs.
func (c *Context) ForEachOutEdge(fn func(dst uint64, w int64) bool) {
	out := c.w.pv.Out(c.selfIdx)
	wts := c.w.pv.OutWeights(c.selfIdx)
	for i, dst := range out {
		w := int64(1)
		if wts != nil {
			w = wts[i]
		}
		if !fn(dst, w) {
			return
		}
	}
}

// OutDegree returns the current vertex's out-degree.
func (c *Context) OutDegree() int {
	return c.w.pv.OutDegree(c.selfIdx)
}

// Aggregate adds v into the named global aggregator; the reduced sum is
// visible to all vertices at the next superstep via ctx.Aggregated.
func (c *Context) Aggregate(name string, v float64) {
	c.agg[name] += v
}

// Aggregated returns the global sum of the named aggregator from the
// previous superstep.
func (c *Context) Aggregated(name string) float64 {
	return c.w.e.aggGlobal[name]
}

// NumVertices returns the global vertex count.
func (c *Context) NumVertices() int { return c.w.e.totalVertices }

// Engine runs vertex programs over a distributed graph. One worker is
// attached to every machine; Run drives them through synchronized
// supersteps with machine 0 acting as coordinator.
type Engine struct {
	g       *graph.Graph
	opts    Options
	workers []*worker
	prepErr error // partition-view acquisition failure, surfaced by Run

	totalVertices int
	aggGlobal     map[string]float64

	metrics engineMetrics
}

// engineMetrics are the engine's registry-backed counters, created
// eagerly at construction (scope "bsp" on the cloud's registry) so a
// snapshot lists them even before the first Run. Counters are cumulative
// across runs sharing one cloud; the per-step numbers the paper tables
// need still flow through Options.OnSuperstep.
type engineMetrics struct {
	scope         *obs.Scope
	supersteps    *obs.Counter
	msgsSent      *obs.Counter // logical vertex messages
	msgsWire      *obs.Counter // messages that crossed the wire
	msgsCombined  *obs.Counter // messages merged by the combiner
	msgsDropped   *obs.Counter // messages to vertices absent from the snapshot
	hubRetries    *obs.Counter // action-script calls that needed a retry
	hubFailures   *obs.Counter // action-script subscriptions abandoned after retry
	runsCancelled *obs.Counter // Run calls that returned a context error
	activeVerts   *obs.Gauge
	superstepNs   *obs.Histogram
}

// worker is the per-machine execution state. Vertex state is dense,
// indexed by the partition view's local index.
type worker struct {
	e  *Engine
	m  *graph.Machine
	id msg.MachineID
	pv *view.View

	values []float64
	active []bool

	// Inboxes are dense per-vertex message lists; writes stripe over 64
	// locks by local index so concurrent deliveries do not contend on one
	// lock.
	inbox  [][]float64 // messages for the CURRENT superstep
	nextMu [inboxShards]sync.Mutex
	next   [][]float64

	// Hub optimization state.
	hubSources     map[uint64][]int32         // remote hub -> dense local targets
	hubSubscribers map[uint64][]msg.MachineID // local hub -> subscribed machines
	hubSubSet      map[uint64]map[msg.MachineID]bool

	aggLocal map[string]float64

	sentWire  atomic.Int64 // messages that crossed the wire (cumulative)
	sentTotal atomic.Int64 // logical messages this step
	combined  atomic.Int64 // combiner merges (cumulative)
	lastWire  atomic.Int64 // sentWire at the end of the previous step
	lastComb  atomic.Int64 // combined at the end of the previous step

	doneMu   sync.Mutex
	doneFrom map[msg.MachineID]bool
	doneCond *sync.Cond
	step     int
}

// New builds an engine over the graph. The graph must be fully loaded:
// each machine's partition view is acquired now, and all per-vertex state
// is dense against that snapshot. A view acquisition failure (e.g. a
// corrupt cell) is reported by the first Run call.
func New(g *graph.Graph, opts Options) *Engine {
	if opts.MaxSupersteps <= 0 {
		opts.MaxSupersteps = 1 << 30
	}
	e := &Engine{g: g, opts: opts, aggGlobal: map[string]float64{}}
	scope := g.On(0).Slave().Metrics().Scope("bsp")
	e.metrics = engineMetrics{
		scope:         scope,
		supersteps:    scope.Counter("supersteps"),
		msgsSent:      scope.Counter("messages_sent"),
		msgsWire:      scope.Counter("messages_wire"),
		msgsCombined:  scope.Counter("messages_combined"),
		msgsDropped:   scope.Counter("messages_dropped"),
		hubRetries:    scope.Counter("hub_script_retries"),
		hubFailures:   scope.Counter("hub_script_failures"),
		runsCancelled: scope.Counter("runs_cancelled"),
		activeVerts:   scope.Gauge("active_vertices"),
		superstepNs:   scope.Histogram("superstep_ns"),
	}
	for i := 0; i < g.Machines(); i++ {
		m := g.On(i)
		pv, err := view.Acquire(m)
		if err != nil {
			e.prepErr = fmt.Errorf("bsp: machine %d partition view: %w", i, err)
			return e
		}
		n := pv.NumVertices()
		w := &worker{
			e:        e,
			m:        m,
			id:       m.Slave().ID(),
			pv:       pv,
			values:   make([]float64, n),
			active:   make([]bool, n),
			inbox:    make([][]float64, n),
			next:     make([][]float64, n),
			aggLocal: map[string]float64{},
			doneFrom: make(map[msg.MachineID]bool),
		}
		w.doneCond = sync.NewCond(&w.doneMu)
		e.totalVertices += n
		node := m.Slave().Node()
		node.HandleAsync(protoVertexMsg, w.onVertexMsg)
		node.HandleAsync(protoHubMsg, w.onHubMsg)
		node.HandleAsync(protoStepDone, w.onStepDone)
		node.HandleSync(protoActionScript, w.onActionScript)
		e.workers = append(e.workers, w)
	}
	return e
}

// Run executes the program to convergence (all vertices halted and no
// messages in flight) or MaxSupersteps, returning the number of
// supersteps executed.
//
// Cancellation is observed at superstep granularity plus compute-phase
// poll points: when ctx fires, workers stop computing within ~1024
// vertices, the marker barrier unblocks, and Run returns ctx.Err()
// without checkpointing the half-finished step — on-disk checkpoints
// only ever hold complete supersteps. The engine is not reusable after
// a cancelled run (matching every other error return).
func (e *Engine) Run(ctx context.Context, p Program) (int, error) {
	if e.prepErr != nil {
		return 0, e.prepErr
	}
	// The barrier watcher: workers parked on their marker conds cannot
	// select on ctx, so one goroutine turns ctx.Done into a broadcast.
	// Waiters re-check ctx.Err in their loop condition and bail out.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, w := range e.workers {
				w.doneMu.Lock()
				w.doneCond.Broadcast()
				w.doneMu.Unlock()
			}
		case <-watchDone:
		}
	}()
	e.initVertices(p)
	if e.opts.HubThreshold > 0 {
		e.setupHubSubscriptions(ctx)
	}
	step := 0
	for ; step < e.opts.MaxSupersteps; step++ {
		if err := ctx.Err(); err != nil {
			e.metrics.runsCancelled.Inc()
			return step, err
		}
		active, sent, err := e.superstep(ctx, p, step)
		if err != nil {
			if ctx.Err() != nil {
				e.metrics.runsCancelled.Inc()
			}
			return step, err
		}
		if e.opts.OnSuperstep != nil {
			e.opts.OnSuperstep(step, active, sent)
		}
		if e.opts.CheckpointEvery > 0 && (step+1)%e.opts.CheckpointEvery == 0 {
			if err := e.Checkpoint(fmt.Sprintf("%s/step-%d", e.checkpointName(), step)); err != nil {
				return step, err
			}
		}
		if active == 0 && sent == 0 {
			return step + 1, nil
		}
	}
	return step, nil
}

func (e *Engine) checkpointName() string {
	if e.opts.CheckpointName != "" {
		return "bsp/" + e.opts.CheckpointName
	}
	return "bsp/checkpoint"
}

// initVertices runs Program.Init on every vertex in parallel. Degrees
// come from the partition view, so Init can no longer silently observe a
// degree-0 fallback on a decode error: a corrupt cell fails view
// acquisition in New instead.
func (e *Engine) initVertices(p Program) {
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for idx, id := range w.pv.IDs() {
				val, active := p.Init(id, w.pv.OutDegree(idx))
				w.values[idx] = val
				w.active[idx] = active
			}
		}(w)
	}
	wg.Wait()
}

// Values returns a merged snapshot of all vertex values. Intended for
// result collection after Run.
func (e *Engine) Values() map[uint64]float64 {
	out := make(map[uint64]float64, e.totalVertices)
	for _, w := range e.workers {
		for idx, id := range w.pv.IDs() {
			out[id] = w.values[idx]
		}
	}
	return out
}

// Value returns one vertex's value.
func (e *Engine) Value(id uint64) (float64, bool) {
	for _, w := range e.workers {
		if idx, ok := w.pv.IndexOf(id); ok {
			return w.values[idx], true
		}
	}
	return 0, false
}

// WireMessages returns the cumulative number of messages that actually
// crossed the wire (hub-buffered fan-outs count once). The hub ablation
// benchmark compares this against logical messages.
func (e *Engine) WireMessages() int64 {
	var total int64
	for _, w := range e.workers {
		total += w.sentWire.Load()
	}
	return total
}

// superstep drives one synchronized superstep across all machines.
func (e *Engine) superstep(ctx context.Context, p Program, step int) (int64, int64, error) {
	span := e.metrics.scope.StartSpan("superstep")
	defer span.End()
	// Phase 1: rotate inboxes (prepared by the previous step).
	for _, w := range e.workers {
		w.inbox, w.next = w.next, make([][]float64, w.pv.NumVertices())
		w.step = step
		w.sentTotal.Store(0)
	}
	// Phase 2: compute all machines in parallel.
	compute := span.Child("compute")
	var wg sync.WaitGroup
	errCh := make(chan error, len(e.workers))
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if err := w.computePhase(ctx, p, step); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	compute.End()
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	// Phase 3: barrier — wait for all markers on every machine. The wait
	// is ctx-aware: a peer that was cancelled (or whose markers a chaotic
	// transport ate) must not park this run forever.
	barrier := span.Child("barrier")
	for _, w := range e.workers {
		if err := w.waitForMarkers(ctx, len(e.workers)-1); err != nil {
			barrier.End()
			return 0, 0, err
		}
	}
	barrier.End()
	// Phase 4: reduce aggregators and counters on the coordinator.
	agg := map[string]float64{}
	var active, sent int64
	for _, w := range e.workers {
		for k, v := range w.aggLocal {
			agg[k] += v
		}
		w.aggLocal = map[string]float64{}
		for idx := range w.active {
			if w.active[idx] || len(w.next[idx]) > 0 {
				active++
			}
		}
		sent += w.sentTotal.Load()
		wire := w.sentWire.Load()
		e.metrics.msgsWire.Add(wire - w.lastWire.Swap(wire))
		comb := w.combined.Load()
		e.metrics.msgsCombined.Add(comb - w.lastComb.Swap(comb))
	}
	e.metrics.supersteps.Inc()
	e.metrics.msgsSent.Add(sent)
	e.metrics.activeVerts.Set(active)
	e.aggGlobal = agg
	return active, sent, nil
}

// computePhase runs Compute over this machine's vertices, then flushes
// and broadcasts the end-of-step marker. Cancellation is polled every
// 1024 vertices; a cancelled phase returns ctx.Err() before sending its
// markers (the whole superstep is abandoned, so no peer will wait for
// them — the barrier itself is ctx-aware).
func (w *worker) computePhase(ctx context.Context, p Program, step int) error {
	node := w.m.Slave().Node()
	n := w.pv.NumVertices()
	// Shard vertices across a small pool: vertex computation is
	// embarrassingly parallel within a machine.
	workers := runtime.NumCPU() / len(w.e.workers)
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var aggMu sync.Mutex
	ids := w.pv.IDs()
	shard := (n + workers - 1) / workers
	for s := 0; s < n; s += shard {
		endIdx := s + shard
		if endIdx > n {
			endIdx = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			vctx := &Context{w: w, step: step, agg: map[string]float64{}}
			for idx := lo; idx < hi; idx++ {
				if idx&1023 == 0 && ctx.Err() != nil {
					break
				}
				msgs := w.inbox[idx]
				if !w.active[idx] && len(msgs) == 0 {
					continue
				}
				vctx.self = ids[idx]
				vctx.selfIdx = idx
				newVal, halt := p.Compute(vctx, vctx.self, w.values[idx], msgs)
				w.values[idx] = newVal
				w.active[idx] = !halt
			}
			aggMu.Lock()
			for k, v := range vctx.agg {
				w.aggLocal[k] += v
			}
			aggMu.Unlock()
		}(s, endIdx)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := node.Flush(); err != nil && !errors.Is(err, msg.ErrUnreachable) {
		return err
	}
	// Broadcast the end-of-step marker; FIFO ordering places it after all
	// vertex messages from this machine.
	for _, other := range w.e.workers {
		if other.id != w.id {
			node.Send(other.id, protoStepDone, []byte{byte(step)})
		}
	}
	return node.Flush()
}

// waitForMarkers blocks until `want` peers have signalled end-of-step,
// or ctx fires (Run's watcher goroutine broadcasts the cond on ctx.Done
// so parked waiters re-check).
func (w *worker) waitForMarkers(ctx context.Context, want int) error {
	w.doneMu.Lock()
	for len(w.doneFrom) < want && ctx.Err() == nil {
		w.doneCond.Wait()
	}
	err := ctx.Err()
	w.doneFrom = make(map[msg.MachineID]bool)
	w.doneMu.Unlock()
	return err
}

func (w *worker) onStepDone(from msg.MachineID, _ []byte) {
	w.doneMu.Lock()
	w.doneFrom[from] = true
	w.doneCond.Broadcast()
	w.doneMu.Unlock()
}

// send routes one message; local destinations bypass the wire.
func (w *worker) send(dst uint64, m float64) {
	w.sentTotal.Add(1)
	owner := w.m.Slave().Owner(dst)
	if owner == w.id {
		if idx, ok := w.pv.IndexOf(dst); ok {
			w.deliverLocal(idx, m)
		} else {
			// Locally-owned id absent from the snapshot: the vertex did
			// not exist when the engine was built. Count, don't crash.
			w.e.metrics.msgsDropped.Inc()
		}
		return
	}
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], dst)
	binary.LittleEndian.PutUint64(buf[8:], mathFloat64bits(m))
	w.sentWire.Add(1)
	w.m.Slave().Node().Send(owner, protoVertexMsg, buf[:])
}

// sendToAllOut broadcasts along out-edges with hub-aware deduplication.
func (w *worker) sendToAllOut(srcIdx int, srcID uint64, m float64) {
	subs := w.hubSubscribers[srcID]
	subscribed := w.hubSubSet[srcID]
	// One wire message per subscribed machine.
	if len(subs) > 0 {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[0:], srcID)
		binary.LittleEndian.PutUint64(buf[8:], mathFloat64bits(m))
		for _, dstMachine := range subs {
			w.sentWire.Add(1)
			w.m.Slave().Node().Send(dstMachine, protoHubMsg, buf[:])
		}
	}
	for _, dst := range w.pv.Out(srcIdx) {
		owner := w.m.Slave().Owner(dst)
		if subscribed != nil && subscribed[owner] {
			w.sentTotal.Add(1) // logical message, carried by the hub copy
			continue
		}
		w.send(dst, m)
	}
}

// deliverLocal appends m to the next-step inbox, combining when enabled.
func (w *worker) deliverLocal(idx int, m float64) {
	mu := &w.nextMu[idx%inboxShards]
	mu.Lock()
	if w.e.opts.Combine != nil {
		if prev := w.next[idx]; len(prev) == 1 {
			prev[0] = w.e.opts.Combine(prev[0], m)
			mu.Unlock()
			w.combined.Add(1)
			return
		}
	}
	w.next[idx] = append(w.next[idx], m)
	mu.Unlock()
}

func (w *worker) onVertexMsg(_ msg.MachineID, b []byte) {
	if len(b) != 16 {
		return
	}
	dst := binary.LittleEndian.Uint64(b[0:])
	m := mathFloat64frombits(binary.LittleEndian.Uint64(b[8:]))
	if idx, ok := w.pv.IndexOf(dst); ok {
		w.deliverLocal(idx, m)
	} else {
		w.e.metrics.msgsDropped.Inc()
	}
}

// onHubMsg fans a hub vertex's broadcast out to all local targets.
func (w *worker) onHubMsg(_ msg.MachineID, b []byte) {
	if len(b) != 16 {
		return
	}
	src := binary.LittleEndian.Uint64(b[0:])
	m := mathFloat64frombits(binary.LittleEndian.Uint64(b[8:]))
	for _, idx := range w.hubSources[src] {
		w.deliverLocal(int(idx), m)
	}
}

// setupHubSubscriptions implements the §5.4 action-script exchange. The
// remote/local bipartite split comes straight from the partition view;
// no in-link re-scan is needed.
func (e *Engine) setupHubSubscriptions(ctx context.Context) {
	for _, w := range e.workers {
		w.hubSources = make(map[uint64][]int32)
		w.hubSubscribers = make(map[uint64][]msg.MachineID)
		w.hubSubSet = make(map[uint64]map[msg.MachineID]bool)
	}
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			// Subscribe to hubs via action scripts grouped by owner.
			perOwner := make(map[msg.MachineID][]uint64)
			for _, rs := range w.pv.RemoteInSources() {
				if len(rs.Targets) >= e.opts.HubThreshold {
					w.hubSources[rs.ID] = rs.Targets
					owner := w.m.Slave().Owner(rs.ID)
					perOwner[owner] = append(perOwner[owner], rs.ID)
				}
			}
			node := w.m.Slave().Node()
			for owner, hubs := range perOwner {
				script := make([]byte, 8*len(hubs))
				for i, h := range hubs {
					binary.LittleEndian.PutUint64(script[8*i:], h)
				}
				if _, err := node.Call(ctx, owner, protoActionScript, script); err != nil {
					// Retry once; a transient transport fault must not
					// silently leave the hub owner unsubscribed while this
					// machine skips per-edge sends.
					e.metrics.hubRetries.Inc()
					if _, err = node.Call(ctx, owner, protoActionScript, script); err != nil {
						e.metrics.hubFailures.Inc()
						// Abandon the subscription: without the owner's
						// acknowledgement these hubs must fall back to
						// ordinary per-edge delivery.
						for _, h := range hubs {
							delete(w.hubSources, h)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// onActionScript records a peer's hub subscriptions ("each machine merges
// the action scripts it receives from other machines", §5.4).
func (w *worker) onActionScript(_ context.Context, from msg.MachineID, script []byte) ([]byte, error) {
	w.doneMu.Lock() // reuse as a small setup lock
	defer w.doneMu.Unlock()
	for off := 0; off+8 <= len(script); off += 8 {
		hub := binary.LittleEndian.Uint64(script[off:])
		if w.hubSubSet[hub] == nil {
			w.hubSubSet[hub] = make(map[msg.MachineID]bool)
		}
		if !w.hubSubSet[hub][from] {
			w.hubSubSet[hub][from] = true
			w.hubSubscribers[hub] = append(w.hubSubscribers[hub], from)
		}
	}
	return nil, nil
}

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
