package algo

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"trinity/internal/graph"
	"trinity/internal/graph/view"
	"trinity/internal/hash"
	"trinity/internal/msg"
)

// Subgraph matching protocols.
const (
	protoScanLabel   msg.ProtocolID = 0x0601 // find local vertices with a label
	protoFilterLabel msg.ProtocolID = 0x0602 // filter ids by label
)

// Pattern is a small labeled query graph. Patterns are generated from the
// data graph (as in the paper's evaluation, following Sun et al. [32]),
// which guarantees at least one embedding exists.
type Pattern struct {
	// Labels[i] is the required label of query vertex i.
	Labels []int64
	// Out[i] lists the query vertices that i has an edge to.
	Out [][]int
}

// Size returns the number of query vertices.
func (p *Pattern) Size() int { return len(p.Labels) }

// edges returns all (from, to) pairs.
func (p *Pattern) edges() [][2]int {
	var out [][2]int
	for u, vs := range p.Out {
		for _, v := range vs {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// QueryGenMode selects how benchmark queries are extracted from the data
// graph: following out-edges depth-first (DFS) or by random expansion
// (RANDOM) — the two methods of Figure 8(a).
type QueryGenMode int

// Query generation modes.
const (
	GenDFS QueryGenMode = iota
	GenRandom
)

// GenerateQuery extracts a `size`-vertex pattern from the data graph.
// The subgraph induced on the walked vertices becomes the pattern, so the
// pattern is guaranteed to have at least one embedding (the walk itself).
func GenerateQuery(g *graph.Graph, size int, mode QueryGenMode, seed uint64) (*Pattern, error) {
	rng := hash.NewRNG(seed)
	// The walk can cross machine boundaries, so snapshot every partition
	// up front; lookups then resolve against the owner's view.
	views := make([]*view.View, g.Machines())
	for i := range views {
		v, err := view.Acquire(g.On(i))
		if err != nil {
			return nil, err
		}
		views[i] = v
	}
	anchor := g.On(0).Slave()
	outOf := func(id uint64) []uint64 {
		v := views[int(anchor.Owner(id))]
		if idx, ok := v.IndexOf(id); ok {
			return v.Out(idx)
		}
		return nil
	}
	labelOf := func(id uint64) (int64, bool) {
		v := views[int(anchor.Owner(id))]
		if idx, ok := v.IndexOf(id); ok {
			return v.Label(idx), true
		}
		return 0, false
	}
	ids := views[0].IDs()
	if len(ids) == 0 {
		return nil, errors.New("algo: machine 0 has no vertices to seed a query")
	}
	// Walk until `size` distinct vertices are collected.
	var chosen []uint64
	inChosen := map[uint64]bool{}
	add := func(id uint64) {
		if !inChosen[id] {
			inChosen[id] = true
			chosen = append(chosen, id)
		}
	}
	for attempt := 0; attempt < 100 && len(chosen) < size; attempt++ {
		chosen = chosen[:0]
		for k := range inChosen {
			delete(inChosen, k)
		}
		add(ids[rng.Intn(len(ids))])
		for len(chosen) < size {
			var from uint64
			switch mode {
			case GenDFS:
				from = chosen[len(chosen)-1] // extend from the newest
			default:
				from = chosen[rng.Intn(len(chosen))] // extend from anywhere
			}
			out := outOf(from)
			if len(out) == 0 {
				break // dead end; retry with a fresh seed vertex
			}
			next := out[rng.Intn(len(out))]
			if inChosen[next] {
				// Try to find any unvisited neighbor before giving up.
				found := false
				for _, cand := range out {
					if !inChosen[cand] {
						next, found = cand, true
						break
					}
				}
				if !found {
					break
				}
			}
			add(next)
		}
	}
	if len(chosen) < size {
		return nil, fmt.Errorf("algo: could not grow a %d-vertex query", size)
	}
	// Induce the pattern on the chosen vertices.
	index := map[uint64]int{}
	for i, id := range chosen {
		index[id] = i
	}
	p := &Pattern{Labels: make([]int64, size), Out: make([][]int, size)}
	for i, id := range chosen {
		label, ok := labelOf(id)
		if !ok {
			return nil, fmt.Errorf("algo: walked vertex %d vanished from its partition view", id)
		}
		p.Labels[i] = label
		for _, dst := range outOf(id) {
			if j, ok := index[dst]; ok {
				p.Out[i] = append(p.Out[i], j)
			}
		}
	}
	return p, nil
}

// Matcher answers subgraph-matching queries over a distributed graph with
// no structural index: candidates come from parallel label scans, and the
// search explores the memory cloud's adjacency directly (§5.2's "new
// paradigm": fast random access plus parallelism instead of super-linear
// indexes).
type Matcher struct {
	g *graph.Graph
}

// NewMatcher installs matching protocols on every machine.
func NewMatcher(g *graph.Graph) *Matcher {
	mt := &Matcher{g: g}
	for i := 0; i < g.Machines(); i++ {
		m := g.On(i)
		mm := m
		node := m.Slave().Node()
		node.HandleSync(protoScanLabel, func(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
			return mt.scanLabelLocal(mm, req)
		})
		node.HandleSync(protoFilterLabel, func(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
			return mt.filterLabelLocal(mm, req)
		})
	}
	return mt
}

// Match finds embeddings of the pattern, stopping after `limit` (0 = all).
// An embedding maps query vertex i to data vertex result[i]; embeddings
// are injective.
func (mt *Matcher) Match(ctx context.Context, via int, p *Pattern, limit int) ([][]uint64, error) {
	return mt.MatchBudget(ctx, via, p, limit, 0)
}

// MatchBudget is Match with a step budget: the search aborts (returning
// whatever it has found) after maxSteps candidate extensions across all
// workers. Zero means no budget. The benchmark harness uses budgets so
// adversarial R-MAT hub structures cannot stall a sweep.
func (mt *Matcher) MatchBudget(ctx context.Context, via int, p *Pattern, limit, maxSteps int) ([][]uint64, error) {
	if p.Size() == 0 {
		return nil, nil
	}
	// Root: the query vertex with the most constraints (highest degree).
	root := rootOf(p)
	rootCands, err := mt.scanLabel(ctx, via, p.Labels[root])
	if err != nil {
		return nil, err
	}
	// The coordinator's partition view answers degree and adjacency for
	// locally-owned vertices in O(1); remote vertices fall back to the
	// wire protocols.
	pv, err := view.Acquire(mt.g.On(via))
	if err != nil {
		return nil, err
	}
	var (
		mu      sync.Mutex
		results [][]uint64
		firstEr error
	)
	var steps atomic.Int64
	stop := func() bool {
		if maxSteps > 0 && steps.Load() > int64(maxSteps) {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		return limit > 0 && len(results) >= limit
	}
	const workers = 8
	var wg sync.WaitGroup
	chunk := (len(rootCands) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	for s := 0; s < len(rootCands); s += chunk {
		e := s + chunk
		if e > len(rootCands) {
			e = len(rootCands)
		}
		wg.Add(1)
		go func(cands []uint64) {
			defer wg.Done()
			st := &searchState{
				mt: mt, ctx: ctx, via: via, p: p, pv: pv,
				assign:   make([]uint64, p.Size()),
				assigned: make([]bool, p.Size()),
				used:     map[uint64]bool{},
				cells:    map[uint64]*graph.Node{},
				steps:    &steps,
				maxSteps: maxSteps,
				emit: func(match []uint64) bool {
					mu.Lock()
					results = append(results, append([]uint64(nil), match...))
					full := limit > 0 && len(results) >= limit
					mu.Unlock()
					return !full
				},
			}
			for _, c := range cands {
				if stop() {
					return
				}
				st.assign[root] = c
				st.assigned[root] = true
				st.used[c] = true
				if err := st.extend(1); err != nil && !errors.Is(err, errStop) {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				delete(st.used, c)
				st.assigned[root] = false
			}
		}(rootCands[s:e])
	}
	wg.Wait()
	return results, firstEr
}

var errStop = errors.New("algo: match limit reached")

// rootOf picks the query vertex with the highest (undirected) degree.
func rootOf(p *Pattern) int {
	deg := make([]int, p.Size())
	for u, vs := range p.Out {
		deg[u] += len(vs)
		for _, v := range vs {
			deg[v]++
		}
	}
	root := 0
	for i, d := range deg {
		if d > deg[root] {
			root = i
		}
	}
	return root
}

// searchState is one worker's backtracking state.
type searchState struct {
	mt       *Matcher
	ctx      context.Context
	via      int
	p        *Pattern
	pv       *view.View // the via machine's partition snapshot
	assign   []uint64
	assigned []bool
	used     map[uint64]bool
	cells    map[uint64]*graph.Node // read-through cache of remote cells
	steps    *atomic.Int64
	maxSteps int
	emit     func([]uint64) bool
}

// fetchCell resolves a vertex that is not in the coordinator's partition
// view, going through the cell-fetch pipeline with a per-worker
// read-through cache. Backtracking consults the same remote anchor many
// times — adjacency expansion plus one edge probe per assigned neighbor —
// and a single cached cell answers all of them with one round trip, where
// the old wire protocols paid one call each.
func (st *searchState) fetchCell(id uint64) (*graph.Node, error) {
	if n, ok := st.cells[id]; ok {
		return n, nil
	}
	n, err := st.mt.g.On(st.via).GetNode(st.ctx, id)
	if err != nil {
		return nil, err
	}
	st.cells[id] = n
	return n, nil
}

// hasEdge checks the data edge u -> v against the partition view when u
// is local, or u's cached cell when it is remote.
func (st *searchState) hasEdge(u, v uint64) (bool, error) {
	var out []uint64
	if idx, ok := st.pv.IndexOf(u); ok {
		out = st.pv.Out(idx)
	} else {
		n, err := st.fetchCell(u)
		if errors.Is(err, graph.ErrNoNode) {
			return false, nil // dangling candidate: no cell, no edges
		}
		if err != nil {
			return false, err
		}
		out = n.Outlinks
	}
	for _, dst := range out {
		if dst == v {
			return true, nil
		}
	}
	return false, nil
}

// anchorEdge describes one way to derive candidates for query vertex q:
// from assigned vertex `from`, following a pattern edge forward
// (from -> q) or backward (q -> from).
type anchorEdge struct {
	q       int
	from    int
	forward bool
}

// extend assigns the next query vertex, chosen dynamically as the one
// with the SMALLEST candidate list among all pattern edges anchored at
// already-assigned vertices. Dynamic ordering is what keeps the search
// polite on skewed graphs: a hub's enormous adjacency list is never used
// as a candidate list when any assigned neighbor offers a shorter one.
func (st *searchState) extend(depth int) error {
	if st.maxSteps > 0 && st.steps.Add(1) > int64(st.maxSteps) {
		return errStop
	}
	if err := st.ctx.Err(); err != nil {
		return err
	}
	if depth == st.p.Size() {
		if !st.emit(st.assign) {
			return errStop
		}
		return nil
	}
	// Collect anchor edges into unassigned vertices.
	var anchors []anchorEdge
	for u, vs := range st.p.Out {
		for _, v := range vs {
			switch {
			case st.assigned[u] && !st.assigned[v]:
				anchors = append(anchors, anchorEdge{q: v, from: u, forward: true})
			case !st.assigned[u] && st.assigned[v]:
				anchors = append(anchors, anchorEdge{q: u, from: v, forward: false})
			}
		}
	}
	g := st.mt.g.On(st.via)
	var best *anchorEdge
	bestSize := int(^uint(0) >> 1)
	for i := range anchors {
		a := &anchors[i]
		anchor := st.assign[a.from]
		var size int
		if idx, ok := st.pv.IndexOf(anchor); ok {
			// Locally-owned anchor: degree is two array reads on the view.
			if a.forward {
				size = st.pv.OutDegree(idx)
			} else {
				size = st.pv.InDegree(idx)
			}
		} else {
			// Remote anchor: the wire degree protocol.
			var err error
			if a.forward {
				size, err = g.OutDegree(st.ctx, anchor)
			} else {
				size, err = g.InDegree(st.ctx, anchor)
			}
			if err != nil {
				return err
			}
		}
		if size < bestSize {
			best, bestSize = a, size
		}
	}
	var q int
	var cands []uint64
	var err error
	if best == nil {
		// Disconnected remainder: seed the next component by label scan.
		for i := range st.assigned {
			if !st.assigned[i] {
				q = i
				break
			}
		}
		cands, err = st.mt.scanLabel(st.ctx, st.via, st.p.Labels[q])
	} else {
		q = best.q
		anchor := st.assign[best.from]
		if idx, ok := st.pv.IndexOf(anchor); ok {
			// Local anchor: candidates alias the CSR arena, no copy.
			if best.forward {
				cands = st.pv.Out(idx)
			} else {
				cands = st.pv.In(idx)
			}
		} else if n, ferr := st.fetchCell(anchor); ferr != nil {
			err = ferr
		} else if best.forward {
			cands = n.Outlinks
		} else {
			cands = n.Inlinks
		}
	}
	if err != nil {
		return err
	}
	cands, err = st.mt.filterLabel(st.ctx, st.via, cands, st.p.Labels[q])
	if err != nil {
		return err
	}
	for _, c := range cands {
		if st.used[c] {
			continue
		}
		ok, err := st.checkEdges(q, c)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		st.assign[q] = c
		st.assigned[q] = true
		st.used[c] = true
		err = st.extend(depth + 1)
		delete(st.used, c)
		st.assigned[q] = false
		if err != nil {
			return err
		}
	}
	return nil
}

// checkEdges verifies every pattern edge between q (tentatively mapped to
// c) and already-assigned vertices.
func (st *searchState) checkEdges(q int, c uint64) (bool, error) {
	for _, v := range st.p.Out[q] {
		if v != q && st.assigned[v] {
			ok, err := st.hasEdge(c, st.assign[v])
			if err != nil || !ok {
				return false, err
			}
		}
	}
	for u, vs := range st.p.Out {
		if !st.assigned[u] || u == q {
			continue
		}
		for _, v := range vs {
			if v == q {
				ok, err := st.hasEdge(st.assign[u], c)
				if err != nil || !ok {
					return false, err
				}
			}
		}
	}
	return true, nil
}

// --- distributed primitives ---

// scanLabel collects all data vertices with the label, scanning every
// machine in parallel (no index).
func (mt *Matcher) scanLabel(ctx context.Context, via int, label int64) ([]uint64, error) {
	coord := mt.g.On(via)
	var req [8]byte
	binary.LittleEndian.PutUint64(req[:], uint64(label))
	type reply struct {
		ids []uint64
		err error
	}
	ch := make(chan reply, mt.g.Machines())
	for i := 0; i < mt.g.Machines(); i++ {
		target := mt.g.On(i).Slave().ID()
		go func(target msg.MachineID) {
			var resp []byte
			var err error
			if target == coord.Slave().ID() {
				resp, err = mt.scanLabelLocal(coord, req[:])
			} else {
				resp, err = coord.Slave().Node().Call(ctx, target, protoScanLabel, req[:])
			}
			if err != nil {
				ch <- reply{nil, err}
				return
			}
			ch <- reply{decodeIDs(resp), nil}
		}(target)
	}
	var all []uint64
	for i := 0; i < mt.g.Machines(); i++ {
		r := <-ch
		if r.err != nil {
			return nil, r.err
		}
		all = append(all, r.ids...)
	}
	return all, nil
}

func (mt *Matcher) scanLabelLocal(m *graph.Machine, req []byte) ([]byte, error) {
	if len(req) != 8 {
		return nil, errors.New("algo: bad scan request")
	}
	label := int64(binary.LittleEndian.Uint64(req))
	pv, err := view.Acquire(m)
	if err != nil {
		return nil, err
	}
	var ids []uint64
	for idx := 0; idx < pv.NumVertices(); idx++ {
		if pv.Label(idx) == label {
			ids = append(ids, pv.IDOf(idx))
		}
	}
	return encodeIDs(ids), nil
}

// filterLabel keeps the ids whose label matches, batching by owner.
func (mt *Matcher) filterLabel(ctx context.Context, via int, ids []uint64, label int64) ([]uint64, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	coord := mt.g.On(via)
	perOwner := map[msg.MachineID][]uint64{}
	for _, id := range ids {
		o := coord.Slave().Owner(id)
		perOwner[o] = append(perOwner[o], id)
	}
	var out []uint64
	for owner, batch := range perOwner {
		req := make([]byte, 8+8*len(batch))
		binary.LittleEndian.PutUint64(req, uint64(label))
		for i, id := range batch {
			binary.LittleEndian.PutUint64(req[8+8*i:], id)
		}
		var resp []byte
		var err error
		if owner == coord.Slave().ID() {
			resp, err = mt.filterLabelLocal(coord, req)
		} else {
			resp, err = coord.Slave().Node().Call(ctx, owner, protoFilterLabel, req)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, decodeIDs(resp)...)
	}
	return out, nil
}

func (mt *Matcher) filterLabelLocal(m *graph.Machine, req []byte) ([]byte, error) {
	if len(req) < 8 {
		return nil, errors.New("algo: bad filter request")
	}
	label := int64(binary.LittleEndian.Uint64(req))
	pv, err := view.Acquire(m)
	if err != nil {
		return nil, err
	}
	var keep []uint64
	for off := 8; off+8 <= len(req); off += 8 {
		id := binary.LittleEndian.Uint64(req[off:])
		if idx, ok := pv.IndexOf(id); ok && pv.Label(idx) == label {
			keep = append(keep, id)
		}
	}
	return encodeIDs(keep), nil
}

func encodeIDs(ids []uint64) []byte {
	out := make([]byte, 8*len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(out[8*i:], id)
	}
	return out
}

func decodeIDs(b []byte) []uint64 {
	ids := make([]uint64, 0, len(b)/8)
	for off := 0; off+8 <= len(b); off += 8 {
		ids = append(ids, binary.LittleEndian.Uint64(b[off:]))
	}
	return ids
}
