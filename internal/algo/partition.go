package algo

import (
	"fmt"

	"trinity/internal/graph"
	"trinity/internal/hash"
)

// Partitioning divides the vertex set into k balanced parts minimizing
// edge cut. The paper cites multi-level partitioning as an example of a
// sophisticated computation that vertex-centric systems cannot express
// but Trinity can run over the memory cloud (§1, §5.3: "Trinity can
// partition billion-node graphs within a few hours using a multi-level
// partitioning algorithm [6]").
type Partitioning struct {
	// Part maps each vertex to its part in [0, K).
	Part map[uint64]int
	// K is the number of parts.
	K int
	// EdgeCut is the number of edges crossing parts.
	EdgeCut int
}

// multilevel working representation: a compact undirected multigraph.
type mgraph struct {
	ids    []uint64       // coarse vertex -> representative original id
	weight []int          // coarse vertex weight (collapsed vertex count)
	adj    [][]medge      // undirected adjacency with edge weights
	fine   map[uint64]int // original id -> coarse vertex (finest level)
}

type medge struct {
	to int
	w  int
}

// Partition runs the multilevel algorithm over the distributed graph:
// gather a snapshot, coarsen by heavy-edge matching, grow k regions
// greedily on the coarsest graph, then uncoarsen with boundary
// refinement at every level.
func Partition(g *graph.Graph, k int, seed uint64) (*Partitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("algo: k must be >= 1, got %d", k)
	}
	adj, ids, err := gatherAdjacency(g, -1)
	if err != nil {
		return nil, err
	}
	return partitionAdjacency(adj, ids, k, seed)
}

// partitionAdjacency is the algorithm core, exposed for tests.
func partitionAdjacency(adjIn map[uint64][]uint64, ids []uint64, k int, seed uint64) (*Partitioning, error) {
	base := buildMGraph(adjIn, ids)
	rng := hash.NewRNG(seed)

	// Coarsening phase: heavy-edge matching until small or stuck.
	levels := []*mgraph{base}
	maps := [][]int{} // fine vertex -> coarse vertex per level
	cur := base
	for len(cur.ids) > 4*k && len(cur.ids) > 32 {
		next, mapping := coarsen(cur, rng)
		if len(next.ids) >= len(cur.ids) {
			break // matching made no progress
		}
		levels = append(levels, next)
		maps = append(maps, mapping)
		cur = next
	}

	// Initial partitioning on the coarsest graph: greedy region growing.
	part := growRegions(cur, k, rng)

	// Uncoarsening with refinement.
	refine(cur, part, k)
	for i := len(maps) - 1; i >= 0; i-- {
		finer := levels[i]
		mapping := maps[i]
		finePart := make([]int, len(finer.ids))
		for v := range finePart {
			finePart[v] = part[mapping[v]]
		}
		part = finePart
		refine(finer, part, k)
	}

	out := &Partitioning{Part: make(map[uint64]int, len(ids)), K: k}
	for v, id := range base.ids {
		out.Part[id] = part[v]
	}
	out.EdgeCut = cutOf(base, part)
	return out, nil
}

// buildMGraph converts a directed adjacency snapshot to the undirected
// weighted working form.
func buildMGraph(adj map[uint64][]uint64, ids []uint64) *mgraph {
	index := make(map[uint64]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	g := &mgraph{
		ids:    ids,
		weight: make([]int, len(ids)),
		adj:    make([][]medge, len(ids)),
		fine:   index,
	}
	for i := range g.weight {
		g.weight[i] = 1
	}
	// Merge parallel/reverse edges into undirected weighted edges.
	type key struct{ a, b int }
	merged := map[key]int{}
	for id, outs := range adj {
		u, ok := index[id]
		if !ok {
			continue
		}
		for _, dst := range outs {
			v, ok := index[dst]
			if !ok || u == v {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			merged[key{a, b}]++
		}
	}
	for e, w := range merged {
		g.adj[e.a] = append(g.adj[e.a], medge{e.b, w})
		g.adj[e.b] = append(g.adj[e.b], medge{e.a, w})
	}
	return g
}

// coarsen contracts a heavy-edge matching.
func coarsen(g *mgraph, rng *hash.RNG) (*mgraph, []int) {
	n := len(g.ids)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	visit := rng.Perm(n)
	for _, u := range visit {
		if match[u] != -1 {
			continue
		}
		best, bestW := -1, -1
		for _, e := range g.adj[u] {
			if match[e.to] == -1 && e.to != u && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
		} else {
			match[u] = u // unmatched: survives alone
		}
	}
	// Assign coarse ids.
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	var coarseIDs []uint64
	var coarseW []int
	next := 0
	for u := 0; u < n; u++ {
		if mapping[u] != -1 {
			continue
		}
		v := match[u]
		mapping[u] = next
		w := g.weight[u]
		if v != u && v >= 0 {
			mapping[v] = next
			w += g.weight[v]
		}
		coarseIDs = append(coarseIDs, g.ids[u])
		coarseW = append(coarseW, w)
		next++
	}
	// Build coarse adjacency.
	type key struct{ a, b int }
	merged := map[key]int{}
	for u := 0; u < n; u++ {
		cu := mapping[u]
		for _, e := range g.adj[u] {
			cv := mapping[e.to]
			if cu == cv {
				continue
			}
			a, b := cu, cv
			if a > b {
				a, b = b, a
			}
			merged[key{a, b}] += e.w
		}
	}
	cg := &mgraph{ids: coarseIDs, weight: coarseW, adj: make([][]medge, next)}
	for e, w := range merged {
		// Each undirected edge was counted from both endpoints.
		cg.adj[e.a] = append(cg.adj[e.a], medge{e.b, w / 2})
		cg.adj[e.b] = append(cg.adj[e.b], medge{e.a, w / 2})
	}
	return cg, mapping
}

// growRegions produces the initial partition by greedy BFS region
// growing: seed k regions at random vertices and expand the lightest
// region one frontier vertex at a time.
func growRegions(g *mgraph, k int, rng *hash.RNG) []int {
	n := len(g.ids)
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	if n == 0 {
		return part
	}
	loads := make([]int, k)
	frontiers := make([][]int, k)
	for p := 0; p < k; p++ {
		for tries := 0; tries < 4*n; tries++ {
			s := rng.Intn(n)
			if part[s] == -1 {
				part[s] = p
				loads[p] += g.weight[s]
				frontiers[p] = append(frontiers[p], s)
				break
			}
		}
	}
	assigned := 0
	for i := range part {
		if part[i] >= 0 {
			assigned++
		}
	}
	for assigned < n {
		// Expand the lightest region that still has a frontier.
		best := -1
		for p := 0; p < k; p++ {
			if len(frontiers[p]) == 0 {
				continue
			}
			if best == -1 || loads[p] < loads[best] {
				best = p
			}
		}
		if best == -1 {
			// All frontiers exhausted (disconnected remainder): seed the
			// lightest region at any unassigned vertex.
			light := 0
			for p := 1; p < k; p++ {
				if loads[p] < loads[light] {
					light = p
				}
			}
			for v := 0; v < n; v++ {
				if part[v] == -1 {
					part[v] = light
					loads[light] += g.weight[v]
					frontiers[light] = append(frontiers[light], v)
					assigned++
					break
				}
			}
			continue
		}
		// Pop one frontier vertex and claim an unassigned neighbor.
		f := frontiers[best]
		u := f[len(f)-1]
		claimed := false
		for _, e := range g.adj[u] {
			if part[e.to] == -1 {
				part[e.to] = best
				loads[best] += g.weight[e.to]
				frontiers[best] = append(frontiers[best], e.to)
				assigned++
				claimed = true
				break
			}
		}
		if !claimed {
			frontiers[best] = f[:len(f)-1]
		}
	}
	return part
}

// refine performs greedy boundary moves (a light Kernighan-Lin/FM pass):
// repeatedly move a boundary vertex to the neighboring part with the
// largest cut gain, respecting a balance constraint.
func refine(g *mgraph, part []int, k int) {
	n := len(g.ids)
	if n == 0 || k < 2 {
		return
	}
	loads := make([]int, k)
	total := 0
	for v := 0; v < n; v++ {
		loads[part[v]] += g.weight[v]
		total += g.weight[v]
	}
	maxLoad := total/k + total/(4*k) + 1 // 25% imbalance tolerance
	for pass := 0; pass < 4; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			home := part[v]
			// Gain of moving v to part p = edges to p minus edges to home.
			gains := map[int]int{}
			internal := 0
			for _, e := range g.adj[v] {
				if part[e.to] == home {
					internal += e.w
				} else {
					gains[part[e.to]] += e.w
				}
			}
			bestP, bestGain := -1, 0
			for p, toP := range gains {
				gain := toP - internal
				if gain > bestGain && loads[p]+g.weight[v] <= maxLoad {
					bestP, bestGain = p, gain
				}
			}
			if bestP >= 0 {
				loads[home] -= g.weight[v]
				loads[bestP] += g.weight[v]
				part[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			return
		}
	}
}

// cutOf counts undirected cut edges (by weight).
func cutOf(g *mgraph, part []int) int {
	cut := 0
	for v := 0; v < len(g.ids); v++ {
		for _, e := range g.adj[v] {
			if e.to > v && part[e.to] != part[v] {
				cut += e.w
			}
		}
	}
	return cut
}

// RandomPartition assigns vertices to k parts uniformly — the baseline
// the multilevel partitioner is compared against, and also the placement
// Trinity's hash addressing induces naturally.
func RandomPartition(g *graph.Graph, k int, seed uint64) (*Partitioning, error) {
	adj, ids, err := gatherAdjacency(g, -1)
	if err != nil {
		return nil, err
	}
	base := buildMGraph(adj, ids)
	rng := hash.NewRNG(seed)
	part := make([]int, len(ids))
	for i := range part {
		part[i] = rng.Intn(k)
	}
	out := &Partitioning{Part: make(map[uint64]int, len(ids)), K: k, EdgeCut: cutOf(base, part)}
	for v, id := range base.ids {
		out.Part[id] = part[v]
	}
	return out, nil
}
