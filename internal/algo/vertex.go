// Package algo implements the graph algorithms of the paper's evaluation
// on top of Trinity's computation engines: PageRank, BFS and SSSP in the
// restrictive vertex-centric model (Figures 12(b), 12(c)), weakly
// connected components, index-free distributed subgraph matching
// (Figures 8(a), 14(a)), the landmark-based distance oracle with three
// landmark-selection strategies (Figure 8(b)), and a multilevel graph
// partitioner (§5.3's "billion-node graph partitioning" claim, scaled).
package algo

import (
	"context"
	"math"

	"trinity/internal/compute/bsp"
	"trinity/internal/graph"
)

// PageRankResult carries the outcome of a PageRank run.
type PageRankResult struct {
	Ranks      map[uint64]float64
	Supersteps int
}

// pageRankProg implements PageRank with damping 0.85 in the restrictive
// model: every vertex talks only to its out-neighbors, so the program
// benefits fully from hub buffering and message combining.
type pageRankProg struct {
	iters int
}

func (p *pageRankProg) Init(id uint64, outDeg int) (float64, bool) { return 1.0, true }

func (p *pageRankProg) Compute(ctx *bsp.Context, id uint64, val float64, msgs []float64) (float64, bool) {
	if ctx.Superstep() > 0 {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		val = 0.15 + 0.85*sum
	}
	if ctx.Superstep() < p.iters {
		if deg := ctx.OutDegree(); deg > 0 {
			ctx.SendToAllOut(val / float64(deg))
		}
		return val, false
	}
	return val, true
}

// PageRank runs `iters` power iterations over the distributed graph.
// HubThreshold > 0 enables the §5.4 hub optimization.
func PageRank(ctx context.Context, g *graph.Graph, iters, hubThreshold int) (*PageRankResult, error) {
	e := bsp.New(g, bsp.Options{
		Combine:       func(a, b float64) float64 { return a + b },
		HubThreshold:  hubThreshold,
		MaxSupersteps: iters + 1,
	})
	steps, err := e.Run(ctx, &pageRankProg{iters: iters})
	if err != nil {
		return nil, err
	}
	return &PageRankResult{Ranks: e.Values(), Supersteps: steps}, nil
}

// InstrumentedPageRank extends PageRankResult with engine counters.
type InstrumentedPageRank struct {
	PageRankResult
	// WireMessages counts messages that physically crossed the wire
	// (hub-buffered broadcasts count once per subscribed machine).
	WireMessages int64
}

// PageRankInstrumented is PageRank with wire-message accounting, used by
// the §5.4 hub-buffering ablation.
func PageRankInstrumented(ctx context.Context, g *graph.Graph, iters, hubThreshold int) (*InstrumentedPageRank, error) {
	e := bsp.New(g, bsp.Options{
		Combine:       func(a, b float64) float64 { return a + b },
		HubThreshold:  hubThreshold,
		MaxSupersteps: iters + 1,
	})
	steps, err := e.Run(ctx, &pageRankProg{iters: iters})
	if err != nil {
		return nil, err
	}
	return &InstrumentedPageRank{
		PageRankResult: PageRankResult{Ranks: e.Values(), Supersteps: steps},
		WireMessages:   e.WireMessages(),
	}, nil
}

// Unreached marks vertices a traversal never touched.
const Unreached = -1

// bfsProg computes hop distance from a source (the Graph 500 kernel).
type bfsProg struct {
	source uint64
}

func (p *bfsProg) Init(id uint64, _ int) (float64, bool) {
	if id == p.source {
		return 0, true
	}
	return Unreached, false
}

func (p *bfsProg) Compute(ctx *bsp.Context, id uint64, val float64, msgs []float64) (float64, bool) {
	if ctx.Superstep() == 0 {
		if id == p.source {
			ctx.SendToAllOut(1)
		}
		return val, true
	}
	if val != Unreached {
		return val, true // already labeled; ignore late messages
	}
	level := math.Inf(1)
	for _, m := range msgs {
		if m < level {
			level = m
		}
	}
	ctx.SendToAllOut(level + 1)
	return level, true
}

// BFSResult carries hop distances from the source (Unreached = -1).
type BFSResult struct {
	Levels     map[uint64]float64
	Reached    int
	Supersteps int
}

// BFS computes hop distances from source over the distributed graph.
func BFS(ctx context.Context, g *graph.Graph, source uint64, hubThreshold int) (*BFSResult, error) {
	e := bsp.New(g, bsp.Options{
		Combine:      func(a, b float64) float64 { return math.Min(a, b) },
		HubThreshold: hubThreshold,
	})
	steps, err := e.Run(ctx, &bfsProg{source: source})
	if err != nil {
		return nil, err
	}
	res := &BFSResult{Levels: e.Values(), Supersteps: steps}
	for _, v := range res.Levels {
		if v != Unreached {
			res.Reached++
		}
	}
	return res, nil
}

// ssspProg computes single-source shortest distances over weighted edges.
type ssspProg struct {
	source uint64
}

func (p *ssspProg) Init(id uint64, _ int) (float64, bool) {
	if id == p.source {
		return 0, true
	}
	return math.Inf(1), false
}

func (p *ssspProg) Compute(ctx *bsp.Context, id uint64, val float64, msgs []float64) (float64, bool) {
	best := val
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < val || (ctx.Superstep() == 0 && id == p.source) {
		ctx.ForEachOutEdge(func(dst uint64, w int64) bool {
			ctx.Send(dst, best+float64(w))
			return true
		})
	}
	return best, true
}

// SSSPResult carries shortest distances from the source (+Inf =
// unreachable).
type SSSPResult struct {
	Dist       map[uint64]float64
	Supersteps int
}

// SSSP computes single-source shortest paths over the distributed graph,
// using edge weights when present (weight 1 otherwise).
func SSSP(ctx context.Context, g *graph.Graph, source uint64) (*SSSPResult, error) {
	e := bsp.New(g, bsp.Options{
		Combine: func(a, b float64) float64 { return math.Min(a, b) },
	})
	steps, err := e.Run(ctx, &ssspProg{source: source})
	if err != nil {
		return nil, err
	}
	return &SSSPResult{Dist: e.Values(), Supersteps: steps}, nil
}

// wccProg labels every vertex with the maximum vertex id reachable in its
// weakly connected component (out-edges only here; callers wanting true
// WCC should load the graph undirected, which the builders support).
type wccProg struct{}

func (wccProg) Init(id uint64, _ int) (float64, bool) { return float64(id), true }

func (wccProg) Compute(ctx *bsp.Context, id uint64, val float64, msgs []float64) (float64, bool) {
	changed := ctx.Superstep() == 0
	for _, m := range msgs {
		if m > val {
			val = m
			changed = true
		}
	}
	if changed {
		ctx.SendToAllOut(val)
	}
	return val, true
}

// WCCResult maps every vertex to its component label.
type WCCResult struct {
	Component  map[uint64]float64
	Components int
	Supersteps int
}

// WCC computes connected components by max-label propagation.
func WCC(ctx context.Context, g *graph.Graph) (*WCCResult, error) {
	e := bsp.New(g, bsp.Options{
		Combine: func(a, b float64) float64 { return math.Max(a, b) },
	})
	steps, err := e.Run(ctx, wccProg{})
	if err != nil {
		return nil, err
	}
	res := &WCCResult{Component: e.Values(), Supersteps: steps}
	distinct := map[float64]bool{}
	for _, c := range res.Component {
		distinct[c] = true
	}
	res.Components = len(distinct)
	return res, nil
}
