package algo

import (
	"fmt"
	"math"
	"sort"

	"trinity/internal/graph"
	"trinity/internal/graph/view"
	"trinity/internal/hash"
)

// LandmarkStrategy selects landmark vertices for the distance oracle —
// the three strategies compared in Figure 8(b).
type LandmarkStrategy int

// Landmark selection strategies.
const (
	// ByDegree picks the highest-degree vertices (the paper's worst
	// performer).
	ByDegree LandmarkStrategy = iota
	// ByGlobalBetweenness picks the vertices with the highest approximate
	// betweenness computed over the whole graph (best, but costly).
	ByGlobalBetweenness
	// ByLocalBetweenness computes betweenness per machine over its LOCAL
	// partition only and takes each machine's top vertices — the paper's
	// §5.5 "new paradigm": a random partition is a random sample, so
	// local computation approximates the global answer at a fraction of
	// the cost.
	ByLocalBetweenness
)

func (s LandmarkStrategy) String() string {
	switch s {
	case ByDegree:
		return "LargestDegree"
	case ByGlobalBetweenness:
		return "GlobalBetweenness"
	case ByLocalBetweenness:
		return "LocalBetweenness"
	default:
		return fmt.Sprintf("LandmarkStrategy(%d)", int(s))
	}
}

// Oracle estimates shortest distances via landmarks: est(u,v) =
// min over landmarks l of d(u,l) + d(l,v) (triangulation upper bound).
type Oracle struct {
	g         *graph.Graph
	Landmarks []uint64
	// dist[i] maps vertex -> hop distance to landmark i.
	dist []map[uint64]float64
}

// BuildOracle selects `k` landmarks with the strategy and runs one BFS
// per landmark to index distances. The graph should be loaded undirected
// for meaningful distance estimates.
func BuildOracle(g *graph.Graph, k int, strategy LandmarkStrategy, seed uint64) (*Oracle, error) {
	var landmarks []uint64
	var err error
	switch strategy {
	case ByDegree:
		landmarks, err = topByDegree(g, k)
	case ByGlobalBetweenness:
		landmarks, err = topByBetweenness(g, k, 128, seed, false)
	case ByLocalBetweenness:
		landmarks, err = topByBetweenness(g, k, 128, seed, true)
	default:
		return nil, fmt.Errorf("algo: unknown landmark strategy %d", strategy)
	}
	if err != nil {
		return nil, err
	}
	o := &Oracle{g: g, Landmarks: landmarks}
	for _, l := range landmarks {
		res, err := BFS(g, l, 0)
		if err != nil {
			return nil, err
		}
		o.dist = append(o.dist, res.Levels)
	}
	return o, nil
}

// Estimate returns the landmark-triangulated distance estimate, or +Inf
// if no landmark reaches both endpoints.
func (o *Oracle) Estimate(u, v uint64) float64 {
	if u == v {
		return 0
	}
	best := math.Inf(1)
	for _, d := range o.dist {
		du, ok1 := d[u]
		dv, ok2 := d[v]
		if ok1 && ok2 && du != Unreached && dv != Unreached {
			if e := du + dv; e < best {
				best = e
			}
		}
	}
	return best
}

// Accuracy samples `pairs` random connected vertex pairs, compares the
// estimate against the true BFS distance, and returns the mean accuracy
// percentage (100% = exact), the Figure 8(b) metric.
func (o *Oracle) Accuracy(pairs int, seed uint64) (float64, error) {
	rng := hash.NewRNG(seed)
	// Collect the vertex universe once.
	var ids []uint64
	for i := 0; i < o.g.Machines(); i++ {
		ids = append(ids, o.g.On(i).LocalNodeIDs()...)
	}
	if len(ids) < 2 {
		return 0, fmt.Errorf("algo: graph too small for accuracy sampling")
	}
	total, counted := 0.0, 0
	for counted < pairs {
		u := ids[rng.Intn(len(ids))]
		// True distances from u (one BFS serves many pairs).
		res, err := BFS(o.g, u, 0)
		if err != nil {
			return 0, err
		}
		// Sample a handful of reachable targets per source.
		for t := 0; t < 8 && counted < pairs; t++ {
			v := ids[rng.Intn(len(ids))]
			actual, ok := res.Levels[v]
			if !ok || actual == Unreached || actual == 0 {
				continue
			}
			est := o.Estimate(u, v)
			if math.IsInf(est, 1) {
				continue
			}
			// est is an upper bound; accuracy decays with relative error.
			acc := 1 - (est-actual)/actual
			if acc < 0 {
				acc = 0
			}
			total += acc
			counted++
		}
	}
	return 100 * total / float64(counted), nil
}

// topByDegree returns the k highest-out-degree vertices, reading degrees
// straight from each machine's partition view (no per-cell decode).
func topByDegree(g *graph.Graph, k int) ([]uint64, error) {
	type dv struct {
		id  uint64
		deg int
	}
	var all []dv
	for i := 0; i < g.Machines(); i++ {
		v, err := view.Acquire(g.On(i))
		if err != nil {
			return nil, err
		}
		for idx := 0; idx < v.NumVertices(); idx++ {
			all = append(all, dv{v.IDOf(idx), v.OutDegree(idx)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg > all[j].deg
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out, nil
}

// topByBetweenness approximates betweenness centrality with sampled
// Brandes (shortest-path dependency accumulation from `samples` random
// sources). With local=true the computation runs independently on each
// machine's local subgraph (edges whose both endpoints are local) and the
// per-machine rankings are merged round-robin — the cheap §5.5 estimator;
// with local=false it runs over the full graph.
func topByBetweenness(g *graph.Graph, k, samples int, seed uint64, local bool) ([]uint64, error) {
	if !local {
		adj, ids, err := gatherAdjacency(g, -1)
		if err != nil {
			return nil, err
		}
		scores := brandesSample(adj, ids, samples, seed)
		return topK(scores, k), nil
	}
	// Local mode: rank per machine, then interleave machine toplists.
	perMachine := make([][]uint64, g.Machines())
	for i := 0; i < g.Machines(); i++ {
		adj, ids, err := gatherAdjacency(g, i)
		if err != nil {
			return nil, err
		}
		scores := brandesSample(adj, ids, samples/g.Machines()+1, seed+uint64(i))
		perMachine[i] = topK(scores, k)
	}
	var out []uint64
	seen := map[uint64]bool{}
	for round := 0; len(out) < k; round++ {
		progress := false
		for i := 0; i < g.Machines() && len(out) < k; i++ {
			if round < len(perMachine[i]) {
				id := perMachine[i][round]
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return out, nil
}

// gatherAdjacency snapshots adjacency from the partition views. machine
// >= 0 restricts to one machine's local subgraph (both endpoints local).
// In whole-graph mode the returned neighbor slices alias the views' CSR
// arenas and must be treated as read-only.
func gatherAdjacency(g *graph.Graph, machine int) (map[uint64][]uint64, []uint64, error) {
	adj := map[uint64][]uint64{}
	var ids []uint64
	collect := func(i int) error {
		v, err := view.Acquire(g.On(i))
		if err != nil {
			return err
		}
		for idx := 0; idx < v.NumVertices(); idx++ {
			id := v.IDOf(idx)
			out := v.Out(idx)
			if machine >= 0 {
				// Keep only edges whose both endpoints are local.
				var local []uint64
				for _, dst := range out {
					if _, ok := v.IndexOf(dst); ok {
						local = append(local, dst)
					}
				}
				adj[id] = local
			} else {
				adj[id] = out
			}
			ids = append(ids, id)
		}
		return nil
	}
	if machine >= 0 {
		if err := collect(machine); err != nil {
			return nil, nil, err
		}
	} else {
		for i := 0; i < g.Machines(); i++ {
			if err := collect(i); err != nil {
				return nil, nil, err
			}
		}
	}
	return adj, ids, nil
}

// brandesSample runs Brandes' dependency accumulation from sampled
// sources over an unweighted graph snapshot.
func brandesSample(adj map[uint64][]uint64, ids []uint64, samples int, seed uint64) map[uint64]float64 {
	scores := make(map[uint64]float64, len(ids))
	if len(ids) == 0 {
		return scores
	}
	rng := hash.NewRNG(seed)
	if samples > len(ids) {
		samples = len(ids)
	}
	for s := 0; s < samples; s++ {
		src := ids[rng.Intn(len(ids))]
		// BFS with shortest-path counting.
		sigma := map[uint64]float64{src: 1}
		dist := map[uint64]int{src: 0}
		order := []uint64{src}
		preds := map[uint64][]uint64{}
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range adj[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		delta := map[uint64]float64{}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != src {
				scores[w] += delta[w]
			}
		}
	}
	return scores
}

// topK returns the k highest-scoring vertex ids (deterministic ties).
func topK(scores map[uint64]float64, k int) []uint64 {
	type sv struct {
		id    uint64
		score float64
	}
	all := make([]sv, 0, len(scores))
	for id, s := range scores {
		all = append(all, sv{id, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}
