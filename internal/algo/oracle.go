package algo

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"trinity/internal/graph"
	"trinity/internal/graph/view"
	"trinity/internal/hash"
	"trinity/internal/memcloud"
)

// LandmarkStrategy selects landmark vertices for the distance oracle —
// the three strategies compared in Figure 8(b).
type LandmarkStrategy int

// Landmark selection strategies.
const (
	// ByDegree picks the highest-degree vertices (the paper's worst
	// performer).
	ByDegree LandmarkStrategy = iota
	// ByGlobalBetweenness picks the vertices with the highest approximate
	// betweenness computed over the whole graph (best, but costly).
	ByGlobalBetweenness
	// ByLocalBetweenness computes betweenness per machine over its LOCAL
	// partition only and takes each machine's top vertices — the paper's
	// §5.5 "new paradigm": a random partition is a random sample, so
	// local computation approximates the global answer at a fraction of
	// the cost.
	ByLocalBetweenness
)

func (s LandmarkStrategy) String() string {
	switch s {
	case ByDegree:
		return "LargestDegree"
	case ByGlobalBetweenness:
		return "GlobalBetweenness"
	case ByLocalBetweenness:
		return "LocalBetweenness"
	default:
		return fmt.Sprintf("LandmarkStrategy(%d)", int(s))
	}
}

// Oracle estimates shortest distances via landmarks: est(u,v) =
// min over landmarks l of d(u,l) + d(l,v) (triangulation upper bound).
type Oracle struct {
	g         *graph.Graph
	Landmarks []uint64
	// dist[i] maps vertex -> hop distance to landmark i.
	dist []map[uint64]float64
}

// BuildOracle selects `k` landmarks with the strategy and runs one BFS
// per landmark to index distances. The graph should be loaded undirected
// for meaningful distance estimates.
func BuildOracle(ctx context.Context, g *graph.Graph, k int, strategy LandmarkStrategy, seed uint64) (*Oracle, error) {
	var landmarks []uint64
	var err error
	switch strategy {
	case ByDegree:
		landmarks, err = topByDegree(g, k)
	case ByGlobalBetweenness:
		landmarks, err = topByBetweenness(g, k, 128, seed, false)
	case ByLocalBetweenness:
		landmarks, err = topByBetweenness(g, k, 128, seed, true)
	default:
		return nil, fmt.Errorf("algo: unknown landmark strategy %d", strategy)
	}
	if err != nil {
		return nil, err
	}
	o := &Oracle{g: g, Landmarks: landmarks}
	for _, l := range landmarks {
		res, err := BFS(ctx, g, l, 0)
		if err != nil {
			return nil, err
		}
		o.dist = append(o.dist, res.Levels)
	}
	return o, nil
}

// Estimate returns the landmark-triangulated distance estimate, or +Inf
// if no landmark reaches both endpoints.
func (o *Oracle) Estimate(u, v uint64) float64 {
	if u == v {
		return 0
	}
	best := math.Inf(1)
	for _, d := range o.dist {
		du, ok1 := d[u]
		dv, ok2 := d[v]
		if ok1 && ok2 && du != Unreached && dv != Unreached {
			if e := du + dv; e < best {
				best = e
			}
		}
	}
	return best
}

// landmarkKeyBase namespaces materialized landmark-distance cells away
// from vertex cells. Vertex ids are dense small integers throughout this
// codebase, so a high bit cleanly partitions the key space.
const landmarkKeyBase uint64 = 1 << 62

// LandmarkKey is the cell key holding vertex u's landmark-distance vector.
func LandmarkKey(u uint64) uint64 { return landmarkKeyBase | u }

// Materialize writes every vertex's landmark-distance vector into the
// memory cloud as a cell of its own, keyed by LandmarkKey. The cells hash
// across machines like any other cell, so after materialization any
// machine can answer estimate queries with batched cell fetches instead
// of holding the whole index (the in-memory dist maps become redundant).
//
// The vector layout is u32 landmark count followed by one i32 hop
// distance per landmark, Unreached encoded as -1.
func (o *Oracle) Materialize(ctx context.Context) error {
	k := len(o.dist)
	vecs := map[uint64][]int32{}
	for i, d := range o.dist {
		for u, du := range d {
			v, ok := vecs[u]
			if !ok {
				v = make([]int32, k)
				for j := range v {
					v[j] = int32(Unreached)
				}
				vecs[u] = v
			}
			v[i] = int32(du)
		}
	}
	s := o.g.On(0).Slave()
	for u, v := range vecs {
		buf := make([]byte, 4+4*len(v))
		binary.LittleEndian.PutUint32(buf, uint32(len(v)))
		for i, d := range v {
			binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(d))
		}
		if err := s.Put(ctx, LandmarkKey(u), buf); err != nil {
			return err
		}
	}
	return nil
}

func decodeLandmarkVec(b []byte) ([]int32, error) {
	if len(b) < 4 {
		return nil, errors.New("algo: short landmark cell")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+4*n {
		return nil, errors.New("algo: corrupt landmark cell")
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(b[4+4*i:]))
	}
	return v, nil
}

// EstimateFetched answers a batch of distance queries from materialized
// landmark cells (see Materialize), fetching every needed cell in one
// scatter-gather sweep through machine via's cell-fetch pipeline. A pair
// whose endpoint has no materialized cell, or that shares no landmark,
// estimates +Inf; u == v estimates 0.
func (o *Oracle) EstimateFetched(ctx context.Context, via int, pairs [][2]uint64) ([]float64, error) {
	var keys []uint64
	seen := map[uint64]bool{}
	for _, p := range pairs {
		for _, u := range p {
			if !seen[u] {
				seen[u] = true
				keys = append(keys, LandmarkKey(u))
			}
		}
	}
	vecs := make(map[uint64][]int32, len(keys))
	var firstErr error
	o.g.On(via).Fetcher().GetBatch(ctx, keys, func(_ int, key uint64, blob []byte, err error) {
		if err != nil {
			if !errors.Is(err, memcloud.ErrNotFound) && firstErr == nil {
				firstErr = err
			}
			return
		}
		v, derr := decodeLandmarkVec(blob)
		if derr != nil {
			if firstErr == nil {
				firstErr = derr
			}
			return
		}
		vecs[key&^landmarkKeyBase] = v
	})
	if firstErr != nil {
		return nil, firstErr
	}
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		u, v := p[0], p[1]
		if u == v {
			continue // 0
		}
		best := math.Inf(1)
		du, dv := vecs[u], vecs[v]
		for l := 0; l < len(du) && l < len(dv); l++ {
			if du[l] >= 0 && dv[l] >= 0 {
				if e := float64(du[l] + dv[l]); e < best {
					best = e
				}
			}
		}
		out[i] = best
	}
	return out, nil
}

// Accuracy samples `pairs` random connected vertex pairs, compares the
// estimate against the true BFS distance, and returns the mean accuracy
// percentage (100% = exact), the Figure 8(b) metric.
func (o *Oracle) Accuracy(ctx context.Context, pairs int, seed uint64) (float64, error) {
	rng := hash.NewRNG(seed)
	// Collect the vertex universe once.
	var ids []uint64
	for i := 0; i < o.g.Machines(); i++ {
		ids = append(ids, o.g.On(i).LocalNodeIDs()...)
	}
	if len(ids) < 2 {
		return 0, fmt.Errorf("algo: graph too small for accuracy sampling")
	}
	total, counted := 0.0, 0
	for counted < pairs {
		u := ids[rng.Intn(len(ids))]
		// True distances from u (one BFS serves many pairs).
		res, err := BFS(ctx, o.g, u, 0)
		if err != nil {
			return 0, err
		}
		// Sample a handful of reachable targets per source.
		for t := 0; t < 8 && counted < pairs; t++ {
			v := ids[rng.Intn(len(ids))]
			actual, ok := res.Levels[v]
			if !ok || actual == Unreached || actual == 0 {
				continue
			}
			est := o.Estimate(u, v)
			if math.IsInf(est, 1) {
				continue
			}
			// est is an upper bound; accuracy decays with relative error.
			acc := 1 - (est-actual)/actual
			if acc < 0 {
				acc = 0
			}
			total += acc
			counted++
		}
	}
	return 100 * total / float64(counted), nil
}

// topByDegree returns the k highest-out-degree vertices, reading degrees
// straight from each machine's partition view (no per-cell decode).
func topByDegree(g *graph.Graph, k int) ([]uint64, error) {
	type dv struct {
		id  uint64
		deg int
	}
	var all []dv
	for i := 0; i < g.Machines(); i++ {
		v, err := view.Acquire(g.On(i))
		if err != nil {
			return nil, err
		}
		for idx := 0; idx < v.NumVertices(); idx++ {
			all = append(all, dv{v.IDOf(idx), v.OutDegree(idx)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg > all[j].deg
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out, nil
}

// topByBetweenness approximates betweenness centrality with sampled
// Brandes (shortest-path dependency accumulation from `samples` random
// sources). With local=true the computation runs independently on each
// machine's local subgraph (edges whose both endpoints are local) and the
// per-machine rankings are merged round-robin — the cheap §5.5 estimator;
// with local=false it runs over the full graph.
func topByBetweenness(g *graph.Graph, k, samples int, seed uint64, local bool) ([]uint64, error) {
	if !local {
		adj, ids, err := gatherAdjacency(g, -1)
		if err != nil {
			return nil, err
		}
		scores := brandesSample(adj, ids, samples, seed)
		return topK(scores, k), nil
	}
	// Local mode: rank per machine, then interleave machine toplists.
	perMachine := make([][]uint64, g.Machines())
	for i := 0; i < g.Machines(); i++ {
		adj, ids, err := gatherAdjacency(g, i)
		if err != nil {
			return nil, err
		}
		scores := brandesSample(adj, ids, samples/g.Machines()+1, seed+uint64(i))
		perMachine[i] = topK(scores, k)
	}
	var out []uint64
	seen := map[uint64]bool{}
	for round := 0; len(out) < k; round++ {
		progress := false
		for i := 0; i < g.Machines() && len(out) < k; i++ {
			if round < len(perMachine[i]) {
				id := perMachine[i][round]
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return out, nil
}

// gatherAdjacency snapshots adjacency from the partition views. machine
// >= 0 restricts to one machine's local subgraph (both endpoints local).
// In whole-graph mode the returned neighbor slices alias the views' CSR
// arenas and must be treated as read-only.
func gatherAdjacency(g *graph.Graph, machine int) (map[uint64][]uint64, []uint64, error) {
	adj := map[uint64][]uint64{}
	var ids []uint64
	collect := func(i int) error {
		v, err := view.Acquire(g.On(i))
		if err != nil {
			return err
		}
		for idx := 0; idx < v.NumVertices(); idx++ {
			id := v.IDOf(idx)
			out := v.Out(idx)
			if machine >= 0 {
				// Keep only edges whose both endpoints are local.
				var local []uint64
				for _, dst := range out {
					if _, ok := v.IndexOf(dst); ok {
						local = append(local, dst)
					}
				}
				adj[id] = local
			} else {
				adj[id] = out
			}
			ids = append(ids, id)
		}
		return nil
	}
	if machine >= 0 {
		if err := collect(machine); err != nil {
			return nil, nil, err
		}
	} else {
		for i := 0; i < g.Machines(); i++ {
			if err := collect(i); err != nil {
				return nil, nil, err
			}
		}
	}
	return adj, ids, nil
}

// brandesSample runs Brandes' dependency accumulation from sampled
// sources over an unweighted graph snapshot.
func brandesSample(adj map[uint64][]uint64, ids []uint64, samples int, seed uint64) map[uint64]float64 {
	scores := make(map[uint64]float64, len(ids))
	if len(ids) == 0 {
		return scores
	}
	rng := hash.NewRNG(seed)
	if samples > len(ids) {
		samples = len(ids)
	}
	for s := 0; s < samples; s++ {
		src := ids[rng.Intn(len(ids))]
		// BFS with shortest-path counting.
		sigma := map[uint64]float64{src: 1}
		dist := map[uint64]int{src: 0}
		order := []uint64{src}
		preds := map[uint64][]uint64{}
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range adj[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		delta := map[uint64]float64{}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != src {
				scores[w] += delta[w]
			}
		}
	}
	return scores
}

// topK returns the k highest-scoring vertex ids (deterministic ties).
func topK(scores map[uint64]float64, k int) []uint64 {
	type sv struct {
		id    uint64
		score float64
	}
	all := make([]sv, 0, len(scores))
	for id, s := range scores {
		all = append(all, sv{id, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}
