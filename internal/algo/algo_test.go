package algo

import (
	"context"
	"math"
	"testing"
	"time"

	"trinity/internal/gen"
	"trinity/internal/graph"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
)

func newCloud(t testing.TB, machines int) *memcloud.Cloud {
	c := memcloud.New(memcloud.Config{
		Machines: machines,
		Msg:      msg.Options{FlushInterval: time.Millisecond, CallTimeout: 10 * time.Second},
	})
	t.Cleanup(c.Close)
	return c
}

func loadUniform(t testing.TB, cloud *memcloud.Cloud, nodes, deg, labels int, seed uint64) *graph.Graph {
	b := graph.NewBuilder(true)
	gen.BuildUniform(gen.UniformConfig{Nodes: nodes, AvgDegree: deg, Seed: seed}, labels, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPageRankRanksHubsHigher(t *testing.T) {
	cloud := newCloud(t, 3)
	// Star graph: everyone points at node 0.
	b := graph.NewBuilder(true)
	const n = 50
	for i := uint64(0); i < n; i++ {
		b.AddNode(i, 0, "")
	}
	for i := uint64(1); i < n; i++ {
		b.AddEdge(i, 0)
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(context.Background(), g, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	hub := res.Ranks[0]
	for i := uint64(1); i < n; i++ {
		if res.Ranks[i] >= hub {
			t.Fatalf("leaf %d rank %.3f >= hub rank %.3f", i, res.Ranks[i], hub)
		}
	}
}

func TestBFSLevels(t *testing.T) {
	cloud := newCloud(t, 3)
	// Binary-ish tree: i -> 2i+1, 2i+2 for i < 15 (31 nodes).
	b := graph.NewBuilder(true)
	for i := uint64(0); i < 31; i++ {
		b.AddNode(i, 0, "")
	}
	for i := uint64(0); i < 15; i++ {
		b.AddEdge(i, 2*i+1)
		b.AddEdge(i, 2*i+2)
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(context.Background(), g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 31 {
		t.Fatalf("reached = %d", res.Reached)
	}
	for id, lvl := range res.Levels {
		want := float64(bitsLen(id+1) - 1)
		if lvl != want {
			t.Fatalf("level(%d) = %v, want %v", id, lvl, want)
		}
	}
}

func bitsLen(x uint64) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

func TestBFSUnreachable(t *testing.T) {
	cloud := newCloud(t, 2)
	b := graph.NewBuilder(true)
	b.AddNode(1, 0, "")
	b.AddNode(2, 0, "")
	b.AddNode(3, 0, "")
	b.AddEdge(1, 2)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(context.Background(), g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 2 {
		t.Fatalf("reached = %d", res.Reached)
	}
	if res.Levels[3] != Unreached {
		t.Fatalf("level(3) = %v", res.Levels[3])
	}
}

func TestBFSWithHubOptimizationMatches(t *testing.T) {
	cloud1 := newCloud(t, 4)
	g1 := loadUniform(t, cloud1, 400, 5, 0, 7)
	plain, err := BFS(context.Background(), g1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cloud2 := newCloud(t, 4)
	g2 := loadUniform(t, cloud2, 400, 5, 0, 7)
	hub, err := BFS(context.Background(), g2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Reached != hub.Reached {
		t.Fatalf("reached differ: %d vs %d", plain.Reached, hub.Reached)
	}
	for id, v := range plain.Levels {
		if hub.Levels[id] != v {
			t.Fatalf("level(%d): %v plain vs %v hub", id, v, hub.Levels[id])
		}
	}
}

func TestSSSPWeighted(t *testing.T) {
	cloud := newCloud(t, 2)
	b := graph.NewBuilder(true)
	// 1 -> 2 (w 10), 1 -> 3 (w 1), 3 -> 2 (w 2): shortest 1->2 is 3.
	b.AddWeightedEdge(1, 2, 10)
	b.AddWeightedEdge(1, 3, 1)
	b.AddWeightedEdge(3, 2, 2)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SSSP(context.Background(), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != 3 {
		t.Fatalf("dist(2) = %v, want 3", res.Dist[2])
	}
	if res.Dist[3] != 1 {
		t.Fatalf("dist(3) = %v", res.Dist[3])
	}
}

func TestSSSPUnweightedEqualsBFS(t *testing.T) {
	cloud := newCloud(t, 3)
	g := loadUniform(t, cloud, 300, 4, 0, 3)
	bfs, err := BFS(context.Background(), g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	sssp, err := SSSP(context.Background(), g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for id, lvl := range bfs.Levels {
		d := sssp.Dist[id]
		if lvl == Unreached {
			if !math.IsInf(d, 1) {
				t.Fatalf("vertex %d: BFS unreached but SSSP %v", id, d)
			}
			continue
		}
		if d != lvl {
			t.Fatalf("vertex %d: BFS %v != SSSP %v", id, lvl, d)
		}
	}
}

func TestWCC(t *testing.T) {
	cloud := newCloud(t, 3)
	// Two components: ring 0..9 and ring 100..104 (undirected).
	b := graph.NewBuilder(false)
	for i := uint64(0); i < 10; i++ {
		b.AddEdge(i, (i+1)%10)
	}
	for i := uint64(100); i < 105; i++ {
		b.AddEdge(i, 100+((i+1)-100)%5)
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WCC(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 2 {
		t.Fatalf("components = %d, want 2", res.Components)
	}
	if res.Component[0] != 9 || res.Component[104] != 104 {
		t.Fatalf("labels: %v %v", res.Component[0], res.Component[104])
	}
}

func TestGenerateQueryHasEmbedding(t *testing.T) {
	cloud := newCloud(t, 2)
	g := loadUniform(t, cloud, 300, 8, 5, 3)
	for _, mode := range []QueryGenMode{GenDFS, GenRandom} {
		p, err := GenerateQuery(g, 5, mode, 42)
		if err != nil {
			t.Fatal(err)
		}
		if p.Size() != 5 {
			t.Fatalf("query size = %d", p.Size())
		}
		edges := p.edges()
		if len(edges) < 4 {
			t.Fatalf("query has %d edges, want a connected pattern", len(edges))
		}
		mt := NewMatcher(g)
		matches, err := mt.Match(context.Background(), 0, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) == 0 {
			t.Fatalf("mode %v: no embedding found for an extracted pattern", mode)
		}
		verifyEmbedding(t, g, p, matches[0])
	}
}

func verifyEmbedding(t *testing.T, g *graph.Graph, p *Pattern, m []uint64) {
	t.Helper()
	seen := map[uint64]bool{}
	for qi, did := range m {
		if seen[did] {
			t.Fatalf("embedding not injective: %v", m)
		}
		seen[did] = true
		l, err := g.On(0).Label(context.Background(), did)
		if err != nil || l != p.Labels[qi] {
			t.Fatalf("query %d: label %d != %d", qi, l, p.Labels[qi])
		}
	}
	for u, vs := range p.Out {
		out, err := g.On(0).Outlinks(context.Background(), m[u])
		if err != nil {
			t.Fatal(err)
		}
		outSet := map[uint64]bool{}
		for _, o := range out {
			outSet[o] = true
		}
		for _, v := range vs {
			if !outSet[m[v]] {
				t.Fatalf("embedding misses edge %d->%d (%d->%d)", u, v, m[u], m[v])
			}
		}
	}
}

func TestMatchCountsTriangles(t *testing.T) {
	cloud := newCloud(t, 2)
	// A directed triangle 1->2->3->1 plus noise; query = triangle.
	b := graph.NewBuilder(true)
	for i := uint64(1); i <= 6; i++ {
		b.AddNode(i, 0, "")
	}
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 1)
	b.AddEdge(4, 5) // noise
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pattern{Labels: []int64{0, 0, 0}, Out: [][]int{{1}, {2}, {0}}}
	mt := NewMatcher(g)
	matches, err := mt.Match(context.Background(), 0, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The triangle has 3 rotations as embeddings.
	if len(matches) != 3 {
		t.Fatalf("triangle embeddings = %d, want 3: %v", len(matches), matches)
	}
}

func TestMatchNoEmbedding(t *testing.T) {
	cloud := newCloud(t, 2)
	b := graph.NewBuilder(true)
	b.AddNode(1, 7, "")
	b.AddNode(2, 7, "")
	b.AddEdge(1, 2)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMatcher(g)
	// Label 9 does not exist.
	p := &Pattern{Labels: []int64{9, 9}, Out: [][]int{{1}, {}}}
	matches, err := mt.Match(context.Background(), 0, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("found %d impossible embeddings", len(matches))
	}
}

func TestMatchLimit(t *testing.T) {
	cloud := newCloud(t, 2)
	b := graph.NewBuilder(true)
	// Complete bipartite-ish: 10 sources each pointing at 10 sinks.
	for s := uint64(0); s < 10; s++ {
		for d := uint64(100); d < 110; d++ {
			b.AddEdge(s, d)
		}
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pattern{Labels: []int64{0, 0}, Out: [][]int{{1}, {}}}
	mt := NewMatcher(g)
	matches, err := mt.Match(context.Background(), 0, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 5 {
		t.Fatalf("limit returned %d matches", len(matches))
	}
}

func TestOracleStrategies(t *testing.T) {
	cloud := newCloud(t, 4)
	b := graph.NewBuilder(false) // undirected for distances
	gen.BuildSocial(gen.SocialConfig{People: 600, AvgDegree: 8, Seed: 5}, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []LandmarkStrategy{ByDegree, ByGlobalBetweenness, ByLocalBetweenness} {
		o, err := BuildOracle(context.Background(), g, 10, strat, 1)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(o.Landmarks) != 10 {
			t.Fatalf("%v: %d landmarks", strat, len(o.Landmarks))
		}
		acc, err := o.Accuracy(context.Background(), 30, 2)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 30 || acc > 100 {
			t.Fatalf("%v: accuracy %.1f%% implausible", strat, acc)
		}
		t.Logf("%v: accuracy %.1f%%", strat, acc)
	}
}

func TestOracleEstimateIsUpperBound(t *testing.T) {
	cloud := newCloud(t, 2)
	b := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: 200, AvgDegree: 8, Seed: 9}, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuildOracle(context.Background(), g, 8, ByDegree, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(context.Background(), g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id, actual := range res.Levels {
		if actual == Unreached || id == 0 {
			continue
		}
		est := o.Estimate(0, id)
		if est < actual {
			t.Fatalf("estimate(0,%d) = %v < actual %v (triangulation violated)", id, est, actual)
		}
	}
	if o.Estimate(5, 5) != 0 {
		t.Fatal("self-distance must be 0")
	}
}

func TestOracleMaterializedMatchesInMemory(t *testing.T) {
	cloud := newCloud(t, 4)
	b := graph.NewBuilder(false)
	gen.BuildSocial(gen.SocialConfig{People: 300, AvgDegree: 8, Seed: 3}, b)
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	o, err := BuildOracle(context.Background(), g, 8, ByDegree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Query through machine 1 so most landmark cells are remote and ride
	// multi-get batches; include a self pair and a vertex with no cell.
	pairs := [][2]uint64{{7, 7}, {0, 99999}}
	for u := uint64(0); u < 60; u++ {
		pairs = append(pairs, [2]uint64{u, 299 - u})
	}
	got, err := o.EstimateFetched(context.Background(), 1, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want := o.Estimate(p[0], p[1])
		if got[i] != want && !(math.IsInf(got[i], 1) && math.IsInf(want, 1)) {
			t.Fatalf("pair %v: fetched estimate %v, in-memory %v", p, got[i], want)
		}
	}
	// The sweep must have gone through the fetch pipeline, batched.
	scope := cloud.Metrics().Scope("fetch.m1")
	wireKeys := scope.Counter("keys").Load()
	batches := scope.Counter("batches").Load()
	if wireKeys == 0 {
		t.Fatal("no landmark cells fetched over the wire")
	}
	if batches >= wireKeys {
		t.Fatalf("no batching: %d batches for %d keys", batches, wireKeys)
	}
}

func TestPartitionBeatsRandom(t *testing.T) {
	cloud := newCloud(t, 2)
	b := graph.NewBuilder(false)
	// A graph with clear community structure: 4 dense clusters plus a few
	// bridges.
	const per = 50
	id := func(c, i int) uint64 { return uint64(c*per + i) }
	for c := 0; c < 4; c++ {
		for i := 0; i < per; i++ {
			for j := i + 1; j < i+5 && j < per; j++ {
				b.AddEdge(id(c, i), id(c, j))
			}
		}
	}
	for c := 0; c < 4; c++ {
		b.AddEdge(id(c, 0), id((c+1)%4, 0))
	}
	g, err := b.Load(context.Background(), cloud)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Partition(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomPartition(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ml.EdgeCut >= rnd.EdgeCut {
		t.Fatalf("multilevel cut %d >= random cut %d", ml.EdgeCut, rnd.EdgeCut)
	}
	// Balance: no part may hold more than half the vertices.
	counts := map[int]int{}
	for _, p := range ml.Part {
		counts[p]++
	}
	for p, c := range counts {
		if c > 2*per*4/4 {
			t.Fatalf("part %d has %d vertices", p, c)
		}
	}
	t.Logf("edge cut: multilevel %d vs random %d", ml.EdgeCut, rnd.EdgeCut)
}

func TestPartitionValidatesK(t *testing.T) {
	cloud := newCloud(t, 1)
	g := loadUniform(t, cloud, 20, 2, 0, 1)
	if _, err := Partition(g, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	p, err := Partition(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeCut != 0 {
		t.Fatalf("k=1 cut = %d", p.EdgeCut)
	}
}
