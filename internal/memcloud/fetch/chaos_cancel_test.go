package fetch_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/memcloud/fetch"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// TestChaosCancelMidMultiget cancels the waiting side of a multiget
// while frames are dropped and delayed. Cancelling a Wait unhooks only
// the caller — it is counted in futures_cancelled, the underlying
// futures still resolve with their batch (no wedge), and a fresh
// GetBatch through the same fetcher succeeds afterwards.
func TestChaosCancelMidMultiget(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := obs.NewRegistry()
			c, ch := memcloud.NewChaosCloud(chaosConfig(3, reg), seed)
			defer c.Close()
			s0 := c.Slave(0)

			const n = 100
			keys := make([]uint64, n)
			for k := uint64(0); k < n; k++ {
				keys[k] = k
				if err := s0.Put(context.Background(), k, val(16, byte(k))); err != nil {
					t.Fatal(err)
				}
			}
			// Every frame delayed: no future can resolve before the
			// cancel below lands.
			ch.SetDefault(msg.Policy{
				Drop:     0.02,
				Delay:    1.0,
				MaxDelay: 5 * time.Millisecond,
			})

			f := fetch.New(s0, fetch.Options{Metrics: reg})
			defer f.Close()
			futs := make([]*fetch.Future, n)
			for i, k := range keys {
				futs[i] = f.GetAsync(k)
			}
			f.Flush()

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			cancelledWaits := 0
			for _, fu := range futs {
				if _, err := fu.Wait(ctx); errors.Is(err, context.Canceled) {
					cancelledWaits++
				}
			}
			if cancelledWaits == 0 {
				t.Fatal("no Wait observed the cancelled context")
			}
			if got := reg.Scope("fetch.m0").Counter("futures_cancelled").Load(); got == 0 {
				t.Fatal("futures_cancelled not incremented")
			}

			// The futures themselves were not cancelled — each must still
			// resolve with its batch, value or error, within bounded time.
			waitAllResolve(t, keys, futs, 30*time.Second)

			// And the fetcher is still healthy: with the faults lifted, a
			// fresh batch fetch with a live context returns every value.
			ch.SetDefault(msg.Policy{})
			got := 0
			f.GetBatch(context.Background(), keys[:10], func(_ int, key uint64, v []byte, err error) {
				if err == nil && len(v) == 16 {
					got++
				}
			})
			if got != 10 {
				t.Fatalf("fresh GetBatch after cancel: %d of 10 values", got)
			}
		})
	}
}
