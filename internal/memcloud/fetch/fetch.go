// Package fetch is the asynchronous batched cell-read pipeline: the
// client side of the paper's latency-hiding story (§4). Trinity observes
// that a distributed graph computation is network-bound not because it
// moves much data but because it makes many small reads, so the remedy is
// to (a) issue reads asynchronously and overlap them with computation,
// (b) batch reads per destination machine so one frame answers N keys,
// and (c) keep a bounded pipeline of batches in flight per machine.
//
// A Fetcher fronts a memcloud endpoint (slave or proxy). GetAsync returns
// a Future immediately; duplicate in-flight keys coalesce onto one wire
// request. Queued keys are grouped by owner machine and shipped as
// ProtoMultiGet batches when a queue reaches its target size, when the
// oldest queued key has waited MaxDelay, or when Flush is called. The
// target size adapts: it doubles while completions find a backlog
// (throughput-bound) and halves when timer flushes ship small batches
// (latency-bound), within [MinBatch, MaxBatch].
//
// Failure contract: every Future resolves, with a value or an error —
// under message drops, duplicates, delays, and machine failures. A key
// answered MultiGetWrongOwner, or stranded by a transport error, is
// re-routed through the §6.2 protocol (report failure, refresh the
// addressing table, retry against the new owner) a bounded number of
// times (maxRetries, mirroring the memcloud client); exhausting the bound
// resolves the future with the error. Close resolves all queued futures
// with ErrClosed; in-flight batches resolve when their call returns
// (bounded by the msg-layer call timeout).
package fetch

import (
	"context"
	"encoding/binary"
	"errors"
	"time"

	"sync"
	"sync/atomic"

	"trinity/internal/buf"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// ErrClosed resolves futures that were still queued when the fetcher was
// closed.
var ErrClosed = errors.New("fetch: fetcher closed")

// Client is the slice of a memcloud endpoint the pipeline needs. Both
// *memcloud.Slave and *memcloud.Proxy satisfy it.
type Client interface {
	ID() msg.MachineID
	Node() *msg.Node
	// Owner returns the machine currently believed to host the key.
	Owner(key uint64) msg.MachineID
	// LocalGet answers the key from local trunks; ok=false means the key
	// is remote and must go over the wire.
	LocalGet(key uint64) (val []byte, ok bool, err error)
	// RefreshTable re-reads the addressing table (§6.2 step 2).
	RefreshTable(ctx context.Context)
	// ReportFailure tells the leader machine m is unreachable (§6.2
	// step 1). The error only says whether a leader acknowledged the
	// report; the pipeline retries through table refreshes either way.
	ReportFailure(ctx context.Context, m msg.MachineID) error
}

// Options tune the pipeline. Zero values select the defaults.
type Options struct {
	// MaxBatch caps keys per wire frame (default 512).
	MaxBatch int
	// MinBatch floors the adaptive target (default 8).
	MinBatch int
	// MaxDelay bounds how long a queued key may wait before a timer
	// flush ships it regardless of batch size (default 2ms, matching the
	// msg layer's packing flush interval). Synchronous callers should
	// Flush before blocking rather than lean on this timer: it is the
	// safety net that keeps forgotten futures from stalling, and its
	// firing is the signal that shrinks the adaptive batch target.
	MaxDelay time.Duration
	// Window bounds concurrent in-flight batches per destination
	// machine (default 4).
	Window int
	// Metrics selects the registry (default obs.Default()). Metrics land
	// under scope "fetch.m<id>".
	Metrics *obs.Registry
}

func (o *Options) fill() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 512
	}
	if o.MinBatch <= 0 {
		o.MinBatch = 8
	}
	if o.MinBatch > o.MaxBatch {
		o.MinBatch = o.MaxBatch
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default()
	}
}

// Future is one pending cell read. Wait blocks until the pipeline
// resolves it with the cell's value or an error.
//
// The completion channel is lazy: most futures in a pipelined workload
// are already resolved by the time their caller looks (the whole point
// of overlapping reads with computation), so the channel — one
// allocation per key, otherwise — is only created when a caller
// actually has to block. The resolved flag is the synchronization
// point: resolveFut writes val/err before the atomic store, so a Wait
// that observes the flag reads them without touching the mutex.
type Future struct {
	resolvedFlag atomic.Bool
	mu           sync.Mutex
	done         chan struct{} // created on first blocking Wait/Done
	val          []byte
	err          error
	cancelled    *obs.Counter // fetcher's futures_cancelled; nil on pre-resolved futures
}

// Wait blocks until the future resolves or ctx fires. A cancelled Wait
// only unhooks this caller: the read stays in the pipeline and the
// future still resolves when its batch completes (bounded by the msg
// call timeout), so coalescing peers waiting on the same key are
// unaffected and the batching machinery never wedges on an abandoned
// future.
func (f *Future) Wait(ctx context.Context) ([]byte, error) {
	if f.resolvedFlag.Load() {
		return f.val, f.err
	}
	select {
	case <-f.doneChan():
		return f.val, f.err
	case <-ctx.Done():
		if f.cancelled != nil {
			f.cancelled.Add(1)
		}
		return nil, ctx.Err()
	}
}

// Done exposes the completion channel for select-based callers.
func (f *Future) Done() <-chan struct{} { return f.doneChan() }

// closedChan is returned by doneChan for every already-resolved future
// that never had a blocked waiter: readiness polls (select with a
// Done() arm and a default) are the common case in pipelined loops and
// must not cost an allocation per key.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func (f *Future) doneChan() chan struct{} {
	if f.resolvedFlag.Load() {
		return closedChan
	}
	f.mu.Lock()
	if f.done == nil {
		f.done = make(chan struct{})
		if f.resolvedFlag.Load() {
			// Resolved between the flag check and taking the lock;
			// resolveFut already ran and saw done==nil, so close here.
			close(f.done)
		}
	}
	ch := f.done
	f.mu.Unlock()
	return ch
}

// resolveFut completes the future exactly once, waking any blocked
// waiters.
func (f *Future) resolveFut(val []byte, err error) {
	f.mu.Lock()
	f.val, f.err = val, err
	f.resolvedFlag.Store(true)
	if f.done != nil {
		close(f.done)
	}
	f.mu.Unlock()
}

func resolved(val []byte, err error) *Future {
	f := &Future{val: val, err: err}
	f.resolvedFlag.Store(true)
	return f
}

// maxRetries bounds how many times one key may be re-routed through a
// refreshed addressing table before its future resolves with the error.
// It mirrors the memcloud client's §6.2 retry bound: recovery publishes
// the new table before the new owner has necessarily acquired its trunks,
// so the first re-route can draw another wrong-owner disclaimer.
const maxRetries = 3

// entry is one key's place in the pipeline. It lives in the pending map
// from GetAsync until its future resolves, so later GetAsync calls for
// the same key coalesce onto it whether it is queued or in flight.
//
// The future is embedded, not pointed to, and entries come out of a
// slab (see newEntryLocked): in steady state one pipelined read costs a
// fraction of an allocation, where the naive shape (entry, Future,
// done channel) cost three per key.
type entry struct {
	key      uint64
	attempts int // re-routes consumed, capped at maxRetries
	fut      Future
}

// entrySlabSize is how many entries one slab allocation covers. A slab
// is garbage once every entry carved from it has resolved and every
// caller has dropped its future, so a stuck key pins at most this many
// neighbours — bounded, and small against a single wire frame.
const entrySlabSize = 256

// dest is the per-destination-machine batch queue.
type dest struct {
	queue    []*entry
	inflight int // batches on the wire
	target   int // adaptive batch-size watermark
	// mustShip counts queue-front entries that ship regardless of the
	// size watermark: Flush and the age timer promise "everything queued
	// NOW goes out", without also destroying the batching of keys that
	// arrive afterwards.
	mustShip int
	timer    *time.Timer
}

// Fetcher is the asynchronous scatter-gather cell-read pipeline.
type Fetcher struct {
	c   Client
	opt Options

	mu      sync.Mutex
	pending map[uint64]*entry
	dests   map[msg.MachineID]*dest
	slab    []entry // unissued tail of the current entry slab
	closed  bool

	batchSize    *obs.Histogram
	coalesceHits *obs.Counter
	localHits    *obs.Counter
	keysTotal    *obs.Counter
	batches      *obs.Counter
	savedRT      *obs.Counter
	retries      *obs.Counter
	errorsCtr    *obs.Counter
	cancelled    *obs.Counter
	inflight     *obs.Gauge
}

// New builds a fetcher over the endpoint.
func New(c Client, opt Options) *Fetcher {
	opt.fill()
	scope := opt.Metrics.Scope("fetch").Scope(machineScope(c.ID()))
	return &Fetcher{
		c:       c,
		opt:     opt,
		pending: make(map[uint64]*entry),
		dests:   make(map[msg.MachineID]*dest),

		batchSize:    scope.Histogram("batch_size"),
		coalesceHits: scope.Counter("coalesce_hits"),
		localHits:    scope.Counter("local_hits"),
		keysTotal:    scope.Counter("keys"),
		batches:      scope.Counter("batches"),
		savedRT:      scope.Counter("round_trips_saved"),
		retries:      scope.Counter("retries"),
		errorsCtr:    scope.Counter("errors"),
		cancelled:    scope.Counter("futures_cancelled"),
		inflight:     scope.Gauge("inflight"),
	}
}

func machineScope(id msg.MachineID) string {
	// Hand-rolled itoa keeps obs scope names allocation-cheap at startup;
	// ids are small non-negative integers.
	if id == 0 {
		return "m0"
	}
	var buf [24]byte
	i := len(buf)
	for n := uint64(id); n > 0; n /= 10 {
		i--
		buf[i] = byte('0' + n%10)
	}
	return "m" + string(buf[i:])
}

// GetAsync schedules a cell read and returns its future immediately.
// Local keys resolve synchronously without touching the pipeline.
func (f *Fetcher) GetAsync(key uint64) *Future {
	if val, ok, err := f.c.LocalGet(key); ok {
		f.localHits.Add(1)
		return resolved(val, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return resolved(nil, ErrClosed)
	}
	if e, ok := f.pending[key]; ok {
		// Coalesce: this read rides the request already queued or on the
		// wire, saving a round trip a per-key Get would have made.
		f.coalesceHits.Add(1)
		f.savedRT.Add(1)
		return &e.fut
	}
	e := f.newEntryLocked(key)
	f.pending[key] = e
	f.enqueueLocked(e)
	return &e.fut
}

// newEntryLocked carves one entry out of the slab, refilling it when
// exhausted.
func (f *Fetcher) newEntryLocked(key uint64) *entry {
	if len(f.slab) == 0 {
		f.slab = make([]entry, entrySlabSize)
	}
	e := &f.slab[0]
	f.slab = f.slab[1:]
	e.key = key
	e.fut.cancelled = f.cancelled
	return e
}

// GetBatch schedules all keys, flushes the pipeline, and waits; fn (if
// non-nil) is invoked once per key in argument order. When ctx fires
// mid-wait the remaining keys report ctx.Err() without blocking; their
// reads still complete in the background.
func (f *Fetcher) GetBatch(ctx context.Context, keys []uint64, fn func(i int, key uint64, val []byte, err error)) {
	futs := make([]*Future, len(keys))
	for i, k := range keys {
		futs[i] = f.GetAsync(k)
	}
	f.Flush()
	for i, fu := range futs {
		val, err := fu.Wait(ctx)
		if fn != nil {
			fn(i, keys[i], val, err)
		}
	}
}

// Flush ships every queued key without waiting for size or age
// watermarks. It does not wait for responses.
func (f *Fetcher) Flush() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for m, d := range f.dests {
		d.mustShip = len(d.queue)
		f.pumpLocked(m, d)
	}
}

// Close resolves every queued future with ErrClosed and stops the
// pipeline. Batches already on the wire resolve when their call returns.
func (f *Fetcher) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for _, d := range f.dests {
		if d.timer != nil {
			d.timer.Stop()
			d.timer = nil
		}
		for _, e := range d.queue {
			f.resolveLocked(e, nil, ErrClosed)
		}
		d.queue = nil
	}
}

// enqueueLocked routes the entry to its owner's queue and pumps.
func (f *Fetcher) enqueueLocked(e *entry) {
	owner := f.c.Owner(e.key)
	d := f.dests[owner]
	if d == nil {
		d = &dest{target: f.opt.MinBatch}
		f.dests[owner] = d
	}
	d.queue = append(d.queue, e)
	f.pumpLocked(owner, d)
}

// pumpLocked ships as many batches as the watermarks allow: full batches
// whenever the queue reaches the adaptive target, plus whatever a Flush
// or timer promised to drain. It re-arms the age timer for anything that
// stays queued.
func (f *Fetcher) pumpLocked(m msg.MachineID, d *dest) {
	for len(d.queue) > 0 && d.inflight < f.opt.Window &&
		(len(d.queue) >= d.target || d.mustShip > 0) {
		f.shipLocked(m, d)
	}
	if len(d.queue) > 0 && d.timer == nil && !f.closed {
		d.timer = time.AfterFunc(f.opt.MaxDelay, func() { f.timerFlush(m) })
	}
}

// shipLocked puts one batch (up to target keys) on the wire.
func (f *Fetcher) shipLocked(m msg.MachineID, d *dest) {
	n := min(len(d.queue), d.target)
	batch := make([]*entry, n)
	copy(batch, d.queue[:n])
	// batch owns its own copy of the shipped prefix, so the tail can be
	// slid down in place and the queue's backing array reused forever.
	rest := copy(d.queue, d.queue[n:])
	clear(d.queue[rest:])
	d.queue = d.queue[:rest]
	d.mustShip = max(0, d.mustShip-n)
	d.inflight++
	f.inflight.Add(1)
	f.batches.Add(1)
	f.keysTotal.Add(int64(n))
	f.batchSize.Observe(int64(n))
	// A per-key Get client would have made n round trips; this frame
	// makes one.
	f.savedRT.Add(int64(n - 1))
	go f.send(m, batch)
}

// timerFlush is the age watermark: whatever queued since the oldest key
// arrived ships now, even below target. Shipping well under target on a
// timer means the workload is latency-bound, so the target shrinks.
func (f *Fetcher) timerFlush(m msg.MachineID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := f.dests[m]
	if d == nil {
		return
	}
	d.timer = nil
	if len(d.queue) == 0 || f.closed {
		return
	}
	if len(d.queue) < d.target/2 {
		d.target = max(d.target/2, f.opt.MinBatch)
	}
	d.mustShip = len(d.queue)
	f.pumpLocked(m, d)
}

// send performs one wire exchange off the lock and resolves or requeues
// its batch. The request is encoded into a pooled lease and the reply is
// decoded in place out of the reply frame's lease, which is released once
// every future in the batch has resolved — no per-exchange buffer churn.
func (f *Fetcher) send(m msg.MachineID, batch []*entry) {
	req := buf.Get(4 + 8*len(batch))
	rb := req.Bytes()
	binary.LittleEndian.PutUint32(rb, uint32(len(batch)))
	for i, e := range batch {
		binary.LittleEndian.PutUint64(rb[4+8*i:], e.key)
	}
	// Background, not a caller's ctx: one wire batch aggregates reads from
	// many callers with different budgets, so no single caller's deadline
	// may kill it. The msg-layer CallTimeout bounds the exchange.
	lease, resp, err := f.c.Node().CallLease(context.Background(), m, memcloud.ProtoMultiGet, rb)
	req.Release()
	switch {
	case err != nil:
		f.transportFailed(m, batch, err)
	default:
		results, derr := memcloud.DecodeMultiGetResp(resp, len(batch))
		if derr != nil {
			f.errorsCtr.Add(1)
			f.failBatch(batch, derr)
		} else {
			f.deliver(batch, results)
		}
		lease.Release()
	}
	f.completed(m)
}

// deliver resolves each entry from its per-key status; wrong-owner keys
// get re-routed through a refreshed table, up to maxRetries times.
//
// Values decode in place: each results[i].Val aliases the reply frame's
// lease, held by send until deliver returns. Futures outlive the frame
// and their callers retain values indefinitely (the subgraph matcher's
// cell cache), so OK values are copied out — but into one contiguous
// arena for the whole batch, not one allocation per key, and the arena
// holds only payload bytes, no wire headers.
func (f *Fetcher) deliver(batch []*entry, results []memcloud.MultiGetResult) {
	total := 0
	for i := range results {
		if results[i].Status == memcloud.MultiGetOK {
			total += len(results[i].Val)
		}
	}
	arena := make([]byte, 0, total) //alloc:ok one caller-owned value arena per batch
	var moved []*entry
	for i, e := range batch {
		switch results[i].Status {
		case memcloud.MultiGetOK:
			off := len(arena)
			arena = append(arena, results[i].Val...)
			f.resolve(e, arena[off:len(arena):len(arena)], nil)
		case memcloud.MultiGetNotFound:
			f.resolve(e, nil, memcloud.ErrNotFound)
		default: // MultiGetWrongOwner
			if e.attempts >= maxRetries {
				f.resolve(e, nil, memcloud.ErrWrongOwner)
			} else {
				moved = append(moved, e)
			}
		}
	}
	if len(moved) > 0 {
		f.requeue(moved)
	}
}

// transportFailed handles a batch whose call never got an answer: report
// the machine, refresh the table, and give each key its single retry.
func (f *Fetcher) transportFailed(m msg.MachineID, batch []*entry, err error) {
	f.errorsCtr.Add(1)
	if errors.Is(err, msg.ErrUnreachable) || errors.Is(err, msg.ErrTimeout) {
		// Fire-and-forget: per-key retries below go through a table
		// refresh, which re-routes whether or not a leader acked this.
		_ = f.c.ReportFailure(context.Background(), m)
	}
	var retry []*entry
	for _, e := range batch {
		if e.attempts >= maxRetries {
			f.resolve(e, nil, err)
		} else {
			retry = append(retry, e)
		}
	}
	if len(retry) > 0 {
		f.requeue(retry)
	}
}

// requeue re-routes entries after a failure: refresh the addressing table
// once for the whole group, then resolve each key locally if its trunk
// moved to this very machine, or re-batch it toward the new owner. Runs
// in a send goroutine, so the brief settling pause for repeat offenders
// (recovery publishes the table before every new owner has acquired its
// trunks) blocks no caller.
func (f *Fetcher) requeue(entries []*entry) {
	for _, e := range entries {
		if e.attempts > 1 {
			time.Sleep(time.Millisecond)
			break
		}
	}
	f.c.RefreshTable(context.Background())
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range entries {
		e.attempts++
		f.retries.Add(1)
		if f.closed {
			f.resolveLocked(e, nil, ErrClosed)
			continue
		}
		if val, ok, err := f.c.LocalGet(e.key); ok {
			f.localHits.Add(1)
			f.resolveLocked(e, val, err)
			continue
		}
		f.enqueueLocked(e)
	}
}

// completed retires one in-flight batch and adapts: a backlog at
// completion time means the pipeline is throughput-bound, so the target
// grows to amortize more keys per frame.
func (f *Fetcher) completed(m msg.MachineID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := f.dests[m]
	if d == nil {
		return
	}
	d.inflight--
	f.inflight.Add(-1)
	if len(d.queue) >= d.target {
		d.target = min(d.target*2, f.opt.MaxBatch)
	}
	f.pumpLocked(m, d)
}

func (f *Fetcher) failBatch(batch []*entry, err error) {
	for _, e := range batch {
		f.resolve(e, nil, err)
	}
}

func (f *Fetcher) resolve(e *entry, val []byte, err error) {
	f.mu.Lock()
	f.resolveLocked(e, val, err)
	f.mu.Unlock()
}

// resolveLocked completes a future. The pending-map delete happens under
// the same lock as coalescing lookups, so a GetAsync after resolution
// starts a fresh read instead of receiving a stale value.
func (f *Fetcher) resolveLocked(e *entry, val []byte, err error) {
	delete(f.pending, e.key)
	e.fut.resolveFut(val, err)
}
