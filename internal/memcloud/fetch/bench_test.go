package fetch_test

import (
	"context"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/memcloud/fetch"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// BenchmarkMultiGetPipeline measures the full batched multi-get path one
// machine sees under an analytics scan: batches of mostly-remote keys
// encoded into a request frame, served by the owners' trunks, decoded in
// place from the reply lease and resolved through futures. This is the
// wire-level half of the zero-copy read path, so allocs/op here is the
// gated number: steady state should be dominated by the one caller-owned
// value arena per batch, with frames and reply buffers recycled through
// the buf pool.
func BenchmarkMultiGetPipeline(b *testing.B) {
	reg := obs.NewRegistry()
	c := memcloud.New(memcloud.Config{
		Machines: 4,
		Msg: msg.Options{
			FlushInterval: 100 * time.Microsecond,
			CallTimeout:   10 * time.Second,
		},
		Metrics: reg,
	})
	defer c.Close()
	s0 := c.Slave(0)

	const (
		keyCount  = 4096
		batchSize = 256
		cellSize  = 64
	)
	payload := val(cellSize, 3)
	keys := make([]uint64, keyCount)
	for k := uint64(0); k < keyCount; k++ {
		keys[k] = k
		if err := s0.Put(context.Background(), k, payload); err != nil {
			b.Fatal(err)
		}
	}

	f := fetch.New(s0, fetch.Options{Metrics: reg})
	defer f.Close()

	batch := make([]uint64, batchSize)
	b.ReportAllocs()
	b.SetBytes(int64(batchSize * cellSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * batchSize) % keyCount
		copy(batch, keys[off:off+batchSize])
		f.GetBatch(context.Background(), batch, func(_ int, key uint64, v []byte, err error) {
			if err != nil {
				b.Fatalf("key %d: %v", key, err)
			}
			if len(v) != cellSize {
				b.Fatalf("key %d: got %d bytes, want %d", key, len(v), cellSize)
			}
		})
	}
}
