package fetch_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/memcloud/fetch"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

func testConfig(machines int, reg *obs.Registry) memcloud.Config {
	return memcloud.Config{
		Machines: machines,
		Msg: msg.Options{
			FlushInterval: time.Millisecond,
			CallTimeout:   time.Second,
		},
		Metrics: reg,
	}
}

func val(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seed + byte(i)
	}
	return out
}

// remoteKey finds a key s does not own.
func remoteKey(s *memcloud.Slave, from uint64) uint64 {
	for k := from; ; k++ {
		if s.Owner(k) != s.ID() {
			return k
		}
	}
}

// localKey finds a key s owns.
func localKey(s *memcloud.Slave, from uint64) uint64 {
	for k := from; ; k++ {
		if s.Owner(k) == s.ID() {
			return k
		}
	}
}

func TestGetBatchFetchesEveryKey(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(4, reg))
	defer c.Close()
	s0 := c.Slave(0)

	const n = 400
	keys := make([]uint64, n)
	for k := uint64(0); k < n; k++ {
		keys[k] = k
		if err := s0.Put(context.Background(), k, val(24, byte(k))); err != nil {
			t.Fatal(err)
		}
	}

	f := fetch.New(s0, fetch.Options{Metrics: reg})
	defer f.Close()
	got := 0
	f.GetBatch(context.Background(), keys, func(i int, key uint64, v []byte, err error) {
		if err != nil {
			t.Fatalf("key %d: %v", key, err)
		}
		if !bytes.Equal(v, val(24, byte(key))) {
			t.Fatalf("key %d: corrupt value", key)
		}
		got++
	})
	if got != n {
		t.Fatalf("callback ran %d times, want %d", got, n)
	}

	scope := reg.Scope("fetch.m0")
	remote := scope.Counter("keys").Load()
	batches := scope.Counter("batches").Load()
	if remote == 0 || batches == 0 {
		t.Fatalf("no batched traffic: keys=%d batches=%d", remote, batches)
	}
	if batches >= remote {
		t.Fatalf("batching saved nothing: %d batches for %d remote keys", batches, remote)
	}
	if saved := scope.Counter("round_trips_saved").Load(); saved != remote-batches {
		t.Fatalf("round_trips_saved = %d, want %d", saved, remote-batches)
	}
	if scope.Counter("local_hits").Load() == 0 {
		t.Fatal("no key of 400 was served locally on a 4-machine cloud")
	}
}

func TestGetAsyncCoalescesDuplicateInFlightKeys(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	key := remoteKey(s0, 0)
	if err := s0.Put(context.Background(), key, val(16, 7)); err != nil {
		t.Fatal(err)
	}

	// Big watermark + long age bound: the key stays queued until Flush,
	// so the second GetAsync must find it pending.
	f := fetch.New(s0, fetch.Options{MinBatch: 64, MaxDelay: time.Hour, Metrics: reg})
	defer f.Close()
	fu1 := f.GetAsync(key)
	fu2 := f.GetAsync(key)
	if fu1 != fu2 {
		t.Fatal("duplicate in-flight key did not coalesce onto one future")
	}
	f.Flush()
	v, err := fu1.Wait(context.Background())
	if err != nil || !bytes.Equal(v, val(16, 7)) {
		t.Fatalf("coalesced future: val=%v err=%v", v, err)
	}

	scope := reg.Scope("fetch.m0")
	if hits := scope.Counter("coalesce_hits").Load(); hits != 1 {
		t.Fatalf("coalesce_hits = %d, want 1", hits)
	}
	// After resolution the key is no longer pending: a new GetAsync is a
	// fresh read, not a stale coalesce.
	fu3 := f.GetAsync(key)
	if fu3 == fu1 {
		t.Fatal("GetAsync after resolution returned the stale future")
	}
	f.Flush()
	if _, err := fu3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestLocalKeysResolveWithoutWire(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	key := localKey(s0, 0)
	if err := s0.Put(context.Background(), key, val(8, 3)); err != nil {
		t.Fatal(err)
	}
	f := fetch.New(s0, fetch.Options{Metrics: reg})
	defer f.Close()

	fu := f.GetAsync(key)
	select {
	case <-fu.Done():
	default:
		t.Fatal("local read did not resolve synchronously")
	}
	if v, err := fu.Wait(context.Background()); err != nil || !bytes.Equal(v, val(8, 3)) {
		t.Fatalf("local read: val=%v err=%v", v, err)
	}
	scope := reg.Scope("fetch.m0")
	if scope.Counter("local_hits").Load() != 1 {
		t.Fatal("local hit not counted")
	}
	if scope.Counter("batches").Load() != 0 {
		t.Fatal("local read went over the wire")
	}
}

func TestMissingKeyResolvesNotFound(t *testing.T) {
	c := memcloud.New(testConfig(2, obs.NewRegistry()))
	defer c.Close()
	s0 := c.Slave(0)

	f := fetch.New(s0, fetch.Options{Metrics: obs.NewRegistry()})
	defer f.Close()
	for _, key := range []uint64{localKey(s0, 500), remoteKey(s0, 500)} {
		if _, err := f.GetAsync(key).Wait(context.Background()); !errors.Is(err, memcloud.ErrNotFound) {
			t.Fatalf("key %d: got %v, want ErrNotFound", key, err)
		}
	}
}

func TestCloseResolvesQueuedFutures(t *testing.T) {
	c := memcloud.New(testConfig(2, obs.NewRegistry()))
	defer c.Close()
	s0 := c.Slave(0)

	f := fetch.New(s0, fetch.Options{MinBatch: 64, MaxDelay: time.Hour, Metrics: obs.NewRegistry()})
	fu := f.GetAsync(remoteKey(s0, 0))
	f.Close()
	if _, err := fu.Wait(context.Background()); !errors.Is(err, fetch.ErrClosed) {
		t.Fatalf("queued future after Close: %v, want ErrClosed", err)
	}
	if _, err := f.GetAsync(remoteKey(s0, 0)).Wait(context.Background()); !errors.Is(err, fetch.ErrClosed) {
		t.Fatal("GetAsync after Close must resolve ErrClosed")
	}
}

func TestAdaptiveBatchSizeGrowsUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	const n = 4000
	s1 := c.Slave(1)
	keys := make([]uint64, 0, n)
	for k := uint64(0); len(keys) < n; k++ {
		if s0.Owner(k) != s1.ID() {
			continue
		}
		if err := s0.Put(context.Background(), k, val(8, byte(k))); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}

	// Window 1 forces a backlog to build behind the single in-flight
	// batch, which is exactly what the adaptive target feeds on.
	f := fetch.New(s0, fetch.Options{MinBatch: 8, Window: 1, Metrics: reg})
	defer f.Close()
	futs := make([]*fetch.Future, n)
	for i, k := range keys {
		futs[i] = f.GetAsync(k)
	}
	f.Flush()
	for i, fu := range futs {
		if _, err := fu.Wait(context.Background()); err != nil {
			t.Fatalf("key %d: %v", keys[i], err)
		}
	}
	hist := reg.Scope("fetch.m0").Histogram("batch_size").Snapshot()
	if hist.Max < 32 {
		t.Fatalf("batch size never grew past %d under a %d-key backlog", hist.Max, n)
	}
}

func TestFailedMachineKeysResolveViaRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(3, reg)
	cfg.Msg.CallTimeout = 200 * time.Millisecond
	cfg.Cluster.FailureTimeout = time.Minute
	c := memcloud.New(cfg)
	defer c.Close()
	s0 := c.Slave(0)

	// Keys owned by machine 2, backed up so survivors can recover them.
	var keys []uint64
	for k := uint64(0); len(keys) < 20; k++ {
		if s0.Owner(k) == 2 {
			if err := s0.Put(context.Background(), k, val(16, byte(k))); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		}
	}
	if err := c.Backup(); err != nil {
		t.Fatal(err)
	}
	c.KillMachine(2)

	f := fetch.New(s0, fetch.Options{Metrics: reg})
	defer f.Close()
	f.GetBatch(context.Background(), keys, func(i int, key uint64, v []byte, err error) {
		if err != nil {
			t.Fatalf("key %d after owner death: %v", key, err)
		}
		if !bytes.Equal(v, val(16, byte(key))) {
			t.Fatalf("key %d: corrupt recovered value", key)
		}
	})
	if retries := reg.Scope("fetch.m0").Counter("retries").Load(); retries == 0 {
		t.Fatal("recovery did not go through the pipeline retry path")
	}
	if owner := s0.Owner(keys[0]); owner == 2 {
		t.Fatal("table still names the dead machine")
	}
}

func TestProxyBackedFetcher(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(3, reg))
	defer c.Close()
	s0 := c.Slave(0)

	const n = 120
	keys := make([]uint64, n)
	for k := uint64(0); k < n; k++ {
		keys[k] = k
		if err := s0.Put(context.Background(), k, val(12, byte(k))); err != nil {
			t.Fatal(err)
		}
	}
	p := c.NewProxy()
	defer p.Close()
	f := fetch.New(p, fetch.Options{Metrics: reg})
	defer f.Close()
	f.GetBatch(context.Background(), keys, func(i int, key uint64, v []byte, err error) {
		if err != nil {
			t.Fatalf("key %d via proxy: %v", key, err)
		}
		if !bytes.Equal(v, val(12, byte(key))) {
			t.Fatalf("key %d via proxy: corrupt", key)
		}
	})
	scope := reg.Scope(fmt.Sprintf("fetch.m%d", p.ID()))
	if scope.Counter("local_hits").Load() != 0 {
		t.Fatal("a data-less proxy cannot serve local hits")
	}
	if scope.Counter("batches").Load() == 0 {
		t.Fatal("proxy fetcher sent no batches")
	}
}
