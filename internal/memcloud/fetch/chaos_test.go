package fetch_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/memcloud/fetch"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// chaosConfig tunes for fault injection: a short call timeout so dropped
// frames are detected in milliseconds, and a failure timeout high enough
// that only the explicit failure-report path drives recovery.
func chaosConfig(machines int, reg *obs.Registry) memcloud.Config {
	cfg := testConfig(machines, reg)
	cfg.Msg.CallTimeout = 200 * time.Millisecond
	cfg.Cluster.FailureTimeout = time.Minute
	return cfg
}

// waitAllResolve fails the test if any future is still unresolved after
// the deadline — the pipeline's core promise is that no future wedges.
func waitAllResolve(t *testing.T, keys []uint64, futs []*fetch.Future, d time.Duration) (values, errors int) {
	t.Helper()
	deadline := time.After(d)
	for i, fu := range futs {
		select {
		case <-fu.Done():
		case <-deadline:
			t.Fatalf("future for key %d wedged: unresolved after %v", keys[i], d)
		}
		v, err := fu.Wait(context.Background())
		if err != nil {
			errors++
			continue
		}
		values++
		if !bytes.Equal(v, val(16, byte(keys[i]))) {
			t.Fatalf("key %d resolved with corrupt value", keys[i])
		}
	}
	return values, errors
}

// TestChaosFetcherDeliversUnderDupDelay: duplicated and reordered frames
// are contract-preserving faults — every future must resolve with the
// correct value, no errors, no spurious recoveries.
func TestChaosFetcherDeliversUnderDupDelay(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := obs.NewRegistry()
			c, ch := memcloud.NewChaosCloud(chaosConfig(3, reg), seed)
			defer c.Close()
			s0 := c.Slave(0)

			const n = 300
			keys := make([]uint64, n)
			for k := uint64(0); k < n; k++ {
				keys[k] = k
				if err := s0.Put(context.Background(), k, val(16, byte(k))); err != nil {
					t.Fatal(err)
				}
			}
			ch.SetDefault(msg.Policy{
				Dup:      0.10,
				Delay:    0.30,
				MaxDelay: 2 * time.Millisecond,
				Jitter:   100 * time.Microsecond,
			})

			f := fetch.New(s0, fetch.Options{Metrics: reg})
			defer f.Close()
			futs := make([]*fetch.Future, n)
			for i, k := range keys {
				futs[i] = f.GetAsync(k)
			}
			f.Flush()
			values, errs := waitAllResolve(t, keys, futs, 30*time.Second)
			if errs != 0 || values != n {
				t.Fatalf("%d values, %d errors under benign chaos; want %d values", values, errs, n)
			}
			if rec := c.Stats().Recoveries; rec != 0 {
				t.Fatalf("spurious recoveries under benign chaos: %d", rec)
			}
		})
	}
}

// TestChaosFetcherFuturesAllResolveUnderDrops: with frames silently lost,
// calls time out, machines get reported, trunks get recovered — and still
// no future may wedge. Each resolves with a value (correct bytes) or an
// error, within a bounded time.
func TestChaosFetcherFuturesAllResolveUnderDrops(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := obs.NewRegistry()
			c, ch := memcloud.NewChaosCloud(chaosConfig(3, reg), seed)
			defer c.Close()
			s0 := c.Slave(0)

			const n = 200
			keys := make([]uint64, n)
			for k := uint64(0); k < n; k++ {
				keys[k] = k
				if err := s0.Put(context.Background(), k, val(16, byte(k))); err != nil {
					t.Fatal(err)
				}
			}
			// Backup first: a dropped frame can escalate into a failure
			// report, and recovered trunks must have something to recover.
			if err := c.Backup(); err != nil {
				t.Fatal(err)
			}
			ch.SetDefault(msg.Policy{
				Drop:     0.03,
				Dup:      0.05,
				Delay:    0.20,
				MaxDelay: 2 * time.Millisecond,
			})

			f := fetch.New(s0, fetch.Options{Metrics: reg})
			defer f.Close()
			futs := make([]*fetch.Future, n)
			for i, k := range keys {
				futs[i] = f.GetAsync(k)
			}
			f.Flush()
			values, errs := waitAllResolve(t, keys, futs, 60*time.Second)
			t.Logf("seed %d: %d values, %d errors, retries=%d",
				seed, values, errs, reg.Scope("fetch.m0").Counter("retries").Load())
			if values == 0 {
				t.Fatal("no future resolved with a value under lossy chaos")
			}
		})
	}
}

// TestChaosFetcherIsolatedOwnerResolves: the owner of a batch of keys is
// partitioned away mid-pipeline. The batch times out, the failure report
// recovers the trunks to survivors, and every future must still resolve —
// with the recovered value.
func TestChaosFetcherIsolatedOwnerResolves(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := obs.NewRegistry()
			c, ch := memcloud.NewChaosCloud(chaosConfig(3, reg), seed)
			defer c.Close()
			s0 := c.Slave(0)

			var keys []uint64
			for k := uint64(0); len(keys) < 30; k++ {
				if s0.Owner(k) == 2 {
					if err := s0.Put(context.Background(), k, val(16, byte(k))); err != nil {
						t.Fatal(err)
					}
					keys = append(keys, k)
				}
			}
			if err := c.Backup(); err != nil {
				t.Fatal(err)
			}
			ch.Isolate(2)

			f := fetch.New(s0, fetch.Options{Metrics: reg})
			defer f.Close()
			futs := make([]*fetch.Future, len(keys))
			for i, k := range keys {
				futs[i] = f.GetAsync(k)
			}
			f.Flush()
			values, errs := waitAllResolve(t, keys, futs, 60*time.Second)
			if values != len(keys) {
				t.Fatalf("%d of %d keys recovered, %d errors", values, len(keys), errs)
			}
			if owner := s0.Owner(keys[0]); owner == 2 {
				t.Fatal("table still names the isolated machine as owner")
			}
		})
	}
}
