package memcloud

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"trinity/internal/cluster"
	"trinity/internal/msg"
)

// failoverConfig tunes a 4-machine cloud for kill tests driven by the
// background failure detector: fast heartbeats, a short failure timeout
// so both kills land in one detector window, a short call timeout so
// survivors notice dead owners in milliseconds, and buffered logging so
// acknowledged writes survive via WAL replay.
func failoverConfig() Config {
	cfg := testConfig(4)
	cfg.BufferedLogging = true
	cfg.Msg.CallTimeout = 200 * time.Millisecond
	cfg.Cluster.HeartbeatInterval = 10 * time.Millisecond
	cfg.Cluster.FailureTimeout = 60 * time.Millisecond
	return cfg
}

// cloudLeader returns the current leader slave, or nil.
func cloudLeader(c *Cloud) *Slave {
	for i := 0; i < c.Slaves(); i++ {
		if s := c.Slave(i); s.alive.Load() && s.member.IsLeader() {
			return s
		}
	}
	return nil
}

// deadOwnedTrunks counts trunks the table assigns to any machine in dead.
func deadOwnedTrunks(t *cluster.Table, dead map[msg.MachineID]bool) int {
	n := 0
	for _, owner := range t.Slots {
		if dead[owner] {
			n++
		}
	}
	return n
}

// clusterCounter sums a cluster.m<id>.<name> counter across all machines.
func clusterCounter(c *Cloud, name string) int64 {
	var total int64
	for _, v := range c.Metrics().Snapshot() {
		if v.Kind == "counter" && strings.HasPrefix(v.Name, "cluster.m") &&
			strings.HasSuffix(v.Name, "."+name) {
			total += v.Int
		}
	}
	return total
}

// getEventually reads a key, retrying transient post-failover errors:
// the addressing table can commit before the new owner finishes loading
// the trunk from TFS, and the §6.2 protocol has clients retry until the
// acquisition lands.
func getEventually(t *testing.T, s *Slave, key uint64) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := s.Get(context.Background(), key)
		if err == nil {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %d unreadable after failover: %v", key, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosFailoverDoubleKillConverges kills 2 of 4 machines inside one
// detector window. The serialized control plane must converge: no trunk
// remains assigned to a dead machine, the table version chain has no gaps
// (persisted version == in-memory version == initial + committed
// recoveries), and every acknowledged pre-kill Put — including WAL-only
// writes after the last backup — is readable after failover.
func TestChaosFailoverDoubleKillConverges(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, _ := NewChaosCloud(failoverConfig(), seed)
			defer c.Close()
			ctx := context.Background()

			leader := cloudLeader(c)
			if leader == nil {
				t.Fatal("no leader")
			}
			// Victims: two non-leaders. Access point: the remaining slave.
			var victims []msg.MachineID
			var access *Slave
			for i := 0; i < c.Slaves(); i++ {
				s := c.Slave(i)
				if s == leader {
					continue
				}
				if len(victims) < 2 {
					victims = append(victims, s.ID())
				} else {
					access = s
				}
			}
			dead := map[msg.MachineID]bool{victims[0]: true, victims[1]: true}

			// Phase 1: acknowledged writes covered by a trunk backup.
			const backed, walOnly = 200, 100
			for k := uint64(0); k < backed; k++ {
				if err := access.Put(ctx, k, val(32, byte(k))); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Backup(); err != nil {
				t.Fatal(err)
			}
			// Phase 2: acknowledged writes that exist only in the WAL.
			for k := uint64(backed); k < backed+walOnly; k++ {
				if err := access.Put(ctx, k, val(32, byte(k))); err != nil {
					t.Fatal(err)
				}
			}
			initial := leader.member.Table().Version

			// Both kills inside one detector window.
			c.KillMachine(victims[0])
			c.KillMachine(victims[1])

			// The background detector must notice, confirm concurrently,
			// and commit serialized recoveries.
			deadline := time.Now().Add(5 * time.Second)
			for deadOwnedTrunks(leader.member.Table(), dead) > 0 {
				if time.Now().After(deadline) {
					t.Fatalf("%d trunks still assigned to dead machines",
						deadOwnedTrunks(leader.member.Table(), dead))
				}
				time.Sleep(5 * time.Millisecond)
			}

			// Every acknowledged Put survives via dump + WAL replay.
			for k := uint64(0); k < backed+walOnly; k++ {
				if got := getEventually(t, access, k); !bytes.Equal(got, val(32, byte(k))) {
					t.Fatalf("key %d corrupt after double failover", k)
				}
			}

			// Version chain: each commit bumps by exactly one; the CAS
			// protocol forbids skips and out-of-order overwrites.
			final := leader.member.Table().Version
			commits := leader.member.Stats().Recoveries
			if commits < 1 || commits > 2 {
				t.Fatalf("recoveries = %d, want 1 or 2", commits)
			}
			if final != initial+uint64(commits) {
				t.Fatalf("version chain broken: v%d -> v%d over %d commits (cas_retries=%d)",
					initial, final, commits, clusterCounter(c, "table_cas_retries"))
			}
			// Persist-before-broadcast: TFS primary replica is current.
			payload, err := c.FS().ReadFile("cluster/addressing-table")
			if err != nil {
				t.Fatal(err)
			}
			persisted, err := cluster.DecodeTable(payload)
			if err != nil {
				t.Fatal(err)
			}
			if persisted.Version != final {
				t.Fatalf("persistent replica v%d != leader v%d", persisted.Version, final)
			}
			if deadOwnedTrunks(persisted, dead) != 0 {
				t.Fatal("persistent replica still assigns trunks to dead machines")
			}

			// Measured failover latency (suspicion -> committed table),
			// cited in EXPERIMENTS.md.
			for _, v := range c.Metrics().Snapshot() {
				if strings.HasSuffix(v.Name, ".failover_ns") && v.Hist.Count > 0 {
					t.Logf("%s: n=%d mean=%.1fms max=%.1fms", v.Name, v.Hist.Count,
						float64(v.Hist.Sum)/float64(v.Hist.Count)/1e6,
						float64(v.Hist.Max)/1e6)
				}
			}
		})
	}
}

// TestChaosFailoverLeaderIsolatedMidCommit crashes the leader in the §6.2
// danger window: the commit hook isolates it right after the new table
// reaches the persistent replica but before the broadcast, so the commit
// is durable yet no survivor heard about it. A successor must claim the
// flag, adopt the persisted (newer) table, and finish the recovery; the
// deposed leader — still able to reach TFS — must step down instead of
// clobbering the successor's commit chain.
func TestChaosFailoverLeaderIsolatedMidCommit(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, ch := NewChaosCloud(failoverConfig(), seed)
			defer c.Close()
			ctx := context.Background()

			leader := cloudLeader(c)
			if leader == nil {
				t.Fatal("no leader")
			}
			var victim, access *Slave
			for i := 0; i < c.Slaves(); i++ {
				s := c.Slave(i)
				if s == leader {
					continue
				}
				if victim == nil {
					victim = s
				} else if access == nil {
					access = s
				}
			}

			const keys = 200
			for k := uint64(0); k < keys; k++ {
				if err := access.Put(ctx, k, val(24, byte(k))); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Backup(); err != nil {
				t.Fatal(err)
			}
			// WAL-only tail.
			for k := uint64(keys); k < keys+50; k++ {
				if err := access.Put(ctx, k, val(24, byte(k))); err != nil {
					t.Fatal(err)
				}
			}

			// The moment the victim's recovery table hits TFS, the leader
			// drops off the network — before it can broadcast or reply.
			var once sync.Once
			leaderID := leader.ID()
			leader.member.SetCommitHook(func(*cluster.Table) {
				once.Do(func() { ch.Isolate(leaderID) })
			})

			c.KillMachine(victim.ID())

			// Survivors must converge on a table that assigns every trunk
			// to a live, reachable machine (neither the victim nor the
			// isolated ex-leader).
			dead := map[msg.MachineID]bool{victim.ID(): true, leaderID: true}
			deadline := time.Now().Add(10 * time.Second)
			for deadOwnedTrunks(access.member.Table(), dead) > 0 {
				if time.Now().After(deadline) {
					t.Fatalf("%d trunks still on dead/isolated machines",
						deadOwnedTrunks(access.member.Table(), dead))
				}
				time.Sleep(5 * time.Millisecond)
			}

			// A successor leads; the deposed leader knows it is not it.
			// Poll: leadership may be mid-hand-off at any single instant.
			var successor *Slave
			for time.Now().Before(deadline) {
				if s := cloudLeader(c); s != nil && s.ID() != leaderID {
					successor = s
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if successor == nil {
				t.Fatal("no successor leader emerged")
			}
			if leader.member.IsLeader() {
				t.Fatal("isolated ex-leader still believes it leads")
			}
			if got := clusterCounter(c, "stepdowns"); got < 1 {
				t.Fatalf("stepdowns = %d, want >= 1 (deposed leader must step down)", got)
			}

			// Every acknowledged write — including those owned by the
			// victim and the ex-leader — is readable from the survivors.
			for k := uint64(0); k < keys+50; k++ {
				if got := getEventually(t, access, k); !bytes.Equal(got, val(24, byte(k))) {
					t.Fatalf("key %d corrupt after mid-commit crash", k)
				}
			}

			// The persistent replica is the successor's latest table; the
			// mid-commit version was adopted, not skipped or rewritten.
			payload, err := c.FS().ReadFile("cluster/addressing-table")
			if err != nil {
				t.Fatal(err)
			}
			persisted, err := cluster.DecodeTable(payload)
			if err != nil {
				t.Fatal(err)
			}
			if sv := successor.member.Table().Version; persisted.Version != sv {
				t.Fatalf("persistent v%d != successor v%d", persisted.Version, sv)
			}
			if deadOwnedTrunks(persisted, dead) != 0 {
				t.Fatal("persistent replica still assigns trunks to dead/isolated machines")
			}
			c.KillMachine(leaderID) // full crash of the isolated ex-leader
		})
	}
}
