package memcloud

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trinity/internal/msg"
)

// chaosConfig is testConfig with timeouts tuned for fault injection: a
// short call timeout so unreachable owners are detected in milliseconds,
// and a failure timeout high enough that only the explicit §6.2
// failure-report path (not the background heartbeat monitor) drives
// recovery — keeping the schedule deterministic.
func chaosConfig(machines int) Config {
	cfg := testConfig(machines)
	cfg.Msg.CallTimeout = 200 * time.Millisecond
	cfg.Cluster.FailureTimeout = time.Minute
	return cfg
}

// TestChaosWithOwnerRetryRecoversIsolatedOwner drives the full §6.2
// protocol with a real fault: the owner of a key is partitioned away, a
// Get from another machine times out, reports the failure, waits for the
// addressing table to change, and retries against the trunk's new home —
// which serves the value recovered from the TFS backup.
func TestChaosWithOwnerRetryRecoversIsolatedOwner(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, ch := NewChaosCloud(chaosConfig(3), seed)
			defer c.Close()
			s0 := c.Slave(0)

			// A key owned by machine 2 (neither the access point nor the
			// likely leader).
			var key uint64
			for k := uint64(0); ; k++ {
				if s0.Owner(k) == 2 {
					key = k
					break
				}
			}
			want := val(64, 9)
			if err := s0.Put(context.Background(), key, want); err != nil {
				t.Fatal(err)
			}
			if err := c.Backup(); err != nil {
				t.Fatal(err)
			}

			before := c.Stats().Retries
			ch.Isolate(2)
			got, err := s0.Get(context.Background(), key)
			if err != nil {
				t.Fatalf("get after isolating the owner: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("recovered value corrupt")
			}
			if c.Stats().Retries <= before {
				t.Fatal("recovery did not go through the retry path")
			}
			if owner := s0.Owner(key); owner == 2 {
				t.Fatal("table still names the isolated machine as owner")
			}
		})
	}
}

// TestChaosStaleTableWrongOwnerBounce: a machine that missed a table
// broadcast (its link from the leader is cut) sends a request to the old
// owner of a relocated trunk. The old owner answers ErrWrongOwner — as a
// wire code, not message text — and the stale machine refreshes its table
// from TFS and retries against the new owner.
func TestChaosStaleTableWrongOwnerBounce(t *testing.T) {
	c, ch := NewChaosCloud(chaosConfig(3), 1)
	defer c.Close()
	s0 := c.Slave(0)

	var leader msg.MachineID = -1
	for i := 0; i < c.Slaves(); i++ {
		if c.Slave(i).Member().IsLeader() {
			leader = c.Slave(i).ID()
		}
	}
	if leader < 0 {
		t.Fatal("no leader")
	}
	victim := msg.MachineID((int(leader) + 1) % 3)

	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := s0.Put(context.Background(), k, val(16, byte(k))); err != nil {
			t.Fatal(err)
		}
	}

	// The victim stops hearing from the leader: the join's table
	// broadcast will never reach it.
	ch.Cut(leader, victim)
	joiner, err := c.AddMachine()
	if err != nil {
		t.Fatal(err)
	}

	// A key whose trunk moved to the joiner, away from a machine that DID
	// apply the update (so it released the trunk), while the victim's
	// replica still names the old owner. The old owner must not be the
	// leader: the victim cannot hear the leader at all, so a call to it
	// would escalate into a failure report instead of a clean
	// wrong-owner bounce.
	sv := c.Slave(int(victim))
	var key uint64
	var stale msg.MachineID
	found := false
	for k := uint64(0); k < n; k++ {
		old := sv.Owner(k)
		fresh := joiner.Owner(k)
		if fresh == joiner.ID() && old != joiner.ID() && old != victim && old != leader {
			key, stale, found = k, old, true
			break
		}
	}
	if !found {
		t.Fatal("no trunk relocated away from an updated non-leader incumbent")
	}
	// Make sure the old owner has applied the join table (and released
	// the trunk) before poking it; the join broadcast is asynchronous.
	want := joiner.Member().Table().Version
	deadline := time.Now().Add(2 * time.Second)
	for c.Slave(int(stale)).Member().Table().Version < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	before := c.Stats().Retries
	got, err := sv.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("get with stale table: %v", err)
	}
	if !bytes.Equal(got, val(16, byte(key))) {
		t.Fatal("value corrupt after wrong-owner bounce")
	}
	if c.Stats().Retries <= before {
		t.Fatal("stale table did not bounce through the retry path")
	}
	if got := sv.Owner(key); got != joiner.ID() {
		t.Fatalf("victim's table replica not refreshed after the bounce: owner(key=%d)=%d, joiner=%d, victim=%d, leader=%d, version=%d vs %d",
			key, got, joiner.ID(), victim, leader, sv.Member().Table().Version, joiner.Member().Table().Version)
	}
}

// TestChaosRetriesExhausted: when the table keeps naming an owner that
// keeps disclaiming the trunk, withOwner gives up with
// ErrRetriesExhausted after maxRetries table refreshes.
func TestChaosRetriesExhausted(t *testing.T) {
	c, _ := NewChaosCloud(chaosConfig(2), 1)
	defer c.Close()
	s0, s1 := c.Slave(0), c.Slave(1)

	var key uint64
	for k := uint64(0); ; k++ {
		if s0.Owner(k) == s1.ID() {
			key = k
			break
		}
	}
	// Rip the trunk out of the owner: every request now draws the
	// wrong-owner disclaimer, and no table refresh will ever fix it.
	tid := s1.trunkFor(key)
	s1.mu.Lock()
	delete(s1.trunks, tid)
	s1.mu.Unlock()

	before := c.Stats().Retries
	_, err := s0.Get(context.Background(), key)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("got %v, want ErrRetriesExhausted", err)
	}
	if got := c.Stats().Retries - before; got < maxRetries {
		t.Fatalf("retries = %d, want >= %d", got, maxRetries)
	}
}

// TestChaosWALBackupInterleave is the regression for the backup/log
// truncation race: mutations racing a backup must end up in the dump or
// in the log — never in neither (lost on recovery) and never in both
// (Append replayed twice). The exact final length check catches both.
func TestChaosWALBackupInterleave(t *testing.T) {
	cfg := chaosConfig(2)
	cfg.BufferedLogging = true
	// Append rewrites the whole cell, so a long append stream needs
	// quadratic headroom.
	cfg.TrunkCapacity = 64 << 20
	c, _ := NewChaosCloud(cfg, 2)
	defer c.Close()
	s0, s1 := c.Slave(0), c.Slave(1)

	// Several keys local to machine 1 (the machine we will crash), all in
	// one trunk. Multiple independent append streams keep the backup's
	// dump-to-truncate window contended from every side — a single stream
	// can happen to sit out the window and mask the race.
	const appenders = 4
	var keys []uint64
	var tid uint32
	for k := uint64(0); len(keys) < appenders; k++ {
		if s0.Owner(k) != s1.ID() {
			continue
		}
		if len(keys) == 0 {
			tid = s1.trunkFor(k)
		} else if s1.trunkFor(k) != tid {
			continue
		}
		keys = append(keys, k)
		if err := s1.Put(context.Background(), k, val(8, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Fatten the trunk with sibling cells: the wider the dump, the wider
	// the window between the dump snapshot and the log truncation that a
	// racing mutation can fall into.
	filled := 0
	for k := keys[appenders-1] + 1; filled < 200; k++ {
		if s1.trunkFor(k) == tid && s0.Owner(k) == s1.ID() {
			if err := s1.Put(context.Background(), k, val(20480, byte(k))); err != nil {
				t.Fatal(err)
			}
			filled++
		}
	}

	// The appenders hammer their cells continuously while backups run
	// against the trunk. Each backup starts only after fresh appends landed
	// (so the streams are provably mid-flight), and the appenders are
	// stopped only after the LAST backup finished: a mutation racing that
	// backup must land in its dump or survive its log truncation — never
	// fall between the dump snapshot and the truncate. A trailing backup
	// would mask the race (its dump re-covers the trunk), so none runs
	// after the streams.
	tr := s1.localTrunk(tid)
	stop := make(chan struct{})
	var count atomic.Int64
	counts := make([]int, appenders)
	var wg sync.WaitGroup
	errs := make(chan error, appenders)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					counts[a] = i
					return
				default:
				}
				if err := s1.Append(context.Background(), keys[a], val(4, byte(i))); err != nil {
					errs <- err
					counts[a] = i
					return
				}
				i++
				count.Add(1)
			}
		}(a)
	}
	for round := 0; round < 3; round++ {
		base := count.Load()
		for count.Load() < base+50 {
			runtime.Gosched()
		}
		if err := s1.backupTrunk(tid, tr); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Crash the mutated machine; the survivor recovers the trunk from
	// the last dump plus the log tail. Every stream must recover to its
	// exact final length — shorter means a mutation fell into the backup
	// window, longer means a truncated record was replayed twice.
	c.KillMachine(s1.ID())
	for a := 0; a < appenders; a++ {
		got, err := s0.Get(context.Background(), keys[a])
		if err != nil {
			t.Fatalf("get stream %d after crash: %v", a, err)
		}
		want := 8 + 4*counts[a]
		if len(got) != want {
			t.Errorf("stream %d recovered to %d bytes, want %d (lost or double-replayed mutations)", a, len(got), want)
		}
	}
}

// TestChaosJitterDelayClusterStable: under contract-preserving jitter
// plus small transport delays (well below the failure timeout), the
// cluster must stay quiet — no spurious recoveries, no failed operations.
func TestChaosJitterDelayClusterStable(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, ch := NewChaosCloud(testConfig(3), seed)
			defer c.Close()
			ch.SetDefault(msg.Policy{
				Jitter:   100 * time.Microsecond,
				Delay:    0.2,
				MaxDelay: 2 * time.Millisecond,
			})
			s0 := c.Slave(0)
			const n = 150
			for k := uint64(0); k < n; k++ {
				if err := s0.Put(context.Background(), k, val(16, byte(k))); err != nil {
					t.Fatalf("put key %d: %v", k, err)
				}
			}
			for m := 0; m < c.Slaves(); m++ {
				s := c.Slave(m)
				for k := uint64(0); k < n; k += 7 {
					got, err := s.Get(context.Background(), k)
					if err != nil {
						t.Fatalf("machine %d key %d: %v", m, k, err)
					}
					if !bytes.Equal(got, val(16, byte(k))) {
						t.Fatalf("machine %d key %d: corrupt", m, k)
					}
				}
			}
			if rec := c.Stats().Recoveries; rec != 0 {
				t.Fatalf("spurious recoveries under benign chaos: %d", rec)
			}
		})
	}
}
