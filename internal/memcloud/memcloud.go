// Package memcloud implements Trinity's memory cloud (paper §3): a
// globally addressable, distributed in-memory key-value store built from
// 2^p memory trunks spread over a cluster of machines.
//
// Addressing follows the paper exactly: a 64-bit key is hashed to a p-bit
// trunk number i; the shared addressing table maps trunk i to a machine;
// the key is hashed again inside that machine's trunk hash table to find
// the cell. Every machine keeps a replica of the addressing table, and a
// machine that fails to reach a data owner reports the failure to the
// leader, waits for the table to be updated, and retries (§6.2).
//
// Fault-tolerant persistence comes from backing trunks up to the Trinity
// File System; optional buffered logging (RAMCloud-style, §6.2) makes
// individual writes durable between backups.
package memcloud

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trinity/internal/cluster"
	"trinity/internal/hash"
	"trinity/internal/msg"
	"trinity/internal/obs"
	"trinity/internal/tfs"
	"trinity/internal/trunk"
)

// Errors returned by memory cloud operations.
var (
	// ErrNotFound reports that no cell with the key exists.
	ErrNotFound = errors.New("memcloud: cell not found")
	// ErrExists reports that AddCell found the key already present.
	ErrExists = errors.New("memcloud: cell already exists")
	// ErrWrongOwner reports that a machine received a request for a trunk
	// it does not own (the caller's table was stale).
	ErrWrongOwner = errors.New("memcloud: not the owner of this trunk")
	// ErrRetriesExhausted reports that an operation kept failing across
	// table refreshes.
	ErrRetriesExhausted = errors.New("memcloud: retries exhausted")
)

// Protocol IDs used by the memory cloud (all below the cluster-reserved
// range).
const (
	protoGetCell msg.ProtocolID = 0x0101 + iota
	protoPutCell
	protoAddCell
	protoRemoveCell
	protoAppendCell
	protoContains
)

// ProtoMultiGet is the batched cell-read protocol (paper §4: batching
// messages per destination machine to hide network latency): one request
// carries N keys and one response answers all of them, each with its own
// per-key status, so a stale table entry for one key cannot fail the
// whole frame. The fetch pipeline (internal/memcloud/fetch) is its only
// intended client; the protocol is exported so that package can speak it
// without an import cycle.
const ProtoMultiGet msg.ProtocolID = 0x0110

// Per-key status codes in a ProtoMultiGet response.
const (
	// MultiGetOK precedes a u32 length and the cell payload.
	MultiGetOK byte = iota
	// MultiGetNotFound reports the cell does not exist on the owner.
	MultiGetNotFound
	// MultiGetWrongOwner reports the serving machine no longer (or never
	// did) host the key's trunk; the caller should refresh its addressing
	// table and retry elsewhere.
	MultiGetWrongOwner
)

// ProtoMultiPut is the batched cell-write protocol, the mirror image of
// ProtoMultiGet for the bulk-load direction: one request carries N write
// ops and one response answers all of them with per-key status codes, so
// a stale table entry or a duplicate insert for one key cannot fail the
// whole frame. On the serving side the batch is applied trunk by trunk
// through Trunk.PutBatch (one trunk-mutex acquisition per group) and
// logged as one coalesced WAL group record per trunk (one AppendFile
// instead of N). The store pipeline (internal/memcloud/store) is its
// intended client; the protocol is exported so that package can speak it
// without an import cycle.
const ProtoMultiPut msg.ProtocolID = 0x0111

// Op codes inside a ProtoMultiPut request.
const (
	// MultiPutOpPut upserts the cell (last write wins).
	MultiPutOpPut byte = iota
	// MultiPutOpAdd inserts the cell, answering MultiPutExists if present.
	MultiPutOpAdd
)

// Per-key status codes in a ProtoMultiPut response.
const (
	// MultiPutOK reports the write was applied (and logged, under
	// buffered logging) on the owner.
	MultiPutOK byte = iota
	// MultiPutExists answers an MultiPutOpAdd whose key already existed.
	MultiPutExists
	// MultiPutWrongOwner reports the serving machine does not host the
	// key's trunk; the caller should refresh its table and retry.
	MultiPutWrongOwner
	// MultiPutErr reports the write failed on the owner for a reason that
	// re-routing will not fix (trunk out of memory, reserved key).
	MultiPutErr
)

// MultiPutItem is one write op inside a multi-put batch. Val is aliased,
// not copied: it must stay immutable until the batch is applied.
type MultiPutItem struct {
	Op  byte
	Key uint64
	Val []byte
}

// Config configures a memory cloud.
type Config struct {
	// Machines is the number of slaves in the simulated cluster.
	Machines int
	// P is the trunk-count exponent: the cloud has 2^P trunks. It should
	// satisfy 2^P > Machines (several trunks per machine, the paper's
	// trunk-level parallelism). Zero picks a value giving each machine at
	// least 4 trunks.
	P uint
	// TrunkCapacity is the per-trunk buffer size. Zero means 4 MiB
	// (scaled down from the paper's 2 GB for laptop-scale simulated
	// clusters; raise it for large resident graphs).
	TrunkCapacity int64
	// TrunkPageSize is the trunk commit granularity. Zero means the
	// trunk default (64 KiB).
	TrunkPageSize int64
	// Reservation is the trunk expansion reservation policy.
	Reservation trunk.ReservationPolicy
	// BufferedLogging enables RAMCloud-style durable logging of every
	// mutation to TFS between backups.
	BufferedLogging bool
	// DefragInterval starts a background defragmentation daemon per slave
	// that sweeps its trunks on this period (§6.1's defragmentation
	// daemon). Zero disables the daemon; explicit Defragment calls and
	// the allocate-retry path still compact on demand.
	DefragInterval time.Duration
	// Msg configures the per-machine messaging runtime.
	Msg msg.Options
	// TransportWrap, if set, decorates every machine's transport endpoint
	// before the messaging runtime is built. Fault-injection tests pass
	// a chaos hub's Wrap here; nil means endpoints are used as-is.
	TransportWrap func(msg.Transport) msg.Transport
	// Cluster configures heartbeats and failure detection.
	Cluster cluster.Config
	// Datanodes is the TFS datanode count. Zero means 3.
	Datanodes int
	// Metrics is the observability registry for the whole cloud: every
	// slave's memcloud, msg, trunk and cluster metrics register here. Nil
	// creates a private registry per cloud so concurrently running clouds
	// (tests) never share counters; trinityd and trinity-bench pass
	// obs.Default() for a process-wide snapshot.
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.Machines <= 0 {
		c.Machines = 1
	}
	if c.P == 0 {
		c.P = 2
		for 1<<c.P < 4*c.Machines {
			c.P++
		}
	}
	if c.TrunkCapacity <= 0 {
		c.TrunkCapacity = 4 << 20
	}
	if c.Msg.CallTimeout == 0 {
		c.Msg.CallTimeout = 5 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	c.Msg.Metrics = c.Metrics
	c.Cluster.Metrics = c.Metrics
}

// Stats aggregates cloud activity.
type Stats struct {
	LocalOps   int64 // operations served from a local trunk
	RemoteOps  int64 // operations forwarded to a remote machine
	Retries    int64 // retries after table refreshes
	Recoveries int64 // trunks reloaded from TFS
}

// Cloud is a whole simulated Trinity cluster: the shared TFS, the
// in-process network, and all slaves. Production deployments run one
// Slave per physical machine; the Cloud type exists so tests, benchmarks
// and examples can stand up a cluster in one call.
type Cloud struct {
	cfg Config
	fs  *tfs.FS
	bus *msg.Bus

	// mu guards slaves: AddMachine appends to it while Stats, Backup,
	// MemoryUsage and Close iterate it, possibly from other goroutines.
	mu     sync.RWMutex
	slaves []*Slave
}

// endpoint returns the (possibly chaos-wrapped) transport endpoint for a
// machine.
func (c *Cloud) endpoint(id msg.MachineID) msg.Transport {
	tr := c.bus.Endpoint(id)
	if c.cfg.TransportWrap != nil {
		tr = c.cfg.TransportWrap(tr)
	}
	return tr
}

// slaveList snapshots the slave slice under the lock.
func (c *Cloud) slaveList() []*Slave {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Slave(nil), c.slaves...)
}

// New boots a memory cloud with cfg.Machines slaves on an in-process bus.
func New(cfg Config) *Cloud {
	cfg.fill()
	c := &Cloud{
		cfg: cfg,
		fs:  tfs.New(tfs.Options{Datanodes: cfg.Datanodes}),
		bus: msg.NewBus(),
	}
	machines := make([]msg.MachineID, cfg.Machines)
	for i := range machines {
		machines[i] = msg.MachineID(i)
	}
	initial := cluster.NewTable(cfg.P, machines)
	for i := 0; i < cfg.Machines; i++ {
		node := msg.NewNode(c.endpoint(machines[i]), cfg.Msg)
		c.slaves = append(c.slaves, newSlave(node, c.fs, initial, cfg))
	}
	for _, s := range c.slaves {
		s.member.Start()
	}
	return c
}

// Slave returns the i-th slave; any slave can serve as a client access
// point.
func (c *Cloud) Slave(i int) *Slave {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.slaves[i]
}

// Slaves returns the number of slaves.
func (c *Cloud) Slaves() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.slaves)
}

// FS returns the cloud's Trinity File System.
func (c *Cloud) FS() *tfs.FS { return c.fs }

// Metrics returns the cloud's observability registry.
func (c *Cloud) Metrics() *obs.Registry { return c.cfg.Metrics }

// Backup dumps every live trunk to TFS. Returns the first error.
func (c *Cloud) Backup() error {
	for _, s := range c.slaveList() {
		if s.alive.Load() {
			if err := s.BackupTrunks(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddMachine joins a new machine to the running cloud: a fresh slave is
// wired to the network, existing trunks are backed up, and the leader
// relocates a share of trunks to the newcomer ("when new machines join
// the memory cloud, we relocate some memory trunks to those new machines
// and update the addressing table accordingly", §3). The call returns
// when the newcomer has taken ownership of its trunks.
func (c *Cloud) AddMachine() (*Slave, error) {
	// The id assignment and the append are one critical section: a
	// concurrent Stats/Backup/Close walking the slice must see either the
	// old cluster or the new one, and two concurrent joins must not pick
	// the same id.
	c.mu.Lock()
	id := msg.MachineID(len(c.slaves))
	node := msg.NewNode(c.endpoint(id), c.cfg.Msg)
	// The joiner bootstraps from the current table (in which it owns
	// nothing yet).
	current := c.slaves[0].member.Table()
	s := newSlave(node, c.fs, current, c.cfg)
	c.slaves = append(c.slaves, s)
	incumbents := append([]*Slave(nil), c.slaves[:len(c.slaves)-1]...)
	c.mu.Unlock()
	s.member.Start()

	// Persist all trunks so relocated ones can be reloaded by the joiner.
	if err := c.Backup(); err != nil {
		return nil, err
	}
	var leader *Slave
	for _, sl := range incumbents {
		if sl.alive.Load() && sl.member.IsLeader() {
			leader = sl
			break
		}
	}
	if leader == nil {
		return nil, errors.New("memcloud: no leader to admit the new machine")
	}
	if err := leader.member.AnnounceJoin(id); err != nil {
		return nil, err
	}
	// Wait for the joiner's replica to include its trunks and for the
	// recovery hook to install them.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		trunks := s.member.Table().TrunksOf(id)
		s.mu.RLock()
		installed := len(s.trunks)
		s.mu.RUnlock()
		if len(trunks) > 0 && installed >= len(trunks) {
			return s, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, errors.New("memcloud: join did not complete")
}

// KillMachine simulates the crash of machine id: its slave stops serving,
// its endpoint drops off the network. Recovery is driven by the usual
// failure-report path the next time someone touches its data.
func (c *Cloud) KillMachine(id msg.MachineID) {
	c.mu.RLock()
	s := c.slaves[int(id)]
	c.mu.RUnlock()
	if !s.alive.Swap(false) {
		return
	}
	if s.defrag != nil {
		s.defrag.Stop()
	}
	s.member.Stop()
	s.node.Close()
	c.bus.Disconnect(id)
}

// Close shuts down the whole cloud.
func (c *Cloud) Close() {
	for _, s := range c.slaveList() {
		if s.alive.Swap(false) {
			if s.defrag != nil {
				s.defrag.Stop()
			}
			s.member.Stop()
			s.node.Close()
		}
	}
}

// Stats sums activity over all slaves.
func (c *Cloud) Stats() Stats {
	var total Stats
	for _, s := range c.slaveList() {
		total.LocalOps += s.localOps.Load()
		total.RemoteOps += s.remoteOps.Load()
		total.Retries += s.retries.Load()
		total.Recoveries += s.recoveries.Load()
	}
	return total
}

// MemoryUsage returns the total committed trunk bytes across the cloud —
// the number reported in the paper's Figure 13 memory comparison.
func (c *Cloud) MemoryUsage() int64 {
	var total int64
	for _, s := range c.slaveList() {
		if !s.alive.Load() {
			continue
		}
		s.mu.RLock()
		for _, t := range s.trunks {
			total += t.Stats().CommittedBytes
		}
		s.mu.RUnlock()
	}
	return total
}

// Slave is one machine of the memory cloud: it stores the trunks assigned
// to it by the addressing table, serves remote cell operations, and acts
// as a client access point for local applications.
type Slave struct {
	id     msg.MachineID
	node   *msg.Node
	member *cluster.Member
	fs     *tfs.FS
	cfg    Config
	alive  atomic.Bool
	defrag *trunk.Daemon

	mu     sync.RWMutex
	trunks map[uint32]*trunk.Trunk

	// walMu[tid] makes (trunk mutation + wal append) atomic with respect
	// to (trunk dump + wal truncation). Mutators hold it in read mode,
	// backup holds it exclusively; without it a mutation landing between
	// DumpTo and the truncation is in neither the dump nor the log and is
	// silently lost on recovery. Indexed by trunk id, 1<<P entries.
	walMu []sync.RWMutex

	metrics *obs.Registry
	trunkMx *obs.Scope

	localOps   *obs.Counter
	remoteOps  *obs.Counter
	retries    *obs.Counter
	recoveries *obs.Counter
	getNs      *obs.Histogram
	setNs      *obs.Histogram
	multiOpNs  *obs.Histogram

	multigetBatches *obs.Counter
	multigetKeys    *obs.Counter

	multiputBatches   *obs.Counter
	multiputKeys      *obs.Counter
	multiputBatchSize *obs.Histogram

	walGroupCommits  *obs.Counter
	walBytesAppended *obs.Counter
}

func newSlave(node *msg.Node, fs *tfs.FS, initial *cluster.Table, cfg Config) *Slave {
	scope := cfg.Metrics.Scope(fmt.Sprintf("memcloud.m%d", node.ID()))
	walScope := cfg.Metrics.Scope(fmt.Sprintf("wal.m%d", node.ID()))
	s := &Slave{
		id:      node.ID(),
		node:    node,
		fs:      fs,
		cfg:     cfg,
		trunks:  make(map[uint32]*trunk.Trunk),
		walMu:   make([]sync.RWMutex, 1<<cfg.P),
		metrics: cfg.Metrics,
		trunkMx: cfg.Metrics.Scope(fmt.Sprintf("trunk.m%d", node.ID())),

		localOps:   scope.Counter("local_ops"),
		remoteOps:  scope.Counter("remote_ops"),
		retries:    scope.Counter("retries"),
		recoveries: scope.Counter("recoveries"),
		getNs:      scope.Histogram("get_ns"),
		setNs:      scope.Histogram("set_ns"),
		multiOpNs:  scope.Histogram("multiop_ns"),

		multigetBatches: scope.Counter("multiget_batches"),
		multigetKeys:    scope.Counter("multiget_keys"),

		multiputBatches:   scope.Counter("multiput_batches"),
		multiputKeys:      scope.Counter("multiput_keys"),
		multiputBatchSize: scope.Histogram("multiput_batch_size"),

		walGroupCommits:  walScope.Counter("group_commits"),
		walBytesAppended: walScope.Counter("bytes_appended"),
	}
	s.registerTrunkGauges()
	s.alive.Store(true)
	for _, tid := range initial.TrunksOf(s.id) {
		s.trunks[tid] = s.newTrunk()
	}
	hooks := cluster.RecoveryHooks{
		AcquireTrunks: s.acquireTrunks,
		ReleaseTrunks: s.releaseTrunks,
	}
	s.member = cluster.NewMember(node, fs, initial, hooks, cfg.Cluster)
	node.HandleSync(protoGetCell, s.onGet)
	node.HandleSync(protoPutCell, s.onPut)
	node.HandleSync(protoAddCell, s.onAdd)
	node.HandleSync(protoRemoveCell, s.onRemove)
	node.HandleSync(protoAppendCell, s.onAppend)
	node.HandleSync(protoContains, s.onContains)
	node.HandleSync(ProtoMultiGet, s.onMultiGet)
	node.HandleSync(ProtoMultiPut, s.onMultiPut)
	if cfg.DefragInterval > 0 {
		s.defrag = trunk.NewDaemon(cfg.DefragInterval)
		s.mu.RLock()
		for _, t := range s.trunks {
			s.defrag.Watch(t)
		}
		s.mu.RUnlock()
		s.defrag.Start()
	}
	return s
}

func (s *Slave) newTrunk() *trunk.Trunk {
	return trunk.New(trunk.Options{
		Capacity:    s.cfg.TrunkCapacity,
		PageSize:    s.cfg.TrunkPageSize,
		Reservation: s.cfg.Reservation,
		Metrics:     s.trunkMx,
	})
}

// registerTrunkGauges publishes snapshot-time gauges over this slave's
// trunk set: hash-table load (cells), committed bytes, and the load
// factor (live/committed) that drives defragmentation decisions. Func
// gauges cost nothing on the storage hot path — they walk the trunks only
// when a snapshot is taken.
func (s *Slave) registerTrunkGauges() {
	sumStats := func() trunk.Stats {
		var total trunk.Stats
		s.mu.RLock()
		for _, t := range s.trunks {
			st := t.Stats()
			total.CommittedBytes += st.CommittedBytes
			total.LiveBytes += st.LiveBytes
			total.GapBytes += st.GapBytes
			total.Cells += st.Cells
		}
		s.mu.RUnlock()
		return total
	}
	s.trunkMx.Func("cells", func() float64 { return float64(sumStats().Cells) })
	s.trunkMx.Func("committed_bytes", func() float64 { return float64(sumStats().CommittedBytes) })
	s.trunkMx.Func("gap_bytes", func() float64 { return float64(sumStats().GapBytes) })
	s.trunkMx.Func("load_factor", func() float64 {
		st := sumStats()
		if st.CommittedBytes == 0 {
			return 1
		}
		return float64(st.LiveBytes) / float64(st.CommittedBytes)
	})
}

// ID returns the slave's machine ID.
func (s *Slave) ID() msg.MachineID { return s.id }

// Node exposes the slave's messaging runtime so higher layers (the graph
// engine, BSP, traversal) can register their own TSL protocols.
func (s *Slave) Node() *msg.Node { return s.node }

// Member exposes the slave's cluster membership.
func (s *Slave) Member() *cluster.Member { return s.member }

// FS exposes the shared Trinity File System (for checkpoints, snapshots,
// and other higher-layer persistence).
func (s *Slave) FS() *tfs.FS { return s.fs }

// Metrics exposes the cloud's observability registry so higher layers
// (BSP, async, traversal) register their own scopes alongside the storage
// counters.
func (s *Slave) Metrics() *obs.Registry { return s.metrics }

// trunkFor returns the trunk number a key belongs to.
func (s *Slave) trunkFor(key uint64) uint32 {
	return hash.TrunkHash(key, s.member.Table().P)
}

// Owner returns the machine currently hosting the key.
func (s *Slave) Owner(key uint64) msg.MachineID {
	return s.member.Table().Machine(s.trunkFor(key))
}

// LocalGet serves a cell read from this slave's own trunks without
// touching the network. ok reports whether the key is local: when false,
// the caller must go remote (via the fetch pipeline or a per-key Get).
func (s *Slave) LocalGet(key uint64) (val []byte, ok bool, err error) {
	t := s.localTrunk(s.trunkFor(key))
	if t == nil {
		return nil, false, nil
	}
	s.localOps.Add(1)
	v, err := t.Get(key)
	return v, true, mapTrunkErr(err)
}

// RefreshTable synchronously refreshes this slave's addressing-table
// replica from the leader (§6.2 step 2 of the failure protocol).
func (s *Slave) RefreshTable(ctx context.Context) { _ = s.member.RefreshTable(ctx) }

// ReportFailure reports machine m as unreachable to the leader (§6.2
// step 1), which will eventually publish a table that reassigns m's
// trunks to survivors. A nil return means recovery has run (on the leader
// or on this member after winning the vacated flag); an error means no
// reachable leader acknowledged the report and the caller should retry
// after its next table refresh.
func (s *Slave) ReportFailure(ctx context.Context, m msg.MachineID) error {
	return s.member.ReportFailure(ctx, m)
}

// localTrunk returns the local trunk for the number, or nil.
func (s *Slave) localTrunk(tid uint32) *trunk.Trunk {
	s.mu.RLock()
	t := s.trunks[tid]
	s.mu.RUnlock()
	return t
}

// LocalKeys returns the keys of all cells stored on this machine.
// Computation engines use it to enumerate local vertices.
func (s *Slave) LocalKeys() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []uint64
	for _, t := range s.trunks {
		keys = append(keys, t.Keys()...)
	}
	return keys
}

// LocalTrunkIDs returns the trunk numbers currently hosted on this
// machine. Combined with ForEachInTrunk it lets engines walk the local
// partition trunk by trunk — the unit of parallelism for snapshot builds
// (the paper's trunk-level parallelism, §3).
func (s *Slave) LocalTrunkIDs() []uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]uint32, 0, len(s.trunks))
	for tid := range s.trunks {
		ids = append(ids, tid)
	}
	return ids
}

// ForEachInTrunk iterates the cells of one local trunk zero-copy (do not
// retain payloads). It reports false when the trunk is not — or no
// longer — hosted on this machine.
func (s *Slave) ForEachInTrunk(tid uint32, fn func(key uint64, payload []byte) bool) bool {
	t := s.localTrunk(tid)
	if t == nil {
		return false
	}
	t.ForEach(fn)
	return true
}

// ForEachLocal iterates over all local cells (zero-copy payloads; do not
// retain). Iteration order is unspecified.
func (s *Slave) ForEachLocal(fn func(key uint64, payload []byte) bool) {
	s.mu.RLock()
	trunks := make([]*trunk.Trunk, 0, len(s.trunks))
	for _, t := range s.trunks {
		trunks = append(trunks, t)
	}
	s.mu.RUnlock()
	for _, t := range trunks {
		stop := false
		t.ForEach(func(k uint64, p []byte) bool {
			if !fn(k, p) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// --- wire encoding helpers ---

func encodeKey(key uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	return b[:]
}

func encodeKV(key uint64, val []byte) []byte {
	out := make([]byte, 8+len(val)) //alloc:ok per-op sync path; batched writers encode into leases
	binary.LittleEndian.PutUint64(out, key)
	copy(out[8:], val)
	return out
}

func decodeKV(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errors.New("memcloud: short request")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// EncodeMultiGetReq builds a ProtoMultiGet request: u32 count, then count
// 64-bit keys.
func EncodeMultiGetReq(keys []uint64) []byte {
	out := make([]byte, 4+8*len(keys)) //alloc:ok caller-owned request frame, one per batch
	binary.LittleEndian.PutUint32(out, uint32(len(keys)))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(out[4+8*i:], k)
	}
	return out
}

// decodeMultiGetReq parses a ProtoMultiGet request.
func decodeMultiGetReq(b []byte) ([]uint64, error) {
	if len(b) < 4 {
		return nil, errors.New("memcloud: short multi-get request")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+8*n {
		return nil, errors.New("memcloud: truncated multi-get request")
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(b[4+8*i:])
	}
	return keys, nil
}

// MultiGetResult is one key's answer inside a ProtoMultiGet response.
type MultiGetResult struct {
	Status byte
	Val    []byte // set only when Status == MultiGetOK
}

// DecodeMultiGetResp parses a ProtoMultiGet response into per-key results
// in request order. want is the number of keys the request carried; a
// response answering a different number of keys is malformed.
func DecodeMultiGetResp(b []byte, want int) ([]MultiGetResult, error) {
	out := make([]MultiGetResult, 0, want)
	for len(b) > 0 {
		status := b[0]
		b = b[1:]
		switch status {
		case MultiGetOK:
			if len(b) < 4 {
				return nil, errors.New("memcloud: truncated multi-get value header")
			}
			n := int(binary.LittleEndian.Uint32(b))
			b = b[4:]
			if n > len(b) {
				return nil, errors.New("memcloud: truncated multi-get value")
			}
			out = append(out, MultiGetResult{Status: status, Val: b[:n:n]})
			b = b[n:]
		case MultiGetNotFound, MultiGetWrongOwner:
			out = append(out, MultiGetResult{Status: status})
		default:
			return nil, fmt.Errorf("memcloud: unknown multi-get status %d", status)
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("memcloud: multi-get answered %d of %d keys", len(out), want)
	}
	return out, nil
}

// MultiPutReqSize returns the encoded size of a ProtoMultiPut request, so
// the store pipeline can lease the exact frame up front.
func MultiPutReqSize(items []MultiPutItem) int {
	n := 4
	for i := range items {
		n += 13 + len(items[i].Val)
	}
	return n
}

// AppendMultiPutReq encodes a ProtoMultiPut request into dst and returns
// the extended slice: u32 count, then count × [op(1) key(8) len(4) val].
// Combined with MultiPutReqSize the caller brings an exactly-sized buffer
// (a pooled lease), so encoding allocates nothing.
func AppendMultiPutReq(dst []byte, items []MultiPutItem) []byte {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(items)))
	dst = append(dst, u32[:]...)
	var hdr [13]byte
	for i := range items {
		hdr[0] = items[i].Op
		binary.LittleEndian.PutUint64(hdr[1:], items[i].Key)
		binary.LittleEndian.PutUint32(hdr[9:], uint32(len(items[i].Val)))
		dst = append(dst, hdr[:]...)
		dst = append(dst, items[i].Val...)
	}
	return dst
}

// decodeMultiPutReq parses a ProtoMultiPut request. Values alias b: the
// handler applies them before the request lease is released.
func decodeMultiPutReq(b []byte) ([]MultiPutItem, error) {
	if len(b) < 4 {
		return nil, errors.New("memcloud: short multi-put request")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n < 0 || n > len(b) { // each item needs ≥ 13 bytes; cheap upper bound first
		return nil, errors.New("memcloud: truncated multi-put request")
	}
	items := make([]MultiPutItem, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 13 {
			return nil, errors.New("memcloud: truncated multi-put item header")
		}
		op := b[0]
		if op != MultiPutOpPut && op != MultiPutOpAdd {
			return nil, fmt.Errorf("memcloud: unknown multi-put op %d", op)
		}
		key := binary.LittleEndian.Uint64(b[1:])
		vn := int(binary.LittleEndian.Uint32(b[9:]))
		b = b[13:]
		if vn < 0 || vn > len(b) {
			return nil, errors.New("memcloud: truncated multi-put value")
		}
		items = append(items, MultiPutItem{Op: op, Key: key, Val: b[:vn:vn]})
		b = b[vn:]
	}
	if len(b) != 0 {
		return nil, errors.New("memcloud: trailing bytes in multi-put request")
	}
	return items, nil
}

// DecodeMultiPutResp parses a ProtoMultiPut response into per-item status
// codes in request order. want is the number of items the request
// carried; a response answering a different number is malformed.
func DecodeMultiPutResp(b []byte, want int) ([]byte, error) {
	if len(b) != want {
		return nil, fmt.Errorf("memcloud: multi-put answered %d of %d keys", len(b), want)
	}
	for _, st := range b {
		if st > MultiPutErr {
			return nil, fmt.Errorf("memcloud: unknown multi-put status %d", st)
		}
	}
	return b, nil
}

// Wire error codes: handlers tag their sentinel errors with msg.WithCode
// so the code — not the message text — identifies the sentinel on the
// caller's side.
const (
	codeNotFound byte = iota + 1
	codeExists
	codeWrongOwner
)

// mapTrunkErr converts trunk errors to stable memcloud errors, tagged
// with the wire code that identifies them after crossing a machine
// boundary.
func mapTrunkErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, trunk.ErrNotFound):
		return msg.WithCode(codeNotFound, ErrNotFound)
	case errors.Is(err, trunk.ErrExists):
		return msg.WithCode(codeExists, ErrExists)
	default:
		return err
	}
}

// remoteErr maps an error that crossed the wire back to a sentinel,
// preferring the one-byte wire code. The message-text fallback covers
// errors from peers that attached no code.
func remoteErr(err error) error {
	if err == nil {
		return nil
	}
	switch msg.ErrorCode(err) {
	case codeNotFound:
		return ErrNotFound
	case codeExists:
		return ErrExists
	case codeWrongOwner:
		return ErrWrongOwner
	}
	es := err.Error()
	switch {
	case bytes.Contains([]byte(es), []byte(ErrNotFound.Error())):
		return ErrNotFound
	case bytes.Contains([]byte(es), []byte(ErrExists.Error())):
		return ErrExists
	case bytes.Contains([]byte(es), []byte(ErrWrongOwner.Error())):
		return ErrWrongOwner
	default:
		return err
	}
}

// --- server-side handlers ---

func (s *Slave) serveTrunk(key uint64) (*trunk.Trunk, error) {
	tid := s.trunkFor(key)
	t := s.localTrunk(tid)
	if t == nil {
		return nil, msg.WithCode(codeWrongOwner,
			fmt.Errorf("%w: trunk %d on machine %d", ErrWrongOwner, tid, s.id))
	}
	return t, nil
}

func (s *Slave) onGet(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	key, _, err := decodeKV(req)
	if err != nil {
		return nil, err
	}
	t, err := s.serveTrunk(key)
	if err != nil {
		return nil, err
	}
	val, err := t.Get(key)
	return val, mapTrunkErr(err)
}

func (s *Slave) onPut(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	key, val, err := decodeKV(req)
	if err != nil {
		return nil, err
	}
	t, err := s.serveTrunk(key)
	if err != nil {
		return nil, err
	}
	err = s.loggedApply(key, opPut, val, func() error { return t.Put(key, val) })
	return nil, mapTrunkErr(err)
}

func (s *Slave) onAdd(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	key, val, err := decodeKV(req)
	if err != nil {
		return nil, err
	}
	t, err := s.serveTrunk(key)
	if err != nil {
		return nil, err
	}
	err = s.loggedApply(key, opPut, val, func() error { return t.Add(key, val) })
	return nil, mapTrunkErr(err)
}

func (s *Slave) onRemove(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	key, _, err := decodeKV(req)
	if err != nil {
		return nil, err
	}
	t, err := s.serveTrunk(key)
	if err != nil {
		return nil, err
	}
	err = s.loggedApply(key, opRemove, nil, func() error { return t.Remove(key) })
	return nil, mapTrunkErr(err)
}

func (s *Slave) onAppend(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	key, val, err := decodeKV(req)
	if err != nil {
		return nil, err
	}
	t, err := s.serveTrunk(key)
	if err != nil {
		return nil, err
	}
	err = s.loggedApply(key, opAppend, val, func() error { return t.Append(key, val) })
	return nil, mapTrunkErr(err)
}

func (s *Slave) onContains(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	key, _, err := decodeKV(req)
	if err != nil {
		return nil, err
	}
	t, err := s.serveTrunk(key)
	if err != nil {
		return nil, err
	}
	if t.Contains(key) {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

// onMultiGet answers N cell reads in one frame. Every key gets its own
// status byte, so a stale addressing-table entry for one key degrades to a
// per-key MultiGetWrongOwner instead of failing the whole batch — the
// fetch pipeline retries just that key after a table refresh.
func (s *Slave) onMultiGet(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	keys, err := decodeMultiGetReq(req)
	if err != nil {
		return nil, err
	}
	s.multigetBatches.Add(1)
	s.multigetKeys.Add(int64(len(keys)))
	// Size pre-pass so the whole reply is built in one buffer: the per-key
	// copies then go straight from trunk memory into the reply via
	// ReadInto, with zero per-cell allocations. A cell that grows between
	// the pre-pass and its copy just makes the buffer relocate once.
	total := 0
	for _, key := range keys {
		total += 5 // status byte + u32 length
		if t := s.localTrunk(s.trunkFor(key)); t != nil {
			if n, err := t.Size(key); err == nil {
				total += n
			}
		}
	}
	out := make([]byte, 0, total) //alloc:ok one presized reply buffer per batch
	for _, key := range keys {
		t, err := s.serveTrunk(key)
		if err != nil {
			out = append(out, MultiGetWrongOwner)
			continue
		}
		// Optimistically append the OK header, copy the payload in place,
		// then patch the length with what actually landed (the cell may
		// have been resized since the pre-pass).
		out = append(out, MultiGetOK, 0, 0, 0, 0)
		hdr := len(out) - 4
		grown, err := t.ReadInto(key, out)
		if err != nil {
			out = append(out[:hdr-1], MultiGetNotFound)
			continue
		}
		binary.LittleEndian.PutUint32(grown[hdr:], uint32(len(grown)-hdr-4))
		out = grown
	}
	return out, nil
}

// onMultiPut applies N cell writes from one frame. Every item gets its
// own status byte, so one stale-table key or duplicate insert degrades to
// a per-key status instead of failing the whole batch — the store
// pipeline retries just the wrong-owner keys after a table refresh.
func (s *Slave) onMultiPut(_ context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	items, err := decodeMultiPutReq(req)
	if err != nil {
		return nil, err
	}
	return s.applyMultiPut(items), nil
}

// LocalMultiPut applies a multi-put batch directly to this slave's
// trunks, without touching the network: the store pipeline's local fast
// path, which keeps the batching wins (amortized trunk locking, one WAL
// group record per trunk) for writes that never leave the machine. ok is
// always true for a slave; items whose trunk is not hosted here answer
// MultiPutWrongOwner in the status slice.
func (s *Slave) LocalMultiPut(items []MultiPutItem) (statuses []byte, ok bool) {
	return s.applyMultiPut(items), true
}

// applyMultiPut groups the batch by trunk and applies each group through
// Trunk.PutBatch — one trunk-mutex acquisition per group instead of one
// per cell — then, under buffered logging, commits the whole group as one
// coalesced WAL record with a single AppendFile under the trunk's wal
// lock (group commit). Items are applied in batch order within each
// trunk; two writes to one key always land in the same trunk, so the
// pipeline's last-write-wins order is preserved end to end.
func (s *Slave) applyMultiPut(items []MultiPutItem) []byte {
	defer s.observeSince(s.setNs, time.Now())
	s.multiputBatches.Add(1)
	s.multiputKeys.Add(int64(len(items)))
	s.multiputBatchSize.Observe(int64(len(items)))
	statuses := make([]byte, len(items)) //alloc:ok one status slice per batch, amortized over items
	// Group item indices by trunk, preserving batch order within each
	// group. Bulk loads are partitioned per owner, so a typical batch
	// touches only this machine's handful of trunks.
	groups := make(map[uint32][]int)
	for i := range items {
		tid := s.trunkFor(items[i].Key)
		groups[tid] = append(groups[tid], i)
	}
	for tid, idxs := range groups {
		t := s.localTrunk(tid)
		if t == nil {
			for _, i := range idxs {
				statuses[i] = MultiPutWrongOwner
			}
			continue
		}
		s.localOps.Add(int64(len(idxs)))
		bitems := make([]trunk.BatchItem, len(idxs))
		for j, i := range idxs {
			bitems[j] = trunk.BatchItem{
				Key: items[i].Key,
				Val: items[i].Val,
				Add: items[i].Op == MultiPutOpAdd,
			}
		}
		var errs []error
		if s.cfg.BufferedLogging {
			// Mutation + group log append are one critical section with
			// respect to backup's dump+truncate, exactly like loggedApply:
			// every write in the batch is covered by the dump the
			// truncation trusts, or by the log, or both.
			mu := &s.walMu[tid]
			mu.RLock()
			errs = t.PutBatch(bitems)
			rec := encodeGroupRecord(bitems, errs)
			if rec != nil {
				s.fs.AppendFile(walFile(tid), rec)
				s.walGroupCommits.Add(1)
				s.walBytesAppended.Add(int64(len(rec)))
			}
			mu.RUnlock()
		} else {
			errs = t.PutBatch(bitems)
		}
		for j, i := range idxs {
			if errs == nil || errs[j] == nil {
				statuses[i] = MultiPutOK
			} else if errors.Is(errs[j], trunk.ErrExists) {
				statuses[i] = MultiPutExists
			} else {
				statuses[i] = MultiPutErr
			}
		}
	}
	return statuses
}

// --- client-side operations ---

const maxRetries = 3

// observeSince records the elapsed time since start into h.
func (s *Slave) observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// withOwner runs op against the key's owner, retrying through the §6.2
// protocol on failure: report to leader, wait for the table update,
// retry. A fired context stops the retry loop immediately: the caller's
// budget is spent, so reporting and refreshing on its behalf would only
// delay the ctx.Err it is owed.
func (s *Slave) withOwner(ctx context.Context, key uint64, local func(*trunk.Trunk) error, remote func(owner msg.MachineID) error) error {
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			s.retries.Add(1)
		}
		tid := s.trunkFor(key)
		owner := s.member.Table().Machine(tid)
		if owner == s.id {
			if t := s.localTrunk(tid); t != nil {
				s.localOps.Add(1)
				return mapTrunkErr(local(t))
			}
			// The table says we own it but recovery hasn't delivered the
			// trunk yet; refresh and retry.
			s.member.RefreshTable(ctx)
			lastErr = ErrWrongOwner
			continue
		}
		s.remoteOps.Add(1)
		err := remote(owner)
		if err == nil {
			return nil
		}
		err = remoteErr(err)
		if errors.Is(err, ErrNotFound) || errors.Is(err, ErrExists) {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, msg.ErrUnreachable) || errors.Is(err, msg.ErrTimeout) {
			// Failure-report protocol: tell the leader, wait for the
			// addressing table to change, try again.
			s.member.ReportFailure(ctx, owner)
			s.member.RefreshTable(ctx)
			continue
		}
		if errors.Is(err, ErrWrongOwner) {
			s.member.RefreshTable(ctx)
			continue
		}
		return err
	}
	return fmt.Errorf("%w: key %#x: %v", ErrRetriesExhausted, key, lastErr)
}

// Get returns the cell's value.
func (s *Slave) Get(ctx context.Context, key uint64) ([]byte, error) {
	defer s.observeSince(s.getNs, time.Now())
	var out []byte
	err := s.withOwner(ctx, key,
		func(t *trunk.Trunk) error {
			v, err := t.Get(key)
			out = v
			return err
		},
		func(owner msg.MachineID) error {
			v, err := s.node.Call(ctx, owner, protoGetCell, encodeKey(key))
			out = v
			return err
		})
	return out, err
}

// Put inserts or overwrites a cell.
func (s *Slave) Put(ctx context.Context, key uint64, val []byte) error {
	defer s.observeSince(s.setNs, time.Now())
	return s.withOwner(ctx, key,
		func(t *trunk.Trunk) error {
			return s.loggedApply(key, opPut, val, func() error { return t.Put(key, val) })
		},
		func(owner msg.MachineID) error {
			_, err := s.node.Call(ctx, owner, protoPutCell, encodeKV(key, val))
			return err
		})
}

// Add inserts a new cell, failing with ErrExists if present.
func (s *Slave) Add(ctx context.Context, key uint64, val []byte) error {
	return s.withOwner(ctx, key,
		func(t *trunk.Trunk) error {
			return s.loggedApply(key, opPut, val, func() error { return t.Add(key, val) })
		},
		func(owner msg.MachineID) error {
			_, err := s.node.Call(ctx, owner, protoAddCell, encodeKV(key, val))
			return err
		})
}

// Remove deletes a cell.
func (s *Slave) Remove(ctx context.Context, key uint64) error {
	return s.withOwner(ctx, key,
		func(t *trunk.Trunk) error {
			return s.loggedApply(key, opRemove, nil, func() error { return t.Remove(key) })
		},
		func(owner msg.MachineID) error {
			_, err := s.node.Call(ctx, owner, protoRemoveCell, encodeKey(key))
			return err
		})
}

// Append extends a cell's value (adjacency-list growth).
func (s *Slave) Append(ctx context.Context, key uint64, extra []byte) error {
	return s.withOwner(ctx, key,
		func(t *trunk.Trunk) error {
			return s.loggedApply(key, opAppend, extra, func() error { return t.Append(key, extra) })
		},
		func(owner msg.MachineID) error {
			_, err := s.node.Call(ctx, owner, protoAppendCell, encodeKV(key, extra))
			return err
		})
}

// Contains reports whether the cell exists anywhere in the cloud.
func (s *Slave) Contains(ctx context.Context, key uint64) (bool, error) {
	var found bool
	err := s.withOwner(ctx, key,
		func(t *trunk.Trunk) error {
			found = t.Contains(key)
			return nil
		},
		func(owner msg.MachineID) error {
			resp, err := s.node.Call(ctx, owner, protoContains, encodeKey(key))
			if err == nil {
				found = len(resp) == 1 && resp[0] == 1
			}
			return err
		})
	return found, err
}

// View runs fn over a zero-copy, spin-locked view of a LOCAL cell. It
// fails with ErrWrongOwner for cells on other machines: zero-copy access
// cannot cross machine boundaries (use Get instead).
func (s *Slave) View(key uint64, fn func(payload []byte) error) error {
	t, err := s.serveTrunk(key)
	if err != nil {
		return err
	}
	s.localOps.Add(1)
	return mapTrunkErr(t.View(key, fn))
}

// Lock pins a LOCAL cell and returns its guard.
func (s *Slave) Lock(key uint64) (*trunk.Guard, error) {
	t, err := s.serveTrunk(key)
	if err != nil {
		return nil, err
	}
	g, err := t.Lock(key)
	return g, mapTrunkErr(err)
}

// --- persistence & recovery ---

func trunkFile(tid uint32) string { return fmt.Sprintf("trunks/%d", tid) }
func walFile(tid uint32) string   { return fmt.Sprintf("wal/%d", tid) }

// BackupTrunks dumps every local trunk to TFS and truncates its log.
func (s *Slave) BackupTrunks() error {
	s.mu.RLock()
	trunks := make(map[uint32]*trunk.Trunk, len(s.trunks))
	for id, t := range s.trunks {
		trunks[id] = t
	}
	s.mu.RUnlock()
	for tid, t := range trunks {
		if err := s.backupTrunk(tid, t); err != nil {
			return err
		}
	}
	return nil
}

// backupTrunk dumps one trunk and truncates its log, atomically with
// respect to concurrent mutations (see loggedApply). The truncation
// comes only after the dump is safely in TFS: a crash mid-backup leaves
// the old dump plus a complete log, never a dump with no log behind it.
func (s *Slave) backupTrunk(tid uint32, t *trunk.Trunk) error {
	if s.cfg.BufferedLogging {
		mu := &s.walMu[tid]
		mu.Lock()
		defer mu.Unlock()
	}
	var buf bytes.Buffer
	if err := t.DumpTo(&buf); err != nil {
		return err
	}
	if err := s.fs.WriteFile(trunkFile(tid), buf.Bytes()); err != nil {
		return err
	}
	if s.cfg.BufferedLogging {
		s.fs.WriteFile(walFile(tid), nil)
	}
	return nil
}

// acquireTrunks is the recovery hook: reload trunks from TFS after the
// addressing table assigned them to this machine.
func (s *Slave) acquireTrunks(tids []uint32) {
	for _, tid := range tids {
		t := s.newTrunk()
		if data, err := s.fs.ReadFile(trunkFile(tid)); err == nil {
			if err := t.LoadFrom(bytes.NewReader(data)); err != nil {
				t = s.newTrunk() // corrupt dump: start empty
			}
		}
		if s.cfg.BufferedLogging {
			if log, err := s.fs.ReadFile(walFile(tid)); err == nil {
				// Best effort: a corrupt record stops replay at the last
				// decodable prefix; everything before it is applied.
				_ = replayLog(t, log)
			}
		}
		s.mu.Lock()
		_, exists := s.trunks[tid]
		if !exists {
			s.trunks[tid] = t
			s.recoveries.Add(1)
		}
		s.mu.Unlock()
		if !exists && s.defrag != nil {
			s.defrag.Watch(t)
		}
	}
}

// releaseTrunks backs up and drops trunks that moved to another machine.
// The backup also truncates the trunk's log: the dump covers everything,
// and a stale log replayed by the new owner would double-apply Appends.
func (s *Slave) releaseTrunks(tids []uint32) {
	for _, tid := range tids {
		s.mu.Lock()
		t := s.trunks[tid]
		delete(s.trunks, tid)
		s.mu.Unlock()
		if t != nil {
			s.backupTrunk(tid, t)
		}
	}
}

// --- buffered logging (RAMCloud-style, §6.2) ---

const (
	opPut byte = iota + 1
	opRemove
	opAppend
	// opGroup frames a group-commit record: op(1) bodyLen(4) body, where
	// body is a concatenation of plain records (one per write in the
	// multi-put batch that succeeded on its trunk). The whole group lands
	// in one AppendFile, so a batch of N writes costs one TFS append
	// instead of N; the length prefix lets replay distinguish a crash-
	// truncated tail (ignored, the writes were never acked) from garbage
	// inside a fully appended group (an error).
	opGroup
)

// encodeGroupRecord builds one opGroup WAL record covering the writes in
// the batch that succeeded (errs nil, or nil at that index). Failed
// writes mutated nothing, so they must not replay. Returns nil when no
// write succeeded. Sub-records use the plain single-record layout with
// opPut: Add and Put replay identically (replay's Put is idempotent and
// the Add already won its race when the record was written).
func encodeGroupRecord(items []trunk.BatchItem, errs []error) []byte {
	body := 0
	for i := range items {
		if errs == nil || errs[i] == nil {
			body += 13 + len(items[i].Val)
		}
	}
	if body == 0 {
		return nil
	}
	rec := make([]byte, 5, 5+body) //alloc:ok one WAL group record per batch; that amortization is the point
	rec[0] = opGroup
	binary.LittleEndian.PutUint32(rec[1:], uint32(body))
	var hdr [13]byte
	for i := range items {
		if errs != nil && errs[i] != nil {
			continue
		}
		hdr[0] = opPut
		binary.LittleEndian.PutUint64(hdr[1:], items[i].Key)
		binary.LittleEndian.PutUint32(hdr[9:], uint32(len(items[i].Val)))
		rec = append(rec, hdr[:]...)
		rec = append(rec, items[i].Val...)
	}
	return rec
}

// loggedApply runs a trunk mutation and, under buffered logging, appends
// its record to the trunk's TFS log ("the key idea is to log operations
// to remote memory buffers before committing them to the local memory" —
// TFS plays the remote buffer here). The trunk's wal lock is held in
// read mode across both steps so a concurrent backup cannot dump the
// mutated trunk and then truncate the log before the record lands: every
// mutation is in the dump that the truncation trusts, or in the log, or
// both (replay of Put/Remove is idempotent; Append records truncated
// with their covering dump are never replayed twice).
func (s *Slave) loggedApply(key uint64, op byte, val []byte, apply func() error) error {
	if !s.cfg.BufferedLogging {
		return apply()
	}
	tid := s.trunkFor(key)
	mu := &s.walMu[tid]
	mu.RLock()
	defer mu.RUnlock()
	if err := apply(); err != nil {
		return err
	}
	rec := make([]byte, 13+len(val)) //alloc:ok per-op WAL record; batched writers use the group-commit path
	rec[0] = op
	binary.LittleEndian.PutUint64(rec[1:], key)
	binary.LittleEndian.PutUint32(rec[9:], uint32(len(val)))
	copy(rec[13:], val)
	s.fs.AppendFile(walFile(tid), rec)
	s.walBytesAppended.Add(int64(len(rec)))
	return nil
}

// replayLog applies a mutation log to a trunk. A truncated tail — the
// normal residue of a crash mid-append — stops replay cleanly with a nil
// error: the half-written record was never acked. Garbage that cannot be
// a crash artifact (an unknown op code, or a malformed record inside a
// fully appended group) stops replay with an error so recovery can count
// the corruption; replay never panics, whatever the bytes.
func replayLog(t *trunk.Trunk, log []byte) error {
	for len(log) > 0 {
		if log[0] == opGroup {
			if len(log) < 5 {
				return nil // truncated tail: group header cut off
			}
			n := int(binary.LittleEndian.Uint32(log[1:]))
			if n < 0 || n > len(log)-5 {
				return nil // truncated tail: crash mid group append
			}
			// The group framed n bytes and all n are present, so every
			// sub-record must parse completely: a short record here is
			// corruption, not a crash tail.
			if err := replayRecords(t, log[5:5+n], true); err != nil {
				return err
			}
			log = log[5+n:]
			continue
		}
		var err error
		log, err = replayOne(t, log, false)
		if err != nil {
			return err
		}
		if log == nil {
			return nil // truncated tail
		}
	}
	return nil
}

// replayRecords replays a run of plain records. strict reports a
// truncated record as an error instead of a silent stop (used inside
// fully framed group bodies).
func replayRecords(t *trunk.Trunk, log []byte, strict bool) error {
	for len(log) > 0 {
		var err error
		log, err = replayOne(t, log, strict)
		if err != nil {
			return err
		}
		if log == nil {
			return nil
		}
	}
	return nil
}

// replayOne decodes and applies a single plain record, returning the
// remaining log. A nil remainder with nil error means a truncated tail
// stopped replay (only when !strict).
func replayOne(t *trunk.Trunk, log []byte, strict bool) ([]byte, error) {
	if len(log) < 13 {
		if strict {
			return nil, fmt.Errorf("memcloud: wal record truncated at %d bytes", len(log))
		}
		return nil, nil
	}
	op := log[0]
	key := binary.LittleEndian.Uint64(log[1:])
	n := int(binary.LittleEndian.Uint32(log[9:]))
	rest := log[13:]
	if n < 0 || n > len(rest) {
		if strict {
			return nil, fmt.Errorf("memcloud: wal value truncated (%d of %d bytes)", len(rest), n)
		}
		return nil, nil
	}
	val := rest[:n]
	switch op {
	case opPut:
		t.Put(key, val)
	case opRemove:
		t.Remove(key)
	case opAppend:
		if err := t.Append(key, val); errors.Is(err, trunk.ErrNotFound) {
			t.Put(key, val)
		}
	default:
		return nil, fmt.Errorf("memcloud: unknown wal op %d", op)
	}
	return rest[n:], nil
}
