package memcloud

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"

	"trinity/internal/trunk"
)

func TestMultiPutCodecRoundTrip(t *testing.T) {
	items := []MultiPutItem{
		{Op: MultiPutOpPut, Key: 1, Val: val(40, 1)},
		{Op: MultiPutOpAdd, Key: 1 << 60, Val: nil},
		{Op: MultiPutOpPut, Key: 42, Val: val(1, 9)},
	}
	req := AppendMultiPutReq(make([]byte, 0, MultiPutReqSize(items)), items)
	if len(req) != MultiPutReqSize(items) {
		t.Fatalf("encoded %d bytes, MultiPutReqSize said %d", len(req), MultiPutReqSize(items))
	}
	got, err := decodeMultiPutReq(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Op != items[i].Op || got[i].Key != items[i].Key || !bytes.Equal(got[i].Val, items[i].Val) {
			t.Fatalf("item %d did not round-trip: %+v vs %+v", i, got[i], items[i])
		}
	}
}

func TestDecodeMultiPutReqRejectsMalformed(t *testing.T) {
	good := AppendMultiPutReq(nil, []MultiPutItem{{Op: MultiPutOpPut, Key: 7, Val: val(16, 3)}})
	cases := map[string][]byte{
		"empty":           {},
		"short header":    good[:3],
		"truncated item":  good[:10],
		"truncated value": good[:len(good)-4],
		"trailing bytes":  append(append([]byte{}, good...), 0xFF),
		"bad op": func() []byte {
			b := append([]byte{}, good...)
			b[4] = 0x7F
			return b
		}(),
		"count overshoot": func() []byte {
			b := append([]byte{}, good...)
			binary.LittleEndian.PutUint32(b, 1<<30)
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := decodeMultiPutReq(b); err == nil {
			t.Errorf("%s: decode accepted malformed request", name)
		}
	}
}

func TestDecodeMultiPutRespValidates(t *testing.T) {
	ok := []byte{MultiPutOK, MultiPutExists, MultiPutWrongOwner, MultiPutErr}
	if _, err := DecodeMultiPutResp(ok, 4); err != nil {
		t.Fatalf("valid response rejected: %v", err)
	}
	if _, err := DecodeMultiPutResp(ok, 3); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := DecodeMultiPutResp([]byte{9}, 1); err == nil {
		t.Fatal("unknown status accepted")
	}
}

func TestLocalMultiPutStatuses(t *testing.T) {
	c := newCloud(t, 2)
	s0 := c.Slave(0)

	var local, remote uint64
	for k := uint64(0); ; k++ {
		if s0.Owner(k) == s0.ID() {
			local = k
			break
		}
	}
	for k := uint64(0); ; k++ {
		if s0.Owner(k) != s0.ID() {
			remote = k
			break
		}
	}

	items := []MultiPutItem{
		{Op: MultiPutOpPut, Key: local, Val: val(16, 1)},
		{Op: MultiPutOpAdd, Key: local, Val: val(16, 2)}, // just written above: Exists
		{Op: MultiPutOpPut, Key: remote, Val: val(16, 3)},
	}
	statuses, ok := s0.LocalMultiPut(items)
	if !ok {
		t.Fatal("slave LocalMultiPut reported ok=false")
	}
	if want := []byte{MultiPutOK, MultiPutExists, MultiPutWrongOwner}; !bytes.Equal(statuses, want) {
		t.Fatalf("statuses = %v, want %v", statuses, want)
	}
	got, err := s0.Get(context.Background(), local)
	if err != nil || !bytes.Equal(got, val(16, 1)) {
		t.Fatalf("local key after batch: %v (Add must not clobber)", err)
	}
}

func TestMultiPutLastWriteWinsWithinBatch(t *testing.T) {
	c := newCloud(t, 1)
	s0 := c.Slave(0)
	items := []MultiPutItem{
		{Op: MultiPutOpPut, Key: 3, Val: val(16, 1)},
		{Op: MultiPutOpPut, Key: 3, Val: val(16, 2)},
	}
	statuses, _ := s0.LocalMultiPut(items)
	if statuses[0] != MultiPutOK || statuses[1] != MultiPutOK {
		t.Fatalf("statuses = %v", statuses)
	}
	got, err := s0.Get(context.Background(), 3)
	if err != nil || !bytes.Equal(got, val(16, 2)) {
		t.Fatalf("later duplicate did not win: %v", err)
	}
}

func TestMultiPutOverWire(t *testing.T) {
	c := newCloud(t, 2)
	s0 := c.Slave(0)

	// Keys owned by machine 1, shipped from machine 0 as one frame.
	var keys []uint64
	for k := uint64(0); len(keys) < 20; k++ {
		if s0.Owner(k) == 1 {
			keys = append(keys, k)
		}
	}
	items := make([]MultiPutItem, len(keys))
	for i, k := range keys {
		items[i] = MultiPutItem{Op: MultiPutOpPut, Key: k, Val: val(24, byte(k))}
	}
	req := AppendMultiPutReq(nil, items)
	resp, err := s0.Node().Call(context.Background(), 1, ProtoMultiPut, req)
	if err != nil {
		t.Fatal(err)
	}
	statuses, err := DecodeMultiPutResp(resp, len(items))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != MultiPutOK {
			t.Fatalf("item %d status %d", i, st)
		}
	}
	for _, k := range keys {
		got, err := s0.Get(context.Background(), k)
		if err != nil || !bytes.Equal(got, val(24, byte(k))) {
			t.Fatalf("wire-batched key %d: %v", k, err)
		}
	}
}

// TestWALGroupCommitRecovery is the durability half of the acceptance
// criterion: writes applied through the batched path (one group WAL
// record per trunk per batch, never backed up) must survive the owner's
// crash via group-record replay.
func TestWALGroupCommitRecovery(t *testing.T) {
	cfg := testConfig(3)
	cfg.BufferedLogging = true
	c := New(cfg)
	defer c.Close()
	s0, victim := c.Slave(0), c.Slave(2)

	var items []MultiPutItem
	for k := uint64(0); len(items) < 80; k++ {
		if s0.Owner(k) == victim.ID() {
			items = append(items, MultiPutItem{Op: MultiPutOpPut, Key: k, Val: val(20, byte(k))})
		}
	}
	statuses, _ := victim.LocalMultiPut(items)
	for i, st := range statuses {
		if st != MultiPutOK {
			t.Fatalf("item %d status %d", i, st)
		}
	}
	if victim.walGroupCommits.Load() == 0 {
		t.Fatal("no group commits recorded")
	}
	if got := victim.walGroupCommits.Load(); got >= int64(len(items)) {
		t.Fatalf("group commit amortized nothing: %d appends for %d writes", got, len(items))
	}

	// NO backup: the cells live in the victim's memory plus group records
	// in the TFS log.
	c.KillMachine(victim.ID())
	for _, it := range items {
		got, err := s0.Get(context.Background(), it.Key)
		if err != nil {
			t.Fatalf("key %d lost after crash: %v (group replay broken)", it.Key, err)
		}
		if !bytes.Equal(got, it.Val) {
			t.Fatalf("key %d corrupted after group replay", it.Key)
		}
	}
}

func TestReplayLogGroupRecords(t *testing.T) {
	newTrunk := func() *trunk.Trunk {
		return trunk.New(trunk.Options{Capacity: 1 << 16, PageSize: 1 << 10})
	}
	group := func(kv ...uint64) []byte {
		items := make([]trunk.BatchItem, len(kv))
		for i, k := range kv {
			items[i] = trunk.BatchItem{Key: k, Val: val(10, byte(k))}
		}
		return encodeGroupRecord(items, nil)
	}
	single := func(op byte, key uint64, v []byte) []byte {
		rec := make([]byte, 13+len(v))
		rec[0] = op
		binary.LittleEndian.PutUint64(rec[1:], key)
		binary.LittleEndian.PutUint32(rec[9:], uint32(len(v)))
		copy(rec[13:], v)
		return rec
	}
	concat := func(bs ...[]byte) []byte {
		var out []byte
		for _, b := range bs {
			out = append(out, b...)
		}
		return out
	}

	t.Run("mixed groups and singles replay in order", func(t *testing.T) {
		tr := newTrunk()
		log := concat(
			single(opPut, 1, val(10, 99)),
			group(1, 2, 3), // overwrites key 1
			single(opRemove, 2, nil),
			group(4),
		)
		if err := replayLog(tr, log); err != nil {
			t.Fatal(err)
		}
		for _, k := range []uint64{1, 3, 4} {
			got, err := tr.Get(k)
			if err != nil || !bytes.Equal(got, val(10, byte(k))) {
				t.Fatalf("key %d after replay: %v", k, err)
			}
		}
		if _, err := tr.Get(2); err == nil {
			t.Fatal("removed key survived replay")
		}
	})

	t.Run("truncated group tail stops silently", func(t *testing.T) {
		full := group(1, 2, 3)
		for cut := 1; cut < len(full); cut++ {
			tr := newTrunk()
			if err := replayLog(tr, full[:cut]); err != nil {
				t.Fatalf("cut at %d: %v (crash tails must not error)", cut, err)
			}
			// Whatever applied, nothing may be corrupt.
			for _, k := range []uint64{1, 2, 3} {
				if got, err := tr.Get(k); err == nil && !bytes.Equal(got, val(10, byte(k))) {
					t.Fatalf("cut at %d: key %d corrupt", cut, k)
				}
			}
		}
	})

	t.Run("prefix before truncated group still applies", func(t *testing.T) {
		tr := newTrunk()
		full := group(7)
		log := concat(group(1, 2), full[:len(full)-3])
		if err := replayLog(tr, log); err != nil {
			t.Fatal(err)
		}
		for _, k := range []uint64{1, 2} {
			if _, err := tr.Get(k); err != nil {
				t.Fatalf("complete group before crash tail lost key %d", k)
			}
		}
		if _, err := tr.Get(7); err == nil {
			t.Fatal("half-appended group applied")
		}
	})

	t.Run("garbage inside framed group errors", func(t *testing.T) {
		g := group(1, 2)
		g[5] = 0x7F // first sub-record's op byte: not a valid plain op
		if err := replayLog(newTrunk(), g); err == nil {
			t.Fatal("corrupt group body replayed without error")
		}
		// Sub-record truncated inside a fully framed body: also corruption.
		g2 := group(1)
		binary.LittleEndian.PutUint32(g2[1:], uint32(len(g2)-5+8)) // lie: body longer than sub-records
		g2 = append(g2, make([]byte, 8)...)                        // pad so frame is "complete" but tail is junk
		if err := replayLog(newTrunk(), g2); err == nil {
			t.Fatal("truncated sub-record inside complete frame replayed without error")
		}
	})

	t.Run("unknown plain op errors", func(t *testing.T) {
		if err := replayLog(newTrunk(), single(0x7E, 1, val(4, 1))); err == nil {
			t.Fatal("unknown op replayed without error")
		}
	})
}
