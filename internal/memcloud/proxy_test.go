package memcloud

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"trinity/internal/msg"
)

// keyOwnedBy returns a key the addressing table currently places on m.
func keyOwnedBy(t *testing.T, c *Cloud, m msg.MachineID) uint64 {
	t.Helper()
	for k := uint64(0); k < 1<<16; k++ {
		if c.Slave(0).Owner(k) == m {
			return k
		}
	}
	t.Fatalf("no key hashes to machine %d", m)
	return 0
}

// TestProxyGetPutAgainstKilledNode: a proxy routes by the addressing
// table; when the owner is dead and nobody has driven recovery yet, Get
// and Put must fail with a transport error, not hang and not report a
// phantom ErrNotFound.
func TestProxyGetPutAgainstKilledNode(t *testing.T) {
	cfg := testConfig(3)
	cfg.Msg.CallTimeout = 200 * time.Millisecond
	c := New(cfg)
	t.Cleanup(c.Close)
	p := c.NewProxy()
	defer p.Close()

	key := keyOwnedBy(t, c, 2)
	if err := p.Put(context.Background(), key, val(16, 1)); err != nil {
		t.Fatal(err)
	}
	c.KillMachine(2)

	start := time.Now()
	_, err := p.Get(context.Background(), key)
	if err == nil {
		t.Fatal("Get against killed owner succeeded")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("Get against killed owner reported ErrNotFound: %v", err)
	}
	if err := p.Put(context.Background(), key, val(16, 2)); err == nil {
		t.Fatal("Put against killed owner succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("proxy calls to a dead node took %v", elapsed)
	}
}

// TestProxyOwnerTracksRecovery: after the failure protocol reassigns the
// dead machine's trunks, the proxy's table replica must route around it
// and serve the recovered data.
func TestProxyOwnerTracksRecovery(t *testing.T) {
	cfg := testConfig(3)
	cfg.Msg.CallTimeout = 200 * time.Millisecond
	c := New(cfg)
	t.Cleanup(c.Close)
	p := c.NewProxy()
	defer p.Close()

	key := keyOwnedBy(t, c, 2)
	if err := p.Put(context.Background(), key, val(16, 7)); err != nil {
		t.Fatal(err)
	}
	if err := c.Backup(); err != nil {
		t.Fatal(err)
	}
	c.KillMachine(2)
	p.ReportFailure(context.Background(), 2) // synchronous: recovery has run when this returns
	p.RefreshTable(context.Background())

	if owner := p.Owner(key); owner == 2 {
		t.Fatal("proxy still routes to the failed machine after recovery")
	}
	got, err := p.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(16, 7)) {
		t.Fatal("recovered value corrupt through proxy")
	}
}

// TestProxyOwnerTracksJoin: AddMachine rebalances trunks onto the joiner;
// the proxy's ownerOf must follow the new table version and its calls
// must reach the joiner's endpoint.
func TestProxyOwnerTracksJoin(t *testing.T) {
	c := newCloud(t, 2)
	p := c.NewProxy()
	defer p.Close()

	for k := uint64(0); k < 64; k++ {
		if err := p.Put(context.Background(), k, val(8, byte(k))); err != nil {
			t.Fatal(err)
		}
	}
	joiner, err := c.AddMachine()
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, c, joiner.ID())
	if p.Owner(key) != joiner.ID() {
		t.Fatal("proxy table replica did not pick up the rebalanced owner")
	}
	if err := p.Put(context.Background(), key, val(8, 99)); err != nil {
		t.Fatalf("Put routed to joiner: %v", err)
	}
	got, err := p.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get routed to joiner: %v", err)
	}
	if !bytes.Equal(got, val(8, 99)) {
		t.Fatal("joiner round trip corrupt")
	}
}

// countProto registers a local-cell-count protocol on every live slave
// and returns its id.
func countProto(c *Cloud) msg.ProtocolID {
	const proto msg.ProtocolID = 0x0901
	for i := 0; i < c.Slaves(); i++ {
		s := c.Slave(i)
		ss := s
		s.Node().HandleSync(proto, func(context.Context, msg.MachineID, []byte) ([]byte, error) {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(len(ss.LocalKeys())))
			return buf[:], nil
		})
	}
	return proto
}

// TestProxyScatterGatherSkipsKilledMachine: a dead slave is skipped, the
// survivors still aggregate.
func TestProxyScatterGatherSkipsKilledMachine(t *testing.T) {
	c := newCloud(t, 3)
	proto := countProto(c)
	p := c.NewProxy()
	defer p.Close()

	c.KillMachine(1)
	var machines []msg.MachineID
	err := p.ScatterGather(context.Background(), proto, nil, func(m msg.MachineID, _ []byte) error {
		machines = append(machines, m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 2 {
		t.Fatalf("combined %d machines, want 2 (dead one skipped)", len(machines))
	}
	for _, m := range machines {
		if m == 1 {
			t.Fatal("dead machine reached the combiner")
		}
	}
}

// TestProxyScatterGatherChaosCutSurfacesError: a machine that is alive in
// the membership but unreachable from the proxy (network partition) must
// surface as an error from ScatterGather, not be silently dropped.
func TestProxyScatterGatherChaosCutSurfacesError(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := testConfig(3)
			cfg.Msg.CallTimeout = 200 * time.Millisecond
			c, ch := NewChaosCloud(cfg, seed)
			t.Cleanup(c.Close)
			proto := countProto(c)
			p := c.NewProxy()
			defer p.Close()

			ch.Cut(p.ID(), 2)
			ch.Cut(2, p.ID())
			err := p.ScatterGather(context.Background(), proto, nil, func(msg.MachineID, []byte) error { return nil })
			if err == nil {
				t.Fatal("partitioned slave did not surface as a ScatterGather error")
			}
			// Healed, the same sweep succeeds and covers all machines.
			ch.Heal(p.ID(), 2)
			ch.Heal(2, p.ID())
			seen := 0
			err = p.ScatterGather(context.Background(), proto, nil, func(msg.MachineID, []byte) error {
				seen++
				return nil
			})
			if err != nil || seen != 3 {
				t.Fatalf("after heal: err=%v machines=%d", err, seen)
			}
		})
	}
}
