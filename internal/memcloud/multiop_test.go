package memcloud

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"trinity/internal/hash"
	"trinity/internal/msg"
)

// localKeysOn returns n keys owned by the given slave.
func localKeysOn(s *Slave, n int) []uint64 {
	var out []uint64
	for k := uint64(0); len(out) < n; k++ {
		if s.Owner(k) == s.ID() {
			out = append(out, k)
		}
	}
	return out
}

func TestMultiViewAtomicTransfer(t *testing.T) {
	// The classic bank-transfer invariant: concurrent transfers between
	// accounts must never lose money. Each account is a LOCAL cell with a
	// uint64 balance.
	c := newCloud(t, 2)
	s := c.Slave(0)
	keys := localKeysOn(s, 4)
	const initial = 1000
	for _, k := range keys {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], initial)
		if err := s.Put(context.Background(), k, buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hash.NewRNG(uint64(w))
			for i := 0; i < 300; i++ {
				from := keys[rng.Intn(len(keys))]
				to := keys[rng.Intn(len(keys))]
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(10))
				err := s.MultiView(context.Background(), []uint64{from, to}, func(p [][]byte) error {
					fb := binary.LittleEndian.Uint64(p[0])
					tb := binary.LittleEndian.Uint64(p[1])
					if fb < amount {
						return nil
					}
					binary.LittleEndian.PutUint64(p[0], fb-amount)
					binary.LittleEndian.PutUint64(p[1], tb+amount)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, k := range keys {
		v, err := s.Get(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		total += binary.LittleEndian.Uint64(v)
	}
	if total != initial*uint64(len(keys)) {
		t.Fatalf("money not conserved: %d != %d", total, initial*len(keys))
	}
}

func TestMultiViewDuplicateKeys(t *testing.T) {
	c := newCloud(t, 1)
	s := c.Slave(0)
	s.Put(context.Background(), 5, []byte{1})
	err := s.MultiView(context.Background(), []uint64{5, 5, 5}, func(p [][]byte) error {
		if len(p) != 3 {
			t.Fatalf("payloads = %d", len(p))
		}
		// All three views alias the same pinned cell.
		p[0][0] = 9
		if p[2][0] != 9 {
			t.Fatal("duplicate views do not alias")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiViewRejectsRemote(t *testing.T) {
	c := newCloud(t, 2)
	s := c.Slave(0)
	var remote uint64
	for k := uint64(0); ; k++ {
		if s.Owner(k) != s.ID() {
			remote = k
			break
		}
	}
	c.Slave(1).Put(context.Background(), remote, []byte{1})
	err := s.MultiView(context.Background(), []uint64{remote}, func([][]byte) error { return nil })
	if !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("remote MultiView = %v, want ErrWrongOwner", err)
	}
}

func TestMultiViewMissingCell(t *testing.T) {
	c := newCloud(t, 1)
	s := c.Slave(0)
	s.Put(context.Background(), 1, []byte{1})
	err := s.MultiView(context.Background(), []uint64{1, 999}, func([][]byte) error { return nil })
	if err == nil {
		t.Fatal("missing cell accepted")
	}
	// The held lock on cell 1 must have been released: a second op works.
	if err := s.Put(context.Background(), 1, []byte{2}); err != nil {
		t.Fatalf("cell 1 still locked: %v", err)
	}
}

func TestMultiViewEmpty(t *testing.T) {
	c := newCloud(t, 1)
	called := false
	if err := c.Slave(0).MultiView(context.Background(), nil, func(p [][]byte) error {
		called = p == nil
		return nil
	}); err != nil || !called {
		t.Fatalf("empty MultiView: %v", err)
	}
}

func TestCompareAndSwapCell(t *testing.T) {
	c := newCloud(t, 1)
	s := c.Slave(0)
	key := localKeysOn(s, 1)[0]
	s.Put(context.Background(), key, []byte{1, 2, 3})
	ok, err := s.CompareAndSwapCell(context.Background(), key, []byte{1, 2, 3}, []byte{4, 5, 6})
	if err != nil || !ok {
		t.Fatalf("CAS failed: %v %v", ok, err)
	}
	v, _ := s.Get(context.Background(), key)
	if v[0] != 4 {
		t.Fatal("CAS did not write")
	}
	ok, err = s.CompareAndSwapCell(context.Background(), key, []byte{1, 2, 3}, []byte{7, 8, 9})
	if err != nil || ok {
		t.Fatalf("stale CAS succeeded: %v %v", ok, err)
	}
	if _, err := s.CompareAndSwapCell(context.Background(), key, []byte{1}, []byte{1, 2}); err == nil {
		t.Fatal("size-mismatched CAS accepted")
	}
}

func TestProxyRoutesOperations(t *testing.T) {
	c := newCloud(t, 3)
	p := c.NewProxy()
	defer p.Close()
	for i := uint64(0); i < 60; i++ {
		if err := p.Put(context.Background(), i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 60; i++ {
		v, err := p.Get(context.Background(), i)
		if err != nil || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("proxy Get(%d) = %v, %v", i, v, err)
		}
	}
	if _, err := p.Get(context.Background(), 999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("proxy Get missing = %v", err)
	}
	// The proxy owns no data.
	owned := 0
	for i := 0; i < 3; i++ {
		owned += len(c.Slave(i).LocalKeys())
	}
	if owned != 60 {
		t.Fatalf("slaves own %d cells, want 60", owned)
	}
}

func TestProxyScatterGather(t *testing.T) {
	c := newCloud(t, 4)
	// Register a tiny aggregation protocol on each slave: report local
	// cell count.
	const protoCount msg.ProtocolID = 0x0900
	for i := 0; i < 4; i++ {
		s := c.Slave(i)
		ss := s
		s.Node().HandleSync(protoCount, func(context.Context, msg.MachineID, []byte) ([]byte, error) {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(len(ss.LocalKeys())))
			return buf[:], nil
		})
	}
	for i := uint64(0); i < 100; i++ {
		c.Slave(0).Put(context.Background(), i, []byte{1})
	}
	p := c.NewProxy()
	defer p.Close()
	total := 0
	machines := 0
	err := p.ScatterGather(context.Background(), protoCount, nil, func(_ msg.MachineID, reply []byte) error {
		total += int(binary.LittleEndian.Uint32(reply))
		machines++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if machines != 4 || total != 100 {
		t.Fatalf("aggregated %d cells from %d machines", total, machines)
	}
}
