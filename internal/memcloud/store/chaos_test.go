package store_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/memcloud/store"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// chaosConfig tunes for fault injection: a short call timeout so dropped
// frames are detected in milliseconds, buffered logging so acknowledged
// writes have a durability story, and a failure timeout high enough that
// only the explicit failure-report path drives recovery.
func chaosConfig(machines int, reg *obs.Registry) memcloud.Config {
	cfg := testConfig(machines, reg)
	cfg.BufferedLogging = true
	cfg.Msg.CallTimeout = 200 * time.Millisecond
	cfg.Cluster.FailureTimeout = time.Minute
	return cfg
}

// waitAllResolve fails the test if any write future is still unresolved
// after the deadline — the pipeline's core promise is that no future
// wedges, whatever the network does. Returns the keys whose writes were
// acknowledged (resolved nil): the durability set.
func waitAllResolve(t *testing.T, keys []uint64, futs []*store.Future, d time.Duration) (acked []uint64, errs int) {
	t.Helper()
	deadline := time.After(d)
	for i, fu := range futs {
		select {
		case <-fu.Done():
		case <-deadline:
			t.Fatalf("future for key %d wedged: unresolved after %v", keys[i], d)
		}
		if err := fu.Wait(context.Background()); err != nil {
			errs++
			continue
		}
		acked = append(acked, keys[i])
	}
	return acked, errs
}

// TestChaosWriterDeliversUnderDupDelay: duplicated and reordered frames
// are contract-preserving faults for Put (last-write-wins, idempotent) —
// every future must resolve nil, every value must read back correct, and
// nothing may escalate into a recovery.
func TestChaosWriterDeliversUnderDupDelay(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := obs.NewRegistry()
			c, ch := memcloud.NewChaosCloud(chaosConfig(3, reg), seed)
			defer c.Close()
			s0 := c.Slave(0)
			ch.SetDefault(msg.Policy{
				Dup:      0.10,
				Delay:    0.30,
				MaxDelay: 2 * time.Millisecond,
				Jitter:   100 * time.Microsecond,
			})

			w := store.New(s0, store.Options{Metrics: reg})
			defer w.Close()
			const n = 300
			keys := make([]uint64, n)
			futs := make([]*store.Future, n)
			for k := uint64(0); k < n; k++ {
				keys[k] = k
				futs[k] = w.PutAsync(k, val(16, byte(k)))
			}
			w.Flush()
			acked, errs := waitAllResolve(t, keys, futs, 30*time.Second)
			if errs != 0 || len(acked) != n {
				t.Fatalf("%d acked, %d errors under benign chaos; want %d acked", len(acked), errs, n)
			}
			for _, k := range keys {
				got, err := s0.Get(context.Background(), k)
				if err != nil || !bytes.Equal(got, val(16, byte(k))) {
					t.Fatalf("key %d corrupt under benign chaos: %v", k, err)
				}
			}
			if rec := c.Stats().Recoveries; rec != 0 {
				t.Fatalf("spurious recoveries under benign chaos: %d", rec)
			}
		})
	}
}

// TestChaosWriterAckedWritesDurableUnderDrops: with frames silently lost,
// calls time out, batches re-route, ambiguously-applied ops re-send — and
// still (a) no future wedges, (b) every ACKED write is readable with
// correct bytes, and (c) no Add to a fresh key resolves ErrExists: the
// only way a fresh key can "exist" is our own ambiguous first attempt,
// which the pipeline must recognize as its own success. (Dup stays 0:
// frame duplication re-runs handlers, so a duplicated Add can observe
// itself — an at-least-once hazard shared with the sync Add path, not a
// pipeline property.)
func TestChaosWriterAckedWritesDurableUnderDrops(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := obs.NewRegistry()
			c, ch := memcloud.NewChaosCloud(chaosConfig(3, reg), seed)
			defer c.Close()
			s0 := c.Slave(0)
			ch.SetDefault(msg.Policy{
				Drop:     0.03,
				Delay:    0.20,
				MaxDelay: 2 * time.Millisecond,
			})

			w := store.New(s0, store.Options{Metrics: reg})
			defer w.Close()
			const n = 200
			keys := make([]uint64, n)
			futs := make([]*store.Future, n)
			for k := uint64(0); k < n; k++ {
				keys[k] = k
				if k%3 == 0 {
					futs[k] = w.AddAsync(k, val(16, byte(k)))
				} else {
					futs[k] = w.PutAsync(k, val(16, byte(k)))
				}
			}
			w.Flush()
			deadline := time.After(60 * time.Second)
			ackErrs := 0
			var acked []uint64
			for i, fu := range futs {
				select {
				case <-fu.Done():
				case <-deadline:
					t.Fatalf("future for key %d wedged", keys[i])
				}
				err := fu.Wait(context.Background())
				switch {
				case err == nil:
					acked = append(acked, keys[i])
				case errors.Is(err, memcloud.ErrExists):
					t.Fatalf("Add to fresh key %d resolved ErrExists: pipeline blamed its own retry", keys[i])
				default:
					ackErrs++
				}
			}
			t.Logf("seed %d: %d acked, %d errors, retries=%d",
				seed, len(acked), ackErrs, reg.Scope("store.m0").Counter("retries").Load())
			if len(acked) == 0 {
				t.Fatal("no write acknowledged under lossy chaos")
			}
			// Lift the chaos and audit the durability set: every acked
			// write must be readable with the exact bytes that were acked.
			ch.SetDefault(msg.Policy{})
			for _, k := range acked {
				got, err := s0.Get(context.Background(), k)
				if err != nil {
					t.Fatalf("acked key %d lost: %v", k, err)
				}
				if !bytes.Equal(got, val(16, byte(k))) {
					t.Fatalf("acked key %d corrupt", k)
				}
			}
		})
	}
}

// TestChaosWriterMidBatchWrongOwnerFailover: the owner of a stream of
// writes dies mid-load. In-flight batches time out, the failure report
// recovers its trunks to survivors, queued writes re-route through the
// refreshed table — and every acknowledged write must be readable after
// the dust settles (kill-mid-load loses zero acked writes; the WAL group
// records back the ones acked before the kill).
func TestChaosWriterMidBatchWrongOwnerFailover(t *testing.T) {
	for _, seed := range msg.Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg := obs.NewRegistry()
			cfg := chaosConfig(4, reg)
			cfg.Cluster.FailureTimeout = 150 * time.Millisecond
			c, _ := memcloud.NewChaosCloud(cfg, seed)
			defer c.Close()
			s0 := c.Slave(0)

			victim := msg.MachineID(3)
			var keys []uint64
			for k := uint64(0); len(keys) < 120; k++ {
				if s0.Owner(k) == victim {
					keys = append(keys, k)
				}
			}

			// Slow batch formation slightly so the kill lands mid-stream:
			// some batches acked by the victim, some in flight, some queued.
			w := store.New(s0, store.Options{MaxBatch: 16, MinBatch: 8, Metrics: reg})
			defer w.Close()
			futs := make([]*store.Future, len(keys))
			for i, k := range keys {
				futs[i] = w.PutAsync(k, val(20, byte(k)))
				if i == len(keys)/2 {
					c.KillMachine(victim)
				}
			}
			w.Flush()
			acked, errs := waitAllResolve(t, keys, futs, 60*time.Second)
			t.Logf("seed %d: %d/%d acked, %d errors, retries=%d", seed,
				len(acked), len(keys), errs, reg.Scope("store.m0").Counter("retries").Load())
			if len(acked) == 0 {
				t.Fatal("no write survived the failover")
			}
			// Zero acked writes lost: writes acked by the victim pre-kill
			// replay from its WAL group records; writes acked post-kill
			// landed on the new owner.
			for _, k := range acked {
				got, err := getEventually(s0, k, 10*time.Second)
				if err != nil {
					t.Fatalf("acked key %d lost after mid-load kill: %v", k, err)
				}
				if !bytes.Equal(got, val(20, byte(k))) {
					t.Fatalf("acked key %d corrupt after mid-load kill", k)
				}
			}
			if owner := s0.Owner(keys[0]); owner == victim {
				t.Fatal("table still names the dead machine as owner")
			}
		})
	}
}

// getEventually reads a key, retrying transient post-failover errors (the
// table can commit before the new owner finishes loading the trunk).
func getEventually(s *memcloud.Slave, key uint64, d time.Duration) ([]byte, error) {
	deadline := time.Now().Add(d)
	for {
		got, err := s.Get(context.Background(), key)
		if err == nil {
			return got, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
}
