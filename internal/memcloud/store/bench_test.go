package store_test

import (
	"context"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/memcloud/store"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

func benchCloud(b *testing.B, machines int, reg *obs.Registry) *memcloud.Cloud {
	b.Helper()
	return memcloud.New(memcloud.Config{
		Machines:      machines,
		TrunkCapacity: 64 << 20,
		Msg: msg.Options{
			FlushInterval: 100 * time.Microsecond,
			CallTimeout:   10 * time.Second,
		},
		Metrics: reg,
	})
}

// BenchmarkPutPipeline measures the full batched multi-put path one
// machine sees during a bulk ingest: writes issued asynchronously from
// one access point, coalesced into per-owner ProtoMultiPut frames
// (encoded into pooled leases), applied with amortized trunk locking and
// resolved through futures. The per-cell baseline below is the same
// workload one synchronous Put at a time; the pipeline's allocs/op is a
// gated number (entry slabs + one frame per batch, not per write).
func BenchmarkPutPipeline(b *testing.B) {
	reg := obs.NewRegistry()
	c := benchCloud(b, 4, reg)
	defer c.Close()
	s0 := c.Slave(0)

	const (
		batchSize = 256
		cellSize  = 64
	)
	payload := val(cellSize, 3)
	w := store.New(s0, store.Options{Metrics: reg})
	defer w.Close()

	b.ReportAllocs()
	b.SetBytes(int64(batchSize * cellSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i) * batchSize
		for k := uint64(0); k < batchSize; k++ {
			w.PutAsync(base+k, payload)
		}
		if err := w.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutPerCell is the pre-pipeline baseline: the identical write
// stream as one synchronous Put per cell from the same access point. The
// EXPERIMENTS.md bulk-load table derives its sync-call ablation from the
// gap between this and BenchmarkPutPipeline.
func BenchmarkPutPerCell(b *testing.B) {
	reg := obs.NewRegistry()
	c := benchCloud(b, 4, reg)
	defer c.Close()
	s0 := c.Slave(0)

	const (
		batchSize = 256
		cellSize  = 64
	)
	payload := val(cellSize, 3)

	b.ReportAllocs()
	b.SetBytes(int64(batchSize * cellSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i) * batchSize
		for k := uint64(0); k < batchSize; k++ {
			if err := s0.Put(context.Background(), base+k, payload); err != nil {
				b.Fatal(err)
			}
		}
	}
}
