package store_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"trinity/internal/memcloud"
	"trinity/internal/memcloud/store"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

func testConfig(machines int, reg *obs.Registry) memcloud.Config {
	return memcloud.Config{
		Machines: machines,
		Msg: msg.Options{
			FlushInterval: time.Millisecond,
			CallTimeout:   time.Second,
		},
		Metrics: reg,
	}
}

func val(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seed + byte(i)
	}
	return out
}

// remoteKey finds a key s does not own.
func remoteKey(s *memcloud.Slave, from uint64) uint64 {
	for k := from; ; k++ {
		if s.Owner(k) != s.ID() {
			return k
		}
	}
}

func TestPutAsyncWritesEveryKey(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(4, reg))
	defer c.Close()
	s0 := c.Slave(0)

	w := store.New(s0, store.Options{Metrics: reg})
	defer w.Close()

	const n = 400
	for k := uint64(0); k < n; k++ {
		w.PutAsync(k, val(24, byte(k)))
	}
	if err := w.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		got, err := s0.Get(context.Background(), k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !bytes.Equal(got, val(24, byte(k))) {
			t.Fatalf("key %d: corrupt value", k)
		}
	}

	scope := reg.Scope("store.m0")
	keys := scope.Counter("keys").Load()
	batches := scope.Counter("batches").Load()
	if keys != n {
		t.Fatalf("keys = %d, want %d", keys, n)
	}
	if batches == 0 || batches >= keys {
		t.Fatalf("batching saved nothing: %d batches for %d keys", batches, keys)
	}
	if saved := scope.Counter("round_trips_saved").Load(); saved != keys-batches {
		t.Fatalf("round_trips_saved = %d, want %d", saved, keys-batches)
	}
	if scope.Counter("local_batches").Load() == 0 {
		t.Fatal("no batch of 400 keys applied locally on a 4-machine cloud")
	}
	if scope.Gauge("inflight").Load() != 0 {
		t.Fatal("inflight gauge nonzero after Drain")
	}
}

func TestFutureResolvesIndividually(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	w := store.New(s0, store.Options{Metrics: reg})
	defer w.Close()

	key := remoteKey(s0, 0)
	f := w.PutAsync(key, val(16, 3))
	w.Flush()
	if err := f.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := s0.Get(context.Background(), key)
	if err != nil || !bytes.Equal(got, val(16, 3)) {
		t.Fatalf("write not visible after future resolved: %v", err)
	}
}

func TestAddAsyncReportsExists(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	key := remoteKey(s0, 0)
	if err := s0.Put(context.Background(), key, val(8, 1)); err != nil {
		t.Fatal(err)
	}

	w := store.New(s0, store.Options{Metrics: reg})
	defer w.Close()
	f := w.AddAsync(key, val(8, 2))
	w.Flush()
	if err := f.Wait(context.Background()); !errors.Is(err, memcloud.ErrExists) {
		t.Fatalf("Add on existing key: err = %v, want ErrExists", err)
	}
	// The original value must be untouched.
	got, err := s0.Get(context.Background(), key)
	if err != nil || !bytes.Equal(got, val(8, 1)) {
		t.Fatalf("Add clobbered existing cell: %v", err)
	}
}

func TestPutOverPutCoalescesLastWriteWins(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	// A huge MinBatch and MaxDelay keep the queue parked until Flush, so
	// both writes are guaranteed to meet in the queue.
	w := store.New(s0, store.Options{MinBatch: 1024, MaxDelay: time.Minute, Metrics: reg})
	defer w.Close()

	key := remoteKey(s0, 0)
	f1 := w.PutAsync(key, val(16, 1))
	f2 := w.PutAsync(key, val(16, 2))
	if f1 != f2 {
		t.Fatal("coalesced Put did not share the queued future")
	}
	if err := w.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := s0.Get(context.Background(), key)
	if err != nil || !bytes.Equal(got, val(16, 2)) {
		t.Fatalf("last write did not win: %v", err)
	}
	scope := reg.Scope("store.m0")
	if hits := scope.Counter("coalesce_hits").Load(); hits != 1 {
		t.Fatalf("coalesce_hits = %d, want 1", hits)
	}
	if keys := scope.Counter("keys").Load(); keys != 1 {
		t.Fatalf("coalesced pair shipped %d wire slots, want 1", keys)
	}
}

func TestSameKeyOpsOrderThroughChain(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	w := store.New(s0, store.Options{MinBatch: 1024, MaxDelay: time.Minute, Metrics: reg})
	defer w.Close()

	// Put then Add on one key, issued before anything ships: the Add must
	// observe the Put (chained behind it, not coalesced or reordered).
	key := remoteKey(s0, 0)
	fPut := w.PutAsync(key, val(8, 1))
	fAdd := w.AddAsync(key, val(8, 2))
	if err := w.Drain(context.Background()); err == nil {
		t.Fatal("Drain must surface the chained Add's ErrExists")
	}
	if err := fPut.Wait(context.Background()); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := fAdd.Wait(context.Background()); !errors.Is(err, memcloud.ErrExists) {
		t.Fatalf("Add after queued Put: err = %v, want ErrExists", err)
	}

	// Add then Put: both succeed and the Put's value is final.
	key2 := remoteKey(s0, key+1)
	fAdd2 := w.AddAsync(key2, val(8, 3))
	fPut2 := w.PutAsync(key2, val(8, 4))
	if err := w.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fAdd2.Wait(context.Background()); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := fPut2.Wait(context.Background()); err != nil {
		t.Fatalf("Put after Add: %v", err)
	}
	got, err := s0.Get(context.Background(), key2)
	if err != nil || !bytes.Equal(got, val(8, 4)) {
		t.Fatalf("chained Put did not land last: %v", err)
	}
}

func TestDrainReturnsFirstError(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	key := remoteKey(s0, 0)
	if err := s0.Put(context.Background(), key, val(8, 1)); err != nil {
		t.Fatal(err)
	}
	w := store.New(s0, store.Options{Metrics: reg})
	defer w.Close()
	w.AddAsync(key, val(8, 2))
	if err := w.Drain(context.Background()); !errors.Is(err, memcloud.ErrExists) {
		t.Fatalf("Drain = %v, want ErrExists", err)
	}
	// The error is consumed: a fresh Drain over a clean pipeline is nil.
	if err := w.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain = %v, want nil", err)
	}
}

func TestCloseResolvesQueuedFutures(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	w := store.New(s0, store.Options{MinBatch: 1024, MaxDelay: time.Minute, Metrics: reg})
	key := remoteKey(s0, 0)
	f1 := w.PutAsync(key, val(8, 1))
	f2 := w.AddAsync(key, val(8, 2)) // chained successor must cascade too
	w.Close()
	if err := f1.Wait(context.Background()); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("queued future after Close: %v, want ErrClosed", err)
	}
	if err := f2.Wait(context.Background()); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("chained future after Close: %v, want ErrClosed", err)
	}
	if f := w.PutAsync(key, val(8, 3)); !errors.Is(f.Wait(context.Background()), store.ErrClosed) {
		t.Fatal("write after Close must resolve ErrClosed")
	}
}

func TestAdaptiveBatchSizeGrowsUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(2, reg))
	defer c.Close()
	s0 := c.Slave(0)

	w := store.New(s0, store.Options{MinBatch: 8, MaxBatch: 128, Metrics: reg})
	defer w.Close()
	const n = 3000
	for k := uint64(0); k < n; k++ {
		w.PutAsync(k, val(16, byte(k)))
	}
	if err := w.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	scope := reg.Scope("store.m0")
	snap := scope.Histogram("batch_size").Snapshot()
	if snap.Count == 0 {
		t.Fatal("no batches recorded")
	}
	if snap.Max <= 8 {
		t.Fatalf("batch size never grew past MinBatch: max=%d", snap.Max)
	}
	if snap.Max > 128 {
		t.Fatalf("batch size exceeded MaxBatch: max=%d", snap.Max)
	}
}

func TestFailedMachineWritesResolveViaRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(4, reg)
	cfg.Msg.CallTimeout = 250 * time.Millisecond
	c := memcloud.New(cfg)
	defer c.Close()
	s0 := c.Slave(0)

	w := store.New(s0, store.Options{Metrics: reg})
	defer w.Close()

	// Kill a machine, then write keys it owned: the pipeline must report
	// the failure, wait out the table repair, and land every write on the
	// new owner. §6.2: "report the failure, refresh the table, retry".
	victim := msg.MachineID(3)
	var victimKeys []uint64
	for k := uint64(0); len(victimKeys) < 40; k++ {
		if s0.Owner(k) == victim {
			victimKeys = append(victimKeys, k)
		}
	}
	c.KillMachine(victim)

	for _, k := range victimKeys {
		w.PutAsync(k, val(20, byte(k)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := w.Drain(ctx); err != nil {
		t.Fatalf("Drain after machine failure: %v", err)
	}
	for _, k := range victimKeys {
		got, err := s0.Get(context.Background(), k)
		if err != nil || !bytes.Equal(got, val(20, byte(k))) {
			t.Fatalf("key %d not re-routed to new owner: %v", k, err)
		}
	}
	if reg.Scope("store.m0").Counter("retries").Load() == 0 {
		t.Fatal("no retries counted despite writing to a dead owner")
	}
}

func TestProxyBackedWriter(t *testing.T) {
	reg := obs.NewRegistry()
	c := memcloud.New(testConfig(3, reg))
	defer c.Close()
	p := c.NewProxy()
	defer p.Close()

	w := store.New(p, store.Options{Metrics: reg})
	defer w.Close()
	const n = 120
	for k := uint64(0); k < n; k++ {
		w.PutAsync(k, val(16, byte(k)))
	}
	if err := w.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	s0 := c.Slave(0)
	for k := uint64(0); k < n; k++ {
		got, err := s0.Get(context.Background(), k)
		if err != nil || !bytes.Equal(got, val(16, byte(k))) {
			t.Fatalf("proxy-written key %d: %v", k, err)
		}
	}
	// A proxy owns no trunks: everything must have gone over the wire.
	scope := reg.Scope(fmt.Sprintf("store.m%d", p.ID()))
	if scope.Counter("local_batches").Load() != 0 {
		t.Fatal("proxy-backed writer claimed local batches")
	}
	if scope.Counter("batches").Load() == 0 {
		t.Fatal("proxy-backed writer shipped no batches")
	}
}

func TestWriterBatchesAmortizeWAL(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig(2, reg)
	cfg.BufferedLogging = true
	c := memcloud.New(cfg)
	defer c.Close()
	s0 := c.Slave(0)

	w := store.New(s0, store.Options{Metrics: reg})
	defer w.Close()
	const n = 500
	for k := uint64(0); k < n; k++ {
		w.PutAsync(k, val(16, byte(k)))
	}
	if err := w.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var groups, appended int64
	for _, v := range reg.Snapshot() {
		switch {
		case v.Kind == "counter" && hasSuffix(v.Name, ".group_commits"):
			groups += v.Int
		case v.Kind == "counter" && hasSuffix(v.Name, ".bytes_appended"):
			appended += v.Int
		}
	}
	if groups == 0 {
		t.Fatal("no WAL group commits recorded")
	}
	if groups >= n {
		t.Fatalf("WAL group commit amortized nothing: %d appends for %d writes", groups, n)
	}
	if appended == 0 {
		t.Fatal("wal.bytes_appended not counted")
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
