// Package store is the asynchronous batched cell-write pipeline: the
// mirror image of the read pipeline in internal/memcloud/fetch, applied
// to the bulk-load and update direction the paper's §7 evaluation leans
// on (billion-node graphs are ingested into the memory cloud, not read
// out of it). A write-heavy phase is network-bound for the same reason a
// computation's read phase is — many small exchanges, not much data — and
// the remedy is the same bulk-exchange discipline GraphLab and the PBGL
// baseline use for their update phases: (a) issue writes asynchronously,
// (b) batch them per destination machine so one ProtoMultiPut frame
// carries N ops, and (c) keep a bounded pipeline of batches in flight per
// machine.
//
// A Writer fronts a memcloud endpoint (slave or proxy). PutAsync/AddAsync
// return a Future immediately; writes to the same key order through a
// per-key successor chain (at most one op per key is queued or in flight
// at any moment), and a Put landing on a still-queued Put coalesces
// last-write-wins onto the same future. Queued ops are grouped by owner
// machine and shipped as ProtoMultiPut batches when a queue reaches its
// adaptive target size (the same 8→512 growth/shrink rule as fetch), when
// the oldest queued op has waited MaxDelay, or when Flush is called.
// Batches whose destination is the local slave skip the wire and apply
// through LocalMultiPut — keeping the batching wins (one trunk-mutex
// acquisition and one WAL group record per trunk per batch) for the
// owner-partitioned bulk loads graph.Builder performs.
//
// Failure contract: every Future resolves, with nil or an error — under
// message drops, duplicates, delays, and machine failures. An op answered
// MultiPutWrongOwner, or stranded by a transport error, is re-routed
// through the §6.2 protocol (report failure, refresh the addressing
// table, retry against the new owner) a bounded number of times; the
// bound exhausts into the error. A transport failure leaves application
// ambiguous (the frame may have been applied before the ack was lost), so
// retried ops are marked: a re-sent Put is idempotent, and a re-sent Add
// answered MultiPutExists after an ambiguous failure resolves nil — the
// cell exists because our own first attempt created it.
package store

import (
	"context"
	"errors"
	"time"

	"sync"
	"sync/atomic"

	"trinity/internal/buf"
	"trinity/internal/memcloud"
	"trinity/internal/msg"
	"trinity/internal/obs"
)

// ErrClosed resolves futures that were still queued when the writer was
// closed.
var ErrClosed = errors.New("store: writer closed")

// ErrRejected resolves futures whose write the owner refused for a
// reason re-routing cannot fix (trunk out of memory, reserved key).
var ErrRejected = errors.New("store: write rejected by owner")

// Client is the slice of a memcloud endpoint the pipeline needs. Both
// *memcloud.Slave and *memcloud.Proxy satisfy it.
type Client interface {
	ID() msg.MachineID
	Node() *msg.Node
	// Owner returns the machine currently believed to host the key.
	Owner(key uint64) msg.MachineID
	// LocalMultiPut applies a batch to local trunks; ok=false means the
	// endpoint owns no data (a proxy) and the batch must go on the wire.
	LocalMultiPut(items []memcloud.MultiPutItem) (statuses []byte, ok bool)
	// RefreshTable re-reads the addressing table (§6.2 step 2).
	RefreshTable(ctx context.Context)
	// ReportFailure tells the leader machine m is unreachable (§6.2
	// step 1).
	ReportFailure(ctx context.Context, m msg.MachineID) error
}

// Options tune the pipeline. Zero values select the defaults, which
// mirror the fetch pipeline's.
type Options struct {
	// MaxBatch caps ops per wire frame (default 512).
	MaxBatch int
	// MinBatch floors the adaptive target (default 8).
	MinBatch int
	// MaxDelay bounds how long a queued op may wait before a timer flush
	// ships it regardless of batch size (default 2ms). Synchronous
	// callers should Flush (or Drain) before blocking rather than lean on
	// this timer.
	MaxDelay time.Duration
	// Window bounds concurrent in-flight batches per destination machine
	// (default 4).
	Window int
	// Metrics selects the registry (default obs.Default()). Metrics land
	// under scope "store.m<id>".
	Metrics *obs.Registry
}

func (o *Options) fill() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 512
	}
	if o.MinBatch <= 0 {
		o.MinBatch = 8
	}
	if o.MinBatch > o.MaxBatch {
		o.MinBatch = o.MaxBatch
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default()
	}
}

// Future is one pending cell write. Wait blocks until the pipeline
// resolves it: nil means the write was applied on (and acknowledged by)
// its owner. The completion channel is lazy, exactly as in fetch: a
// pipelined loader rarely blocks on individual futures, so the channel is
// only created when a caller actually waits.
type Future struct {
	resolvedFlag atomic.Bool
	mu           sync.Mutex
	done         chan struct{} // created on first blocking Wait/Done
	err          error
}

// Wait blocks until the future resolves or ctx fires. A cancelled Wait
// only unhooks this caller: the write stays in the pipeline and still
// lands (bounded by the msg call timeout), so a later read observes it.
func (f *Future) Wait(ctx context.Context) error {
	if f.resolvedFlag.Load() {
		return f.err
	}
	select {
	case <-f.doneChan():
		return f.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done exposes the completion channel for select-based callers.
func (f *Future) Done() <-chan struct{} { return f.doneChan() }

// closedChan serves every already-resolved future that never had a
// blocked waiter, so readiness polls cost no allocation.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func (f *Future) doneChan() chan struct{} {
	if f.resolvedFlag.Load() {
		return closedChan
	}
	f.mu.Lock()
	if f.done == nil {
		f.done = make(chan struct{})
		if f.resolvedFlag.Load() {
			close(f.done)
		}
	}
	ch := f.done
	f.mu.Unlock()
	return ch
}

func (f *Future) resolveFut(err error) {
	f.mu.Lock()
	f.err = err
	f.resolvedFlag.Store(true)
	if f.done != nil {
		close(f.done)
	}
	f.mu.Unlock()
}

func resolved(err error) *Future {
	f := &Future{err: err}
	f.resolvedFlag.Store(true)
	return f
}

// maxRetries bounds how many times one op may be re-routed through a
// refreshed addressing table, mirroring the memcloud client's §6.2 bound.
const maxRetries = 3

// entry is one write's place in the pipeline. The pending map holds the
// TAIL of each key's chain (the latest write); the head of the chain is
// the one queued or in flight, and next links successors that must wait
// for it — writes to one key are strictly ordered, so two concurrent
// multi-put frames can never race the same key.
type entry struct {
	op       byte // memcloud.MultiPutOpPut / MultiPutOpAdd
	key      uint64
	val      []byte
	attempts int  // re-routes consumed, capped at maxRetries
	shipped  bool // on the wire (or applying locally): no longer coalescible
	// ambiguous is set when a transport failure left it unknown whether
	// the op was applied: the re-sent Add then treats MultiPutExists as
	// success (our own first attempt created the cell).
	ambiguous bool
	next      *entry // successor write to the same key
	fut       Future
}

// entrySlabSize mirrors fetch: entries are carved from slabs so a
// steady-state write costs a fraction of an allocation.
const entrySlabSize = 256

// dest is the per-destination-machine batch queue.
type dest struct {
	queue    []*entry
	inflight int // batches on the wire (or applying locally)
	target   int // adaptive batch-size watermark
	mustShip int // queue-front ops promised to a Flush or timer
	timer    *time.Timer
}

// Writer is the asynchronous batched cell-write pipeline.
type Writer struct {
	c   Client
	opt Options

	mu          sync.Mutex
	pending     map[uint64]*entry // tail of each key's chain
	dests       map[msg.MachineID]*dest
	slab        []entry
	outstanding int           // unresolved entries across the pipeline
	idle        chan struct{} // closed when outstanding drops to 0; nil when nobody drains
	firstErr    error         // first non-nil resolution since the last Drain
	closed      bool

	batchSize    *obs.Histogram
	coalesceHits *obs.Counter
	localBatches *obs.Counter
	keysTotal    *obs.Counter
	batches      *obs.Counter
	savedRT      *obs.Counter
	retries      *obs.Counter
	errorsCtr    *obs.Counter
	inflight     *obs.Gauge
}

// New builds a writer over the endpoint.
func New(c Client, opt Options) *Writer {
	opt.fill()
	scope := opt.Metrics.Scope("store").Scope(machineScope(c.ID()))
	return &Writer{
		c:       c,
		opt:     opt,
		pending: make(map[uint64]*entry),
		dests:   make(map[msg.MachineID]*dest),

		batchSize:    scope.Histogram("batch_size"),
		coalesceHits: scope.Counter("coalesce_hits"),
		localBatches: scope.Counter("local_batches"),
		keysTotal:    scope.Counter("keys"),
		batches:      scope.Counter("batches"),
		savedRT:      scope.Counter("round_trips_saved"),
		retries:      scope.Counter("retries"),
		errorsCtr:    scope.Counter("errors"),
		inflight:     scope.Gauge("inflight"),
	}
}

func machineScope(id msg.MachineID) string {
	if id == 0 {
		return "m0"
	}
	var buf [24]byte
	i := len(buf)
	for n := uint64(id); n > 0; n /= 10 {
		i--
		buf[i] = byte('0' + n%10)
	}
	return "m" + string(buf[i:])
}

// PutAsync schedules an upsert and returns its future immediately. val is
// aliased, not copied: it must stay immutable until the future resolves.
func (w *Writer) PutAsync(key uint64, val []byte) *Future {
	return w.write(memcloud.MultiPutOpPut, key, val)
}

// AddAsync schedules an insert that resolves memcloud.ErrExists if the
// cell is already present. val is aliased; see PutAsync.
func (w *Writer) AddAsync(key uint64, val []byte) *Future {
	return w.write(memcloud.MultiPutOpAdd, key, val)
}

func (w *Writer) write(op byte, key uint64, val []byte) *Future {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return resolved(ErrClosed)
	}
	if tail := w.pending[key]; tail != nil {
		// Last-write-wins coalescing: a Put landing on a still-queued Put
		// replaces its payload in place and rides its future — one wire
		// slot, one resolution, final value wins. Anything involving an
		// Add (or an op already shipped) chains instead: Add's outcome
		// depends on what the predecessor did, so it must observe it.
		if op == memcloud.MultiPutOpPut && tail.op == memcloud.MultiPutOpPut && !tail.shipped {
			tail.val = val
			w.coalesceHits.Add(1)
			w.savedRT.Add(1)
			return &tail.fut
		}
		e := w.newEntryLocked(op, key, val)
		tail.next = e
		w.pending[key] = e
		return &e.fut
	}
	e := w.newEntryLocked(op, key, val)
	w.pending[key] = e
	w.enqueueLocked(e)
	return &e.fut
}

// newEntryLocked carves one entry out of the slab, refilling it when
// exhausted, and counts it outstanding.
func (w *Writer) newEntryLocked(op byte, key uint64, val []byte) *entry {
	if len(w.slab) == 0 {
		w.slab = make([]entry, entrySlabSize)
	}
	e := &w.slab[0]
	w.slab = w.slab[1:]
	e.op = op
	e.key = key
	e.val = val
	w.outstanding++
	return e
}

// Flush ships every queued op without waiting for size or age
// watermarks. It does not wait for acknowledgements; use Drain for that.
func (w *Writer) Flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for m, d := range w.dests {
		d.mustShip = len(d.queue)
		w.pumpLocked(m, d)
	}
}

// Drain flushes the pipeline and blocks until every write issued so far
// has resolved (or ctx fires). It returns the first error any of those
// writes resolved with — the bulk loader's one-line completion check.
// Chained successors issued before Drain count as outstanding, so a
// drained writer has truly quiesced.
func (w *Writer) Drain(ctx context.Context) error {
	w.mu.Lock()
	for m, d := range w.dests {
		d.mustShip = len(d.queue)
		w.pumpLocked(m, d)
	}
	if w.outstanding == 0 {
		err := w.firstErr
		w.firstErr = nil
		w.mu.Unlock()
		return err
	}
	if w.idle == nil {
		w.idle = make(chan struct{})
	}
	idle := w.idle
	w.mu.Unlock()
	select {
	case <-idle:
	case <-ctx.Done():
		return ctx.Err()
	}
	w.mu.Lock()
	err := w.firstErr
	w.firstErr = nil
	w.mu.Unlock()
	return err
}

// Close resolves every queued future (and its chained successors) with
// ErrClosed and stops the pipeline. Batches already on the wire resolve
// when their call returns.
func (w *Writer) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	for _, d := range w.dests {
		if d.timer != nil {
			d.timer.Stop()
			d.timer = nil
		}
		for _, e := range d.queue {
			w.resolveLocked(e, ErrClosed)
		}
		d.queue = nil
	}
}

// enqueueLocked routes the entry to its owner's queue and pumps. While a
// Drain is waiting (w.idle non-nil), every enqueue inherits the flush
// promise: chained successors and re-routed retries surface mid-drain and
// must ship immediately rather than wait out batch formation, or the
// drain would stall on the age timer.
func (w *Writer) enqueueLocked(e *entry) {
	owner := w.c.Owner(e.key)
	d := w.dests[owner]
	if d == nil {
		d = &dest{target: w.opt.MinBatch}
		w.dests[owner] = d
	}
	d.queue = append(d.queue, e)
	if w.idle != nil {
		d.mustShip = len(d.queue)
	}
	w.pumpLocked(owner, d)
}

// pumpLocked ships as many batches as the watermarks allow and re-arms
// the age timer for anything that stays queued.
func (w *Writer) pumpLocked(m msg.MachineID, d *dest) {
	for len(d.queue) > 0 && d.inflight < w.opt.Window &&
		(len(d.queue) >= d.target || d.mustShip > 0) {
		w.shipLocked(m, d)
	}
	if len(d.queue) > 0 && d.timer == nil && !w.closed {
		d.timer = time.AfterFunc(w.opt.MaxDelay, func() { w.timerFlush(m) })
	}
}

// shipLocked puts one batch (up to target ops) on the wire — or hands it
// to the local apply goroutine when this machine is the destination.
func (w *Writer) shipLocked(m msg.MachineID, d *dest) {
	n := min(len(d.queue), d.target)
	batch := make([]*entry, n)
	copy(batch, d.queue[:n])
	rest := copy(d.queue, d.queue[n:])
	clear(d.queue[rest:])
	d.queue = d.queue[:rest]
	d.mustShip = max(0, d.mustShip-n)
	for _, e := range batch {
		e.shipped = true
	}
	d.inflight++
	w.inflight.Add(1)
	w.batches.Add(1)
	w.keysTotal.Add(int64(n))
	w.batchSize.Observe(int64(n))
	// A per-key Put client would have made n round trips (or n lock
	// handshakes and WAL appends on the local path); this batch makes one.
	w.savedRT.Add(int64(n - 1))
	go w.send(m, batch)
}

// timerFlush is the age watermark; shipping well under target on a timer
// means the workload is latency-bound, so the target shrinks.
func (w *Writer) timerFlush(m msg.MachineID) {
	w.mu.Lock()
	defer w.mu.Unlock()
	d := w.dests[m]
	if d == nil {
		return
	}
	d.timer = nil
	if len(d.queue) == 0 || w.closed {
		return
	}
	if len(d.queue) < d.target/2 {
		d.target = max(d.target/2, w.opt.MinBatch)
	}
	d.mustShip = len(d.queue)
	w.pumpLocked(m, d)
}

// send performs one exchange off the lock and resolves or requeues its
// batch. The destination being this very machine takes the local path:
// LocalMultiPut applies the batch trunk by trunk with the same amortized
// locking and WAL group commit the remote handler uses, no frame at all.
func (w *Writer) send(m msg.MachineID, batch []*entry) {
	items := make([]memcloud.MultiPutItem, len(batch))
	for i, e := range batch {
		items[i] = memcloud.MultiPutItem{Op: e.op, Key: e.key, Val: e.val}
	}
	if m == w.c.ID() {
		if statuses, ok := w.c.LocalMultiPut(items); ok {
			w.localBatches.Add(1)
			w.deliver(batch, statuses)
			w.completed(m)
			return
		}
		// An endpoint that owns no data (a proxy) routed a key to itself:
		// treat as a routing failure and re-route through a refresh.
		w.transportFailed(m, batch, memcloud.ErrWrongOwner, false)
		w.completed(m)
		return
	}
	req := buf.Get(memcloud.MultiPutReqSize(items))
	req.SetLen(0)
	req = buf.Wrap(memcloud.AppendMultiPutReq(req.Bytes(), items))
	// Background, not a caller's ctx: one frame aggregates writes from
	// many callers with different budgets. The msg CallTimeout bounds it.
	lease, resp, err := w.c.Node().CallLease(context.Background(), m, memcloud.ProtoMultiPut, req.Bytes())
	req.Release()
	switch {
	case err != nil:
		// The frame may have been applied before the ack was lost:
		// mark the retry ambiguous so Add dedups against itself.
		w.transportFailed(m, batch, err, true)
	default:
		statuses, derr := memcloud.DecodeMultiPutResp(resp, len(batch))
		if derr != nil {
			w.errorsCtr.Add(1)
			w.failBatch(batch, derr)
		} else {
			w.deliver(batch, statuses)
		}
		lease.Release()
	}
	w.completed(m)
}

// deliver resolves each entry from its per-key status; wrong-owner keys
// get re-routed through a refreshed table, up to maxRetries times.
func (w *Writer) deliver(batch []*entry, statuses []byte) {
	var moved []*entry
	w.mu.Lock()
	for i, e := range batch {
		switch statuses[i] {
		case memcloud.MultiPutOK:
			w.resolveLocked(e, nil)
		case memcloud.MultiPutExists:
			if e.ambiguous {
				// Our own earlier attempt applied before its ack was
				// lost; the insert happened exactly once.
				w.resolveLocked(e, nil)
			} else {
				w.resolveLocked(e, memcloud.ErrExists)
			}
		case memcloud.MultiPutErr:
			w.resolveLocked(e, ErrRejected)
		default: // MultiPutWrongOwner
			if e.attempts >= maxRetries {
				w.resolveLocked(e, memcloud.ErrWrongOwner)
			} else {
				moved = append(moved, e)
			}
		}
	}
	w.mu.Unlock()
	if len(moved) > 0 {
		w.requeue(moved)
	}
}

// transportFailed handles a batch whose exchange never got an answer:
// report the machine, refresh the table, and give each op its bounded
// retries. ambiguous marks whether the batch may have been applied.
func (w *Writer) transportFailed(m msg.MachineID, batch []*entry, err error, ambiguous bool) {
	w.errorsCtr.Add(1)
	if errors.Is(err, msg.ErrUnreachable) || errors.Is(err, msg.ErrTimeout) {
		_ = w.c.ReportFailure(context.Background(), m)
	}
	var retry []*entry
	w.mu.Lock()
	for _, e := range batch {
		if ambiguous {
			e.ambiguous = true
		}
		if e.attempts >= maxRetries {
			w.resolveLocked(e, err)
		} else {
			retry = append(retry, e)
		}
	}
	w.mu.Unlock()
	if len(retry) > 0 {
		w.requeue(retry)
	}
}

// requeue re-routes entries after a failure: refresh the addressing
// table once for the whole group, then re-batch each op toward the new
// owner (which may be this machine, taking the local path on the next
// ship). Runs in a send goroutine; the brief settling pause for repeat
// offenders blocks no caller.
func (w *Writer) requeue(entries []*entry) {
	for _, e := range entries {
		if e.attempts > 1 {
			time.Sleep(time.Millisecond)
			break
		}
	}
	w.c.RefreshTable(context.Background())
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, e := range entries {
		e.attempts++
		w.retries.Add(1)
		if w.closed {
			w.resolveLocked(e, ErrClosed)
			continue
		}
		w.enqueueLocked(e)
	}
}

// completed retires one in-flight batch and adapts: a backlog at
// completion time means the pipeline is throughput-bound, so the target
// grows to amortize more ops per frame.
func (w *Writer) completed(m msg.MachineID) {
	w.mu.Lock()
	defer w.mu.Unlock()
	d := w.dests[m]
	if d == nil {
		return
	}
	d.inflight--
	w.inflight.Add(-1)
	if len(d.queue) >= d.target {
		d.target = min(d.target*2, w.opt.MaxBatch)
	}
	w.pumpLocked(m, d)
}

func (w *Writer) failBatch(batch []*entry, err error) {
	w.mu.Lock()
	for _, e := range batch {
		w.resolveLocked(e, err)
	}
	w.mu.Unlock()
}

// resolveLocked completes a future and advances its key's chain: the
// successor (if any) becomes eligible to ship, preserving per-key write
// order; otherwise the pending-map tail is cleared so the next write to
// the key starts a fresh chain. Non-nil resolutions feed Drain's sticky
// first-error and the idle latch fires when the pipeline quiesces.
func (w *Writer) resolveLocked(e *entry, err error) {
	if err != nil && w.firstErr == nil {
		w.firstErr = err
	}
	if next := e.next; next != nil {
		e.next = nil
		if w.closed {
			e.fut.resolveFut(err)
			w.retireLocked()
			w.resolveLocked(next, ErrClosed)
			return
		}
		e.fut.resolveFut(err)
		w.retireLocked()
		w.enqueueLocked(next)
		return
	}
	if w.pending[e.key] == e {
		delete(w.pending, e.key)
	}
	e.fut.resolveFut(err)
	w.retireLocked()
}

// retireLocked counts one entry resolved and releases Drain waiters when
// the pipeline goes idle.
func (w *Writer) retireLocked() {
	w.outstanding--
	if w.outstanding == 0 && w.idle != nil {
		close(w.idle)
		w.idle = nil
	}
}
