package memcloud

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"trinity/internal/hash"
	"trinity/internal/msg"
)

func testConfig(machines int) Config {
	return Config{
		Machines: machines,
		Msg: msg.Options{
			FlushInterval: time.Millisecond,
			CallTimeout:   time.Second,
		},
	}
}

func newCloud(t *testing.T, machines int) *Cloud {
	t.Helper()
	c := New(testConfig(machines))
	t.Cleanup(c.Close)
	return c
}

func val(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestPutGetSingleMachine(t *testing.T) {
	c := newCloud(t, 1)
	s := c.Slave(0)
	if err := s.Put(context.Background(), 1, val(32, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(32, 1)) {
		t.Fatal("round trip mismatch")
	}
}

func TestPutGetAcrossMachines(t *testing.T) {
	c := newCloud(t, 4)
	// Write via slave 0, read via every other slave; keys spread over all
	// machines by the trunk hash.
	s0 := c.Slave(0)
	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := s0.Put(context.Background(), i, val(24, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < 4; m++ {
		s := c.Slave(m)
		for i := uint64(0); i < n; i += 17 {
			got, err := s.Get(context.Background(), i)
			if err != nil {
				t.Fatalf("machine %d key %d: %v", m, i, err)
			}
			if !bytes.Equal(got, val(24, byte(i))) {
				t.Fatalf("machine %d key %d: corrupt", m, i)
			}
		}
	}
	// Both local and remote paths must have been exercised.
	st := c.Stats()
	if st.LocalOps == 0 || st.RemoteOps == 0 {
		t.Fatalf("ops not split across paths: %+v", st)
	}
}

func TestKeysSpreadAcrossMachines(t *testing.T) {
	c := newCloud(t, 4)
	s := c.Slave(0)
	counts := map[msg.MachineID]int{}
	for i := uint64(0); i < 1000; i++ {
		counts[s.Owner(i)]++
	}
	for m := msg.MachineID(0); m < 4; m++ {
		if counts[m] < 100 {
			t.Fatalf("machine %d owns only %d/1000 keys", m, counts[m])
		}
	}
}

func TestGetMissing(t *testing.T) {
	c := newCloud(t, 2)
	for i := 0; i < 2; i++ {
		if _, err := c.Slave(i).Get(context.Background(), 12345); !errors.Is(err, ErrNotFound) {
			t.Fatalf("slave %d: Get missing = %v, want ErrNotFound", i, err)
		}
	}
}

func TestAddDuplicate(t *testing.T) {
	c := newCloud(t, 2)
	s := c.Slave(0)
	// Pick one local and one remote key.
	var localKey, remoteKey uint64
	for k := uint64(0); k < 100; k++ {
		if s.Owner(k) == s.ID() {
			localKey = k
		} else {
			remoteKey = k
		}
	}
	for _, k := range []uint64{localKey, remoteKey} {
		if err := s.Add(context.Background(), k, val(8, 1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(context.Background(), k, val(8, 2)); !errors.Is(err, ErrExists) {
			t.Fatalf("key %d: duplicate Add = %v, want ErrExists", k, err)
		}
	}
}

func TestRemove(t *testing.T) {
	c := newCloud(t, 3)
	s := c.Slave(0)
	for i := uint64(0); i < 50; i++ {
		s.Put(context.Background(), i, val(16, byte(i)))
	}
	for i := uint64(0); i < 50; i += 2 {
		if err := s.Remove(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 50; i++ {
		_, err := s.Get(context.Background(), i)
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("key %d should be gone: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("key %d lost: %v", i, err)
		}
	}
	if err := s.Remove(context.Background(), 999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove missing = %v", err)
	}
}

func TestAppendAcrossMachines(t *testing.T) {
	c := newCloud(t, 3)
	s := c.Slave(0)
	for i := uint64(0); i < 30; i++ {
		if err := s.Put(context.Background(), i, val(8, byte(i))); err != nil {
			t.Fatal(err)
		}
		want := val(8, byte(i))
		for j := 0; j < 5; j++ {
			extra := val(8, byte(j+100))
			if err := s.Append(context.Background(), i, extra); err != nil {
				t.Fatal(err)
			}
			want = append(want, extra...)
		}
		got, err := s.Get(context.Background(), i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("key %d append chain corrupt: %v", i, err)
		}
	}
}

func TestContains(t *testing.T) {
	c := newCloud(t, 2)
	s := c.Slave(0)
	s.Put(context.Background(), 7, val(4, 1))
	for i := 0; i < 2; i++ {
		found, err := c.Slave(i).Contains(context.Background(), 7)
		if err != nil || !found {
			t.Fatalf("slave %d: Contains(7) = %v, %v", i, found, err)
		}
		found, err = c.Slave(i).Contains(context.Background(), 8)
		if err != nil || found {
			t.Fatalf("slave %d: Contains(8) = %v, %v", i, found, err)
		}
	}
}

func TestViewLocalOnly(t *testing.T) {
	c := newCloud(t, 2)
	s := c.Slave(0)
	var localKey, remoteKey uint64
	for k := uint64(0); k < 100; k++ {
		if s.Owner(k) == s.ID() {
			localKey = k
		} else {
			remoteKey = k
		}
	}
	s.Put(context.Background(), localKey, val(8, 1))
	s.Put(context.Background(), remoteKey, val(8, 2))
	err := s.View(localKey, func(p []byte) error {
		p[0] = 0xAA
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(context.Background(), localKey)
	if got[0] != 0xAA {
		t.Fatal("local view write lost")
	}
	if err := s.View(remoteKey, func([]byte) error { return nil }); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("remote View = %v, want ErrWrongOwner", err)
	}
}

func TestLockGuard(t *testing.T) {
	c := newCloud(t, 1)
	s := c.Slave(0)
	s.Put(context.Background(), 5, val(8, 0))
	g, err := s.Lock(5)
	if err != nil {
		t.Fatal(err)
	}
	g.Bytes()[0] = 9
	g.Unlock()
	got, _ := s.Get(context.Background(), 5)
	if got[0] != 9 {
		t.Fatal("guard write lost")
	}
}

func TestMachineFailureRecovery(t *testing.T) {
	c := newCloud(t, 4)
	s0 := c.Slave(0)
	const n = 300
	for i := uint64(0); i < n; i++ {
		if err := s0.Put(context.Background(), i, val(20, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Persist everything, then crash a non-leader machine.
	if err := c.Backup(); err != nil {
		t.Fatal(err)
	}
	victim := msg.MachineID(3)
	c.KillMachine(victim)

	// Every key must still be readable: keys owned by the victim trigger
	// the failure-report protocol, table reassignment, and TFS reload.
	for i := uint64(0); i < n; i++ {
		got, err := s0.Get(context.Background(), i)
		if err != nil {
			t.Fatalf("key %d after crash: %v", i, err)
		}
		if !bytes.Equal(got, val(20, byte(i))) {
			t.Fatalf("key %d corrupted after recovery", i)
		}
	}
	if st := c.Stats(); st.Recoveries == 0 {
		t.Fatal("no trunks were recovered")
	}
}

func TestWritesAfterRecovery(t *testing.T) {
	c := newCloud(t, 3)
	s0 := c.Slave(0)
	for i := uint64(0); i < 100; i++ {
		s0.Put(context.Background(), i, val(10, byte(i)))
	}
	c.Backup()
	c.KillMachine(2)
	// New writes to keys previously owned by the dead machine must land
	// on the new owners.
	for i := uint64(100); i < 200; i++ {
		if err := s0.Put(context.Background(), i, val(10, byte(i))); err != nil {
			t.Fatalf("post-crash write %d: %v", i, err)
		}
	}
	for i := uint64(100); i < 200; i++ {
		got, err := s0.Get(context.Background(), i)
		if err != nil || !bytes.Equal(got, val(10, byte(i))) {
			t.Fatalf("post-crash read %d: %v", i, err)
		}
	}
}

func TestBufferedLoggingRecoversUnbackedWrites(t *testing.T) {
	cfg := testConfig(3)
	cfg.BufferedLogging = true
	c := New(cfg)
	defer c.Close()
	s0 := c.Slave(0)
	for i := uint64(0); i < 60; i++ {
		if err := s0.Put(context.Background(), i, val(12, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// NO backup: writes live only in memory plus the TFS log.
	c.KillMachine(2)
	for i := uint64(0); i < 60; i++ {
		got, err := s0.Get(context.Background(), i)
		if err != nil {
			t.Fatalf("key %d lost without backup: %v (buffered logging broken)", i, err)
		}
		if !bytes.Equal(got, val(12, byte(i))) {
			t.Fatalf("key %d corrupted", i)
		}
	}
}

func TestWithoutLoggingUnbackedWritesAreLost(t *testing.T) {
	// Control for the test above: without buffered logging and without a
	// backup, the dead machine's cells are gone. This documents the
	// durability contract rather than a bug.
	c := newCloud(t, 3)
	s0 := c.Slave(0)
	var victimKeys []uint64
	for i := uint64(0); i < 60; i++ {
		s0.Put(context.Background(), i, val(12, byte(i)))
		if s0.Owner(i) == 2 {
			victimKeys = append(victimKeys, i)
		}
	}
	if len(victimKeys) == 0 {
		t.Skip("no keys landed on the victim")
	}
	c.KillMachine(2)
	lost := 0
	for _, k := range victimKeys {
		if _, err := s0.Get(context.Background(), k); errors.Is(err, ErrNotFound) {
			lost++
		}
	}
	if lost != len(victimKeys) {
		t.Fatalf("%d/%d unbacked cells survived, expected all lost", len(victimKeys)-lost, len(victimKeys))
	}
}

func TestDefragDaemonRunsInBackground(t *testing.T) {
	cfg := testConfig(2)
	cfg.DefragInterval = 2 * time.Millisecond
	c := New(cfg)
	defer c.Close()
	s := c.Slave(0)
	// Create and delete cells so gaps accumulate, then wait for the
	// daemon to reclaim them.
	for i := uint64(0); i < 500; i++ {
		if err := s.Put(context.Background(), i, val(64, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i += 2 {
		s.Remove(context.Background(), i)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		gaps := int64(0)
		for _, sl := range []*Slave{c.Slave(0), c.Slave(1)} {
			sl.mu.RLock()
			for _, tr := range sl.trunks {
				gaps += tr.Stats().GapBytes
			}
			sl.mu.RUnlock()
		}
		if gaps == 0 {
			// Survivors intact after daemon compaction.
			for i := uint64(1); i < 500; i += 2 {
				got, err := s.Get(context.Background(), i)
				if err != nil || !bytes.Equal(got, val(64, byte(i))) {
					t.Fatalf("cell %d corrupted by daemon: %v", i, err)
				}
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("defragmentation daemon never reclaimed the gaps")
}

func TestAddMachineJoinsAndServes(t *testing.T) {
	c := newCloud(t, 3)
	s0 := c.Slave(0)
	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := s0.Put(context.Background(), i, val(16, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	joiner, err := c.AddMachine()
	if err != nil {
		t.Fatal(err)
	}
	// The joiner owns a fair share of trunks.
	owned := joiner.Member().Table().TrunksOf(joiner.ID())
	if len(owned) == 0 {
		t.Fatal("joiner owns no trunks")
	}
	// All data is still readable — from old machines and from the joiner.
	for i := uint64(0); i < n; i++ {
		for _, via := range []*Slave{s0, joiner} {
			got, err := via.Get(context.Background(), i)
			if err != nil {
				t.Fatalf("key %d via machine %d after join: %v", i, via.ID(), err)
			}
			if !bytes.Equal(got, val(16, byte(i))) {
				t.Fatalf("key %d corrupted after join", i)
			}
		}
	}
	// New writes land on the joiner for its trunks.
	wrote := 0
	for i := uint64(n); i < n+200; i++ {
		if err := s0.Put(context.Background(), i, val(8, byte(i))); err != nil {
			t.Fatal(err)
		}
		if s0.Owner(i) == joiner.ID() {
			wrote++
		}
	}
	if wrote == 0 {
		t.Fatal("no new keys map to the joiner")
	}
	if len(joiner.LocalKeys()) == 0 {
		t.Fatal("joiner stores nothing")
	}
}

func TestLocalKeysAndForEach(t *testing.T) {
	c := newCloud(t, 3)
	s0 := c.Slave(0)
	const n = 120
	for i := uint64(0); i < n; i++ {
		s0.Put(context.Background(), i, val(8, byte(i)))
	}
	total := 0
	seen := map[uint64]bool{}
	for m := 0; m < 3; m++ {
		keys := c.Slave(m).LocalKeys()
		total += len(keys)
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("key %d stored on two machines", k)
			}
			seen[k] = true
		}
	}
	if total != n {
		t.Fatalf("LocalKeys total = %d, want %d", total, n)
	}
	count := 0
	c.Slave(1).ForEachLocal(func(k uint64, p []byte) bool {
		if p[0] != byte(k) {
			t.Errorf("key %d corrupt in ForEachLocal", k)
		}
		count++
		return true
	})
	if count != len(c.Slave(1).LocalKeys()) {
		t.Fatalf("ForEachLocal visited %d, want %d", count, len(c.Slave(1).LocalKeys()))
	}
	// Early stop.
	count = 0
	c.Slave(0).ForEachLocal(func(uint64, []byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("ForEachLocal early stop visited %d", count)
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newCloud(t, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := c.Slave(w % 4)
			rng := hash.NewRNG(uint64(w))
			base := uint64(w) << 20
			for i := 0; i < 200; i++ {
				key := base + uint64(rng.Intn(50))
				switch rng.Intn(3) {
				case 0:
					if err := s.Put(context.Background(), key, val(16, byte(key))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.Get(context.Background(), key); err != nil && !errors.Is(err, ErrNotFound) {
						t.Error(err)
						return
					}
				case 2:
					if err := s.Remove(context.Background(), key); err != nil && !errors.Is(err, ErrNotFound) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCloudModelProperty(t *testing.T) {
	// Property: a multi-machine cloud behaves like one map[uint64][]byte
	// regardless of which slave serves each operation.
	c := newCloud(t, 3)
	f := func(seed uint64) bool {
		model := map[uint64][]byte{}
		rng := hash.NewRNG(seed)
		base := seed << 24
		for i := 0; i < 150; i++ {
			s := c.Slave(rng.Intn(3))
			key := base + uint64(rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				v := val(rng.Intn(64), byte(rng.Next()))
				if s.Put(context.Background(), key, v) != nil {
					return false
				}
				model[key] = v
			case 1:
				got, err := s.Get(context.Background(), key)
				want, ok := model[key]
				if ok != (err == nil) {
					return false
				}
				if ok && !bytes.Equal(got, want) {
					return false
				}
			case 2:
				err := s.Remove(context.Background(), key)
				if _, ok := model[key]; ok != (err == nil) {
					return false
				}
				delete(model, key)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryUsageReflectsData(t *testing.T) {
	c := newCloud(t, 2)
	before := c.MemoryUsage()
	s := c.Slave(0)
	for i := uint64(0); i < 5000; i++ {
		s.Put(context.Background(), i, val(64, byte(i)))
	}
	after := c.MemoryUsage()
	if after <= before {
		t.Fatalf("memory usage did not grow: %d -> %d", before, after)
	}
}

func TestStatsRetriesOnStaleTable(t *testing.T) {
	c := newCloud(t, 4)
	s0 := c.Slave(0)
	for i := uint64(0); i < 100; i++ {
		s0.Put(context.Background(), i, val(8, byte(i)))
	}
	c.Backup()
	c.KillMachine(3)
	for i := uint64(0); i < 100; i++ {
		s0.Get(context.Background(), i)
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatal("expected retries through the failure protocol")
	}
}

func ExampleCloud() {
	cloud := New(Config{Machines: 2})
	defer cloud.Close()
	s := cloud.Slave(0)
	s.Put(context.Background(), 42, []byte("a cell in the memory cloud"))
	v, _ := s.Get(context.Background(), 42)
	fmt.Println(string(v))
	// Output: a cell in the memory cloud
}

func BenchmarkCloudPutLocal(b *testing.B) {
	c := New(testConfig(1))
	defer c.Close()
	s := c.Slave(0)
	v := val(64, 1)
	const keys = 50_000 // bounded so any b.N fits in the trunks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(context.Background(), uint64(i%keys), v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloudGetLocal(b *testing.B) {
	c := New(testConfig(1))
	defer c.Close()
	s := c.Slave(0)
	v := val(64, 1)
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		s.Put(context.Background(), i, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(context.Background(), uint64(i%n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloudGetDistributed(b *testing.B) {
	c := New(testConfig(4))
	defer c.Close()
	s := c.Slave(0)
	v := val(64, 1)
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		s.Put(context.Background(), i, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(context.Background(), uint64(i%n)); err != nil {
			b.Fatal(err)
		}
	}
}
