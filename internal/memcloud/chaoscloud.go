package memcloud

import "trinity/internal/msg"

// NewChaosCloud boots a memory cloud whose every machine sits behind one
// seeded fault-injecting chaos hub (msg.Chaos). Per-link policies — drops,
// delays, duplicates, one-way cuts, whole-machine isolation — are set on
// the returned hub, and a single seed reproduces the whole cluster's fault
// schedule. Tests use it to drive the §6.2 failure protocol (failure
// report, table refresh, retry) through real fault timings instead of
// hand-sequenced mocks.
func NewChaosCloud(cfg Config, seed int64) (*Cloud, *msg.Chaos) {
	ch := msg.NewChaos(seed)
	cfg.TransportWrap = ch.Wrap
	return New(cfg), ch
}
