package memcloud

import (
	"context"
	"sync"

	"trinity/internal/msg"
)

// Proxy is the middle tier of the paper's Figure 1: a Trinity component
// that "only handles messages but does not own any data", typically used
// as an information aggregator between clients and slaves. A proxy holds
// a messaging endpoint and a replica of the addressing table, so it can
// route cell operations to owners and fan requests out to every slave.
type Proxy struct {
	cloud *Cloud
	node  *msg.Node
	id    msg.MachineID
}

// NewProxy attaches a proxy to the cloud's network. Proxies get machine
// IDs above the slave range. The endpoint goes through c.endpoint so
// proxies sit behind the same TransportWrap (chaos injection) as slaves.
func (c *Cloud) NewProxy() *Proxy {
	id := msg.MachineID(len(c.slaves) + 1000)
	node := msg.NewNode(c.endpoint(id), c.cfg.Msg)
	return &Proxy{cloud: c, node: node, id: id}
}

// ID returns the proxy's machine id.
func (p *Proxy) ID() msg.MachineID { return p.id }

// Node exposes the proxy's messaging runtime (to register aggregation
// protocols of its own).
func (p *Proxy) Node() *msg.Node { return p.node }

// Close shuts the proxy down.
func (p *Proxy) Close() error { return p.node.Close() }

// Get fetches a cell by routing the request to its owner slave.
func (p *Proxy) Get(ctx context.Context, key uint64) ([]byte, error) {
	owner := p.ownerOf(key)
	resp, err := p.node.Call(ctx, owner, protoGetCell, encodeKey(key))
	return resp, remoteErr(err)
}

// Put stores a cell via its owner slave.
func (p *Proxy) Put(ctx context.Context, key uint64, val []byte) error {
	owner := p.ownerOf(key)
	_, err := p.node.Call(ctx, owner, protoPutCell, encodeKV(key, val))
	return remoteErr(err)
}

// ownerOf consults a slave's addressing-table replica (proxies piggyback
// on slave 0's view; a production proxy would keep its own member).
func (p *Proxy) ownerOf(key uint64) msg.MachineID {
	return p.cloud.slaves[0].Owner(key)
}

// Owner exposes the proxy's view of a key's owning machine, so the fetch
// pipeline can route batches through a proxy endpoint.
func (p *Proxy) Owner(key uint64) msg.MachineID { return p.ownerOf(key) }

// RefreshTable refreshes the addressing-table replica the proxy routes by.
func (p *Proxy) RefreshTable(ctx context.Context) { p.cloud.slaves[0].RefreshTable(ctx) }

// ReportFailure reports machine m as unreachable through the proxy's
// table source.
func (p *Proxy) ReportFailure(ctx context.Context, m msg.MachineID) error {
	return p.cloud.slaves[0].ReportFailure(ctx, m)
}

// LocalGet never serves a read locally: a proxy "only handles messages
// but does not own any data" (paper Figure 1), so every key is remote.
func (p *Proxy) LocalGet(key uint64) ([]byte, bool, error) { return nil, false, nil }

// LocalMultiPut never applies a batch locally for the same reason: the
// write pipeline must ship every batch over the wire when it fronts a
// proxy endpoint.
func (p *Proxy) LocalMultiPut(items []MultiPutItem) ([]byte, bool) { return nil, false }

// ScatterGather is the aggregator pattern the paper describes ("a proxy
// may serve as an information aggregator: it dispatches requests from
// clients to slaves and sends results back after aggregating the partial
// results"): it calls the protocol on every slave in parallel and hands
// the replies to the combiner in machine order.
func (p *Proxy) ScatterGather(ctx context.Context, proto msg.ProtocolID, request []byte, combine func(machine msg.MachineID, reply []byte) error) error {
	type result struct {
		machine msg.MachineID
		reply   []byte
		err     error
		ok      bool
	}
	replies := make([]result, len(p.cloud.slaves))
	var wg sync.WaitGroup
	for i, s := range p.cloud.slaves {
		if !s.alive.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, target msg.MachineID) {
			defer wg.Done()
			reply, err := p.node.Call(ctx, target, proto, request)
			replies[i] = result{machine: target, reply: reply, err: err, ok: true}
		}(i, s.ID())
	}
	wg.Wait()
	for _, r := range replies {
		if !r.ok {
			continue // dead slave skipped
		}
		if r.err != nil {
			return r.err
		}
		if err := combine(r.machine, r.reply); err != nil {
			return err
		}
	}
	return nil
}
