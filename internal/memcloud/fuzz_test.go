package memcloud

import (
	"bytes"
	"encoding/binary"
	"testing"

	"trinity/internal/trunk"
)

// FuzzDecodeMultiPutReq drives the ProtoMultiPut request decoder with
// attacker-controlled bytes: counts and value lengths may lie, op codes
// may be junk, items may be truncated mid-header or mid-value. The
// decoder must reject cleanly (error, never panic, never slice out of
// bounds), and everything it accepts must re-encode to the same bytes —
// acceptance means the frame really was a well-formed request.
func FuzzDecodeMultiPutReq(f *testing.F) {
	good := AppendMultiPutReq(nil, []MultiPutItem{
		{Op: MultiPutOpPut, Key: 1, Val: []byte("hello")},
		{Op: MultiPutOpAdd, Key: 1 << 60, Val: nil},
	})
	f.Add(good)
	f.Add(good[:3])           // short count header
	f.Add(good[:10])          // truncated item header
	f.Add(good[:len(good)-2]) // truncated value
	f.Add(append(good, 0xFF)) // trailing bytes
	overshoot := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(overshoot, 1<<30) // count lies
	f.Add(overshoot)
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := decodeMultiPutReq(data)
		if err != nil {
			return
		}
		// Round-trip: accepted input is canonical.
		re := AppendMultiPutReq(make([]byte, 0, MultiPutReqSize(items)), items)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted request does not round-trip: %x -> %x", data, re)
		}
	})
}

// FuzzDecodeMultiPutReply drives the reply decoder: the status slice a
// possibly-hostile owner sends back. Any accepted reply must have exactly
// the expected length and only known status codes — a malformed reply
// must error so the batch fails closed instead of mis-resolving futures.
func FuzzDecodeMultiPutReply(f *testing.F) {
	f.Add([]byte{MultiPutOK, MultiPutExists, MultiPutWrongOwner, MultiPutErr}, 4)
	f.Add([]byte{MultiPutOK}, 2) // short answer
	f.Add([]byte{0xEE}, 1)       // unknown status
	f.Add([]byte(nil), 0)
	f.Add([]byte(nil), 3)

	f.Fuzz(func(t *testing.T, data []byte, want int) {
		if want < 0 || want > 1<<16 {
			return
		}
		statuses, err := DecodeMultiPutResp(data, want)
		if err != nil {
			return
		}
		if len(statuses) != want {
			t.Fatalf("accepted reply of %d statuses, want %d", len(statuses), want)
		}
		for _, st := range statuses {
			if st > MultiPutErr {
				t.Fatalf("accepted unknown status %d", st)
			}
		}
	})
}

// FuzzReplayWAL drives WAL recovery with arbitrary log bytes — the exact
// surface a crash (truncation) or disk corruption (garbage) controls.
// Replay must never panic: a truncated tail stops silently, anything else
// malformed returns an error. Group records get seeded corpus entries so
// the framed-body path (strict sub-record parsing) is exercised from the
// first run.
func FuzzReplayWAL(f *testing.F) {
	single := func(op byte, key uint64, val []byte) []byte {
		rec := make([]byte, 13+len(val))
		rec[0] = op
		binary.LittleEndian.PutUint64(rec[1:], key)
		binary.LittleEndian.PutUint32(rec[9:], uint32(len(val)))
		copy(rec[13:], val)
		return rec
	}
	group := encodeGroupRecord([]trunk.BatchItem{
		{Key: 1, Val: []byte("abc")},
		{Key: 2, Val: []byte("defg")},
	}, nil)

	f.Add(single(opPut, 1, []byte("v")))
	f.Add(single(opRemove, 1, nil))
	f.Add(single(opAppend, 2, []byte("x")))
	f.Add(group)
	f.Add(group[:len(group)-2])                    // crash-truncated group
	f.Add(append(group, single(opPut, 3, nil)...)) // group then single
	f.Add(append(single(opPut, 3, nil), group...)) // single then group
	liar := append([]byte(nil), group...)
	binary.LittleEndian.PutUint32(liar[1:], 1<<30) // body length lies
	f.Add(liar)
	f.Add([]byte{opGroup})                                  // header cut mid-frame
	f.Add([]byte{0x7F, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // unknown op

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := trunk.New(trunk.Options{Capacity: 1 << 16, PageSize: 1 << 10})
		_ = replayLog(tr, data) // must not panic, whatever the bytes
	})
}
