package memcloud

import (
	"context"
	"fmt"
	"sort"
	"time"

	"trinity/internal/trunk"
)

// MultiOp primitives (paper §4.4): Trinity guarantees atomicity only for
// single-cell operations, but notes that "light-weight atomic operation
// primitives that span multiple cells, such as MultiOp primitives and
// mini-transaction primitives, [can be implemented] on top of the atomic
// cell operation primitives". This file does exactly that for cells that
// are co-located on one machine: all cells are spin-locked in globally
// consistent (sorted) order — so concurrent MultiOps cannot deadlock —
// and the callback sees and mutates every payload under the locks.

// MultiView runs fn with zero-copy views of several LOCAL cells, all
// pinned simultaneously. fn may mutate the payloads in place (sizes are
// fixed while pinned). Keys may repeat; each cell is locked once. All
// keys must be owned by this machine: cross-machine transactions are out
// of scope, exactly as in the paper.
// ctx is checked once before any lock is taken: the op itself is local,
// lock-ordered and bounded, so once the guards are held it runs to
// completion rather than risking a half-applied multi-cell mutation.
func (s *Slave) MultiView(ctx context.Context, keys []uint64, fn func(payloads [][]byte) error) error {
	defer s.observeSince(s.multiOpNs, time.Now())
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(keys) == 0 {
		return fn(nil)
	}
	// Sort and deduplicate to get the global locking order.
	order := append([]uint64(nil), keys...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	uniq := order[:1]
	for _, k := range order[1:] {
		if k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	// Validate ownership before taking any locks.
	for _, k := range uniq {
		if s.Owner(k) != s.id {
			return fmt.Errorf("%w: cell %#x in MultiView", ErrWrongOwner, k)
		}
	}
	guards := make(map[uint64]*trunk.Guard, len(uniq))
	release := func() {
		// Unlock in reverse order.
		for i := len(uniq) - 1; i >= 0; i-- {
			if g := guards[uniq[i]]; g != nil {
				g.Unlock()
			}
		}
	}
	for _, k := range uniq {
		g, err := s.Lock(k)
		if err != nil {
			release()
			return err
		}
		guards[k] = g
	}
	defer release()
	payloads := make([][]byte, len(keys))
	for i, k := range keys {
		payloads[i] = guards[k].Bytes()
	}
	s.localOps.Add(int64(len(uniq)))
	return fn(payloads)
}

// CompareAndSwapCell atomically replaces a LOCAL cell's payload with new
// if its current contents equal old. Sizes of old and new must match (a
// pinned cell cannot change size); use Put for resizing writes.
func (s *Slave) CompareAndSwapCell(ctx context.Context, key uint64, old, new []byte) (bool, error) {
	if len(old) != len(new) {
		return false, fmt.Errorf("memcloud: CompareAndSwapCell sizes differ (%d vs %d)", len(old), len(new))
	}
	swapped := false
	err := s.MultiView(ctx, []uint64{key}, func(payloads [][]byte) error {
		p := payloads[0]
		if len(p) != len(old) {
			return nil
		}
		for i := range p {
			if p[i] != old[i] {
				return nil
			}
		}
		copy(p, new)
		swapped = true
		return nil
	})
	return swapped, err
}
