package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trinity/internal/msg"
	"trinity/internal/obs"
	"trinity/internal/tfs"
)

// Protocol IDs reserved for the cluster layer. User protocols must stay
// below ProtoReservedBase.
const (
	ProtoReservedBase msg.ProtocolID = 0xFF00

	protoHeartbeat   = ProtoReservedBase + 1 // async: slave -> leader
	protoTableUpdate = ProtoReservedBase + 2 // async: leader -> all
	protoReportFail  = ProtoReservedBase + 3 // sync: any -> leader
	protoGetTable    = ProtoReservedBase + 4 // sync: any -> leader
	protoPing        = ProtoReservedBase + 5 // sync: leader -> suspect
)

// TFS paths used by the cluster layer.
const (
	leaderFlagFile = "cluster/leader"
	tableFile      = "cluster/addressing-table"
)

// Config configures a cluster member.
type Config struct {
	// HeartbeatInterval is how often slaves heartbeat the leader.
	// Zero means 50ms (scaled down from production seconds).
	HeartbeatInterval time.Duration
	// FailureTimeout is how long the leader waits without a heartbeat
	// before suspecting a machine. Zero means 4x the heartbeat interval.
	FailureTimeout time.Duration
	// Metrics is the registry the member publishes election, failover and
	// heartbeat metrics to, under "cluster.m<id>". Nil gives the member a
	// private registry.
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.FailureTimeout <= 0 {
		c.FailureTimeout = 4 * c.HeartbeatInterval
	}
}

// RecoveryHooks are callbacks the memory cloud installs so the cluster
// layer can drive data recovery without depending on the storage layer.
type RecoveryHooks struct {
	// AcquireTrunks is invoked on a machine when the addressing table
	// assigns it trunks it did not own before; the implementation reloads
	// the trunk contents from TFS.
	AcquireTrunks func(trunks []uint32)
	// ReleaseTrunks is invoked when trunks move away from this machine
	// (e.g. rebalancing toward a newly joined machine).
	ReleaseTrunks func(trunks []uint32)
}

// Member is one machine's view of the cluster. The same type serves as
// slave and (on at most one machine at a time) as leader.
type Member struct {
	id   msg.MachineID
	node *msg.Node
	fs   *tfs.FS
	cfg  Config

	table atomic.Pointer[Table]
	hooks RecoveryHooks

	mu        sync.Mutex
	leaderID  msg.MachineID
	isLeader  bool
	lastSeen  map[msg.MachineID]time.Time // leader-side heartbeat registry
	suspected map[msg.MachineID]bool
	stopCh    chan struct{}
	stopped   bool
	wg        sync.WaitGroup

	// Registry-backed stats; the Stats() accessor keeps the pre-obs
	// snapshot struct available.
	recoveries  *obs.Counter
	tableSyncs  *obs.Counter
	elections   *obs.Counter
	failReports *obs.Counter
	heartbeatNs *obs.Histogram
	pingRttNs   *obs.Histogram
	failoverNs  *obs.Histogram
}

// NewMember wires a cluster member onto a messaging node and a shared TFS.
// initial is the bootstrap table (identical on all machines); the member
// with the lowest ID in the table wins the initial leader election.
func NewMember(node *msg.Node, fs *tfs.FS, initial *Table, hooks RecoveryHooks, cfg Config) *Member {
	cfg.fill()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	scope := reg.Scope(fmt.Sprintf("cluster.m%d", node.ID()))
	m := &Member{
		id:        node.ID(),
		node:      node,
		fs:        fs,
		cfg:       cfg,
		hooks:     hooks,
		lastSeen:  make(map[msg.MachineID]time.Time),
		suspected: make(map[msg.MachineID]bool),
		stopCh:    make(chan struct{}),

		recoveries:  scope.Counter("recoveries"),
		tableSyncs:  scope.Counter("table_syncs"),
		elections:   scope.Counter("elections"),
		failReports: scope.Counter("failure_reports"),
		heartbeatNs: scope.Histogram("heartbeat_ns"),
		pingRttNs:   scope.Histogram("ping_rtt_ns"),
		failoverNs:  scope.Histogram("failover_ns"),
	}
	m.table.Store(initial)
	node.HandleAsync(protoHeartbeat, m.onHeartbeat)
	node.HandleAsync(protoTableUpdate, m.onTableUpdate)
	node.HandleSync(protoReportFail, m.onReportFailure)
	node.HandleSync(protoGetTable, m.onGetTable)
	node.HandleSync(protoPing, func(context.Context, msg.MachineID, []byte) ([]byte, error) { return []byte{1}, nil })
	return m
}

// Start begins heartbeating and, if this member can claim the leader flag,
// leader duties. Call Stop to shut down.
func (m *Member) Start() {
	m.tryBecomeLeader(nil)
	m.wg.Add(1)
	go m.heartbeatLoop()
}

// Stop halts background loops.
func (m *Member) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	close(m.stopCh)
	m.mu.Unlock()
	m.wg.Wait()
}

// Table returns the member's current replica of the addressing table.
func (m *Member) Table() *Table { return m.table.Load() }

// IsLeader reports whether this member currently holds leader duties.
func (m *Member) IsLeader() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.isLeader
}

// Leader returns the member's current belief about the leader's identity.
func (m *Member) Leader() msg.MachineID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leaderID
}

// Stats reports cluster activity counters for tests and dashboards.
type Stats struct {
	Recoveries     int64
	TableSyncs     int64
	Elections      int64
	FailureReports int64
}

// Stats returns a snapshot of the member's counters.
func (m *Member) Stats() Stats {
	return Stats{
		Recoveries:     m.recoveries.Load(),
		TableSyncs:     m.tableSyncs.Load(),
		Elections:      m.elections.Load(),
		FailureReports: m.failReports.Load(),
	}
}

// encodeID encodes a machine ID for the leader flag file.
func encodeID(id msg.MachineID) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(int32(id)))
	return b[:]
}

// tryBecomeLeader attempts to claim the TFS leader flag. old is the flag
// value we believe is current (nil at bootstrap). On success the member
// persists the primary table replica and assumes leader duties; on CAS
// failure it records the actual leader from the flag file.
func (m *Member) tryBecomeLeader(old []byte) {
	err := m.fs.CompareAndSwap(leaderFlagFile, old, encodeID(m.id))
	if err == nil {
		m.mu.Lock()
		m.isLeader = true
		m.leaderID = m.id
		// Seed the failure detector with every known machine so one that
		// dies before its first heartbeat is still noticed.
		now := time.Now()
		for _, id := range m.Table().Machines() {
			if id != m.id {
				if _, ok := m.lastSeen[id]; !ok {
					m.lastSeen[id] = now
				}
			}
		}
		m.mu.Unlock()
		m.elections.Inc()
		// Persist the primary replica before acting as leader (§6.2: "An
		// update to the primary table must be applied to the persistent
		// replica before committing").
		m.fs.WriteFile(tableFile, m.Table().Encode())
		return
	}
	if flag, rerr := m.fs.ReadFile(leaderFlagFile); rerr == nil && len(flag) == 4 {
		m.mu.Lock()
		m.leaderID = msg.MachineID(int32(binary.LittleEndian.Uint32(flag)))
		m.isLeader = m.leaderID == m.id
		m.mu.Unlock()
	}
}

func (m *Member) heartbeatLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-ticker.C:
			m.mu.Lock()
			leader := m.leaderID
			isLeader := m.isLeader
			m.mu.Unlock()
			if isLeader {
				m.checkHeartbeats()
				continue
			}
			start := time.Now()
			err := m.node.Send(leader, protoHeartbeat, nil)
			if err == nil {
				// The packer may swallow a dead destination until the
				// flush actually hits the transport.
				err = m.node.Flush()
			}
			m.heartbeatNs.Observe(int64(time.Since(start)))
			if err != nil {
				// Confirm before racing to replace the leader.
				if _, perr := m.ping(context.Background(), leader); perr != nil {
					m.tryBecomeLeader(encodeID(leader))
				}
			}
		}
	}
}

// onHeartbeat records a slave's heartbeat (leader side).
func (m *Member) onHeartbeat(from msg.MachineID, _ []byte) {
	m.mu.Lock()
	m.lastSeen[from] = time.Now()
	delete(m.suspected, from)
	m.mu.Unlock()
}

// checkHeartbeats is the leader's proactive failure detector.
func (m *Member) checkHeartbeats() {
	now := time.Now()
	var expired []msg.MachineID
	m.mu.Lock()
	for id, seen := range m.lastSeen {
		if now.Sub(seen) > m.cfg.FailureTimeout && !m.suspected[id] {
			m.suspected[id] = true
			expired = append(expired, id)
		}
	}
	m.mu.Unlock()
	for _, id := range expired {
		m.confirmAndRecover(context.Background(), id)
	}
}

// onReportFailure handles a slave's report that machine B is down
// (§6.2: "machine A will inform the leader machine of the failure of
// machine B"). The leader confirms by pinging the suspect itself.
func (m *Member) onReportFailure(ctx context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	if !m.IsLeader() {
		return nil, errors.New("cluster: not the leader")
	}
	if len(req) != 4 {
		return nil, errors.New("cluster: bad failure report")
	}
	m.failReports.Inc()
	suspect := msg.MachineID(int32(binary.LittleEndian.Uint32(req)))
	m.confirmAndRecover(ctx, suspect)
	return []byte{1}, nil
}

// ping round-trips a sync ping to the target, recording its RTT.
func (m *Member) ping(ctx context.Context, target msg.MachineID) ([]byte, error) {
	start := time.Now()
	resp, err := m.node.Call(ctx, target, protoPing, nil)
	if err == nil {
		m.pingRttNs.Observe(int64(time.Since(start)))
	}
	return resp, err
}

// confirmAndRecover pings the suspect and, if it is unreachable, runs the
// recovery protocol: reassign its trunks, persist the table, broadcast.
// The elapsed time from confirmed suspicion to the committed table is the
// paper's failover latency; it lands in cluster.m<id>.failover_ns.
func (m *Member) confirmAndRecover(ctx context.Context, suspect msg.MachineID) {
	if suspect == m.id {
		return
	}
	if _, err := m.ping(ctx, suspect); err == nil {
		return // false alarm
	}
	failStart := time.Now()
	m.mu.Lock()
	delete(m.lastSeen, suspect)
	m.mu.Unlock()

	old := m.Table()
	survivors := make([]msg.MachineID, 0, len(old.Machines()))
	for _, mm := range old.Machines() {
		if mm != suspect {
			survivors = append(survivors, mm)
		}
	}
	nt, err := old.Reassign(suspect, survivors)
	if err != nil {
		return
	}
	if len(Diff(old, nt, suspect)) == 0 && len(old.TrunksOf(suspect)) == 0 {
		return // nothing owned by the suspect
	}
	m.commitTable(nt)
	m.recoveries.Inc()
	m.failoverNs.Observe(int64(time.Since(failStart)))
}

// AnnounceJoin adds a new machine to the cluster (leader only): some
// trunks are relocated to it and the table is broadcast.
func (m *Member) AnnounceJoin(joined msg.MachineID) error {
	if !m.IsLeader() {
		return errors.New("cluster: only the leader admits machines")
	}
	nt, moved := m.Table().Rebalance(joined)
	if len(moved) == 0 {
		return nil
	}
	m.commitTable(nt)
	return nil
}

// commitTable persists a new table to TFS (primary replica first), applies
// it locally, and broadcasts it to every machine in the table.
func (m *Member) commitTable(nt *Table) {
	m.fs.WriteFile(tableFile, nt.Encode())
	m.applyTable(nt)
	payload := nt.Encode()
	for _, dst := range nt.Machines() {
		if dst == m.id {
			continue
		}
		// Best effort: "even if some slave machines cannot receive the
		// broadcast message ... a machine will always sync up with the
		// primary addressing table replica when it fails to load a data
		// item" (§6.2).
		m.node.Send(dst, protoTableUpdate, payload)
	}
	m.node.Flush()
}

// onTableUpdate installs a broadcast table (slave side).
func (m *Member) onTableUpdate(_ msg.MachineID, payload []byte) {
	nt, err := DecodeTable(payload)
	if err != nil {
		return
	}
	m.applyTable(nt)
}

// applyTable installs nt if it is newer than the current replica and fires
// the recovery hooks for trunks acquired or released by this machine.
func (m *Member) applyTable(nt *Table) {
	for {
		cur := m.table.Load()
		if cur != nil && cur.Version >= nt.Version {
			return
		}
		if m.table.CompareAndSwap(cur, nt) {
			acquired := Diff(cur, nt, m.id)
			released := released(cur, nt, m.id)
			if len(acquired) > 0 && m.hooks.AcquireTrunks != nil {
				m.hooks.AcquireTrunks(acquired)
			}
			if len(released) > 0 && m.hooks.ReleaseTrunks != nil {
				m.hooks.ReleaseTrunks(released)
			}
			return
		}
	}
}

// released returns trunks owned by machine m in old but not in new.
func released(old, new *Table, m msg.MachineID) []uint32 {
	if old == nil {
		return nil
	}
	var out []uint32
	for i := range old.Slots {
		if old.Slots[i] == m && new.Slots[i] != m {
			out = append(out, uint32(i))
		}
	}
	return out
}

// ReportFailure tells the leader that machine B looks dead. It is called
// by the memory cloud when a data access fails. The call is synchronous:
// when it returns nil, the leader has run recovery and the caller should
// refresh its table and retry.
func (m *Member) ReportFailure(ctx context.Context, b msg.MachineID) error {
	if m.IsLeader() {
		m.confirmAndRecover(ctx, b)
		return nil
	}
	leader := m.Leader()
	_, err := m.node.Call(ctx, leader, protoReportFail, encodeID(b))
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The leader itself is down; elect and retry once.
		m.tryBecomeLeader(encodeID(leader))
		if m.IsLeader() {
			m.confirmAndRecover(ctx, b)
			return nil
		}
		_, err = m.node.Call(ctx, m.Leader(), protoReportFail, encodeID(b))
	}
	return err
}

// RefreshTable syncs this member's replica with the primary addressing
// table. The persistent TFS copy is authoritative ("an update to the
// primary table must be applied to the persistent replica before
// committing"), so it is consulted first; if TFS is unreadable the leader
// is asked directly.
func (m *Member) RefreshTable(ctx context.Context) error {
	m.tableSyncs.Inc()
	if payload, err := m.fs.ReadFile(tableFile); err == nil {
		if nt, derr := DecodeTable(payload); derr == nil {
			m.applyTable(nt)
			return nil
		}
	}
	payload, err := m.node.Call(ctx, m.Leader(), protoGetTable, nil)
	if err != nil {
		return fmt.Errorf("cluster: refresh: %w", err)
	}
	nt, err := DecodeTable(payload)
	if err != nil {
		return err
	}
	m.applyTable(nt)
	return nil
}

// onGetTable serves the current table (leader side, but any member can
// answer from its replica).
func (m *Member) onGetTable(context.Context, msg.MachineID, []byte) ([]byte, error) {
	return m.Table().Encode(), nil
}
