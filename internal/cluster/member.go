package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trinity/internal/msg"
	"trinity/internal/obs"
	"trinity/internal/tfs"
)

// Protocol IDs reserved for the cluster layer. User protocols must stay
// below ProtoReservedBase.
const (
	ProtoReservedBase msg.ProtocolID = 0xFF00

	protoHeartbeat   = ProtoReservedBase + 1 // async: slave -> leader
	protoTableUpdate = ProtoReservedBase + 2 // async: leader -> all
	protoReportFail  = ProtoReservedBase + 3 // sync: any -> leader
	protoGetTable    = ProtoReservedBase + 4 // sync: any -> leader
	protoPing        = ProtoReservedBase + 5 // sync: leader -> suspect
)

// TFS paths used by the cluster layer.
const (
	leaderFlagFile = "cluster/leader"
	tableFile      = "cluster/addressing-table"
)

// leaderTombstone is the flag value a stepping-down leader leaves behind:
// a valid 4-byte encoding that names no machine, so any member may claim
// it with a CAS without having to prove the previous holder dead.
const leaderTombstone msg.MachineID = -1

// casCommitAttempts bounds the commit retry loop. Each retry means another
// writer won the predecessor race; with reconfiguration serialized behind
// the leader flag plus recMu this is contention between at most two
// leaders (one deposed), so a handful of rounds is already pathological.
const casCommitAttempts = 8

// Config configures a cluster member.
type Config struct {
	// HeartbeatInterval is how often slaves heartbeat the leader.
	// Zero means 50ms (scaled down from production seconds).
	HeartbeatInterval time.Duration
	// FailureTimeout is how long the leader waits without a heartbeat
	// before suspecting a machine. It also bounds each confirm ping and
	// the wait for a successor leader. Zero means 4x the heartbeat
	// interval.
	FailureTimeout time.Duration
	// Metrics is the registry the member publishes election, failover and
	// heartbeat metrics to, under "cluster.m<id>". Nil gives the member a
	// private registry.
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.FailureTimeout <= 0 {
		c.FailureTimeout = 4 * c.HeartbeatInterval
	}
}

// RecoveryHooks are callbacks the memory cloud installs so the cluster
// layer can drive data recovery without depending on the storage layer.
type RecoveryHooks struct {
	// AcquireTrunks is invoked on a machine when the addressing table
	// assigns it trunks it did not own before; the implementation reloads
	// the trunk contents from TFS.
	AcquireTrunks func(trunks []uint32)
	// ReleaseTrunks is invoked when trunks move away from this machine
	// (e.g. rebalancing toward a newly joined machine).
	ReleaseTrunks func(trunks []uint32)
}

// Member is one machine's view of the cluster. The same type serves as
// slave and (on at most one machine at a time) as leader.
type Member struct {
	id   msg.MachineID
	node *msg.Node
	fs   *tfs.FS
	cfg  Config

	table atomic.Pointer[Table]
	hooks RecoveryHooks

	// recMu serializes all reconfiguration on this member: failure
	// recovery, join admission, and leader assumption. Two concurrent
	// confirmAndRecover calls (two machines dying in one detector window,
	// or a slave report racing the leader's own detector) must not both
	// reassign from the same table version.
	recMu sync.Mutex

	mu        sync.Mutex
	leaderID  msg.MachineID
	isLeader  bool
	lastSeen  map[msg.MachineID]time.Time // leader-side heartbeat registry
	suspected map[msg.MachineID]bool
	// leaderSeen is the slave-side liveness deadline for the leader: the
	// last time anything proved it alive (a ping reply or a table
	// broadcast). Heartbeats are one-way sends, and a silent partition
	// drops frames without erroring — so a slave cannot rely on Send
	// failures alone to notice a dead or isolated leader.
	leaderSeen time.Time
	// electionBackoff pauses further leadership bids after a won flag had
	// to be handed back (no other member reachable): without it, an
	// isolated machine that can still reach TFS claims and releases the
	// flag in a tight loop, starving connected members of the tombstone.
	electionBackoff time.Time
	// confirmedDead records machines this leader confirmed unreachable in
	// its current tenure. A commit that loses its CAS re-diffs the winning
	// table against this whole set, so a recovery can never resurrect a
	// machine another in-flight recovery just removed. Cleared on
	// election (a new tenure starts with fresh knowledge) and on
	// AnnounceJoin (an admitted machine is alive by definition).
	confirmedDead map[msg.MachineID]bool
	stopCh        chan struct{}
	stopped       bool
	wg            sync.WaitGroup

	// commitHook, when set, runs after a table commit is persisted to TFS
	// but before it is applied locally or broadcast. Crash-consistency
	// test instrumentation only.
	commitHook atomic.Pointer[func(*Table)]

	// Registry-backed stats; the Stats() accessor keeps the pre-obs
	// snapshot struct available.
	recoveries      *obs.Counter
	tableSyncs      *obs.Counter
	elections       *obs.Counter
	failReports     *obs.Counter
	tableCASRetries *obs.Counter
	commitErrors    *obs.Counter
	stepdowns       *obs.Counter
	concurrentRecov *obs.Counter
	heartbeatNs     *obs.Histogram
	pingRttNs       *obs.Histogram
	failoverNs      *obs.Histogram
}

// NewMember wires a cluster member onto a messaging node and a shared TFS.
// initial is the bootstrap table (identical on all machines); the member
// with the lowest ID in the table wins the initial leader election.
func NewMember(node *msg.Node, fs *tfs.FS, initial *Table, hooks RecoveryHooks, cfg Config) *Member {
	cfg.fill()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	scope := reg.Scope(fmt.Sprintf("cluster.m%d", node.ID()))
	m := &Member{
		id:            node.ID(),
		node:          node,
		fs:            fs,
		cfg:           cfg,
		hooks:         hooks,
		lastSeen:      make(map[msg.MachineID]time.Time),
		suspected:     make(map[msg.MachineID]bool),
		confirmedDead: make(map[msg.MachineID]bool),
		leaderSeen:    time.Now(),
		stopCh:        make(chan struct{}),

		recoveries:      scope.Counter("recoveries"),
		tableSyncs:      scope.Counter("table_syncs"),
		elections:       scope.Counter("elections"),
		failReports:     scope.Counter("failure_reports"),
		tableCASRetries: scope.Counter("table_cas_retries"),
		commitErrors:    scope.Counter("commit_errors"),
		stepdowns:       scope.Counter("stepdowns"),
		concurrentRecov: scope.Counter("concurrent_recoveries"),
		heartbeatNs:     scope.Histogram("heartbeat_ns"),
		pingRttNs:       scope.Histogram("ping_rtt_ns"),
		failoverNs:      scope.Histogram("failover_ns"),
	}
	m.table.Store(initial)
	node.HandleAsync(protoHeartbeat, m.onHeartbeat)
	node.HandleAsync(protoTableUpdate, m.onTableUpdate)
	node.HandleSync(protoReportFail, m.onReportFailure)
	node.HandleSync(protoGetTable, m.onGetTable)
	node.HandleSync(protoPing, func(context.Context, msg.MachineID, []byte) ([]byte, error) { return []byte{1}, nil })
	return m
}

// Start begins heartbeating and, if this member can claim the leader flag,
// leader duties. Call Stop to shut down.
func (m *Member) Start() {
	m.tryBecomeLeader(nil)
	m.wg.Add(1)
	go m.heartbeatLoop()
}

// Stop halts background loops.
func (m *Member) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	close(m.stopCh)
	m.mu.Unlock()
	m.wg.Wait()
}

// Table returns the member's current replica of the addressing table.
func (m *Member) Table() *Table { return m.table.Load() }

// IsLeader reports whether this member currently holds leader duties.
func (m *Member) IsLeader() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.isLeader
}

// Leader returns the member's current belief about the leader's identity.
// It is leaderTombstone (-1) while the member knows of no leader (the old
// one stepped down and no successor has claimed the flag yet).
func (m *Member) Leader() msg.MachineID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leaderID
}

// SetCommitHook installs fn to run after a table commit has been persisted
// to TFS but before it is applied locally or broadcast — the §6.2
// "mid-commit" window. Crash-consistency tests use it to kill or isolate a
// leader between the persistent-replica write and the broadcast. A nil fn
// removes the hook. Not for production use.
func (m *Member) SetCommitHook(fn func(*Table)) {
	if fn == nil {
		m.commitHook.Store(nil)
		return
	}
	m.commitHook.Store(&fn)
}

// Stats reports cluster activity counters for tests and dashboards.
type Stats struct {
	Recoveries           int64
	TableSyncs           int64
	Elections            int64
	FailureReports       int64
	TableCASRetries      int64
	CommitErrors         int64
	Stepdowns            int64
	ConcurrentRecoveries int64
}

// Stats returns a snapshot of the member's counters.
func (m *Member) Stats() Stats {
	return Stats{
		Recoveries:           m.recoveries.Load(),
		TableSyncs:           m.tableSyncs.Load(),
		Elections:            m.elections.Load(),
		FailureReports:       m.failReports.Load(),
		TableCASRetries:      m.tableCASRetries.Load(),
		CommitErrors:         m.commitErrors.Load(),
		Stepdowns:            m.stepdowns.Load(),
		ConcurrentRecoveries: m.concurrentRecov.Load(),
	}
}

// encodeID encodes a machine ID for the leader flag file.
func encodeID(id msg.MachineID) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(int32(id)))
	return b[:]
}

// decodeID parses a 4-byte leader flag value.
func decodeID(b []byte) msg.MachineID {
	return msg.MachineID(int32(binary.LittleEndian.Uint32(b)))
}

// probeReachable reports whether at least one other machine in the
// current table answers a bounded ping. A cluster of one is trivially
// reachable. Pings run concurrently and the first success wins, so the
// common case costs one round trip, not FailureTimeout.
func (m *Member) probeReachable() bool {
	var others []msg.MachineID
	for _, id := range m.Table().Machines() {
		if id != m.id {
			others = append(others, id)
		}
	}
	if len(others) == 0 {
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.FailureTimeout)
	defer cancel()
	results := make(chan bool, len(others))
	for _, id := range others {
		id := id
		go func() {
			_, err := m.ping(ctx, id)
			results <- err == nil
		}()
	}
	for range others {
		if <-results {
			return true
		}
	}
	return false
}

// tryBecomeLeader attempts to claim the TFS leader flag. old is the flag
// value we believe is current (nil at bootstrap). Winning the flag is not
// enough to lead: the §6.2 invariant — "an update to the primary table
// must be applied to the persistent replica before committing" — requires
// the persistent replica to be reconciled first, so a winner that cannot
// persist steps down again instead of silently leading with a stale
// primary replica. On CAS failure the member records the actual leader
// from the flag, claiming vacant or tombstoned flags as it goes.
func (m *Member) tryBecomeLeader(old []byte) {
	// Fence before bidding: TFS reachability alone is not proof we can
	// lead — a network-isolated machine can still reach the in-process
	// store, and letting it claim the flag would repeatedly depose the
	// connected leader (checkDeposed) without ever serving anyone. Prove
	// at least one other cluster member answers before touching the flag,
	// and back off on failure so the probe does not run every tick.
	if !m.probeReachable() {
		m.mu.Lock()
		m.electionBackoff = time.Now().Add(2 * m.cfg.FailureTimeout)
		m.mu.Unlock()
		return
	}
	for {
		err := m.fs.CompareAndSwap(leaderFlagFile, old, encodeID(m.id))
		if err == nil {
			break // flag claimed; assume duties below
		}
		var cas *tfs.CASError
		if !errors.As(err, &cas) {
			return // TFS trouble: remain a follower
		}
		if cas.Current == nil && old != nil {
			old = nil // flag vacant: claim it unconditionally
			continue
		}
		if len(cas.Current) != 4 {
			return // unreadable flag: remain a follower
		}
		holder := decodeID(cas.Current)
		switch {
		case holder == m.id:
			// The flag already names us (an earlier step-down failed to
			// tombstone it). Re-run the assumption protocol below.
		case holder == leaderTombstone && !bytes.Equal(old, cas.Current):
			// The previous leader stepped down cleanly; claim the
			// tombstone.
			old = cas.Current
			continue
		default:
			m.mu.Lock()
			m.leaderID = holder
			m.leaderSeen = time.Now()
			m.isLeader = false
			m.mu.Unlock()
			return
		}
		break
	}

	// We hold the flag. Serialize with any in-flight reconfiguration,
	// reconcile the persistent primary replica, then assume duties.
	m.recMu.Lock()
	defer m.recMu.Unlock()
	if err := m.adoptPersistedTable(); err != nil {
		m.commitErrors.Inc()
		m.stepDown()
		return
	}
	m.mu.Lock()
	m.isLeader = true
	m.leaderID = m.id
	// Re-seed the failure detector from scratch: lastSeen entries carried
	// over from a previous tenure would expire every machine instantly,
	// and a stale confirmedDead set would evict machines re-admitted
	// while we were a follower.
	now := time.Now()
	m.lastSeen = make(map[msg.MachineID]time.Time)
	m.suspected = make(map[msg.MachineID]bool)
	m.confirmedDead = make(map[msg.MachineID]bool)
	for _, id := range m.Table().Machines() {
		if id != m.id {
			m.lastSeen[id] = now
		}
	}
	m.mu.Unlock()
	m.elections.Inc()
}

// adoptPersistedTable reconciles the in-memory replica with the persistent
// primary on TFS during leader assumption: a newer persisted table (e.g.
// one committed by the previous leader just before dying) is adopted
// locally — firing recovery hooks for any trunks it assigns us — while an
// older or missing one is overwritten with our replica via CAS so a
// concurrent writer is never clobbered. Called with recMu held.
func (m *Member) adoptPersistedTable() error {
	for attempt := 0; attempt < casCommitAttempts; attempt++ {
		cur, err := m.fs.ReadFile(tableFile)
		if err != nil && !errors.Is(err, tfs.ErrNotExist) {
			return err
		}
		if err == nil {
			if pt, derr := DecodeTable(cur); derr == nil && pt.Version >= m.Table().Version {
				m.applyTable(pt)
				return nil
			}
			// Older or corrupt primary: replace it with our replica.
		} else {
			cur = nil // file absent: create it
		}
		cerr := m.fs.CompareAndSwap(tableFile, cur, m.Table().Encode())
		if cerr == nil {
			return nil
		}
		if !errors.Is(cerr, tfs.ErrCASMismatch) {
			return cerr
		}
		// Lost a write race; re-read and reconcile again.
	}
	return errors.New("cluster: could not reconcile persistent table replica")
}

// stepDown abandons leader duties after a persistence failure: local state
// stops claiming leadership first, then the flag is tombstoned (CAS from
// our id) so the next election can proceed without anyone having to prove
// us dead. If even the tombstone write fails the flag still names us, but
// isLeader is already false — we refuse leader duties, and a later
// election attempt (ours via the heartbeat loop, or a peer's deposition
// CAS) resolves the flag.
func (m *Member) stepDown() {
	m.stepdowns.Inc()
	m.mu.Lock()
	m.isLeader = false
	m.leaderID = leaderTombstone
	m.mu.Unlock()
	_ = m.fs.CompareAndSwap(leaderFlagFile, encodeID(m.id), encodeID(leaderTombstone))
}

func (m *Member) heartbeatLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-ticker.C:
			m.mu.Lock()
			leader := m.leaderID
			isLeader := m.isLeader
			sinceSeen := time.Since(m.leaderSeen)
			backingOff := time.Now().Before(m.electionBackoff)
			m.mu.Unlock()
			leaderStale := sinceSeen > m.cfg.FailureTimeout
			// Usurping on one failed ping would replace a leader that is
			// merely slow under load; demand sustained silence first.
			leaderExpired := sinceSeen > 3*m.cfg.FailureTimeout
			if isLeader {
				// Lease check: a leader that lost the flag (a successor
				// claimed it while we were partitioned) must find out even
				// when it has no commit in flight — commitTable's own
				// checkDeposed only runs when the detector fires. This
				// bounds the dual-leader window to about one tick.
				if m.checkDeposed() {
					continue
				}
				m.checkHeartbeats()
				continue
			}
			if leader == leaderTombstone || leader == m.id {
				// No leader (step-down tombstone, or a flag that names us
				// without duties assumed): run for the vacancy.
				if !backingOff {
					m.tryBecomeLeader(encodeID(leaderTombstone))
				}
				continue
			}
			start := time.Now()
			err := m.node.Send(leader, protoHeartbeat, nil)
			if err == nil {
				// The packer may swallow a dead destination until the
				// flush actually hits the transport.
				err = m.node.Flush()
			}
			m.heartbeatNs.Observe(int64(time.Since(start)))
			if err != nil || leaderStale {
				// Confirm with a bounded ping before racing to replace
				// the leader. The staleness check matters as much as the
				// Send error: a silently partitioned leader drops our
				// one-way heartbeats without erroring, so the only proof
				// of life is a round trip. context.Background() here
				// would let a one-way cut stall this loop for a full
				// CallTimeout.
				ctx, cancel := context.WithTimeout(context.Background(), m.cfg.FailureTimeout)
				_, perr := m.ping(ctx, leader)
				cancel()
				switch {
				case perr == nil:
					m.mu.Lock()
					m.leaderSeen = time.Now()
					m.mu.Unlock()
				case (err != nil || leaderExpired) && !backingOff:
					// A hard send error (closed endpoint) or sustained
					// silence: replace the leader. A single timed-out
					// ping on an otherwise quiet link is not enough.
					m.tryBecomeLeader(encodeID(leader))
				}
			}
		}
	}
}

// onHeartbeat records a slave's heartbeat (leader side).
func (m *Member) onHeartbeat(from msg.MachineID, _ []byte) {
	m.mu.Lock()
	m.lastSeen[from] = time.Now()
	delete(m.suspected, from)
	m.mu.Unlock()
}

// checkHeartbeats is the leader's proactive failure detector. Suspects
// are confirmed concurrently, each ping bounded by FailureTimeout, so one
// unresponsive peer (e.g. behind a one-way cut that swallows our ping but
// not its heartbeats) cannot stall the ticker for a full CallTimeout and
// cascade false positives onto machines that are merely late.
func (m *Member) checkHeartbeats() {
	now := time.Now()
	var expired []msg.MachineID
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	for id, seen := range m.lastSeen {
		if now.Sub(seen) > m.cfg.FailureTimeout && !m.suspected[id] {
			m.suspected[id] = true
			expired = append(expired, id)
		}
	}
	// Re-drive recoveries whose commit did not land: a confirmed-dead
	// machine still owning trunks means the reassignment failed (CAS
	// exhaustion, a transient no-survivors window, a TFS error) and
	// nothing else will retry it — the machine is gone from lastSeen, so
	// it can never expire again. suspected doubles as the in-flight
	// marker so each tick spawns at most one recovery per machine.
	cur := m.Table()
	for id := range m.confirmedDead {
		if !m.suspected[id] && len(cur.TrunksOf(id)) > 0 {
			m.suspected[id] = true
			expired = append(expired, id)
		}
	}
	m.mu.Unlock()
	for _, id := range expired {
		id := id
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), m.cfg.FailureTimeout)
			defer cancel()
			m.confirmAndRecover(ctx, id)
		}()
	}
}

// onReportFailure handles a slave's report that machine B is down
// (§6.2: "machine A will inform the leader machine of the failure of
// machine B"). The leader confirms by pinging the suspect itself.
func (m *Member) onReportFailure(ctx context.Context, _ msg.MachineID, req []byte) ([]byte, error) {
	if !m.IsLeader() {
		return nil, errors.New("cluster: not the leader")
	}
	if len(req) != 4 {
		return nil, errors.New("cluster: bad failure report")
	}
	m.failReports.Inc()
	suspect := decodeID(req)
	m.confirmAndRecover(ctx, suspect)
	return []byte{1}, nil
}

// ping round-trips a sync ping to the target, recording its RTT.
func (m *Member) ping(ctx context.Context, target msg.MachineID) ([]byte, error) {
	start := time.Now()
	resp, err := m.node.Call(ctx, target, protoPing, nil)
	if err == nil {
		m.pingRttNs.Observe(int64(time.Since(start)))
	}
	return resp, err
}

// confirmAndRecover pings the suspect and, if it is unreachable, runs the
// recovery protocol under the recovery mutex: mark the suspect confirmed
// dead, rebuild the table away from every confirmed-dead machine, and
// commit the result with a CAS on the encoded predecessor. The elapsed
// time from confirmed suspicion to the committed table is the paper's
// failover latency; it lands in cluster.m<id>.failover_ns.
func (m *Member) confirmAndRecover(ctx context.Context, suspect msg.MachineID) {
	if suspect == m.id || !m.IsLeader() {
		m.mu.Lock()
		delete(m.suspected, suspect) // release the in-flight marker
		m.mu.Unlock()
		return
	}
	pctx, cancel := context.WithTimeout(ctx, m.cfg.FailureTimeout)
	_, perr := m.ping(pctx, suspect)
	cancel()
	if perr == nil {
		m.mu.Lock()
		delete(m.suspected, suspect) // false alarm
		m.mu.Unlock()
		return
	}
	failStart := time.Now()
	if !m.recMu.TryLock() {
		// Another reconfiguration is in flight (two machines dying in the
		// same detector window, or a slave report racing our own
		// detector). Serialize behind it; the rebuild below re-diffs
		// against whatever table it committed.
		m.concurrentRecov.Inc()
		m.recMu.Lock()
	}
	defer m.recMu.Unlock()
	if !m.IsLeader() {
		m.mu.Lock()
		delete(m.suspected, suspect)
		m.mu.Unlock()
		return // deposed while waiting for the recovery mutex
	}
	m.mu.Lock()
	delete(m.lastSeen, suspect)
	delete(m.suspected, suspect)
	m.confirmedDead[suspect] = true
	m.mu.Unlock()
	committed, err := m.commitTable(m.reassignDead)
	if err != nil || !committed {
		return
	}
	m.recoveries.Inc()
	m.failoverNs.Observe(int64(time.Since(failStart)))
}

// reassignDead rebuilds cur with every trunk owned by a confirmed-dead
// machine redistributed across the survivors; nil when every trunk
// already lives on a survivor.
func (m *Member) reassignDead(cur *Table) (*Table, error) {
	m.mu.Lock()
	dead := make(map[msg.MachineID]bool, len(m.confirmedDead))
	for id := range m.confirmedDead {
		dead[id] = true
	}
	heartbeating := map[msg.MachineID]bool{m.id: true}
	for id := range m.lastSeen {
		if !dead[id] {
			heartbeating[id] = true
		}
	}
	m.mu.Unlock()
	if len(dead) == 0 {
		return nil, nil
	}
	// Survivors are the table's live owners: a machine an earlier commit
	// already evicted stays evicted, even if the detector has not yet
	// noticed its death. But after a deposed leader hoarded trunks (its
	// isolated detector "confirmed" everyone dead and reassigned to
	// itself), the adopted table's owner set can be exactly the dead
	// ex-leader — then membership must come from heartbeats plus
	// ourselves, or recovery would find no survivors and wedge.
	var survivors []msg.MachineID
	for _, id := range cur.Machines() {
		if !dead[id] {
			survivors = append(survivors, id)
		}
	}
	if len(survivors) == 0 {
		for id := range heartbeating {
			survivors = append(survivors, id)
		}
		sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
	}
	return cur.ReassignSet(dead, survivors)
}

// AnnounceJoin adds a new machine to the cluster (leader only): some
// trunks are relocated to it and the table is broadcast.
func (m *Member) AnnounceJoin(joined msg.MachineID) error {
	if !m.IsLeader() {
		return errors.New("cluster: only the leader admits machines")
	}
	m.recMu.Lock()
	defer m.recMu.Unlock()
	if !m.IsLeader() {
		return errors.New("cluster: deposed before admitting the machine")
	}
	m.mu.Lock()
	// An admitted machine is alive by definition; forget any stale death
	// verdict and start monitoring it even before its first heartbeat.
	delete(m.confirmedDead, joined)
	m.lastSeen[joined] = time.Now()
	m.mu.Unlock()
	_, err := m.commitTable(func(cur *Table) (*Table, error) {
		nt, moved := cur.Rebalance(joined)
		if len(moved) == 0 {
			return nil, nil
		}
		return nt, nil
	})
	return err
}

// commitTable serializes one reconfiguration into the table chain:
// rebuild derives the successor of the current table (nil meaning nothing
// left to do), and the successor is committed to TFS with a CAS on the
// encoded predecessor, so a stale or deposed leader can never clobber a
// newer table. Only after the persistent replica holds the new version is
// it applied locally and broadcast (§6.2: "an update to the primary table
// must be applied to the persistent replica before committing"). On CAS
// failure the winning table is adopted and the rebuild re-run against it;
// on a persistence error nothing is applied or broadcast. Called with
// recMu held.
func (m *Member) commitTable(rebuild func(*Table) (*Table, error)) (bool, error) {
	cur := m.Table()
	prev := cur.Encode()
	for attempt := 0; attempt < casCommitAttempts; attempt++ {
		if m.checkDeposed() {
			return false, errors.New("cluster: deposed mid-commit")
		}
		nt, err := rebuild(cur)
		if err != nil {
			return false, err
		}
		if nt == nil {
			return false, nil
		}
		enc := nt.Encode()
		err = m.fs.CompareAndSwap(tableFile, prev, enc)
		var cas *tfs.CASError
		switch {
		case err == nil:
			if hook := m.commitHook.Load(); hook != nil {
				(*hook)(nt)
			}
			m.applyTable(nt)
			m.broadcastTable(nt, enc)
			return true, nil
		case errors.As(err, &cas):
			m.tableCASRetries.Inc()
			if cas.Current == nil {
				// The primary replica has never been persisted (or was
				// deleted); create it from our predecessor.
				prev = nil
				continue
			}
			live, derr := DecodeTable(cas.Current)
			if derr != nil {
				m.commitErrors.Inc()
				return false, derr
			}
			// Another writer committed first: adopt its table and re-diff
			// the reconfiguration against it.
			m.applyTable(live)
			cur, prev = live, cas.Current
		default:
			m.commitErrors.Inc()
			return false, err
		}
	}
	return false, errors.New("cluster: table commit lost too many CAS races")
}

// checkDeposed re-reads the leader flag before a commit attempt: a leader
// that has been deposed (a successor claimed the flag while we were
// partitioned from the cluster but not from TFS) must abort
// reconfiguration and become a follower, not duel the successor's commit
// chain — two leaders re-diffing against each other's tables would
// otherwise ping-pong commits forever. An unreadable flag does not depose:
// the table CAS itself still arbitrates. Called with recMu held.
func (m *Member) checkDeposed() bool {
	flag, err := m.fs.ReadFile(leaderFlagFile)
	if err != nil || len(flag) != 4 {
		return false
	}
	holder := decodeID(flag)
	if holder == m.id {
		return false
	}
	m.stepdowns.Inc()
	m.mu.Lock()
	m.isLeader = false
	m.leaderID = holder
	m.leaderSeen = time.Now()
	m.mu.Unlock()
	return true
}

// broadcastTable ships a committed table to every machine in it.
func (m *Member) broadcastTable(nt *Table, payload []byte) {
	for _, dst := range nt.Machines() {
		if dst == m.id {
			continue
		}
		// Best effort: "even if some slave machines cannot receive the
		// broadcast message ... a machine will always sync up with the
		// primary addressing table replica when it fails to load a data
		// item" (§6.2).
		m.node.Send(dst, protoTableUpdate, payload)
	}
	m.node.Flush()
}

// onTableUpdate installs a broadcast table (slave side). A broadcast is
// proof of life for its sender: only the machine that won the table CAS
// ships one, so hearing it refreshes the leader liveness deadline.
func (m *Member) onTableUpdate(from msg.MachineID, payload []byte) {
	nt, err := DecodeTable(payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	if from == m.leaderID {
		m.leaderSeen = time.Now()
	}
	m.mu.Unlock()
	m.applyTable(nt)
}

// applyTable installs nt if it is newer than the current replica and fires
// the recovery hooks for trunks acquired or released by this machine.
func (m *Member) applyTable(nt *Table) {
	for {
		cur := m.table.Load()
		if cur != nil && cur.Version >= nt.Version {
			return
		}
		if m.table.CompareAndSwap(cur, nt) {
			acquired := Diff(cur, nt, m.id)
			released := released(cur, nt, m.id)
			if len(acquired) > 0 && m.hooks.AcquireTrunks != nil {
				m.hooks.AcquireTrunks(acquired)
			}
			if len(released) > 0 && m.hooks.ReleaseTrunks != nil {
				m.hooks.ReleaseTrunks(released)
			}
			return
		}
	}
}

// released returns trunks owned by machine m in old but not in new.
func released(old, new *Table, m msg.MachineID) []uint32 {
	if old == nil {
		return nil
	}
	var out []uint32
	for i := range old.Slots {
		if old.Slots[i] == m && new.Slots[i] != m {
			out = append(out, uint32(i))
		}
	}
	return out
}

// ReportFailure tells the leader that machine B looks dead. It is called
// by the memory cloud when a data access fails. The call is synchronous:
// when it returns nil, the leader has run recovery and the caller should
// refresh its table and retry.
func (m *Member) ReportFailure(ctx context.Context, b msg.MachineID) error {
	if m.IsLeader() {
		m.confirmAndRecover(ctx, b)
		return nil
	}
	leader := m.Leader()
	if leader != leaderTombstone && leader != m.id {
		_, err := m.node.Call(ctx, leader, protoReportFail, encodeID(b))
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	// The leader itself is unreachable (or unknown); elect and retry.
	m.tryBecomeLeader(encodeID(leader))
	if m.IsLeader() {
		m.confirmAndRecover(ctx, b)
		return nil
	}
	// We lost the election. Our local belief was just refreshed from the
	// flag, but it can still name the dead leader if our CAS raced the
	// winner's: re-read the authoritative flag until a successor appears,
	// capped by the caller's ctx and FailureTimeout.
	next, err := m.awaitNewLeader(ctx, leader)
	if err != nil {
		return err
	}
	if next == m.id {
		if m.IsLeader() {
			m.confirmAndRecover(ctx, b)
			return nil
		}
		return errors.New("cluster: flag names this member but leadership was not assumed")
	}
	_, err = m.node.Call(ctx, next, protoReportFail, encodeID(b))
	return err
}

// awaitNewLeader polls the leader flag on TFS until it names a successor —
// a valid machine other than the deposed leader — or the caller's ctx
// (capped by FailureTimeout) runs out. Re-reading the flag, rather than
// trusting m.Leader(), is what makes the retry safe: the local belief is
// updated only by our own election attempts and can still point at the
// dead machine.
func (m *Member) awaitNewLeader(ctx context.Context, dead msg.MachineID) (msg.MachineID, error) {
	deadline := time.Now().Add(m.cfg.FailureTimeout)
	pause := m.cfg.HeartbeatInterval / 4
	if pause <= 0 {
		pause = time.Millisecond
	}
	for {
		if flag, err := m.fs.ReadFile(leaderFlagFile); err == nil && len(flag) == 4 {
			if id := decodeID(flag); id != leaderTombstone && id != dead {
				if id != m.id {
					m.mu.Lock()
					m.leaderID = id
					m.leaderSeen = time.Now()
					m.mu.Unlock()
				}
				return id, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return leaderTombstone, err
		}
		if time.Now().After(deadline) {
			return leaderTombstone, errors.New("cluster: no successor leader appeared")
		}
		timer := time.NewTimer(pause)
		select {
		case <-ctx.Done():
			timer.Stop()
			return leaderTombstone, ctx.Err()
		case <-m.stopCh:
			timer.Stop()
			return leaderTombstone, errors.New("cluster: member stopped")
		case <-timer.C:
		}
	}
}

// RefreshTable syncs this member's replica with the primary addressing
// table. The persistent TFS copy is authoritative ("an update to the
// primary table must be applied to the persistent replica before
// committing"), so it is consulted first; if TFS is unreadable the leader
// is asked directly.
func (m *Member) RefreshTable(ctx context.Context) error {
	m.tableSyncs.Inc()
	if payload, err := m.fs.ReadFile(tableFile); err == nil {
		if nt, derr := DecodeTable(payload); derr == nil {
			m.applyTable(nt)
			return nil
		}
	}
	payload, err := m.node.Call(ctx, m.Leader(), protoGetTable, nil)
	if err != nil {
		return fmt.Errorf("cluster: refresh: %w", err)
	}
	nt, err := DecodeTable(payload)
	if err != nil {
		return err
	}
	m.applyTable(nt)
	return nil
}

// onGetTable serves the current table (leader side, but any member can
// answer from its replica).
func (m *Member) onGetTable(context.Context, msg.MachineID, []byte) ([]byte, error) {
	return m.Table().Encode(), nil
}
