package cluster

import (
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"trinity/internal/hash"
	"trinity/internal/msg"
	"trinity/internal/tfs"
)

func ids(n int) []msg.MachineID {
	out := make([]msg.MachineID, n)
	for i := range out {
		out[i] = msg.MachineID(i)
	}
	return out
}

func TestNewTableRoundRobin(t *testing.T) {
	tab := NewTable(4, ids(3)) // 16 slots over 3 machines
	if len(tab.Slots) != 16 {
		t.Fatalf("slots = %d, want 16", len(tab.Slots))
	}
	counts := map[msg.MachineID]int{}
	for _, m := range tab.Slots {
		counts[m]++
	}
	for m, c := range counts {
		if c < 5 || c > 6 {
			t.Fatalf("machine %d owns %d trunks, want 5-6", m, c)
		}
	}
	if got := tab.Machine(0); got != 0 {
		t.Fatalf("Machine(0) = %d", got)
	}
}

func TestTableEncodeDecode(t *testing.T) {
	tab := NewTable(5, ids(7))
	tab.Version = 42
	dec, err := DecodeTable(tab.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Version != 42 || dec.P != 5 || len(dec.Slots) != 32 {
		t.Fatalf("decoded %+v", dec)
	}
	for i := range tab.Slots {
		if dec.Slots[i] != tab.Slots[i] {
			t.Fatalf("slot %d: %d != %d", i, dec.Slots[i], tab.Slots[i])
		}
	}
	if _, err := DecodeTable([]byte{1, 2, 3}); err == nil {
		t.Fatal("short decode should fail")
	}
	enc := tab.Encode()
	enc[8] = 2 // inconsistent p
	if _, err := DecodeTable(enc); err == nil {
		t.Fatal("inconsistent decode should fail")
	}
}

func TestTableEncodeDecodeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hash.NewRNG(seed)
		p := uint(rng.Intn(8))
		machines := ids(rng.Intn(15) + 1)
		tab := NewTable(p, machines)
		tab.Version = rng.Next()
		dec, err := DecodeTable(tab.Encode())
		if err != nil || dec.Version != tab.Version || dec.P != tab.P {
			return false
		}
		for i := range tab.Slots {
			if dec.Slots[i] != tab.Slots[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReassign(t *testing.T) {
	tab := NewTable(4, ids(4))
	owned := tab.TrunksOf(2)
	nt, err := tab.Reassign(2, []msg.MachineID{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if nt.Version != tab.Version+1 {
		t.Fatalf("version = %d", nt.Version)
	}
	if len(nt.TrunksOf(2)) != 0 {
		t.Fatal("failed machine still owns trunks")
	}
	// Every reassigned trunk went to a survivor.
	for _, tr := range owned {
		owner := nt.Machine(tr)
		if owner == 2 {
			t.Fatalf("trunk %d still on failed machine", tr)
		}
	}
	// Diff picks up exactly the acquisitions.
	total := 0
	for _, s := range []msg.MachineID{0, 1, 3} {
		total += len(Diff(tab, nt, s))
	}
	if total != len(owned) {
		t.Fatalf("Diff total = %d, want %d", total, len(owned))
	}
	if _, err := tab.Reassign(2, nil); err == nil {
		t.Fatal("Reassign with no survivors should fail")
	}
}

func TestRebalanceOnJoin(t *testing.T) {
	tab := NewTable(4, ids(2)) // 16 trunks on 2 machines
	nt, moved := tab.Rebalance(9)
	if len(moved) != 16/3 {
		t.Fatalf("moved %d trunks, want %d", len(moved), 16/3)
	}
	if len(nt.TrunksOf(9)) != len(moved) {
		t.Fatal("moved trunks not owned by joiner")
	}
	// Old owners keep a balanced share.
	for _, m := range []msg.MachineID{0, 1} {
		if n := len(nt.TrunksOf(m)); n < 5 || n > 6 {
			t.Fatalf("machine %d left with %d trunks", m, n)
		}
	}
	// Rebalancing toward an existing member is a no-op.
	if _, moved := nt.Rebalance(9); moved != nil {
		t.Fatal("re-join moved trunks")
	}
}

// testCluster spins up n members over an in-process bus and shared TFS.
type testCluster struct {
	bus     *msg.Bus
	fs      *tfs.FS
	nodes   []*msg.Node
	members []*Member
}

func newTestCluster(t *testing.T, n int, p uint, hooks func(i int) RecoveryHooks) *testCluster {
	t.Helper()
	tc := &testCluster{bus: msg.NewBus(), fs: tfs.New(tfs.Options{Datanodes: 3})}
	initial := NewTable(p, ids(n))
	cfg := Config{HeartbeatInterval: 10 * time.Millisecond}
	for i := 0; i < n; i++ {
		node := msg.NewNode(tc.bus.Endpoint(msg.MachineID(i)), msg.Options{
			FlushInterval: time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
		})
		var h RecoveryHooks
		if hooks != nil {
			h = hooks(i)
		}
		m := NewMember(node, tc.fs, initial, h, cfg)
		tc.nodes = append(tc.nodes, node)
		tc.members = append(tc.members, m)
	}
	for _, m := range tc.members {
		m.Start()
	}
	t.Cleanup(func() {
		for _, m := range tc.members {
			m.Stop()
		}
		for _, n := range tc.nodes {
			n.Close()
		}
	})
	return tc
}

func TestSingleLeaderElected(t *testing.T) {
	tc := newTestCluster(t, 4, 4, nil)
	leaders := 0
	for _, m := range tc.members {
		if m.IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	// All members agree on who leads.
	want := tc.members[0].Leader()
	for i, m := range tc.members {
		if m.Leader() != want {
			t.Fatalf("member %d thinks leader is %d, others say %d", i, m.Leader(), want)
		}
	}
}

func TestFailureRecoveryReassignsTrunks(t *testing.T) {
	var mu sync.Mutex
	acquired := map[int][]uint32{}
	tc := newTestCluster(t, 4, 4, func(i int) RecoveryHooks {
		return RecoveryHooks{AcquireTrunks: func(trunks []uint32) {
			mu.Lock()
			acquired[i] = append(acquired[i], trunks...)
			mu.Unlock()
		}}
	})
	victim := msg.MachineID(3) // not the leader (lowest id wins bootstrap)
	if tc.members[victim].IsLeader() {
		t.Fatal("victim unexpectedly the leader")
	}
	victimTrunks := tc.members[0].Table().TrunksOf(victim)
	if len(victimTrunks) == 0 {
		t.Fatal("victim owns nothing")
	}
	// Crash the victim.
	tc.members[victim].Stop()
	tc.nodes[victim].Close()
	tc.bus.Disconnect(victim)

	// A survivor notices while accessing data and reports the failure.
	if err := tc.members[1].ReportFailure(context.Background(), victim); err != nil {
		t.Fatal(err)
	}
	// Leader must have rewritten and broadcast the table; the broadcast
	// is asynchronous, so wait for every survivor's replica.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stale := 0
		for i := 0; i < 3; i++ {
			if len(tc.members[i].Table().TrunksOf(victim)) != 0 {
				stale++
			}
		}
		if stale == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d survivors still map trunks to the dead machine", stale)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Recovery hooks fired for exactly the victim's trunks.
	mu.Lock()
	total := 0
	for _, ts := range acquired {
		total += len(ts)
	}
	mu.Unlock()
	if total != len(victimTrunks) {
		t.Fatalf("recovery hooks acquired %d trunks, want %d", total, len(victimTrunks))
	}
	// The persistent primary replica was updated before committing.
	payload, err := tc.fs.ReadFile("cluster/addressing-table")
	if err != nil {
		t.Fatal(err)
	}
	persisted, _ := DecodeTable(payload)
	if len(persisted.TrunksOf(victim)) != 0 {
		t.Fatal("persistent table replica not updated")
	}
}

func TestHeartbeatDetectsSilentFailure(t *testing.T) {
	tc := newTestCluster(t, 3, 3, nil)
	victim := msg.MachineID(2)
	tc.members[victim].Stop()
	tc.nodes[victim].Close()
	tc.bus.Disconnect(victim)
	// No explicit report: the leader's heartbeat monitor must notice.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(tc.members[0].Table().TrunksOf(victim)) == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("silent failure never detected by heartbeat monitor")
}

func TestLeaderFailureTriggersElection(t *testing.T) {
	tc := newTestCluster(t, 3, 3, nil)
	oldLeader := tc.members[0].Leader()
	idx := int(oldLeader)
	tc.members[idx].Stop()
	tc.nodes[idx].Close()
	tc.bus.Disconnect(oldLeader)

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for i, m := range tc.members {
			if i != idx && m.IsLeader() {
				// New leader elected; the TFS flag must name it.
				flag, err := tc.fs.ReadFile("cluster/leader")
				if err != nil || len(flag) != 4 {
					t.Fatalf("leader flag unreadable: %v", err)
				}
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no new leader elected after leader crash")
}

func TestRefreshTableAfterMissedBroadcast(t *testing.T) {
	tc := newTestCluster(t, 3, 3, nil)
	leader := tc.members[int(tc.members[0].Leader())]
	// Manually commit a newer table without broadcasting to member 2 by
	// writing it to TFS only (simulating a lost broadcast).
	nt, _ := leader.Table().Reassign(2, []msg.MachineID{0, 1})
	tc.fs.WriteFile("cluster/addressing-table", nt.Encode())

	// Member 2's replica is stale until it refreshes.
	m2 := tc.members[2]
	if m2.Table().Version >= nt.Version {
		t.Skip("background path already applied the table")
	}
	// Refresh falls back to leader (whose replica is old) then TFS; force
	// the TFS path by asking a member whose replica is also stale.
	if err := m2.RefreshTable(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m2.Table().Version < nt.Version {
		t.Fatalf("replica still stale after refresh: v%d < v%d",
			m2.Table().Version, nt.Version)
	}
}

func TestAnnounceJoinMovesTrunks(t *testing.T) {
	tc := newTestCluster(t, 3, 4, nil)
	leader := tc.members[int(tc.members[0].Leader())]

	// Wire up a 4th machine.
	joiner := msg.NewNode(tc.bus.Endpoint(9), msg.Options{FlushInterval: time.Millisecond, CallTimeout: 500 * time.Millisecond})
	defer joiner.Close()
	var acquired []uint32
	var mu sync.Mutex
	jm := NewMember(joiner, tc.fs, leader.Table(), RecoveryHooks{
		AcquireTrunks: func(ts []uint32) { mu.Lock(); acquired = append(acquired, ts...); mu.Unlock() },
	}, Config{HeartbeatInterval: 10 * time.Millisecond})
	jm.Start()
	defer jm.Stop()

	if err := leader.AnnounceJoin(9); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(acquired)
		mu.Unlock()
		if n > 0 && len(jm.Table().TrunksOf(9)) == n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("joiner never acquired trunks")
}

func TestNonLeaderCannotAnnounceJoin(t *testing.T) {
	tc := newTestCluster(t, 3, 3, nil)
	for _, m := range tc.members {
		if !m.IsLeader() {
			if err := m.AnnounceJoin(42); err == nil {
				t.Fatal("non-leader AnnounceJoin should fail")
			}
			return
		}
	}
}
