package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"trinity/internal/msg"
	"trinity/internal/tfs"
)

// killMember simulates the crash of member i in a testCluster.
func (tc *testCluster) killMember(i int) {
	tc.members[i].Stop()
	tc.nodes[i].Close()
	tc.bus.Disconnect(msg.MachineID(i))
}

// leaderIndex returns the index of the current leader, or -1.
func (tc *testCluster) leaderIndex() int {
	for i, m := range tc.members {
		if m.IsLeader() {
			return i
		}
	}
	return -1
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestConcurrentFailureRecoverySerialized kills two machines inside the
// same detector window and reports both failures concurrently. The
// recovery mutex must serialize the two reconfigurations: every trunk
// ends on a survivor, the version chain has no gaps (each commit
// increments by exactly one), and the persistent replica matches the
// leader's.
func TestConcurrentFailureRecoverySerialized(t *testing.T) {
	tc := newTestCluster(t, 5, 4, nil)
	leader := tc.leaderIndex()
	if leader == -1 {
		t.Fatal("no leader")
	}
	initial := tc.members[leader].Table().Version

	// Two victims, neither the leader nor the reporter.
	var victims []msg.MachineID
	for i := range tc.members {
		if i != leader && len(victims) < 2 {
			victims = append(victims, msg.MachineID(i))
		}
	}
	var reporter *Member
	for i, m := range tc.members {
		if i != leader && msg.MachineID(i) != victims[0] && msg.MachineID(i) != victims[1] {
			reporter = m
			break
		}
	}
	for _, v := range victims {
		tc.killMember(int(v))
	}

	var wg sync.WaitGroup
	for _, v := range victims {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := reporter.ReportFailure(context.Background(), v); err != nil {
				t.Errorf("report %d: %v", v, err)
			}
		}()
	}
	wg.Wait()

	lm := tc.members[leader]
	nt := lm.Table()
	for _, v := range victims {
		if n := len(nt.TrunksOf(v)); n != 0 {
			t.Fatalf("dead machine %d still owns %d trunks", v, n)
		}
	}
	// Each commit bumps the version by exactly one; two concurrent
	// reports produce one or two commits (the second may find the first
	// already moved everything), never zero and never a gap.
	commits := lm.Stats().Recoveries
	if commits < 1 || commits > 2 {
		t.Fatalf("recoveries = %d, want 1 or 2", commits)
	}
	if nt.Version != initial+uint64(commits) {
		t.Fatalf("version chain has gaps: v%d after %d commits from v%d",
			nt.Version, commits, initial)
	}
	// Persist-before-broadcast: the TFS primary replica is the leader's.
	payload, err := tc.fs.ReadFile(tableFile)
	if err != nil {
		t.Fatal(err)
	}
	persisted, err := DecodeTable(payload)
	if err != nil {
		t.Fatal(err)
	}
	if persisted.Version != nt.Version {
		t.Fatalf("persistent replica v%d != leader replica v%d",
			persisted.Version, nt.Version)
	}
}

// TestStaleLeaderCannotClobberNewerTable simulates a deposed leader whose
// commit races a newer one: another writer commits v2 directly to TFS,
// then the leader (whose in-memory replica is still v1) recovers a
// failure. Its CAS on the v1 predecessor must lose, adopt v2, re-diff,
// and commit v3 — never overwrite v2 with a second v2.
func TestStaleLeaderCannotClobberNewerTable(t *testing.T) {
	tc := newTestCluster(t, 4, 4, nil)
	leader := tc.leaderIndex()
	if leader == -1 {
		t.Fatal("no leader")
	}
	lm := tc.members[leader]
	v1 := lm.Table()

	// Another writer (a competing leader the flag has since deposed)
	// commits v2: machine A's trunks move away.
	victimA := msg.MachineID((leader + 1) % 4)
	var survivorsA []msg.MachineID
	for _, id := range v1.Machines() {
		if id != victimA {
			survivorsA = append(survivorsA, id)
		}
	}
	v2, err := v1.Reassign(victimA, survivorsA)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.fs.CompareAndSwap(tableFile, v1.Encode(), v2.Encode()); err != nil {
		t.Fatal(err)
	}

	// The leader, still on v1, now recovers machine B.
	victimB := msg.MachineID((leader + 2) % 4)
	tc.killMember(int(victimA))
	tc.killMember(int(victimB))
	if err := lm.ReportFailure(context.Background(), victimB); err != nil {
		t.Fatal(err)
	}

	if got := lm.Stats().TableCASRetries; got < 1 {
		t.Fatalf("table_cas_retries = %d, want >= 1 (stale predecessor must lose)", got)
	}
	nt := lm.Table()
	if nt.Version != v2.Version+1 {
		t.Fatalf("leader table v%d, want v%d (adopt v2, commit v3)", nt.Version, v2.Version+1)
	}
	if n := len(nt.TrunksOf(victimB)); n != 0 {
		t.Fatalf("victim B still owns %d trunks", n)
	}
	// v2's reassignment of A must survive the race.
	if n := len(nt.TrunksOf(victimA)); n != 0 {
		t.Fatalf("v2's reassignment clobbered: victim A owns %d trunks again", n)
	}
	payload, err := tc.fs.ReadFile(tableFile)
	if err != nil {
		t.Fatal(err)
	}
	persisted, _ := DecodeTable(payload)
	if persisted.Version != nt.Version {
		t.Fatalf("persistent v%d != leader v%d", persisted.Version, nt.Version)
	}
}

// TestStepDownReleasesFlagForSuccessor: a leader that steps down leaves
// the tombstoned flag claimable, and some member (possibly the deposed
// one, once healthy) reassumes leadership and re-seeds its failure
// detector — no machine is falsely recovered after the hand-off.
func TestStepDownReleasesFlagForSuccessor(t *testing.T) {
	tc := newTestCluster(t, 3, 3, nil)
	leader := tc.leaderIndex()
	if leader == -1 {
		t.Fatal("no leader")
	}
	lm := tc.members[leader]
	before := lm.Table().Version

	lm.stepDown()
	if lm.IsLeader() {
		t.Fatal("still leader after stepDown")
	}
	if got := lm.Stats().Stepdowns; got != 1 {
		t.Fatalf("stepdowns = %d, want 1", got)
	}
	flag, err := tc.fs.ReadFile(leaderFlagFile)
	if err != nil || len(flag) != 4 {
		t.Fatalf("flag unreadable after stepdown: %v", err)
	}
	if id := decodeID(flag); id != leaderTombstone {
		t.Fatalf("flag = %d, want tombstone", id)
	}

	// Heartbeat loops race for the tombstone; exactly one member wins.
	waitFor(t, 3*time.Second, "successor election", func() bool {
		return tc.leaderIndex() != -1
	})
	leaders := 0
	for _, m := range tc.members {
		if m.IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders after hand-off, want 1", leaders)
	}

	// All machines are alive: a detector seeded with stale lastSeen
	// times would instantly expire them and run spurious recoveries.
	time.Sleep(4 * tc.members[0].cfg.FailureTimeout)
	for i, m := range tc.members {
		if got := m.Stats().Recoveries; got != 0 {
			t.Fatalf("member %d ran %d spurious recoveries after hand-off", i, got)
		}
		if v := m.Table().Version; v != before {
			t.Fatalf("member %d table moved to v%d with no failures", i, v)
		}
	}
}

// TestReportFailureFallbackFindsSuccessorLeader: the reporter's leader
// belief points at a dead machine, another member has already claimed the
// flag, and the reporter's own election loses. The retry must re-read the
// flag from TFS (not re-call the dead leader) and land on the successor.
func TestReportFailureFallbackFindsSuccessorLeader(t *testing.T) {
	tc := newTestCluster(t, 4, 4, nil)
	leader := tc.leaderIndex()
	if leader == -1 {
		t.Fatal("no leader")
	}
	// Pick the successor and reporter among the other members; the
	// remaining machine is the data victim whose failure gets reported.
	var others []int
	for i := range tc.members {
		if i != leader {
			others = append(others, i)
		}
	}
	successor, reporter, victim := others[0], others[1], others[2]

	tc.killMember(leader)
	tc.killMember(victim)

	// The successor claims the flag before the reporter notices anything.
	tc.members[successor].tryBecomeLeader(encodeID(msg.MachineID(leader)))
	if !tc.members[successor].IsLeader() {
		t.Fatal("successor could not claim the flag")
	}

	// The reporter still believes the dead leader leads.
	if tc.members[reporter].Leader() != msg.MachineID(leader) {
		t.Skip("reporter already learned of the new leader")
	}
	if err := tc.members[reporter].ReportFailure(context.Background(), msg.MachineID(victim)); err != nil {
		t.Fatalf("report via successor failed: %v", err)
	}
	nt := tc.members[successor].Table()
	if n := len(nt.TrunksOf(msg.MachineID(victim))); n != 0 {
		t.Fatalf("victim still owns %d trunks after fallback report", n)
	}
	if tc.members[reporter].Leader() != msg.MachineID(successor) {
		t.Fatalf("reporter's leader belief = %d, want %d",
			tc.members[reporter].Leader(), successor)
	}
}

// TestConfirmPingBoundedByFailureTimeout: the detector's confirm pings
// must not inherit the node's full CallTimeout. With a FailureTimeout far
// below CallTimeout, recovery of a silent machine must complete in
// FailureTimeout-scale time, not CallTimeout-scale.
func TestConfirmPingBoundedByFailureTimeout(t *testing.T) {
	tc := &testCluster{bus: msg.NewBus(), fs: tfs.New(tfs.Options{Datanodes: 3})}
	initial := NewTable(4, ids(3))
	cfg := Config{HeartbeatInterval: 10 * time.Millisecond, FailureTimeout: 50 * time.Millisecond}
	for i := 0; i < 3; i++ {
		node := msg.NewNode(tc.bus.Endpoint(msg.MachineID(i)), msg.Options{
			FlushInterval: time.Millisecond,
			CallTimeout:   30 * time.Second, // pathological: detector must not wait this out
		})
		tc.nodes = append(tc.nodes, node)
		tc.members = append(tc.members, NewMember(node, tc.fs, initial, RecoveryHooks{}, cfg))
	}
	for _, m := range tc.members {
		m.Start()
	}
	t.Cleanup(func() {
		for _, m := range tc.members {
			m.Stop()
		}
		for _, n := range tc.nodes {
			n.Close()
		}
	})
	leader := tc.leaderIndex()
	if leader == -1 {
		t.Fatal("no leader")
	}
	victim := (leader + 1) % 3
	start := time.Now()
	tc.killMember(victim)
	waitFor(t, 5*time.Second, "silent-failure recovery", func() bool {
		return len(tc.members[leader].Table().TrunksOf(msg.MachineID(victim))) == 0
	})
	// Detection needs one FailureTimeout expiry plus one bounded confirm
	// ping; anything over a few multiples means the ping ran on the
	// 30-second CallTimeout.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("recovery took %v; confirm ping not bounded by FailureTimeout", elapsed)
	}
}
