// Package cluster implements Trinity's cluster membership and fault
// tolerance layer (paper §3, §6.2): the shared addressing table that maps
// the 2^p memory trunks to machines, heartbeat-based failure detection,
// leader election guarded by a flag on the Trinity File System, and the
// recovery protocol that reassigns a failed machine's trunks and
// broadcasts the updated table.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"trinity/internal/msg"
)

// ErrBadTable reports a malformed serialized addressing table.
var ErrBadTable = errors.New("cluster: malformed addressing table")

// Table is the shared addressing table: slot i names the machine that
// currently hosts memory trunk i. Each machine keeps a replica; the
// primary replica lives on the leader and is persisted to TFS before any
// update commits (§6.2). Tables are immutable once built — updates create
// a new table with a higher version, so readers can hold a *Table without
// locking.
type Table struct {
	// Version increases with every update. A machine that observes a
	// higher version than its replica must refresh.
	Version uint64
	// P is the trunk-count exponent: there are 2^P slots.
	P uint
	// Slots maps trunk -> machine.
	Slots []msg.MachineID
}

// NewTable builds the initial table for m machines with 2^p trunks
// assigned round-robin, the layout used at cluster bootstrap.
func NewTable(p uint, machines []msg.MachineID) *Table {
	n := 1 << p
	t := &Table{Version: 1, P: p, Slots: make([]msg.MachineID, n)}
	for i := 0; i < n; i++ {
		t.Slots[i] = machines[i%len(machines)]
	}
	return t
}

// Machine returns the machine hosting the given trunk.
func (t *Table) Machine(trunk uint32) msg.MachineID {
	return t.Slots[trunk]
}

// TrunksOf returns the trunks hosted by the machine, in ascending order.
func (t *Table) TrunksOf(m msg.MachineID) []uint32 {
	var out []uint32
	for i, owner := range t.Slots {
		if owner == m {
			out = append(out, uint32(i))
		}
	}
	return out
}

// Machines returns the distinct machines present in the table.
func (t *Table) Machines() []msg.MachineID {
	seen := make(map[msg.MachineID]bool)
	var out []msg.MachineID
	for _, m := range t.Slots {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Reassign returns a new table (version+1) in which every slot owned by
// `failed` is redistributed round-robin across `survivors`. It implements
// the recovery step "reload the memory trunks it owns ... to other alive
// machines" at the addressing level.
func (t *Table) Reassign(failed msg.MachineID, survivors []msg.MachineID) (*Table, error) {
	if len(survivors) == 0 {
		return nil, errors.New("cluster: no survivors to reassign to")
	}
	nt := &Table{Version: t.Version + 1, P: t.P, Slots: make([]msg.MachineID, len(t.Slots))}
	copy(nt.Slots, t.Slots)
	j := 0
	for i, owner := range nt.Slots {
		if owner == failed {
			nt.Slots[i] = survivors[j%len(survivors)]
			j++
			_ = i
		}
	}
	return nt, nil
}

// ReassignSet returns a new table (version+1) in which every slot owned
// by a dead machine is redistributed round-robin across survivors. It is
// the multi-failure generalization of Reassign, used when a recovery
// retries after losing a table-commit CAS: the winning table may already
// exclude some of the dead set, so the rebuild must diff against every
// confirmed-dead machine at once. It returns nil (no error) when no slot
// is owned by a dead machine — nothing to commit.
func (t *Table) ReassignSet(dead map[msg.MachineID]bool, survivors []msg.MachineID) (*Table, error) {
	if len(survivors) == 0 {
		return nil, errors.New("cluster: no survivors to reassign to")
	}
	nt := &Table{Version: t.Version + 1, P: t.P, Slots: make([]msg.MachineID, len(t.Slots))}
	copy(nt.Slots, t.Slots)
	j, moved := 0, 0
	for i, owner := range nt.Slots {
		if dead[owner] {
			nt.Slots[i] = survivors[j%len(survivors)]
			j++
			moved++
		}
	}
	if moved == 0 {
		return nil, nil
	}
	return nt, nil
}

// Rebalance returns a new table (version+1) in which roughly an equal
// share of trunks is moved onto the newly joined machine, implementing
// "when new machines join the memory cloud, we relocate some memory trunks
// to those new machines". It returns the new table and the set of moved
// trunks.
func (t *Table) Rebalance(joined msg.MachineID) (*Table, []uint32) {
	machines := t.Machines()
	for _, m := range machines {
		if m == joined {
			return t, nil // already present
		}
	}
	total := len(t.Slots)
	share := total / (len(machines) + 1)
	nt := &Table{Version: t.Version + 1, P: t.P, Slots: make([]msg.MachineID, total)}
	copy(nt.Slots, t.Slots)
	if share == 0 {
		return nt, nil
	}
	// Take slots evenly from the most loaded machines.
	load := make(map[msg.MachineID]int)
	for _, m := range nt.Slots {
		load[m]++
	}
	var moved []uint32
	for len(moved) < share {
		// Pick the machine with the highest remaining load.
		var victim msg.MachineID
		max := -1
		for m, l := range load {
			if l > max || (l == max && m < victim) {
				victim, max = m, l
			}
		}
		if max <= 0 {
			break
		}
		for i := range nt.Slots {
			if nt.Slots[i] == victim {
				nt.Slots[i] = joined
				load[victim]--
				moved = append(moved, uint32(i))
				break
			}
		}
	}
	return nt, moved
}

// Encode serializes the table.
func (t *Table) Encode() []byte {
	out := make([]byte, 13+4*len(t.Slots))
	binary.LittleEndian.PutUint64(out[0:], t.Version)
	out[8] = byte(t.P)
	binary.LittleEndian.PutUint32(out[9:], uint32(len(t.Slots)))
	for i, m := range t.Slots {
		binary.LittleEndian.PutUint32(out[13+4*i:], uint32(int32(m)))
	}
	return out
}

// DecodeTable parses a table serialized with Encode.
func DecodeTable(b []byte) (*Table, error) {
	if len(b) < 13 {
		return nil, ErrBadTable
	}
	t := &Table{
		Version: binary.LittleEndian.Uint64(b[0:]),
		P:       uint(b[8]),
	}
	n := int(binary.LittleEndian.Uint32(b[9:]))
	if n != 1<<t.P || len(b) != 13+4*n {
		return nil, fmt.Errorf("%w: %d slots for p=%d", ErrBadTable, n, t.P)
	}
	t.Slots = make([]msg.MachineID, n)
	for i := 0; i < n; i++ {
		t.Slots[i] = msg.MachineID(int32(binary.LittleEndian.Uint32(b[13+4*i:])))
	}
	return t, nil
}

// Diff returns the trunks whose owner changed from old to new and are now
// owned by machine m — the set of trunks m must reload from TFS.
func Diff(old, new *Table, m msg.MachineID) []uint32 {
	var acquired []uint32
	for i := range new.Slots {
		if new.Slots[i] == m && (old == nil || old.Slots[i] != m) {
			acquired = append(acquired, uint32(i))
		}
	}
	return acquired
}
