package cell

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Value is a dynamic value for encoding: one of byte, bool, int32, int64,
// float32, float64, string, []Value (for lists), []int64 (shortcut for
// List<long>), or map[string]Value (for structs). Missing struct fields
// encode as zero values.
type Value any

// Encode serializes a struct value described by v into a fresh blob laid
// out per the schema. It is the write-side complement of Accessor.
func Encode(st *StructType, v map[string]Value) ([]byte, error) {
	var buf []byte
	return appendStruct(buf, st, v)
}

func appendStruct(buf []byte, st *StructType, v map[string]Value) ([]byte, error) {
	for i := range st.Fields {
		f := &st.Fields[i]
		var err error
		buf, err = appendValue(buf, f.Type, v[f.Name])
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", st.Name, f.Name, err)
		}
	}
	return buf, nil
}

func appendValue(buf []byte, t *Type, v Value) ([]byte, error) {
	switch t.Kind {
	case KindByte:
		b, err := asByte(v)
		if err != nil {
			return nil, err
		}
		return append(buf, b), nil
	case KindBool:
		bv, ok := v.(bool)
		if v == nil {
			bv, ok = false, true
		}
		if !ok {
			return nil, fmt.Errorf("cell: want bool, got %T", v)
		}
		if bv {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case KindInt:
		n, err := asInt64(v)
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint32(buf, uint32(int32(n))), nil
	case KindLong:
		n, err := asInt64(v)
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint64(buf, uint64(n)), nil
	case KindFloat:
		f, err := asFloat64(v)
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(f))), nil
	case KindDouble:
		f, err := asFloat64(v)
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f)), nil
	case KindString:
		s := ""
		if v != nil {
			var ok bool
			s, ok = v.(string)
			if !ok {
				return nil, fmt.Errorf("cell: want string, got %T", v)
			}
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		return append(buf, s...), nil
	case KindList:
		return appendList(buf, t, v)
	case KindStruct:
		m := map[string]Value{}
		if v != nil {
			var ok bool
			m, ok = v.(map[string]Value)
			if !ok {
				return nil, fmt.Errorf("cell: want map[string]Value for struct %s, got %T", t.Struct.Name, v)
			}
		}
		return appendStruct(buf, t.Struct, m)
	default:
		return nil, fmt.Errorf("cell: cannot encode kind %v", t.Kind)
	}
}

func appendList(buf []byte, t *Type, v Value) ([]byte, error) {
	switch elems := v.(type) {
	case nil:
		return binary.LittleEndian.AppendUint32(buf, 0), nil
	case []int64:
		if t.Elem.Kind != KindLong {
			return nil, fmt.Errorf("cell: []int64 for List<%v>", t.Elem)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(elems)))
		for _, e := range elems {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e))
		}
		return buf, nil
	case []Value:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(elems)))
		var err error
		for i, e := range elems {
			buf, err = appendValue(buf, t.Elem, e)
			if err != nil {
				return nil, fmt.Errorf("[%d]: %w", i, err)
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("cell: want list value, got %T", v)
	}
}

func asByte(v Value) (byte, error) {
	switch n := v.(type) {
	case nil:
		return 0, nil
	case byte:
		return n, nil
	case int:
		return byte(n), nil
	default:
		return 0, fmt.Errorf("cell: want byte, got %T", v)
	}
}

func asInt64(v Value) (int64, error) {
	switch n := v.(type) {
	case nil:
		return 0, nil
	case int:
		return int64(n), nil
	case int32:
		return int64(n), nil
	case int64:
		return n, nil
	case uint64:
		return int64(n), nil
	default:
		return 0, fmt.Errorf("cell: want integer, got %T", v)
	}
}

func asFloat64(v Value) (float64, error) {
	switch f := v.(type) {
	case nil:
		return 0, nil
	case float32:
		return float64(f), nil
	case float64:
		return f, nil
	case int:
		return float64(f), nil
	default:
		return 0, fmt.Errorf("cell: want float, got %T", v)
	}
}

// Decode converts a blob back into a dynamic value map (the inverse of
// Encode). Lists of long decode as []int64; other lists as []Value.
func Decode(st *StructType, blob []byte) (map[string]Value, error) {
	a := NewAccessor(st, blob)
	if _, err := a.Size(); err != nil {
		return nil, err
	}
	out := make(map[string]Value, len(st.Fields))
	for i := range st.Fields {
		f := &st.Fields[i]
		r, err := a.Field(f.Name)
		if err != nil {
			return nil, err
		}
		v, err := decodeRef(r)
		if err != nil {
			return nil, err
		}
		out[f.Name] = v
	}
	return out, nil
}

func decodeRef(r Ref) (Value, error) {
	switch r.typ.Kind {
	case KindByte:
		return r.Byte(), nil
	case KindBool:
		return r.Bool(), nil
	case KindInt:
		return r.Int(), nil
	case KindLong:
		return r.Long(), nil
	case KindFloat:
		return r.Float(), nil
	case KindDouble:
		return r.Double(), nil
	case KindString:
		return r.Str(), nil
	case KindList:
		l := r.List()
		if r.typ.Elem.Kind == KindLong {
			return l.Longs(), nil
		}
		out := make([]Value, l.Len())
		for i := range out {
			v, err := decodeRef(l.At(i))
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case KindStruct:
		return Decode(r.typ.Struct, r.buf[r.off:])
	default:
		return nil, fmt.Errorf("cell: cannot decode kind %v", r.typ.Kind)
	}
}

// TailLongList reports whether the struct's last field is a List<long>,
// the layout that allows O(1) adjacency append: growing the list is a
// count bump plus a trunk Append, with no tail shifting. The graph engine
// declares its link lists last for exactly this reason.
func TailLongList(st *StructType) bool {
	if len(st.Fields) == 0 {
		return false
	}
	t := st.Fields[len(st.Fields)-1].Type
	return t.Kind == KindList && t.Elem.Kind == KindLong
}

// BumpTailListCount increments the element count of the struct's final
// List<long> field in place and returns the 8 bytes to append to the cell
// for the new element. The caller is responsible for the actual append
// (e.g. memcloud.Slave.Append).
func BumpTailListCount(st *StructType, blob []byte, newElem int64) ([8]byte, error) {
	var enc [8]byte
	if !TailLongList(st) {
		return enc, fmt.Errorf("cell: %s has no tail List<long>", st.Name)
	}
	a := NewAccessor(st, blob)
	r, err := a.Field(st.Fields[len(st.Fields)-1].Name)
	if err != nil {
		return enc, err
	}
	if r.off+4 > len(blob) {
		return enc, ErrShortBlob
	}
	count := binary.LittleEndian.Uint32(blob[r.off:])
	binary.LittleEndian.PutUint32(blob[r.off:], count+1)
	binary.LittleEndian.PutUint64(enc[:], uint64(newElem))
	return enc, nil
}
