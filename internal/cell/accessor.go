package cell

import (
	"encoding/binary"
	"fmt"
	"math"
)

// skipValue returns the encoded size of the value of type t starting at
// buf[off:]. It returns an error if the blob is truncated.
func skipValue(t *Type, buf []byte, off int) (int, error) {
	if n, ok := t.FixedSize(); ok {
		if off+n > len(buf) {
			return 0, ErrShortBlob
		}
		return n, nil
	}
	switch t.Kind {
	case KindString:
		if off+4 > len(buf) {
			return 0, ErrShortBlob
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		if off+4+n > len(buf) {
			return 0, ErrShortBlob
		}
		return 4 + n, nil
	case KindList:
		if off+4 > len(buf) {
			return 0, ErrShortBlob
		}
		count := int(binary.LittleEndian.Uint32(buf[off:]))
		total := 4
		if esz, ok := t.Elem.FixedSize(); ok {
			total += count * esz
			if off+total > len(buf) {
				return 0, ErrShortBlob
			}
			return total, nil
		}
		for i := 0; i < count; i++ {
			n, err := skipValue(t.Elem, buf, off+total)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	case KindStruct:
		total := 0
		for i := range t.Struct.Fields {
			n, err := skipValue(t.Struct.Fields[i].Type, buf, off+total)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	default:
		return 0, fmt.Errorf("cell: cannot skip kind %v", t.Kind)
	}
}

// Accessor maps a struct schema onto a blob. The zero value is invalid;
// use NewAccessor. Accessors are cheap to create (no parsing up front):
// field offsets are resolved lazily, walking only the fields preceding the
// requested one. An accessor does not own the blob; when used inside
// trunk.View or under a trunk.Guard, reads and in-place writes are
// zero-copy into the memory cloud.
type Accessor struct {
	st  *StructType
	buf []byte
}

// NewAccessor wraps a blob with a schema.
func NewAccessor(st *StructType, buf []byte) Accessor {
	return Accessor{st: st, buf: buf}
}

// Schema returns the accessor's struct type.
func (a Accessor) Schema() *StructType { return a.st }

// Bytes returns the underlying blob.
func (a Accessor) Bytes() []byte { return a.buf }

// fieldOffset resolves the byte offset of field i by skipping fields 0..i-1.
func (a Accessor) fieldOffset(i int) (int, error) {
	off := 0
	for j := 0; j < i; j++ {
		n, err := skipValue(a.st.Fields[j].Type, a.buf, off)
		if err != nil {
			return 0, err
		}
		off += n
	}
	return off, nil
}

// Field returns a reference to the named field.
func (a Accessor) Field(name string) (Ref, error) {
	i := a.st.FieldIndex(name)
	if i < 0 {
		return Ref{}, fmt.Errorf("%w: %s.%s", ErrNoField, a.st.Name, name)
	}
	off, err := a.fieldOffset(i)
	if err != nil {
		return Ref{}, err
	}
	return Ref{typ: a.st.Fields[i].Type, buf: a.buf, off: off}, nil
}

// MustField is Field that panics on error; for schema-static code paths
// (generated accessors validate the blob once at load).
func (a Accessor) MustField(name string) Ref {
	r, err := a.Field(name)
	if err != nil {
		panic(err)
	}
	return r
}

// Size returns the total encoded size of the value, validating the blob.
func (a Accessor) Size() (int, error) {
	return skipValue(StructOf(a.st), a.buf, 0)
}

// Ref is a resolved reference to one value inside a blob.
type Ref struct {
	typ *Type
	buf []byte
	off int
}

// Type returns the referenced value's type.
func (r Ref) Type() *Type { return r.typ }

// Offset returns the value's byte offset within the blob.
func (r Ref) Offset() int { return r.off }

func (r Ref) check(kind Kind, n int) {
	if r.typ.Kind != kind {
		panic(fmt.Sprintf("cell: %v access on %v field", kind, r.typ.Kind))
	}
	if r.off+n > len(r.buf) {
		panic(ErrShortBlob)
	}
}

// Byte reads a byte field.
func (r Ref) Byte() byte { r.check(KindByte, 1); return r.buf[r.off] }

// SetByte writes a byte field in place.
func (r Ref) SetByte(v byte) { r.check(KindByte, 1); r.buf[r.off] = v }

// Bool reads a bool field.
func (r Ref) Bool() bool { r.check(KindBool, 1); return r.buf[r.off] != 0 }

// SetBool writes a bool field in place.
func (r Ref) SetBool(v bool) {
	r.check(KindBool, 1)
	if v {
		r.buf[r.off] = 1
	} else {
		r.buf[r.off] = 0
	}
}

// Int reads an int field.
func (r Ref) Int() int32 {
	r.check(KindInt, 4)
	return int32(binary.LittleEndian.Uint32(r.buf[r.off:]))
}

// SetInt writes an int field in place.
func (r Ref) SetInt(v int32) {
	r.check(KindInt, 4)
	binary.LittleEndian.PutUint32(r.buf[r.off:], uint32(v))
}

// Long reads a long field.
func (r Ref) Long() int64 {
	r.check(KindLong, 8)
	return int64(binary.LittleEndian.Uint64(r.buf[r.off:]))
}

// SetLong writes a long field in place.
func (r Ref) SetLong(v int64) {
	r.check(KindLong, 8)
	binary.LittleEndian.PutUint64(r.buf[r.off:], uint64(v))
}

// Float reads a float field.
func (r Ref) Float() float32 {
	r.check(KindFloat, 4)
	return math.Float32frombits(binary.LittleEndian.Uint32(r.buf[r.off:]))
}

// SetFloat writes a float field in place.
func (r Ref) SetFloat(v float32) {
	r.check(KindFloat, 4)
	binary.LittleEndian.PutUint32(r.buf[r.off:], math.Float32bits(v))
}

// Double reads a double field.
func (r Ref) Double() float64 {
	r.check(KindDouble, 8)
	return math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
}

// SetDouble writes a double field in place.
func (r Ref) SetDouble(v float64) {
	r.check(KindDouble, 8)
	binary.LittleEndian.PutUint64(r.buf[r.off:], math.Float64bits(v))
}

// Str reads a string field. The returned string shares no memory with the
// blob (strings are immutable in Go, so a copy is required).
func (r Ref) Str() string {
	r.check(KindString, 4)
	n := int(binary.LittleEndian.Uint32(r.buf[r.off:]))
	if r.off+4+n > len(r.buf) {
		panic(ErrShortBlob)
	}
	return string(r.buf[r.off+4 : r.off+4+n])
}

// StrBytes returns the string field's bytes without copying. The slice
// must not be retained beyond the accessor's validity.
func (r Ref) StrBytes() []byte {
	r.check(KindString, 4)
	n := int(binary.LittleEndian.Uint32(r.buf[r.off:]))
	if r.off+4+n > len(r.buf) {
		panic(ErrShortBlob)
	}
	return r.buf[r.off+4 : r.off+4+n]
}

// Struct descends into a struct-typed field.
func (r Ref) Struct() Accessor {
	if r.typ.Kind != KindStruct {
		panic(fmt.Sprintf("cell: Struct access on %v field", r.typ.Kind))
	}
	return Accessor{st: r.typ.Struct, buf: r.buf[r.off:]}
}

// List returns a reference to a list field.
func (r Ref) List() ListRef {
	if r.typ.Kind != KindList {
		panic(fmt.Sprintf("cell: List access on %v field", r.typ.Kind))
	}
	if r.off+4 > len(r.buf) {
		panic(ErrShortBlob)
	}
	return ListRef{elem: r.typ.Elem, buf: r.buf, off: r.off}
}

// ListRef is a resolved reference to a list value.
type ListRef struct {
	elem *Type
	buf  []byte
	off  int
}

// Len returns the element count.
func (l ListRef) Len() int {
	return int(binary.LittleEndian.Uint32(l.buf[l.off:]))
}

// At returns a reference to element i. For fixed-size elements this is
// O(1); for variable-size elements it walks the preceding elements.
func (l ListRef) At(i int) Ref {
	n := l.Len()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("cell: list index %d out of range [0,%d)", i, n))
	}
	if esz, ok := l.elem.FixedSize(); ok {
		return Ref{typ: l.elem, buf: l.buf, off: l.off + 4 + i*esz}
	}
	off := l.off + 4
	for j := 0; j < i; j++ {
		sz, err := skipValue(l.elem, l.buf, off)
		if err != nil {
			panic(err)
		}
		off += sz
	}
	return Ref{typ: l.elem, buf: l.buf, off: off}
}

// Longs decodes a List<long> into a fresh slice.
func (l ListRef) Longs() []int64 {
	if l.elem.Kind != KindLong {
		panic(fmt.Sprintf("cell: Longs on List<%v>", l.elem))
	}
	n := l.Len()
	out := make([]int64, n)
	base := l.off + 4
	for i := 0; i < n; i++ {
		out[i] = int64(binary.LittleEndian.Uint64(l.buf[base+8*i:]))
	}
	return out
}

// ForEachLong iterates a List<long> without allocating; fn returning
// false stops the iteration. This is the hot path of graph exploration
// (Outlinks.Foreach in the paper's API sketch).
func (l ListRef) ForEachLong(fn func(v int64) bool) {
	if l.elem.Kind != KindLong {
		panic(fmt.Sprintf("cell: ForEachLong on List<%v>", l.elem))
	}
	n := l.Len()
	base := l.off + 4
	for i := 0; i < n; i++ {
		if !fn(int64(binary.LittleEndian.Uint64(l.buf[base+8*i:]))) {
			return
		}
	}
}
