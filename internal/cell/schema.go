// Package cell implements Trinity's cell accessor mechanism (paper §4.3):
// object-oriented, zero-copy access to cells stored as blobs in the memory
// cloud.
//
// A cell accessor "is not a data container, but a data mapper: it maps the
// fields declared in the data structure to the correct memory locations in
// the blob". Fields cannot be reached by naive struct casting because
// variable-length members (strings, lists) make the layout data-dependent,
// so the accessor walks the schema, skipping over preceding fields to
// resolve each offset.
//
// The schema types here are produced by the TSL compiler (internal/tsl)
// from `cell struct` declarations, but can also be built programmatically.
package cell

import (
	"errors"
	"fmt"
)

// Kind enumerates the TSL data types.
type Kind uint8

// The supported kinds. Fixed-size kinds encode little-endian with no
// padding; String is a u32 length followed by UTF-8 bytes; List is a u32
// element count followed by the elements; Struct is its fields in
// declaration order.
const (
	KindInvalid Kind = iota
	KindByte         // 1 byte
	KindBool         // 1 byte, 0 or 1
	KindInt          // 4 bytes, int32
	KindLong         // 8 bytes, int64 (cell IDs)
	KindFloat        // 4 bytes
	KindDouble       // 8 bytes
	KindString       // u32 length + bytes
	KindList         // u32 count + elements
	KindStruct       // fields in order
)

func (k Kind) String() string {
	switch k {
	case KindByte:
		return "byte"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindList:
		return "List"
	case KindStruct:
		return "struct"
	default:
		return "invalid"
	}
}

// Type describes a TSL type.
type Type struct {
	Kind Kind
	// Elem is the element type for KindList.
	Elem *Type
	// Struct is the definition for KindStruct.
	Struct *StructType
}

// Primitive returns the shared Type value for a primitive kind.
func Primitive(k Kind) *Type {
	switch k {
	case KindByte:
		return typeByte
	case KindBool:
		return typeBool
	case KindInt:
		return typeInt
	case KindLong:
		return typeLong
	case KindFloat:
		return typeFloat
	case KindDouble:
		return typeDouble
	case KindString:
		return typeString
	default:
		panic(fmt.Sprintf("cell: %v is not a primitive kind", k))
	}
}

var (
	typeByte   = &Type{Kind: KindByte}
	typeBool   = &Type{Kind: KindBool}
	typeInt    = &Type{Kind: KindInt}
	typeLong   = &Type{Kind: KindLong}
	typeFloat  = &Type{Kind: KindFloat}
	typeDouble = &Type{Kind: KindDouble}
	typeString = &Type{Kind: KindString}
)

// ListOf returns the list type with the given element type.
func ListOf(elem *Type) *Type { return &Type{Kind: KindList, Elem: elem} }

// StructOf returns the struct type for a definition.
func StructOf(st *StructType) *Type { return &Type{Kind: KindStruct, Struct: st} }

// FixedSize returns the encoded size of the type and true if it is the
// same for all values; variable-size types return 0, false.
func (t *Type) FixedSize() (int, bool) {
	switch t.Kind {
	case KindByte, KindBool:
		return 1, true
	case KindInt, KindFloat:
		return 4, true
	case KindLong, KindDouble:
		return 8, true
	case KindString, KindList:
		return 0, false
	case KindStruct:
		total := 0
		for i := range t.Struct.Fields {
			n, ok := t.Struct.Fields[i].Type.FixedSize()
			if !ok {
				return 0, false
			}
			total += n
		}
		return total, true
	default:
		return 0, false
	}
}

func (t *Type) String() string {
	switch t.Kind {
	case KindList:
		return "List<" + t.Elem.String() + ">"
	case KindStruct:
		return t.Struct.Name
	default:
		return t.Kind.String()
	}
}

// Field is one member of a struct.
type Field struct {
	Name string
	Type *Type
	// Attrs holds TSL attributes such as EdgeType and ReferencedCell.
	Attrs map[string]string
}

// StructType is a TSL `struct` or `cell struct` definition.
type StructType struct {
	Name string
	// Cell reports whether this was declared `cell struct` (storable as a
	// top-level cell in the memory cloud).
	Cell bool
	// Attrs holds struct-level attributes such as CellType.
	Attrs  map[string]string
	Fields []Field

	index map[string]int
}

// NewStruct builds a StructType, validating field-name uniqueness.
func NewStruct(name string, cell bool, fields []Field) (*StructType, error) {
	st := &StructType{Name: name, Cell: cell, Fields: fields, index: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("cell: struct %s: field %d has no name", name, i)
		}
		if _, dup := st.index[f.Name]; dup {
			return nil, fmt.Errorf("cell: struct %s: duplicate field %s", name, f.Name)
		}
		if f.Type == nil {
			return nil, fmt.Errorf("cell: struct %s: field %s has no type", name, f.Name)
		}
		st.index[f.Name] = i
	}
	return st, nil
}

// MustStruct is NewStruct that panics on error; for static schemas.
func MustStruct(name string, cell bool, fields []Field) *StructType {
	st, err := NewStruct(name, cell, fields)
	if err != nil {
		panic(err)
	}
	return st
}

// FieldIndex returns the position of the named field, or -1.
func (st *StructType) FieldIndex(name string) int {
	if i, ok := st.index[name]; ok {
		return i
	}
	return -1
}

// ErrNoField reports an unknown field name.
var ErrNoField = errors.New("cell: no such field")

// ErrShortBlob reports a blob too small for the schema.
var ErrShortBlob = errors.New("cell: blob too short for schema")
