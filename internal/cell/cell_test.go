package cell

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"trinity/internal/hash"
)

// movieSchema mirrors the paper's Figure 4 example.
func movieSchema() *StructType {
	return MustStruct("Movie", true, []Field{
		{Name: "Name", Type: Primitive(KindString)},
		{Name: "Year", Type: Primitive(KindInt)},
		{Name: "Rating", Type: Primitive(KindDouble)},
		{Name: "Actors", Type: ListOf(Primitive(KindLong)),
			Attrs: map[string]string{"EdgeType": "SimpleEdge", "ReferencedCell": "Actor"}},
	})
}

func allKindsSchema() *StructType {
	inner := MustStruct("Point", false, []Field{
		{Name: "X", Type: Primitive(KindInt)},
		{Name: "Y", Type: Primitive(KindInt)},
	})
	return MustStruct("Everything", true, []Field{
		{Name: "B", Type: Primitive(KindByte)},
		{Name: "Flag", Type: Primitive(KindBool)},
		{Name: "I", Type: Primitive(KindInt)},
		{Name: "L", Type: Primitive(KindLong)},
		{Name: "F", Type: Primitive(KindFloat)},
		{Name: "D", Type: Primitive(KindDouble)},
		{Name: "S", Type: Primitive(KindString)},
		{Name: "P", Type: StructOf(inner)},
		{Name: "Names", Type: ListOf(Primitive(KindString))},
		{Name: "Ids", Type: ListOf(Primitive(KindLong))},
	})
}

func TestEncodeAccessRoundTrip(t *testing.T) {
	st := movieSchema()
	blob, err := Encode(st, map[string]Value{
		"Name":   "The Matrix",
		"Year":   1999,
		"Rating": 8.7,
		"Actors": []int64{101, 102, 103},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAccessor(st, blob)
	if got := a.MustField("Name").Str(); got != "The Matrix" {
		t.Fatalf("Name = %q", got)
	}
	if got := a.MustField("Year").Int(); got != 1999 {
		t.Fatalf("Year = %d", got)
	}
	if got := a.MustField("Rating").Double(); got != 8.7 {
		t.Fatalf("Rating = %v", got)
	}
	actors := a.MustField("Actors").List()
	if actors.Len() != 3 {
		t.Fatalf("Actors len = %d", actors.Len())
	}
	if got := actors.Longs(); !reflect.DeepEqual(got, []int64{101, 102, 103}) {
		t.Fatalf("Actors = %v", got)
	}
	if got := actors.At(1).Long(); got != 102 {
		t.Fatalf("Actors[1] = %d", got)
	}
}

func TestAllKindsRoundTrip(t *testing.T) {
	st := allKindsSchema()
	in := map[string]Value{
		"B":     byte(7),
		"Flag":  true,
		"I":     int32(-42),
		"L":     int64(1) << 60,
		"F":     float32(3.5),
		"D":     math.Pi,
		"S":     "héllo, 世界",
		"P":     map[string]Value{"X": int32(1), "Y": int32(-2)},
		"Names": []Value{"a", "", "ccc"},
		"Ids":   []int64{-1, 0, 1},
	}
	blob, err := Encode(st, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(st, blob)
	if err != nil {
		t.Fatal(err)
	}
	if out["B"].(byte) != 7 || out["Flag"].(bool) != true {
		t.Fatal("byte/bool mismatch")
	}
	if out["I"].(int32) != -42 || out["L"].(int64) != 1<<60 {
		t.Fatal("int/long mismatch")
	}
	if out["F"].(float32) != 3.5 || out["D"].(float64) != math.Pi {
		t.Fatal("float/double mismatch")
	}
	if out["S"].(string) != "héllo, 世界" {
		t.Fatal("string mismatch")
	}
	p := out["P"].(map[string]Value)
	if p["X"].(int32) != 1 || p["Y"].(int32) != -2 {
		t.Fatal("nested struct mismatch")
	}
	names := out["Names"].([]Value)
	if len(names) != 3 || names[0].(string) != "a" || names[2].(string) != "ccc" {
		t.Fatalf("Names = %v", names)
	}
	if !reflect.DeepEqual(out["Ids"].([]int64), []int64{-1, 0, 1}) {
		t.Fatal("Ids mismatch")
	}
}

func TestZeroValuesForMissingFields(t *testing.T) {
	st := allKindsSchema()
	blob, err := Encode(st, map[string]Value{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAccessor(st, blob)
	if a.MustField("B").Byte() != 0 || a.MustField("Flag").Bool() {
		t.Fatal("missing fields not zero")
	}
	if a.MustField("S").Str() != "" {
		t.Fatal("missing string not empty")
	}
	if a.MustField("Ids").List().Len() != 0 {
		t.Fatal("missing list not empty")
	}
}

func TestInPlaceWrites(t *testing.T) {
	st := movieSchema()
	blob, _ := Encode(st, map[string]Value{
		"Name": "X", "Year": 2000, "Rating": 5.0, "Actors": []int64{1, 2},
	})
	a := NewAccessor(st, blob)
	// Fixed-size fields after a variable field write in place correctly.
	a.MustField("Year").SetInt(2024)
	a.MustField("Rating").SetDouble(9.9)
	a.MustField("Actors").List().At(0).SetLong(77)
	if a.MustField("Year").Int() != 2024 {
		t.Fatal("SetInt lost")
	}
	if a.MustField("Rating").Double() != 9.9 {
		t.Fatal("SetDouble lost")
	}
	if a.MustField("Actors").List().At(0).Long() != 77 {
		t.Fatal("list SetLong lost")
	}
	// Name must be untouched by the in-place writes.
	if a.MustField("Name").Str() != "X" {
		t.Fatal("neighboring field corrupted")
	}
}

func TestVariableListOfStrings(t *testing.T) {
	st := MustStruct("T", false, []Field{
		{Name: "Ss", Type: ListOf(Primitive(KindString))},
		{Name: "After", Type: Primitive(KindLong)},
	})
	blob, err := Encode(st, map[string]Value{
		"Ss":    []Value{"aa", "b", "", "dddd"},
		"After": int64(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAccessor(st, blob)
	l := a.MustField("Ss").List()
	want := []string{"aa", "b", "", "dddd"}
	for i, w := range want {
		if got := l.At(i).Str(); got != w {
			t.Fatalf("Ss[%d] = %q, want %q", i, got, w)
		}
	}
	// Field after a variable-length list resolves correctly.
	if got := a.MustField("After").Long(); got != 99 {
		t.Fatalf("After = %d", got)
	}
}

func TestForEachLong(t *testing.T) {
	st := movieSchema()
	blob, _ := Encode(st, map[string]Value{"Actors": []int64{5, 6, 7, 8}})
	a := NewAccessor(st, blob)
	var got []int64
	a.MustField("Actors").List().ForEachLong(func(v int64) bool {
		got = append(got, v)
		return v != 7 // early stop after 7
	})
	if !reflect.DeepEqual(got, []int64{5, 6, 7}) {
		t.Fatalf("ForEachLong visited %v", got)
	}
}

func TestUnknownField(t *testing.T) {
	a := NewAccessor(movieSchema(), nil)
	if _, err := a.Field("Nope"); !errors.Is(err, ErrNoField) {
		t.Fatalf("err = %v, want ErrNoField", err)
	}
}

func TestShortBlobDetected(t *testing.T) {
	st := movieSchema()
	blob, _ := Encode(st, map[string]Value{"Name": "ABCDEFGH", "Actors": []int64{1}})
	for _, cut := range []int{0, 3, 7, len(blob) - 1} {
		a := NewAccessor(st, blob[:cut])
		if _, err := a.Size(); !errors.Is(err, ErrShortBlob) {
			t.Fatalf("cut %d: Size err = %v, want ErrShortBlob", cut, err)
		}
	}
	if _, err := Decode(st, blob[:5]); !errors.Is(err, ErrShortBlob) {
		t.Fatalf("Decode short = %v", err)
	}
}

func TestWrongKindPanics(t *testing.T) {
	st := movieSchema()
	blob, _ := Encode(st, map[string]Value{"Name": "x"})
	a := NewAccessor(st, blob)
	defer func() {
		if recover() == nil {
			t.Fatal("Long() on string field should panic")
		}
	}()
	a.MustField("Name").Long()
}

func TestFixedSize(t *testing.T) {
	if n, ok := Primitive(KindLong).FixedSize(); !ok || n != 8 {
		t.Fatalf("long: %d %v", n, ok)
	}
	if _, ok := Primitive(KindString).FixedSize(); ok {
		t.Fatal("string should be variable")
	}
	fixed := MustStruct("F", false, []Field{
		{Name: "A", Type: Primitive(KindInt)},
		{Name: "B", Type: Primitive(KindDouble)},
	})
	if n, ok := StructOf(fixed).FixedSize(); !ok || n != 12 {
		t.Fatalf("fixed struct: %d %v", n, ok)
	}
	if _, ok := StructOf(movieSchema()).FixedSize(); ok {
		t.Fatal("movie should be variable")
	}
	if _, ok := ListOf(Primitive(KindLong)).FixedSize(); ok {
		t.Fatal("lists are variable")
	}
}

func TestDuplicateFieldRejected(t *testing.T) {
	_, err := NewStruct("Bad", false, []Field{
		{Name: "A", Type: Primitive(KindInt)},
		{Name: "A", Type: Primitive(KindInt)},
	})
	if err == nil {
		t.Fatal("duplicate field accepted")
	}
}

func TestTailLongList(t *testing.T) {
	if !TailLongList(movieSchema()) {
		t.Fatal("Movie ends with List<long>")
	}
	st := MustStruct("T", false, []Field{{Name: "A", Type: Primitive(KindInt)}})
	if TailLongList(st) {
		t.Fatal("int tail misdetected")
	}
	if TailLongList(MustStruct("E", false, nil)) {
		t.Fatal("empty struct misdetected")
	}
}

func TestBumpTailListCount(t *testing.T) {
	st := movieSchema()
	blob, _ := Encode(st, map[string]Value{
		"Name": "M", "Actors": []int64{1, 2},
	})
	enc, err := BumpTailListCount(st, blob, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the trunk append.
	blob = append(blob, enc[:]...)
	a := NewAccessor(st, blob)
	got := a.MustField("Actors").List().Longs()
	if !reflect.DeepEqual(got, []int64{1, 2, 42}) {
		t.Fatalf("after bump: %v", got)
	}
	// Repeated bumps keep working (the O(1) adjacency growth path).
	for i := int64(0); i < 10; i++ {
		enc, err := BumpTailListCount(st, blob, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, enc[:]...)
	}
	a = NewAccessor(st, blob)
	l := a.MustField("Actors").List()
	if l.Len() != 13 || l.At(12).Long() != 109 {
		t.Fatalf("after 10 bumps: len=%d last=%d", l.Len(), l.At(12).Long())
	}
}

func TestEncodeTypeErrors(t *testing.T) {
	st := movieSchema()
	cases := []map[string]Value{
		{"Name": 42},                 // int for string
		{"Year": "nope"},             // string for int
		{"Actors": "nope"},           // string for list
		{"Actors": []Value{"x"}},     // string elems for List<long>
		{"Rating": []int64{1, 2, 3}}, // list for double
	}
	for i, in := range cases {
		if _, err := Encode(st, in); err == nil {
			t.Fatalf("case %d: bad value accepted", i)
		}
	}
}

func TestEncodeDecodePropertyLongs(t *testing.T) {
	// Property: Encode∘Decode is the identity for arbitrary movie cells.
	st := movieSchema()
	f := func(seed uint64) bool {
		rng := hash.NewRNG(seed)
		nameLen := rng.Intn(50)
		name := make([]byte, nameLen)
		for i := range name {
			name[i] = byte('a' + rng.Intn(26))
		}
		ids := make([]int64, rng.Intn(100))
		for i := range ids {
			ids[i] = int64(rng.Next())
		}
		in := map[string]Value{
			"Name":   string(name),
			"Year":   int32(rng.Next()),
			"Rating": rng.Float64() * 10,
			"Actors": ids,
		}
		blob, err := Encode(st, in)
		if err != nil {
			return false
		}
		out, err := Decode(st, blob)
		if err != nil {
			return false
		}
		if out["Name"].(string) != in["Name"].(string) {
			return false
		}
		if out["Year"].(int32) != in["Year"].(int32) {
			return false
		}
		if out["Rating"].(float64) != in["Rating"].(float64) {
			return false
		}
		gotIds := out["Actors"].([]int64)
		if len(gotIds) != len(ids) {
			return false
		}
		for i := range ids {
			if gotIds[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorZeroCopySharing(t *testing.T) {
	// The accessor must read through to the same memory, not a copy.
	st := movieSchema()
	blob, _ := Encode(st, map[string]Value{"Name": "abc", "Actors": []int64{1}})
	a := NewAccessor(st, blob)
	nb := a.MustField("Name").StrBytes()
	nb[0] = 'Z'
	if a.MustField("Name").Str() != "Zbc" {
		t.Fatal("StrBytes is not zero-copy")
	}
	if !bytes.Contains(blob, []byte("Zbc")) {
		t.Fatal("write did not reach the blob")
	}
}

func BenchmarkAccessorFixedField(b *testing.B) {
	st := movieSchema()
	blob, _ := Encode(st, map[string]Value{"Name": "The Matrix", "Year": 1999, "Actors": []int64{1, 2, 3}})
	a := NewAccessor(st, blob)
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += a.MustField("Year").Int()
	}
	_ = sink
}

func BenchmarkAccessorForEachLong(b *testing.B) {
	st := movieSchema()
	ids := make([]int64, 100)
	blob, _ := Encode(st, map[string]Value{"Actors": ids})
	a := NewAccessor(st, blob)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		a.MustField("Actors").List().ForEachLong(func(v int64) bool { sink += v; return true })
	}
	_ = sink
}

func BenchmarkEncode(b *testing.B) {
	st := movieSchema()
	in := map[string]Value{"Name": "The Matrix", "Year": 1999, "Actors": []int64{1, 2, 3, 4, 5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(st, in); err != nil {
			b.Fatal(err)
		}
	}
}
