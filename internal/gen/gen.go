// Package gen provides the synthetic graph generators used by the paper's
// evaluation: R-MAT graphs (Figures 12(b)-(d), 13), scale-free power-law
// graphs with the degree distribution P(k) ∝ c·k^(-γ) quoted in §5.4
// (c = 1.16, γ = 2.16), Facebook-like social graphs with person names for
// the people-search experiment (Figure 12(a)), and laptop-scale stand-ins
// for the Wordnet and US-patent graphs of Figure 14(a).
//
// All generators are deterministic given a seed, and emit edges through a
// callback so callers can stream into a graph.Builder without holding a
// second copy of the edge list.
package gen

import (
	"fmt"
	"math"

	"trinity/internal/graph"
	"trinity/internal/hash"
)

// EmitFunc receives one generated edge.
type EmitFunc func(src, dst uint64)

// RMATConfig parameterizes an R-MAT generator (Chakrabarti et al., SDM'04,
// cited as [12] in the paper).
type RMATConfig struct {
	// Scale is log2 of the node count.
	Scale uint
	// AvgDegree is the average out-degree; the paper's web-graph
	// experiments use 13.
	AvgDegree int
	// A, B, C are the recursive quadrant probabilities (D = 1-A-B-C).
	// Zero values default to the standard (0.57, 0.19, 0.19).
	A, B, C float64
	// Seed makes the graph reproducible.
	Seed uint64
}

// RMAT generates an R-MAT graph, emitting Scale·AvgDegree·2^Scale edges.
// Self-loops are retargeted; duplicate edges may occur, as in the
// reference generator.
func RMAT(cfg RMATConfig, emit EmitFunc) {
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19
	}
	n := uint64(1) << cfg.Scale
	edges := uint64(cfg.AvgDegree) * n
	rng := hash.NewRNG(cfg.Seed)
	ab := cfg.A + cfg.B
	abc := ab + cfg.C
	for e := uint64(0); e < edges; e++ {
		var src, dst uint64
		for bit := uint(0); bit < cfg.Scale; bit++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: no bits set
			case r < ab:
				dst |= 1 << bit
			case r < abc:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		if src == dst {
			dst = (dst + 1) % n
		}
		emit(src, dst)
	}
}

// PowerLawConfig parameterizes a Chung-Lu style scale-free generator.
type PowerLawConfig struct {
	// Nodes is the node count.
	Nodes int
	// AvgDegree is the average out-degree.
	AvgDegree int
	// Gamma is the power-law exponent; the paper's example uses 2.16.
	Gamma float64
	// Seed makes the graph reproducible.
	Seed uint64
}

// PowerLaw generates a directed scale-free graph: both endpoints of each
// edge are drawn from a weight distribution w_i ∝ (i+1)^(-1/(γ-1)),
// which yields degrees distributed as P(k) ∝ k^(-γ). Nodes·AvgDegree
// edges are emitted; self-loops are retargeted.
func PowerLaw(cfg PowerLawConfig, emit EmitFunc) {
	if cfg.Gamma == 0 {
		cfg.Gamma = 2.16
	}
	n := cfg.Nodes
	cum := cumulativeWeights(n, cfg.Gamma)
	rng := hash.NewRNG(cfg.Seed)
	edges := n * cfg.AvgDegree
	for e := 0; e < edges; e++ {
		src := sampleCum(cum, rng)
		dst := sampleCum(cum, rng)
		if src == dst {
			dst = (dst + 1) % n
		}
		emit(uint64(src), uint64(dst))
	}
}

// cumulativeWeights builds the cumulative Chung-Lu weight table.
func cumulativeWeights(n int, gamma float64) []float64 {
	alpha := 1 / (gamma - 1)
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -alpha)
		cum[i] = total
	}
	return cum
}

// sampleCum draws an index proportional to the weight table.
func sampleCum(cum []float64, rng *hash.RNG) int {
	target := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UniformConfig parameterizes a uniform random digraph.
type UniformConfig struct {
	Nodes     int
	AvgDegree int
	Seed      uint64
}

// Uniform generates a directed graph with Nodes·AvgDegree edges whose
// endpoints are uniform; degree concentrates around AvgDegree.
func Uniform(cfg UniformConfig, emit EmitFunc) {
	rng := hash.NewRNG(cfg.Seed)
	edges := cfg.Nodes * cfg.AvgDegree
	for e := 0; e < edges; e++ {
		src := rng.Intn(cfg.Nodes)
		dst := rng.Intn(cfg.Nodes)
		if src == dst {
			dst = (dst + 1) % cfg.Nodes
		}
		emit(uint64(src), uint64(dst))
	}
}

// firstNames is the name pool for social graphs. "David" is present
// because the paper's running example searches for Davids within 3 hops.
var firstNames = []string{
	"David", "Alice", "Bob", "Carol", "Daniel", "Emma", "Frank", "Grace",
	"Henry", "Ivy", "Jack", "Karen", "Liam", "Mia", "Noah", "Olivia",
	"Peter", "Quinn", "Rachel", "Sam", "Tina", "Uma", "Victor", "Wendy",
	"Xavier", "Yara", "Zoe", "Aaron", "Bella", "Caleb", "Diana", "Ethan",
	"Fiona", "George", "Hanna", "Isaac", "Julia", "Kevin", "Laura", "Mark",
	"Nina", "Oscar", "Paula", "Ray", "Sara", "Tom", "Ursula", "Vera",
	"Will", "Xena", "Yusuf", "Zach", "Amber", "Brian", "Clara", "Derek",
	"Elena", "Felix", "Gina", "Hugo", "Irene", "Jonas", "Kyle", "Lena",
}

// NameOf returns the deterministic name of person i in a social graph:
// a first name from the pool plus a numeric surname.
func NameOf(i uint64) string {
	return fmt.Sprintf("%s %d", firstNames[hash.Mix64(i)%uint64(len(firstNames))], i)
}

// FirstNameOf returns just the first name of person i.
func FirstNameOf(i uint64) string {
	return firstNames[hash.Mix64(i)%uint64(len(firstNames))]
}

// SocialConfig parameterizes a Facebook-like social graph.
type SocialConfig struct {
	// People is the number of persons.
	People int
	// AvgDegree is the average friend count (Facebook's quoted average
	// was 130; Figure 12(a) sweeps 10..200).
	AvgDegree int
	// Seed makes the graph reproducible.
	Seed uint64
}

// BuildSocial generates an undirected power-law friendship graph whose
// nodes carry person names (Label = interned first name for fast
// filtering, Name = full name) and loads it into a builder.
func BuildSocial(cfg SocialConfig, b *graph.Builder) {
	for i := 0; i < cfg.People; i++ {
		id := uint64(i)
		b.AddNode(id, int64(hash.String(FirstNameOf(id))), NameOf(id))
	}
	PowerLaw(PowerLawConfig{
		Nodes:     cfg.People,
		AvgDegree: cfg.AvgDegree / 2, // undirected: each edge adds 2 to degree
		Gamma:     2.16,
		Seed:      cfg.Seed,
	}, func(u, v uint64) { b.AddEdge(u, v) })
}

// BuildRMAT loads an R-MAT graph into a builder with node labels drawn
// uniformly from [0, labels) — labeled graphs drive subgraph matching.
func BuildRMAT(cfg RMATConfig, labels int, b *graph.Builder) {
	n := uint64(1) << cfg.Scale
	rng := hash.NewRNG(cfg.Seed + 1)
	for i := uint64(0); i < n; i++ {
		label := int64(0)
		if labels > 0 {
			label = int64(rng.Intn(labels))
		}
		b.AddNode(i, label, "")
	}
	RMAT(cfg, func(u, v uint64) { b.AddEdge(u, v) })
}

// BuildUniform loads a uniform graph with uniform labels into a builder.
func BuildUniform(cfg UniformConfig, labels int, b *graph.Builder) {
	rng := hash.NewRNG(cfg.Seed + 1)
	for i := 0; i < cfg.Nodes; i++ {
		label := int64(0)
		if labels > 0 {
			label = int64(rng.Intn(labels))
		}
		b.AddNode(uint64(i), label, "")
	}
	Uniform(cfg, func(u, v uint64) { b.AddEdge(u, v) })
}

// ClusteredConfig parameterizes a community-structured social graph.
type ClusteredConfig struct {
	// Communities is the number of dense clusters.
	Communities int
	// PeoplePerCommunity is the cluster size.
	PeoplePerCommunity int
	// IntraDegree is the average degree inside a community.
	IntraDegree int
	// Bridges is the number of extra random inter-community edges on top
	// of the topology; bridge endpoints acquire high betweenness without
	// especially high degree.
	Bridges int
	// Ring connects community c to community c+1 (one bridge each),
	// giving the graph a large diameter: shortest paths between far
	// communities thread through many bridges, so betweenness-central
	// vertices dominate triangulation quality.
	Ring bool
	// DenseSatellites adds this many extra-dense communities hanging off
	// the ring by a single edge each. Their members have the highest
	// degrees in the graph but almost no betweenness (nothing routes
	// through a cul-de-sac), which is exactly what makes largest-degree
	// landmark selection fail in Figure 8(b).
	DenseSatellites int
	// Seed makes the graph reproducible.
	Seed uint64
}

// BuildClustered generates an undirected social graph with strong
// community structure: dense power-law communities connected by a few
// bridge edges. On such graphs degree centrality is a poor landmark
// selector (the highest-degree vertices sit deep inside communities)
// while betweenness finds the bridges — the regime Figure 8(b) probes.
func BuildClustered(cfg ClusteredConfig, b *graph.Builder) {
	rng := hash.NewRNG(cfg.Seed)
	total := (cfg.Communities + cfg.DenseSatellites) * cfg.PeoplePerCommunity
	for i := 0; i < total; i++ {
		id := uint64(i)
		b.AddNode(id, int64(hash.String(FirstNameOf(id))), NameOf(id))
	}
	// Dense intra-community structure; satellites get several times the
	// internal degree.
	for c := 0; c < cfg.Communities+cfg.DenseSatellites; c++ {
		base := c * cfg.PeoplePerCommunity
		sub := hash.NewRNG(cfg.Seed + uint64(c) + 1)
		cum := cumulativeWeights(cfg.PeoplePerCommunity, 2.16)
		deg := cfg.IntraDegree
		if c >= cfg.Communities {
			deg *= 6
		}
		edges := cfg.PeoplePerCommunity * deg / 2
		for e := 0; e < edges; e++ {
			u := sampleCum(cum, sub)
			v := sampleCum(cum, sub)
			if u == v {
				v = (v + 1) % cfg.PeoplePerCommunity
			}
			b.AddEdge(uint64(base+u), uint64(base+v))
		}
	}
	// Bridge anchors sit away from the power-law head (offset >= half the
	// community) so they have modest degree but high betweenness.
	anchor := func(c int) uint64 {
		o := cfg.PeoplePerCommunity/2 + rng.Intn(cfg.PeoplePerCommunity/2)
		return uint64(c*cfg.PeoplePerCommunity + o)
	}
	if cfg.Ring {
		for c := 0; c < cfg.Communities; c++ {
			b.AddEdge(anchor(c), anchor((c+1)%cfg.Communities))
		}
	}
	for e := 0; e < cfg.Bridges; e++ {
		c1 := rng.Intn(cfg.Communities)
		c2 := rng.Intn(cfg.Communities)
		if c1 == c2 {
			c2 = (c2 + 1) % cfg.Communities
		}
		b.AddEdge(anchor(c1), anchor(c2))
	}
	// Each satellite hangs off one ring community by a single edge.
	for sidx := 0; sidx < cfg.DenseSatellites; sidx++ {
		s := cfg.Communities + sidx
		host := sidx * cfg.Communities / max(cfg.DenseSatellites, 1) % cfg.Communities
		b.AddEdge(anchor(s), anchor(host))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BuildWordnetLike generates a stand-in for the Wordnet lexical graph of
// Figure 14(a): a dense small-world graph (ring lattice plus random
// chords) with a small label alphabet playing the role of synset types.
func BuildWordnetLike(nodes int, seed uint64, b *graph.Builder) {
	rng := hash.NewRNG(seed)
	const labelAlphabet = 25 // noun/verb/adj/... synset categories
	for i := 0; i < nodes; i++ {
		b.AddNode(uint64(i), int64(rng.Intn(labelAlphabet)), "")
	}
	for i := 0; i < nodes; i++ {
		// Ring lattice neighbors (hypernym chains)...
		b.AddEdge(uint64(i), uint64((i+1)%nodes))
		b.AddEdge(uint64(i), uint64((i+2)%nodes))
		// ...plus random semantic relations.
		for k := 0; k < 2; k++ {
			j := rng.Intn(nodes)
			if j != i {
				b.AddEdge(uint64(i), uint64(j))
			}
		}
	}
}

// BuildPatentLike generates a stand-in for the US-patent citation network
// of Figure 14(a): a sparse near-DAG where node i cites earlier nodes
// with preferential attachment, labeled by a synthetic patent class.
func BuildPatentLike(nodes int, seed uint64, b *graph.Builder) {
	rng := hash.NewRNG(seed)
	const classes = 50
	for i := 0; i < nodes; i++ {
		b.AddNode(uint64(i), int64(rng.Intn(classes)), "")
	}
	for i := 1; i < nodes; i++ {
		cites := 3 + rng.Intn(5) // patents cite a handful of priors
		for k := 0; k < cites; k++ {
			// Preferential attachment to earlier patents: squaring the
			// uniform variate biases toward low (old, popular) IDs.
			f := rng.Float64()
			j := int(f * f * float64(i))
			if j != i {
				b.AddEdge(uint64(i), uint64(j))
			}
		}
	}
}
