package gen

import (
	"math"
	"sort"
	"strings"
	"testing"

	"trinity/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	collect := func() [][2]uint64 {
		var out [][2]uint64
		RMAT(RMATConfig{Scale: 8, AvgDegree: 4, Seed: 7}, func(u, v uint64) {
			out = append(out, [2]uint64{u, v})
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != 4*256 {
		t.Fatalf("edges = %d, want %d", len(a), 4*256)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RMAT not deterministic")
		}
	}
}

func TestRMATProperties(t *testing.T) {
	n := uint64(1) << 10
	degree := make([]int, n)
	edges := 0
	RMAT(RMATConfig{Scale: 10, AvgDegree: 8, Seed: 1}, func(u, v uint64) {
		if u >= n || v >= n {
			t.Fatalf("edge (%d,%d) out of range", u, v)
		}
		if u == v {
			t.Fatal("self loop emitted")
		}
		degree[u]++
		edges++
	})
	if edges != int(n)*8 {
		t.Fatalf("edges = %d", edges)
	}
	// R-MAT skew: the max degree must far exceed the average.
	max := 0
	for _, d := range degree {
		if d > max {
			max = d
		}
	}
	if max < 8*4 {
		t.Fatalf("R-MAT insufficiently skewed: max degree %d", max)
	}
}

func TestPowerLawDegreeDistribution(t *testing.T) {
	const n = 20000
	const avg = 10
	degree := make([]int, n)
	edges := 0
	PowerLaw(PowerLawConfig{Nodes: n, AvgDegree: avg, Gamma: 2.16, Seed: 3}, func(u, v uint64) {
		degree[u]++
		edges++
		if u == v {
			t.Fatal("self loop")
		}
	})
	if edges != n*avg {
		t.Fatalf("edges = %d", edges)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degree)))
	// Hub structure: the top node must dwarf the average...
	if degree[0] < avg*20 {
		t.Fatalf("no hubs: top degree %d", degree[0])
	}
	// ...and the paper's 20/80 hub property should hold approximately:
	// the top 20% of nodes send a large majority of edges.
	top20 := 0
	for _, d := range degree[:n/5] {
		top20 += d
	}
	if frac := float64(top20) / float64(edges); frac < 0.6 {
		t.Fatalf("top 20%% of nodes only source %.0f%% of edges", frac*100)
	}
}

func TestPowerLawTailExponent(t *testing.T) {
	// Log-log regression of the degree CCDF should give a slope telling
	// of a heavy tail (roughly 1-γ for the CCDF; allow a wide band).
	const n = 30000
	degree := make(map[int]int)
	PowerLaw(PowerLawConfig{Nodes: n, AvgDegree: 10, Seed: 5}, func(u, v uint64) {
		degree[int(u)]++
	})
	counts := map[int]int{} // degree -> #nodes
	for _, d := range degree {
		counts[d]++
	}
	// Collect (log k, log count) for degrees with decent support.
	var xs, ys []float64
	for k, c := range counts {
		if k >= 5 && c >= 5 {
			xs = append(xs, math.Log(float64(k)))
			ys = append(ys, math.Log(float64(c)))
		}
	}
	if len(xs) < 5 {
		t.Skip("not enough degree diversity to regress")
	}
	slope := regressSlope(xs, ys)
	if slope > -1.0 || slope < -4.0 {
		t.Fatalf("degree distribution slope %.2f outside heavy-tail band", slope)
	}
}

func regressSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

func TestUniform(t *testing.T) {
	const n = 5000
	degree := make([]int, n)
	Uniform(UniformConfig{Nodes: n, AvgDegree: 6, Seed: 2}, func(u, v uint64) {
		degree[u]++
		if u == v {
			t.Fatal("self loop")
		}
	})
	// Uniform degrees concentrate: nobody should have 10x the average.
	for i, d := range degree {
		if d > 60 {
			t.Fatalf("node %d has degree %d in a uniform graph", i, d)
		}
	}
}

func TestNames(t *testing.T) {
	if NameOf(5) != NameOf(5) {
		t.Fatal("NameOf not deterministic")
	}
	if !strings.HasPrefix(NameOf(5), FirstNameOf(5)) {
		t.Fatal("NameOf does not start with FirstNameOf")
	}
	// The pool must include David (the paper's query) and produce it.
	foundDavid := false
	for i := uint64(0); i < 1000; i++ {
		if FirstNameOf(i) == "David" {
			foundDavid = true
			break
		}
	}
	if !foundDavid {
		t.Fatal("no Davids in the first 1000 people")
	}
}

func TestBuildSocial(t *testing.T) {
	b := graph.NewBuilder(false)
	BuildSocial(SocialConfig{People: 2000, AvgDegree: 10, Seed: 1}, b)
	if b.NodeCount() != 2000 {
		t.Fatalf("people = %d", b.NodeCount())
	}
}

func TestBuildersPopulateLabels(t *testing.T) {
	b := graph.NewBuilder(true)
	BuildRMAT(RMATConfig{Scale: 6, AvgDegree: 4, Seed: 1}, 10, b)
	if b.NodeCount() != 64 {
		t.Fatalf("nodes = %d", b.NodeCount())
	}
	b2 := graph.NewBuilder(true)
	BuildUniform(UniformConfig{Nodes: 100, AvgDegree: 4, Seed: 1}, 5, b2)
	if b2.NodeCount() != 100 {
		t.Fatalf("nodes = %d", b2.NodeCount())
	}
}

func TestBuildWordnetLike(t *testing.T) {
	b := graph.NewBuilder(true)
	BuildWordnetLike(1000, 1, b)
	if b.NodeCount() != 1000 {
		t.Fatalf("nodes = %d", b.NodeCount())
	}
}

func TestBuildPatentLike(t *testing.T) {
	b := graph.NewBuilder(true)
	BuildPatentLike(1000, 1, b)
	if b.NodeCount() != 1000 {
		t.Fatalf("nodes = %d", b.NodeCount())
	}
}

func BenchmarkRMATGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		count := 0
		RMAT(RMATConfig{Scale: 14, AvgDegree: 8, Seed: uint64(i)}, func(u, v uint64) { count++ })
	}
}

func BenchmarkPowerLawGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		count := 0
		PowerLaw(PowerLawConfig{Nodes: 16384, AvgDegree: 8, Seed: uint64(i)}, func(u, v uint64) { count++ })
	}
}
