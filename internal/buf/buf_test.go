package buf

import (
	"bytes"
	"sync"
	"testing"
)

func TestClassRounding(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {1024, 1024}, {1025, 2048},
		{MaxPooled, MaxPooled},
	}
	for _, c := range cases {
		l := Get(c.n)
		if l.Len() != c.n || l.Cap() != c.wantCap {
			t.Errorf("Get(%d): len=%d cap=%d, want len=%d cap=%d", c.n, l.Len(), l.Cap(), c.n, c.wantCap)
		}
		l.Release()
	}
}

func TestOversizeUnpooled(t *testing.T) {
	before := Stats().Oversize
	l := Get(MaxPooled + 1)
	if l.Len() != MaxPooled+1 {
		t.Fatalf("oversize len = %d", l.Len())
	}
	if Stats().Oversize != before+1 {
		t.Fatalf("oversize counter not bumped")
	}
	l.Release()
}

// TestDoubleReleasePanics: releasing more references than held must fail
// loudly and deterministically — a silent double release would recycle a
// buffer out from under a live reader.
func TestDoubleReleasePanics(t *testing.T) {
	l := Get(32)
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	l.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	l := Get(32)
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final Release did not panic")
		}
	}()
	l.Retain()
}

// TestRetainAcrossGoroutines: a retained lease is safe to read from other
// goroutines, and the backing array is not recycled until every holder
// releases. Run with -race.
func TestRetainAcrossGoroutines(t *testing.T) {
	const goroutines = 8
	const rounds = 200
	for r := 0; r < rounds; r++ {
		l := Get(128)
		b := l.Bytes()
		for i := range b {
			b[i] = byte(r)
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			l.Retain()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer l.Release()
				if !bytes.Equal(l.Bytes(), bytes.Repeat([]byte{byte(r)}, 128)) {
					t.Error("retained lease observed foreign bytes")
				}
			}()
		}
		l.Release() // creator's reference; holders keep the buffer alive
		wg.Wait()
	}
}

func TestPoisonScribblesOnFinalRelease(t *testing.T) {
	l := Get(64)
	backing := l.Bytes()[:l.Cap()]
	for i := range backing {
		backing[i] = 0x11
	}
	l.Poison()
	l.Retain()
	l.Release()
	if backing[0] != 0x11 {
		t.Fatal("poison scribbled before the final release")
	}
	l.Release()
	for i, v := range backing {
		if v != poisonByte {
			t.Fatalf("backing[%d] = %#x after poisoned final release, want %#x", i, v, poisonByte)
		}
	}
}

func TestAppendRelocates(t *testing.T) {
	l := Get(0)
	payload := bytes.Repeat([]byte{0xAB}, 100)
	for i := 0; i < 50; i++ {
		l = l.Append(payload)
	}
	want := bytes.Repeat([]byte{0xAB}, 100*50)
	if !bytes.Equal(l.Bytes(), want) {
		t.Fatal("Append lost or corrupted bytes across relocations")
	}
	l.Release()
}

func TestAppendVariadic(t *testing.T) {
	l := Sized(1, 64)
	l.Bytes()[0] = 0x7F
	l = l.Append([]byte{1, 2}, []byte{3, 4, 5})
	if !bytes.Equal(l.Bytes(), []byte{0x7F, 1, 2, 3, 4, 5}) {
		t.Fatalf("Append variadic = %v", l.Bytes())
	}
	l.Release()
}

func TestWrapUnpooled(t *testing.T) {
	b := []byte("hello")
	l := Wrap(b)
	if &l.Bytes()[0] != &b[0] {
		t.Fatal("Wrap copied instead of aliasing")
	}
	l.Release()
}

func TestSetLen(t *testing.T) {
	l := Get(10)
	l.SetLen(4)
	if l.Len() != 4 {
		t.Fatalf("SetLen(4): len=%d", l.Len())
	}
	l.SetLen(l.Cap())
	if l.Len() != l.Cap() {
		t.Fatalf("SetLen(cap): len=%d", l.Len())
	}
	l.Release()
}

func BenchmarkGetRelease(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l := Get(4096)
			l.Release()
		}
	})
}
