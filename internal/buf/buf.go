// Package buf provides size-classed, reference-counted buffer leases for
// the zero-copy read path. Trinity's core bet (paper §3) is that blob
// storage beats runtime objects because it sidesteps per-cell allocation
// and GC pressure; a reproduction that re-allocates a fresh slice on every
// trunk read, frame encode, and transport hop forfeits that bet. A Lease
// is a pooled byte buffer with an explicit reference count: layers hand
// buffers to each other by transferring or retaining references instead of
// copying, and the final Release returns the backing array to a per-size-
// class pool.
//
// Lifecycle contract:
//
//   - Get/Sized/Wrap return a lease holding one reference, owned by the
//     caller.
//   - Retain adds a reference; every reference is settled by exactly one
//     Release. Passing a lease to an API documented as "consuming" it
//     transfers one reference.
//   - Release of the last reference recycles the backing array; the bytes
//     must not be touched afterward. Releasing more times than retained
//     panics deterministically (the count goes negative), which is how the
//     race suite pins down ownership bugs.
//   - Poison marks the lease so the final Release scribbles 0xDB over the
//     backing array before recycling it: any component that kept an alias
//     past its last reference reads garbage (and races with the scribble
//     under -race). The chaos transport poisons every frame in
//     PoisonFrames mode.
//
// Backing arrays come from power-of-two size classes (64 B … 1 MiB), each
// with its own sync.Pool; larger requests fall through to plain
// allocations (counted, never pooled). The Lease struct travels with its
// backing array through the pool, so a steady-state Get/Release cycle
// allocates nothing.
package buf

import (
	"sync"
	"sync/atomic"

	"trinity/internal/obs"
)

const (
	minClassBits = 6  // smallest class: 64 B
	maxClassBits = 20 // largest class: 1 MiB
	numClasses   = maxClassBits - minClassBits + 1

	// MaxPooled is the largest request served from a pool; bigger buffers
	// are allocated exactly and dropped on release.
	MaxPooled = 1 << maxClassBits

	poisonByte = 0xDB
)

var pools [numClasses]sync.Pool

// Pool metrics live on the default registry under "buf": the pool is
// process-global, so its counters are too.
var (
	metricHits     = obs.Default().Scope("buf").Counter("hits")
	metricMisses   = obs.Default().Scope("buf").Counter("misses")
	metricOversize = obs.Default().Scope("buf").Counter("oversize")
	metricInUse    = obs.Default().Scope("buf").Gauge("inuse")
)

// Lease is a reference-counted buffer. The zero value is not usable;
// obtain leases from Get, Sized, or Wrap.
type Lease struct {
	data   []byte
	refs   atomic.Int32
	poison atomic.Bool
	class  int8 // pool index, -1 for unpooled
}

// classFor returns the smallest size class holding n bytes, or -1 if n
// exceeds MaxPooled.
func classFor(n int) int {
	if n > MaxPooled {
		return -1
	}
	c := 0
	for 1<<(minClassBits+c) < n {
		c++
	}
	return c
}

// Get returns a lease of length n (capacity rounded up to the size
// class), holding one reference owned by the caller.
func Get(n int) *Lease {
	return Sized(n, n)
}

// Sized returns a lease of length n whose capacity accommodates at least
// max(n, capacity) bytes without Append relocating. Use it for buffers
// built incrementally toward a known bound (the msg packer sizes its
// batch buffers to BatchBytes up front).
func Sized(n, capacity int) *Lease {
	if capacity < n {
		capacity = n
	}
	c := classFor(capacity)
	if c < 0 {
		metricOversize.Inc()
		metricInUse.Add(1)
		l := &Lease{data: make([]byte, n, capacity), class: -1}
		l.refs.Store(1)
		return l
	}
	var l *Lease
	if v := pools[c].Get(); v != nil {
		metricHits.Inc()
		l = v.(*Lease)
	} else {
		metricMisses.Inc()
		l = &Lease{data: make([]byte, 1<<(minClassBits+c)), class: int8(c)}
	}
	metricInUse.Add(1)
	l.data = l.data[:n]
	l.poison.Store(false)
	l.refs.Store(1)
	return l
}

// Wrap returns an unpooled lease around a caller-owned slice, holding one
// reference. The final Release drops the slice for the GC (scribbling it
// first if poisoned). Wrap exists so lease-consuming APIs can be fed
// buffers that did not come from the pool (tests, fuzzers, one-off
// frames).
func Wrap(b []byte) *Lease {
	metricInUse.Add(1)
	l := &Lease{data: b, class: -1}
	l.refs.Store(1)
	return l
}

// Bytes returns the lease's payload. The slice is valid until the
// caller's reference is released; it must not be retained past that.
func (l *Lease) Bytes() []byte { return l.data }

// Len returns the payload length.
func (l *Lease) Len() int { return len(l.data) }

// Cap returns the backing array's capacity.
func (l *Lease) Cap() int { return cap(l.data) }

// SetLen shortens or extends the payload within the backing capacity.
// Extending exposes whatever bytes the backing array holds; callers
// overwrite them. Only the sole owner may call SetLen.
func (l *Lease) SetLen(n int) {
	if n < 0 || n > cap(l.data) {
		panic("buf: SetLen out of range")
	}
	l.data = l.data[:n]
}

// Retain adds a reference and returns the lease for chaining. Each
// Retain obligates exactly one additional Release.
func (l *Lease) Retain() *Lease {
	if l.refs.Add(1) <= 1 {
		panic("buf: retain of released lease")
	}
	return l
}

// Release settles one reference. The final Release recycles the backing
// array; releasing a lease more times than it was retained panics.
func (l *Lease) Release() {
	refs := l.refs.Add(-1)
	if refs > 0 {
		return
	}
	if refs < 0 {
		panic("buf: release of released lease")
	}
	metricInUse.Add(-1)
	if l.poison.Load() {
		full := l.data[:cap(l.data)]
		for i := range full {
			full[i] = poisonByte
		}
	}
	if l.class >= 0 {
		pools[l.class].Put(l)
	}
	// Unpooled leases are dropped for the GC.
}

// Poison marks the lease so the final Release overwrites the backing
// array with garbage before recycling it, flushing out any component
// that kept an alias past its last reference.
func (l *Lease) Poison() { l.poison.Store(true) }

// Append appends the given slices to the lease's payload, relocating to
// a larger lease (and releasing the receiver) when the backing capacity
// is exceeded. It returns the lease holding the result, which the caller
// must use in place of the receiver. Only the sole owner may Append.
func (l *Lease) Append(ps ...[]byte) *Lease {
	need := len(l.data)
	for _, p := range ps {
		need += len(p)
	}
	if need > cap(l.data) {
		nl := Sized(len(l.data), need)
		copy(nl.data, l.data)
		if l.poison.Load() {
			nl.poison.Store(true)
		}
		l.Release()
		l = nl
	}
	for _, p := range ps {
		l.data = append(l.data, p...)
	}
	return l
}

// PoolStats is a snapshot of the pool counters, for tests and debugging.
type PoolStats struct {
	Hits, Misses, Oversize, InUse int64
}

// Stats returns the current pool counters.
func Stats() PoolStats {
	return PoolStats{
		Hits:     metricHits.Load(),
		Misses:   metricMisses.Load(),
		Oversize: metricOversize.Load(),
		InUse:    metricInUse.Load(),
	}
}
