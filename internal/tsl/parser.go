package tsl

import (
	"fmt"

	"trinity/internal/cell"
	"trinity/internal/msg"
)

// --- AST ---

// astType is a parsed (unresolved) type reference.
type astType struct {
	name      string   // primitive or struct name; "List" for lists
	elem      *astType // list element
	line, col int
}

type astField struct {
	attrs     map[string]string
	typ       *astType
	name      string
	line, col int
}

type astStruct struct {
	attrs     map[string]string
	isCell    bool
	name      string
	fields    []astField
	line, col int
}

type astProtocol struct {
	name      string
	props     map[string]string // Type / Request / Response
	line, col int
}

type astScript struct {
	structs   []*astStruct
	protocols []*astProtocol
}

// --- resolved output ---

// ProtocolType distinguishes synchronous (request-response) protocols from
// asynchronous one-way protocols, the TSL "Type: Syn|Asyn" property.
type ProtocolType uint8

// Protocol types.
const (
	Syn ProtocolType = iota
	Asyn
)

// Protocol is a compiled TSL protocol declaration.
type Protocol struct {
	Name string
	Type ProtocolType
	// Request and Response name struct types; either may be nil (void).
	// Asynchronous protocols have no response.
	Request  *cell.StructType
	Response *cell.StructType
	// ID is the wire protocol identifier assigned by the compiler:
	// ProtoUserBase + declaration index.
	ID msg.ProtocolID
}

// ProtoUserBase is the first protocol ID handed to TSL-declared protocols.
// It leaves room below for the engine's built-in protocols.
const ProtoUserBase msg.ProtocolID = 0x1000

// Script is a fully compiled TSL script.
type Script struct {
	// Structs in declaration order; includes both cell and plain structs.
	Structs []*cell.StructType
	// Protocols in declaration order, with IDs assigned.
	Protocols []*Protocol

	structsByName map[string]*cell.StructType
}

// Struct returns the named struct type, or nil.
func (s *Script) Struct(name string) *cell.StructType {
	return s.structsByName[name]
}

// Protocol returns the named protocol, or nil.
func (s *Script) Protocol(name string) *Protocol {
	for _, p := range s.Protocols {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// CellStructs returns the structs declared `cell struct`, in order.
func (s *Script) CellStructs() []*cell.StructType {
	var out []*cell.StructType
	for _, st := range s.Structs {
		if st.Cell {
			out = append(out, st)
		}
	}
	return out
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) bump() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %v, found %v %q", k, t.kind, t.text)
	}
	return p.bump(), nil
}

func (p *parser) expectIdent(text string) error {
	t := p.cur()
	if t.kind != tokIdent || t.text != text {
		return errf(t.line, t.col, "expected %q, found %q", text, t.text)
	}
	p.bump()
	return nil
}

// parseAttrs parses an optional [A, B: C, D: "s"] attribute list.
func (p *parser) parseAttrs() (map[string]string, error) {
	if p.cur().kind != tokLBracket {
		return nil, nil
	}
	p.bump()
	attrs := make(map[string]string)
	for {
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		val := ""
		if p.cur().kind == tokColon {
			p.bump()
			t := p.cur()
			if t.kind != tokIdent && t.kind != tokString {
				return nil, errf(t.line, t.col, "expected attribute value, found %v", t.kind)
			}
			val = p.bump().text
		}
		if _, dup := attrs[name.text]; dup {
			return nil, errf(name.line, name.col, "duplicate attribute %q", name.text)
		}
		attrs[name.text] = val
		switch p.cur().kind {
		case tokComma:
			p.bump()
		case tokRBracket:
			p.bump()
			return attrs, nil
		default:
			t := p.cur()
			return nil, errf(t.line, t.col, "expected ',' or ']' in attribute list, found %q", t.text)
		}
	}
}

func (p *parser) parseType() (*astType, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	at := &astType{name: t.text, line: t.line, col: t.col}
	if t.text == "List" {
		if _, err := p.expect(tokLAngle); err != nil {
			return nil, err
		}
		at.elem, err = p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRAngle); err != nil {
			return nil, err
		}
	}
	return at, nil
}

func (p *parser) parseStruct(attrs map[string]string, isCell bool) (*astStruct, error) {
	if err := p.expectIdent("struct"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	st := &astStruct{attrs: attrs, isCell: isCell, name: name.text, line: name.line, col: name.col}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRBrace {
		fattrs, err := p.parseAttrs()
		if err != nil {
			return nil, err
		}
		ftype, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemicolon); err != nil {
			return nil, err
		}
		st.fields = append(st.fields, astField{
			attrs: fattrs, typ: ftype, name: fname.text,
			line: fname.line, col: fname.col,
		})
	}
	p.bump() // }
	return st, nil
}

func (p *parser) parseProtocol() (*astProtocol, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	pr := &astProtocol{name: name.text, props: make(map[string]string), line: name.line, col: name.col}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.cur().kind != tokRBrace {
		key, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		val, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemicolon); err != nil {
			return nil, err
		}
		if _, dup := pr.props[key.text]; dup {
			return nil, errf(key.line, key.col, "duplicate protocol property %q", key.text)
		}
		pr.props[key.text] = val.text
	}
	p.bump() // }
	return pr, nil
}

func parse(src string) (*astScript, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	script := &astScript{}
	for p.cur().kind != tokEOF {
		attrs, err := p.parseAttrs()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokIdent {
			return nil, errf(t.line, t.col, "expected declaration, found %v", t.kind)
		}
		switch t.text {
		case "cell":
			p.bump()
			st, err := p.parseStruct(attrs, true)
			if err != nil {
				return nil, err
			}
			script.structs = append(script.structs, st)
		case "struct":
			st, err := p.parseStruct(attrs, false)
			if err != nil {
				return nil, err
			}
			script.structs = append(script.structs, st)
		case "protocol":
			if attrs != nil {
				return nil, errf(t.line, t.col, "protocols cannot have attributes")
			}
			p.bump()
			pr, err := p.parseProtocol()
			if err != nil {
				return nil, err
			}
			script.protocols = append(script.protocols, pr)
		default:
			return nil, errf(t.line, t.col, "expected 'cell', 'struct' or 'protocol', found %q", t.text)
		}
	}
	return script, nil
}

// primitiveKinds maps TSL primitive type names to cell kinds.
var primitiveKinds = map[string]cell.Kind{
	"byte":   cell.KindByte,
	"bool":   cell.KindBool,
	"int":    cell.KindInt,
	"long":   cell.KindLong,
	"float":  cell.KindFloat,
	"double": cell.KindDouble,
	"string": cell.KindString,
}

// Compile parses and semantically checks a TSL script, producing runtime
// schemas and protocol descriptors.
func Compile(src string) (*Script, error) {
	ast, err := parse(src)
	if err != nil {
		return nil, err
	}
	return analyze(ast)
}

// analyze performs name resolution, cycle detection, and attribute and
// protocol validation.
func analyze(ast *astScript) (*Script, error) {
	// Pass 1: declare all struct names (forward references are legal).
	byName := make(map[string]*astStruct, len(ast.structs))
	for _, st := range ast.structs {
		if _, dup := byName[st.name]; dup {
			return nil, errf(st.line, st.col, "duplicate struct %q", st.name)
		}
		if _, isPrim := primitiveKinds[st.name]; isPrim || st.name == "List" {
			return nil, errf(st.line, st.col, "struct name %q shadows a built-in type", st.name)
		}
		byName[st.name] = st
	}

	// Cycle detection over direct and list-carried struct embedding: a
	// struct reachable from itself has no finite layout.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(st *astStruct) error
	var typeRefs func(t *astType, out *[]string)
	typeRefs = func(t *astType, out *[]string) {
		if t.elem != nil {
			typeRefs(t.elem, out)
			return
		}
		if _, prim := primitiveKinds[t.name]; !prim {
			*out = append(*out, t.name)
		}
	}
	visit = func(st *astStruct) error {
		color[st.name] = grey
		for _, f := range st.fields {
			var refs []string
			typeRefs(f.typ, &refs)
			for _, ref := range refs {
				dep, ok := byName[ref]
				if !ok {
					return errf(f.line, f.col, "unknown type %q", ref)
				}
				switch color[ref] {
				case grey:
					return errf(f.line, f.col, "struct cycle through %q", ref)
				case white:
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		color[st.name] = black
		return nil
	}
	for _, st := range ast.structs {
		if color[st.name] == white {
			if err := visit(st); err != nil {
				return nil, err
			}
		}
	}

	// Pass 2: build cell.StructTypes bottom-up (cycle-free guarantees
	// dependencies resolve first when we memoize).
	built := make(map[string]*cell.StructType)
	var buildStruct func(st *astStruct) (*cell.StructType, error)
	var buildType func(t *astType) (*cell.Type, error)
	buildType = func(t *astType) (*cell.Type, error) {
		if t.name == "List" {
			elem, err := buildType(t.elem)
			if err != nil {
				return nil, err
			}
			return cell.ListOf(elem), nil
		}
		if k, ok := primitiveKinds[t.name]; ok {
			return cell.Primitive(k), nil
		}
		dep, err := buildStruct(byName[t.name])
		if err != nil {
			return nil, err
		}
		return cell.StructOf(dep), nil
	}
	buildStruct = func(st *astStruct) (*cell.StructType, error) {
		if b, ok := built[st.name]; ok {
			return b, nil
		}
		fields := make([]cell.Field, 0, len(st.fields))
		for _, f := range st.fields {
			ft, err := buildType(f.typ)
			if err != nil {
				return nil, err
			}
			if err := checkFieldAttrs(byName, f); err != nil {
				return nil, err
			}
			fields = append(fields, cell.Field{Name: f.name, Type: ft, Attrs: f.attrs})
		}
		b, err := cell.NewStruct(st.name, st.isCell, fields)
		if err != nil {
			return nil, errf(st.line, st.col, "%v", err)
		}
		b.Attrs = st.attrs
		built[st.name] = b
		return b, nil
	}

	out := &Script{structsByName: make(map[string]*cell.StructType)}
	for _, st := range ast.structs {
		b, err := buildStruct(st)
		if err != nil {
			return nil, err
		}
		out.Structs = append(out.Structs, b)
		out.structsByName[st.name] = b
	}

	// Pass 3: protocols.
	protoNames := make(map[string]bool)
	for i, pr := range ast.protocols {
		if protoNames[pr.name] {
			return nil, errf(pr.line, pr.col, "duplicate protocol %q", pr.name)
		}
		protoNames[pr.name] = true
		p := &Protocol{Name: pr.name, ID: ProtoUserBase + msg.ProtocolID(i)}
		switch pr.props["Type"] {
		case "Syn":
			p.Type = Syn
		case "Asyn":
			p.Type = Asyn
		case "":
			return nil, errf(pr.line, pr.col, "protocol %q missing Type property", pr.name)
		default:
			return nil, errf(pr.line, pr.col, "protocol %q: Type must be Syn or Asyn, got %q", pr.name, pr.props["Type"])
		}
		resolve := func(prop string) (*cell.StructType, error) {
			name, ok := pr.props[prop]
			if !ok || name == "void" {
				return nil, nil
			}
			st, ok := out.structsByName[name]
			if !ok {
				return nil, errf(pr.line, pr.col, "protocol %q: unknown %s type %q", pr.name, prop, name)
			}
			return st, nil
		}
		var err error
		if p.Request, err = resolve("Request"); err != nil {
			return nil, err
		}
		if p.Response, err = resolve("Response"); err != nil {
			return nil, err
		}
		if p.Type == Asyn && p.Response != nil {
			return nil, errf(pr.line, pr.col, "protocol %q: asynchronous protocols cannot have a Response", pr.name)
		}
		for key := range pr.props {
			switch key {
			case "Type", "Request", "Response":
			default:
				return nil, errf(pr.line, pr.col, "protocol %q: unknown property %q", pr.name, key)
			}
		}
		out.Protocols = append(out.Protocols, p)
	}
	return out, nil
}

// validEdgeTypes are the TSL edge modeling modes (paper §4.2).
var validEdgeTypes = map[string]bool{
	"SimpleEdge": true, // edge is a bare cell ID
	"StructEdge": true, // edge is an independent cell
	"HyperEdge":  true, // edge cell holds a set of node IDs
}

func checkFieldAttrs(structs map[string]*astStruct, f astField) error {
	if et, ok := f.attrs["EdgeType"]; ok {
		if !validEdgeTypes[et] {
			return errf(f.line, f.col, "field %q: unknown EdgeType %q", f.name, et)
		}
		// Edges must be modeled as cell IDs (long or List<long>).
		t := f.typ
		if t.name == "List" {
			t = t.elem
		}
		if t.name != "long" {
			return errf(f.line, f.col, "field %q: EdgeType requires long or List<long>, got %s", f.name, f.typ.name)
		}
	}
	if rc, ok := f.attrs["ReferencedCell"]; ok {
		st, found := structs[rc]
		if !found {
			return errf(f.line, f.col, "field %q: ReferencedCell %q is not declared", f.name, rc)
		}
		if !st.isCell {
			return errf(f.line, f.col, "field %q: ReferencedCell %q is not a cell struct", f.name, rc)
		}
	}
	return nil
}

// MustCompile is Compile that panics on error, for static schemas in
// package initializers.
func MustCompile(src string) *Script {
	s, err := Compile(src)
	if err != nil {
		panic(fmt.Sprintf("tsl: %v", err))
	}
	return s
}
