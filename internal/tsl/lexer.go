// Package tsl implements the Trinity Specification Language (paper §4.2):
// a high-level declaration language for cell schemas and communication
// protocols. Users declare `cell struct`s describing graph data and
// `protocol`s describing message exchanges; the compiler produces runtime
// schemas (for the dynamic cell accessors in internal/cell) and generated
// Go source with typed structs, marshaling code, cell accessors, and
// protocol stubs — the moral equivalent of the C# the original TSL
// compiler emitted.
//
// Grammar (comments // and /* */ allowed anywhere):
//
//	script    = { decl } ;
//	decl      = [ attrs ] [ "cell" ] "struct" ident "{" { field } "}"
//	          | "protocol" ident "{" { prop } "}" ;
//	field     = [ attrs ] type ident ";" ;
//	type      = "byte" | "bool" | "int" | "long" | "float" | "double"
//	          | "string" | "List" "<" type ">" | ident ;
//	attrs     = "[" attr { "," attr } "]" ;
//	attr      = ident [ ":" ( ident | string ) ] ;
//	prop      = ident ":" ident ";" ;   // Type/Request/Response
package tsl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token kinds.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokLBrace    // {
	tokRBrace    // }
	tokLBracket  // [
	tokRBracket  // ]
	tokLAngle    // <
	tokRAngle    // >
	tokColon     // :
	tokSemicolon // ;
	tokComma     // ,
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of script"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string literal"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokColon:
		return "':'"
	case tokSemicolon:
		return "';'"
	case tokComma:
		return "','"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a TSL compilation error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("tsl:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns a TSL script into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace and comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()
	punct := map[byte]tokenKind{
		'{': tokLBrace, '}': tokRBrace,
		'[': tokLBracket, ']': tokRBracket,
		'<': tokLAngle, '>': tokRAngle,
		':': tokColon, ';': tokSemicolon, ',': tokComma,
	}
	if k, ok := punct[c]; ok {
		l.advance()
		return token{kind: k, text: string(c), line: line, col: col}, nil
	}
	if c == '"' {
		l.advance()
		var sb strings.Builder
		for l.pos < len(l.src) {
			c := l.advance()
			if c == '"' {
				return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
			}
			if c == '\\' && l.pos < len(l.src) {
				sb.WriteByte(l.advance())
				continue
			}
			sb.WriteByte(c)
		}
		return token{}, errf(line, col, "unterminated string literal")
	}
	if isIdentStart(c) {
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	}
	return token{}, errf(line, col, "unexpected character %q", c)
}

// lex tokenizes the whole script.
func lex(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
