package tsl

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"trinity/internal/cell"
)

// paperScript is the movie/actor example from Figure 4 of the paper plus
// the Echo protocol from Figure 5.
const paperScript = `
[CellType: NodeCell]
cell struct Movie
{
	string Name;
	[EdgeType: SimpleEdge, ReferencedCell: Actor]
	List<long> Actors;
}

[CellType: NodeCell]
cell struct Actor
{
	string Name;
	[EdgeType: SimpleEdge, ReferencedCell: Movie]
	List<long> Movies;
}

struct MyMessage
{
	string Text;
}

protocol Echo
{
	Type: Syn;
	Request: MyMessage;
	Response: MyMessage;
}
`

func TestCompilePaperExample(t *testing.T) {
	s, err := Compile(paperScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Structs) != 3 {
		t.Fatalf("structs = %d, want 3", len(s.Structs))
	}
	movie := s.Struct("Movie")
	if movie == nil || !movie.Cell {
		t.Fatal("Movie missing or not a cell struct")
	}
	if movie.Attrs["CellType"] != "NodeCell" {
		t.Fatalf("Movie attrs = %v", movie.Attrs)
	}
	actors := movie.Fields[movie.FieldIndex("Actors")]
	if actors.Type.Kind != cell.KindList || actors.Type.Elem.Kind != cell.KindLong {
		t.Fatalf("Actors type = %v", actors.Type)
	}
	if actors.Attrs["EdgeType"] != "SimpleEdge" || actors.Attrs["ReferencedCell"] != "Actor" {
		t.Fatalf("Actors attrs = %v", actors.Attrs)
	}
	if s.Struct("MyMessage").Cell {
		t.Fatal("MyMessage should not be a cell struct")
	}
	if len(s.CellStructs()) != 2 {
		t.Fatalf("cell structs = %d, want 2", len(s.CellStructs()))
	}
	echo := s.Protocol("Echo")
	if echo == nil {
		t.Fatal("Echo protocol missing")
	}
	if echo.Type != Syn || echo.Request.Name != "MyMessage" || echo.Response.Name != "MyMessage" {
		t.Fatalf("Echo = %+v", echo)
	}
	if echo.ID != ProtoUserBase {
		t.Fatalf("Echo ID = %d", echo.ID)
	}
}

func TestCompileAllTypes(t *testing.T) {
	s, err := Compile(`
struct Inner { int X; double Y; }
cell struct Big {
	byte B;
	bool Flag;
	int I;
	long L;
	float F;
	double D;
	string S;
	Inner Nested;
	List<string> Names;
	List<Inner> Inners;
	List<List<long>> Matrix;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	big := s.Struct("Big")
	matrix := big.Fields[big.FieldIndex("Matrix")]
	if matrix.Type.Elem.Elem.Kind != cell.KindLong {
		t.Fatalf("Matrix = %v", matrix.Type)
	}
	nested := big.Fields[big.FieldIndex("Nested")]
	if nested.Type.Kind != cell.KindStruct || nested.Type.Struct.Name != "Inner" {
		t.Fatalf("Nested = %v", nested.Type)
	}
}

func TestForwardReference(t *testing.T) {
	_, err := Compile(`
cell struct A { [ReferencedCell: B] List<long> Bs; }
cell struct B { long X; }
`)
	if err != nil {
		t.Fatalf("forward reference rejected: %v", err)
	}
}

func TestAsyncProtocol(t *testing.T) {
	s, err := Compile(`
struct Ping { long Seq; }
protocol Notify { Type: Asyn; Request: Ping; }
protocol Empty { Type: Asyn; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol("Notify").Type != Asyn {
		t.Fatal("Notify should be async")
	}
	if s.Protocol("Empty").Request != nil {
		t.Fatal("Empty should have void request")
	}
	if s.Protocol("Notify").ID != ProtoUserBase || s.Protocol("Empty").ID != ProtoUserBase+1 {
		t.Fatal("protocol IDs not sequential")
	}
}

func TestVoidResponse(t *testing.T) {
	s, err := Compile(`
struct Cmd { int Op; }
protocol Exec { Type: Syn; Request: Cmd; Response: void; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol("Exec").Response != nil {
		t.Fatal("void response should be nil")
	}
}

func TestComments(t *testing.T) {
	_, err := Compile(`
// a line comment
/* a block
   comment */
cell struct A { long X; /* trailing */ } // done
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown type", `cell struct A { Wat X; }`, "unknown type"},
		{"duplicate struct", `struct A { int X; } struct A { int Y; }`, "duplicate struct"},
		{"duplicate field", `struct A { int X; int X; }`, "duplicate field"},
		{"cycle", `struct A { B Inner; } struct B { A Inner; }`, "cycle"},
		{"self cycle", `struct A { A Inner; }`, "cycle"},
		{"list cycle", `struct A { List<A> Kids; }`, "cycle"},
		{"shadow builtin", `struct long { int X; }`, "shadows a built-in"},
		{"bad edge type", `cell struct A { [EdgeType: Wavy] List<long> E; }`, "unknown EdgeType"},
		{"edge not long", `cell struct A { [EdgeType: SimpleEdge] List<int> E; }`, "requires long"},
		{"bad referenced cell", `cell struct A { [ReferencedCell: Nope] List<long> E; }`, "not declared"},
		{"ref non-cell", `struct P { int X; } cell struct A { [ReferencedCell: P] List<long> E; }`, "not a cell struct"},
		{"protocol no type", `protocol P { }`, "missing Type"},
		{"protocol bad type", `protocol P { Type: Maybe; }`, "must be Syn or Asyn"},
		{"protocol unknown req", `protocol P { Type: Syn; Request: Nope; }`, "unknown Request"},
		{"async with response", `struct M { int X; } protocol P { Type: Asyn; Request: M; Response: M; }`, "cannot have a Response"},
		{"protocol dup", `protocol P { Type: Syn; } protocol P { Type: Syn; }`, "duplicate protocol"},
		{"protocol bad prop", `protocol P { Type: Syn; Wat: X; }`, "unknown property"},
		{"missing semicolon", `struct A { int X }`, "expected"},
		{"unterminated comment", `/* nope`, "unterminated block comment"},
		{"unterminated string", `struct A { [X: "nope] int Y; }`, "unterminated string"},
		{"garbage", `#!/bin/sh`, "unexpected character"},
		{"attr on protocol", `[X] protocol P { Type: Syn; }`, "cannot have attributes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("compiled without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Compile("\n\ncell struct A { Wat X; }")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "tsl:3:") {
		t.Fatalf("error lacks line info: %v", err)
	}
}

func TestRuntimeSchemaMatchesAccessor(t *testing.T) {
	// The compiled schema must drive the dynamic accessor correctly.
	s := MustCompile(paperScript)
	movie := s.Struct("Movie")
	blob, err := cell.Encode(movie, map[string]cell.Value{
		"Name":   "Inception",
		"Actors": []int64{7, 8, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := cell.NewAccessor(movie, blob)
	if a.MustField("Name").Str() != "Inception" {
		t.Fatal("Name mismatch")
	}
	if got := a.MustField("Actors").List().Longs(); len(got) != 3 || got[2] != 9 {
		t.Fatalf("Actors = %v", got)
	}
}

func TestGenerateStructure(t *testing.T) {
	s := MustCompile(paperScript)
	src, err := Generate("moviegraph", paperScript, s)
	if err != nil {
		t.Fatal(err)
	}
	code := string(src)
	for _, want := range []string{
		"package moviegraph",
		"type Movie struct {",
		"type Actor struct {",
		"type MyMessage struct {",
		"func (x *Movie) Marshal() []byte",
		"func (x *Movie) Unmarshal(b []byte) error",
		"type MovieAccessor struct",
		"func LoadMovie(ctx context.Context, s *memcloud.Slave, id uint64) (*Movie, error)",
		"func (x *Movie) Save(ctx context.Context, s *memcloud.Slave, id uint64) error",
		"func UseMovie(s *memcloud.Slave, id uint64, fn func(MovieAccessor) error) error",
		"const EchoID msg.ProtocolID",
		"func CallEcho(ctx context.Context, n *msg.Node, to msg.MachineID, req *MyMessage) (*MyMessage, error)",
		"func RegisterEcho(n *msg.Node, h func(context.Context, msg.MachineID, *MyMessage) (*MyMessage, error))",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// No accessor setters for variable-size fields.
	if strings.Contains(code, "SetName") {
		t.Error("generated a setter for a string field")
	}
}

func TestGenerateAsyncStubs(t *testing.T) {
	src := `
struct Ping { long Seq; }
protocol Notify { Type: Asyn; Request: Ping; }
`
	s := MustCompile(src)
	code, err := Generate("p", src, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"func SendNotify(n *msg.Node, to msg.MachineID, req *Ping) error",
		"func RegisterNotify(n *msg.Node, h func(msg.MachineID, *Ping))",
	} {
		if !strings.Contains(string(code), want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

// TestGeneratedCodeCompilesAndRoundTrips writes generated code into a
// throwaway package inside this module, compiles it with the real Go
// toolchain, and runs a marshal/accessor round trip through it.
func TestGeneratedCodeCompilesAndRoundTrips(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Skipf("module root not found: %v", err)
	}
	script := `
struct Inner { int X; }
cell struct Thing {
	string Name;
	long Id;
	double W;
	Inner Nested;
	List<string> Tags;
	List<long> Links;
}
protocol Ask { Type: Syn; Request: Thing; Response: Thing; }
protocol Tell { Type: Asyn; Request: Thing; }
`
	s := MustCompile(script)
	code, err := Generate("tslgentest", script, s)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "tsl", "tslgentest_tmp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "gen.go"), code, 0o644); err != nil {
		t.Fatal(err)
	}
	// A main-less test program exercising the generated API end to end.
	harness := `package tslgentest

import "fmt"

// RoundTrip exercises Marshal/Unmarshal and the accessor on one value.
func RoundTrip() error {
	in := &Thing{
		Name:   "t1",
		Id:     42,
		W:      2.5,
		Nested: Inner{X: -7},
		Tags:   []string{"a", "bb"},
		Links:  []int64{1, 2, 3},
	}
	blob := in.Marshal()
	out := new(Thing)
	if err := out.Unmarshal(blob); err != nil {
		return err
	}
	if out.Name != in.Name || out.Id != in.Id || out.W != in.W ||
		out.Nested.X != in.Nested.X || len(out.Tags) != 2 || out.Tags[1] != "bb" ||
		len(out.Links) != 3 || out.Links[2] != 3 {
		return fmt.Errorf("round trip mismatch: %+v", out)
	}
	a := NewThingAccessor(blob)
	if a.Name() != "t1" || a.Id() != 42 || a.Nested().X() != -7 {
		return fmt.Errorf("accessor mismatch")
	}
	a.SetId(99)
	if a.Id() != 99 {
		return fmt.Errorf("accessor write lost")
	}
	if a.Links().Len() != 3 || a.Links().At(0).Long() != 1 {
		return fmt.Errorf("list accessor mismatch")
	}
	return nil
}
`
	if err := os.WriteFile(filepath.Join(dir, "harness.go"), []byte(harness), 0o644); err != nil {
		t.Fatal(err)
	}
	testFile := `package tslgentest

import "testing"

func TestRoundTrip(t *testing.T) {
	if err := RoundTrip(); err != nil {
		t.Fatal(err)
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "gen_test.go"), []byte(testFile), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "test", "./internal/tsl/tslgentest_tmp/")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated code failed: %v\n%s", err, out)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(paperScript); err != nil {
			b.Fatal(err)
		}
	}
}
