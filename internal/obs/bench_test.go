package obs

import "testing"

// BenchmarkCounterInc is the tentpole overhead bound: a single-goroutine
// increment on the striped counter must stay well under 20 ns/op, so
// instrumenting a memcloud operation costs a fraction of the operation.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Scope("bench").Counter("inc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Load() != int64(b.N) {
		b.Fatal("lost increments")
	}
}

// BenchmarkCounterIncParallel is where striping earns its memory: all
// cores incrementing one counter at once.
func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Scope("bench").Counter("inc")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Scope("bench").Histogram("lat_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Scope("bench").Histogram("lat_ns")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}

func BenchmarkSpan(b *testing.B) {
	scope := NewRegistry().Scope("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scope.StartSpan("phase").End()
	}
}
