package obs

import "time"

// Span times one phase of work — a superstep, an RPC, a defragmentation
// pass. Ending a span records its wall duration (nanoseconds) into a
// histogram named <name>_ns in the span's scope, so repeated phases
// accumulate a latency distribution rather than a log.
//
// Spans nest: Child starts a sub-phase whose histogram is named
// <parent>.<child>_ns, giving per-phase breakdowns (superstep →
// compute/flush/barrier) without any global tracer state. A Span is not
// safe for concurrent use; start one span per goroutine.
type Span struct {
	scope *Scope
	name  string
	h     *Histogram
	start time.Time
}

// StartSpan begins timing a phase. The histogram <name>_ns is created in
// the scope on first use; subsequent spans with the same name reuse it,
// so starting a span on a steady-state hot path costs one map lookup
// under the registry read path plus a clock read.
func (s *Scope) StartSpan(name string) *Span {
	return &Span{
		scope: s,
		name:  name,
		h:     s.Histogram(name + "_ns"),
		start: time.Now(),
	}
}

// Child begins a nested phase named <parent>.<name>.
func (sp *Span) Child(name string) *Span {
	return sp.scope.StartSpan(sp.name + "." + name)
}

// End records the span's duration and returns it. A span must be ended
// exactly once.
func (sp *Span) End() time.Duration {
	d := time.Since(sp.start)
	sp.h.Observe(int64(d))
	return d
}
