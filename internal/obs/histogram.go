package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the bucket count of Histogram: one bucket per power of
// two of the observed value, covering the full non-negative int64 range
// (bucket i holds values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i)).
const histBuckets = 64

// Histogram is a fixed-bucket, lock-free histogram with power-of-two
// bucket boundaries. It is designed for latencies in nanoseconds: 64
// buckets span 1 ns to ~292 years with at most 2x relative error on
// quantile estimates, and Observe is two atomic adds plus an atomic
// increment — cheap enough for per-operation hot paths. The zero value is
// NOT usable; obtain histograms from a Scope.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [histBuckets]int64
}

// Snapshot copies the histogram's counters. Buckets are read without a
// global lock, so a snapshot taken during concurrent Observes is
// approximate (counts may be off by in-flight observations), which is the
// usual metrics contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed value, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket in which the q-th observation falls. The estimate is within
// 2x of the true value by construction of the power-of-two buckets.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			upper := int64(1) << uint(i)
			if upper > s.Max && s.Max > 0 {
				return s.Max
			}
			return upper
		}
	}
	return s.Max
}
