package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Scope("t").Counter("hits")
	const goroutines = 16
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter lost updates: got %d, want %d", got, goroutines*perG)
	}
}

func TestCounterAddNegativeAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Scope("t").Counter("delta")
	c.Add(10)
	c.Add(-3)
	if got := c.Load(); got != 7 {
		t.Fatalf("Add: got %d, want 7", got)
	}
	g := r.Scope("t").Gauge("depth")
	g.Set(42)
	g.Add(-2)
	if got := g.Load(); got != 40 {
		t.Fatalf("gauge: got %d, want 40", got)
	}
	f := r.Scope("t").FloatGauge("load")
	f.Set(0.75)
	if got := f.Load(); got != 0.75 {
		t.Fatalf("float gauge: got %v, want 0.75", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Scope("t").Histogram("lat_ns")
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				h.Observe(seed*1000 + i)
			}
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("histogram lost observations: got %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket counts %d do not sum to count %d", bucketSum, s.Count)
	}
	if s.Max < 7000+perG-1 {
		t.Fatalf("max %d below the largest observed value", s.Max)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Scope("t").Histogram("q")
	// 99 observations of 100ns and one of 1ms: p50 within 2x of 100,
	// p99+ reaches toward the outlier's bucket.
	for i := 0; i < 99; i++ {
		h.Observe(100)
	}
	h.Observe(1_000_000)
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 100 || p50 > 200 {
		t.Fatalf("p50 = %d, want within [100, 200]", p50)
	}
	if max := s.Quantile(1.0); max != 1_000_000 {
		t.Fatalf("p100 = %d, want 1000000", max)
	}
	if mean := s.Mean(); mean < 10000 || mean > 10100 {
		t.Fatalf("mean = %f, want ~10099", mean)
	}
	if s.Quantile(0.5) > s.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately unsorted order.
	r.Scope("zeta").Counter("c").Add(3)
	r.Scope("alpha").Gauge("g").Set(5)
	r.Scope("mid").Histogram("h").Observe(1024)
	r.Scope("alpha").Func("derived", func() float64 { return 1.5 })

	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a.String(), b.String())
	}
	names := make([]string, 0)
	for _, v := range r.Snapshot() {
		names = append(names, v.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("snapshot not sorted: %q before %q", names[i-1], names[i])
		}
	}
	want := []string{"alpha.derived", "alpha.g", "mid.h", "zeta.c"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("snapshot order: got %v, want %v", names, want)
		}
	}

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "zeta.c 3") {
		t.Fatalf("text dump missing counter line:\n%s", txt.String())
	}
	if !strings.Contains(txt.String(), "mid.h.count 1") {
		t.Fatalf("text dump missing histogram expansion:\n%s", txt.String())
	}
}

func TestScopeGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Scope("memcloud").Counter("ops")
	b := r.Scope("memcloud").Counter("ops")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	child := r.Scope("memcloud").Scope("m0")
	child.Counter("ops").Inc()
	found := false
	for _, v := range r.Snapshot() {
		if v.Name == "memcloud.m0.ops" && v.Int == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("nested scope did not register memcloud.m0.ops")
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	scope := r.Scope("bsp")
	outer := scope.StartSpan("superstep")
	inner := outer.Child("compute")
	time.Sleep(2 * time.Millisecond)
	innerD := inner.End()
	grand := outer.Child("flush")
	grandD := grand.End()
	outerD := outer.End()
	if innerD <= 0 || outerD < innerD {
		t.Fatalf("span durations inconsistent: outer %v, inner %v", outerD, innerD)
	}
	if grandD < 0 {
		t.Fatalf("negative child duration %v", grandD)
	}
	byName := map[string]HistogramSnapshot{}
	for _, v := range r.Snapshot() {
		if v.Kind == "histogram" {
			byName[v.Name] = v.Hist
		}
	}
	for _, name := range []string{"bsp.superstep_ns", "bsp.superstep.compute_ns", "bsp.superstep.flush_ns"} {
		h, ok := byName[name]
		if !ok || h.Count != 1 {
			t.Fatalf("span %s not recorded (have %v)", name, byName)
		}
	}
	if byName["bsp.superstep_ns"].Sum < byName["bsp.superstep.compute_ns"].Sum {
		t.Fatal("outer span shorter than nested child")
	}
}

func TestSpanConcurrentSiblings(t *testing.T) {
	r := NewRegistry()
	scope := r.Scope("rpc")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := scope.StartSpan("call")
				sp.End()
			}
		}()
	}
	wg.Wait()
	s := scope.Histogram("call_ns").Snapshot()
	if s.Count != 8*200 {
		t.Fatalf("concurrent spans lost: got %d, want %d", s.Count, 8*200)
	}
}
