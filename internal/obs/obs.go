// Package obs is Trinity's dependency-free observability layer: striped
// atomic counters, gauges, fixed-bucket lock-free histograms, and
// lightweight phase spans, organized in a registry of named scopes.
//
// The paper's evaluation (§7) is built entirely from measured behaviour —
// message packing ratios, superstep latency, trunk utilization, failover
// timing — so every layer of this reproduction registers its hot-path
// counters here. Snapshots are deterministic (names sorted) and exported
// two ways: an expvar-style JSON endpoint in trinityd and a text dump in
// trinity-bench, so EXPERIMENTS tables can cite real counter names.
//
// Design constraints, in order: (1) recording on a hot path must cost a
// few atomic operations at most — no locks, no allocation, no string
// formatting; (2) no dependencies beyond the standard library; (3)
// snapshotting may be slow, recording never.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics. Each simulated cloud owns one registry so
// tests stay isolated; processes that want a global view (trinityd,
// trinity-bench) pass Default() everywhere.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	floats   map[string]*FloatGauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Scope returns a handle that registers metrics under "prefix." names.
func (r *Registry) Scope(prefix string) *Scope {
	return &Scope{r: r, prefix: prefix}
}

// Scope is a named namespace within a registry. Metric constructors are
// get-or-create: asking twice for the same name returns the same metric,
// so independently constructed components share cumulative counters.
type Scope struct {
	r      *Registry
	prefix string
}

// Counter returns the counter named prefix.name, creating it on first use.
func (s *Scope) Counter(name string) *Counter {
	full := s.full(name)
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	c, ok := s.r.counters[full]
	if !ok {
		c = &Counter{}
		s.r.counters[full] = c
	}
	return c
}

// Gauge returns the gauge named prefix.name, creating it on first use.
func (s *Scope) Gauge(name string) *Gauge {
	full := s.full(name)
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	g, ok := s.r.gauges[full]
	if !ok {
		g = &Gauge{}
		s.r.gauges[full] = g
	}
	return g
}

// FloatGauge returns the float gauge named prefix.name, creating it on
// first use.
func (s *Scope) FloatGauge(name string) *FloatGauge {
	full := s.full(name)
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	g, ok := s.r.floats[full]
	if !ok {
		g = &FloatGauge{}
		s.r.floats[full] = g
	}
	return g
}

// Histogram returns the histogram named prefix.name, creating it on first
// use.
func (s *Scope) Histogram(name string) *Histogram {
	full := s.full(name)
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	h, ok := s.r.hists[full]
	if !ok {
		h = &Histogram{}
		s.r.hists[full] = h
	}
	return h
}

// Func registers a gauge computed at snapshot time (expvar-style). It
// costs nothing on any hot path and is ideal for derived values like a
// hash table's load factor. Re-registering a name replaces the function.
func (s *Scope) Func(name string, fn func() float64) {
	full := s.full(name)
	s.r.mu.Lock()
	s.r.funcs[full] = fn
	s.r.mu.Unlock()
}

// Scope returns a child scope named prefix.sub.
func (s *Scope) Scope(sub string) *Scope {
	return &Scope{r: s.r, prefix: s.full(sub)}
}

func (s *Scope) full(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "." + name
}

// --- snapshots ---

// Value is one metric in a snapshot. Exactly one of the fields besides
// Name and Kind is meaningful, selected by Kind ("counter", "gauge",
// "histogram"); IsFloat distinguishes float gauges from integer ones.
type Value struct {
	Name    string
	Kind    string
	Int     int64
	Float   float64
	IsFloat bool
	Hist    HistogramSnapshot
}

// Snapshot returns all metrics sorted by name. Sorting makes snapshots
// deterministic: two snapshots of the same quiescent registry are
// byte-identical however the metrics were registered.
func (r *Registry) Snapshot() []Value {
	r.mu.RLock()
	vals := make([]Value, 0,
		len(r.counters)+len(r.gauges)+len(r.floats)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		vals = append(vals, Value{Name: name, Kind: "counter", Int: c.Load()})
	}
	for name, g := range r.gauges {
		vals = append(vals, Value{Name: name, Kind: "gauge", Int: g.Load()})
	}
	for name, g := range r.floats {
		vals = append(vals, Value{Name: name, Kind: "gauge", Float: g.Load(), IsFloat: true})
	}
	for name, h := range r.hists {
		vals = append(vals, Value{Name: name, Kind: "histogram", Hist: h.Snapshot()})
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	r.mu.RUnlock()
	// Snapshot functions outside the registry lock: they may acquire
	// component locks of their own and must not deadlock against a
	// component registering a metric.
	for name, fn := range funcs {
		vals = append(vals, Value{Name: name, Kind: "gauge", Float: fn(), IsFloat: true})
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Name < vals[j].Name })
	return vals
}

// WriteJSON writes the snapshot as a single sorted JSON object, in the
// style of expvar: counters and gauges are numbers, histograms are
// objects with count/sum/mean/p50/p95/p99/max. The output is hand-rolled
// (no reflection) so field order is exactly snapshot order and the
// encoding is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	vals := r.Snapshot()
	var b strings.Builder
	b.WriteString("{\n")
	for i, v := range vals {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  %q: ", v.Name)
		switch v.Kind {
		case "histogram":
			h := v.Hist
			fmt.Fprintf(&b,
				`{"count": %d, "sum": %d, "mean": %.1f, "p50": %d, "p95": %d, "p99": %d, "max": %d}`,
				h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
		default:
			if v.IsFloat {
				fmt.Fprintf(&b, "%g", v.Float)
			} else {
				fmt.Fprintf(&b, "%d", v.Int)
			}
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteText writes the snapshot as sorted "name value" lines, with
// histogram summaries expanded into name.count / name.mean / name.p99 …
// lines, for the trinity-bench -metrics dump.
func (r *Registry) WriteText(w io.Writer) error {
	var b strings.Builder
	for _, v := range r.Snapshot() {
		switch v.Kind {
		case "histogram":
			h := v.Hist
			fmt.Fprintf(&b, "%s.count %d\n", v.Name, h.Count)
			fmt.Fprintf(&b, "%s.sum %d\n", v.Name, h.Sum)
			fmt.Fprintf(&b, "%s.mean %.1f\n", v.Name, h.Mean())
			fmt.Fprintf(&b, "%s.p50 %d\n", v.Name, h.Quantile(0.50))
			fmt.Fprintf(&b, "%s.p95 %d\n", v.Name, h.Quantile(0.95))
			fmt.Fprintf(&b, "%s.p99 %d\n", v.Name, h.Quantile(0.99))
			fmt.Fprintf(&b, "%s.max %d\n", v.Name, h.Max)
		default:
			if v.IsFloat {
				fmt.Fprintf(&b, "%s %g\n", v.Name, v.Float)
			} else {
				fmt.Fprintf(&b, "%s %d\n", v.Name, v.Int)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
