package obs

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// counterShards is the striping factor of Counter. It must be a power of
// two. 32 cache lines (2 KiB per counter) is enough to keep a laptop-scale
// simulated cluster's hottest counters contention-free without making
// thousands of registered counters expensive to hold resident.
const counterShards = 32

// cell is one cache-line-padded counter stripe. The padding keeps two
// stripes from sharing a cache line, which is the entire point of
// striping: concurrent Inc calls from different goroutines land on
// different lines and never bounce ownership between cores.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing (or explicitly Add-ed) event
// counter, striped across cache lines so that concurrent increments from
// many goroutines do not serialize on one cache line. The zero value is
// NOT usable; obtain counters from a Scope.
type Counter struct {
	cells [counterShards]cell
}

// stripe picks a quasi-per-goroutine stripe index. Goroutine stacks live
// at distinct addresses, so hashing the address of a stack variable
// spreads goroutines across stripes at near-zero cost (no allocation: the
// pointer is immediately reduced to a scalar and never escapes).
func stripe() uint64 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return (uint64(p) * 0x9E3779B97F4A7C15) >> 33
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (which may be negative, though counters are conventionally
// monotonic).
func (c *Counter) Add(d int64) {
	c.cells[stripe()&(counterShards-1)].n.Add(d)
}

// Load returns the current total. The sum is not a single atomic
// snapshot; concurrent increments may or may not be included, which is
// the usual metrics contract.
func (c *Counter) Load() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous integer value (queue depth, live cells,
// active vertices). Unlike Counter it is set or adjusted, not summed over
// stripes: gauges are written rarely enough that striping buys nothing.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float value (load factor, utilization).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *FloatGauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }
