package msg

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"trinity/internal/buf"
	"trinity/internal/obs"
)

// ProtocolID identifies a message protocol, as declared in a TSL
// `protocol` block and assigned by the TSL compiler.
type ProtocolID uint16

// SyncHandler serves a synchronous (request-response) protocol. The
// returned bytes are sent back to the caller; a non-nil error is
// propagated to the caller as a call failure. ctx carries the caller's
// remaining deadline budget, decoded from the request frame: handlers
// that block (fan-out calls, trunk scans) should pass it downstream so
// the budget keeps shrinking across hops.
//
// request aliases the inbound frame's pooled lease, which is released
// (and its buffer recycled) after the reply is built: handlers must not
// retain request past returning. The returned response may alias request
// — it is copied into the reply frame before the lease is settled.
type SyncHandler func(ctx context.Context, from MachineID, request []byte) ([]byte, error)

// AsyncHandler serves an asynchronous (one-way) protocol. msg must not be
// retained after the handler returns. Async handlers run inline on the
// transport's delivery goroutine: they must not block indefinitely and
// must not perform blocking sends themselves (enqueue work for another
// goroutine instead, as the BSP and async engines do) — otherwise two
// machines flooding each other could deadlock on full delivery queues.
type AsyncHandler func(from MachineID, msg []byte)

// frame kinds on the wire.
const (
	kindSyncReq byte = iota + 1
	kindSyncResp
	kindSyncErr
	kindAsync
	kindBatch
)

// wire header: kind(1) proto(2) corr(8); batch items: proto(2) len(4).
// Sync requests carry an extra budget(8) field after the common header:
// the caller's remaining deadline in relative microseconds (int64,
// little-endian). Relative because machine clocks are not synchronized;
// the receiver re-anchors it against its own clock on arrival. Zero
// means "no deadline"; a negative value is already expired and the
// receiver drops the request before dispatch.
const (
	frameHeader   = 11
	syncReqHeader = frameHeader + 8
	batchItem     = 6
)

// CodeFrameTooLarge is the reserved one-byte wire error code carried on a
// kindSyncErr frame when a handler's reply exceeded the transport's
// MaxFrameSize: the oversized reply itself cannot cross the wire, so the
// caller learns why through this small error frame instead of timing out.
// Application handlers must not use it with WithCode.
const CodeFrameTooLarge byte = 0xFF

// Stats counts messaging activity. The ratio MessagesSent/FramesSent shows
// the effect of message packing.
type Stats struct {
	MessagesSent  int64 // logical messages submitted
	FramesSent    int64 // physical frames on the transport
	BytesSent     int64
	SyncCalls     int64
	AsyncReceived int64
	BatchesRecv   int64
	DroppedFrames int64 // malformed or truncated frames discarded on receive
	NoHandler     int64 // async messages dead-lettered for want of a handler

	CallsCancelled    int64 // sync calls abandoned because the caller's context fired
	DeadlineDroppedRx int64 // requests dropped on arrival: caller's budget already spent
}

// RemoteError is a synchronous-call failure that crossed the wire. Code
// carries the one-byte application error code the remote handler attached
// with WithCode (0 if none), so callers can map their sentinel errors
// without matching on message text.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("msg: remote error: %s", e.Msg) }

// codedError tags an error with a wire code while leaving errors.Is/As
// matching against the wrapped error intact.
type codedError struct {
	code byte
	err  error
}

func (e *codedError) Error() string  { return e.err.Error() }
func (e *codedError) Unwrap() error  { return e.err }
func (e *codedError) WireCode() byte { return e.code }

// WithCode tags err with a one-byte application error code that survives
// the wire: when a sync handler returns the tagged error, the caller's
// Call yields a *RemoteError carrying the same code. Code 0 is reserved
// for "no code".
func WithCode(code byte, err error) error {
	if err == nil {
		return nil
	}
	return &codedError{code: code, err: err}
}

// ErrorCode extracts the wire code from err or any error it wraps,
// returning 0 if none was attached.
func ErrorCode(err error) byte {
	for err != nil {
		switch e := err.(type) {
		case *codedError:
			return e.code
		case *RemoteError:
			return e.Code
		}
		err = errors.Unwrap(err)
	}
	return 0
}

// Options configures a Node.
type Options struct {
	// BatchBytes is the packing buffer size per destination: an async
	// batch is flushed when it would exceed this. Zero means 64 KiB.
	BatchBytes int
	// FlushInterval bounds how long a small async message can linger in
	// the packing buffer. Zero means 2ms. Negative disables the
	// background flusher (tests and BSP flush explicitly).
	FlushInterval time.Duration
	// CallTimeout bounds synchronous calls. Zero means 10s.
	CallTimeout time.Duration
	// NoPacking disables message packing entirely: every async message
	// travels in its own frame. Used by the packing ablation benchmark.
	NoPacking bool
	// Metrics is the registry the node publishes its counters to, under
	// the scope "msg.m<id>". Nil gives the node a private registry, which
	// keeps independently constructed nodes (tests, ad-hoc tools) isolated
	// from each other; a memory cloud passes its own registry so all of a
	// cluster's nodes land in one snapshot.
	Metrics *obs.Registry
}

// Node is a machine's messaging runtime: it owns a transport endpoint,
// dispatches incoming frames to registered protocol handlers, correlates
// synchronous responses, and packs small asynchronous messages.
type Node struct {
	tr   Transport
	opts Options

	mu    sync.RWMutex
	sync  map[ProtocolID]SyncHandler
	async map[ProtocolID]AsyncHandler

	nextCorr uint64
	callsMu  sync.Mutex
	calls    map[uint64]chan callResult

	packMu  sync.Mutex
	packers map[MachineID]*packer
	flushCh chan struct{}
	closed  atomic.Bool

	metrics nodeMetrics

	destMu   sync.Mutex
	dests    map[MachineID]*destMetrics
	outboxes map[MachineID]*outbox
}

// outbox serializes the frames bound for one destination. A ticket is
// issued at the moment the frame's place in the send order is decided —
// under packMu for packed batches, so ticket order equals packing order —
// and frames drain strictly in ticket order, each one's transport Send
// completing before the next begins. This is what upholds the per-sender
// ordering contract: without it, a goroutine that sealed a full batch
// inside Send could lose the race to a timer Flush carrying newer
// messages and push the older batch onto the transport second.
type outbox struct {
	mu   sync.Mutex
	cond sync.Cond
	tick uint64 // next ticket to issue
	next uint64 // next ticket allowed to send
}

func newOutbox() *outbox {
	ob := &outbox{}
	ob.cond.L = &ob.mu
	return ob
}

// take issues the next ticket. Callers deciding send order under packMu
// call this while still holding packMu.
func (ob *outbox) take() uint64 {
	ob.mu.Lock()
	t := ob.tick
	ob.tick++
	ob.mu.Unlock()
	return t
}

// wait blocks until the ticket's turn.
func (ob *outbox) wait(ticket uint64) {
	ob.mu.Lock()
	for ob.next != ticket {
		ob.cond.Wait()
	}
	ob.mu.Unlock()
}

func (ob *outbox) done() {
	ob.mu.Lock()
	ob.next++
	ob.cond.Broadcast()
	ob.mu.Unlock()
}

// nodeMetrics are the node's registry-backed counters. The Stats()
// accessor reads these, so the pre-obs Stats struct stays available to
// existing tests and benchmark tables.
type nodeMetrics struct {
	scope         *obs.Scope
	messagesSent  *obs.Counter
	framesSent    *obs.Counter
	bytesSent     *obs.Counter
	syncCalls     *obs.Counter
	asyncReceived *obs.Counter
	batchesRecv   *obs.Counter
	droppedFrames *obs.Counter
	noHandler     *obs.Counter
	callNs        *obs.Histogram

	callsCancelled    *obs.Counter
	deadlineDroppedRx *obs.Counter
}

// destMetrics tracks per-destination traffic: bytes and frames shipped,
// plus the packing buffer's current depth (bytes queued, not yet on the
// transport). Entries are created on first send to a destination.
type destMetrics struct {
	bytes      *obs.Counter
	frames     *obs.Counter
	queueBytes *obs.Gauge
}

// callResult carries a parked sync reply. On success, payload aliases
// lease, whose one reference travels with the result: whoever takes the
// result out of the channel (the waiting Call, or the cleanup drain when
// the caller gave up) owes the Release.
type callResult struct {
	lease   *buf.Lease
	payload []byte
	err     error
}

type packer struct {
	l     *buf.Lease
	count int
	dm    *destMetrics
}

// NewNode creates a messaging runtime on the given transport endpoint and
// installs itself as the endpoint's receiver.
func NewNode(tr Transport, opts Options) *Node {
	if opts.BatchBytes <= 0 {
		opts.BatchBytes = 64 << 10
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = 2 * time.Millisecond
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 10 * time.Second
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	scope := reg.Scope(fmt.Sprintf("msg.m%d", tr.Local()))
	n := &Node{
		tr:       tr,
		opts:     opts,
		sync:     make(map[ProtocolID]SyncHandler),
		async:    make(map[ProtocolID]AsyncHandler),
		calls:    make(map[uint64]chan callResult),
		packers:  make(map[MachineID]*packer),
		flushCh:  make(chan struct{}),
		dests:    make(map[MachineID]*destMetrics),
		outboxes: make(map[MachineID]*outbox),
		metrics: nodeMetrics{
			scope:         scope,
			messagesSent:  scope.Counter("messages_sent"),
			framesSent:    scope.Counter("frames_sent"),
			bytesSent:     scope.Counter("bytes_sent"),
			syncCalls:     scope.Counter("sync_calls"),
			asyncReceived: scope.Counter("async_received"),
			batchesRecv:   scope.Counter("batches_recv"),
			droppedFrames: scope.Counter("dropped_frames"),
			noHandler:     scope.Counter("no_handler"),
			callNs:        scope.Histogram("call_ns"),

			callsCancelled:    scope.Counter("calls_cancelled"),
			deadlineDroppedRx: scope.Counter("deadline_dropped_rx"),
		},
	}
	tr.SetReceiver(n.receive)
	if opts.FlushInterval > 0 && !opts.NoPacking {
		go n.flushLoop()
	}
	return n
}

// ID returns the local machine ID.
func (n *Node) ID() MachineID { return n.tr.Local() }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	return Stats{
		MessagesSent:  n.metrics.messagesSent.Load(),
		FramesSent:    n.metrics.framesSent.Load(),
		BytesSent:     n.metrics.bytesSent.Load(),
		SyncCalls:     n.metrics.syncCalls.Load(),
		AsyncReceived: n.metrics.asyncReceived.Load(),
		BatchesRecv:   n.metrics.batchesRecv.Load(),
		DroppedFrames: n.metrics.droppedFrames.Load(),
		NoHandler:     n.metrics.noHandler.Load(),

		CallsCancelled:    n.metrics.callsCancelled.Load(),
		DeadlineDroppedRx: n.metrics.deadlineDroppedRx.Load(),
	}
}

// outboxFor returns (creating on first use) the send sequencer for
// machine to.
func (n *Node) outboxFor(to MachineID) *outbox {
	n.destMu.Lock()
	defer n.destMu.Unlock()
	ob, ok := n.outboxes[to]
	if !ok {
		ob = newOutbox()
		n.outboxes[to] = ob
	}
	return ob
}

// destMetricsFor returns (creating on first use) the per-destination
// traffic metrics for machine to, named msg.m<self>.dest.m<to>.*.
func (n *Node) destMetricsFor(to MachineID) *destMetrics {
	n.destMu.Lock()
	defer n.destMu.Unlock()
	dm, ok := n.dests[to]
	if !ok {
		scope := n.metrics.scope.Scope(fmt.Sprintf("dest.m%d", to))
		dm = &destMetrics{
			bytes:      scope.Counter("bytes"),
			frames:     scope.Counter("frames"),
			queueBytes: scope.Gauge("queue_bytes"),
		}
		n.dests[to] = dm
	}
	return dm
}

// HandleSync registers the handler for a synchronous protocol. Protocols
// must be registered before any peer calls them.
func (n *Node) HandleSync(p ProtocolID, h SyncHandler) {
	n.mu.Lock()
	n.sync[p] = h
	n.mu.Unlock()
}

// HandleAsync registers the handler for an asynchronous protocol.
func (n *Node) HandleAsync(p ProtocolID, h AsyncHandler) {
	n.mu.Lock()
	n.async[p] = h
	n.mu.Unlock()
}

// Call performs a synchronous request-response exchange, like invoking a
// local method on a remote machine (the TSL "Syn" protocol type). The
// caller's remaining budget — min(ctx deadline, CallTimeout), expressed
// in relative microseconds because peer clocks are not synchronized — is
// encoded into the request frame so the receiver can drop the request if
// it arrives already expired and hand the handler a context carrying
// what is left. Cancelling ctx abandons the wait immediately: the reply,
// if it ever arrives, is discarded by the correlation table.
func (n *Node) Call(ctx context.Context, to MachineID, p ProtocolID, request []byte) ([]byte, error) {
	lease, payload, err := n.CallLease(ctx, to, p, request)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), payload...)
	lease.Release()
	return out, nil
}

// CallLease is Call without the final copy: on success the response
// payload aliases the reply frame's pooled lease, which the caller owns
// and must Release once done decoding (hot readers like the multi-get
// pipeline decode in place and release when their futures resolve). On
// error the lease is already settled and must not be touched.
func (n *Node) CallLease(ctx context.Context, to MachineID, p ProtocolID, request []byte) (*buf.Lease, []byte, error) {
	if n.closed.Load() {
		return nil, nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		n.metrics.callsCancelled.Inc()
		return nil, nil, err
	}
	// The wire budget is the caller's deadline capped by CallTimeout: a
	// context with no deadline still must not pin the remote handler (or
	// this wait) forever. Zero on the wire means "no deadline", so the
	// clamp to 1µs keeps a just-expiring budget distinguishable.
	budget := n.opts.CallTimeout
	if d, ok := ctx.Deadline(); ok {
		if until := time.Until(d); until < budget {
			budget = until
		}
	}
	if budget <= 0 {
		budget = time.Microsecond
	}
	corr := atomic.AddUint64(&n.nextCorr, 1)
	ch := make(chan callResult, 1)
	n.callsMu.Lock()
	n.calls[corr] = ch
	n.callsMu.Unlock()
	defer func() {
		n.callsMu.Lock()
		delete(n.calls, corr)
		n.callsMu.Unlock()
		// Settle any reply this call will never look at: a late reply
		// parked just before the delete, or a chaos duplicate parked
		// after the first was consumed. Parking happens under callsMu,
		// so after the delete nothing new can land here.
		select {
		case res := <-ch:
			if res.lease != nil {
				res.lease.Release()
			}
		default:
		}
	}()

	fl := buf.Get(syncReqHeader + len(request))
	frame := fl.Bytes()
	frame[0] = kindSyncReq
	binary.LittleEndian.PutUint16(frame[1:], uint16(p))
	binary.LittleEndian.PutUint64(frame[3:], corr)
	binary.LittleEndian.PutUint64(frame[frameHeader:], uint64(budget.Microseconds()))
	copy(frame[syncReqHeader:], request)
	n.metrics.syncCalls.Inc()
	n.metrics.messagesSent.Inc()
	start := time.Now()
	if err := n.sendFrame(to, fl); err != nil {
		return nil, nil, err
	}
	// time.NewTimer + Stop, not time.After: the After timer would survive
	// until the full CallTimeout even after the reply arrived, leaking one
	// live timer per call at high call rates (BenchmarkCallTimerChurn
	// guards this). The timer covers only the CallTimeout cap; the
	// caller's own (possibly earlier) deadline fires through ctx.Done and
	// surfaces as ctx.Err, keeping the two failure modes distinguishable.
	timer := time.NewTimer(n.opts.CallTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		n.metrics.callNs.Observe(int64(time.Since(start)))
		return res.lease, res.payload, res.err
	case <-ctx.Done():
		n.metrics.callsCancelled.Inc()
		n.metrics.callNs.Observe(int64(time.Since(start)))
		return nil, nil, ctx.Err()
	case <-timer.C:
		n.metrics.callNs.Observe(int64(time.Since(start)))
		return nil, nil, fmt.Errorf("%w: protocol %d to machine %d", ErrTimeout, p, to)
	}
}

// Send submits an asynchronous one-way message. Small messages to the same
// destination are packed into a single transfer; call Flush to force
// delivery (BSP supersteps flush at the end of every step).
func (n *Node) Send(to MachineID, p ProtocolID, msg []byte) error {
	if n.closed.Load() {
		return ErrClosed
	}
	n.metrics.messagesSent.Inc()
	if n.opts.NoPacking {
		fl := buf.Get(frameHeader + len(msg))
		frame := fl.Bytes()
		frame[0] = kindAsync
		binary.LittleEndian.PutUint16(frame[1:], uint16(p))
		copy(frame[frameHeader:], msg)
		return n.sendFrame(to, fl)
	}
	n.packMu.Lock()
	pk, ok := n.packers[to]
	if !ok {
		// The batch buffer is a pooled lease sized to BatchBytes up
		// front: in steady state the same backing arrays cycle between
		// packer and pool, so reserving the full batch costs nothing and
		// spares the append-growth copy chain of a small initial buffer.
		pk = &packer{l: buf.Sized(1, n.opts.BatchBytes), dm: n.destMetricsFor(to)}
		pk.l.Bytes()[0] = kindBatch
		n.packers[to] = pk
	}
	var item [batchItem]byte
	binary.LittleEndian.PutUint16(item[0:], uint16(p))
	binary.LittleEndian.PutUint32(item[2:], uint32(len(msg)))
	pk.l = pk.l.Append(item[:], msg)
	pk.count++
	var flush *buf.Lease
	var ob *outbox
	var ticket uint64
	if pk.l.Len() >= n.opts.BatchBytes {
		flush = pk.l
		delete(n.packers, to)
		pk.dm.queueBytes.Set(0)
		// Ticket the sealed batch while still holding packMu: the send
		// order is decided here, not at the transport, so a concurrent
		// Flush that grabs a newer batch for the same destination cannot
		// overtake this one (it draws a later ticket).
		ob = n.outboxFor(to)
		ticket = ob.take()
	} else {
		pk.dm.queueBytes.Set(int64(pk.l.Len()))
	}
	n.packMu.Unlock()
	if flush != nil {
		return n.sendTicketed(to, ob, ticket, flush)
	}
	return nil
}

// Flush forces out all pending packed messages. It returns the first send
// error encountered, if any.
func (n *Node) Flush() error {
	type pendingSend struct {
		to     MachineID
		fl     *buf.Lease
		ob     *outbox
		ticket uint64
	}
	n.packMu.Lock()
	pending := n.packers
	n.packers = make(map[MachineID]*packer)
	outs := make([]pendingSend, 0, len(pending))
	for to, pk := range pending {
		pk.dm.queueBytes.Set(0)
		ob := n.outboxFor(to)
		outs = append(outs, pendingSend{to: to, fl: pk.l, ob: ob, ticket: ob.take()})
	}
	n.packMu.Unlock()
	var firstErr error
	for _, o := range outs {
		if err := n.sendTicketed(o.to, o.ob, o.ticket, o.fl); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (n *Node) flushLoop() {
	ticker := time.NewTicker(n.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.flushCh:
			return
		case <-ticker.C:
			n.Flush()
		}
	}
}

// Close flushes pending messages and shuts the node down.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	if n.opts.FlushInterval > 0 && !n.opts.NoPacking {
		close(n.flushCh)
	}
	n.Flush()
	return n.tr.Close()
}

// sendFrame ships one frame, sequenced behind any frames already
// ticketed for the same destination. Like Transport.Send, it consumes one
// reference to the frame in every outcome.
func (n *Node) sendFrame(to MachineID, frame *buf.Lease) error {
	ob := n.outboxFor(to)
	return n.sendTicketed(to, ob, ob.take(), frame)
}

// sendTicketed waits for the frame's turn in the destination's send
// order, ships it, then releases the next ticket. Holding the turn across
// tr.Send is what makes the order observable at the receiver: transports
// deliver frames per (sender, receiver) pair in Send-call order, so
// serialized calls arrive serialized. The frame's length is read before
// Send: afterwards the lease may already be recycled.
func (n *Node) sendTicketed(to MachineID, ob *outbox, ticket uint64, frame *buf.Lease) error {
	ob.wait(ticket)
	defer ob.done()
	size := int64(frame.Len())
	n.metrics.framesSent.Inc()
	n.metrics.bytesSent.Add(size)
	dm := n.destMetricsFor(to)
	dm.frames.Inc()
	dm.bytes.Add(size)
	return n.tr.Send(to, frame)
}

// receive dispatches one incoming frame. It runs on the transport's
// delivery goroutine; sync handlers are dispatched to fresh goroutines so
// a slow handler cannot stall the pipe, while async messages within a
// batch run in order (the BSP engine relies on per-sender ordering).
//
// Frame ownership: receive owns one reference to fl (the Transport
// receiver contract) and settles it without copying the payload — a sync
// request's reference transfers to the serveSync goroutine, a sync
// reply's travels with the parked callResult to the waiting caller, and
// async/batch frames are released here after their in-order inline
// dispatch (covered by the AsyncHandler no-retain contract).
func (n *Node) receive(from MachineID, fl *buf.Lease) {
	frame := fl.Bytes()
	if len(frame) == 0 {
		n.metrics.droppedFrames.Inc()
		fl.Release()
		return
	}
	switch frame[0] {
	case kindSyncReq:
		if len(frame) < syncReqHeader {
			n.metrics.droppedFrames.Inc()
			fl.Release()
			return
		}
		p := ProtocolID(binary.LittleEndian.Uint16(frame[1:]))
		corr := binary.LittleEndian.Uint64(frame[3:])
		// Re-anchor the relative budget against the local clock at the
		// moment of arrival. A non-positive budget means the caller's
		// deadline was spent in transit (or before send, for hand-crafted
		// frames): drop before dispatch, visibly. No error reply is owed —
		// the caller's own context expires at the same moment.
		budget := int64(binary.LittleEndian.Uint64(frame[frameHeader:]))
		var deadline time.Time
		if budget != 0 {
			if budget < 0 {
				n.metrics.deadlineDroppedRx.Inc()
				fl.Release()
				return
			}
			deadline = time.Now().Add(time.Duration(budget) * time.Microsecond)
		}
		n.mu.RLock()
		h := n.sync[p]
		n.mu.RUnlock()
		// The request is served zero-copy: the handler reads the payload
		// straight out of the frame lease, whose reference now belongs to
		// the serveSync goroutine.
		go n.serveSync(from, p, corr, h, fl, deadline)
	case kindSyncResp, kindSyncErr:
		if len(frame) < frameHeader {
			n.metrics.droppedFrames.Inc()
			fl.Release()
			return
		}
		corr := binary.LittleEndian.Uint64(frame[3:])
		res := callResult{}
		retain := false
		if frame[0] == kindSyncErr {
			body := frame[frameHeader:]
			re := &RemoteError{}
			if len(body) >= 1 {
				re.Code = body[0]
				re.Msg = string(body[1:])
			}
			if re.Code == CodeFrameTooLarge {
				// The remote handler produced a reply its transport
				// refused to ship; surface the sentinel so callers can
				// errors.Is it.
				res.err = fmt.Errorf("%w: remote reply: %s", ErrFrameTooLarge, re.Msg)
			} else {
				res.err = re
			}
		} else {
			res.lease = fl
			res.payload = frame[frameHeader:]
			retain = true
		}
		// Park under callsMu: CallLease deletes the correlation entry
		// under the same lock before draining the channel, so a result
		// parked here is either consumed by the caller or swept by its
		// cleanup drain — never stranded holding a lease.
		delivered := false
		n.callsMu.Lock()
		if ch := n.calls[corr]; ch != nil {
			select {
			case ch <- res:
				delivered = true
			default: // duplicate reply; the first one won
			}
		}
		n.callsMu.Unlock()
		if !retain || !delivered {
			fl.Release()
		}
	case kindAsync:
		if len(frame) < frameHeader {
			n.metrics.droppedFrames.Inc()
			fl.Release()
			return
		}
		p := ProtocolID(binary.LittleEndian.Uint16(frame[1:]))
		n.dispatchAsync(from, p, frame[frameHeader:])
		fl.Release()
	case kindBatch:
		n.metrics.batchesRecv.Inc()
		body := frame[1:]
		for len(body) >= batchItem {
			p := ProtocolID(binary.LittleEndian.Uint16(body[0:]))
			size := int(binary.LittleEndian.Uint32(body[2:]))
			body = body[batchItem:]
			if size > len(body) {
				// Malformed tail: account for it so chaos runs and
				// production can tell "corrupted in transit" from
				// "never sent".
				n.metrics.droppedFrames.Inc()
				fl.Release()
				return
			}
			n.dispatchAsync(from, p, body[:size])
			body = body[size:]
		}
		fl.Release()
	default:
		n.metrics.droppedFrames.Inc()
		fl.Release()
	}
}

// serveSync runs one sync handler and ships the reply. It owns the
// request frame's lease: the handler reads the request in place, the
// response is encoded into a fresh lease (the handler may return slices
// aliasing the request, so the copy happens before the request lease is
// settled by the deferred Release).
func (n *Node) serveSync(from MachineID, p ProtocolID, corr uint64, h SyncHandler, fl *buf.Lease, deadline time.Time) {
	defer fl.Release()
	req := fl.Bytes()[syncReqHeader:]
	ctx := context.Background()
	if !deadline.IsZero() {
		// Second expiry check at dispatch time: goroutine scheduling under
		// load can burn the tail of a small budget between receive and
		// here. Counted the same as an on-arrival drop.
		if !time.Now().Before(deadline) {
			n.metrics.deadlineDroppedRx.Inc()
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	var resp []byte
	var err error
	if h == nil {
		err = fmt.Errorf("%w: %d", ErrNoHandler, p)
	} else {
		resp, err = h(ctx, from, req)
	}
	kind := kindSyncResp
	if err != nil {
		kind = kindSyncErr
		// Error frames carry [code][message]: the code (0 if the handler
		// attached none via WithCode) lets the caller map sentinel errors
		// without substring-matching the message.
		resp = append([]byte{ErrorCode(err)}, err.Error()...)
	}
	out := buf.Get(frameHeader + len(resp))
	ob := out.Bytes()
	ob[0] = kind
	binary.LittleEndian.PutUint16(ob[1:], uint16(p))
	binary.LittleEndian.PutUint64(ob[3:], corr)
	copy(ob[frameHeader:], resp)
	// Best effort: if the caller's machine died, the reply is dropped and
	// the caller times out.
	if err := n.sendFrame(from, out); errors.Is(err, ErrFrameTooLarge) && kind == kindSyncResp {
		// The reply exceeded the transport's frame bound. A silent drop
		// would cost the caller its full timeout; a one-byte wire error
		// (CodeFrameTooLarge) tells it why immediately.
		emsg := err.Error()
		efl := buf.Get(frameHeader + 1 + len(emsg))
		eb := efl.Bytes()
		eb[0] = kindSyncErr
		binary.LittleEndian.PutUint16(eb[1:], uint16(p))
		binary.LittleEndian.PutUint64(eb[3:], corr)
		eb[frameHeader] = CodeFrameTooLarge
		copy(eb[frameHeader+1:], emsg)
		_ = n.sendFrame(from, efl)
	}
}

func (n *Node) dispatchAsync(from MachineID, p ProtocolID, msg []byte) {
	n.mu.RLock()
	h := n.async[p]
	n.mu.RUnlock()
	if h == nil {
		// Dead-letter: the message is dropped, but visibly.
		n.metrics.noHandler.Inc()
		return
	}
	n.metrics.asyncReceived.Inc()
	h(from, msg)
}
