package msg

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPTransport is a Transport over real TCP sockets. Frames are
// length-prefixed (4-byte little-endian length, 4-byte sender ID, body).
// Connections to peers are dialed lazily and kept open; a failed dial or a
// broken pipe surfaces as ErrUnreachable, exactly like the in-process bus,
// so the cluster layer's failure detection works unchanged over both.
type TCPTransport struct {
	id       MachineID
	listener net.Listener

	mu      sync.Mutex
	peers   map[MachineID]string // machine -> address
	conns   map[MachineID]net.Conn
	inbound map[net.Conn]bool
	recv    func(MachineID, []byte)
	done    bool
	wg      sync.WaitGroup
}

// NewTCPTransport starts listening on addr ("" or "127.0.0.1:0" for an
// ephemeral loopback port) and returns the transport. Peer addresses are
// registered with AddPeer; use Addr to learn the bound address.
func NewTCPTransport(id MachineID, addr string) (*TCPTransport, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msg: listen: %w", err)
	}
	t := &TCPTransport{
		id:       id,
		listener: l,
		peers:    make(map[MachineID]string),
		conns:    make(map[MachineID]net.Conn),
		inbound:  make(map[net.Conn]bool),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// AddPeer registers the address of another machine.
func (t *TCPTransport) AddPeer(id MachineID, addr string) {
	t.mu.Lock()
	t.peers[id] = addr
	t.mu.Unlock()
}

// Local implements Transport.
func (t *TCPTransport) Local() MachineID { return t.id }

// SetReceiver implements Transport.
func (t *TCPTransport) SetReceiver(fn func(MachineID, []byte)) {
	t.mu.Lock()
	t.recv = fn
	t.mu.Unlock()
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.done {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.read(conn)
	}
}

func (t *TCPTransport) read(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hdr [8]byte
	var buf []byte // reused across frames: receivers must copy what they retain
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[0:])
		from := MachineID(int32(binary.LittleEndian.Uint32(hdr[4:])))
		if size > 1<<30 {
			return // refuse absurd frames
		}
		if uint32(cap(buf)) < size {
			buf = make([]byte, size)
		}
		frame := buf[:size]
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		t.mu.Lock()
		recv := t.recv
		t.mu.Unlock()
		if recv != nil {
			recv(from, frame)
		}
	}
}

// Send implements Transport. Writes to one peer are serialized by the
// transport lock; the frame copy happens in the kernel.
func (t *TCPTransport) Send(to MachineID, frame []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrClosed
	}
	conn, err := t.connLocked(to)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(t.id)))
	if _, err := conn.Write(hdr[:]); err == nil {
		_, err = conn.Write(frame)
		if err == nil {
			return nil
		}
	}
	// Broken connection: drop it and report the peer unreachable.
	conn.Close()
	delete(t.conns, to)
	return fmt.Errorf("%w: machine %d", ErrUnreachable, to)
}

func (t *TCPTransport) connLocked(to MachineID) (net.Conn, error) {
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	addr, ok := t.peers[to]
	if !ok {
		return nil, fmt.Errorf("%w: machine %d has no registered address", ErrUnreachable, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: machine %d: %v", ErrUnreachable, to, err)
	}
	t.conns[to] = c
	return c, nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	t.done = true
	for _, c := range t.conns {
		c.Close()
	}
	t.conns = make(map[MachineID]net.Conn)
	for c := range t.inbound {
		c.Close() // unblocks the read goroutine
	}
	t.mu.Unlock()
	err := t.listener.Close()
	t.wg.Wait()
	return err
}
