package msg

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"trinity/internal/buf"
	"trinity/internal/obs"
)

// DefaultMaxFrameSize bounds a single frame on the wire (16 MiB). The
// inbound length prefix is attacker-controlled: without a bound, one
// corrupt or hostile peer could make the receiver allocate an
// arbitrary-size buffer per frame. Oversized inbound frames are drained
// and discarded (counted on the oversize_frames counter, connection kept);
// oversized outbound frames are refused with ErrFrameTooLarge before
// touching the socket.
const DefaultMaxFrameSize = 16 << 20

// TCPOptions configures a TCPTransport beyond its listen address.
type TCPOptions struct {
	// MaxFrameSize bounds frames in both directions. Zero means
	// DefaultMaxFrameSize.
	MaxFrameSize uint32
	// Metrics is the registry for the transport's counters, under
	// "msg.m<id>.tcp". Nil gives the transport a private registry.
	Metrics *obs.Registry
}

// TCPTransport is a Transport over real TCP sockets. Frames are
// length-prefixed (4-byte little-endian length, 4-byte sender ID, body).
// Connections to peers are dialed lazily and kept open; a failed dial or a
// broken pipe surfaces as ErrUnreachable, exactly like the in-process bus,
// so the cluster layer's failure detection works unchanged over both.
type TCPTransport struct {
	id       MachineID
	listener net.Listener
	maxFrame uint32
	oversize *obs.Counter

	mu      sync.Mutex
	peers   map[MachineID]string // machine -> address
	conns   map[MachineID]net.Conn
	inbound map[net.Conn]bool
	recv    func(MachineID, *buf.Lease)
	done    bool
	wg      sync.WaitGroup
}

// NewTCPTransport starts listening on addr ("" or "127.0.0.1:0" for an
// ephemeral loopback port) with default options. Peer addresses are
// registered with AddPeer; use Addr to learn the bound address.
func NewTCPTransport(id MachineID, addr string) (*TCPTransport, error) {
	return NewTCPTransportOpts(id, addr, TCPOptions{})
}

// NewTCPTransportOpts is NewTCPTransport with explicit options.
func NewTCPTransportOpts(id MachineID, addr string, opts TCPOptions) (*TCPTransport, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if opts.MaxFrameSize == 0 {
		opts.MaxFrameSize = DefaultMaxFrameSize
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("msg: listen: %w", err)
	}
	t := &TCPTransport{
		id:       id,
		listener: l,
		maxFrame: opts.MaxFrameSize,
		oversize: reg.Scope(fmt.Sprintf("msg.m%d.tcp", id)).Counter("oversize_frames"),
		peers:    make(map[MachineID]string),
		conns:    make(map[MachineID]net.Conn),
		inbound:  make(map[net.Conn]bool),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// AddPeer registers the address of another machine.
func (t *TCPTransport) AddPeer(id MachineID, addr string) {
	t.mu.Lock()
	t.peers[id] = addr
	t.mu.Unlock()
}

// Local implements Transport.
func (t *TCPTransport) Local() MachineID { return t.id }

// SetReceiver implements Transport.
func (t *TCPTransport) SetReceiver(fn func(MachineID, *buf.Lease)) {
	t.mu.Lock()
	t.recv = fn
	t.mu.Unlock()
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.done {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.read(conn)
	}
}

func (t *TCPTransport) read(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[0:])
		from := MachineID(int32(binary.LittleEndian.Uint32(hdr[4:])))
		if size > t.maxFrame {
			// The length prefix is untrusted input: drain the frame off
			// the stream (keeping the connection framed) and drop it,
			// visibly, instead of allocating whatever a corrupt or
			// hostile peer asked for.
			t.oversize.Inc()
			if _, err := io.CopyN(io.Discard, conn, int64(size)); err != nil {
				return
			}
			continue
		}
		// Each frame reads into its own pooled lease whose reference
		// transfers to the receiver — no per-connection buffer reuse, no
		// defensive copy downstream.
		frame := buf.Get(int(size))
		if _, err := io.ReadFull(conn, frame.Bytes()); err != nil {
			frame.Release()
			return
		}
		t.mu.Lock()
		recv := t.recv
		t.mu.Unlock()
		if recv != nil {
			recv(from, frame)
		} else {
			frame.Release()
		}
	}
}

// Send implements Transport, consuming one reference to frame in every
// outcome. Writes to one peer are serialized by the transport lock; the
// frame copy happens in the kernel.
func (t *TCPTransport) Send(to MachineID, frame *buf.Lease) error {
	defer frame.Release()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return ErrClosed
	}
	if uint32(frame.Len()) > t.maxFrame {
		return fmt.Errorf("%w: %d bytes to machine %d (limit %d)", ErrFrameTooLarge, frame.Len(), to, t.maxFrame)
	}
	conn, err := t.connLocked(to)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(frame.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(t.id)))
	if _, err := conn.Write(hdr[:]); err == nil {
		_, err = conn.Write(frame.Bytes())
		if err == nil {
			return nil
		}
	}
	// Broken connection: drop it and report the peer unreachable.
	conn.Close()
	delete(t.conns, to)
	return fmt.Errorf("%w: machine %d", ErrUnreachable, to)
}

func (t *TCPTransport) connLocked(to MachineID) (net.Conn, error) {
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	addr, ok := t.peers[to]
	if !ok {
		return nil, fmt.Errorf("%w: machine %d has no registered address", ErrUnreachable, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: machine %d: %v", ErrUnreachable, to, err)
	}
	t.conns[to] = c
	return c, nil
}

// OversizeFrames returns the count of inbound frames discarded for
// exceeding MaxFrameSize.
func (t *TCPTransport) OversizeFrames() int64 { return t.oversize.Load() }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	t.done = true
	for _, c := range t.conns {
		c.Close()
	}
	t.conns = make(map[MachineID]net.Conn)
	for c := range t.inbound {
		c.Close() // unblocks the read goroutine
	}
	t.mu.Unlock()
	err := t.listener.Close()
	t.wg.Wait()
	return err
}
