package msg

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"trinity/internal/buf"
)

// Chaos is a seeded, fault-injecting Transport decorator: it sits between
// a Node and the real transport (Bus or TCP) and injects drops, delays,
// duplicates and one-way partitions according to per-(sender, receiver)
// policies. One Chaos hub decorates every endpoint of a simulated cluster
// so a single seed reproduces a whole cluster's fault schedule.
//
// Determinism: all randomness comes from one seeded PRNG, consumed in
// Send-call order. A single-goroutine send sequence replays exactly; under
// concurrency the schedule is reproducible in distribution (the same seed
// explores the same fault mix), which is what the chaos CI seeds pin down.
//
// Chaos deliberately distinguishes two fault classes:
//
//   - Contract-preserving faults (Jitter, PoisonFrames): a correct Node
//     must survive them with zero observable difference. Jitter stretches
//     the window between concurrent transport sends — the schedule noise
//     that exposes ordering races. Poisoning scribbles over every frame
//     after the receiver callback returns, which catches any component
//     that retains a transport-owned buffer (see the Transport ownership
//     contract in transport.go).
//   - Contract-breaking faults (Drop, Dup, Delay, Cut): the network is
//     allowed to do these, so layers above msg (memcloud's withOwner
//     retry, cluster failure detection) must recover; the Node itself
//     promises nothing about messages the transport never delivered.
type Chaos struct {
	mu       sync.Mutex
	rng      *rand.Rand
	def      Policy
	pairs    map[[2]MachineID]Policy
	isolated map[MachineID]bool
	poison   bool
	stats    ChaosStats
	wg       sync.WaitGroup
	closed   bool
}

// Policy is the fault mix applied to one (sender, receiver) direction.
// The zero Policy injects nothing.
type Policy struct {
	// Drop is the probability a frame is silently lost (the sender's
	// Send still returns nil, exactly like a lossy network).
	Drop float64
	// Dup is the probability a frame is delivered twice.
	Dup float64
	// Delay is the probability a frame is held back for a random
	// duration up to MaxDelay before reaching the transport, reordering
	// it against later frames.
	Delay float64
	// MaxDelay bounds Delay's holdback. Zero means 1ms.
	MaxDelay time.Duration
	// Jitter adds a uniform random sleep in [0, Jitter) inside every
	// Send. Unlike Delay it blocks the caller, so it cannot reorder
	// frames a correct Node sequences — it only widens race windows.
	Jitter time.Duration
	// Cut drops every frame: a one-way partition.
	Cut bool
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Sent       int64 // frames submitted to chaos endpoints
	Delivered  int64 // frames handed to the inner transport (dups count)
	Dropped    int64 // frames lost to Drop or Cut
	Duplicated int64
	Delayed    int64
}

// NewChaos creates a fault injector with the given PRNG seed.
func NewChaos(seed int64) *Chaos {
	return &Chaos{
		rng:      rand.New(rand.NewSource(seed)),
		pairs:    make(map[[2]MachineID]Policy),
		isolated: make(map[MachineID]bool),
	}
}

// SetDefault installs the policy used for pairs without an override.
func (c *Chaos) SetDefault(p Policy) {
	c.mu.Lock()
	c.def = p
	c.mu.Unlock()
}

// SetPair overrides the policy for frames from -> to.
func (c *Chaos) SetPair(from, to MachineID, p Policy) {
	c.mu.Lock()
	c.pairs[[2]MachineID{from, to}] = p
	c.mu.Unlock()
}

// Cut installs a one-way partition: every frame from -> to is dropped.
func (c *Chaos) Cut(from, to MachineID) {
	c.SetPair(from, to, Policy{Cut: true})
}

// Heal removes the pair override for from -> to.
func (c *Chaos) Heal(from, to MachineID) {
	c.mu.Lock()
	delete(c.pairs, [2]MachineID{from, to})
	c.mu.Unlock()
}

// Isolate drops every frame to and from id (a full partition of one
// machine, as seen by everyone else a crash).
func (c *Chaos) Isolate(id MachineID) {
	c.mu.Lock()
	c.isolated[id] = true
	c.mu.Unlock()
}

// Rejoin undoes Isolate.
func (c *Chaos) Rejoin(id MachineID) {
	c.mu.Lock()
	delete(c.isolated, id)
	c.mu.Unlock()
}

// PoisonFrames makes every chaos endpoint mark the frames it forwards so
// that the final lease Release scribbles garbage over the backing array
// before recycling it. Any component that kept an alias past its last
// reference reads the garbage (and races with the scribble under -race) —
// the lease-era equivalent of emulating a buffer-reusing transport.
func (c *Chaos) PoisonFrames(on bool) {
	c.mu.Lock()
	c.poison = on
	c.mu.Unlock()
}

// Stats returns a snapshot of injected-fault counts.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Drain blocks until all delayed frames have been handed to (or refused
// by) the inner transports. Tests call it before asserting delivery
// counts.
func (c *Chaos) Drain() { c.wg.Wait() }

// Wrap decorates one transport endpoint. Wrap every endpoint of a
// cluster with the same Chaos so pairwise policies cover all links.
func (c *Chaos) Wrap(tr Transport) Transport {
	return &chaosEndpoint{c: c, inner: tr}
}

type chaosEndpoint struct {
	c     *Chaos
	inner Transport
}

func (e *chaosEndpoint) Local() MachineID { return e.inner.Local() }

func (e *chaosEndpoint) SetReceiver(fn func(MachineID, *buf.Lease)) {
	e.inner.SetReceiver(fn)
}

func (e *chaosEndpoint) Close() error { return e.inner.Close() }

func (e *chaosEndpoint) Send(to MachineID, frame *buf.Lease) error {
	c := e.c
	from := e.inner.Local()
	c.mu.Lock()
	p, ok := c.pairs[[2]MachineID{from, to}]
	if !ok {
		p = c.def
	}
	cut := p.Cut || c.isolated[from] || c.isolated[to]
	c.stats.Sent++
	poison := c.poison
	var jitter, delay time.Duration
	var dup bool
	drop := cut
	if !drop && p.Drop > 0 && c.rng.Float64() < p.Drop {
		drop = true
	}
	if drop {
		c.stats.Dropped++
		c.mu.Unlock()
		// A dropped frame still settles the sender's reference: the
		// network ate it, exactly like a lossy link.
		frame.Release()
		return nil
	}
	if p.Jitter > 0 {
		jitter = time.Duration(c.rng.Int63n(int64(p.Jitter)))
	}
	if p.Delay > 0 && c.rng.Float64() < p.Delay {
		md := p.MaxDelay
		if md <= 0 {
			md = time.Millisecond
		}
		delay = time.Duration(c.rng.Int63n(int64(md))) + time.Microsecond
		c.stats.Delayed++
	}
	if p.Dup > 0 && c.rng.Float64() < p.Dup {
		dup = true
		c.stats.Duplicated++
	}
	c.mu.Unlock()

	if poison {
		frame.Poison()
	}
	if jitter > 0 {
		time.Sleep(jitter)
	}
	// Duplication shares the backing array: one extra reference, two
	// deliveries, and the bytes survive until the last receiver settles
	// its reference. No copy — which is precisely what makes dup+delay
	// the sharpest test of the lease contract: a receiver that releases
	// early hands its duplicate a recycled buffer.
	if delay > 0 {
		if dup {
			frame.Retain()
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			time.Sleep(delay)
			if e.inner.Send(to, frame) == nil {
				c.countDelivered()
			}
		}()
		if dup {
			err := e.inner.Send(to, frame)
			if err == nil {
				c.countDelivered()
			}
			return err
		}
		return nil
	}
	if dup {
		frame.Retain()
	}
	err := e.inner.Send(to, frame)
	if err == nil {
		c.countDelivered()
	}
	if dup {
		if err == nil {
			if e.inner.Send(to, frame) == nil {
				c.countDelivered()
			}
		} else {
			frame.Release()
		}
	}
	return err
}

func (c *Chaos) countDelivered() {
	c.mu.Lock()
	c.stats.Delivered++
	c.mu.Unlock()
}

// --- ordering invariant checker ---

// OrderChecker asserts the ordering contract Node promises its users:
// async messages submitted to the same destination are delivered in
// submission order per sender machine (and per lane, for senders with
// several submitting goroutines). Senders stamp every message with
// StampSeq; the receiver installs Handler as the protocol's async
// handler. Any message whose (lane, seq) is not strictly greater than
// the last one seen from that (sender, lane) is recorded as a violation.
//
// The checker is meaningful only under contract-preserving chaos
// policies (Jitter, Poison): once the transport itself drops or reorders
// frames, per-sender ordering is not the Node's to keep.
type OrderChecker struct {
	mu         sync.Mutex
	last       map[orderKey]uint64
	violations []string
	received   int64
}

type orderKey struct {
	from MachineID
	lane uint8
}

// NewOrderChecker creates an empty checker.
func NewOrderChecker() *OrderChecker {
	return &OrderChecker{last: make(map[orderKey]uint64)}
}

// StampSeq prepends a lane byte and a sequence number to payload,
// producing a message Handler can check. Sequence numbers within a lane
// start at 1 and must increase by the sender's submission order.
func StampSeq(lane uint8, seq uint64, payload []byte) []byte {
	out := make([]byte, 9+len(payload)) //alloc:ok test-harness stamping, not a data-path frame
	out[0] = lane
	binary.LittleEndian.PutUint64(out[1:], seq)
	copy(out[9:], payload)
	return out
}

// Handler returns an AsyncHandler that records every stamped message and
// checks per-(sender, lane) monotonicity.
func (oc *OrderChecker) Handler() AsyncHandler {
	return func(from MachineID, msg []byte) {
		oc.mu.Lock()
		defer oc.mu.Unlock()
		oc.received++
		if len(msg) < 9 {
			oc.violations = append(oc.violations,
				fmt.Sprintf("from m%d: short message (%d bytes)", from, len(msg)))
			return
		}
		k := orderKey{from: from, lane: msg[0]}
		seq := binary.LittleEndian.Uint64(msg[1:])
		if seq <= oc.last[k] {
			oc.violations = append(oc.violations,
				fmt.Sprintf("from m%d lane %d: seq %d delivered after %d", from, k.lane, seq, oc.last[k]))
			return
		}
		oc.last[k] = seq
	}
}

// Violations returns every ordering violation observed so far.
func (oc *OrderChecker) Violations() []string {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return append([]string(nil), oc.violations...)
}

// Received returns the number of messages observed.
func (oc *OrderChecker) Received() int64 {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return oc.received
}

// Seeds returns the chaos seeds for this test run: the CHAOS_SEEDS
// environment variable as a comma-separated list, or the fixed default
// {1, 2, 3}. CI pins its seeds through the same variable, so a failed CI
// seed reproduces locally with e.g. CHAOS_SEEDS=42 go test -race -run
// Chaos ./internal/...
func Seeds() []int64 {
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var out []int64
	for _, f := range strings.Split(env, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if v, err := strconv.ParseInt(f, 10, 64); err == nil {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return []int64{1, 2, 3}
	}
	return out
}
