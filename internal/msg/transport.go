// Package msg implements Trinity's message passing framework (paper §2,
// §4.2): an efficient, one-sided, machine-to-machine messaging layer with
// synchronous request-response protocols, asynchronous fire-and-forget
// protocols, and transparent packing of small asynchronous messages into
// large transfers.
//
// "One-sided" means a sender needs no prior appointment with the receiver:
// a registered handler runs on the receiving machine as soon as a message
// arrives, with no matching receive call — the property the paper credits
// for making fine-grained parallelism on graphs possible (§8).
//
// Two transports are provided: an in-process channel transport (Bus) used
// by the simulated cluster, and a TCP transport (length-prefixed frames
// over loopback or a real network). The protocol layer (Node) is transport
// agnostic.
package msg

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"trinity/internal/buf"
)

// MachineID identifies a machine in the cluster.
type MachineID int

// Errors returned by the messaging layer.
var (
	// ErrUnreachable reports that the destination machine is down or
	// disconnected. The cluster layer treats this as a failure signal.
	ErrUnreachable = errors.New("msg: machine unreachable")
	// ErrClosed reports that the local endpoint has been closed.
	ErrClosed = errors.New("msg: endpoint closed")
	// ErrNoHandler reports that the destination has no handler registered
	// for the protocol.
	ErrNoHandler = errors.New("msg: no handler for protocol")
	// ErrTimeout reports that a synchronous call timed out.
	ErrTimeout = errors.New("msg: call timed out")
	// ErrFrameTooLarge reports that a frame exceeds the transport's
	// MaxFrameSize: outbound, the send is refused locally; a remote
	// handler's oversized reply comes back as this error via a one-byte
	// wire error code (CodeFrameTooLarge).
	ErrFrameTooLarge = errors.New("msg: frame exceeds MaxFrameSize")
)

// Transport moves opaque frames between machines. Implementations must be
// safe for concurrent use. The receiver callback is invoked from transport
// goroutines; it must not block indefinitely.
//
// Frame ownership contract (both directions). Frames are buf.Leases and
// ownership moves by reference transfer, never by defensive copy:
//
//   - Send consumes exactly one reference to the frame, in every outcome:
//     on success the reference is settled once the frame is on the wire
//     (or queued for in-process delivery), on error it is released before
//     Send returns. A caller that wants to keep the frame after Send must
//     Retain it first (the chaos transport does, to duplicate frames).
//   - Receive: the receiver callback is handed one reference it now owns
//     and must settle — by releasing it when dispatch is done, or by
//     handing it to a longer-lived owner (the Node gives a sync request's
//     lease to the handler goroutine, and a sync reply's lease to the
//     waiting caller). The bytes are immutable while any reference is
//     live: duplicated frames may be delivered twice sharing one backing
//     array. The chaos transport's PoisonFrames mode scribbles over every
//     frame at its final release, precisely to flush out aliases that
//     outlive their reference.
//
// Ordering: frames between one (sender, receiver) pair are delivered in
// Send-call order. Transports promise nothing about frames whose Send
// calls overlap — sequencing concurrent sends is the protocol layer's
// job (Node's per-destination outbox).
type Transport interface {
	// Local returns this endpoint's machine ID.
	Local() MachineID
	// Send delivers a frame to the destination machine, consuming one
	// reference to it. It returns ErrUnreachable if the destination is
	// down.
	Send(to MachineID, frame *buf.Lease) error
	// SetReceiver installs the frame handler. Must be called before the
	// first Send to this endpoint. The handler owns one reference to
	// every frame it is given.
	SetReceiver(fn func(from MachineID, frame *buf.Lease))
	// Close shuts the endpoint down; subsequent Sends to it fail with
	// ErrUnreachable.
	Close() error
}

// Bus is an in-process transport hub: a simulated network connecting any
// number of endpoints. Frames are delivered in order per (sender,
// receiver) pair by a dedicated delivery goroutine per endpoint.
type Bus struct {
	mu        sync.RWMutex
	endpoints map[MachineID]*busEndpoint
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{endpoints: make(map[MachineID]*busEndpoint)}
}

type busFrame struct {
	from  MachineID
	frame *buf.Lease
}

type busEndpoint struct {
	bus *Bus
	id  MachineID

	// recv is read by the delivery goroutine on every frame and must not
	// require ep.mu: a sender blocked on a full queue holds ep.mu, and
	// taking it here would deadlock the very goroutine that drains the
	// queue.
	recv atomic.Pointer[func(MachineID, *buf.Lease)]

	mu     sync.Mutex
	queue  chan busFrame
	closed bool
}

// Endpoint creates (or returns the existing) endpoint for the machine.
func (b *Bus) Endpoint(id MachineID) Transport {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ep, ok := b.endpoints[id]; ok {
		return ep
	}
	ep := &busEndpoint{
		bus:   b,
		id:    id,
		queue: make(chan busFrame, 1024),
	}
	b.endpoints[id] = ep
	go ep.deliver()
	return ep
}

// Disconnect simulates a machine crash: its endpoint is closed and all
// future sends to it fail with ErrUnreachable.
func (b *Bus) Disconnect(id MachineID) {
	b.mu.Lock()
	ep, ok := b.endpoints[id]
	if ok {
		delete(b.endpoints, id)
	}
	b.mu.Unlock()
	if ok {
		ep.shutdown()
	}
}

func (ep *busEndpoint) deliver() {
	// Ranging over the closed queue drains frames enqueued before
	// shutdown, so every queued lease is settled exactly once: by the
	// receiver if one is installed, here otherwise.
	for f := range ep.queue {
		if recv := ep.recv.Load(); recv != nil {
			(*recv)(f.from, f.frame)
		} else {
			f.frame.Release()
		}
	}
}

func (ep *busEndpoint) Local() MachineID { return ep.id }

func (ep *busEndpoint) SetReceiver(fn func(MachineID, *buf.Lease)) {
	ep.recv.Store(&fn)
}

func (ep *busEndpoint) Send(to MachineID, frame *buf.Lease) error {
	ep.mu.Lock()
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		frame.Release()
		return ErrClosed
	}
	ep.bus.mu.RLock()
	dst, ok := ep.bus.endpoints[to]
	ep.bus.mu.RUnlock()
	if !ok {
		frame.Release()
		return fmt.Errorf("%w: machine %d", ErrUnreachable, to)
	}
	// No copy: the sender's reference transfers to the queue and from
	// there to the receiver callback. This is the in-process analogue of
	// zero-copy DMA — the bytes written by the sender are the bytes the
	// receiver decodes.
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		frame.Release()
		return fmt.Errorf("%w: machine %d", ErrUnreachable, to)
	}
	dst.queue <- busFrame{from: ep.id, frame: frame}
	dst.mu.Unlock()
	return nil
}

func (ep *busEndpoint) Close() error {
	ep.bus.mu.Lock()
	if ep.bus.endpoints[ep.id] == ep {
		delete(ep.bus.endpoints, ep.id)
	}
	ep.bus.mu.Unlock()
	ep.shutdown()
	return nil
}

func (ep *busEndpoint) shutdown() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.closed {
		ep.closed = true
		close(ep.queue)
	}
}
