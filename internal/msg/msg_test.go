package msg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const (
	protoEcho ProtocolID = iota + 1
	protoUpper
	protoFail
	protoNotify
)

// newPair returns two connected nodes on a fresh bus.
func newPair(t *testing.T, opts Options) (*Node, *Node) {
	t.Helper()
	bus := NewBus()
	a := NewNode(bus.Endpoint(0), opts)
	b := NewNode(bus.Endpoint(1), opts)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestSyncCallEcho(t *testing.T) {
	a, b := newPair(t, Options{})
	b.HandleSync(protoEcho, func(_ context.Context, from MachineID, req []byte) ([]byte, error) {
		if from != 0 {
			t.Errorf("from = %d, want 0", from)
		}
		return req, nil
	})
	resp, err := a.Call(context.Background(), 1, protoEcho, []byte("hello trinity"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello trinity" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestSyncCallTransform(t *testing.T) {
	a, b := newPair(t, Options{})
	b.HandleSync(protoUpper, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) {
		return bytes.ToUpper(req), nil
	})
	resp, err := a.Call(context.Background(), 1, protoUpper, []byte("abc"))
	if err != nil || string(resp) != "ABC" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
}

func TestSyncCallRemoteError(t *testing.T) {
	a, b := newPair(t, Options{})
	b.HandleSync(protoFail, func(context.Context, MachineID, []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	})
	_, err := a.Call(context.Background(), 1, protoFail, nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want remote kaboom", err)
	}
}

func TestSyncCallNoHandler(t *testing.T) {
	a, _ := newPair(t, Options{})
	_, err := a.Call(context.Background(), 1, ProtocolID(99), nil)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v, want no-handler error", err)
	}
}

func TestSyncCallUnreachable(t *testing.T) {
	bus := NewBus()
	a := NewNode(bus.Endpoint(0), Options{})
	defer a.Close()
	_, err := a.Call(context.Background(), 7, protoEcho, nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestSyncCallTimeout(t *testing.T) {
	a, b := newPair(t, Options{CallTimeout: 30 * time.Millisecond})
	block := make(chan struct{})
	b.HandleSync(protoEcho, func(context.Context, MachineID, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	_, err := a.Call(context.Background(), 1, protoEcho, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	close(block)
}

func TestSyncCallsConcurrent(t *testing.T) {
	a, b := newPair(t, Options{})
	b.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) {
		return req, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			resp, err := a.Call(context.Background(), 1, protoEcho, []byte(want))
			if err != nil || string(resp) != want {
				t.Errorf("call %d: resp=%q err=%v (correlation broken?)", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestAsyncDelivery(t *testing.T) {
	a, b := newPair(t, Options{FlushInterval: -1})
	var got []string
	var mu sync.Mutex
	done := make(chan struct{}, 10)
	b.HandleAsync(protoNotify, func(_ MachineID, m []byte) {
		mu.Lock()
		got = append(got, string(m))
		mu.Unlock()
		done <- struct{}{}
	})
	for i := 0; i < 5; i++ {
		if err := a.Send(1, protoNotify, []byte(fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("async messages not delivered")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// Packed messages from one sender preserve order.
	for i, m := range got {
		if m != fmt.Sprintf("n%d", i) {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestMessagePacking(t *testing.T) {
	a, b := newPair(t, Options{FlushInterval: -1})
	var received atomic.Int64
	b.HandleAsync(protoNotify, func(MachineID, []byte) { received.Add(1) })
	const n = 1000
	for i := 0; i < n; i++ {
		a.Send(1, protoNotify, []byte("tiny"))
	}
	a.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for received.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if received.Load() != n {
		t.Fatalf("received %d/%d", received.Load(), n)
	}
	s := a.Stats()
	if s.FramesSent >= n/10 {
		t.Fatalf("packing ineffective: %d messages in %d frames", s.MessagesSent, s.FramesSent)
	}
}

func TestNoPackingAblation(t *testing.T) {
	a, b := newPair(t, Options{NoPacking: true})
	var received atomic.Int64
	b.HandleAsync(protoNotify, func(MachineID, []byte) { received.Add(1) })
	const n = 100
	for i := 0; i < n; i++ {
		a.Send(1, protoNotify, []byte("tiny"))
	}
	deadline := time.Now().Add(2 * time.Second)
	for received.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if received.Load() != n {
		t.Fatalf("received %d/%d", received.Load(), n)
	}
	if s := a.Stats(); s.FramesSent != n {
		t.Fatalf("NoPacking sent %d frames for %d messages", s.FramesSent, n)
	}
}

func TestBatchFlushOnSize(t *testing.T) {
	a, b := newPair(t, Options{FlushInterval: -1, BatchBytes: 256})
	var received atomic.Int64
	b.HandleAsync(protoNotify, func(MachineID, []byte) { received.Add(1) })
	// 300 bytes of messages must trigger an automatic size-based flush
	// without an explicit Flush call.
	for i := 0; i < 30; i++ {
		a.Send(1, protoNotify, make([]byte, 10))
	}
	deadline := time.Now().Add(time.Second)
	for received.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if received.Load() == 0 {
		t.Fatal("size-based flush never fired")
	}
}

func TestBackgroundFlusher(t *testing.T) {
	a, b := newPair(t, Options{FlushInterval: time.Millisecond})
	got := make(chan struct{})
	var once sync.Once
	b.HandleAsync(protoNotify, func(MachineID, []byte) { once.Do(func() { close(got) }) })
	a.Send(1, protoNotify, []byte("x"))
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("background flusher did not deliver")
	}
}

func TestSendAfterClose(t *testing.T) {
	bus := NewBus()
	a := NewNode(bus.Endpoint(0), Options{})
	a.Close()
	if err := a.Send(1, protoNotify, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if _, err := a.Call(context.Background(), 1, protoEcho, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after close = %v, want ErrClosed", err)
	}
	a.Close() // idempotent
}

func TestBusDisconnectSimulatesCrash(t *testing.T) {
	bus := NewBus()
	a := NewNode(bus.Endpoint(0), Options{FlushInterval: -1})
	b := NewNode(bus.Endpoint(1), Options{})
	defer a.Close()
	b.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) { return req, nil })
	if _, err := a.Call(context.Background(), 1, protoEcho, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	bus.Disconnect(1)
	if _, err := a.Call(context.Background(), 1, protoEcho, []byte("ok")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to crashed machine = %v, want ErrUnreachable", err)
	}
}

func TestSelfSend(t *testing.T) {
	bus := NewBus()
	a := NewNode(bus.Endpoint(0), Options{FlushInterval: -1})
	defer a.Close()
	got := make(chan string, 1)
	a.HandleAsync(protoNotify, func(_ MachineID, m []byte) { got <- string(m) })
	a.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) { return req, nil })
	// A machine can message itself through the same path as remote sends.
	if err := a.Send(0, protoNotify, []byte("self")); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	select {
	case m := <-got:
		if m != "self" {
			t.Fatalf("self message = %q", m)
		}
	case <-time.After(time.Second):
		t.Fatal("self send not delivered")
	}
	if resp, err := a.Call(context.Background(), 0, protoEcho, []byte("loop")); err != nil || string(resp) != "loop" {
		t.Fatalf("self call: %q %v", resp, err)
	}
}

func TestManyMachinesAllToAll(t *testing.T) {
	const machines = 8
	bus := NewBus()
	nodes := make([]*Node, machines)
	var counts [machines]atomic.Int64
	for i := 0; i < machines; i++ {
		n := NewNode(bus.Endpoint(MachineID(i)), Options{FlushInterval: -1})
		idx := i
		n.HandleAsync(protoNotify, func(MachineID, []byte) { counts[idx].Add(1) })
		nodes[i] = n
		defer n.Close()
	}
	const per = 100
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				for k := 0; k < machines; k++ {
					if k != i {
						nodes[i].Send(MachineID(k), protoNotify, []byte{byte(j)})
					}
				}
			}
			nodes[i].Flush()
		}(i)
	}
	wg.Wait()
	want := int64(per * (machines - 1))
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for i := range counts {
			if counts[i].Load() != want {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(time.Millisecond)
	}
	for i := range counts {
		if got := counts[i].Load(); got != want {
			t.Errorf("machine %d received %d, want %d", i, got, want)
		}
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	ta, err := NewTCPTransport(0, "")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTCPTransport(1, "")
	if err != nil {
		t.Fatal(err)
	}
	ta.AddPeer(1, tb.Addr())
	tb.AddPeer(0, ta.Addr())
	a := NewNode(ta, Options{FlushInterval: -1})
	b := NewNode(tb, Options{})
	defer a.Close()
	defer b.Close()

	b.HandleSync(protoUpper, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) {
		return bytes.ToUpper(req), nil
	})
	resp, err := a.Call(context.Background(), 1, protoUpper, []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "OVER TCP" {
		t.Fatalf("resp = %q", resp)
	}

	// Async + packing over TCP.
	var received atomic.Int64
	b.HandleAsync(protoNotify, func(MachineID, []byte) { received.Add(1) })
	for i := 0; i < 500; i++ {
		a.Send(1, protoNotify, []byte("x"))
	}
	a.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for received.Load() < 500 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if received.Load() != 500 {
		t.Fatalf("received %d/500 over TCP", received.Load())
	}
}

func TestTCPUnreachablePeer(t *testing.T) {
	ta, err := NewTCPTransport(0, "")
	if err != nil {
		t.Fatal(err)
	}
	a := NewNode(ta, Options{FlushInterval: -1})
	defer a.Close()
	if _, err := a.Call(context.Background(), 3, protoEcho, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unknown peer = %v, want ErrUnreachable", err)
	}
	ta.AddPeer(4, "127.0.0.1:1") // nothing listens there
	if _, err := a.Call(context.Background(), 4, protoEcho, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dead peer = %v, want ErrUnreachable", err)
	}
}

func TestTCPPeerCrash(t *testing.T) {
	ta, _ := NewTCPTransport(0, "")
	tb, _ := NewTCPTransport(1, "")
	ta.AddPeer(1, tb.Addr())
	tb.AddPeer(0, ta.Addr())
	a := NewNode(ta, Options{FlushInterval: -1, CallTimeout: 200 * time.Millisecond})
	b := NewNode(tb, Options{})
	defer a.Close()
	b.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) { return req, nil })
	if _, err := a.Call(context.Background(), 1, protoEcho, []byte("up")); err != nil {
		t.Fatal(err)
	}
	b.Close()
	// The first call after a crash may fail with either a broken pipe
	// (unreachable) or a timeout depending on TCP shutdown timing; after
	// the connection is dropped, subsequent calls must fail fast.
	a.Call(context.Background(), 1, protoEcho, []byte("down"))
	_, err := a.Call(context.Background(), 1, protoEcho, []byte("down"))
	if !errors.Is(err, ErrUnreachable) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("call to crashed TCP peer = %v", err)
	}
}

func BenchmarkSyncCall(b *testing.B) {
	bus := NewBus()
	a := NewNode(bus.Endpoint(0), Options{})
	c := NewNode(bus.Endpoint(1), Options{})
	defer a.Close()
	defer c.Close()
	c.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) { return req, nil })
	req := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call(context.Background(), 1, protoEcho, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncPacked vs BenchmarkAsyncUnpacked is the message-packing
// ablation (§4.2: "a huge cost if the system does not automatically pack
// small messages between two machines into a single transfer").
func benchmarkAsync(b *testing.B, noPack bool) {
	bus := NewBus()
	a := NewNode(bus.Endpoint(0), Options{FlushInterval: -1, NoPacking: noPack})
	c := NewNode(bus.Endpoint(1), Options{NoPacking: noPack})
	defer a.Close()
	defer c.Close()
	var received atomic.Int64
	c.HandleAsync(protoNotify, func(MachineID, []byte) { received.Add(1) })
	msg := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(1, protoNotify, msg)
	}
	a.Flush()
	for received.Load() < int64(b.N) {
		time.Sleep(10 * time.Microsecond)
	}
}

func BenchmarkAsyncPacked(b *testing.B)   { benchmarkAsync(b, false) }
func BenchmarkAsyncUnpacked(b *testing.B) { benchmarkAsync(b, true) }
