package msg

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"trinity/internal/buf"
)

// TestCallContextCancelled: cancelling the caller's context unhooks the
// wait immediately — well before CallTimeout — and is counted.
func TestCallContextCancelled(t *testing.T) {
	a, b := newPair(t, Options{CallTimeout: 5 * time.Second})
	block := make(chan struct{})
	defer close(block)
	b.HandleSync(protoEcho, func(context.Context, MachineID, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := a.Call(ctx, 1, protoEcho, []byte("x"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancel took %v, want well under CallTimeout", d)
	}
	if got := a.Stats().CallsCancelled; got != 1 {
		t.Fatalf("CallsCancelled = %d, want 1", got)
	}
}

// TestCallContextAlreadyExpired: a spent context never touches the wire.
func TestCallContextAlreadyExpired(t *testing.T) {
	a, b := newPair(t, Options{})
	called := make(chan struct{}, 1)
	b.HandleSync(protoEcho, func(context.Context, MachineID, []byte) ([]byte, error) {
		called <- struct{}{}
		return nil, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Call(ctx, 1, protoEcho, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-called:
		t.Fatal("handler ran for a pre-cancelled call")
	case <-time.After(50 * time.Millisecond):
	}
	if got := a.Stats().CallsCancelled; got != 1 {
		t.Fatalf("CallsCancelled = %d, want 1", got)
	}
}

// TestCallBudgetPropagates: the caller's remaining deadline crosses the
// wire and surfaces as the handler context's deadline.
func TestCallBudgetPropagates(t *testing.T) {
	a, b := newPair(t, Options{CallTimeout: time.Minute})
	got := make(chan time.Duration, 1)
	b.HandleSync(protoEcho, func(ctx context.Context, _ MachineID, _ []byte) ([]byte, error) {
		d, ok := ctx.Deadline()
		if !ok {
			got <- -1
			return nil, nil
		}
		got <- time.Until(d)
		return nil, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, 1, protoEcho, nil); err != nil {
		t.Fatal(err)
	}
	left := <-got
	if left < 0 {
		t.Fatal("handler context has no deadline")
	}
	if left > 200*time.Millisecond {
		t.Fatalf("handler budget %v exceeds caller budget 200ms", left)
	}
	if left <= 0 {
		t.Fatalf("handler budget %v already spent", left)
	}
}

// TestCallNoDeadlineMeansCapOnly: without a caller deadline the handler
// still gets the CallTimeout cap, never an unbounded context.
func TestCallNoDeadlineMeansCapOnly(t *testing.T) {
	a, b := newPair(t, Options{CallTimeout: 3 * time.Second})
	got := make(chan bool, 1)
	b.HandleSync(protoEcho, func(ctx context.Context, _ MachineID, _ []byte) ([]byte, error) {
		_, ok := ctx.Deadline()
		got <- ok
		return nil, nil
	})
	if _, err := a.Call(context.Background(), 1, protoEcho, nil); err != nil {
		t.Fatal(err)
	}
	if !<-got {
		t.Fatal("handler context should carry the CallTimeout cap as its deadline")
	}
}

// TestDeadlineDroppedRx: a sync request whose budget is already negative
// on arrival is dropped before dispatch and counted, and the handler
// never runs. The sender-side clamp never emits negative budgets, so the
// frame is crafted by hand — exactly what a slow network produces when
// the relative budget is re-anchored after transit.
func TestDeadlineDroppedRx(t *testing.T) {
	bus := NewBus()
	raw := bus.Endpoint(0) // raw transport: frames bypass Node's encoder
	b := NewNode(bus.Endpoint(1), Options{})
	defer b.Close()
	called := make(chan struct{}, 1)
	b.HandleSync(protoEcho, func(context.Context, MachineID, []byte) ([]byte, error) {
		called <- struct{}{}
		return nil, nil
	})

	frame := make([]byte, syncReqHeader+1)
	frame[0] = kindSyncReq
	binary.LittleEndian.PutUint16(frame[1:], uint16(protoEcho))
	binary.LittleEndian.PutUint64(frame[3:], 99) // correlation id
	budget := int64(-50)                         // spent 50µs before arrival
	binary.LittleEndian.PutUint64(frame[frameHeader:], uint64(budget))
	frame[syncReqHeader] = 'x'
	if err := raw.Send(1, buf.Wrap(frame)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().DeadlineDroppedRx == 0 {
		if time.Now().After(deadline) {
			t.Fatal("DeadlineDroppedRx never incremented")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-called:
		t.Fatal("handler ran for an expired request")
	case <-time.After(50 * time.Millisecond):
	}
}

// BenchmarkCallTimerChurn guards the Call wait path against the old
// time.After leak: with time.After every call parked a live timer for the
// full CallTimeout (1 minute here) after the reply had already arrived,
// so a tight call loop accumulated b.N live timers; time.NewTimer+Stop
// releases each one as the call returns. Watch the B/op column — the
// leak shows up as runtime.timer memory retained across iterations.
func BenchmarkCallTimerChurn(b *testing.B) {
	bus := NewBus()
	an := NewNode(bus.Endpoint(0), Options{CallTimeout: time.Minute})
	bn := NewNode(bus.Endpoint(1), Options{CallTimeout: time.Minute})
	defer an.Close()
	defer bn.Close()
	bn.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) {
		return req, nil
	})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.Call(ctx, 1, protoEcho, nil); err != nil {
			b.Fatal(err)
		}
	}
}
