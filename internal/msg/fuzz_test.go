package msg

import (
	"context"
	"encoding/binary"
	"testing"
	"time"

	"trinity/internal/buf"
)

// fuzzNode builds a node whose replies go nowhere (the peer endpoint is
// never created, so reply sends fail fast as unreachable). Frames are
// injected straight into receive, which is exactly the surface a hostile
// or corrupt peer controls.
func fuzzNode(f *testing.F) *Node {
	f.Helper()
	bus := NewBus()
	n := NewNode(bus.Endpoint(1), Options{FlushInterval: -1, CallTimeout: 50 * time.Millisecond})
	n.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) {
		return req, nil
	})
	n.HandleAsync(protoNotify, func(_ MachineID, msg []byte) {
		// Touch every byte: an out-of-bounds slice from the batch decoder
		// would fault here.
		s := 0
		for _, b := range msg {
			s += int(b)
		}
		_ = s
	})
	f.Cleanup(func() { n.Close() })
	return n
}

// inject hands the node a frame the way a transport would: one lease
// reference, owned by the receiver. The data is copied first so the
// fuzzer's corpus slice is never aliased.
func inject(n *Node, data []byte) {
	n.receive(0, buf.Wrap(append([]byte(nil), data...)))
}

// FuzzDecodeFrameSyncReq drives the sync-request decoder (19-byte header:
// kind, proto, corr, budget) with arbitrary bodies. The invariant is
// simply no panic and no hang: truncated headers drop, expired budgets
// drop, valid frames dispatch a handler whose reply send fails fast.
func FuzzDecodeFrameSyncReq(f *testing.F) {
	valid := make([]byte, syncReqHeader+3)
	valid[0] = kindSyncReq
	binary.LittleEndian.PutUint16(valid[1:], uint16(protoEcho))
	binary.LittleEndian.PutUint64(valid[3:], 7)
	binary.LittleEndian.PutUint64(valid[frameHeader:], 1000)
	copy(valid[syncReqHeader:], "abc")
	f.Add(valid)
	f.Add(valid[:syncReqHeader])   // empty request body
	f.Add(valid[:syncReqHeader-1]) // truncated header
	f.Add([]byte{kindSyncReq})     // kind byte only
	expired := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(expired[frameHeader:], uint64(^uint64(0))) // budget -1: already expired
	f.Add(expired)
	noHandler := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(noHandler[1:], 0xFFFF)
	f.Add(noHandler)

	n := fuzzNode(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		frame := append([]byte{kindSyncReq}, data...)
		inject(n, frame)
	})
}

// FuzzDecodeFrameBatch drives the batch decoder: arbitrary sequences of
// (proto, len) items where lengths are attacker-controlled and may overrun
// the frame. Malformed tails must drop (counted), never slice out of
// bounds.
func FuzzDecodeFrameBatch(f *testing.F) {
	item := func(p ProtocolID, body []byte) []byte {
		var hdr [batchItem]byte
		binary.LittleEndian.PutUint16(hdr[0:], uint16(p))
		binary.LittleEndian.PutUint32(hdr[2:], uint32(len(body)))
		return append(hdr[:], body...)
	}
	f.Add(append(item(protoNotify, []byte("hello")), item(protoNotify, []byte("world"))...))
	f.Add(item(protoNotify, nil))
	f.Add([]byte{0x42, 0x00, 0xFF, 0xFF, 0xFF, 0xFF}) // length overruns empty body
	f.Add([]byte{0x42})                               // truncated item header
	f.Add([]byte(nil))

	n := fuzzNode(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		frame := append([]byte{kindBatch}, data...)
		inject(n, frame)
	})
}

// FuzzDecodeFrameReply drives the reply decoders (kindSyncResp payload
// parking and kindSyncErr [code][message] parsing), both with and without
// a caller waiting on the correlation id. Parked leases must always be
// settled — by the drain below when no Call consumes them.
func FuzzDecodeFrameReply(f *testing.F) {
	resp := make([]byte, frameHeader+4)
	resp[0] = kindSyncResp
	binary.LittleEndian.PutUint64(resp[3:], 9)
	copy(resp[frameHeader:], "data")
	f.Add(resp)
	errFrame := make([]byte, frameHeader+1+5)
	errFrame[0] = kindSyncErr
	binary.LittleEndian.PutUint64(errFrame[3:], 9)
	errFrame[frameHeader] = 3
	copy(errFrame[frameHeader+1:], "boom!")
	f.Add(errFrame)
	tooLarge := append([]byte(nil), errFrame...)
	tooLarge[frameHeader] = CodeFrameTooLarge
	f.Add(tooLarge)
	f.Add(errFrame[:frameHeader]) // error frame with no body
	f.Add(resp[:frameHeader-1])   // truncated header

	n := fuzzNode(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		frame := append([]byte(nil), data...)
		if len(frame) == 0 || (frame[0] != kindSyncResp && frame[0] != kindSyncErr) {
			frame = append([]byte{kindSyncResp}, frame...)
		}
		var ch chan callResult
		if len(frame) >= frameHeader {
			// Install a waiter for the frame's correlation id so the
			// parking path (not just the no-waiter release) is exercised.
			corr := binary.LittleEndian.Uint64(frame[3:])
			ch = make(chan callResult, 1)
			n.callsMu.Lock()
			n.calls[corr] = ch
			n.callsMu.Unlock()
			defer func() {
				n.callsMu.Lock()
				delete(n.calls, corr)
				n.callsMu.Unlock()
				select {
				case res := <-ch:
					if res.lease != nil {
						res.lease.Release()
					}
				default:
				}
			}()
		}
		inject(n, frame)
	})
}
