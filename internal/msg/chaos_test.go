package msg

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trinity/internal/buf"
)

const protoOrdered ProtocolID = 0x0042

// chaosPair builds two chaos-wrapped endpoints on the named transport
// ("bus" or "tcp") and returns the nodes plus the chaos hub.
func chaosPair(t *testing.T, transport string, seed int64, opts Options) (*Node, *Node, *Chaos) {
	t.Helper()
	ch := NewChaos(seed)
	var ta, tb Transport
	switch transport {
	case "bus":
		bus := NewBus()
		ta, tb = bus.Endpoint(0), bus.Endpoint(1)
	case "tcp":
		ra, err := NewTCPTransport(0, "")
		if err != nil {
			t.Fatal(err)
		}
		rb, err := NewTCPTransport(1, "")
		if err != nil {
			t.Fatal(err)
		}
		ra.AddPeer(1, rb.Addr())
		rb.AddPeer(0, ra.Addr())
		ta, tb = ra, rb
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	a := NewNode(ch.Wrap(ta), opts)
	b := NewNode(ch.Wrap(tb), opts)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, ch
}

// chaosOrderingRun is the Send/Flush reordering regression. A sender
// goroutine submits sequence-stamped messages while a second goroutine
// hammers Flush; chaos jitter inside every transport Send stretches the
// window between a batch being sealed and it reaching the wire. Without
// per-destination send sequencing, a Flush carrying newer messages
// routinely overtakes an older sealed batch, and the invariant checker
// reports the inversion.
func chaosOrderingRun(t *testing.T, transport string, seed int64, lanes int) {
	t.Helper()
	a, b, ch := chaosPair(t, transport, seed, Options{
		FlushInterval: -1,
		BatchBytes:    64,
	})
	ch.SetPair(0, 1, Policy{Jitter: 100 * time.Microsecond})

	oc := NewOrderChecker()
	b.HandleAsync(protoOrdered, oc.Handler())

	const perLane = 100
	var wg sync.WaitGroup
	done := make(chan struct{})
	// Flushers: the roles the background flush timer and explicit Flush
	// callers (BSP superstep barriers) play in production. Several run at
	// once; their transport sends overlap, so only per-destination
	// sequencing inside the Node keeps what they carry in order.
	for f := 0; f < 3; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					a.Flush()
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}
	// Each lane is one submitting goroutine: within a lane, Send(i)
	// returns before Send(i+1) starts, so delivery must be in lane order.
	// The yield after each Send exposes the partial batch to the flushers,
	// exactly as any gap between application sends would.
	var senders sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		senders.Add(1)
		go func(lane uint8) {
			defer senders.Done()
			for seq := uint64(1); seq <= perLane; seq++ {
				if err := a.Send(1, protoOrdered, StampSeq(lane, seq, nil)); err != nil {
					t.Errorf("lane %d seq %d: %v", lane, seq, err)
					return
				}
				time.Sleep(time.Microsecond)
			}
		}(uint8(lane))
	}
	senders.Wait()
	close(done)
	wg.Wait()
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	want := int64(perLane * lanes)
	deadline := time.Now().Add(5 * time.Second)
	for oc.Received() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := oc.Received(); got != want {
		t.Fatalf("received %d/%d messages (jitter-only chaos must not lose any)", got, want)
	}
	if v := oc.Violations(); len(v) > 0 {
		t.Fatalf("per-sender ordering broken (%d violations), e.g. %s", len(v), v[0])
	}
}

func TestChaosSendFlushOrderingBus(t *testing.T) {
	for _, seed := range Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosOrderingRun(t, "bus", seed, 1)
		})
	}
}

func TestChaosSendFlushOrderingManySendersBus(t *testing.T) {
	for _, seed := range Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosOrderingRun(t, "bus", seed, 4)
		})
	}
}

func TestChaosSendFlushOrderingTCP(t *testing.T) {
	for _, seed := range Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosOrderingRun(t, "tcp", seed, 2)
		})
	}
}

// TestChaosPoisonFrameOwnership emulates a buffer-reusing transport:
// every delivered frame is overwritten the moment the receiver callback
// returns. Sync-call requests and responses must survive intact, which
// they only do if the Node copies what it retains (the documented frame
// ownership contract).
func TestChaosPoisonFrameOwnership(t *testing.T) {
	for _, seed := range Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			a, b, ch := chaosPair(t, "bus", seed, Options{FlushInterval: -1})
			ch.PoisonFrames(true)
			b.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) {
				// Handlers may compute over the request after yielding the
				// scheduler; the slice they were handed must stay stable.
				time.Sleep(50 * time.Microsecond)
				sum := sha256.Sum256(req)
				return append(append([]byte(nil), req...), sum[:]...), nil
			})
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						req := bytes.Repeat([]byte{byte(g), byte(i)}, 32)
						resp, err := a.Call(context.Background(), 1, protoEcho, req)
						if err != nil {
							t.Errorf("call: %v", err)
							return
						}
						wantSum := sha256.Sum256(req)
						if !bytes.Equal(resp[:len(req)], req) || !bytes.Equal(resp[len(req):], wantSum[:]) {
							t.Errorf("response corrupted: frame retained past receiver callback")
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestChaosDropsTimeOutSyncCalls: a lossy link turns sync calls into
// timeouts, never into wrong results.
func TestChaosDropsTimeOutSyncCalls(t *testing.T) {
	a, b, ch := chaosPair(t, "bus", 7, Options{FlushInterval: -1, CallTimeout: 100 * time.Millisecond})
	ch.SetPair(0, 1, Policy{Drop: 1.0})
	b.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) { return req, nil })
	if _, err := a.Call(context.Background(), 1, protoEcho, []byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("call over fully lossy link = %v, want ErrTimeout", err)
	}
	if st := ch.Stats(); st.Dropped == 0 {
		t.Fatalf("chaos stats recorded no drops: %+v", st)
	}
}

// TestChaosOneWayPartition: cutting a->b kills a's requests and b's
// responses, but async traffic b->a still flows.
func TestChaosOneWayPartition(t *testing.T) {
	a, b, ch := chaosPair(t, "bus", 11, Options{FlushInterval: -1, CallTimeout: 100 * time.Millisecond})
	ch.Cut(0, 1)
	var got atomic.Int64
	a.HandleAsync(protoNotify, func(MachineID, []byte) { got.Add(1) })
	b.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) { return req, nil })

	if _, err := a.Call(context.Background(), 1, protoEcho, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("a->b request across cut = %v, want ErrTimeout", err)
	}
	// b->a direction is untouched.
	if err := b.Send(0, protoNotify, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	b.Flush()
	deadline := time.Now().Add(time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatal("b->a async did not survive a one-way a->b cut")
	}
	// Healing restores the link.
	ch.Heal(0, 1)
	if _, err := a.Call(context.Background(), 1, protoEcho, []byte("back")); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

// TestChaosDelayReorders is a harness sanity check: when the transport
// itself is allowed to delay frames, per-sender order genuinely breaks —
// proving the checker detects what the Node-level fix prevents.
func TestChaosDelayReorders(t *testing.T) {
	a, b, ch := chaosPair(t, "bus", 13, Options{FlushInterval: -1, NoPacking: true})
	ch.SetPair(0, 1, Policy{Delay: 0.5, MaxDelay: 2 * time.Millisecond})
	oc := NewOrderChecker()
	b.HandleAsync(protoOrdered, oc.Handler())
	const n = 300
	for seq := uint64(1); seq <= n; seq++ {
		if err := a.Send(1, protoOrdered, StampSeq(0, seq, nil)); err != nil {
			t.Fatal(err)
		}
	}
	ch.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for oc.Received() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := oc.Received(); got != n {
		t.Fatalf("received %d/%d (delay must not lose frames)", got, n)
	}
	if st := ch.Stats(); st.Delayed == 0 {
		t.Fatalf("no frames delayed: %+v", st)
	}
	if len(oc.Violations()) == 0 {
		t.Fatal("a delaying transport did not reorder 300 frames; checker or chaos broken")
	}
}

// TestChaosDuplicates: duplicated frames mean duplicated deliveries; the
// messaging layer does not dedup (that is an application concern), so the
// count doubles exactly.
func TestChaosDuplicates(t *testing.T) {
	a, b, ch := chaosPair(t, "bus", 17, Options{FlushInterval: -1, NoPacking: true})
	ch.SetPair(0, 1, Policy{Dup: 1.0})
	var got atomic.Int64
	b.HandleAsync(protoNotify, func(MachineID, []byte) { got.Add(1) })
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send(1, protoNotify, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 2*n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 2*n {
		t.Fatalf("received %d, want %d (every frame duplicated)", got.Load(), 2*n)
	}
}

// TestMalformedBatchTailCounted: a batch whose item length overruns the
// frame is dropped, but the drop lands in msg.m<i>.dropped_frames.
func TestMalformedBatchTailCounted(t *testing.T) {
	bus := NewBus()
	b := NewNode(bus.Endpoint(1), Options{})
	defer b.Close()
	raw := bus.Endpoint(5)                                              // a sender with no Node on top
	frame := []byte{kindBatch, 0x01, 0x00, 0xFF, 0x00, 0x00, 0x00, 'x'} // claims 255-byte item, carries 1
	if err := raw.Send(1, buf.Wrap(frame)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for b.Stats().DroppedFrames == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.Stats().DroppedFrames; got != 1 {
		t.Fatalf("DroppedFrames = %d, want 1", got)
	}
}

// TestNoHandlerDeadLetterCounted: async messages for an unregistered
// protocol are counted, so "lost" is distinguishable from "never sent".
func TestNoHandlerDeadLetterCounted(t *testing.T) {
	a, b := newPair(t, Options{FlushInterval: -1})
	if err := a.Send(1, ProtocolID(0x7777), []byte("nobody home")); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	deadline := time.Now().Add(time.Second)
	for b.Stats().NoHandler == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.Stats().NoHandler; got != 1 {
		t.Fatalf("NoHandler = %d, want 1", got)
	}
}

// TestErrorCodeSurvivesWire: WithCode tags cross the wire as one byte and
// come back on *RemoteError, regardless of message text.
func TestErrorCodeSurvivesWire(t *testing.T) {
	a, b := newPair(t, Options{})
	// The message text deliberately contains another sentinel's text: a
	// substring matcher would mis-map it; the code cannot.
	trap := errors.New("key not found while checking: cell already exists")
	b.HandleSync(protoFail, func(context.Context, MachineID, []byte) ([]byte, error) {
		return nil, WithCode(42, trap)
	})
	_, err := a.Call(context.Background(), 1, protoFail, nil)
	if err == nil {
		t.Fatal("want error")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RemoteError", err, err)
	}
	if re.Code != 42 {
		t.Fatalf("code = %d, want 42", re.Code)
	}
	if re.Msg != trap.Error() {
		t.Fatalf("msg = %q", re.Msg)
	}
	if ErrorCode(err) != 42 {
		t.Fatalf("ErrorCode(err) = %d, want 42", ErrorCode(err))
	}
}

// TestChaosDupDelayLeaseIntegrity: duplicated frames share one backing
// array (the chaos transport retains instead of copying) and delayed
// frames hold their lease across the holdback — so a component that
// releases a lease early would hand its duplicate, or its delayed self, a
// recycled or poisoned buffer. Every delivered message carries a checksum
// over its body; under dup+delay+poison, all of them must verify, and
// under -race any read of a recycled buffer trips the scribble.
func TestChaosDupDelayLeaseIntegrity(t *testing.T) {
	for _, seed := range Seeds() {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			a, b, ch := chaosPair(t, "bus", seed, Options{FlushInterval: -1, CallTimeout: 2 * time.Second})
			ch.PoisonFrames(true)
			ch.SetDefault(Policy{Dup: 0.4, Delay: 0.4, MaxDelay: 2 * time.Millisecond})
			var asyncGot, asyncBad atomic.Int64
			b.HandleAsync(protoNotify, func(_ MachineID, msg []byte) {
				if len(msg) < sha256.Size {
					asyncBad.Add(1)
					return
				}
				sum := sha256.Sum256(msg[sha256.Size:])
				if !bytes.Equal(msg[:sha256.Size], sum[:]) {
					asyncBad.Add(1)
				}
				asyncGot.Add(1)
			})
			b.HandleSync(protoEcho, func(_ context.Context, _ MachineID, req []byte) ([]byte, error) {
				// Yield so a duplicate's delivery can interleave while this
				// handler still reads the shared backing array.
				time.Sleep(20 * time.Microsecond)
				sum := sha256.Sum256(req)
				return append(append([]byte(nil), req...), sum[:]...), nil
			})

			const asyncN = 150
			for i := 0; i < asyncN; i++ {
				body := bytes.Repeat([]byte{byte(i)}, 48)
				sum := sha256.Sum256(body)
				if err := a.Send(1, protoNotify, append(sum[:], body...)); err != nil {
					t.Fatal(err)
				}
			}
			if err := a.Flush(); err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 30; i++ {
						req := bytes.Repeat([]byte{byte(g), byte(i)}, 24)
						resp, err := a.Call(context.Background(), 1, protoEcho, req)
						if err != nil {
							t.Errorf("call: %v", err) // dup+delay never lose frames
							return
						}
						wantSum := sha256.Sum256(req)
						if !bytes.Equal(resp[:len(req)], req) || !bytes.Equal(resp[len(req):], wantSum[:]) {
							t.Errorf("sync response corrupted under dup+delay")
							return
						}
					}
				}(g)
			}
			wg.Wait()
			ch.Drain()
			deadline := time.Now().Add(2 * time.Second)
			for asyncGot.Load() < asyncN && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if asyncGot.Load() < asyncN {
				t.Fatalf("received %d/%d async messages (delay/dup must not lose frames)", asyncGot.Load(), asyncN)
			}
			if asyncBad.Load() != 0 {
				t.Fatalf("%d async messages failed checksum: recycled buffer observed", asyncBad.Load())
			}
			if st := ch.Stats(); st.Duplicated == 0 || st.Delayed == 0 {
				t.Fatalf("chaos injected no dup/delay: %+v", st)
			}
		})
	}
}
