package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Mix64 must be invertible; spot-check that distinct small inputs map
	// to distinct outputs and that the avalanche is strong.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, h)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	var totalFlips, trials int
	for i := uint64(1); i < 1000; i++ {
		base := Mix64(i)
		for bit := uint(0); bit < 64; bit += 7 {
			flipped := Mix64(i ^ (1 << bit))
			diff := base ^ flipped
			totalFlips += popcount(diff)
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 28 || avg > 36 {
		t.Fatalf("poor avalanche: average %.2f bits flipped, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestTrunkHashRange(t *testing.T) {
	f := func(key uint64) bool {
		for p := uint(0); p <= 16; p++ {
			h := TrunkHash(key, p)
			if uint64(h) >= uint64(1)<<p && p > 0 {
				return false
			}
			if p == 0 && h != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrunkHashBalance(t *testing.T) {
	// Sequential keys (the common cell ID pattern) must spread evenly
	// across trunks.
	const p = 6 // 64 trunks
	counts := make([]int, 1<<p)
	const n = 64000
	for key := uint64(0); key < n; key++ {
		counts[TrunkHash(key, p)]++
	}
	want := float64(n) / float64(len(counts))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Fatalf("trunk %d has %d keys, want ~%.0f (±25%%)", i, c, want)
		}
	}
}

func TestCellHashIndependentOfTrunkHash(t *testing.T) {
	// Keys that collide into the same trunk must still have well-spread
	// cell hashes.
	const p = 4
	var sameTrunk []uint64
	for key := uint64(0); len(sameTrunk) < 1000; key++ {
		if TrunkHash(key, p) == 0 {
			sameTrunk = append(sameTrunk, key)
		}
	}
	buckets := make([]int, 16)
	for _, k := range sameTrunk {
		buckets[CellHash(k)%16]++
	}
	for i, c := range buckets {
		if c == 0 {
			t.Fatalf("cell-hash bucket %d empty for trunk-colliding keys", i)
		}
	}
}

func TestStringHash(t *testing.T) {
	if String("") == String("a") {
		t.Fatal("empty and non-empty strings collide")
	}
	if String("abc") != String("abc") {
		t.Fatal("String is not deterministic")
	}
	if String("abc") == String("acb") {
		t.Fatal("permuted strings collide")
	}
	seen := make(map[uint64]string)
	words := []string{"movie", "actor", "node", "edge", "trinity", "memory",
		"cloud", "graph", "trunk", "cell", "a", "b", "ab", "ba", "aa", "bb"}
	for _, w := range words {
		h := String(w)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision between %q and %q", w, prev)
		}
		seen[h] = w
	}
}

func TestCombine(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine should be order-sensitive")
	}
	if Combine(0, 0) == Combine(0, 1) {
		t.Fatal("Combine collision on trivial inputs")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently-seeded RNGs coincided %d times", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Split()
	// The child stream must not equal a shifted parent stream.
	p2 := NewRNG(1)
	p2.Next() // align with post-split parent state
	matches := 0
	for i := 0; i < 100; i++ {
		if child.Next() == p2.Next() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split stream overlaps parent stream %d/100", matches)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func BenchmarkMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Mix64(uint64(i))
	}
	_ = sink
}

func BenchmarkTrunkHash(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += TrunkHash(uint64(i), 8)
	}
	_ = sink
}
