// Package hash provides the hashing primitives used throughout the memory
// cloud: 64-bit key mixing, p-bit trunk addressing, and string hashing for
// symbol interning.
//
// Trinity addresses a key-value pair in two steps (paper §3): the 64-bit
// key is first hashed to a p-bit trunk number i ∈ [0, 2^p), which selects a
// slot in the addressing table (yielding a machine); the key is then hashed
// again inside the trunk's own hash table to find the cell's offset and
// size. Both hashes are derived from the same strong 64-bit mixer but with
// different seeds so they are statistically independent.
package hash

// Mix64 is a strong 64-bit finalizer (the splitmix64 finalizer, also used
// as MurmurHash3's fmix64 variant). It is a bijection on uint64, so
// distinct keys can never collide after mixing.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// seeds separating the trunk-selection hash from the in-trunk hash.
const (
	trunkSeed = 0x9e3779b97f4a7c15
	cellSeed  = 0xc2b2ae3d27d4eb4f
)

// TrunkHash maps a 64-bit key to a p-bit trunk number in [0, 2^p).
// p must be in [0, 32].
func TrunkHash(key uint64, p uint) uint32 {
	if p == 0 {
		return 0
	}
	return uint32(Mix64(key^trunkSeed) >> (64 - p))
}

// CellHash is the second-level hash used inside a memory trunk's hash
// table. It is independent of TrunkHash so that keys colliding in one
// level do not cluster in the other.
func CellHash(key uint64) uint64 {
	return Mix64(key ^ cellSeed)
}

// String hashes a string to a 64-bit value using the FNV-1a construction
// followed by Mix64 to strengthen avalanche on short inputs. It is used to
// derive stable cell IDs from external names (e.g. RDF IRIs).
func String(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Mix64(h)
}

// Combine folds two 64-bit values into one; used to derive composite cell
// IDs (e.g. an edge cell ID from its endpoint IDs).
func Combine(a, b uint64) uint64 {
	return Mix64(a ^ Mix64(b+trunkSeed))
}

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64)
// used by workload generators and tests. The zero value is NOT valid; use
// NewRNG. It is deliberately not safe for concurrent use — generators that
// run in parallel each own an RNG seeded from a parent stream.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams on all platforms.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return Mix64(r.state)
}

// Intn returns a value uniform in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hash: Intn called with n <= 0")
	}
	return int(r.Next() % uint64(n))
}

// Uint64n returns a value uniform in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hash: Uint64n called with n == 0")
	}
	return r.Next() % n
}

// Float64 returns a value uniform in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Split returns a new RNG whose stream is independent of the parent's;
// useful for handing deterministic sub-streams to parallel workers.
func (r *RNG) Split() *RNG {
	return &RNG{state: Mix64(r.Next() ^ cellSeed)}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
