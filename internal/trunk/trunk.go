// Package trunk implements a Trinity memory trunk: a fixed-capacity blob
// arena with circular memory management (paper §6.1).
//
// A trunk owns one large byte buffer. Key-value pairs (cells) are appended
// sequentially at the append head; removing or relocating a cell leaves a
// gap, and a defragmentation pass slides live cells toward the append head
// so the committed tail can advance and release whole pages. The head and
// tail chase each other around the buffer in an endless circular movement,
// exactly as Figure 11 of the paper describes.
//
// Storing cells as raw blobs in a single buffer is the load-bearing design
// decision of Trinity: a trunk is one object from the garbage collector's
// point of view no matter how many cells it holds, which is what lets the
// engine keep billions of cells resident without per-object overhead
// (contrast with the runtime-object baselines in internal/baseline).
//
// Concurrency follows the paper: trunk-level parallelism is the primary
// mechanism ("each machine hosts multiple memory trunks ... parallelism
// without any overhead of locking"), so structural operations on one trunk
// are serialized by a single trunk mutex. In addition, every cell carries a
// spin lock used for concurrency control and physical memory pinning: a
// pinned cell is never moved by the defragmentation daemon, and accessors
// hold the pin while exposing a zero-copy view of the blob.
package trunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trinity/internal/obs"
)

// Errors returned by trunk operations.
var (
	// ErrFull reports that the trunk cannot satisfy an allocation even
	// after considering the wrap-around region. Callers typically run a
	// defragmentation pass and retry, or spill to another trunk.
	ErrFull = errors.New("trunk: out of memory")
	// ErrNotFound reports that no cell with the given key exists.
	ErrNotFound = errors.New("trunk: cell not found")
	// ErrExists reports that Add was called for a key that already exists.
	ErrExists = errors.New("trunk: cell already exists")
	// ErrCorrupt reports a malformed dump during LoadFrom.
	ErrCorrupt = errors.New("trunk: corrupt dump")
)

const (
	// headerSize is the per-record overhead inside the buffer:
	// key (8 bytes) + payload size (4) + reservation size (4).
	// This matches the 16-byte per-cell overhead in the paper's memory
	// model (§5.4: S = |V|(16+k+l+m) + 8|E|).
	headerSize = 16

	// wrapKey marks a filler record that tells a sequential scan to jump
	// back to offset 0. It is not a legal cell key: real keys are mixed
	// 64-bit IDs and the trunk rejects this value on insert.
	wrapKey = ^uint64(0)

	// DefaultCapacity is the default trunk size. The paper reserves 2 GB
	// of virtual address space per trunk; the simulated cluster uses a
	// smaller default so many trunks fit comfortably in one process.
	DefaultCapacity = 64 << 20

	// DefaultPageSize is the commit/decommit granularity.
	DefaultPageSize = 64 << 10
)

// ReservationPolicy decides how many extra bytes to reserve when a cell of
// oldSize bytes must grow by growth bytes. Reservations are short-lived:
// the next defragmentation pass releases whatever remains unused (§6.1).
type ReservationPolicy func(oldSize, growth int) int

// DefaultReservation doubles the requested growth (the paper's example:
// "if the current key-value pair needs to expand by 16 bytes, we allocate
// 32 bytes instead"), capped at 4 KiB to bound waste on huge cells.
func DefaultReservation(oldSize, growth int) int {
	r := growth
	if r > 4096 {
		r = 4096
	}
	return r
}

// NoReservation disables reservations; every expansion relocates. Used by
// the §6.1 ablation benchmark.
func NoReservation(oldSize, growth int) int { return 0 }

// Options configures a trunk.
type Options struct {
	// Capacity is the size of the reserved buffer in bytes.
	// Zero means DefaultCapacity.
	Capacity int64
	// PageSize is the commit granularity. Zero means DefaultPageSize.
	PageSize int64
	// Reservation is the expansion reservation policy.
	// Nil means DefaultReservation.
	Reservation ReservationPolicy
	// Metrics, when non-nil, receives defragmentation and reload timing.
	// A slave passes one scope for all of its trunks, so the histograms
	// aggregate across the machine's trunk set. Nil disables recording;
	// the per-trunk Stats() counters are always maintained.
	Metrics *obs.Scope
}

// Stats is a snapshot of trunk health and activity counters.
type Stats struct {
	Capacity       int64 // reserved buffer size
	CommittedBytes int64 // bytes in committed pages
	UsedBytes      int64 // bytes between committed tail and append head
	LiveBytes      int64 // headers + payloads of live cells
	GapBytes       int64 // dead bytes awaiting defragmentation
	ReservedBytes  int64 // live but unused reservation bytes
	Cells          int64 // number of live cells

	Allocs        int64 // successful allocations
	Relocations   int64 // cells moved because in-place growth failed
	InPlaceGrowth int64 // expansions satisfied by a reservation
	PageCommits   int64 // pages committed
	PageDecommits int64 // pages decommitted
	DefragPasses  int64 // completed defragmentation passes
	CellsMoved    int64 // cells copied by defragmentation
	BytesMoved    int64 // bytes copied by defragmentation
	DefragSkips   int64 // passes cut short by a pinned cell
}

// Utilization is the fraction of committed memory holding live data.
func (s Stats) Utilization() float64 {
	if s.CommittedBytes == 0 {
		return 1
	}
	return float64(s.LiveBytes) / float64(s.CommittedBytes)
}

// entry is the trunk hash table's view of one cell. The pointer identity
// of an entry is stable for the cell's lifetime, so the spin-lock word can
// be manipulated with atomics while the table itself is guarded by the
// trunk mutex.
type entry struct {
	lock     uint32 // spin lock; also pins the cell against defragmentation
	dead     uint32 // set (under lock) when the cell is removed
	offset   int64
	size     int32
	reserved int32
}

func (e *entry) tryLock() bool {
	return atomic.CompareAndSwapUint32(&e.lock, 0, 1)
}

func (e *entry) spinLock() {
	for !e.tryLock() {
		runtime.Gosched()
	}
}

func (e *entry) unlock() {
	atomic.StoreUint32(&e.lock, 0)
}

// Trunk is a single memory trunk. All methods are safe for concurrent use.
type Trunk struct {
	mu  sync.RWMutex
	buf []byte

	index map[uint64]*entry

	// Circular region state. The live region runs from tail to head
	// (wrapping at capacity). used disambiguates the full and empty
	// states when head == tail.
	head int64
	tail int64
	used int64

	pageSize  int64
	committed []bool // page commit bitmap
	reserve   ReservationPolicy

	liveBytes     int64
	gapBytes      int64
	reservedBytes int64

	stats Stats

	// Registry-backed timing, nil when the trunk is unobserved.
	defragNs       *obs.Histogram
	reloadNs       *obs.Histogram
	reclaimedBytes *obs.Counter

	scratch []byte // defragmentation copy buffer
}

// New creates an empty trunk.
func New(opts Options) *Trunk {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.PageSize <= 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.Capacity < opts.PageSize {
		opts.Capacity = opts.PageSize
	}
	if opts.Reservation == nil {
		opts.Reservation = DefaultReservation
	}
	pages := (opts.Capacity + opts.PageSize - 1) / opts.PageSize
	t := &Trunk{
		buf:       make([]byte, opts.Capacity), //alloc:ok one-time trunk arena at construction
		index:     make(map[uint64]*entry),
		pageSize:  opts.PageSize,
		committed: make([]bool, pages),
		reserve:   opts.Reservation,
	}
	if opts.Metrics != nil {
		t.defragNs = opts.Metrics.Histogram("defrag_ns")
		t.reloadNs = opts.Metrics.Histogram("reload_ns")
		t.reclaimedBytes = opts.Metrics.Counter("defrag_reclaimed_bytes")
	}
	return t
}

// Capacity returns the trunk's reserved size in bytes.
func (t *Trunk) Capacity() int64 { return int64(len(t.buf)) }

// Count returns the number of live cells.
func (t *Trunk) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.index)
}

// Stats returns a snapshot of the trunk's counters.
func (t *Trunk) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := t.stats
	s.Capacity = int64(len(t.buf))
	s.UsedBytes = t.used
	s.LiveBytes = t.liveBytes
	s.GapBytes = t.gapBytes
	s.ReservedBytes = t.reservedBytes
	s.Cells = int64(len(t.index))
	var cb int64
	for _, c := range t.committed {
		if c {
			cb += t.pageSize
		}
	}
	s.CommittedBytes = cb
	return s
}

// writeHeader writes a record header at off.
func (t *Trunk) writeHeader(off int64, key uint64, size, reserved int32) {
	binary.LittleEndian.PutUint64(t.buf[off:], key)
	binary.LittleEndian.PutUint32(t.buf[off+8:], uint32(size))
	binary.LittleEndian.PutUint32(t.buf[off+12:], uint32(reserved))
}

func (t *Trunk) readHeader(off int64) (key uint64, size, reserved int32) {
	key = binary.LittleEndian.Uint64(t.buf[off:])
	size = int32(binary.LittleEndian.Uint32(t.buf[off+8:]))
	reserved = int32(binary.LittleEndian.Uint32(t.buf[off+12:]))
	return
}

// commitRange marks every page overlapping [off, off+n) committed.
// Called with t.mu held.
func (t *Trunk) commitRange(off, n int64) {
	if n <= 0 {
		return
	}
	first := off / t.pageSize
	last := (off + n - 1) / t.pageSize
	for p := first; p <= last; p++ {
		if !t.committed[p] {
			t.committed[p] = true
			t.stats.PageCommits++
		}
	}
}

// decommitDead releases pages that no longer overlap the live region.
// Called with t.mu held after the tail advances.
func (t *Trunk) decommitDead() {
	if t.used == 0 {
		for p := range t.committed {
			if t.committed[p] {
				t.committed[p] = false
				t.stats.PageDecommits++
			}
		}
		return
	}
	cap := int64(len(t.buf))
	inLive := func(pos int64) bool {
		if t.tail < t.head {
			return pos >= t.tail && pos < t.head
		}
		if t.tail > t.head {
			return pos >= t.tail || pos < t.head
		}
		return true // full
	}
	for p := range t.committed {
		if !t.committed[p] {
			continue
		}
		start := int64(p) * t.pageSize
		end := start + t.pageSize
		if end > cap {
			end = cap
		}
		// A page stays committed if any byte of it is in the live region.
		live := inLive(start) || inLive(end-1)
		if !live && t.tail >= start && t.tail < end {
			live = true // page containing the tail pointer itself
		}
		if !live && t.head >= start && t.head < end {
			live = true // page the next allocation will touch
		}
		if !live {
			t.committed[p] = false
			t.stats.PageDecommits++
		}
	}
}

// alloc finds space for a record of `need` bytes (header included),
// writing a wrap filler if the end of the buffer must be skipped.
// Returns the record offset. Called with t.mu held.
func (t *Trunk) alloc(need int64) (int64, error) {
	cap := int64(len(t.buf))
	if need > cap {
		return 0, ErrFull
	}
	if t.used == 0 {
		// Empty trunk: restart at the origin so page usage is dense.
		t.head, t.tail = 0, 0
	}
	wrapped := t.head < t.tail || (t.head == t.tail && t.used > 0)
	if !wrapped {
		if cap-t.head >= need {
			off := t.head
			t.commitRange(off, need)
			t.head += need
			if t.head == cap {
				t.head = 0
			}
			t.used += need
			return off, nil
		}
		// Not enough room before the end; try wrapping to the front.
		if t.tail >= need {
			fill := cap - t.head
			if fill >= headerSize {
				t.commitRange(t.head, headerSize)
				t.writeHeader(t.head, wrapKey, int32(fill-headerSize), 0)
			}
			// Bytes too small for a header are skipped implicitly by
			// the scanner.
			t.used += fill
			t.gapBytes += fill
			t.head = 0
			off := int64(0)
			t.commitRange(off, need)
			t.head = need
			t.used += need
			return off, nil
		}
		return 0, ErrFull
	}
	// Wrapped: free space is the contiguous run [head, tail).
	if t.tail-t.head >= need {
		off := t.head
		t.commitRange(off, need)
		t.head += need
		t.used += need
		return off, nil
	}
	return 0, ErrFull
}

// Add inserts a new cell. It fails with ErrExists if the key is present
// and ErrFull if space cannot be found even after a defragmentation pass.
func (t *Trunk) Add(key uint64, payload []byte) error {
	if key == wrapKey {
		return fmt.Errorf("trunk: key %#x is reserved", key)
	}
	t.mu.Lock()
	if _, ok := t.index[key]; ok {
		t.mu.Unlock()
		return ErrExists
	}
	err := t.addLocked(key, payload)
	t.mu.Unlock()
	if errors.Is(err, ErrFull) {
		// One defragmentation pass may coalesce enough space.
		if t.Defragment() > 0 {
			t.mu.Lock()
			err = t.addLocked(key, payload)
			t.mu.Unlock()
		}
	}
	return err
}

func (t *Trunk) addLocked(key uint64, payload []byte) error {
	need := int64(headerSize + len(payload))
	off, err := t.alloc(need)
	if err != nil {
		return err
	}
	t.writeHeader(off, key, int32(len(payload)), 0)
	copy(t.buf[off+headerSize:], payload)
	t.index[key] = &entry{offset: off, size: int32(len(payload))}
	t.liveBytes += need
	t.stats.Allocs++
	return nil
}

// Put inserts or overwrites a cell.
func (t *Trunk) Put(key uint64, payload []byte) error {
	if key == wrapKey {
		return fmt.Errorf("trunk: key %#x is reserved", key)
	}
	t.mu.Lock()
	e, ok := t.index[key]
	if !ok {
		err := t.addLocked(key, payload)
		t.mu.Unlock()
		if errors.Is(err, ErrFull) && t.Defragment() > 0 {
			t.mu.Lock()
			err = t.addLocked(key, payload)
			t.mu.Unlock()
		}
		return err
	}
	err := t.rewriteLocked(key, e, payload)
	t.mu.Unlock()
	if errors.Is(err, ErrFull) && t.Defragment() > 0 {
		t.mu.Lock()
		if e2, ok := t.index[key]; ok {
			err = t.rewriteLocked(key, e2, payload)
		} else {
			err = t.addLocked(key, payload)
		}
		t.mu.Unlock()
	}
	return err
}

// BatchItem is one write inside a PutBatch: an upsert by default, or an
// insert-only Add that fails with ErrExists when the key is present.
type BatchItem struct {
	Key uint64
	Val []byte
	Add bool
}

// PutBatch applies every item under a single acquisition of the trunk
// mutex, amortizing the lock (and the per-cell spin-lock handshakes)
// across the whole batch instead of paying them once per cell — the
// storage half of the bulk-write pipeline. Items are applied in order, so
// a batch carrying two writes to one key leaves the later value (the
// pipeline's last-write-wins contract).
//
// The return value is nil when every item succeeded; otherwise it is a
// per-item error slice in argument order (nil entries for the items that
// succeeded). One full item does not fail its neighbours: ErrFull items
// are retried once after a defragmentation pass, exactly like Put.
func (t *Trunk) PutBatch(items []BatchItem) []error {
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(items))
		}
		errs[i] = err
	}
	var full []int
	t.mu.Lock()
	for i := range items {
		it := &items[i]
		if it.Key == wrapKey {
			fail(i, fmt.Errorf("trunk: key %#x is reserved", it.Key))
			continue
		}
		e, ok := t.index[it.Key]
		var err error
		switch {
		case ok && it.Add:
			err = ErrExists
		case ok:
			err = t.rewriteLocked(it.Key, e, it.Val)
		default:
			err = t.addLocked(it.Key, it.Val)
		}
		if errors.Is(err, ErrFull) {
			full = append(full, i)
			continue
		}
		if err != nil {
			fail(i, err)
		}
	}
	t.mu.Unlock()
	if len(full) == 0 {
		return errs
	}
	// Tight on space: one defragmentation pass, then retry just the full
	// items (still batched under one lock acquisition).
	t.Defragment()
	t.mu.Lock()
	for _, i := range full {
		it := &items[i]
		var err error
		if e, ok := t.index[it.Key]; ok {
			if it.Add {
				err = ErrExists
			} else {
				err = t.rewriteLocked(it.Key, e, it.Val)
			}
		} else {
			err = t.addLocked(it.Key, it.Val)
		}
		if err != nil {
			fail(i, err)
		}
	}
	t.mu.Unlock()
	return errs
}

// rewriteLocked replaces an existing cell's payload, reusing its slot when
// the new payload fits in size+reservation, otherwise relocating.
// Called with t.mu held.
func (t *Trunk) rewriteLocked(key uint64, e *entry, payload []byte) error {
	e.spinLock()
	defer e.unlock()
	newSize := int32(len(payload))
	if newSize <= e.size+e.reserved {
		// In-place: the slot keeps its total span; the delta moves
		// between size and reservation.
		span := e.size + e.reserved
		copy(t.buf[e.offset+headerSize:], payload)
		delta := int64(newSize - e.size)
		t.liveBytes += delta
		t.reservedBytes -= delta
		e.size = newSize
		e.reserved = span - newSize
		t.writeHeader(e.offset, key, e.size, e.reserved)
		return nil
	}
	return t.relocateLocked(key, e, payload, int32(t.reserve(int(e.size), int(newSize-e.size))))
}

// relocateLocked moves a cell to a freshly allocated slot with the given
// reservation, abandoning the old slot as a gap. Called with t.mu and the
// entry lock held.
func (t *Trunk) relocateLocked(key uint64, e *entry, payload []byte, reserved int32) error {
	need := int64(headerSize) + int64(len(payload)) + int64(reserved)
	off, err := t.alloc(need)
	if err != nil && reserved > 0 {
		// Tight on space: retry without the luxury reservation.
		reserved = 0
		need = int64(headerSize) + int64(len(payload))
		off, err = t.alloc(need)
	}
	if err != nil {
		return err
	}
	oldSpan := int64(headerSize) + int64(e.size) + int64(e.reserved)
	t.gapBytes += oldSpan
	t.reservedBytes -= int64(e.reserved)
	t.liveBytes -= int64(headerSize) + int64(e.size)

	t.writeHeader(off, key, int32(len(payload)), reserved)
	copy(t.buf[off+headerSize:], payload)
	e.offset = off
	e.size = int32(len(payload))
	e.reserved = reserved
	t.liveBytes += int64(headerSize) + int64(len(payload))
	t.reservedBytes += int64(reserved)
	t.stats.Allocs++
	t.stats.Relocations++
	return nil
}

// Append extends a cell's payload with extra bytes. If the cell's
// short-lived reservation can absorb the growth the operation is in-place;
// otherwise the cell is relocated with a fresh reservation.
func (t *Trunk) Append(key uint64, extra []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.index[key]
	if !ok {
		return ErrNotFound
	}
	e.spinLock()
	defer e.unlock()
	growth := int32(len(extra))
	if growth <= e.reserved {
		copy(t.buf[e.offset+headerSize+int64(e.size):], extra)
		e.size += growth
		e.reserved -= growth
		t.writeHeader(e.offset, key, e.size, e.reserved)
		t.liveBytes += int64(growth)
		t.reservedBytes -= int64(growth)
		t.stats.InPlaceGrowth++
		return nil
	}
	// Relocate with room for the new bytes plus a fresh reservation.
	payload := make([]byte, int(e.size)+len(extra)) //alloc:ok relocation slow path, amortized by reservation
	copy(payload, t.buf[e.offset+headerSize:e.offset+headerSize+int64(e.size)])
	copy(payload[e.size:], extra)
	return t.relocateLocked(key, e, payload, int32(t.reserve(int(e.size), len(extra))))
}

// Get copies the cell's payload into a fresh slice.
func (t *Trunk) Get(key uint64) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	e.spinLock()
	out := make([]byte, e.size) //alloc:ok Get is the copying API by contract; hot paths use GetView/ReadInto
	copy(out, t.buf[e.offset+headerSize:])
	e.unlock()
	return out, nil
}

// GetView returns a zero-copy view of the cell's payload together with
// the guard pinning it. The slice is valid until the guard is unlocked;
// while held, the defragmentation daemon cannot move the cell and
// concurrent writers to it block. Callers that only need the bytes
// transiently should prefer View; GetView exists for readers that thread
// the view through code that cannot run under a callback (the CSR
// builder's arena appends, wire encoders filling a frame).
func (t *Trunk) GetView(key uint64) ([]byte, *Guard, error) {
	g, err := t.Lock(key)
	if err != nil {
		return nil, nil, err
	}
	return g.Bytes(), g, nil
}

// ReadInto appends the cell's payload to dst and returns the extended
// slice, like append: the caller brings the buffer, so a hot loop reading
// many cells (the multi-get handler) performs zero per-cell allocations.
// dst is returned unchanged on ErrNotFound. The cell's spin lock is held
// only for the copy.
func (t *Trunk) ReadInto(key uint64, dst []byte) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.index[key]
	if !ok {
		return dst, ErrNotFound
	}
	e.spinLock()
	dst = append(dst, t.buf[e.offset+headerSize:e.offset+headerSize+int64(e.size)]...)
	e.unlock()
	return dst, nil
}

// Size returns the payload size of a cell without copying it.
func (t *Trunk) Size(key uint64) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.index[key]
	if !ok {
		return 0, ErrNotFound
	}
	return int(e.size), nil
}

// Contains reports whether the key exists.
func (t *Trunk) Contains(key uint64) bool {
	t.mu.RLock()
	_, ok := t.index[key]
	t.mu.RUnlock()
	return ok
}

// View invokes fn with a zero-copy slice of the cell's payload. The cell's
// spin lock is held for the duration, pinning it against defragmentation
// and concurrent mutation; fn may read and write the slice in place but
// must not retain it. This is the mechanism behind TSL cell accessors.
func (t *Trunk) View(key uint64, fn func(payload []byte) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.index[key]
	if !ok {
		return ErrNotFound
	}
	e.spinLock()
	defer e.unlock()
	return fn(t.buf[e.offset+headerSize : e.offset+headerSize+int64(e.size)])
}

// Remove deletes a cell, leaving a gap for the defragmentation daemon.
func (t *Trunk) Remove(key uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.index[key]
	if !ok {
		return ErrNotFound
	}
	e.spinLock()
	atomic.StoreUint32(&e.dead, 1)
	span := int64(headerSize) + int64(e.size) + int64(e.reserved)
	t.gapBytes += span
	t.liveBytes -= int64(headerSize) + int64(e.size)
	t.reservedBytes -= int64(e.reserved)
	delete(t.index, key)
	e.unlock()
	return nil
}

// ForEach calls fn for every live cell until fn returns false. The
// iteration order is unspecified. fn receives a zero-copy payload slice it
// must not retain. The trunk is read-locked for the whole scan.
func (t *Trunk) ForEach(fn func(key uint64, payload []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for key, e := range t.index {
		e.spinLock()
		ok := fn(key, t.buf[e.offset+headerSize:e.offset+headerSize+int64(e.size)])
		e.unlock()
		if !ok {
			return
		}
	}
}

// Keys returns the live keys in unspecified order.
func (t *Trunk) Keys() []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	keys := make([]uint64, 0, len(t.index))
	for k := range t.index {
		keys = append(keys, k)
	}
	return keys
}

// Defragment performs one pass of the defragmentation daemon: it scans the
// committed region from the tail, drops dead records and wrap fillers,
// re-appends live records at the head (trimming their now-expired
// reservations), and advances the committed tail so dead pages can be
// decommitted. The pass stops early if it reaches a cell that is pinned by
// a concurrent accessor. It returns the number of bytes reclaimed.
func (t *Trunk) Defragment() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gapBytes == 0 && t.reservedBytes == 0 {
		return 0
	}
	if t.defragNs != nil {
		start := time.Now()
		defer func() { t.defragNs.Observe(int64(time.Since(start))) }()
	}
	reclaimed := int64(0)
	toScan := t.used
	cap := int64(len(t.buf))
	for toScan > 0 && (t.gapBytes > 0 || t.reservedBytes > 0) {
		// Implicit wrap: not enough room at the end for even a header.
		if cap-t.tail < headerSize {
			skip := cap - t.tail
			t.tail = 0
			t.used -= skip
			t.gapBytes -= skip
			toScan -= skip
			reclaimed += skip
			continue
		}
		key, size, reserved := t.readHeader(t.tail)
		span := int64(headerSize) + int64(size) + int64(reserved)
		if key == wrapKey {
			t.tail = 0
			t.used -= span
			t.gapBytes -= span
			toScan -= span
			reclaimed += span
			continue
		}
		e, ok := t.index[key]
		if !ok || e.offset != t.tail {
			// Dead record (removed, overwritten, or relocated).
			t.advanceTail(span)
			t.gapBytes -= span
			toScan -= span
			reclaimed += span
			continue
		}
		// Live record: move it to the head unless it is pinned.
		if !e.tryLock() {
			t.stats.DefragSkips++
			break
		}
		payload := t.scratchCopy(t.buf[t.tail+headerSize : t.tail+headerSize+int64(size)])
		t.advanceTail(span)
		toScan -= span
		t.liveBytes -= int64(headerSize) + int64(size)
		t.reservedBytes -= int64(reserved)
		reclaimed += int64(reserved)
		off, err := t.alloc(int64(headerSize) + int64(size))
		if err != nil {
			// Cannot happen in practice: we just freed at least `span`
			// bytes, which covers the reservation-free copy. Restore a
			// consistent state defensively.
			t.liveBytes += int64(headerSize) + int64(size)
			t.reservedBytes += int64(reserved)
			e.unlock()
			break
		}
		t.writeHeader(off, key, size, 0)
		copy(t.buf[off+headerSize:], payload)
		e.offset = off
		e.reserved = 0
		t.liveBytes += int64(headerSize) + int64(size)
		t.stats.CellsMoved++
		t.stats.BytesMoved += int64(size)
		e.unlock()
	}
	t.decommitDead()
	t.stats.DefragPasses++
	if t.reclaimedBytes != nil {
		t.reclaimedBytes.Add(reclaimed)
	}
	return reclaimed
}

// advanceTail moves the committed tail forward by span, handling the exact
// end-of-buffer case. Called with t.mu held.
func (t *Trunk) advanceTail(span int64) {
	t.tail += span
	if t.tail >= int64(len(t.buf)) {
		t.tail -= int64(len(t.buf))
	}
	t.used -= span
}

func (t *Trunk) scratchCopy(b []byte) []byte {
	if cap(t.scratch) < len(b) {
		t.scratch = make([]byte, len(b)*2) //alloc:ok reusable scratch, doubles rarely
	}
	s := t.scratch[:len(b)]
	copy(s, b)
	return s
}

// Guard is a held cell spin lock. While a guard is held the cell is
// pinned: the defragmentation daemon will not move it and concurrent
// writers to the same cell block. A guard is released exactly once with
// Unlock. Guards are not reentrant: calling any trunk method on the same
// key while holding its guard deadlocks, so all access while pinned goes
// through the guard itself.
type Guard struct {
	t *Trunk
	e *entry
}

// Lock acquires the cell's spin lock, pinning it in memory, and returns a
// guard. Returns ErrNotFound if the key does not exist.
func (t *Trunk) Lock(key uint64) (*Guard, error) {
	for {
		t.mu.RLock()
		e, ok := t.index[key]
		t.mu.RUnlock()
		if !ok {
			return nil, ErrNotFound
		}
		e.spinLock()
		if atomic.LoadUint32(&e.dead) == 1 {
			// Removed between lookup and lock; the key may have been
			// re-added with a fresh entry, so retry the lookup.
			e.unlock()
			continue
		}
		return &Guard{t: t, e: e}, nil
	}
}

// Bytes returns a zero-copy view of the pinned cell's payload. The slice
// is valid until Unlock and may be read and written in place. The entry's
// offset and size cannot change while the guard is held (relocation
// requires the cell lock), and the trunk buffer itself never reallocates,
// so no further locking is needed.
func (g *Guard) Bytes() []byte {
	off := g.e.offset + headerSize
	return g.t.buf[off : off+int64(g.e.size)]
}

// Unlock releases the guard. It must be called exactly once.
func (g *Guard) Unlock() {
	g.e.unlock()
	g.e = nil
}

// dump format constants.
const (
	dumpMagic   = 0x54524e4b // "TRNK"
	dumpVersion = 1
)

// DumpTo serializes all live cells to w in a compact, checksummed format.
// It is used by the Trinity File System backup path and by checkpointing.
func (t *Trunk) DumpTo(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], dumpMagic)
	binary.LittleEndian.PutUint32(hdr[4:], dumpVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(t.index)))
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := w.Write(hdr[:16]); err != nil {
		return err
	}
	var rec [12]byte
	for key, e := range t.index {
		binary.LittleEndian.PutUint64(rec[0:], key)
		binary.LittleEndian.PutUint32(rec[8:], uint32(e.size))
		if _, err := mw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := mw.Write(t.buf[e.offset+headerSize : e.offset+headerSize+int64(e.size)]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(hdr[0:], crc.Sum32())
	_, err := w.Write(hdr[:4])
	return err
}

// LoadFrom restores cells from a dump produced by DumpTo, replacing the
// trunk's current contents.
func (t *Trunk) LoadFrom(r io.Reader) error {
	if t.reloadNs != nil {
		start := time.Now()
		defer func() { t.reloadNs.Observe(int64(time.Since(start))) }()
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != dumpMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != dumpVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:])

	t.mu.Lock()
	t.index = make(map[uint64]*entry, count)
	t.head, t.tail, t.used = 0, 0, 0
	t.liveBytes, t.gapBytes, t.reservedBytes = 0, 0, 0
	t.mu.Unlock()

	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	var rec [12]byte
	var payload []byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(tr, rec[:]); err != nil {
			return fmt.Errorf("%w: truncated record %d: %v", ErrCorrupt, i, err)
		}
		key := binary.LittleEndian.Uint64(rec[0:])
		size := binary.LittleEndian.Uint32(rec[8:])
		if int64(size) > int64(len(t.buf)) {
			return fmt.Errorf("%w: record %d size %d exceeds capacity", ErrCorrupt, i, size)
		}
		if cap(payload) < int(size) {
			payload = make([]byte, size) //alloc:ok startup-only snapshot load, buffer reused across records
		}
		payload = payload[:size]
		if _, err := io.ReadFull(tr, payload); err != nil {
			return fmt.Errorf("%w: truncated payload %d: %v", ErrCorrupt, i, err)
		}
		if err := t.Add(key, payload); err != nil {
			return err
		}
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return nil
}
