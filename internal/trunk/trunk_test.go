package trunk

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"trinity/internal/hash"
)

func newSmall(t *testing.T) *Trunk {
	t.Helper()
	return New(Options{Capacity: 1 << 16, PageSize: 1 << 10})
}

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestAddGetRoundTrip(t *testing.T) {
	tr := newSmall(t)
	want := payload(100, 7)
	if err := tr.Add(1, want); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %v, want %v", got[:8], want[:8])
	}
	if tr.Count() != 1 {
		t.Fatalf("Count = %d, want 1", tr.Count())
	}
}

func TestAddDuplicate(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Add(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(1, []byte("b")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Add = %v, want ErrExists", err)
	}
}

func TestGetMissing(t *testing.T) {
	tr := newSmall(t)
	if _, err := tr.Get(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Add(1, nil); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty cell returned %d bytes", len(got))
	}
}

func TestReservedKeyRejected(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Add(^uint64(0), []byte("x")); err == nil {
		t.Fatal("reserved wrap key accepted")
	}
	if err := tr.Put(^uint64(0), []byte("x")); err == nil {
		t.Fatal("reserved wrap key accepted by Put")
	}
}

func TestPutOverwriteSameSize(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Put(1, payload(64, 1)); err != nil {
		t.Fatal(err)
	}
	allocsBefore := tr.Stats().Allocs
	if err := tr.Put(1, payload(64, 9)); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Allocs != allocsBefore {
		t.Fatal("same-size overwrite should not allocate")
	}
	got, _ := tr.Get(1)
	if !bytes.Equal(got, payload(64, 9)) {
		t.Fatal("overwrite not visible")
	}
}

func TestPutShrinkLeavesReservation(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Put(1, payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(1, payload(10, 2)); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.ReservedBytes != 90 {
		t.Fatalf("ReservedBytes = %d, want 90 (shrink keeps slot)", s.ReservedBytes)
	}
	// Growing back into the freed space must be in-place.
	relocs := s.Relocations
	if err := tr.Put(1, payload(100, 3)); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Relocations != relocs {
		t.Fatal("grow-into-reservation should not relocate")
	}
	got, _ := tr.Get(1)
	if !bytes.Equal(got, payload(100, 3)) {
		t.Fatal("payload mismatch after shrink/grow cycle")
	}
}

func TestPutGrowRelocates(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Put(1, payload(10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(1, payload(500, 2)); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Relocations != 1 {
		t.Fatalf("Relocations = %d, want 1", s.Relocations)
	}
	if s.GapBytes == 0 {
		t.Fatal("relocation should leave a gap")
	}
	got, _ := tr.Get(1)
	if !bytes.Equal(got, payload(500, 2)) {
		t.Fatal("payload mismatch after relocation")
	}
}

func TestAppendUsesReservation(t *testing.T) {
	tr := New(Options{Capacity: 1 << 16, PageSize: 1 << 10,
		Reservation: func(old, growth int) int { return 64 }})
	if err := tr.Add(1, payload(16, 1)); err != nil {
		t.Fatal(err)
	}
	// First append relocates (fresh cells have no reservation) and leaves
	// a 64-byte reservation behind.
	if err := tr.Append(1, payload(16, 2)); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Relocations != 1 {
		t.Fatalf("Relocations = %d, want 1", s.Relocations)
	}
	// Subsequent small appends must be absorbed in place.
	for i := 0; i < 4; i++ {
		if err := tr.Append(1, payload(16, byte(3+i))); err != nil {
			t.Fatal(err)
		}
	}
	s = tr.Stats()
	if s.Relocations != 1 {
		t.Fatalf("Relocations = %d after reserved appends, want 1", s.Relocations)
	}
	if s.InPlaceGrowth != 4 {
		t.Fatalf("InPlaceGrowth = %d, want 4", s.InPlaceGrowth)
	}
	got, _ := tr.Get(1)
	if len(got) != 16*6 {
		t.Fatalf("payload length = %d, want 96", len(got))
	}
	want := payload(16, 1)
	for i := 1; i < 6; i++ {
		want = append(want, payload(16, byte(i+1))...)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("appended payload corrupted")
	}
}

func TestAppendMissing(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Append(9, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Append missing = %v, want ErrNotFound", err)
	}
}

func TestRemove(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Add(1, payload(50, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatal("cell still visible after Remove")
	}
	if err := tr.Remove(1); !errors.Is(err, ErrNotFound) {
		t.Fatal("double Remove should fail")
	}
	s := tr.Stats()
	if s.GapBytes != headerSize+50 {
		t.Fatalf("GapBytes = %d, want %d", s.GapBytes, headerSize+50)
	}
	if s.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d, want 0", s.LiveBytes)
	}
}

func TestReAddAfterRemove(t *testing.T) {
	tr := newSmall(t)
	for i := 0; i < 10; i++ {
		if err := tr.Add(1, payload(20, byte(i))); err != nil {
			t.Fatal(err)
		}
		got, _ := tr.Get(1)
		if !bytes.Equal(got, payload(20, byte(i))) {
			t.Fatalf("round %d payload mismatch", i)
		}
		if err := tr.Remove(1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestViewZeroCopyWrite(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Add(1, payload(8, 0)); err != nil {
		t.Fatal(err)
	}
	err := tr.View(1, func(p []byte) error {
		p[0] = 0xFF
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Get(1)
	if got[0] != 0xFF {
		t.Fatal("in-place write via View not visible")
	}
}

func TestViewErrorPropagates(t *testing.T) {
	tr := newSmall(t)
	tr.Add(1, []byte("x"))
	sentinel := errors.New("boom")
	if err := tr.View(1, func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("View error = %v, want sentinel", err)
	}
	if err := tr.View(2, func([]byte) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("View missing = %v, want ErrNotFound", err)
	}
}

func TestGuardPinsAgainstDefrag(t *testing.T) {
	tr := newSmall(t)
	tr.Add(1, payload(100, 1)) // becomes a leading gap
	tr.Add(2, payload(100, 2)) // pinned
	tr.Add(3, payload(100, 3)) // becomes a trailing gap
	tr.Remove(1)
	tr.Remove(3)
	g, err := tr.Lock(2)
	if err != nil {
		t.Fatal(err)
	}
	view := g.Bytes()
	// The pass frees the leading gap but must stop at the pinned cell
	// even though a gap remains beyond it.
	tr.Defragment()
	if tr.Stats().DefragSkips != 1 {
		t.Fatalf("DefragSkips = %d, want 1", tr.Stats().DefragSkips)
	}
	if tr.Stats().GapBytes == 0 {
		t.Fatal("trailing gap should survive a pass blocked by a pin")
	}
	if !bytes.Equal(view, payload(100, 2)) {
		t.Fatal("pinned view corrupted by defragmentation")
	}
	g.Unlock()
	// Unpinned, the cell can now move and the trailing gap is reclaimed.
	tr.Defragment()
	if tr.Stats().CellsMoved == 0 {
		t.Fatal("expected cell movement after unpin")
	}
	if tr.Stats().GapBytes != 0 {
		t.Fatal("gaps remain after unpinned defragmentation")
	}
	got, _ := tr.Get(2)
	if !bytes.Equal(got, payload(100, 2)) {
		t.Fatal("payload corrupted by post-unpin defragmentation")
	}
}

func TestLockMissing(t *testing.T) {
	tr := newSmall(t)
	if _, err := tr.Lock(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lock missing = %v, want ErrNotFound", err)
	}
}

func TestGuardBlocksConcurrentWriter(t *testing.T) {
	tr := newSmall(t)
	tr.Add(1, payload(8, 0))
	g, _ := tr.Lock(1)
	done := make(chan struct{})
	go func() {
		// This writer must not complete until the guard is released.
		if err := tr.Put(1, payload(8, 9)); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("writer completed while cell was locked")
	default:
	}
	g.Bytes()[0] = 42
	g.Unlock()
	<-done
	got, _ := tr.Get(1)
	if !bytes.Equal(got, payload(8, 9)) {
		t.Fatal("writer's update lost")
	}
}

func TestDefragmentReclaimsGaps(t *testing.T) {
	tr := newSmall(t)
	for i := uint64(0); i < 100; i++ {
		if err := tr.Add(i, payload(50, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i += 2 {
		tr.Remove(i)
	}
	gaps := tr.Stats().GapBytes
	if gaps == 0 {
		t.Fatal("expected gaps")
	}
	reclaimed := tr.Defragment()
	if reclaimed < gaps {
		t.Fatalf("reclaimed %d < gaps %d", reclaimed, gaps)
	}
	s := tr.Stats()
	if s.GapBytes != 0 {
		t.Fatalf("GapBytes = %d after defrag, want 0", s.GapBytes)
	}
	// Survivors intact.
	for i := uint64(1); i < 100; i += 2 {
		got, err := tr.Get(i)
		if err != nil {
			t.Fatalf("cell %d lost: %v", i, err)
		}
		if !bytes.Equal(got, payload(50, byte(i))) {
			t.Fatalf("cell %d corrupted", i)
		}
	}
}

func TestDefragmentNoWorkIsFree(t *testing.T) {
	tr := newSmall(t)
	tr.Add(1, payload(10, 1))
	passes := tr.Stats().DefragPasses
	if got := tr.Defragment(); got != 0 {
		t.Fatalf("Defragment on clean trunk reclaimed %d", got)
	}
	if tr.Stats().DefragPasses != passes {
		t.Fatal("clean trunk should skip the pass entirely")
	}
}

func TestDefragmentTrimsReservations(t *testing.T) {
	tr := newSmall(t)
	tr.Add(1, payload(16, 1))
	tr.Append(1, payload(16, 2)) // relocation leaves a reservation
	if tr.Stats().ReservedBytes == 0 {
		t.Fatal("expected a live reservation")
	}
	tr.Defragment()
	if r := tr.Stats().ReservedBytes; r != 0 {
		t.Fatalf("ReservedBytes = %d after defrag, want 0 (short-lived)", r)
	}
	got, _ := tr.Get(1)
	want := append(payload(16, 1), payload(16, 2)...)
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted by reservation trim")
	}
}

func TestCircularWrapAround(t *testing.T) {
	// Force the head to wrap by churning cells through a small trunk.
	tr := New(Options{Capacity: 8 << 10, PageSize: 1 << 10})
	live := make(map[uint64][]byte)
	rng := hash.NewRNG(1)
	var next uint64
	for round := 0; round < 2000; round++ {
		if len(live) < 20 {
			next++
			p := payload(rng.Intn(200)+1, byte(next))
			if err := tr.Add(next, p); err != nil {
				if errors.Is(err, ErrFull) {
					continue
				}
				t.Fatal(err)
			}
			live[next] = p
		} else {
			// Remove a pseudo-random live key.
			for k := range live {
				if err := tr.Remove(k); err != nil {
					t.Fatal(err)
				}
				delete(live, k)
				break
			}
		}
		if round%97 == 0 {
			tr.Defragment()
		}
	}
	for k, want := range live {
		got, err := tr.Get(k)
		if err != nil {
			t.Fatalf("cell %d lost: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cell %d corrupted", k)
		}
	}
	if tr.Stats().PageDecommits == 0 {
		t.Fatal("expected page decommits during circular churn")
	}
}

func TestTrunkFullAndRecovery(t *testing.T) {
	tr := New(Options{Capacity: 4 << 10, PageSize: 1 << 10})
	var added []uint64
	for i := uint64(1); ; i++ {
		if err := tr.Add(i, payload(100, byte(i))); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatal(err)
			}
			break
		}
		added = append(added, i)
	}
	if len(added) == 0 {
		t.Fatal("nothing fit")
	}
	// Free half; a new Add (which retries after defragmentation) fits.
	for _, k := range added[:len(added)/2] {
		tr.Remove(k)
	}
	if err := tr.Add(10_000, payload(100, 1)); err != nil {
		t.Fatalf("Add after freeing space: %v", err)
	}
}

func TestOversizedAllocation(t *testing.T) {
	tr := New(Options{Capacity: 4 << 10, PageSize: 1 << 10})
	if err := tr.Add(1, make([]byte, 64<<10)); !errors.Is(err, ErrFull) {
		t.Fatalf("oversized Add = %v, want ErrFull", err)
	}
}

func TestForEachAndKeys(t *testing.T) {
	tr := newSmall(t)
	want := map[uint64]byte{}
	for i := uint64(0); i < 50; i++ {
		tr.Add(i, payload(10, byte(i)))
		want[i] = byte(i)
	}
	seen := map[uint64]bool{}
	tr.ForEach(func(k uint64, p []byte) bool {
		if p[0] != want[k] {
			t.Errorf("cell %d wrong payload", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 50 {
		t.Fatalf("ForEach visited %d cells, want 50", len(seen))
	}
	if len(tr.Keys()) != 50 {
		t.Fatalf("Keys returned %d, want 50", len(tr.Keys()))
	}
	// Early termination.
	n := 0
	tr.ForEach(func(uint64, []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("ForEach did not stop early: %d", n)
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	tr := newSmall(t)
	want := map[uint64][]byte{}
	rng := hash.NewRNG(3)
	for i := uint64(0); i < 200; i++ {
		p := payload(rng.Intn(100), byte(i))
		tr.Put(i, p)
		want[i] = p
	}
	// Create fragmentation so dump exercises non-contiguous layouts.
	for i := uint64(0); i < 200; i += 3 {
		tr.Remove(i)
		delete(want, i)
	}
	var buf bytes.Buffer
	if err := tr.DumpTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := newSmall(t)
	if err := restored.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != len(want) {
		t.Fatalf("restored %d cells, want %d", restored.Count(), len(want))
	}
	for k, p := range want {
		got, err := restored.Get(k)
		if err != nil {
			t.Fatalf("cell %d missing after restore: %v", k, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("cell %d corrupted after restore", k)
		}
	}
}

func TestLoadFromCorrupt(t *testing.T) {
	tr := newSmall(t)
	tr.Add(1, payload(40, 1))
	var buf bytes.Buffer
	tr.DumpTo(&buf)
	data := buf.Bytes()

	// Truncated.
	if err := newSmall(t).LoadFrom(bytes.NewReader(data[:len(data)-5])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated load = %v, want ErrCorrupt", err)
	}
	// Bit flip in payload breaks the checksum.
	flipped := append([]byte(nil), data...)
	flipped[20] ^= 0xFF
	if err := newSmall(t).LoadFrom(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted load = %v, want ErrCorrupt", err)
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] = 0
	if err := newSmall(t).LoadFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad-magic load = %v, want ErrCorrupt", err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	tr := New(Options{Capacity: 4 << 20, PageSize: 1 << 12})
	const workers = 8
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := hash.NewRNG(uint64(w))
			base := uint64(w) << 32
			for i := 0; i < opsPerWorker; i++ {
				key := base + uint64(rng.Intn(100))
				switch rng.Intn(5) {
				case 0, 1:
					if err := tr.Put(key, payload(rng.Intn(64)+1, byte(key))); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := tr.Get(key); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				case 3:
					if err := tr.Append(key, payload(8, byte(i))); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				case 4:
					if err := tr.Remove(key); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tr.Defragment()
			}
		}
	}()
	wg.Wait()
	close(stop)
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Worker payloads are isolated by key prefix, so each surviving cell
	// must start with its own key byte.
	tr.ForEach(func(k uint64, p []byte) bool {
		if len(p) > 0 && p[0] != byte(k) {
			t.Errorf("cell %#x corrupted under concurrency", k)
			return false
		}
		return true
	})
}

func TestStatsInvariants(t *testing.T) {
	// Property: across random op sequences, live+gap+reserved bytes never
	// exceed used bytes, and utilization stays in (0, 1].
	f := func(seed uint64) bool {
		tr := New(Options{Capacity: 1 << 15, PageSize: 1 << 10})
		rng := hash.NewRNG(seed)
		for i := 0; i < 300; i++ {
			key := uint64(rng.Intn(40))
			switch rng.Intn(4) {
			case 0:
				tr.Put(key, payload(rng.Intn(128), byte(key)))
			case 1:
				tr.Remove(key)
			case 2:
				tr.Append(key, payload(rng.Intn(32), 1))
			case 3:
				tr.Defragment()
			}
			s := tr.Stats()
			if s.LiveBytes+s.GapBytes+s.ReservedBytes > s.UsedBytes {
				return false
			}
			if s.UsedBytes > s.CommittedBytes {
				return false
			}
			if s.LiveBytes < 0 || s.GapBytes < 0 || s.ReservedBytes < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModelBasedRandomOps(t *testing.T) {
	// Property: the trunk behaves exactly like a map[uint64][]byte under
	// any sequence of Put/Append/Remove/Defragment.
	f := func(seed uint64) bool {
		tr := New(Options{Capacity: 1 << 16, PageSize: 1 << 10})
		model := map[uint64][]byte{}
		rng := hash.NewRNG(seed)
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(30))
			switch rng.Intn(5) {
			case 0, 1:
				p := payload(rng.Intn(100), byte(rng.Next()))
				if tr.Put(key, p) == nil {
					model[key] = p
				}
			case 2:
				extra := payload(rng.Intn(30), byte(rng.Next()))
				err := tr.Append(key, extra)
				if _, ok := model[key]; ok {
					if err != nil {
						return false
					}
					model[key] = append(append([]byte(nil), model[key]...), extra...)
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 3:
				err := tr.Remove(key)
				if _, ok := model[key]; ok != (err == nil) {
					return false
				}
				delete(model, key)
			case 4:
				tr.Defragment()
			}
		}
		if tr.Count() != len(model) {
			return false
		}
		for k, want := range model {
			got, err := tr.Get(k)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonLifecycle(t *testing.T) {
	tr := newSmall(t)
	d := NewDaemon(1, tr) // 1ns -> clamped internally by ticker granularity
	d.Start()
	d.Start() // idempotent
	tr.Add(1, payload(64, 1))
	tr.Remove(1)
	// RunOnce gives a deterministic reclamation check independent of timing.
	d2 := NewDaemon(0)
	d2.Watch(tr)
	tr.Add(2, payload(64, 2))
	tr.Remove(2)
	d.Stop()
	d.Stop() // idempotent
	if got := d2.RunOnce(); got == 0 {
		t.Fatal("RunOnce reclaimed nothing")
	}
}

func TestUtilizationImprovesAfterDefrag(t *testing.T) {
	tr := New(Options{Capacity: 1 << 18, PageSize: 1 << 10})
	for i := uint64(0); i < 500; i++ {
		tr.Add(i, payload(64, byte(i)))
	}
	for i := uint64(0); i < 500; i += 2 {
		tr.Remove(i)
	}
	before := tr.Stats().Utilization()
	tr.Defragment()
	after := tr.Stats().Utilization()
	if after <= before {
		t.Fatalf("utilization %f -> %f, expected improvement", before, after)
	}
}

func TestManySmallCells(t *testing.T) {
	// The motivating workload: billions of small cells at paper scale;
	// here, enough to cross many pages and trigger index growth.
	tr := New(Options{Capacity: 8 << 20, PageSize: 1 << 12})
	const n = 50_000
	for i := uint64(0); i < n; i++ {
		if err := tr.Add(i, payload(16, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != n {
		t.Fatalf("Count = %d, want %d", tr.Count(), n)
	}
	s := tr.Stats()
	wantLive := int64(n * (headerSize + 16))
	if s.LiveBytes != wantLive {
		t.Fatalf("LiveBytes = %d, want %d", s.LiveBytes, wantLive)
	}
	for _, i := range []uint64{0, 1, n / 2, n - 1} {
		got, err := tr.Get(i)
		if err != nil || !bytes.Equal(got, payload(16, byte(i))) {
			t.Fatalf("cell %d wrong: %v", i, err)
		}
	}
}

func BenchmarkTrunkPut(b *testing.B) {
	// Put over a bounded key space: inserts first, same-size overwrites
	// after, so the benchmark is stable for any b.N.
	tr := New(Options{Capacity: 1 << 28})
	p := payload(64, 1)
	const keys = 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(uint64(i%keys), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrunkGet(b *testing.B) {
	tr := New(Options{Capacity: 1 << 26})
	p := payload(64, 1)
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		tr.Add(i, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrunkView(b *testing.B) {
	tr := New(Options{Capacity: 1 << 26})
	p := payload(64, 1)
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		tr.Add(i, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.View(uint64(i%n), func([]byte) error { return nil })
	}
}

// BenchmarkTrunkExpansionReserved and ...NoReservation form the §6.1
// ablation: growing cells with and without the short-lived reservation
// mechanism. The reserved variant should show far fewer relocations.
func benchmarkExpansion(b *testing.B, policy ReservationPolicy) {
	tr := New(Options{Capacity: 1 << 28, Reservation: policy})
	const cells = 1000
	for i := uint64(0); i < cells; i++ {
		tr.Add(i, payload(16, byte(i)))
	}
	extra := payload(8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Append(uint64(i%cells), extra); err != nil {
			b.Fatal(err)
		}
		if i%(cells*64) == 0 {
			tr.Defragment()
		}
	}
	b.ReportMetric(float64(tr.Stats().Relocations)/float64(b.N), "relocs/op")
}

func BenchmarkTrunkExpansionReserved(b *testing.B) {
	benchmarkExpansion(b, DefaultReservation)
}

func BenchmarkTrunkExpansionNoReservation(b *testing.B) {
	benchmarkExpansion(b, NoReservation)
}

func ExampleTrunk() {
	tr := New(Options{Capacity: 1 << 20})
	tr.Put(42, []byte("hello"))
	v, _ := tr.Get(42)
	fmt.Println(string(v))
	// Output: hello
}

func TestGetViewZeroCopy(t *testing.T) {
	tr := newSmall(t)
	want := payload(128, 3)
	if err := tr.Add(9, want); err != nil {
		t.Fatal(err)
	}
	view, g, err := tr.GetView(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view, want) {
		t.Fatalf("GetView = %v, want %v", view[:8], want[:8])
	}
	// Zero-copy: writing through the view must be visible to Get.
	view[0] = 0xEE
	g.Unlock()
	got, err := tr.Get(9)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xEE {
		t.Fatal("GetView handed out a copy, not a view")
	}
}

func TestGetViewMissing(t *testing.T) {
	tr := newSmall(t)
	if _, _, err := tr.GetView(404); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetView missing = %v, want ErrNotFound", err)
	}
}

func TestReadIntoAppends(t *testing.T) {
	tr := newSmall(t)
	a, b := payload(40, 1), payload(60, 2)
	if err := tr.Add(1, a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(2, b); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 128)
	dst, err := tr.ReadInto(1, dst)
	if err != nil {
		t.Fatal(err)
	}
	dst, err = tr.ReadInto(2, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, append(append([]byte(nil), a...), b...)) {
		t.Fatal("ReadInto did not append payloads in order")
	}
	// Missing key: dst comes back unchanged alongside ErrNotFound.
	before := len(dst)
	dst, err = tr.ReadInto(404, dst)
	if !errors.Is(err, ErrNotFound) || len(dst) != before {
		t.Fatalf("ReadInto missing = (%d bytes, %v), want unchanged + ErrNotFound", len(dst), err)
	}
}

func TestPutBatchAppliesInOrder(t *testing.T) {
	tr := newSmall(t)
	if err := tr.Add(5, payload(20, 9)); err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Key: 1, Val: payload(30, 1)},            // fresh insert
		{Key: 2, Val: payload(30, 2), Add: true}, // fresh Add
		{Key: 5, Val: payload(40, 3)},            // overwrite existing
		{Key: 1, Val: payload(30, 4)},            // same-batch overwrite: later wins
		{Key: 2, Val: payload(30, 5), Add: true}, // Add on key created earlier in batch
	}
	errs := tr.PutBatch(items)
	if errs == nil {
		t.Fatal("expected per-item errors (the duplicate Add must fail)")
	}
	for i, err := range errs {
		if i == 4 {
			if !errors.Is(err, ErrExists) {
				t.Fatalf("item 4 = %v, want ErrExists", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("item %d = %v, want nil", i, err)
		}
	}
	for _, want := range []struct {
		key  uint64
		seed byte
		n    int
	}{{1, 4, 30}, {2, 2, 30}, {5, 3, 40}} {
		got, err := tr.Get(want.key)
		if err != nil || !bytes.Equal(got, payload(want.n, want.seed)) {
			t.Fatalf("key %d after batch: %v", want.key, err)
		}
	}
}

func TestPutBatchAllSuccessReturnsNil(t *testing.T) {
	tr := newSmall(t)
	items := make([]BatchItem, 64)
	for i := range items {
		items[i] = BatchItem{Key: uint64(i), Val: payload(16, byte(i))}
	}
	if errs := tr.PutBatch(items); errs != nil {
		t.Fatalf("all-success batch returned %v", errs)
	}
	if tr.Count() != 64 {
		t.Fatalf("Count = %d, want 64", tr.Count())
	}
}

func TestPutBatchDefragsOnFull(t *testing.T) {
	// Fill the trunk, free half without compacting, then batch-write
	// payloads that only fit after defragmentation: PutBatch must defrag
	// and retry the ErrFull items rather than failing them.
	tr := New(Options{Capacity: 4 << 10, PageSize: 1 << 10})
	var added []uint64
	for i := uint64(1); ; i++ {
		if err := tr.Add(i, payload(100, byte(i))); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatal(err)
			}
			break
		}
		added = append(added, i)
	}
	for _, k := range added[:len(added)/2] {
		if err := tr.Remove(k); err != nil {
			t.Fatal(err)
		}
	}
	items := []BatchItem{
		{Key: 10_000, Val: payload(100, 1)},
		{Key: 10_001, Val: payload(100, 2)},
	}
	if errs := tr.PutBatch(items); errs != nil {
		t.Fatalf("batch after freeing space: %v", errs)
	}
	for i, k := range []uint64{10_000, 10_001} {
		got, err := tr.Get(k)
		if err != nil || !bytes.Equal(got, payload(100, byte(i+1))) {
			t.Fatalf("key %d after defrag retry: %v", k, err)
		}
	}
	// Survivors of the defragmentation are intact.
	for _, k := range added[len(added)/2:] {
		if _, err := tr.Get(k); err != nil {
			t.Fatalf("pre-existing key %d lost: %v", k, err)
		}
	}
}

func TestPutBatchMatchesSequentialPuts(t *testing.T) {
	// Property: a batch leaves the trunk in exactly the state sequential
	// Puts/Adds would.
	rng := hash.NewRNG(7)
	batch := New(Options{Capacity: 1 << 16, PageSize: 1 << 10})
	seq := New(Options{Capacity: 1 << 16, PageSize: 1 << 10})
	items := make([]BatchItem, 300)
	for i := range items {
		items[i] = BatchItem{
			Key: uint64(rng.Intn(50)),
			Val: payload(rng.Intn(60)+1, byte(i)),
			Add: rng.Intn(3) == 0,
		}
	}
	berrs := batch.PutBatch(items)
	for i, it := range items {
		var err error
		if it.Add {
			err = seq.Add(it.Key, it.Val)
		} else {
			err = seq.Put(it.Key, it.Val)
		}
		var berr error
		if berrs != nil {
			berr = berrs[i]
		}
		if !errors.Is(berr, err) && !errors.Is(err, berr) {
			t.Fatalf("item %d: batch err %v, sequential err %v", i, berr, err)
		}
	}
	if batch.Count() != seq.Count() {
		t.Fatalf("Count: batch %d, sequential %d", batch.Count(), seq.Count())
	}
	seq.ForEach(func(k uint64, want []byte) bool {
		got, err := batch.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("key %d diverged: %v", k, err)
		}
		return true
	})
}
