package trunk

import (
	"sync"
	"time"
)

// Daemon runs periodic defragmentation passes over a set of trunks,
// mirroring the paper's defragmentation daemon. A pass over a trunk is
// skipped when the trunk reports nothing to reclaim, so an idle daemon is
// nearly free.
type Daemon struct {
	interval time.Duration

	mu     sync.Mutex
	trunks []*Trunk
	stop   chan struct{}
	done   chan struct{}
}

// NewDaemon creates a daemon that wakes every interval. It does not start
// until Start is called.
func NewDaemon(interval time.Duration, trunks ...*Trunk) *Daemon {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Daemon{interval: interval, trunks: trunks}
}

// Watch adds a trunk to the daemon's rotation.
func (d *Daemon) Watch(t *Trunk) {
	d.mu.Lock()
	d.trunks = append(d.trunks, t)
	d.mu.Unlock()
}

// Start launches the background loop. It is a no-op if already running.
func (d *Daemon) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.loop(d.stop, d.done)
}

// Stop halts the background loop and waits for the in-flight pass, if any,
// to finish. It is a no-op if the daemon is not running.
func (d *Daemon) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// RunOnce performs a single pass over all watched trunks and returns the
// total bytes reclaimed.
func (d *Daemon) RunOnce() int64 {
	d.mu.Lock()
	trunks := make([]*Trunk, len(d.trunks))
	copy(trunks, d.trunks)
	d.mu.Unlock()
	var total int64
	for _, t := range trunks {
		total += t.Defragment()
	}
	return total
}

func (d *Daemon) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			d.RunOnce()
		}
	}
}
