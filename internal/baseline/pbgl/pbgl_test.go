package pbgl

import (
	"testing"

	"trinity/internal/gen"
)

func TestBFSOnChain(t *testing.T) {
	adj := map[uint64][]uint64{}
	for i := uint64(0); i < 19; i++ {
		adj[i] = []uint64{i + 1}
	}
	adj[19] = nil
	e := New(3, adj)
	dist, levels := e.BFS(0)
	if levels != 19 {
		t.Fatalf("levels = %d", levels)
	}
	for i := uint64(0); i <= 19; i++ {
		if dist[i] != int64(i) {
			t.Fatalf("dist(%d) = %d", i, dist[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	adj := map[uint64][]uint64{1: {2}, 2: nil, 3: nil}
	e := New(2, adj)
	dist, _ := e.BFS(1)
	if dist[3] != -1 {
		t.Fatalf("dist(3) = %d", dist[3])
	}
	if dist[2] != 1 {
		t.Fatalf("dist(2) = %d", dist[2])
	}
}

func TestBFSMatchesReference(t *testing.T) {
	adj := map[uint64][]uint64{}
	gen.RMAT(gen.RMATConfig{Scale: 9, AvgDegree: 6, Seed: 2}, func(u, v uint64) {
		adj[u] = append(adj[u], v)
	})
	for i := uint64(0); i < 512; i++ {
		if _, ok := adj[i]; !ok {
			adj[i] = nil
		}
	}
	// Sequential reference BFS.
	ref := map[uint64]int64{0: 0}
	frontier := []uint64{0}
	for d := int64(1); len(frontier) > 0; d++ {
		var next []uint64
		for _, u := range frontier {
			for _, v := range adj[u] {
				if _, ok := ref[v]; !ok {
					ref[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	e := New(4, adj)
	dist, _ := e.BFS(0)
	for id := uint64(0); id < 512; id++ {
		want, ok := ref[id]
		if !ok {
			want = -1
		}
		if dist[id] != want {
			t.Fatalf("dist(%d) = %d, reference %d", id, dist[id], want)
		}
	}
}

func TestGhostOverheadGrowsWithMachines(t *testing.T) {
	// The paper's point: on a hash-partitioned (not-well-partitioned)
	// graph, ghosts multiply with machine count.
	adj := map[uint64][]uint64{}
	gen.RMAT(gen.RMATConfig{Scale: 10, AvgDegree: 8, Seed: 3}, func(u, v uint64) {
		adj[u] = append(adj[u], v)
	})
	g2 := New(2, adj).GhostCount()
	g8 := New(8, adj).GhostCount()
	if g8 <= g2 {
		t.Fatalf("ghosts: 2 machines %d, 8 machines %d — expected growth", g2, g8)
	}
	// Ghost replicas dwarf the real vertex count on a skewed graph.
	e := New(8, adj)
	if e.GhostCount() < e.VertexCount() {
		t.Fatalf("ghosts %d < vertices %d: overhead not reproduced",
			e.GhostCount(), e.VertexCount())
	}
}

func TestRepeatedBFSIsolated(t *testing.T) {
	adj := map[uint64][]uint64{1: {2}, 2: {3}, 3: nil, 4: {1}}
	e := New(2, adj)
	d1, _ := e.BFS(1)
	d2, _ := e.BFS(4)
	if d1[3] != 2 {
		t.Fatalf("first run dist(3) = %d", d1[3])
	}
	if d2[3] != 3 || d2[1] != 1 {
		t.Fatalf("second run: %v (state leaked between runs?)", d2)
	}
}
