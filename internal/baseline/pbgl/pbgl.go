// Package pbgl implements a stand-in for the Parallel Boost Graph
// Library, the distributed-BFS comparator of Figure 13. It reproduces the
// two PBGL design decisions the paper measures:
//
//   - ghost cells: every machine materializes a full local replica of
//     every remote vertex adjacent to one of its local vertices. "The
//     ghost cell mechanism only works well for well-partitioned graphs;
//     great memory overhead would be incurred for not-well-partitioned
//     large graphs" — on a hash-partitioned R-MAT graph nearly every
//     neighbor is remote, so ghosts multiply the memory footprint;
//
//   - two-sided bulk-synchronous communication in the MPI style: at each
//     BFS level machines exchange whole ghost-update buffers with every
//     peer, rather than Trinity's one-sided fine-grained messages.
package pbgl

import (
	"context"
	"encoding/binary"
	"sync"

	"trinity/internal/msg"
)

// vertex is a local runtime vertex object.
type vertex struct {
	id    uint64
	edges []uint64
	dist  int64
}

// ghost is a local replica of a remote vertex's property.
type ghost struct {
	id    uint64
	owner int
	dist  int64
}

// unvisited marks undiscovered vertices.
const unvisited = int64(-1)

// Engine is the PBGL-style distributed graph: partitioned vertex objects
// plus per-machine ghost tables. Machines exchange ghost updates over a
// real transport (the same in-process bus the Trinity engines use), in
// the two-sided MPI style: one bulk exchange per peer per BFS level.
type Engine struct {
	machines int
	workers  []*worker
	bus      *msg.Bus
}

type worker struct {
	id       msg.MachineID
	node     *msg.Node
	vertices map[uint64]*vertex
	ghosts   map[uint64]*ghost

	inMu    sync.Mutex
	inbound []ghostUpdate
}

// protoGhostExchange carries one machine's ghost updates to their owner.
const protoGhostExchange msg.ProtocolID = 1

// New partitions the adjacency across `machines` and builds the ghost
// tables (one replica per (machine, remote neighbor) pair).
func New(machines int, adjacency map[uint64][]uint64) *Engine {
	e := &Engine{machines: machines, bus: msg.NewBus()}
	for i := 0; i < machines; i++ {
		node := msg.NewNode(e.bus.Endpoint(msg.MachineID(i)), msg.Options{})
		w := &worker{
			id:       msg.MachineID(i),
			node:     node,
			vertices: make(map[uint64]*vertex),
			ghosts:   make(map[uint64]*ghost),
		}
		// Two-sided exchange: the owner applies the batch and replies,
		// so the sender knows the round trip completed (MPI-style).
		node.HandleSync(protoGhostExchange, func(_ context.Context, _ msg.MachineID, b []byte) ([]byte, error) {
			w.inMu.Lock()
			for off := 0; off+16 <= len(b); off += 16 {
				w.inbound = append(w.inbound, ghostUpdate{
					id:   binary.LittleEndian.Uint64(b[off:]),
					dist: int64(binary.LittleEndian.Uint64(b[off+8:])),
				})
			}
			w.inMu.Unlock()
			return nil, nil
		})
		e.workers = append(e.workers, w)
	}
	for id, targets := range adjacency {
		w := e.workers[e.ownerOf(id)]
		w.vertices[id] = &vertex{id: id, edges: targets, dist: unvisited}
	}
	// Ghost construction pass.
	for mi, w := range e.workers {
		for _, v := range w.vertices {
			for _, t := range v.edges {
				owner := e.ownerOf(t)
				if owner != mi {
					if _, ok := w.ghosts[t]; !ok {
						w.ghosts[t] = &ghost{id: t, owner: owner, dist: unvisited}
					}
				}
			}
		}
	}
	return e
}

func (e *Engine) ownerOf(id uint64) int {
	h := id * 0x9e3779b97f4a7c15
	return int(h % uint64(e.machines))
}

// Close shuts down the engine's transport.
func (e *Engine) Close() {
	for _, w := range e.workers {
		w.node.Close()
	}
}

// MemoryFootprint is a deterministic accounting of the baseline's heap:
// per-object costs of vertices, edge slices, ghost replicas, and their
// hash-map entries. It is the apples-to-apples counterpart of Trinity's
// committed trunk bytes for Figure 13(c)/(d).
func (e *Engine) MemoryFootprint() int64 {
	const (
		vertexObj = 8 + 24 + 8 + 16 // id + edge slice header + dist + object header
		ghostObj  = 8 + 8 + 8 + 16  // id + owner + dist + object header
		mapEntry  = 48              // bucket share + pointer + hash
	)
	var total int64
	for _, w := range e.workers {
		for _, v := range w.vertices {
			total += vertexObj + mapEntry + int64(len(v.edges))*8
		}
		total += int64(len(w.ghosts)) * (ghostObj + mapEntry)
	}
	return total
}

// GhostCount returns the total number of ghost replicas — the memory
// overhead Figure 13(c) measures.
func (e *Engine) GhostCount() int {
	total := 0
	for _, w := range e.workers {
		total += len(w.ghosts)
	}
	return total
}

// VertexCount returns the number of real (non-ghost) vertices.
func (e *Engine) VertexCount() int {
	total := 0
	for _, w := range e.workers {
		total += len(w.vertices)
	}
	return total
}

// ghostUpdate is one entry of the bulk exchange buffers.
type ghostUpdate struct {
	id   uint64
	dist int64
}

// BFS runs a level-synchronous distributed BFS from source and returns
// hop distances (unvisited = -1) plus the number of levels executed.
func (e *Engine) BFS(source uint64) (map[uint64]int64, int) {
	// Reset state.
	for _, w := range e.workers {
		for _, v := range w.vertices {
			v.dist = unvisited
		}
		for _, g := range w.ghosts {
			g.dist = unvisited
		}
	}
	if w := e.workers[e.ownerOf(source)]; w.vertices[source] != nil {
		w.vertices[source].dist = 0
	}
	level := int64(0)
	for {
		// Phase 1: every machine expands its local frontier, updating
		// local vertices directly and ghosts for remote neighbors.
		var wg sync.WaitGroup
		progress := make([]bool, e.machines)
		for mi, w := range e.workers {
			wg.Add(1)
			go func(mi int, w *worker) {
				defer wg.Done()
				for _, v := range w.vertices {
					if v.dist != level {
						continue
					}
					for _, t := range v.edges {
						if lv, ok := w.vertices[t]; ok {
							if lv.dist == unvisited {
								lv.dist = level + 1
								progress[mi] = true
							}
						} else if g, ok := w.ghosts[t]; ok {
							if g.dist == unvisited {
								g.dist = level + 1
								progress[mi] = true
							}
						}
					}
				}
			}(mi, w)
		}
		wg.Wait()
		// Phase 2: two-sided bulk exchange over the transport — every
		// machine ships its dirty ghost values to the owners (the
		// MPI-style all-to-all), one synchronous round per peer.
		var xwg sync.WaitGroup
		for _, w := range e.workers {
			xwg.Add(1)
			go func(w *worker) {
				defer xwg.Done()
				buffers := make([][]byte, e.machines)
				for _, g := range w.ghosts {
					if g.dist == level+1 {
						var rec [16]byte
						binary.LittleEndian.PutUint64(rec[0:], g.id)
						binary.LittleEndian.PutUint64(rec[8:], uint64(g.dist))
						buffers[g.owner] = append(buffers[g.owner], rec[:]...)
					}
				}
				for dst, buf := range buffers {
					if len(buf) == 0 || msg.MachineID(dst) == w.id {
						continue
					}
					w.node.Call(context.Background(), msg.MachineID(dst), protoGhostExchange, buf)
				}
			}(w)
		}
		xwg.Wait()
		anyProgress := false
		for _, p := range progress {
			anyProgress = anyProgress || p
		}
		for _, w := range e.workers {
			w.inMu.Lock()
			for _, u := range w.inbound {
				if v := w.vertices[u.id]; v != nil && v.dist == unvisited {
					v.dist = u.dist
					anyProgress = true
				}
			}
			w.inbound = w.inbound[:0]
			w.inMu.Unlock()
		}
		if !anyProgress {
			break
		}
		level++
	}
	out := make(map[uint64]int64)
	for _, w := range e.workers {
		for id, v := range w.vertices {
			out[id] = v.dist
		}
	}
	return out, int(level)
}
