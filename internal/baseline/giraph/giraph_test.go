package giraph

import (
	"math"
	"testing"

	"trinity/internal/gen"
)

func ringAdjacency(n int) map[uint64][]uint64 {
	adj := make(map[uint64][]uint64, n)
	for i := 0; i < n; i++ {
		adj[uint64(i)] = []uint64{uint64((i + 1) % n)}
	}
	return adj
}

func TestPageRankOnRing(t *testing.T) {
	e := New(3, ringAdjacency(30))
	defer e.Close()
	steps := e.Run(&PageRank{Iterations: 25}, 100)
	if steps < 25 {
		t.Fatalf("steps = %d", steps)
	}
	for id, v := range e.Values() {
		if math.Abs(v.(float64)-1.0) > 1e-6 {
			t.Fatalf("rank(%d) = %v", id, v)
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	adj := map[uint64][]uint64{}
	gen.Uniform(gen.UniformConfig{Nodes: 150, AvgDegree: 5, Seed: 4}, func(u, v uint64) {
		adj[u] = append(adj[u], v)
	})
	for i := uint64(0); i < 150; i++ {
		if _, ok := adj[i]; !ok {
			adj[i] = nil
		}
	}
	const iters = 15
	ref := make([]float64, 150)
	for i := range ref {
		ref[i] = 1.0
	}
	for it := 0; it < iters; it++ {
		in := make([]float64, 150)
		for u, out := range adj {
			if len(out) == 0 {
				continue
			}
			share := ref[u] / float64(len(out))
			for _, v := range out {
				in[v] += share
			}
		}
		for i := range ref {
			ref[i] = 0.15 + 0.85*in[i]
		}
	}
	e := New(4, adj)
	defer e.Close()
	e.Run(&PageRank{Iterations: iters}, iters+2)
	for id, v := range e.Values() {
		if math.Abs(v.(float64)-ref[id]) > 1e-9 {
			t.Fatalf("rank(%d) = %v, reference %v", id, v, ref[id])
		}
	}
}

func TestNoPackingMeansManyFrames(t *testing.T) {
	adj := ringAdjacency(100)
	e := New(4, adj)
	defer e.Close()
	e.Run(&PageRank{Iterations: 3}, 10)
	// Every cross-machine message is its own frame; a 100-vertex ring over
	// 4 machines for 3 iterations must send hundreds of frames.
	if got := e.MessagesSent(); got < 100 {
		t.Fatalf("frames = %d; packing appears enabled in the baseline", got)
	}
}

func TestHaltTermination(t *testing.T) {
	e := New(2, ringAdjacency(10))
	defer e.Close()
	steps := e.Run(&PageRank{Iterations: 2}, 100)
	if steps > 5 {
		t.Fatalf("engine did not terminate promptly: %d steps", steps)
	}
}
