// Package giraph implements a deliberately faithful stand-in for Apache
// Giraph, the Pregel implementation Trinity is compared against in
// Figure 12(d). The paper attributes Giraph's slowness and memory
// footprint to two design decisions, both reproduced here:
//
//   - graph vertices, edges, and messages live as individual runtime
//     objects on the managed heap ("in PBGL and Giraph, graph nodes exist
//     as runtime objects in memory; they take much more memory than
//     Trinity's plain blobs"), and message values are boxed;
//
//   - messages are serialized and delivered one wire frame per message
//     with a generic reflective encoder (gob), with no packing of small
//     messages into large transfers and no hub-vertex buffering.
//
// The engine is a correct synchronous Pregel: results match Trinity's BSP
// engine; only the resource profile differs. That is the point.
package giraph

import (
	"bytes"
	"encoding/gob"
	"sync"

	"trinity/internal/msg"
)

// Vertex is a heap-allocated runtime vertex object with a boxed value.
type Vertex struct {
	ID     uint64
	Value  any
	Edges  []*Edge // each edge is its own heap object, as on the JVM
	active bool
	halted bool
}

// Edge is a heap-allocated edge object.
type Edge struct {
	Target uint64
}

// Message is a boxed vertex message.
type Message struct {
	Target uint64
	Value  any
}

// Program is a Giraph-style vertex program.
type Program interface {
	// Compute processes one vertex for the current superstep. It may call
	// ctx.Send and ctx.VoteToHalt.
	Compute(ctx *Context, v *Vertex, msgs []any)
}

// Context exposes superstep operations to a vertex program.
type Context struct {
	w    *worker
	step int
}

// Superstep returns the current superstep.
func (c *Context) Superstep() int { return c.step }

// NumVertices returns the global vertex count.
func (c *Context) NumVertices() int { return c.w.e.totalVertices }

// Send delivers a boxed message to the target vertex next superstep.
func (c *Context) Send(target uint64, value any) {
	c.w.sendMessage(target, value)
}

// SendToAllEdges broadcasts to every out-edge, one message per edge.
func (c *Context) SendToAllEdges(v *Vertex, value any) {
	for _, e := range v.Edges {
		c.w.sendMessage(e.Target, value)
	}
}

// VoteToHalt deactivates the vertex until a message arrives.
func (c *Context) VoteToHalt(v *Vertex) { v.halted = true }

// Engine is the Giraph-style runtime: one worker per machine over a
// message bus configured WITHOUT packing.
type Engine struct {
	workers       []*worker
	totalVertices int
	bus           *msg.Bus
}

type worker struct {
	e        *Engine
	id       msg.MachineID
	node     *msg.Node
	vertices map[uint64]*Vertex

	inMu  sync.Mutex
	inbox map[uint64][]any
	next  map[uint64][]any

	doneMu   sync.Mutex
	doneFrom map[msg.MachineID]bool
	doneCond *sync.Cond

	sent int64
}

// Protocol IDs local to the baseline.
const (
	protoMsg  msg.ProtocolID = 1
	protoDone msg.ProtocolID = 2
)

// New builds the engine over `machines` workers and loads the adjacency
// as runtime objects, partitioned by vertex id hash.
func New(machines int, adjacency map[uint64][]uint64) *Engine {
	e := &Engine{bus: msg.NewBus()}
	for i := 0; i < machines; i++ {
		node := msg.NewNode(e.bus.Endpoint(msg.MachineID(i)), msg.Options{
			NoPacking: true, // the ablation under test
		})
		w := &worker{
			e:        e,
			id:       msg.MachineID(i),
			node:     node,
			vertices: make(map[uint64]*Vertex),
			inbox:    make(map[uint64][]any),
			next:     make(map[uint64][]any),
			doneFrom: make(map[msg.MachineID]bool),
		}
		w.doneCond = sync.NewCond(&w.doneMu)
		node.HandleAsync(protoMsg, w.onMessage)
		node.HandleAsync(protoDone, w.onDone)
		e.workers = append(e.workers, w)
	}
	for id, targets := range adjacency {
		w := e.workers[e.ownerOf(id)]
		v := &Vertex{ID: id, active: true}
		for _, t := range targets {
			v.Edges = append(v.Edges, &Edge{Target: t})
		}
		w.vertices[id] = v
		e.totalVertices++
	}
	return e
}

// ownerOf hashes a vertex to a worker.
func (e *Engine) ownerOf(id uint64) int {
	// Same spread quality as Trinity's trunk hash, so partitioning is not
	// a confound in the comparison.
	h := id * 0x9e3779b97f4a7c15
	return int(h % uint64(len(e.workers)))
}

// Close shuts the engine down.
func (e *Engine) Close() {
	for _, w := range e.workers {
		w.node.Close()
	}
}

// MessagesSent returns the cumulative wire message count.
func (e *Engine) MessagesSent() int64 {
	var total int64
	for _, w := range e.workers {
		total += w.node.Stats().FramesSent
	}
	return total
}

// Run executes the program until every vertex halts with no messages in
// flight, or maxSupersteps. Returns supersteps executed.
func (e *Engine) Run(p Program, maxSupersteps int) int {
	step := 0
	for ; step < maxSupersteps; step++ {
		active := e.superstep(p, step)
		if active == 0 {
			return step + 1
		}
	}
	return step
}

func (e *Engine) superstep(p Program, step int) int {
	// Rotate inboxes.
	for _, w := range e.workers {
		w.inMu.Lock()
		w.inbox, w.next = w.next, make(map[uint64][]any)
		w.inMu.Unlock()
	}
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			ctx := &Context{w: w, step: step}
			for _, v := range w.vertices {
				msgs := w.inbox[v.ID]
				if v.halted && len(msgs) == 0 {
					continue
				}
				v.halted = false
				p.Compute(ctx, v, msgs)
			}
			w.node.Flush()
			for _, other := range w.e.workers {
				if other.id != w.id {
					w.node.Send(other.id, protoDone, nil)
				}
			}
			w.node.Flush()
		}(w)
	}
	wg.Wait()
	for _, w := range e.workers {
		w.waitForMarkers(len(e.workers) - 1)
	}
	active := 0
	for _, w := range e.workers {
		for _, v := range w.vertices {
			if !v.halted || len(w.next[v.ID]) > 0 {
				active++
			}
		}
	}
	return active
}

// sendMessage boxes, gob-encodes, and ships one message per call.
func (w *worker) sendMessage(target uint64, value any) {
	owner := w.e.workers[w.e.ownerOf(target)]
	if owner.id == w.id {
		w.deliver(target, value)
		return
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf) // fresh encoder per message, like
	// per-message serialization on the JVM
	if err := enc.Encode(Message{Target: target, Value: value}); err != nil {
		return
	}
	w.node.Send(owner.id, protoMsg, buf.Bytes())
}

func (w *worker) deliver(target uint64, value any) {
	w.inMu.Lock()
	w.next[target] = append(w.next[target], value)
	w.inMu.Unlock()
}

func (w *worker) onMessage(_ msg.MachineID, b []byte) {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return
	}
	w.deliver(m.Target, m.Value)
}

func (w *worker) onDone(from msg.MachineID, _ []byte) {
	w.doneMu.Lock()
	w.doneFrom[from] = true
	w.doneCond.Broadcast()
	w.doneMu.Unlock()
}

func (w *worker) waitForMarkers(want int) {
	w.doneMu.Lock()
	for len(w.doneFrom) < want {
		w.doneCond.Wait()
	}
	w.doneFrom = make(map[msg.MachineID]bool)
	w.doneMu.Unlock()
}

// Values snapshots all vertex values.
func (e *Engine) Values() map[uint64]any {
	out := make(map[uint64]any, e.totalVertices)
	for _, w := range e.workers {
		for id, v := range w.vertices {
			out[id] = v.Value
		}
	}
	return out
}

// PageRank is the Giraph-style PageRank program used by Figure 12(d).
type PageRank struct {
	Iterations int
}

// Compute implements Program.
func (p *PageRank) Compute(ctx *Context, v *Vertex, msgs []any) {
	if ctx.Superstep() == 0 {
		v.Value = float64(1.0)
	} else {
		sum := 0.0
		for _, m := range msgs {
			sum += m.(float64) // unbox
		}
		v.Value = 0.15 + 0.85*sum
	}
	if ctx.Superstep() < p.Iterations {
		if n := len(v.Edges); n > 0 {
			ctx.SendToAllEdges(v, v.Value.(float64)/float64(n))
		}
	} else {
		ctx.VoteToHalt(v)
	}
}

func init() {
	gob.Register(float64(0))
}
